#!/bin/sh
# bench-compare runs a fresh quick benchmark sweep and diffs its
# throughput against the committed baseline in results/fig5c.json,
# failing when any (series, cores) point dropped by more than the
# threshold — the guard that keeps the performance trajectory from
# silently eroding PR over PR.
#
# Usage: scripts/bench-compare.sh [threshold]   (default: 0.25)
#
# Exit status: 0 within threshold, 2 on regression. CI runs this
# warn-only (|| true): shared runners are too noisy to gate merges on
# a single quick sweep, but the table in the log still names the
# offending point the moment a real regression lands.
set -eu

THRESHOLD=${1:-0.25}
BASELINE=results/fig5c.json
FRESH=$(mktemp -d)
trap 'rm -rf "$FRESH"' EXIT INT TERM

[ -f "$BASELINE" ] || { echo "bench-compare: missing baseline $BASELINE" >&2; exit 1; }

# Match the baseline's parameters (quick sweep, 96 clients, 2s
# windows) so the comparison is apples to apples. 96 clients keeps
# every proposer's request population high enough that the 4-pillar
# configurations run with real batches; at 16 clients HybsterX's
# partitioned pillars are starved by design and the scaling ratio
# below would be meaningless.
go run ./cmd/hybster-bench -figure 5c -quick -clients 96 -duration 2s -warmup 500ms \
	-json -results "$FRESH" >/dev/null

# The -scaling gate is warn-only: it prints the HybsterX 4-core/1-core
# throughput ratio and warns below 1.0 without failing the run (on a
# single-core host parity is the physical ceiling; see DESIGN.md §14).
go run scripts/benchcmp.go -threshold "$THRESHOLD" \
	-scaling HybsterX -scaling-min 1.0 \
	"$BASELINE" "$FRESH/fig5c.json"
