#!/bin/sh
# bench-compare runs a fresh quick benchmark sweep and diffs its
# throughput against the committed baseline in results/fig5c.json,
# failing when any (series, cores) point dropped by more than the
# threshold — the guard that keeps the performance trajectory from
# silently eroding PR over PR.
#
# Usage: scripts/bench-compare.sh [threshold]   (default: 0.25)
#
# Exit status: 0 within threshold, 2 on regression. CI runs this
# warn-only (|| true): shared runners are too noisy to gate merges on
# a single quick sweep, but the table in the log still names the
# offending point the moment a real regression lands.
set -eu

THRESHOLD=${1:-0.25}
BASELINE=results/fig5c.json
FRESH=$(mktemp -d)
trap 'rm -rf "$FRESH"' EXIT INT TERM

[ -f "$BASELINE" ] || { echo "bench-compare: missing baseline $BASELINE" >&2; exit 1; }

# Match the baseline's parameters (quick sweep, 16 clients, 1s
# windows) so the comparison is apples to apples.
go run ./cmd/hybster-bench -figure 5c -quick -clients 16 -json -results "$FRESH" >/dev/null

go run scripts/benchcmp.go -threshold "$THRESHOLD" "$BASELINE" "$FRESH/fig5c.json"
