//go:build ignore

// Benchcmp diffs two hybster-bench -json result files point by point
// and fails on throughput regressions beyond a threshold. It is run by
// scripts/bench-compare.sh:
//
//	go run scripts/benchcmp.go -threshold 0.25 baseline.json fresh.json
//
// Points are matched on (series, x). Fresh points missing from the
// baseline are reported but never fatal (new series are progress, not
// regressions); baseline points missing from the fresh run fail, since
// a silently dropped configuration is exactly what a trajectory check
// exists to catch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type resultFile struct {
	Figure string  `json:"figure"`
	Points []point `json:"points"`
}

type point struct {
	Series     string  `json:"series"`
	X          float64 `json:"x"`
	Throughput float64 `json:"throughput_ops"`
}

func load(path string) (*resultFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r resultFile
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional throughput drop")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/benchcmp.go [-threshold 0.25] baseline.json fresh.json")
		os.Exit(1)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	type key struct {
		series string
		x      float64
	}
	got := make(map[key]float64, len(fresh.Points))
	for _, p := range fresh.Points {
		got[key{p.Series, p.X}] = p.Throughput
	}
	seen := make(map[key]bool, len(base.Points))

	fmt.Printf("%-12s %6s %14s %14s %8s\n", "series", "x", "baseline", "fresh", "delta")
	regressions := 0
	for _, p := range base.Points {
		k := key{p.Series, p.X}
		seen[k] = true
		cur, ok := got[k]
		if !ok {
			fmt.Printf("%-12s %6g %14.0f %14s %8s  MISSING\n", p.Series, p.X, p.Throughput, "-", "-")
			regressions++
			continue
		}
		delta := 0.0
		if p.Throughput > 0 {
			delta = (cur - p.Throughput) / p.Throughput
		}
		mark := ""
		if delta < -*threshold {
			mark = fmt.Sprintf("  REGRESSION (>%g%% drop)", *threshold*100)
			regressions++
		}
		fmt.Printf("%-12s %6g %14.0f %14.0f %+7.1f%%%s\n", p.Series, p.X, p.Throughput, cur, delta*100, mark)
	}
	for _, p := range fresh.Points {
		if k := (key{p.Series, p.X}); !seen[k] {
			fmt.Printf("%-12s %6g %14s %14.0f %8s  (new, no baseline)\n", p.Series, p.X, "-", p.Throughput, "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d point(s) regressed beyond %g%%\n", regressions, *threshold*100)
		os.Exit(2)
	}
	fmt.Println("benchcmp: within threshold")
}
