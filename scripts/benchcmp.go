//go:build ignore

// Benchcmp diffs two hybster-bench -json result files point by point
// and fails on throughput regressions beyond a threshold. It is run by
// scripts/bench-compare.sh:
//
//	go run scripts/benchcmp.go -threshold 0.25 baseline.json fresh.json
//
// Points are matched on (series, x). Fresh points missing from the
// baseline are reported but never fatal (new series are progress, not
// regressions); baseline points missing from the fresh run fail, since
// a silently dropped configuration is exactly what a trajectory check
// exists to catch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type resultFile struct {
	Figure string  `json:"figure"`
	Points []point `json:"points"`
}

type point struct {
	Series     string  `json:"series"`
	X          float64 `json:"x"`
	Throughput float64 `json:"throughput_ops"`
}

func load(path string) (*resultFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r resultFile
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// scalingRatio returns series' throughput at its largest x divided by
// its throughput at x=1, or ok=false when either point is missing.
func scalingRatio(r *resultFile, series string) (ratio, xmax float64, ok bool) {
	var at1, atMax float64
	for _, p := range r.Points {
		if p.Series != series {
			continue
		}
		if p.X == 1 {
			at1 = p.Throughput
		}
		if p.X > xmax {
			xmax = p.X
			atMax = p.Throughput
		}
	}
	if at1 <= 0 || xmax <= 1 {
		return 0, 0, false
	}
	return atMax / at1, xmax, true
}

func main() {
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional throughput drop")
	scaling := flag.String("scaling", "", "series whose max-x/x=1 throughput ratio to report")
	scalingMin := flag.Float64("scaling-min", 1.0, "warn when the -scaling ratio of the fresh run falls below this")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/benchcmp.go [-threshold 0.25] baseline.json fresh.json")
		os.Exit(1)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	type key struct {
		series string
		x      float64
	}
	got := make(map[key]float64, len(fresh.Points))
	for _, p := range fresh.Points {
		got[key{p.Series, p.X}] = p.Throughput
	}
	seen := make(map[key]bool, len(base.Points))

	fmt.Printf("%-12s %6s %14s %14s %8s\n", "series", "x", "baseline", "fresh", "delta")
	regressions := 0
	for _, p := range base.Points {
		k := key{p.Series, p.X}
		seen[k] = true
		cur, ok := got[k]
		if !ok {
			fmt.Printf("%-12s %6g %14.0f %14s %8s  MISSING\n", p.Series, p.X, p.Throughput, "-", "-")
			regressions++
			continue
		}
		delta := 0.0
		if p.Throughput > 0 {
			delta = (cur - p.Throughput) / p.Throughput
		}
		mark := ""
		if delta < -*threshold {
			mark = fmt.Sprintf("  REGRESSION (>%g%% drop)", *threshold*100)
			regressions++
		}
		fmt.Printf("%-12s %6g %14.0f %14.0f %+7.1f%%%s\n", p.Series, p.X, p.Throughput, cur, delta*100, mark)
	}
	for _, p := range fresh.Points {
		if k := (key{p.Series, p.X}); !seen[k] {
			fmt.Printf("%-12s %6g %14s %14.0f %8s  (new, no baseline)\n", p.Series, p.X, "-", p.Throughput, "-")
		}
	}
	// Scaling gate: does the named series still speed up (or at least
	// hold) as cores grow? Warn-only by design — on a single-core
	// runner the physical ceiling for the multi-pillar configuration
	// is parity with one pillar, and shared runners are too noisy to
	// fail a merge on one quick sweep. The ratio in the log is the
	// signal; a sustained slide below 1.0 on real hardware is what to
	// chase.
	if *scaling != "" {
		if br, bx, ok := scalingRatio(base, *scaling); ok {
			fmt.Printf("scaling %-12s baseline: x=%g/x=1 ratio %.2f\n", *scaling, bx, br)
		}
		fr, fx, ok := scalingRatio(fresh, *scaling)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: series %q lacks x=1 and x>1 points; no scaling ratio\n", *scaling)
		} else {
			fmt.Printf("scaling %-12s fresh:    x=%g/x=1 ratio %.2f\n", *scaling, fx, fr)
			if fr < *scalingMin {
				fmt.Fprintf(os.Stderr, "benchcmp: WARNING %s scaling ratio %.2f below %.2f — multi-core configuration is not keeping up with single-core\n",
					*scaling, fr, *scalingMin)
			}
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d point(s) regressed beyond %g%%\n", regressions, *threshold*100)
		os.Exit(2)
	}
	fmt.Println("benchcmp: within threshold")
}
