#!/bin/sh
# ops-demo boots a three-replica HybsterX group over loopback TCP with
# ops endpoints enabled, commits client load against it, then scrapes
# /metrics, /healthz, /readyz, and /trace from replica 0 — a smoke test
# that the observability surface works end to end on a live cluster,
# and a copy-paste example of how to watch a deployment.
#
# Usage: scripts/ops-demo.sh [bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
PEERS=127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
OPS_BASE=7110

mkdir -p "$BIN"
go build -o "$BIN" ./cmd/hybster-replica ./cmd/hybster-client

PIDS=""
cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

DATA=$(mktemp -d)
R0PID=""
for id in 0 1 2; do
	"$BIN/hybster-replica" -id "$id" -peers "$PEERS" -protocol hybsterx \
		-data "$DATA/replica-$id" -ops 127.0.0.1:$((OPS_BASE + id)) &
	PIDS="$PIDS $!"
	[ "$id" = 0 ] && R0PID=$!
done
sleep 1

"$BIN/hybster-client" -peers "$PEERS" -protocol hybsterx -clients 4 -ops 500

echo
echo "== /healthz =="
curl -fsS "http://127.0.0.1:$OPS_BASE/healthz"
echo "== /readyz =="
curl -fsS "http://127.0.0.1:$OPS_BASE/readyz"
echo "== /metrics (consensus + enclave + wal + transport excerpt) =="
curl -fsS "http://127.0.0.1:$OPS_BASE/metrics" |
	grep -E '^hybster_(core_committed_total|core_exec_requests_total|trinx_ecalls_total\{op="create_independent"|wal_appends_total|wal_fsyncs_total|transport_sent_bytes_total)'
echo "== /trace (last events) =="
curl -fsS "http://127.0.0.1:$OPS_BASE/trace" | tail -c 400
echo

echo "== SIGQUIT trace dump =="
kill -QUIT "$R0PID"
sleep 1
ls "$DATA/replica-0"/trace-*.json

# The demo fails if the cluster committed nothing according to its own
# telemetry — the same assertion the chaos harness makes in-process.
committed=$(curl -fsS "http://127.0.0.1:$OPS_BASE/metrics" |
	awk '/^hybster_core_committed_total/ {s += $NF} END {print (s > 0) ? "yes" : "no"}')
if [ "$committed" != "yes" ]; then
	echo "ops-demo: replica 0 telemetry reports zero committed instances" >&2
	exit 1
fi
echo "ops-demo: OK (replica 0 telemetry shows committed instances)"
