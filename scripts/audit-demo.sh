#!/bin/sh
# audit-demo boots a three-replica HybsterX group over loopback TCP
# with ops endpoints enabled and replica 0 doubling as the online
# protocol auditor (-audit-scrape over all three /vars+/trace
# surfaces). It commits client load, asserts the auditor observed the
# cluster and raised no findings (a finding demotes /readyz, so the
# probe doubles as the assertion), then dumps every replica's trace
# ring and replays the offline half: hybster-audit merges the dumps
# into one causal timeline and must also come back clean.
#
# Usage: scripts/audit-demo.sh [bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
PEERS=127.0.0.1:7300,127.0.0.1:7301,127.0.0.1:7302
OPS_BASE=7310
OPS_URLS=http://127.0.0.1:7310,http://127.0.0.1:7311,http://127.0.0.1:7312

mkdir -p "$BIN"
go build -o "$BIN" ./cmd/hybster-replica ./cmd/hybster-client ./cmd/hybster-audit

PIDS=""
cleanup() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

DATA=$(mktemp -d)
for id in 0 1 2; do
	AUDIT=""
	[ "$id" = 0 ] && AUDIT="-audit-scrape $OPS_URLS -audit-interval 250ms"
	# shellcheck disable=SC2086  # $AUDIT is deliberately word-split
	"$BIN/hybster-replica" -id "$id" -peers "$PEERS" -protocol hybsterx \
		-data "$DATA/replica-$id" -ops 127.0.0.1:$((OPS_BASE + id)) $AUDIT &
	PIDS="$PIDS $!"
done
sleep 1

"$BIN/hybster-client" -peers "$PEERS" -protocol hybsterx -clients 4 -ops 500

# Give the auditor a few scrape rounds over the post-load state.
sleep 1

echo
echo "== /audit (replica 0's online auditor) =="
report=$(curl -fsS "http://127.0.0.1:$OPS_BASE/audit")
echo "$report" | head -n 12

rounds=$(echo "$report" | awk -F'[:,]' '/"rounds"/ {gsub(/ /, "", $2); print $2; exit}')
if [ "${rounds:-0}" -lt 1 ]; then
	echo "audit-demo: auditor completed no scrape rounds" >&2
	exit 1
fi

# A standing finding demotes /readyz to 503, so a passing probe IS the
# zero-findings assertion — the same wiring an orchestrator relies on.
echo "== /readyz (503 here would mean findings) =="
curl -fsS "http://127.0.0.1:$OPS_BASE/readyz"

echo "== trace dumps from all replicas =="
for id in 0 1 2; do
	curl -fsS -X POST "http://127.0.0.1:$((OPS_BASE + id))/trace/dump"
	echo
done

echo "== offline audit over the merged dumps =="
# hybster-audit exits 2 on findings, failing the demo under set -e.
"$BIN/hybster-audit" "$DATA"/replica-*/trace-*.json

echo "audit-demo: OK (online auditor clean, offline merge clean)"
