// Command hybster-replica runs one replica of a Hybster (or baseline)
// group over real TCP, for multi-process or multi-machine deployments.
//
// A three-replica local group:
//
//	hybster-replica -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	hybster-replica -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	hybster-replica -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	hybster-client  -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -ops 1000
//
// The -peers list is positional: entry i is replica i's listen address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hybster/internal/apps/coordination"
	"hybster/internal/apps/counter"
	"hybster/internal/apps/echo"
	"hybster/internal/audit"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/enclave"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/transport"
)

func main() {
	id := flag.Uint("id", 0, "replica ID (position in -peers)")
	peersFlag := flag.String("peers", "", "comma-separated replica addresses, index = replica ID")
	protoFlag := flag.String("protocol", "hybsterx", "protocol: hybsters, hybsterx, pbft, hybridpbft, minbft")
	pillars := flag.Int("pillars", 0, "pillar count (0 = protocol default)")
	batch := flag.Int("batch", 16, "max requests per consensus instance")
	rotate := flag.Bool("rotate", false, "rotate the proposer over all replicas")
	appFlag := flag.String("app", "echo", "application: echo, counter, coordination")
	keySeed := flag.String("keyseed", "hybster-default", "group key seed (must match on all nodes)")
	dataDir := flag.String("data", "", "data directory for durable crash-recovery (sealed counters + WAL); empty = in-memory only")
	opsAddr := flag.String("ops", "", "ops endpoint listen address (/metrics, /vars, /trace, /healthz, /readyz, pprof); empty = disabled")
	auditScrape := flag.String("audit-scrape", "", "comma-separated ops-endpoint URLs to audit (e.g. http://h0:9100,http://h1:9100); serves findings at /audit and demotes /readyz on violations; empty = disabled")
	auditEvery := flag.Duration("audit-interval", time.Second, "audit scrape cadence (with -audit-scrape)")
	mutexProfile := flag.Int("mutex-profile-fraction", 0, "runtime mutex-profile sampling fraction (1 in N contention events; 0 = off); adjustable at runtime via POST <ops>/debug/profile-rates")
	blockProfile := flag.Int("block-profile-rate", 0, "runtime block-profile rate in nanoseconds (1 = every event; 0 = off); adjustable at runtime via POST <ops>/debug/profile-rates")
	flag.Parse()

	peers := strings.Split(*peersFlag, ",")
	if len(peers) < 3 {
		log.Fatalf("need at least 3 peers, have %d (use -peers)", len(peers))
	}
	if int(*id) >= len(peers) {
		log.Fatalf("id %d out of range for %d peers", *id, len(peers))
	}

	proto, err := parseProtocol(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.Default(proto)
	cfg.N = len(peers)
	if *pillars > 0 {
		cfg.Pillars = *pillars
	}
	cfg.BatchSize = *batch
	cfg.RotateLeader = *rotate
	cfg.KeySeed = *keySeed
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	peerMap := make(map[uint32]string, len(peers))
	for i, addr := range peers {
		if uint32(i) != uint32(*id) {
			peerMap[uint32(i)] = strings.TrimSpace(addr)
		}
	}
	tel := telemetry.NewFor(proto.String(), uint32(*id))
	ep, err := transport.NewTCPWithOptions(uint32(*id), strings.TrimSpace(peers[*id]), peerMap,
		transport.TCPOptions{Telemetry: tel})
	if err != nil {
		log.Fatal(err)
	}

	app := newApp(*appFlag)
	platform := enclave.NewPlatform(fmt.Sprintf("replica-%d", *id))
	if *dataDir != "" {
		// The seal-sequence register stands in for the SGX monotonic
		// counter: it must survive the process, or sealed counter state
		// could be rolled back undetected across restarts.
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := platform.BindStore(filepath.Join(*dataDir, "sealreg")); err != nil {
			log.Fatal(err)
		}
		if proto != config.HybsterS && proto != config.HybsterX {
			log.Fatalf("-data requires a hybster protocol; %s has no recovery path", proto)
		}
	}

	var replica cluster.Replica
	var healthz, readyz func() error
	switch proto {
	case config.HybsterS, config.HybsterX:
		var eng *core.Engine
		eng, err = core.New(core.Options{
			Config: cfg, ID: uint32(*id), Endpoint: ep, Application: app,
			Platform: platform, EnclaveCost: enclave.DefaultCostModel,
			DataDir: *dataDir, Telemetry: tel,
		})
		if eng != nil {
			replica, healthz, readyz = eng, eng.Healthz, eng.Readyz
		}
	case config.PBFTcop, config.HybridPBFT:
		var eng *pbft.Engine
		eng, err = pbft.New(pbft.Options{
			Config: cfg, ID: uint32(*id), Endpoint: ep, Application: app,
			Platform: platform, EnclaveCost: enclave.DefaultCostModel,
			Telemetry: tel,
		})
		if eng != nil {
			replica, healthz, readyz = eng, eng.Healthz, eng.Healthz
		}
	case config.MinBFT:
		var eng *minbft.Engine
		eng, err = minbft.New(minbft.Options{
			Config: cfg, ID: uint32(*id), Endpoint: ep, Application: app,
			Platform: platform, EnclaveCost: enclave.DefaultCostModel,
			Telemetry: tel,
		})
		if eng != nil {
			replica, healthz, readyz = eng, eng.Healthz, eng.Healthz
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	// Trace dumps land next to the replica's durable state; a volatile
	// replica dumps into the system temp directory instead.
	dumpDir := *dataDir
	if dumpDir == "" {
		dumpDir = filepath.Join(os.TempDir(), fmt.Sprintf("hybster-replica-%d", *id))
	}

	// The online protocol auditor: scrape the listed ops endpoints
	// (typically the whole group, this replica included), serve the
	// current report at /audit, and demote /readyz while findings
	// stand — an orchestrator then steers traffic away from a cluster
	// whose invariants broke.
	var monitor *audit.Monitor
	if *auditScrape != "" {
		var sources []audit.Source
		for _, u := range strings.Split(*auditScrape, ",") {
			if u = strings.TrimSpace(u); u != "" {
				sources = append(sources, &audit.HTTPSource{BaseURL: u})
			}
		}
		monitor = audit.NewMonitor(audit.New(audit.Options{}), *auditEvery, sources...)
		monitor.Start()
		defer monitor.Stop()
		log.Printf("replica %d auditing %d ops endpoints every %v", *id, len(sources), *auditEvery)
	}

	if *mutexProfile > 0 || *blockProfile > 0 {
		telemetry.SetProfileRates(*mutexProfile, *blockProfile)
		log.Printf("replica %d contention profiling: mutex fraction %d, block rate %dns", *id, *mutexProfile, *blockProfile)
	}

	if *opsAddr != "" {
		opts := telemetry.OpsOptions{
			Telemetry:    tel,
			Healthz:      healthz,
			Readyz:       readyz,
			TraceDumpDir: dumpDir,
			Vars: func() map[string]any {
				return map[string]any{
					"replica":  *id,
					"protocol": proto.String(),
					"executed": uint64(replica.LastExecuted()),
				}
			},
		}
		if monitor != nil {
			opts.Audit = func() any { return monitor.Report() }
			engineReady := opts.Readyz
			opts.Readyz = func() error {
				if engineReady != nil {
					if err := engineReady(); err != nil {
						return err
					}
				}
				return monitor.Healthz()
			}
		}
		ops := telemetry.NewOpsServer(opts)
		if err := ops.Serve(*opsAddr); err != nil {
			log.Fatal(err)
		}
		defer ops.Close()
		log.Printf("replica %d ops endpoint on http://%s (/metrics /vars /trace /healthz /readyz /debug/pprof)",
			*id, ops.Addr())
	}

	replica.Start()
	log.Printf("replica %d (%s, %d pillars, app %s) listening on %s",
		*id, proto, cfg.Pillars, *appFlag, ep.Addr())

	// SIGQUIT dumps the protocol trace ring and keeps running, so an
	// operator can snapshot a live replica's recent history (`kill -QUIT`)
	// without the ops endpoint.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			path, err := tel.Tracer().DumpFile(dumpDir)
			if err != nil {
				log.Printf("replica %d trace dump failed: %v", *id, err)
				continue
			}
			log.Printf("replica %d trace ring dumped to %s", *id, path)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("replica %d shutting down (executed up to order %d)", *id, replica.LastExecuted())
	// Stop flushes the write-ahead log and force-seals the trusted
	// counters, so a SIGTERM'd replica restarts from its exact frontier.
	replica.Stop()
	if *dataDir != "" {
		log.Printf("replica %d state sealed under %s", *id, *dataDir)
	}
}

func parseProtocol(s string) (config.Protocol, error) {
	switch strings.ToLower(s) {
	case "hybsters":
		return config.HybsterS, nil
	case "hybsterx":
		return config.HybsterX, nil
	case "pbft", "pbftcop":
		return config.PBFTcop, nil
	case "hybridpbft":
		return config.HybridPBFT, nil
	case "minbft":
		return config.MinBFT, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func newApp(name string) statemachine.Application {
	switch strings.ToLower(name) {
	case "echo":
		return echo.New(-1)
	case "counter":
		return counter.New()
	case "coordination":
		return coordination.New()
	default:
		log.Fatalf("unknown app %q", name)
		return nil
	}
}
