// Command hybster-audit merges per-replica trace dumps offline into
// one causally ordered timeline, reconstructs per-slot spans with
// stage latency statistics, and runs the protocol auditor's safety
// checks over the merged history.
//
// Dumps come from a replica's POST /trace/dump endpoint, the SIGQUIT
// handler, or a chaos run; each file is self-describing (the header
// carries the replica ID, protocol, ring depth, and drop count), so
// the merge needs nothing but the files:
//
//	hybster-audit /data/r0/trace-*.json /data/r1/trace-*.json
//	hybster-audit -timeline dumps/*.json         # full event timeline
//	hybster-audit -json dumps/*.json | jq .findings
//
// The exit status is 2 when the audit raises findings, so scripts can
// gate on a clean history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hybster/internal/audit"
	"hybster/internal/telemetry"
)

func main() {
	timeline := flag.Bool("timeline", false, "print the full merged event timeline")
	jsonOut := flag.Bool("json", false, "emit one JSON document (dumps, spans, findings) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hybster-audit [-timeline] [-json] trace-dump.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(1)
	}

	var dumps []*telemetry.TraceDump
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		d, err := telemetry.ReadDump(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		dumps = append(dumps, d)
		if !*jsonOut {
			fmt.Printf("%s: replica %d %s, %d events (ring %d, %d dropped)\n",
				path, d.Replica, d.Protocol, len(d.Events), d.RingDepth, d.Dropped)
		}
	}

	merged := audit.Merge(dumps...)
	spans := audit.BuildSpans(merged)

	auditor := audit.New(audit.Options{})
	auditor.ObserveDumps(dumps...)
	findings := auditor.Findings()

	if *jsonOut {
		type dumpInfo struct {
			Replica  uint32 `json:"replica"`
			Protocol string `json:"protocol"`
			Events   int    `json:"events"`
			Dropped  uint64 `json:"dropped_events"`
		}
		out := struct {
			Dumps    []dumpInfo       `json:"dumps"`
			Spans    audit.SpanReport `json:"spans"`
			Findings []audit.Finding  `json:"findings"`
		}{Spans: spans, Findings: findings}
		for _, d := range dumps {
			out.Dumps = append(out.Dumps, dumpInfo{d.Replica, d.Protocol, len(d.Events), d.Dropped})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		if *timeline {
			fmt.Println()
			if err := audit.WriteTimeline(os.Stdout, merged); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
		if err := audit.WriteSpanReport(os.Stdout, spans); err != nil {
			fatal(err)
		}
		fmt.Println()
		if len(findings) == 0 {
			fmt.Println("audit: clean — no invariant violations across the merged history")
		} else {
			fmt.Printf("audit: %d finding(s):\n", len(findings))
			for _, f := range findings {
				fmt.Printf("  [%s] %s\n", f.Kind, f.Detail)
			}
		}
	}

	if len(findings) > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybster-audit:", err)
	os.Exit(1)
}
