// Command trinx-bench benchmarks the TrInX trusted subsystem in
// isolation (§6.1 / Figure 5a) and prints the CASH comparison.
//
// Usage:
//
//	trinx-bench                 # Fig. 5a sweep
//	trinx-bench -cash           # published CASH comparison only
//	trinx-bench -duration 10s   # longer windows
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybster/internal/bench"
)

func main() {
	duration := flag.Duration("duration", time.Second, "measured window per data point")
	cashOnly := flag.Bool("cash", false, "only run the CASH comparison")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.Duration = *duration

	emit := func(title string, points []bench.Point) {
		if *csv {
			bench.WriteCSV(os.Stdout, points)
		} else {
			bench.WriteTable(os.Stdout, title, "cores", points)
		}
	}

	if !*cashOnly {
		emit("Figure 5a — trusted subsystem, certifying 32-byte messages", bench.Fig5a(opts))
	}
	emit("§6.1 — TrInX vs published CASH numbers", bench.CASHReference(opts))
	fmt.Fprintln(os.Stderr, "note: absolute numbers depend on the host; compare shapes against the paper (see EXPERIMENTS.md)")
}
