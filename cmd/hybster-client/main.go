// Command hybster-client drives a TCP-deployed replica group (see
// cmd/hybster-replica) with closed-loop load and reports throughput
// and latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/client"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/stats"
	"hybster/internal/transport"
)

func main() {
	peersFlag := flag.String("peers", "", "comma-separated replica addresses, index = replica ID")
	protoFlag := flag.String("protocol", "hybsterx", "protocol the group runs (sets n/f expectations)")
	clients := flag.Int("clients", 8, "closed-loop clients")
	ops := flag.Int("ops", 1000, "operations per client (0 = run for -duration)")
	duration := flag.Duration("duration", 10*time.Second, "run length when -ops is 0")
	payload := flag.Int("payload", 0, "request payload bytes")
	keySeed := flag.String("keyseed", "hybster-default", "group key seed (must match replicas)")
	rotate := flag.Bool("rotate", false, "group runs with rotating proposer")
	flag.Parse()

	peers := strings.Split(*peersFlag, ",")
	if len(peers) < 3 {
		log.Fatalf("need at least 3 peers (use -peers)")
	}
	var proto config.Protocol
	switch strings.ToLower(*protoFlag) {
	case "hybsters":
		proto = config.HybsterS
	case "hybsterx":
		proto = config.HybsterX
	case "pbft", "pbftcop":
		proto = config.PBFTcop
	case "hybridpbft":
		proto = config.HybridPBFT
	case "minbft":
		proto = config.MinBFT
	default:
		log.Fatalf("unknown protocol %q", *protoFlag)
	}
	cfg := config.Default(proto)
	cfg.N = len(peers)
	cfg.KeySeed = *keySeed
	cfg.RotateLeader = *rotate

	payloadBytes := make([]byte, *payload)
	rec := stats.NewRecorder()
	var total atomic.Uint64
	var failures atomic.Uint64

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	// Each process takes a distinct client-ID block: request sequence
	// numbers restart at 1 in a new process, and replicas deduplicate
	// per client ID, so reusing IDs across runs would make every
	// request look stale.
	idBase := crypto.ClientIDBase + uint32(time.Now().UnixNano()&0x3FFF)<<8
	for i := 0; i < *clients; i++ {
		cid := idBase + uint32(i)
		ep, err := transport.NewTCP(cid, "127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		for r, addr := range peers {
			ep.AddPeer(uint32(r), strings.TrimSpace(addr))
		}
		cl, err := client.New(client.Options{Config: cfg, ID: cid, Endpoint: ep, Timeout: 2 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for n := 0; *ops == 0 || n < *ops; n++ {
				if *ops == 0 && time.Now().After(deadline) {
					return
				}
				t0 := time.Now()
				if _, err := cl.Invoke(payloadBytes, false); err != nil {
					failures.Add(1)
					return
				}
				rec.Record(time.Since(t0))
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := rec.Summarize()
	fmt.Printf("clients=%d ops=%d failures=%d elapsed=%v\n", *clients, total.Load(), failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %s\n", stats.FormatOps(stats.Throughput(total.Load(), elapsed)))
	fmt.Printf("latency: avg=%v p50=%v p90=%v p99=%v max=%v\n", sum.Avg, sum.P50, sum.P90, sum.P99, sum.Max)
}
