// Command hybster-bench regenerates the figures of the paper's
// evaluation section (§6) on the in-process cluster fabric.
//
// Usage:
//
//	hybster-bench -figure 5b                 # one figure
//	hybster-bench -figure all -duration 10s  # everything, longer windows
//	hybster-bench -figure 6c -csv            # machine-readable output
//	hybster-bench -figure 5c -json           # results/fig5c.json with telemetry
//
// Figures: 5a (trusted subsystem), 5b (unbatched throughput),
// 5c (batched throughput), 6a (latency, 0 B), 6b (latency, 1 kB),
// 6c (coordination service), cash (§6.1 CASH comparison).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybster/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "figure to run: 5a, 5b, 5c, 6a, 6b, 6c, cash, all")
	duration := flag.Duration("duration", time.Second, "measured window per data point")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "warmup before each measurement")
	clients := flag.Int("clients", 48, "closed-loop clients for throughput figures")
	quick := flag.Bool("quick", false, "reduced sweep resolution (smoke test)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.Bool("json", false, "additionally write machine-readable results (with telemetry snapshots) under -results")
	resultsDir := flag.String("results", "results", "directory for -json output files")
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.Duration = *duration
	opts.Warmup = *warmup
	opts.Clients = *clients
	opts.Quick = *quick

	type fig struct {
		name, title, xLabel string
		run                 func() ([]bench.Point, error)
	}
	figs := []fig{
		{"5a", "Figure 5a — trusted subsystem, certifying 32-byte messages", "cores",
			func() ([]bench.Point, error) { return bench.Fig5a(opts), nil }},
		{"5b", "Figure 5b — 0 bytes, unbatched, rotation", "cores",
			func() ([]bench.Point, error) { return bench.Fig5b(opts) }},
		{"5c", "Figure 5c — 0 bytes, batched, rotation", "cores",
			func() ([]bench.Point, error) { return bench.Fig5c(opts) }},
		{"6a", "Figure 6a — 0 bytes, batched, no rotation (latency vs throughput)", "clients",
			func() ([]bench.Point, error) { return bench.Fig6a(opts) }},
		{"6b", "Figure 6b — 1 kilobyte, batched, no rotation (latency vs throughput)", "clients",
			func() ([]bench.Point, error) { return bench.Fig6b(opts) }},
		{"6c", "Figure 6c — coordination service (128 bytes), read-rate sweep", "read-%",
			func() ([]bench.Point, error) { return bench.Fig6c(opts) }},
		{"cash", "§6.1 — TrInX vs published CASH numbers", "-",
			func() ([]bench.Point, error) { return bench.CASHReference(opts), nil }},
		{"minbft", "Extension — sequential baselines head to head (HybsterS vs MinBFT)", "batch",
			func() ([]bench.Point, error) { return bench.SequentialBaselines(opts) }},
	}

	ran := false
	for _, f := range figs {
		if *figure != "all" && *figure != f.name {
			continue
		}
		ran = true
		points, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *csv {
			bench.WriteCSV(os.Stdout, points)
		} else {
			bench.WriteTable(os.Stdout, f.title, f.xLabel, points)
		}
		if *jsonOut {
			path, err := writeJSON(*resultsDir, f.name, f.title, f.xLabel, opts, points)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		flag.Usage()
		os.Exit(2)
	}
}

// jsonPoint is the machine-readable form of one measurement: durations
// flattened to microseconds and the cluster-wide telemetry snapshot
// attached, so a results file carries not just the numbers a figure
// plots but the internal counters explaining them.
type jsonPoint struct {
	Series       string             `json:"series"`
	X            float64            `json:"x"`
	ThroughputOS float64            `json:"throughput_ops"`
	AvgUS        int64              `json:"avg_latency_us"`
	P50US        int64              `json:"p50_us"`
	P90US        int64              `json:"p90_us"`
	P99US        int64              `json:"p99_us"`
	MaxUS        int64              `json:"max_us"`
	Samples      int                `json:"latency_samples"`
	Telemetry    map[string]float64 `json:"telemetry,omitempty"`
}

// writeJSON renders one figure's points to <dir>/fig<name>.json.
func writeJSON(dir, name, title, xLabel string, opts bench.Options, points []bench.Point) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	doc := struct {
		Figure     string      `json:"figure"`
		Title      string      `json:"title"`
		XLabel     string      `json:"x_label"`
		DurationMS int64       `json:"duration_ms"`
		WarmupMS   int64       `json:"warmup_ms"`
		Clients    int         `json:"clients"`
		Quick      bool        `json:"quick"`
		Generated  string      `json:"generated"`
		Points     []jsonPoint `json:"points"`
	}{
		Figure:     name,
		Title:      title,
		XLabel:     xLabel,
		DurationMS: opts.Duration.Milliseconds(),
		WarmupMS:   opts.Warmup.Milliseconds(),
		Clients:    opts.Clients,
		Quick:      opts.Quick,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, p := range points {
		doc.Points = append(doc.Points, jsonPoint{
			Series:       p.Series,
			X:            p.X,
			ThroughputOS: p.Throughput,
			AvgUS:        p.Latency.Avg.Microseconds(),
			P50US:        p.Latency.P50.Microseconds(),
			P90US:        p.Latency.P90.Microseconds(),
			P99US:        p.Latency.P99.Microseconds(),
			MaxUS:        p.Latency.Max.Microseconds(),
			Samples:      p.Latency.Count,
			Telemetry:    p.Telemetry,
		})
	}
	path := filepath.Join(dir, "fig"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
