// Command hybster-bench regenerates the figures of the paper's
// evaluation section (§6) on the in-process cluster fabric.
//
// Usage:
//
//	hybster-bench -figure 5b                 # one figure
//	hybster-bench -figure all -duration 10s  # everything, longer windows
//	hybster-bench -figure 6c -csv            # machine-readable output
//
// Figures: 5a (trusted subsystem), 5b (unbatched throughput),
// 5c (batched throughput), 6a (latency, 0 B), 6b (latency, 1 kB),
// 6c (coordination service), cash (§6.1 CASH comparison).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybster/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "figure to run: 5a, 5b, 5c, 6a, 6b, 6c, cash, all")
	duration := flag.Duration("duration", time.Second, "measured window per data point")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "warmup before each measurement")
	clients := flag.Int("clients", 48, "closed-loop clients for throughput figures")
	quick := flag.Bool("quick", false, "reduced sweep resolution (smoke test)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.Duration = *duration
	opts.Warmup = *warmup
	opts.Clients = *clients
	opts.Quick = *quick

	type fig struct {
		name, title, xLabel string
		run                 func() ([]bench.Point, error)
	}
	figs := []fig{
		{"5a", "Figure 5a — trusted subsystem, certifying 32-byte messages", "cores",
			func() ([]bench.Point, error) { return bench.Fig5a(opts), nil }},
		{"5b", "Figure 5b — 0 bytes, unbatched, rotation", "cores",
			func() ([]bench.Point, error) { return bench.Fig5b(opts) }},
		{"5c", "Figure 5c — 0 bytes, batched, rotation", "cores",
			func() ([]bench.Point, error) { return bench.Fig5c(opts) }},
		{"6a", "Figure 6a — 0 bytes, batched, no rotation (latency vs throughput)", "clients",
			func() ([]bench.Point, error) { return bench.Fig6a(opts) }},
		{"6b", "Figure 6b — 1 kilobyte, batched, no rotation (latency vs throughput)", "clients",
			func() ([]bench.Point, error) { return bench.Fig6b(opts) }},
		{"6c", "Figure 6c — coordination service (128 bytes), read-rate sweep", "read-%",
			func() ([]bench.Point, error) { return bench.Fig6c(opts) }},
		{"cash", "§6.1 — TrInX vs published CASH numbers", "-",
			func() ([]bench.Point, error) { return bench.CASHReference(opts), nil }},
		{"minbft", "Extension — sequential baselines head to head (HybsterS vs MinBFT)", "batch",
			func() ([]bench.Point, error) { return bench.SequentialBaselines(opts) }},
	}

	ran := false
	for _, f := range figs {
		if *figure != "all" && *figure != f.name {
			continue
		}
		ran = true
		points, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *csv {
			bench.WriteCSV(os.Stdout, points)
		} else {
			bench.WriteTable(os.Stdout, f.title, f.xLabel, points)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		flag.Usage()
		os.Exit(2)
	}
}
