module hybster

go 1.22
