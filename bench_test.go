// Package hybster_test hosts the benchmark entry points that
// regenerate the paper's evaluation (one benchmark per figure, §6)
// plus per-operation microbenchmarks and ablations of the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute a reduced sweep per iteration and report
// the headline series as custom metrics; use cmd/hybster-bench for
// full-resolution sweeps and tables.
package hybster_test

import (
	"sync/atomic"
	"testing"
	"time"

	"hybster/internal/apps/echo"
	"hybster/internal/bench"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/statemachine"
	"hybster/internal/transport"
	"hybster/internal/trinx"
	"hybster/internal/usig"
	"hybster/internal/workload"
)

// figOpts keeps figure benchmarks short enough for go test -bench.
func figOpts() bench.Options {
	opts := bench.DefaultOptions()
	opts.Quick = true
	opts.Warmup = 100 * time.Millisecond
	opts.Duration = 400 * time.Millisecond
	opts.Clients = 24
	return opts
}

// reportBest reports the best throughput per series as custom metrics.
// Metric units must not contain whitespace, so series names are reduced
// to their identifier characters ("TrInX (native)" → "TrInX-native").
func reportBest(b *testing.B, points []bench.Point) {
	best := map[string]float64{}
	for _, p := range points {
		if p.Throughput > best[p.Series] {
			best[p.Series] = p.Throughput
		}
	}
	for series, tput := range best {
		b.ReportMetric(tput, metricName(series)+"_ops/s")
	}
}

func metricName(series string) string {
	out := make([]rune, 0, len(series))
	pendingDash := false
	for _, r := range series {
		switch {
		case r == ' ' || r == '(' || r == ')' || r == ',':
			pendingDash = len(out) > 0
		default:
			if pendingDash {
				out = append(out, '-')
				pendingDash = false
			}
			out = append(out, r)
		}
	}
	return string(out)
}

// --- Figure benchmarks (§6) -------------------------------------------------

// BenchmarkFig5aTrustedSubsystem regenerates Figure 5a: certification
// throughput of 32-byte messages for every trusted-subsystem variant.
func BenchmarkFig5aTrustedSubsystem(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		reportBest(b, bench.Fig5a(opts))
	}
}

// BenchmarkFig5aCASHComparison regenerates the §6.1 published-numbers
// comparison: TrInX vs the FPGA-based CASH at 57 µs per operation.
func BenchmarkFig5aCASHComparison(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		reportBest(b, bench.CASHReference(opts))
	}
}

// BenchmarkFig5bUnbatchedRotation regenerates Figure 5b: one consensus
// instance per request, rotating proposer, empty payloads.
func BenchmarkFig5bUnbatchedRotation(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig5b(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, points)
	}
}

// BenchmarkFig5cBatchedRotation regenerates Figure 5c: batched
// ordering, rotating proposer, empty payloads.
func BenchmarkFig5cBatchedRotation(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig5c(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, points)
	}
}

// BenchmarkFig6aLatency0B regenerates Figure 6a: latency vs throughput
// under a client sweep, empty payloads, fixed leader.
func BenchmarkFig6aLatency0B(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig6a(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, points)
	}
}

// BenchmarkFig6bLatency1KB regenerates Figure 6b: 1-kilobyte request
// and reply payloads over 1 GbE-modeled links.
func BenchmarkFig6bLatency1KB(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig6b(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, points)
	}
}

// BenchmarkFig6cCoordination regenerates Figure 6c: the coordination
// service with 128-byte znodes under a read-rate sweep.
func BenchmarkFig6cCoordination(b *testing.B) {
	opts := figOpts()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig6c(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportBest(b, points)
	}
}

// --- Per-operation microbenchmarks -------------------------------------------

// benchOp measures single-client end-to-end request latency for one
// protocol configuration (a request ordered, executed, and answered by
// f+1 replicas per iteration).
func benchOp(b *testing.B, spec bench.ProtocolSpec, pillars int) {
	c, err := bench.BuildCluster(spec, pillars, 16, false, enclave.CostModel{},
		transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(5 * time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Invoke(nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpHybsterS(b *testing.B) {
	benchOp(b, bench.ProtocolSpec{Name: "HybsterS", Proto: config.HybsterS}, 1)
}

func BenchmarkOpHybsterX(b *testing.B) {
	benchOp(b, bench.ProtocolSpec{Name: "HybsterX", Proto: config.HybsterX, ScalesWithCores: true}, 4)
}

func BenchmarkOpPBFTcop(b *testing.B) {
	benchOp(b, bench.ProtocolSpec{Name: "PBFTcop", Proto: config.PBFTcop, ScalesWithCores: true}, 4)
}

func BenchmarkOpHybridPBFT(b *testing.B) {
	benchOp(b, bench.ProtocolSpec{Name: "HybridPBFT", Proto: config.HybridPBFT, ScalesWithCores: true}, 4)
}

func BenchmarkOpMinBFT(b *testing.B) {
	benchOp(b, bench.ProtocolSpec{Name: "MinBFT", Proto: config.MinBFT}, 1)
}

// --- Trusted subsystem microbenchmarks ----------------------------------------

// BenchmarkTrInXCertify measures one independent-counter certification
// including the simulated SGX transition.
func BenchmarkTrInXCertify(b *testing.B) {
	key := crypto.NewKeyFromSeed("bench")
	tx := trinx.New(enclave.NewPlatform("bench"), trinx.MakeInstanceID(0, 0), 1, key, enclave.DefaultCostModel)
	defer tx.Destroy()
	d := crypto.Hash(make([]byte, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.CreateIndependent(0, uint64(i+1), d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrInXVerify measures certificate verification inside the
// enclave.
func BenchmarkTrInXVerify(b *testing.B) {
	key := crypto.NewKeyFromSeed("bench")
	p := enclave.NewPlatform("bench")
	issuer := trinx.New(p, trinx.MakeInstanceID(0, 0), 1, key, enclave.DefaultCostModel)
	defer issuer.Destroy()
	verifier := trinx.New(p, trinx.MakeInstanceID(1, 0), 1, key, enclave.DefaultCostModel)
	defer verifier.Destroy()
	d := crypto.Hash(make([]byte, 32))
	cert, err := issuer.CreateIndependent(0, 1, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verifier.Verify(cert, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUSIGCreateUI measures MinBFT's per-message certification.
func BenchmarkUSIGCreateUI(b *testing.B) {
	key := crypto.NewKeyFromSeed("bench")
	u := usig.New(enclave.NewPlatform("bench"), 0, key, enclave.DefaultCostModel)
	defer u.Destroy()
	d := crypto.Hash(make([]byte, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.CreateUI(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------------

// ablationLoad runs a short fixed load and reports throughput.
func ablationLoad(b *testing.B, proto config.Protocol, pillars, batch int, rotate bool) {
	spec := bench.ProtocolSpec{Name: proto.String(), Proto: proto, ScalesWithCores: true}
	for i := 0; i < b.N; i++ {
		c, err := bench.BuildCluster(spec, pillars, batch, rotate, enclave.DefaultCostModel,
			transport.LinkProfile{}, func() statemachine.Application { return echo.New(0) })
		if err != nil {
			b.Fatal(err)
		}
		tput, _, err := bench.RunLoad(c, 24, 100*time.Millisecond, 400*time.Millisecond,
			func(uint32) workload.Generator { return workload.NewFixed(0) })
		c.Stop()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tput, "ops/s")
	}
}

// BenchmarkAblationBatching contrasts unbatched vs batched ordering
// (the Fig. 5b vs 5c effect) on HybsterX.
func BenchmarkAblationBatching(b *testing.B) {
	b.Run("batch=1", func(b *testing.B) { ablationLoad(b, config.HybsterX, 4, 1, false) })
	b.Run("batch=16", func(b *testing.B) { ablationLoad(b, config.HybsterX, 4, 16, false) })
}

// BenchmarkAblationRotation contrasts fixed vs rotating proposer
// (§6.2).
func BenchmarkAblationRotation(b *testing.B) {
	b.Run("fixed", func(b *testing.B) { ablationLoad(b, config.HybsterX, 4, 16, false) })
	b.Run("rotating", func(b *testing.B) { ablationLoad(b, config.HybsterX, 4, 16, true) })
}

// BenchmarkAblationPhases contrasts two-phase (Hybster) against
// three-phase (PBFT-style) ordering at equal parallelism — the §4.3
// design decision.
func BenchmarkAblationPhases(b *testing.B) {
	b.Run("two-phase/HybsterX", func(b *testing.B) { ablationLoad(b, config.HybsterX, 4, 16, false) })
	b.Run("three-phase/HybridPBFT", func(b *testing.B) { ablationLoad(b, config.HybridPBFT, 4, 16, false) })
}

// BenchmarkAblationEnclaveSharing contrasts multiplied TrInX instances
// against the shared-enclave Multi-TrInX under concurrent callers —
// the §6.1 conclusion that "multiplying the subsystem instead of
// extending it is indeed the better alternative".
func BenchmarkAblationEnclaveSharing(b *testing.B) {
	key := crypto.NewKeyFromSeed("bench")
	const workers = 4
	b.Run("multiplied", func(b *testing.B) {
		p := enclave.NewPlatform("bench")
		certs := make([]trinx.Certifier, workers)
		for i := range certs {
			tx := trinx.New(p, trinx.MakeInstanceID(0, uint32(i)), 1, key, enclave.DefaultCostModel)
			defer tx.Destroy()
			certs[i] = trinx.NewCertifier(tx, "trinx")
		}
		runParallelCertify(b, certs)
	})
	b.Run("shared", func(b *testing.B) {
		p := enclave.NewPlatform("bench")
		host := trinx.NewMultiHost(p, key, enclave.DefaultCostModel)
		defer host.Destroy()
		certs := make([]trinx.Certifier, workers)
		for i := range certs {
			inst, err := host.Instance(trinx.MakeInstanceID(0, uint32(i)), 1)
			if err != nil {
				b.Fatal(err)
			}
			certs[i] = trinx.NewCertifier(inst, "multi-trinx")
		}
		runParallelCertify(b, certs)
	})
}

func runParallelCertify(b *testing.B, certs []trinx.Certifier) {
	msg := make([]byte, 32)
	var next atomic.Int64
	b.ResetTimer()
	b.SetParallelism(len(certs))
	b.RunParallel(func(pb *testing.PB) {
		// Each parallel worker takes its own certifier (round-robin).
		c := certs[int(next.Add(1))%len(certs)]
		for pb.Next() {
			if _, err := c.Certify(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPreventVsDetect contrasts the per-message trusted-
// subsystem work of equivocation prevention (TrInX independent
// certificates, §4.2) against detection (USIG UIs): the mechanisms
// cost the same per call — the difference Hybster exploits is
// architectural (parallelizable counters), not cryptographic.
func BenchmarkAblationPreventVsDetect(b *testing.B) {
	key := crypto.NewKeyFromSeed("bench")
	d := crypto.Hash(make([]byte, 32))
	b.Run("prevent/TrInX", func(b *testing.B) {
		tx := trinx.New(enclave.NewPlatform("bench"), trinx.MakeInstanceID(0, 0), 1, key, enclave.DefaultCostModel)
		defer tx.Destroy()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tx.CreateIndependent(0, uint64(i+1), d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("detect/USIG", func(b *testing.B) {
		u := usig.New(enclave.NewPlatform("bench"), 0, key, enclave.DefaultCostModel)
		defer u.Destroy()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.CreateUI(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterScaling reports HybsterX throughput as pillar count
// grows — the headline §6.2 claim at this host's scale.
func BenchmarkClusterScaling(b *testing.B) {
	for _, pillars := range []int{1, 2, 4} {
		pillars := pillars
		b.Run(config.HybsterX.String()+"-pillars="+itoa(pillars), func(b *testing.B) {
			ablationLoad(b, config.HybsterX, pillars, 16, true)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

var _ = cluster.Options{} // keep the import for documentation linking
