// Chaos example: run a Hybster group under a seeded fault schedule —
// link loss, duplication, reordering, byte corruption, delays, a
// partition window, and a replica crash-restart — then heal and check
// the two invariants the harness enforces: identical hash-chained
// execution histories on every replica (safety) and fresh commits
// plus catch-up to the frontier (liveness). Same seed, same faults:
// the run is fully replayable.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hybster/internal/chaos"
	"hybster/internal/config"
)

func main() {
	seed := flag.Int64("seed", 1, "schedule seed (same seed = same fault sequence)")
	horizon := flag.Duration("horizon", 2*time.Second, "fault-active window")
	flag.Parse()

	res, err := chaos.Run(chaos.Options{
		Protocol: config.HybsterS,
		Seed:     *seed,
		Horizon:  *horizon,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Printf("\nsurvived: %d commits under faults, %d after heal\n",
		res.ChaosCommits, res.PostHealCommits)
	fmt.Printf("faults injected: %d dropped, %d duplicated, %d corrupted, %d delayed, %d reordered\n",
		res.Faults.Dropped, res.Faults.Duplicated,
		res.Faults.Corrupted+res.Faults.CorruptDropped, res.Faults.Delayed, res.Faults.Held)
	fmt.Printf("safety: %d history points compared, all identical\n", res.HistoryPoints)
}
