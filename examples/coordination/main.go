// Coordination-service example (§6.4): a ZooKeeper-style hierarchical
// namespace replicated with HybsterX. Two groups of clients use it for
// classic coordination patterns — service registration (membership)
// and a version-guarded configuration update (optimistic locking).
package main

import (
	"fmt"
	"log"
	"time"

	"hybster/internal/apps/coordination"
	"hybster/internal/client"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/statemachine"
)

func do(cl *client.Client, op coordination.Op, path string, data []byte, version uint64) coordination.Result {
	out, err := cl.Invoke(coordination.EncodeRequest(op, path, data, version), op.IsReadOnly())
	if err != nil {
		log.Fatalf("%v %s: %v", op, path, err)
	}
	res, err := coordination.DecodeResult(out)
	if err != nil {
		log.Fatalf("%v %s: decode: %v", op, path, err)
	}
	return res
}

func main() {
	cfg := config.Default(config.HybsterX)
	c, err := cluster.NewHybster(cluster.Options{Config: cfg},
		func() statemachine.Application { return coordination.New() })
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	admin, err := c.NewClient(2 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()

	// --- membership: services register themselves under /services ---
	do(admin, coordination.OpCreate, "/services", nil, 0)
	for _, name := range []string{"auth", "billing", "search"} {
		r := do(admin, coordination.OpCreate, "/services/"+name, []byte("host-"+name+":443"), 0)
		fmt.Printf("registered /services/%s (status %v)\n", name, r.Status)
	}
	members := do(admin, coordination.OpChildren, "/services", nil, 0)
	fmt.Printf("current members: %v\n", members.Children)

	// --- versioned config update: two writers race; versions arbitrate ---
	do(admin, coordination.OpCreate, "/config", []byte("v=1"), 0)
	cfgNode := do(admin, coordination.OpGetData, "/config", nil, 0)
	fmt.Printf("config %q at version %d\n", cfgNode.Data, cfgNode.Version)

	writer1, _ := c.NewClient(2 * time.Second)
	defer writer1.Close()
	writer2, _ := c.NewClient(2 * time.Second)
	defer writer2.Close()

	// Both read version 1; only the first conditional update wins.
	r1 := do(writer1, coordination.OpSetData, "/config", []byte("v=2 (writer1)"), cfgNode.Version)
	r2 := do(writer2, coordination.OpSetData, "/config", []byte("v=2 (writer2)"), cfgNode.Version)
	fmt.Printf("writer1 update: %v (new version %d)\n", r1.Status, r1.Version)
	fmt.Printf("writer2 update: %v (expected BadVersion — lost the race)\n", r2.Status)

	final := do(admin, coordination.OpGetData, "/config", nil, 0)
	fmt.Printf("final config: %q at version %d\n", final.Data, final.Version)

	// --- cleanup honors the hierarchy: non-empty nodes refuse deletion ---
	if r := do(admin, coordination.OpDelete, "/services", nil, 0); r.Status != coordination.StatusNotEmpty {
		log.Fatalf("expected NotEmpty, got %v", r.Status)
	}
	fmt.Println("delete of non-empty /services correctly refused")
}
