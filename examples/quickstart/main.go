// Quickstart: boot a three-replica HybsterX group in-process, issue a
// handful of commands against a replicated counter, and read the
// result back — the minimal end-to-end use of the public API.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/statemachine"
)

func main() {
	// 1. Configure HybsterX: n = 2f+1 = 3 replicas, four pillars each.
	cfg := config.Default(config.HybsterX)

	// 2. Boot the replica group on the in-process fabric. Each replica
	//    gets its own simulated SGX platform hosting its TrInX
	//    instances, exactly one per pillar.
	c, err := cluster.NewHybster(cluster.Options{Config: cfg},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	// 3. Attach a client and issue ordered commands. Each Invoke
	//    returns once f+1 replicas answered with matching results.
	cl, err := c.NewClient(2 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke([]byte{1}, false) // add 1
		if err != nil {
			log.Fatalf("invoke %d: %v", i, err)
		}
		fmt.Printf("op %2d -> counter = %d\n", i, binary.BigEndian.Uint64(res))
	}

	// 4. A read-only operation goes through ordering too (no read
	//    optimization — strong consistency).
	res, err := cl.Invoke(nil, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter: %d (agreed by f+1 = %d replicas)\n",
		binary.BigEndian.Uint64(res), cfg.F()+1)
}
