// View-change example (§5.2.3): order requests through a Hybster
// group, crash the leader mid-run, and watch the remaining replicas
// elect a new leader and continue without losing a single committed
// command — the scenario of the paper's Fig. 3 walkthrough.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
)

func main() {
	cfg := config.Default(config.HybsterS) // sequential basic protocol
	cfg.ViewChangeTimeout = 500 * time.Millisecond

	c, err := cluster.NewHybster(cluster.Options{Config: cfg},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	invoke := func(i int) uint64 {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			log.Fatalf("op %d: %v", i, err)
		}
		return binary.BigEndian.Uint64(res)
	}

	fmt.Println("phase 1: view 0, replica 0 leads")
	for i := 1; i <= 5; i++ {
		fmt.Printf("  op %d -> counter %d (view %d)\n", i, invoke(i), view(c, 1))
	}

	fmt.Println("phase 2: crashing the leader (replica 0) ...")
	c.Crash(0)

	fmt.Println("phase 3: the group suspects the leader, runs the view change, and recovers")
	start := time.Now()
	for i := 6; i <= 12; i++ {
		v := invoke(i)
		fmt.Printf("  op %d -> counter %d (view %d, %v after crash)\n",
			i, v, view(c, 1), time.Since(start).Round(time.Millisecond))
		if v != uint64(i) {
			log.Fatalf("counter %d != %d: a committed command was lost or duplicated", v, i)
		}
	}
	fmt.Printf("done: no committed command lost; new leader is replica %d\n",
		cfg.LeaderOf(view(c, 1)))
}

func view(c *cluster.Cluster, replica uint32) timeline.View {
	return c.Replica(replica).(*core.Engine).View()
}
