// Byzantine example (§4.2, §5.2.1): demonstrates *why* Hybster is
// safe — equivocation is prevented by the trusted subsystem itself.
// A faulty leader that wants to propose two different request batches
// for the same consensus instance simply cannot obtain two valid
// certificates: the independent counter certificate for a value can be
// issued exactly once.
//
// The example drives TrInX directly (the attack surface) and then
// shows the follower-side verification rejecting every forgery avenue
// the attacker has left.
package main

import (
	"fmt"
	"log"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

func main() {
	key := crypto.NewKeyFromSeed("demo-group")

	// The faulty leader's platform and TrInX instance (pillar 0).
	leaderTX := trinx.New(enclave.NewPlatform("leader"), trinx.MakeInstanceID(0, 0), 2, key, enclave.CostModel{})
	defer leaderTX.Destroy()
	// A correct follower's instance, used for verification.
	followerTX := trinx.New(enclave.NewPlatform("follower"), trinx.MakeInstanceID(1, 0), 2, key, enclave.CostModel{})
	defer followerTX.Destroy()

	instance := timeline.Pack(0, 50) // consensus instance (view 0, order 50)
	batchA := crypto.Hash([]byte("PREPARE: transfer $100 to Alice"))
	batchB := crypto.Hash([]byte("PREPARE: transfer $100 to Mallory"))

	fmt.Println("attack 1: certify two conflicting PREPAREs for instance (0,50)")
	certA, err := leaderTX.CreateIndependent(0, uint64(instance), batchA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  first certificate issued: counter value %s\n", timeline.Point(certA.Value))
	if _, err := leaderTX.CreateIndependent(0, uint64(instance), batchB); err != nil {
		fmt.Printf("  second certificate REFUSED by TrInX: %v\n", err)
	} else {
		log.Fatal("  BUG: equivocation possible!")
	}

	fmt.Println("attack 2: reuse the first certificate for the conflicting batch")
	if err := followerTX.Verify(certA, batchB); err != nil {
		fmt.Printf("  follower rejects it: %v\n", err)
	} else {
		log.Fatal("  BUG: certificate transplant accepted!")
	}

	fmt.Println("attack 3: forge a certificate without the group key")
	outsiderTX := trinx.New(enclave.NewPlatform("outsider"),
		trinx.MakeInstanceID(0, 0), 2, crypto.NewKeyFromSeed("wrong-key"), enclave.CostModel{})
	defer outsiderTX.Destroy()
	forged, err := outsiderTX.CreateIndependent(0, uint64(instance), batchB)
	if err != nil {
		log.Fatal(err)
	}
	if err := followerTX.Verify(forged, batchB); err != nil {
		fmt.Printf("  follower rejects the forgery: %v\n", err)
	} else {
		log.Fatal("  BUG: forged certificate accepted!")
	}

	fmt.Println("attack 4: conceal participation during a view change")
	// The leader took part in instance (0,50); to support view 1 it
	// must issue a continuing certificate, and TrInX unforgeably
	// records the previous counter value [0|50] inside it.
	vcDigest := crypto.Hash([]byte("VIEW-CHANGE 0 -> 1"))
	cont, err := leaderTX.CreateContinuing(0, uint64(timeline.ViewStart(1)), vcDigest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  continuing certificate reveals prev = %s — the follower now knows\n",
		timeline.Point(cont.Prev))
	fmt.Println("  every instance up to order 50 must be disclosed in the VIEW-CHANGE")

	fmt.Println()
	fmt.Println("all four equivocation/concealment avenues are closed by TrInX —")
	fmt.Println("this is the mechanism behind Hybster's two-phase ordering (§5.2).")
}
