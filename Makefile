GO ?= go

.PHONY: build test test-race vet chaos-smoke bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short seeded chaos run: all four protocols under link faults,
# a partition window, and a crash-restart, with the race detector on.
chaos-smoke:
	$(GO) test -race -short -count=1 -run 'TestChaos' ./internal/chaos/...

bench:
	$(GO) test -bench=. -benchmem
