GO ?= go

# Per-target budget of the fuzz smoke (make fuzz-smoke / CI).
FUZZTIME ?= 20s

.PHONY: build test test-race vet chaos-smoke chaos-long fuzz-smoke bench bench-smoke bench-hotpath bench-compare ops-demo audit-demo audit-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short seeded chaos run: all four protocols under link faults,
# a partition window, and a crash-restart, with the race detector on.
chaos-smoke:
	$(GO) test -race -short -count=1 -run 'TestChaos' ./internal/chaos/...

# Long seed sweep with elevated fault rates, alternating cold-restart
# and amnesia recovery. Tune with CHAOS_LONG_SEEDS / CHAOS_LONG_HORIZON.
chaos-long:
	CHAOS_LONG=1 $(GO) test -count=1 -timeout 45m \
		-run 'TestChaosLongDurableSweep' -v ./internal/chaos/

# Coverage-guided fuzzing smoke: every Fuzz target in the tree gets
# $(FUZZTIME) of mutation (Go allows one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshal$$' -fuzztime $(FUZZTIME) ./internal/message/
	$(GO) test -run '^$$' -fuzz 'FuzzViewChangeRoundtrip$$' -fuzztime $(FUZZTIME) ./internal/message/
	$(GO) test -run '^$$' -fuzz 'FuzzDecoderPrimitives$$' -fuzztime $(FUZZTIME) ./internal/message/
	$(GO) test -run '^$$' -fuzz 'FuzzPooledBufferAliasing$$' -fuzztime $(FUZZTIME) ./internal/message/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeRecord$$' -fuzztime $(FUZZTIME) ./internal/wal/

bench:
	$(GO) test -bench=. -benchmem

# Telemetry-overhead gate: the instrumented enclave hot path must run,
# not just compile. 100 iterations is a smoke, not a measurement; the
# in-test overhead assertion is what matters.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetryOverhead' -benchtime 100x ./internal/trinx/

# Hot-path benchmark suite: alloc/latency profile of cached digests,
# marshal-once multicast, mailboxes, and the full prepare→commit→exec
# path, plus a quick hybster-bench figure run. Writes BENCH_hotpath.txt
# (standard go-test bench output) and BENCH_fig5c.json; CI uploads both
# as artifacts. Tune iteration time with HOTPATH_BENCHTIME.
HOTPATH_BENCHTIME ?= 0.3s

bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem \
		-benchtime $(HOTPATH_BENCHTIME) \
		./internal/message/ ./internal/cop/ ./internal/transport/ ./internal/reply/ ./internal/cluster/ \
		| tee BENCH_hotpath.txt
	$(GO) run ./cmd/hybster-bench -figure 5c -quick -duration 1s -clients 96 \
		-json -results .bench-scratch
	mv .bench-scratch/fig5c.json BENCH_fig5c.json
	rm -rf .bench-scratch

# Throughput-regression guard: fresh quick sweep vs the committed
# baseline in results/fig5c.json (>25% drop on any point fails).
bench-compare:
	sh scripts/bench-compare.sh

# Live observability demo: boots a 3-replica TCP group with -ops,
# commits client load, and scrapes /metrics + health probes.
ops-demo:
	sh scripts/ops-demo.sh

# Live auditing demo: boots a 3-replica TCP group with replica 0 as
# the online auditor, commits load, asserts zero findings, then runs
# the offline trace-merge auditor over every replica's ring dump.
audit-demo:
	sh scripts/audit-demo.sh

# Audited chaos smoke: the fork-detection test plus a short clean soak
# with the auditor attached to every run, under the race detector.
audit-smoke:
	$(GO) test -race -short -count=1 -run 'TestChaosAudit' ./internal/chaos/
