// Package audit reconstructs cluster-wide causal traces from
// per-replica telemetry and audits live protocol invariants.
//
// The package has two halves (DESIGN.md §13):
//
//   - Trace reconstruction. Every replica's telemetry.Tracer records a
//     stream of typed protocol events tagged with the replica's ID,
//     dual wall/monotonic timestamps, and the digest prefix of the
//     batch or checkpoint the event is about. Merge folds any number
//     of those streams (live rings or dumped files) into one causally
//     ordered timeline, and BuildSpans condenses the timeline into
//     per-slot spans — propose → prepare → commit → deliver → exec —
//     with per-stage latency statistics.
//
//   - Online auditing. An Auditor consumes rounds of Samples (a
//     metrics snapshot plus the trace ring, per replica) and raises
//     typed Findings when a protocol invariant is violated: commit or
//     delivery digests diverging across replicas at the same
//     coordinate (a safety violation — the PR 8 bug class), a
//     replica's delivery frontier stalling while a quorum progresses,
//     view-change storms that churn views without progress, deaf
//     per-sender UI streams on MinBFT, and checkpoint stability
//     falling far behind execution.
//
// Samples come from a Source: in-process (TelemetrySource, used by
// tests and the chaos harness) or scraped over HTTP from a replica's
// ops endpoint (HTTPSource reading /vars and /trace). A Monitor polls
// sources periodically and exposes the current Report plus a health
// check suitable for demoting a replica's /readyz.
//
// Everything here is an observer: the package imports telemetry and
// stats only, never a protocol engine, and a hung or unreachable
// replica degrades a sample rather than blocking the auditor.
package audit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hybster/internal/telemetry"
)

// Sample is one replica's observability snapshot at one instant: the
// flattened metrics registry plus the trace ring's retained events.
type Sample struct {
	// Replica is the sampled replica's ID.
	Replica uint32
	// Protocol is the engine's protocol name (config.Protocol.String()
	// form, e.g. "HybsterX"); it selects the metric-name prefix the
	// auditor reads frontiers from.
	Protocol string
	// When is the collection time.
	When time.Time
	// Metrics is the registry snapshot (full metric name → value).
	Metrics map[string]float64
	// Events is the trace ring's retained events, oldest first.
	Events []telemetry.Event
	// Exempt suppresses liveness findings (frontier stall, storms,
	// deaf streams, checkpoint lag) for this replica this round —
	// set by harnesses for replicas that are deliberately down,
	// zombied, or still rejoining. Safety checks (digest divergence)
	// are never exempted: a down replica's past events still count.
	Exempt bool
}

// Source produces Samples for one replica.
type Source interface {
	Collect() (Sample, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Sample, error)

// Collect implements Source.
func (f SourceFunc) Collect() (Sample, error) { return f() }

// TelemetrySource samples a replica's telemetry bundle in-process —
// the zero-network path tests and the chaos harness use. exempt, when
// non-nil, is consulted at collection time so the harness can flag
// replicas it has deliberately taken down.
func TelemetrySource(replica uint32, protocol string, tel *telemetry.Telemetry, exempt func() bool) Source {
	return SourceFunc(func() (Sample, error) {
		s := Sample{
			Replica:  replica,
			Protocol: protocol,
			When:     time.Now(),
			Metrics:  tel.Metrics().Snapshot(),
			Events:   tel.Tracer().Events(),
		}
		if exempt != nil {
			s.Exempt = exempt()
		}
		return s, nil
	})
}

// HTTPSource scrapes a replica's ops endpoint: GET /trace for the
// ring (whose dump header carries the replica ID and protocol) and
// GET /vars for the metrics snapshot. The zero Client gets a 5s
// timeout so one hung replica cannot stall a whole audit round.
type HTTPSource struct {
	// BaseURL is the ops endpoint root, e.g. "http://127.0.0.1:9100".
	BaseURL string
	// Client is the HTTP client to scrape with (nil → 5s timeout).
	Client *http.Client
}

// Collect implements Source by scraping /trace then /vars.
func (s *HTTPSource) Collect() (Sample, error) {
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	base := strings.TrimRight(s.BaseURL, "/")

	resp, err := client.Get(base + "/trace")
	if err != nil {
		return Sample{}, fmt.Errorf("audit: scrape %s/trace: %w", base, err)
	}
	dump, err := telemetry.ReadDump(resp.Body)
	resp.Body.Close()
	if err != nil {
		return Sample{}, fmt.Errorf("audit: scrape %s/trace: %w", base, err)
	}

	resp, err = client.Get(base + "/vars")
	if err != nil {
		return Sample{}, fmt.Errorf("audit: scrape %s/vars: %w", base, err)
	}
	var vars struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		return Sample{}, fmt.Errorf("audit: scrape %s/vars: %w", base, err)
	}

	return Sample{
		Replica:  dump.Replica,
		Protocol: dump.Protocol,
		When:     time.Now(),
		Metrics:  vars.Metrics,
		Events:   dump.Events,
	}, nil
}

// metricPrefix maps a protocol name (config.Protocol.String() form)
// to the metric-name prefix that engine registers its gauges under.
func metricPrefix(protocol string) string {
	switch protocol {
	case "HybsterS", "HybsterX":
		return "hybster_core_"
	case "PBFTcop", "HybridPBFT":
		return "hybster_pbft_"
	case "MinBFT":
		return "hybster_minbft_"
	default:
		return ""
	}
}

// frontierMetric names the executed-order gauge for a protocol.
func frontierMetric(protocol string) string {
	if p := metricPrefix(protocol); p != "" {
		return p + "last_executed"
	}
	return ""
}

// viewMetric names the current-view gauge for a protocol.
func viewMetric(protocol string) string {
	if p := metricPrefix(protocol); p != "" {
		return p + "view"
	}
	return ""
}

// stableMetric names the stable-checkpoint gauge for a protocol
// (MinBFT calls it the low watermark).
func stableMetric(protocol string) string {
	switch metricPrefix(protocol) {
	case "hybster_core_":
		return "hybster_core_stable_checkpoint"
	case "hybster_pbft_":
		return "hybster_pbft_stable_checkpoint"
	case "hybster_minbft_":
		return "hybster_minbft_low_watermark"
	}
	return ""
}
