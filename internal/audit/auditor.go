package audit

import (
	"fmt"
	"sort"
	"sync"

	"hybster/internal/telemetry"
)

// FindingKind classifies an audit finding.
type FindingKind string

const (
	// DigestDivergence: two replicas recorded different digests for
	// the same protocol coordinate — a committed or delivered batch,
	// an accepted proposal within one view, or a checkpoint of the
	// same order. This is a safety violation (the PR 8 bug class):
	// correct protocols never let it happen, whatever the faults.
	DigestDivergence FindingKind = "digest-divergence"
	// FrontierStall: a replica's execution frontier sat still across
	// consecutive audit rounds while a quorum of its peers advanced
	// past it by more than the configured gap.
	FrontierStall FindingKind = "frontier-stall"
	// ViewChangeStorm: a replica churned through views without its
	// execution frontier moving — view changes that never restore
	// progress.
	ViewChangeStorm FindingKind = "view-change-storm"
	// DeafStream: a MinBFT replica reported a per-sender UI stream
	// whose expected-counter gap exceeds the holdback horizon, so the
	// stream can never drain without a view change (the PR 8 deaf
	// replica class), persisting across rounds.
	DeafStream FindingKind = "deaf-stream"
	// CheckpointLag: a replica's stable checkpoint fell further behind
	// its execution frontier than the configured bound and stayed
	// there — garbage collection has effectively stopped.
	CheckpointLag FindingKind = "checkpoint-lag"
)

// Finding is one detected invariant violation.
type Finding struct {
	Kind FindingKind `json:"kind"`
	// Replicas lists the replicas implicated (both sides of a
	// divergence; the single victim of a liveness finding).
	Replicas []uint32 `json:"replicas,omitempty"`
	View     uint64   `json:"view,omitempty"`
	Slot     uint64   `json:"slot,omitempty"`
	Pillar   uint32   `json:"pillar,omitempty"`
	// Digests lists the conflicting digest prefixes of a divergence.
	Digests []string `json:"digests,omitempty"`
	// Detail is the human-readable account.
	Detail string `json:"detail"`
	// Round is the audit round (1-based) that raised the finding.
	Round int `json:"round"`
}

// Options tune the auditor's detection thresholds. Zero values select
// the documented defaults; the liveness thresholds deliberately err
// towards silence, because a false "safety is fine but replica 2 is
// stalled" claim from the auditor is worse than a late true one.
type Options struct {
	// FrontierStallGap is how many orders behind the quorum frontier a
	// flat replica must be before it counts as stalling (default 16).
	FrontierStallGap uint64
	// StallRounds is how many consecutive rounds the stall must
	// persist before a finding is raised (default 3).
	StallRounds int
	// StormViews is the view advance within StormRounds rounds that,
	// with zero execution progress, constitutes a storm (default 4).
	StormViews uint64
	// StormRounds is the storm observation window (default 6).
	StormRounds int
	// DeafRounds is how many consecutive rounds a deaf UI stream must
	// persist before a finding (default 3).
	DeafRounds int
	// CheckpointLagMax is the largest tolerated gap between a
	// replica's execution frontier and its stable checkpoint
	// (default 256 orders).
	CheckpointLagMax uint64
	// LagRounds is how many consecutive rounds the checkpoint lag
	// must persist (default 3).
	LagRounds int
	// RetainSlots bounds digest-divergence memory: coordinates more
	// than this many slots behind the highest slot seen are pruned
	// (default 8192).
	RetainSlots uint64
	// MaxFindings caps the findings list; excess findings are counted
	// but dropped (default 128).
	MaxFindings int
}

func (o *Options) fillDefaults() {
	if o.FrontierStallGap == 0 {
		o.FrontierStallGap = 16
	}
	if o.StallRounds == 0 {
		o.StallRounds = 3
	}
	if o.StormViews == 0 {
		o.StormViews = 4
	}
	if o.StormRounds == 0 {
		o.StormRounds = 6
	}
	if o.DeafRounds == 0 {
		o.DeafRounds = 3
	}
	if o.CheckpointLagMax == 0 {
		o.CheckpointLagMax = 256
	}
	if o.LagRounds == 0 {
		o.LagRounds = 3
	}
	if o.RetainSlots == 0 {
		o.RetainSlots = 8192
	}
	if o.MaxFindings == 0 {
		o.MaxFindings = 128
	}
}

// digestKey is one cross-replica digest-agreement coordinate.
type digestKey struct {
	cat    string // "proposal" | "commit" | "deliver" | "checkpoint"
	view   uint64 // 0 for view-independent categories
	slot   uint64
	pillar uint32
}

// viewExec is one storm-window observation.
type viewExec struct {
	view uint64
	exec uint64
}

// track is the auditor's per-replica liveness state.
type track struct {
	protocol    string
	haveLast    bool
	lastExec    uint64
	stallRounds int
	deafRounds  int
	lagRounds   int
	window      []viewExec
}

func (t *track) reset() {
	t.haveLast = false
	t.stallRounds, t.deafRounds, t.lagRounds = 0, 0, 0
	t.window = t.window[:0]
}

// Auditor consumes rounds of per-replica Samples and raises Findings
// when protocol invariants break. Safety checks (digest divergence)
// run on every round; liveness checks (stalls, storms, deaf streams,
// checkpoint lag) run only while enabled via EnableLiveness, so a
// harness can suppress them during deliberately induced outages and
// arm them once the cluster is healed.
type Auditor struct {
	opts Options

	mu        sync.Mutex
	liveness  bool
	round     int
	seenSeq   map[uint32]uint64 // next unprocessed trace Seq per replica
	digests   map[digestKey]map[string][]uint32
	maxSlot   uint64
	tracks    map[uint32]*track
	findings  []Finding
	dedup     map[string]bool
	truncated int
}

// New creates an auditor with zero-valued options defaulted.
func New(opts Options) *Auditor {
	opts.fillDefaults()
	return &Auditor{
		opts:    opts,
		seenSeq: make(map[uint32]uint64),
		digests: make(map[digestKey]map[string][]uint32),
		tracks:  make(map[uint32]*track),
		dedup:   make(map[string]bool),
	}
}

// EnableLiveness arms (or disarms) the liveness checks. Arming resets
// every per-replica streak, so observations made during a disabled
// (faulty) phase never count towards a finding.
func (a *Auditor) EnableLiveness(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.liveness = on
	for _, t := range a.tracks {
		t.reset()
	}
}

// Observe ingests one audit round: one Sample per reachable replica.
func (a *Auditor) Observe(samples []Sample) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.round++
	for i := range samples {
		a.observeEvents(&samples[i])
	}
	a.pruneDigests()
	if a.liveness {
		a.observeLiveness(samples)
	}
}

// ObserveDumps runs the safety checks over dumped trace files — the
// offline path hybster-audit uses. Dump headers override per-event
// replica tags, exactly as in Merge.
func (a *Auditor) ObserveDumps(dumps ...*telemetry.TraceDump) {
	samples := make([]Sample, 0, len(dumps))
	for _, d := range dumps {
		if d == nil {
			continue
		}
		events := make([]telemetry.Event, len(d.Events))
		copy(events, d.Events)
		for i := range events {
			events[i].Replica = d.Replica
			if d.Protocol != "" {
				events[i].Protocol = d.Protocol
			}
		}
		samples = append(samples, Sample{Replica: d.Replica, Protocol: d.Protocol, Events: events})
	}
	a.Observe(samples)
}

// observeEvents feeds a replica's fresh trace events into the digest
// agreement maps. Each replica's stream is consumed once: events at
// or below the per-replica high-water Seq were already processed. A
// Seq regression (the tracer was rebuilt, e.g. an amnesia restart)
// resets the high-water mark; reprocessing is harmless because the
// digest maps are sets and findings deduplicate.
func (a *Auditor) observeEvents(s *Sample) {
	from, ok := a.seenSeq[s.Replica]
	if len(s.Events) > 0 && ok && s.Events[len(s.Events)-1].Seq+1 < from {
		from = 0
	}
	for i := range s.Events {
		e := &s.Events[i]
		if e.Seq < from {
			continue
		}
		a.seenSeq[s.Replica] = e.Seq + 1
		if e.Digest == "" {
			continue
		}
		var k digestKey
		switch e.Kind {
		case telemetry.EvPropose, telemetry.EvPrepare:
			// Within one view a slot has exactly one proposal; two
			// digests here mean leader equivocation.
			k = digestKey{cat: "proposal", view: e.View, slot: e.Slot, pillar: e.Pillar}
		case telemetry.EvCommit:
			k = digestKey{cat: "commit", view: e.View, slot: e.Slot, pillar: e.Pillar}
		case telemetry.EvDeliver:
			// Delivery is forever: the digest must agree across views.
			k = digestKey{cat: "deliver", slot: e.Slot, pillar: e.Pillar}
		case telemetry.EvCheckpoint, telemetry.EvCkptStable:
			// The checkpoint digest covers the state at an order —
			// identical on every correct replica regardless of view.
			k = digestKey{cat: "checkpoint", slot: e.Slot}
		default:
			continue
		}
		if e.Slot > a.maxSlot {
			a.maxSlot = e.Slot
		}
		seen := a.digests[k]
		if seen == nil {
			seen = make(map[string][]uint32)
			a.digests[k] = seen
		}
		if !containsReplica(seen[e.Digest], s.Replica) {
			seen[e.Digest] = append(seen[e.Digest], s.Replica)
		}
		if len(seen) > 1 {
			a.raiseDivergence(k, seen)
		}
	}
}

// raiseDivergence records a digest-divergence finding for coordinate
// k (deduplicated, so a persisting divergence raises once).
func (a *Auditor) raiseDivergence(k digestKey, seen map[string][]uint32) {
	dedup := fmt.Sprintf("diverge/%s/v%d/s%d/p%d", k.cat, k.view, k.slot, k.pillar)
	digests := make([]string, 0, len(seen))
	for d := range seen {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	replicaSet := make(map[uint32]bool)
	for _, rs := range seen {
		for _, r := range rs {
			replicaSet[r] = true
		}
	}
	replicas := make([]uint32, 0, len(replicaSet))
	for r := range replicaSet {
		replicas = append(replicas, r)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	a.raise(dedup, Finding{
		Kind: DigestDivergence, Replicas: replicas,
		View: k.view, Slot: k.slot, Pillar: k.pillar, Digests: digests,
		Detail: fmt.Sprintf("%s digest divergence at slot %d (view %d, pillar %d): %d distinct digests %v across replicas %v",
			k.cat, k.slot, k.view, k.pillar, len(digests), digests, replicas),
	})
}

// pruneDigests bounds divergence-state memory by forgetting
// coordinates far behind the highest slot seen.
func (a *Auditor) pruneDigests() {
	if uint64(len(a.digests)) <= 4*a.opts.RetainSlots || a.maxSlot <= a.opts.RetainSlots {
		return
	}
	floor := a.maxSlot - a.opts.RetainSlots
	for k := range a.digests {
		if k.slot < floor {
			delete(a.digests, k)
		}
	}
}

// observeLiveness runs the stall/storm/deaf/lag checks for one round.
func (a *Auditor) observeLiveness(samples []Sample) {
	// Frontier census first: who is eligible, who advanced, how far
	// ahead the quorum is.
	type obs struct {
		s        *Sample
		t        *track
		exec     uint64
		view     uint64
		advanced bool
	}
	var eligible []obs
	var maxExec uint64
	advanced := 0
	for i := range samples {
		s := &samples[i]
		t := a.tracks[s.Replica]
		if t == nil {
			t = &track{}
			a.tracks[s.Replica] = t
		}
		t.protocol = s.Protocol
		fm := frontierMetric(s.Protocol)
		if s.Exempt || fm == "" || s.Metrics == nil {
			// Down/zombied/unknown replicas restart their streaks when
			// they come back; counting absence as a stall would turn
			// every deliberate crash into a finding.
			t.reset()
			continue
		}
		exec := uint64(s.Metrics[fm])
		view := uint64(s.Metrics[viewMetric(s.Protocol)])
		o := obs{s: s, t: t, exec: exec, view: view}
		if t.haveLast && exec > t.lastExec {
			o.advanced = true
			advanced++
		}
		if exec > maxExec {
			maxExec = exec
		}
		eligible = append(eligible, o)
	}
	quorum := len(samples)/2 + 1

	for _, o := range eligible {
		t := o.t
		// Frontier stall: flat while a quorum moved past the gap.
		stalled := t.haveLast && !o.advanced && advanced >= quorum &&
			maxExec > o.exec && maxExec-o.exec > a.opts.FrontierStallGap
		if stalled {
			t.stallRounds++
		} else {
			t.stallRounds = 0
		}
		if t.stallRounds >= a.opts.StallRounds {
			a.raise(fmt.Sprintf("stall/r%d", o.s.Replica), Finding{
				Kind: FrontierStall, Replicas: []uint32{o.s.Replica},
				Detail: fmt.Sprintf("replica %d frontier stalled at order %d for %d rounds while a quorum advanced to %d (gap %d > %d)",
					o.s.Replica, o.exec, t.stallRounds, maxExec, maxExec-o.exec, a.opts.FrontierStallGap),
			})
		}

		// View-change storm: views churn, frontier does not.
		t.window = append(t.window, viewExec{view: o.view, exec: o.exec})
		if len(t.window) > a.opts.StormRounds {
			t.window = t.window[1:]
		}
		if len(t.window) == a.opts.StormRounds {
			oldest := t.window[0]
			if o.view >= oldest.view+a.opts.StormViews && o.exec == oldest.exec {
				a.raise(fmt.Sprintf("storm/r%d/v%d", o.s.Replica, o.view), Finding{
					Kind: ViewChangeStorm, Replicas: []uint32{o.s.Replica}, View: o.view,
					Detail: fmt.Sprintf("replica %d advanced %d views (to %d) over %d rounds with no execution progress (order %d)",
						o.s.Replica, o.view-oldest.view, o.view, a.opts.StormRounds, o.exec),
				})
			}
		}

		// Deaf per-sender UI streams (MinBFT only).
		if deaf := o.s.Metrics["hybster_minbft_deaf_streams"]; deaf > 0 {
			t.deafRounds++
		} else {
			t.deafRounds = 0
		}
		if t.deafRounds >= a.opts.DeafRounds {
			a.raise(fmt.Sprintf("deaf/r%d", o.s.Replica), Finding{
				Kind: DeafStream, Replicas: []uint32{o.s.Replica},
				Detail: fmt.Sprintf("replica %d has %d deaf sender stream(s): expected-counter gap beyond the holdback horizon (%d) for %d rounds; only a view change can re-anchor them",
					o.s.Replica, int64(o.s.Metrics["hybster_minbft_deaf_streams"]),
					int64(o.s.Metrics["hybster_minbft_holdback_horizon"]), t.deafRounds),
			})
		}

		// Checkpoint stability lag.
		stable := uint64(o.s.Metrics[stableMetric(o.s.Protocol)])
		if o.exec > stable && o.exec-stable > a.opts.CheckpointLagMax {
			t.lagRounds++
		} else {
			t.lagRounds = 0
		}
		if t.lagRounds >= a.opts.LagRounds {
			a.raise(fmt.Sprintf("lag/r%d", o.s.Replica), Finding{
				Kind: CheckpointLag, Replicas: []uint32{o.s.Replica},
				Detail: fmt.Sprintf("replica %d stable checkpoint %d trails execution %d by %d orders (> %d) for %d rounds",
					o.s.Replica, stable, o.exec, o.exec-stable, a.opts.CheckpointLagMax, t.lagRounds),
			})
		}

		t.haveLast, t.lastExec = true, o.exec
	}
}

// raise appends a finding unless its dedup key already fired or the
// cap is reached.
func (a *Auditor) raise(dedup string, f Finding) {
	if a.dedup[dedup] {
		return
	}
	a.dedup[dedup] = true
	if len(a.findings) >= a.opts.MaxFindings {
		a.truncated++
		return
	}
	f.Round = a.round
	a.findings = append(a.findings, f)
}

// Report is the auditor's current verdict.
type Report struct {
	// Rounds is how many Observe rounds have been ingested.
	Rounds int `json:"rounds"`
	// Replicas lists every replica ever observed.
	Replicas []uint32 `json:"replicas"`
	// LivenessChecks reports whether liveness checks are armed.
	LivenessChecks bool `json:"liveness_checks"`
	// Findings are the violations detected so far, oldest first.
	Findings []Finding `json:"findings"`
	// Truncated counts findings dropped past the cap.
	Truncated int `json:"truncated_findings,omitempty"`
}

// Report snapshots the auditor's state.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	replicas := make([]uint32, 0, len(a.seenSeq))
	for r := range a.seenSeq {
		replicas = append(replicas, r)
	}
	for r := range a.tracks {
		if !containsReplica(replicas, r) {
			replicas = append(replicas, r)
		}
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	findings := make([]Finding, len(a.findings))
	copy(findings, a.findings)
	return Report{
		Rounds:         a.round,
		Replicas:       replicas,
		LivenessChecks: a.liveness,
		Findings:       findings,
		Truncated:      a.truncated,
	}
}

// Findings returns the detected violations, oldest first.
func (a *Auditor) Findings() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Finding, len(a.findings))
	copy(out, a.findings)
	return out
}

// Healthz reports audit health: nil with no findings, an error
// summarizing the first finding otherwise. Compose it into a
// replica's readiness probe to demote /readyz on violations.
func (a *Auditor) Healthz() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.findings) + a.truncated
	if n == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d finding(s); first: [%s] %s", n, a.findings[0].Kind, a.findings[0].Detail)
}

func containsReplica(rs []uint32, r uint32) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}
