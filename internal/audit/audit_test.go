package audit

import (
	"strings"
	"testing"
	"time"

	"hybster/internal/telemetry"
)

// ev builds a synthetic trace event with a shared clock origin: every
// event's wall clock sits exactly 1s ahead of its monotonic clock.
func ev(replica uint32, seq uint64, kind telemetry.EventKind, view, slot uint64, pillar uint32, digest string) telemetry.Event {
	return telemetry.Event{
		Seq: seq, TS: int64(time.Second) + int64(seq)*1000, Mono: int64(seq) * 1000,
		Replica: replica, Protocol: "HybsterX",
		Kind: kind, View: view, Slot: slot, Pillar: pillar, Digest: digest,
	}
}

func TestMergeSharedOriginOrdersByMono(t *testing.T) {
	d0 := &telemetry.TraceDump{Replica: 0, Protocol: "HybsterX", Events: []telemetry.Event{
		ev(0, 0, telemetry.EvPropose, 0, 1, 0, "aa"),
		ev(0, 4, telemetry.EvDeliver, 0, 1, 0, "aa"),
	}}
	// The second dump's events are untagged (Replica 0 in the event);
	// the header must override.
	d1 := &telemetry.TraceDump{Replica: 1, Protocol: "HybsterX", Events: []telemetry.Event{
		ev(0, 2, telemetry.EvPrepare, 0, 1, 0, "aa"),
	}}
	merged := Merge(d0, d1)
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	kinds := []telemetry.EventKind{merged[0].Kind, merged[1].Kind, merged[2].Kind}
	want := []telemetry.EventKind{telemetry.EvPropose, telemetry.EvPrepare, telemetry.EvDeliver}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("merged order %v, want %v", kinds, want)
		}
	}
	if merged[1].Replica != 1 {
		t.Fatalf("header did not override event replica: got r%d", merged[1].Replica)
	}
}

func TestMergeCrossProcessFallsBackToWallClock(t *testing.T) {
	// Two streams whose monotonic origins are hours apart (separate
	// processes): mono ordering would interleave them wrongly; wall
	// ordering must win.
	e0 := ev(0, 0, telemetry.EvPropose, 0, 1, 0, "aa")
	e0.TS = int64(10 * time.Second)
	e0.Mono = int64(9 * time.Second) // origin 1s
	e1 := ev(1, 0, telemetry.EvPrepare, 0, 1, 0, "aa")
	e1.TS = int64(11 * time.Second)
	e1.Mono = int64(time.Second) // origin 10s — different process
	d0 := &telemetry.TraceDump{Replica: 0, Events: []telemetry.Event{e0}}
	d1 := &telemetry.TraceDump{Replica: 1, Events: []telemetry.Event{e1}}
	merged := Merge(d1, d0)
	if merged[0].Kind != telemetry.EvPropose || merged[1].Kind != telemetry.EvPrepare {
		t.Fatalf("cross-process merge ordered by mono, want wall: %v then %v", merged[0].Kind, merged[1].Kind)
	}
}

func TestBuildSpansStages(t *testing.T) {
	var events []telemetry.Event
	seq := uint64(0)
	add := func(r uint32, kind telemetry.EventKind, slot uint64, at int64, digest string) {
		e := ev(r, seq, kind, 0, slot, 0, digest)
		e.Mono = at
		e.TS = int64(time.Second) + at
		seq++
		events = append(events, e)
	}
	for slot := uint64(1); slot <= 2; slot++ {
		base := int64(slot) * 1000
		add(0, telemetry.EvPropose, slot, base, "aa")
		add(1, telemetry.EvPrepare, slot, base+100, "aa")
		add(1, telemetry.EvCommit, slot, base+250, "aa")
		add(0, telemetry.EvDeliver, slot, base+400, "aa")
		exec := ev(0, seq, telemetry.EvExec, 0, slot, 0, "")
		exec.Mono = base + 900
		exec.TS = int64(time.Second) + base + 900
		seq++
		events = append(events, exec)
	}
	report := BuildSpans(Merge(&telemetry.TraceDump{Replica: 0, Events: events}))
	if !report.SharedClock {
		t.Fatal("expected shared clock")
	}
	if len(report.Spans) != 2 || report.Complete != 2 {
		t.Fatalf("spans=%d complete=%d, want 2/2", len(report.Spans), report.Complete)
	}
	for _, st := range report.Stages {
		if st.Count != 2 {
			t.Fatalf("stage %s count=%d, want 2", st.Stage, st.Count)
		}
	}
	var sb strings.Builder
	if err := WriteSpanReport(&sb, report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "propose→exec") {
		t.Fatalf("span report missing end-to-end stage:\n%s", sb.String())
	}
}

// TestAuditorDigestDivergence pins the PR 8 bug class: replicas that
// committed, delivered, or checkpointed different digests at the same
// coordinate must be flagged, once per coordinate.
func TestAuditorDigestDivergence(t *testing.T) {
	a := New(Options{})
	// Same (view, slot, pillar) commit, different digests.
	commit := []Sample{
		{Replica: 0, Protocol: "HybsterX", Events: []telemetry.Event{ev(0, 0, telemetry.EvCommit, 0, 5, 1, "aaaa")}},
		{Replica: 1, Protocol: "HybsterX", Events: []telemetry.Event{ev(1, 0, telemetry.EvCommit, 0, 5, 1, "bbbb")}},
	}
	a.Observe(commit)
	// Delivery divergence across views: slot 7 delivered as X in view
	// 0 on one replica and as Y in view 3 on another — still a
	// violation (delivery is forever).
	a.Observe([]Sample{
		{Replica: 0, Events: []telemetry.Event{ev(0, 1, telemetry.EvDeliver, 0, 7, 0, "xxxx")}},
		{Replica: 1, Events: []telemetry.Event{ev(1, 1, telemetry.EvDeliver, 3, 7, 0, "yyyy")}},
	})
	// Checkpoint divergence at the same order.
	a.Observe([]Sample{
		{Replica: 0, Events: []telemetry.Event{ev(0, 2, telemetry.EvCkptStable, 0, 8, 0, "cccc")}},
		{Replica: 2, Events: []telemetry.Event{ev(2, 0, telemetry.EvCheckpoint, 1, 8, 0, "dddd")}},
	})
	findings := a.Findings()
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3: %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Kind != DigestDivergence {
			t.Fatalf("finding kind %s, want %s", f.Kind, DigestDivergence)
		}
		if len(f.Digests) != 2 || len(f.Replicas) != 2 {
			t.Fatalf("finding missing digests/replicas: %+v", f)
		}
	}
	// Re-observing the same streams must not duplicate findings.
	a.Observe(commit)
	if n := len(a.Findings()); n != 3 {
		t.Fatalf("re-observation duplicated findings: %d", n)
	}
	if a.Healthz() == nil {
		t.Fatal("Healthz nil with findings present")
	}
}

func TestAuditorAgreementIsClean(t *testing.T) {
	a := New(Options{})
	a.EnableLiveness(true)
	exec := 0.0
	for round := 0; round < 10; round++ {
		exec += 8
		var samples []Sample
		for r := uint32(0); r < 3; r++ {
			samples = append(samples, Sample{
				Replica: r, Protocol: "HybsterX",
				Metrics: map[string]float64{
					"hybster_core_last_executed":     exec,
					"hybster_core_view":              0,
					"hybster_core_stable_checkpoint": exec - 8,
				},
				Events: []telemetry.Event{
					ev(r, uint64(round)*2, telemetry.EvCommit, 0, uint64(exec), 0, "feed"),
					ev(r, uint64(round)*2+1, telemetry.EvDeliver, 0, uint64(exec), 0, "feed"),
				},
			})
		}
		a.Observe(samples)
	}
	if f := a.Findings(); len(f) != 0 {
		t.Fatalf("clean cluster produced findings: %+v", f)
	}
	if err := a.Healthz(); err != nil {
		t.Fatalf("Healthz on clean cluster: %v", err)
	}
}

func TestAuditorFrontierStall(t *testing.T) {
	a := New(Options{FrontierStallGap: 4, StallRounds: 2})
	a.EnableLiveness(true)
	run := func(a *Auditor, exemptLagger bool, rounds int) {
		exec := 0.0
		for round := 0; round < rounds; round++ {
			exec += 10
			samples := []Sample{
				{Replica: 0, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
				{Replica: 1, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
				{Replica: 2, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": 5}, Exempt: exemptLagger},
			}
			a.Observe(samples)
		}
	}
	run(a, false, 5)
	findings := a.Findings()
	if len(findings) != 1 || findings[0].Kind != FrontierStall {
		t.Fatalf("findings %+v, want one frontier-stall", findings)
	}
	if len(findings[0].Replicas) != 1 || findings[0].Replicas[0] != 2 {
		t.Fatalf("stall blamed %v, want [2]", findings[0].Replicas)
	}

	// The same outage with the lagger exempted (harness took it down
	// on purpose) must stay silent.
	b := New(Options{FrontierStallGap: 4, StallRounds: 2})
	b.EnableLiveness(true)
	run(b, true, 5)
	if f := b.Findings(); len(f) != 0 {
		t.Fatalf("exempt replica still flagged: %+v", f)
	}
}

func TestAuditorViewChangeStorm(t *testing.T) {
	a := New(Options{StormViews: 3, StormRounds: 4})
	a.EnableLiveness(true)
	for round := 0; round < 6; round++ {
		a.Observe([]Sample{{
			Replica: 1, Protocol: "PBFTcop",
			Metrics: map[string]float64{
				"hybster_pbft_last_executed": 40,
				"hybster_pbft_view":          float64(round),
			},
		}})
	}
	findings := a.Findings()
	if len(findings) == 0 || findings[0].Kind != ViewChangeStorm {
		t.Fatalf("findings %+v, want a view-change-storm", findings)
	}

	// Views advancing alongside execution progress is recovery, not a
	// storm.
	b := New(Options{StormViews: 3, StormRounds: 4})
	b.EnableLiveness(true)
	for round := 0; round < 6; round++ {
		b.Observe([]Sample{{
			Replica: 1, Protocol: "PBFTcop",
			Metrics: map[string]float64{
				"hybster_pbft_last_executed": float64(40 + round),
				"hybster_pbft_view":          float64(round),
			},
		}})
	}
	if f := b.Findings(); len(f) != 0 {
		t.Fatalf("progressing view changes flagged as storm: %+v", f)
	}
}

func TestAuditorDeafStream(t *testing.T) {
	a := New(Options{DeafRounds: 2})
	a.EnableLiveness(true)
	for round := 0; round < 3; round++ {
		a.Observe([]Sample{{
			Replica: 2, Protocol: "MinBFT",
			Metrics: map[string]float64{
				"hybster_minbft_last_executed":    float64(10 + round),
				"hybster_minbft_deaf_streams":     1,
				"hybster_minbft_holdback_horizon": 128,
			},
		}})
	}
	findings := a.Findings()
	if len(findings) != 1 || findings[0].Kind != DeafStream {
		t.Fatalf("findings %+v, want one deaf-stream", findings)
	}
	if !strings.Contains(findings[0].Detail, "128") {
		t.Fatalf("deaf finding missing horizon: %s", findings[0].Detail)
	}
}

func TestAuditorCheckpointLag(t *testing.T) {
	a := New(Options{CheckpointLagMax: 100, LagRounds: 2})
	a.EnableLiveness(true)
	for round := 0; round < 3; round++ {
		a.Observe([]Sample{{
			Replica: 0, Protocol: "MinBFT",
			Metrics: map[string]float64{
				"hybster_minbft_last_executed": float64(500 + round),
				"hybster_minbft_low_watermark": 8,
			},
		}})
	}
	findings := a.Findings()
	if len(findings) != 1 || findings[0].Kind != CheckpointLag {
		t.Fatalf("findings %+v, want one checkpoint-lag", findings)
	}
}

// TestAuditorLivenessGate: observations made while liveness checks
// are disarmed (a harness-induced outage) must not seed streaks that
// fire right after arming.
func TestAuditorLivenessGate(t *testing.T) {
	a := New(Options{FrontierStallGap: 4, StallRounds: 2})
	exec := 0.0
	for round := 0; round < 5; round++ {
		exec += 10
		a.Observe([]Sample{
			{Replica: 0, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
			{Replica: 1, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
			{Replica: 2, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": 5}},
		})
	}
	if f := a.Findings(); len(f) != 0 {
		t.Fatalf("disarmed auditor raised liveness findings: %+v", f)
	}
	// Arm, then let replica 2 catch up immediately: still clean.
	a.EnableLiveness(true)
	for round := 0; round < 3; round++ {
		exec += 10
		a.Observe([]Sample{
			{Replica: 0, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
			{Replica: 1, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
			{Replica: 2, Protocol: "HybsterX", Metrics: map[string]float64{"hybster_core_last_executed": exec}},
		})
	}
	if f := a.Findings(); len(f) != 0 {
		t.Fatalf("healed cluster flagged after arming: %+v", f)
	}
}

func TestHTTPSourceScrapesOpsServer(t *testing.T) {
	tel := telemetry.NewFor("HybsterX", 3)
	tel.Counter("hybster_test_total", "test counter").Add(7)
	tel.TraceDigest(telemetry.EvCommit, 2, 9, 1, []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}, "")
	ops := telemetry.NewOpsServer(telemetry.OpsOptions{Telemetry: tel})
	if err := ops.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	src := &HTTPSource{BaseURL: "http://" + ops.Addr()}
	s, err := src.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if s.Replica != 3 || s.Protocol != "HybsterX" {
		t.Fatalf("sample identity r%d %q, want r3 HybsterX", s.Replica, s.Protocol)
	}
	if s.Metrics["hybster_test_total"] != 7 {
		t.Fatalf("metrics snapshot missing counter: %v", s.Metrics)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != telemetry.EvCommit || s.Events[0].Digest == "" {
		t.Fatalf("trace scrape wrong: %+v", s.Events)
	}
}

func TestMonitorPollAndHealthDemotion(t *testing.T) {
	tel0 := telemetry.NewFor("HybsterX", 0)
	tel1 := telemetry.NewFor("HybsterX", 1)
	a := New(Options{})
	m := NewMonitor(a, time.Hour,
		TelemetrySource(0, "HybsterX", tel0, nil),
		TelemetrySource(1, "HybsterX", tel1, nil),
	)
	tel0.TraceDigest(telemetry.EvCommit, 0, 4, 0, []byte("same-digest"), "")
	tel1.TraceDigest(telemetry.EvCommit, 0, 4, 0, []byte("same-digest"), "")
	m.Poll()
	if err := m.Healthz(); err != nil {
		t.Fatalf("healthy cluster demoted: %v", err)
	}
	// Now replica 1 commits a different digest at the same coordinate.
	tel1.TraceDigest(telemetry.EvCommit, 0, 5, 0, []byte("digest-A\x00\x00"), "")
	tel0.TraceDigest(telemetry.EvCommit, 0, 5, 0, []byte("digest-B\x00\x00"), "")
	m.Poll()
	if err := m.Healthz(); err == nil {
		t.Fatal("divergence did not demote health")
	}
	report := m.Report()
	if report.Rounds != 2 || len(report.Findings) != 1 {
		t.Fatalf("report rounds=%d findings=%d, want 2/1", report.Rounds, len(report.Findings))
	}
	if report.Findings[0].Kind != DigestDivergence {
		t.Fatalf("finding kind %s", report.Findings[0].Kind)
	}

	// A failing source degrades to a scrape error, not a wedge.
	bad := NewMonitor(New(Options{}), time.Hour, SourceFunc(func() (Sample, error) {
		return Sample{}, errFake
	}))
	bad.Poll()
	if r := bad.Report(); r.ScrapeErrors != 1 || r.LastScrapeError == "" {
		t.Fatalf("scrape failure not surfaced: %+v", r)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake scrape failure" }
