package audit

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hybster/internal/telemetry"
)

// originTolerance bounds how far apart two replicas' monotonic-clock
// origins (wall time minus monotonic offset) may sit and still be
// treated as the same clock. Replicas in one process share a clock
// origin to the nanosecond; separate processes differ by however long
// apart they started, which is orders of magnitude beyond this.
const originTolerance = 2 * time.Millisecond

// Merge folds per-replica event streams into one causally ordered
// timeline. Each dump's header overrides the per-event replica and
// protocol tags, so dumps from replicas that never tagged their
// tracer still merge correctly.
//
// Ordering: when every stream shares one monotonic-clock origin
// (replicas in one process — the in-process cluster and chaos
// harness), events sort by the monotonic timestamp, which is exact
// and immune to wall-clock steps. Otherwise events sort by wall
// time, which is only as good as cross-machine clock sync — the
// reason spans report per-stage statistics rather than trusting any
// single cross-replica delta. Ties break by (replica, seq), so the
// result is deterministic either way.
func Merge(dumps ...*telemetry.TraceDump) []telemetry.Event {
	var events []telemetry.Event
	for _, d := range dumps {
		if d == nil {
			continue
		}
		for _, ev := range d.Events {
			ev.Replica = d.Replica
			if d.Protocol != "" {
				ev.Protocol = d.Protocol
			}
			events = append(events, ev)
		}
	}
	shared := sharedOrigin(events)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		ta, tb := eventTime(a, shared), eventTime(b, shared)
		if ta != tb {
			return ta < tb
		}
		if a.Replica != b.Replica {
			return a.Replica < b.Replica
		}
		return a.Seq < b.Seq
	})
	return events
}

// sharedOrigin reports whether every event's monotonic clock is
// anchored at the same wall-clock origin (see originTolerance).
func sharedOrigin(events []telemetry.Event) bool {
	var min, max int64
	first := true
	for i := range events {
		origin := events[i].TS - events[i].Mono
		if first {
			min, max = origin, origin
			first = false
			continue
		}
		if origin < min {
			min = origin
		}
		if origin > max {
			max = origin
		}
	}
	return !first && max-min <= int64(originTolerance)
}

// eventTime is the merge-ordering timestamp: monotonic when the
// streams share an origin, wall otherwise.
func eventTime(e *telemetry.Event, shared bool) int64 {
	if shared {
		return e.Mono
	}
	return e.TS
}

// WriteTimeline renders a merged timeline human-readably, one event
// per line, with times relative to the first event.
func WriteTimeline(w io.Writer, events []telemetry.Event) error {
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}
	shared := sharedOrigin(events)
	base := eventTime(&events[0], shared)
	for i := range events {
		e := &events[i]
		line := fmt.Sprintf("%+14s  r%-2d %-10s %-14s v%-3d s%-6d p%d",
			formatOffset(eventTime(e, shared)-base), e.Replica, e.Protocol, e.Kind, e.View, e.Slot, e.Pillar)
		if e.Digest != "" {
			line += "  d=" + e.Digest
		}
		if e.Note != "" {
			line += "  " + e.Note
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// formatOffset renders a nanosecond offset as seconds with microsecond
// precision ("+1.002003s").
func formatOffset(ns int64) string {
	return fmt.Sprintf("+%.6fs", float64(ns)/float64(time.Second))
}
