package audit

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hybster/internal/stats"
	"hybster/internal/telemetry"
)

// Span is the cluster-wide life of one consensus slot: the first
// observation of each pipeline stage across every replica's stream.
// Stage times are nanoseconds since the report's timeline base; -1
// marks a stage no replica's retained ring observed (rings are
// finite, so old slots lose their early stages first).
type Span struct {
	Slot   uint64 `json:"slot"`
	Pillar uint32 `json:"pillar"`
	// View is the view of the earliest ordering event observed.
	View uint64 `json:"view"`
	// Digest is the batch-digest prefix correlating the span's events.
	Digest  string `json:"digest,omitempty"`
	Propose int64  `json:"propose_ns"`
	Prepare int64  `json:"prepare_ns"`
	Commit  int64  `json:"commit_ns"`
	Deliver int64  `json:"deliver_ns"`
	Exec    int64  `json:"exec_ns"`
}

// complete reports whether every ordering stage was observed
// (exec excluded: execution events trail delivery asynchronously and
// the tail slots of a run legitimately haven't executed yet).
func (s *Span) complete() bool {
	return s.Propose >= 0 && s.Prepare >= 0 && s.Commit >= 0 && s.Deliver >= 0
}

// StageSummary is one pipeline stage's latency distribution in
// microseconds, condensed from every span that observed both of the
// stage's endpoints.
type StageSummary struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	AvgUS int64  `json:"avg_us"`
	P50US int64  `json:"p50_us"`
	P90US int64  `json:"p90_us"`
	P99US int64  `json:"p99_us"`
	MaxUS int64  `json:"max_us"`
}

// SpanReport is the condensed cross-replica view of a merged
// timeline: per-slot spans plus per-stage and end-to-end latency
// distributions.
type SpanReport struct {
	// SharedClock records whether stage latencies came from one
	// monotonic clock (in-process cluster) or from wall clocks subject
	// to cross-machine skew.
	SharedClock bool `json:"shared_clock"`
	// Complete counts spans whose full ordering pipeline
	// (propose→deliver) was observed.
	Complete int            `json:"complete_spans"`
	Spans    []Span         `json:"spans"`
	Stages   []StageSummary `json:"stages"`
}

// spanStages defines the per-stage latency pairs, in pipeline order.
var spanStages = []struct {
	name string
	from func(*Span) int64
	to   func(*Span) int64
}{
	{"propose→prepare", func(s *Span) int64 { return s.Propose }, func(s *Span) int64 { return s.Prepare }},
	{"prepare→commit", func(s *Span) int64 { return s.Prepare }, func(s *Span) int64 { return s.Commit }},
	{"commit→deliver", func(s *Span) int64 { return s.Commit }, func(s *Span) int64 { return s.Deliver }},
	{"deliver→exec", func(s *Span) int64 { return s.Deliver }, func(s *Span) int64 { return s.Exec }},
	{"propose→deliver", func(s *Span) int64 { return s.Propose }, func(s *Span) int64 { return s.Deliver }},
	{"propose→exec", func(s *Span) int64 { return s.Propose }, func(s *Span) int64 { return s.Exec }},
}

// BuildSpans condenses a merged timeline (see Merge) into per-slot
// spans and stage latency distributions. Ordering events join on
// (slot, pillar); execution events carry no pillar, so they join on
// slot alone.
func BuildSpans(events []telemetry.Event) SpanReport {
	shared := sharedOrigin(events)
	var base int64
	haveBase := false

	type key struct {
		slot   uint64
		pillar uint32
	}
	spans := make(map[key]*Span)
	get := func(slot uint64, pillar uint32) *Span {
		k := key{slot, pillar}
		s, ok := spans[k]
		if !ok {
			s = &Span{Slot: slot, Pillar: pillar, Propose: -1, Prepare: -1, Commit: -1, Deliver: -1, Exec: -1}
			spans[k] = s
		}
		return s
	}
	// earliest records t into *at if unset or later, tracking view and
	// digest from the earliest ordering event.
	earliest := func(at *int64, t int64) bool {
		if *at < 0 || t < *at {
			*at = t
			return true
		}
		return false
	}

	// execTimes collects execution events separately: they join on
	// slot only and must land on every matching pillar's span.
	execTimes := make(map[uint64]int64)

	for i := range events {
		e := &events[i]
		t := eventTime(e, shared)
		if !haveBase {
			base, haveBase = t, true
		}
		rel := t - base
		switch e.Kind {
		case telemetry.EvExec:
			if cur, ok := execTimes[e.Slot]; !ok || rel < cur {
				execTimes[e.Slot] = rel
			}
			continue
		case telemetry.EvPropose, telemetry.EvPrepare, telemetry.EvCommit, telemetry.EvDeliver:
		default:
			continue
		}
		s := get(e.Slot, e.Pillar)
		var firsted bool
		switch e.Kind {
		case telemetry.EvPropose:
			firsted = earliest(&s.Propose, rel)
		case telemetry.EvPrepare:
			firsted = earliest(&s.Prepare, rel)
		case telemetry.EvCommit:
			firsted = earliest(&s.Commit, rel)
		case telemetry.EvDeliver:
			firsted = earliest(&s.Deliver, rel)
		}
		if firsted && e.Kind == telemetry.EvPropose {
			s.View, s.Digest = e.View, e.Digest
		} else if s.Digest == "" && e.Digest != "" {
			s.Digest = e.Digest
		}
	}

	report := SpanReport{SharedClock: shared}
	recorders := make([]*stats.Recorder, len(spanStages))
	for i := range recorders {
		recorders[i] = stats.NewRecorder()
	}
	for _, s := range spans {
		if t, ok := execTimes[s.Slot]; ok {
			s.Exec = t
		}
		if s.complete() {
			report.Complete++
		}
		for i, st := range spanStages {
			from, to := st.from(s), st.to(s)
			if from >= 0 && to >= from {
				recorders[i].Record(time.Duration(to - from))
			}
		}
		report.Spans = append(report.Spans, *s)
	}
	sort.Slice(report.Spans, func(i, j int) bool {
		a, b := &report.Spans[i], &report.Spans[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		return a.Pillar < b.Pillar
	})
	for i, st := range spanStages {
		sum := recorders[i].Summarize()
		report.Stages = append(report.Stages, StageSummary{
			Stage: st.name,
			Count: sum.Count,
			AvgUS: sum.Avg.Microseconds(),
			P50US: sum.P50.Microseconds(),
			P90US: sum.P90.Microseconds(),
			P99US: sum.P99.Microseconds(),
			MaxUS: sum.Max.Microseconds(),
		})
	}
	return report
}

// WriteSpanReport renders the per-stage latency table.
func WriteSpanReport(w io.Writer, r SpanReport) error {
	clock := "shared monotonic clock"
	if !r.SharedClock {
		clock = "wall clocks (cross-replica skew applies)"
	}
	if _, err := fmt.Fprintf(w, "%d spans (%d complete), %s\n", len(r.Spans), r.Complete, clock); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %8s %10s %10s %10s %10s %10s\n",
		"stage", "count", "avg", "p50", "p90", "p99", "max"); err != nil {
		return err
	}
	for _, st := range r.Stages {
		if st.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-18s %8d %9dµs %9dµs %9dµs %9dµs %9dµs\n",
			st.Stage, st.Count, st.AvgUS, st.P50US, st.P90US, st.P99US, st.MaxUS); err != nil {
			return err
		}
	}
	return nil
}
