package audit

import (
	"sync"
	"time"
)

// Monitor drives an Auditor from a set of Sources on a fixed cadence
// — the deployment-facing wrapper that turns the passive Auditor into
// an online service. A source that fails to collect simply
// contributes nothing that round (and is counted), so one crashed
// replica never wedges the audit of the others.
type Monitor struct {
	auditor  *Auditor
	sources  []Source
	interval time.Duration

	mu         sync.Mutex
	scrapeErrs uint64
	lastErr    error
	stop       chan struct{}
	done       chan struct{}
	started    bool
}

// NewMonitor wraps auditor with a poller over sources. interval ≤ 0
// defaults to one second.
func NewMonitor(auditor *Auditor, interval time.Duration, sources ...Source) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	return &Monitor{auditor: auditor, sources: sources, interval: interval}
}

// Auditor returns the wrapped auditor.
func (m *Monitor) Auditor() *Auditor { return m.auditor }

// Poll runs one audit round now: collect every source, feed the
// auditor. Usable directly (tests, one-shot audits) or via Start.
func (m *Monitor) Poll() {
	samples := make([]Sample, 0, len(m.sources))
	for _, src := range m.sources {
		s, err := src.Collect()
		if err != nil {
			m.mu.Lock()
			m.scrapeErrs++
			m.lastErr = err
			m.mu.Unlock()
			continue
		}
		samples = append(samples, s)
	}
	m.auditor.Observe(samples)
}

// Start launches the background polling loop (idempotent).
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.Poll()
			}
		}
	}()
}

// Stop halts the polling loop and waits for it to exit (idempotent).
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

// MonitorReport is the monitor's externally visible state: the
// auditor's report plus scrape health.
type MonitorReport struct {
	Report
	// ScrapeErrors counts source collections that failed.
	ScrapeErrors uint64 `json:"scrape_errors,omitempty"`
	// LastScrapeError is the most recent collection failure.
	LastScrapeError string `json:"last_scrape_error,omitempty"`
}

// Report snapshots the audit report plus scrape-health counters —
// the value the ops server's /audit endpoint serves.
func (m *Monitor) Report() MonitorReport {
	r := MonitorReport{Report: m.auditor.Report()}
	m.mu.Lock()
	r.ScrapeErrors = m.scrapeErrs
	if m.lastErr != nil {
		r.LastScrapeError = m.lastErr.Error()
	}
	m.mu.Unlock()
	return r
}

// Healthz forwards the auditor's health verdict (nil = no findings);
// plug it into an ops server's Readyz to demote readiness on
// violations.
func (m *Monitor) Healthz() error { return m.auditor.Healthz() }
