package trinx

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

var testKey = crypto.NewKeyFromSeed("group")

func newTest(t *testing.T, id InstanceID, counters int) *TrInX {
	t.Helper()
	tx := New(enclave.NewPlatform("test"), id, counters, testKey, enclave.CostModel{})
	t.Cleanup(tx.Destroy)
	return tx
}

func TestInstanceID(t *testing.T) {
	id := MakeInstanceID(3, 7)
	if id.Replica() != 3 || id.Pillar() != 7 {
		t.Fatalf("roundtrip failed: %v", id)
	}
	if got := id.String(); got != "3(7)" {
		t.Fatalf("String() = %q", got)
	}
	err := quick.Check(func(r uint32, p uint16) bool {
		id := MakeInstanceID(r, uint32(p))
		return id.Replica() == r && id.Pillar() == uint32(p)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndependentMonotone(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	d := crypto.Hash([]byte("m"))

	if _, err := tx.CreateIndependent(0, 5, d); err != nil {
		t.Fatal(err)
	}
	// Equal value must be refused: uniqueness per counter value.
	if _, err := tx.CreateIndependent(0, 5, d); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("err = %v, want ErrNotIncreasing", err)
	}
	if _, err := tx.CreateIndependent(0, 4, d); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("err = %v, want ErrNotIncreasing", err)
	}
	if _, err := tx.CreateIndependent(0, 6, d); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Fatalf("counter = %d, want 6", v)
	}
}

func TestContinuingRecordsPrev(t *testing.T) {
	tx := newTest(t, MakeInstanceID(1, 0), 1)
	d := crypto.Hash([]byte("m"))

	c1, err := tx.CreateContinuing(0, 10, d)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Prev != 0 || c1.Value != 10 {
		t.Fatalf("cert = %+v", c1)
	}
	c2, err := tx.CreateContinuing(0, 10, d) // tv' == tv allowed
	if err != nil {
		t.Fatal(err)
	}
	if c2.Prev != 10 || c2.Value != 10 {
		t.Fatalf("cert = %+v", c2)
	}
	if _, err := tx.CreateContinuing(0, 9, d); !errors.Is(err, ErrCounterRegression) {
		t.Fatalf("err = %v, want ErrCounterRegression", err)
	}
}

func TestVerifyAcceptsGenuineRejectsForged(t *testing.T) {
	issuer := newTest(t, MakeInstanceID(0, 0), 1)
	verifier := newTest(t, MakeInstanceID(1, 0), 1)
	d := crypto.Hash([]byte("msg"))

	cert, err := issuer.CreateIndependent(0, 42, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(cert, d); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}

	// Any field mutation must invalidate the certificate.
	mutations := map[string]func(Certificate) Certificate{
		"value":   func(c Certificate) Certificate { c.Value++; return c },
		"counter": func(c Certificate) Certificate { c.Counter++; return c },
		"issuer":  func(c Certificate) Certificate { c.Issuer++; return c },
		"kind":    func(c Certificate) Certificate { c.Kind = Continuing; return c },
		"mac":     func(c Certificate) Certificate { c.MAC[0] ^= 1; return c },
	}
	for name, mutate := range mutations {
		if err := verifier.Verify(mutate(cert), d); !errors.Is(err, ErrBadCertificate) {
			t.Errorf("mutation %q: err = %v, want ErrBadCertificate", name, err)
		}
	}
	if err := verifier.Verify(cert, crypto.Hash([]byte("other"))); !errors.Is(err, ErrBadCertificate) {
		t.Errorf("wrong message accepted: %v", err)
	}
}

func TestVerifyRejectsForeignGroup(t *testing.T) {
	issuer := New(enclave.NewPlatform("a"), MakeInstanceID(0, 0), 1, crypto.NewKeyFromSeed("g1"), enclave.CostModel{})
	defer issuer.Destroy()
	verifier := New(enclave.NewPlatform("b"), MakeInstanceID(1, 0), 1, crypto.NewKeyFromSeed("g2"), enclave.CostModel{})
	defer verifier.Destroy()

	d := crypto.Hash([]byte("msg"))
	cert, err := issuer.CreateIndependent(0, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(cert, d); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("cross-group certificate accepted: %v", err)
	}
}

func TestEquivocationImpossibleWithIndependent(t *testing.T) {
	// The heart of Hybster's ordering safety: once a PREPARE for
	// counter value v exists, no second message can obtain a valid
	// certificate for v.
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	dA := crypto.Hash([]byte("request A"))
	dB := crypto.Hash([]byte("request B"))

	if _, err := tx.CreateIndependent(0, 100, dA); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateIndependent(0, 100, dB); err == nil {
		t.Fatal("second certificate for the same counter value issued — equivocation possible")
	}
}

func TestTrustedMACDoesNotAdvanceCounter(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 2)
	d := crypto.Hash([]byte("checkpoint"))
	if _, err := tx.CreateContinuing(1, 7, d); err != nil {
		t.Fatal(err)
	}
	m1, err := tx.CreateTrustedMAC(1, d)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tx.CreateTrustedMAC(1, crypto.Hash([]byte("checkpoint2")))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Value != 7 || m1.Prev != 7 || m2.Value != 7 {
		t.Fatalf("trusted MAC moved counter: %+v %+v", m1, m2)
	}
	// Both are valid simultaneously — trusted MACs are signatures,
	// not uniqueness proofs.
	verifier := newTest(t, MakeInstanceID(1, 0), 1)
	if err := verifier.Verify(m1, d); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAreIndependent(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 3)
	d := crypto.Hash([]byte("m"))
	if _, err := tx.CreateIndependent(0, 50, d); err != nil {
		t.Fatal(err)
	}
	// Counter 1 is untouched and starts from 0.
	if _, err := tx.CreateIndependent(1, 1, d); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateIndependent(2, 50, d); err != nil {
		t.Fatal(err)
	}
}

func TestNoSuchCounter(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	d := crypto.Hash([]byte("m"))
	if _, err := tx.CreateIndependent(5, 1, d); !errors.Is(err, ErrNoSuchCounter) {
		t.Fatalf("err = %v, want ErrNoSuchCounter", err)
	}
	if _, err := tx.CreateContinuing(5, 1, d); !errors.Is(err, ErrNoSuchCounter) {
		t.Fatalf("err = %v, want ErrNoSuchCounter", err)
	}
	if _, err := tx.CreateTrustedMAC(5, d); !errors.Is(err, ErrNoSuchCounter) {
		t.Fatalf("err = %v, want ErrNoSuchCounter", err)
	}
	if _, err := tx.Counter(5); !errors.Is(err, ErrNoSuchCounter) {
		t.Fatalf("err = %v, want ErrNoSuchCounter", err)
	}
}

func TestMultiCertificateAtomicity(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 3)
	d := crypto.Hash([]byte("m"))
	if _, err := tx.CreateIndependent(1, 10, d); err != nil {
		t.Fatal(err)
	}
	// Second entry regresses counter 1 → whole certificate refused,
	// counter 0 must not move.
	_, err := tx.CreateMulti(Independent, []CounterValue{
		{Counter: 0, Value: 5},
		{Counter: 1, Value: 10},
	}, d)
	if !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("err = %v, want ErrNotIncreasing", err)
	}
	v, _ := tx.Counter(0)
	if v != 0 {
		t.Fatalf("counter 0 moved to %d despite failed multi-cert", v)
	}

	cert, err := tx.CreateMulti(Independent, []CounterValue{
		{Counter: 0, Value: 5},
		{Counter: 1, Value: 11},
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	verifier := newTest(t, MakeInstanceID(1, 0), 1)
	if err := verifier.VerifyMulti(cert, d); err != nil {
		t.Fatal(err)
	}
	cert.Entries[0].Value++
	if err := verifier.VerifyMulti(cert, d); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("tampered multi-cert accepted: %v", err)
	}
}

func TestMultiContinuingRecordsPrev(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 2)
	d := crypto.Hash([]byte("m"))
	if _, err := tx.CreateContinuing(0, 3, d); err != nil {
		t.Fatal(err)
	}
	cert, err := tx.CreateMulti(Continuing, []CounterValue{
		{Counter: 0, Value: 3},
		{Counter: 1, Value: 9},
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Entries[0].Prev != 3 || cert.Entries[1].Prev != 0 {
		t.Fatalf("prev values wrong: %+v", cert.Entries)
	}
}

func TestConcurrentIndependentNoDuplicates(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	d := crypto.Hash([]byte("m"))
	const workers, attempts = 8, 200

	var mu sync.Mutex
	issued := make(map[uint64]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := uint64(1); v <= attempts; v++ {
				if cert, err := tx.CreateIndependent(0, v, d); err == nil {
					mu.Lock()
					issued[cert.Value]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for v, n := range issued {
		if n > 1 {
			t.Fatalf("value %d certified %d times", v, n)
		}
	}
}

func TestMultiHostSharedEnclave(t *testing.T) {
	p := enclave.NewPlatform("test")
	host := NewMultiHost(p, testKey, enclave.CostModel{})
	defer host.Destroy()

	a, err := host.Instance(MakeInstanceID(0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := host.Instance(MakeInstanceID(0, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.EnclaveCount() != 1 {
		t.Fatalf("EnclaveCount = %d, want 1 (shared)", p.EnclaveCount())
	}

	d := crypto.Hash([]byte("m"))
	certA, err := a.CreateIndependent(0, 5, d)
	if err != nil {
		t.Fatal(err)
	}
	// Counters are per instance: b can still use value 5.
	certB, err := b.CreateIndependent(0, 5, d)
	if err != nil {
		t.Fatal(err)
	}
	if certA.Issuer == certB.Issuer {
		t.Fatal("instances share an issuer ID")
	}

	// Certificates from the shared host verify at dedicated instances.
	dedicated := newTest(t, MakeInstanceID(9, 0), 1)
	if err := dedicated.Verify(certA, d); err != nil {
		t.Fatal(err)
	}

	// Re-registering with a different counter count fails.
	if _, err := host.Instance(MakeInstanceID(0, 0), 2); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
	// Idempotent re-registration succeeds and shares state.
	a2, err := host.Instance(MakeInstanceID(0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.CreateIndependent(0, 5, d); err == nil {
		t.Fatal("shared state not visible through second handle")
	}
}

func TestBridgeHandleSharesCounters(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	bridged := tx.WithBridge()
	d := crypto.Hash([]byte("m"))
	if _, err := tx.CreateIndependent(0, 1, d); err != nil {
		t.Fatal(err)
	}
	if _, err := bridged.CreateIndependent(0, 1, d); err == nil {
		t.Fatal("bridge handle did not observe counter state")
	}
	if _, err := bridged.CreateIndependent(0, 2, d); err != nil {
		t.Fatal(err)
	}
}

func TestCertifierProfiles(t *testing.T) {
	msg := make([]byte, 32)
	profiles := []Certifier{
		NewOpenSSLProfile(testKey),
		NewJavaProfile(testKey),
		NewTCryptoProfile(testKey),
		NewCASHProfile(testKey),
		NewCertifier(newTest(t, MakeInstanceID(0, 0), 1), "TrInX"),
	}
	for _, p := range profiles {
		mac, err := p.Certify(msg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if mac.IsZero() {
			t.Fatalf("%s: zero MAC", p.Name())
		}
		if p.Name() == "" {
			t.Fatal("empty profile name")
		}
	}
}

func TestCertifierMonotone(t *testing.T) {
	tx := newTest(t, MakeInstanceID(0, 0), 1)
	c := NewCertifier(tx, "TrInX")
	msg := make([]byte, 32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Certify(msg); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := tx.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 400 {
		t.Fatalf("counter = %d, want 400", v)
	}
}
