// Package trinx implements TrInX, the SGX-based trusted counter
// subsystem of Hybster (§5.1 of the paper). A TrInX instance maintains a
// set of monotonically non-decreasing counters inside a trusted
// execution environment (package enclave) and issues certificates that
// cryptographically bind outgoing messages to counter values using a
// secret key shared among all instances of a replica group:
//
//   - Continuing counter certificates τ(tss, tc, tv', tv): accept any
//     new value tv' >= tv, include the previous value tv, and therefore
//     prove a complete, gap-free counter history. Used by Hybster's
//     VIEW-CHANGE messages to force even faulty replicas to disclose how
//     far they participated in a view.
//   - Independent counter certificates τ(tss, tc, tv', -): issued only
//     for tv' strictly greater than the current value, so at most one
//     valid certificate can ever exist per counter value. Used by
//     PREPARE and COMMIT to prevent equivocation.
//   - Multi-counter certificates: one certificate attesting several
//     counters at once.
//   - Trusted MACs: continuing certificates with tv' = tv; cheap
//     non-repudiable replacements for digital signatures, used for
//     CHECKPOINT messages and by the HybridPBFT baseline.
//
// Instances are identified by an ID known to all replicas; instance
// r(u) belongs to pillar u of replica r (§5.3.1). Each instance runs in
// its own enclave; the Multi-TrInX variant (multi.go) hosts many
// instances in one shared enclave for the Fig. 5a comparison.
package trinx

import (
	"errors"
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

// Errors returned by certificate creation and verification.
var (
	ErrCounterRegression = errors.New("trinx: new value below current counter value")
	ErrNotIncreasing     = errors.New("trinx: independent certificate requires strictly increasing value")
	ErrNoSuchCounter     = errors.New("trinx: counter ID out of range")
	ErrBadCertificate    = errors.New("trinx: certificate verification failed")
	ErrWrongIssuer       = errors.New("trinx: certificate names a foreign issuer")
)

// Kind distinguishes the certificate flavors of §5.1.
type Kind uint8

const (
	// Continuing certificates include the previous counter value and
	// permit tv' == tv.
	Continuing Kind = iota + 1
	// Independent certificates omit the previous value and require
	// tv' > tv, guaranteeing uniqueness per counter value.
	Independent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Continuing:
		return "continuing"
	case Independent:
		return "independent"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// InstanceID identifies a TrInX instance group-wide. MakeInstanceID
// composes it from replica and pillar number.
type InstanceID uint64

// MakeInstanceID returns the instance ID of pillar u at replica r,
// the r(u) notation of §5.3.1.
func MakeInstanceID(replica uint32, pillar uint32) InstanceID {
	return InstanceID(uint64(replica)<<16 | uint64(pillar&0xffff))
}

// Replica extracts the replica component of the instance ID.
func (id InstanceID) Replica() uint32 { return uint32(id >> 16) }

// Pillar extracts the pillar component of the instance ID.
func (id InstanceID) Pillar() uint32 { return uint32(id & 0xffff) }

// String formats the ID in the paper's r(u) notation.
func (id InstanceID) String() string {
	return fmt.Sprintf("%d(%d)", id.Replica(), id.Pillar())
}

// Certificate is a single-counter certificate. Prev is meaningful only
// for Continuing certificates.
type Certificate struct {
	Kind    Kind
	Issuer  InstanceID
	Counter uint32
	Value   uint64
	Prev    uint64
	MAC     crypto.MAC
}

// CounterValue is one (counter, value, previous) triple inside a
// multi-counter certificate.
type CounterValue struct {
	Counter uint32
	Value   uint64
	Prev    uint64
}

// MultiCertificate attests the state of several counters at once.
type MultiCertificate struct {
	Kind    Kind
	Issuer  InstanceID
	Entries []CounterValue
	MAC     crypto.MAC
}

// state is the enclave-private state of one TrInX instance.
type state struct {
	id       InstanceID
	key      crypto.Key
	counters []uint64
}

// TrInX is a handle to one trusted counter instance. All methods are
// safe for concurrent use; calls serialize at the enclave boundary, as
// they would on real hardware.
type TrInX struct {
	id  InstanceID
	enc *enclave.Enclave
	met *instruments // nil unless Instrument was called
}

// New creates a TrInX instance in its own enclave on platform p.
// The instance holds numCounters counters, all initialized to zero, and
// certifies with the group secret key — the trusted-administrator setup
// step of §5.1.
func New(p *enclave.Platform, id InstanceID, numCounters int, key crypto.Key, cost enclave.CostModel) *TrInX {
	enc := enclave.Create(p, fmt.Sprintf("trinx-%s", id), cost, func() any {
		return &state{id: id, key: key, counters: make([]uint64, numCounters)}
	})
	return &TrInX{id: id, enc: enc}
}

// newFromEnclave wires a handle to an existing enclave; used by the
// Multi-TrInX host and the bridge variant.
func newFromEnclave(id InstanceID, enc *enclave.Enclave) *TrInX {
	return &TrInX{id: id, enc: enc}
}

// WithBridge returns a handle whose calls additionally pay the
// foreign-function bridge cost (the "TrInX (JNI)" variant of Fig. 5a).
// State is shared with the receiver.
func (t *TrInX) WithBridge() *TrInX {
	return &TrInX{id: t.id, enc: t.enc.WithBridge(), met: t.met}
}

// ID returns the instance ID.
func (t *TrInX) ID() InstanceID { return t.id }

// Destroy tears down the instance's enclave.
func (t *TrInX) Destroy() { t.enc.Destroy() }

// certMAC computes the MAC of a single-counter certificate. For
// independent certificates the previous value is excluded, matching the
// τ(tss, tc, tv', −) form of the paper.
func certMAC(key crypto.Key, kind Kind, issuer InstanceID, counter uint32, value, prev uint64, msg crypto.Digest) crypto.MAC {
	if kind == Independent {
		return key.SumParts([]byte{'t', 'x', byte(kind)},
			crypto.U64(uint64(issuer)), crypto.U32(counter), crypto.U64(value), msg[:])
	}
	return key.SumParts([]byte{'t', 'x', byte(kind)},
		crypto.U64(uint64(issuer)), crypto.U32(counter), crypto.U64(value), crypto.U64(prev), msg[:])
}

// multiMAC computes the MAC of a multi-counter certificate.
func multiMAC(key crypto.Key, kind Kind, issuer InstanceID, entries []CounterValue, msg crypto.Digest) crypto.MAC {
	parts := make([][]byte, 0, 3+3*len(entries))
	parts = append(parts, []byte{'t', 'm', byte(kind)}, crypto.U64(uint64(issuer)))
	for _, e := range entries {
		parts = append(parts, crypto.U32(e.Counter), crypto.U64(e.Value))
		if kind == Continuing {
			parts = append(parts, crypto.U64(e.Prev))
		}
	}
	parts = append(parts, msg[:])
	return key.SumParts(parts...)
}

// CreateContinuing issues a continuing counter certificate binding msg
// to the transition of counter tc from its current value to value. The
// new value must be >= the current one; the current value is recorded in
// the certificate as Prev and the counter is advanced to value.
func (t *TrInX) CreateContinuing(tc uint32, value uint64, msg crypto.Digest) (Certificate, error) {
	res, err := t.ecall(opCreateContinuing, func(st any) (any, error) {
		s := st.(*state)
		if int(tc) >= len(s.counters) {
			return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, tc, len(s.counters))
		}
		prev := s.counters[tc]
		if value < prev {
			return nil, fmt.Errorf("%w: counter %d at %d, requested %d", ErrCounterRegression, tc, prev, value)
		}
		s.counters[tc] = value
		return Certificate{
			Kind: Continuing, Issuer: s.id, Counter: tc, Value: value, Prev: prev,
			MAC: certMAC(s.key, Continuing, s.id, tc, value, prev, msg),
		}, nil
	})
	if err != nil {
		return Certificate{}, err
	}
	return res.(Certificate), nil
}

// CreateIndependent issues an independent counter certificate for a
// strictly increasing value of counter tc, guaranteeing that no other
// valid certificate for (tc, value) can ever exist.
func (t *TrInX) CreateIndependent(tc uint32, value uint64, msg crypto.Digest) (Certificate, error) {
	res, err := t.ecall(opCreateIndependent, func(st any) (any, error) {
		s := st.(*state)
		if int(tc) >= len(s.counters) {
			return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, tc, len(s.counters))
		}
		if value <= s.counters[tc] {
			return nil, fmt.Errorf("%w: counter %d at %d, requested %d", ErrNotIncreasing, tc, s.counters[tc], value)
		}
		s.counters[tc] = value
		return Certificate{
			Kind: Independent, Issuer: s.id, Counter: tc, Value: value,
			MAC: certMAC(s.key, Independent, s.id, tc, value, 0, msg),
		}, nil
	})
	if err != nil {
		return Certificate{}, err
	}
	return res.(Certificate), nil
}

// CreateTrustedMAC issues a non-repudiable trusted MAC over msg: a
// continuing certificate with tv' = tv that leaves counter tc unchanged
// (§5.1, "Trusted MAC Certificates").
func (t *TrInX) CreateTrustedMAC(tc uint32, msg crypto.Digest) (Certificate, error) {
	res, err := t.ecall(opCreateTrustedMAC, func(st any) (any, error) {
		s := st.(*state)
		if int(tc) >= len(s.counters) {
			return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, tc, len(s.counters))
		}
		v := s.counters[tc]
		return Certificate{
			Kind: Continuing, Issuer: s.id, Counter: tc, Value: v, Prev: v,
			MAC: certMAC(s.key, Continuing, s.id, tc, v, v, msg),
		}, nil
	})
	if err != nil {
		return Certificate{}, err
	}
	return res.(Certificate), nil
}

// CreateMulti issues a multi-counter certificate. For Continuing kind,
// each entry's value must be >= the counter's current value; for
// Independent, strictly greater. All counters advance atomically — if
// any entry is invalid, no counter moves.
func (t *TrInX) CreateMulti(kind Kind, updates []CounterValue, msg crypto.Digest) (MultiCertificate, error) {
	res, err := t.ecall(opCreateMulti, func(st any) (any, error) {
		s := st.(*state)
		entries := make([]CounterValue, len(updates))
		for i, u := range updates {
			if int(u.Counter) >= len(s.counters) {
				return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, u.Counter, len(s.counters))
			}
			cur := s.counters[u.Counter]
			switch kind {
			case Continuing:
				if u.Value < cur {
					return nil, fmt.Errorf("%w: counter %d at %d, requested %d", ErrCounterRegression, u.Counter, cur, u.Value)
				}
			case Independent:
				if u.Value <= cur {
					return nil, fmt.Errorf("%w: counter %d at %d, requested %d", ErrNotIncreasing, u.Counter, cur, u.Value)
				}
			default:
				return nil, fmt.Errorf("trinx: unknown certificate kind %d", kind)
			}
			entries[i] = CounterValue{Counter: u.Counter, Value: u.Value, Prev: cur}
		}
		for _, e := range entries {
			s.counters[e.Counter] = e.Value
		}
		return MultiCertificate{
			Kind: kind, Issuer: s.id, Entries: entries,
			MAC: multiMAC(s.key, kind, s.id, entries, msg),
		}, nil
	})
	if err != nil {
		return MultiCertificate{}, err
	}
	return res.(MultiCertificate), nil
}

// Verify checks that cert is a valid certificate over msg issued by the
// TrInX instance cert.Issuer. Verification runs inside the enclave (the
// shared secret never leaves the trust boundary) and therefore pays the
// same transition cost as certification. An instance refuses to "verify"
// its own issuer ID trivially — it recomputes the MAC like any other
// verifier; the soundness argument is that no instance ever issues a
// certificate naming a foreign issuer.
func (t *TrInX) Verify(cert Certificate, msg crypto.Digest) error {
	_, err := t.ecall(opVerify, func(st any) (any, error) {
		s := st.(*state)
		expect := certMAC(s.key, cert.Kind, cert.Issuer, cert.Counter, cert.Value, cert.Prev, msg)
		if expect != cert.MAC {
			return nil, ErrBadCertificate
		}
		return nil, nil
	})
	return err
}

// VerifyMulti checks a multi-counter certificate over msg.
func (t *TrInX) VerifyMulti(cert MultiCertificate, msg crypto.Digest) error {
	_, err := t.ecall(opVerifyMulti, func(st any) (any, error) {
		s := st.(*state)
		expect := multiMAC(s.key, cert.Kind, cert.Issuer, cert.Entries, msg)
		if expect != cert.MAC {
			return nil, ErrBadCertificate
		}
		return nil, nil
	})
	return err
}

// Counter returns the current value of counter tc, read through the
// enclave boundary. Intended for tests and diagnostics; protocol code
// tracks values itself.
func (t *TrInX) Counter(tc uint32) (uint64, error) {
	res, err := t.ecall(opCounterRead, func(st any) (any, error) {
		s := st.(*state)
		if int(tc) >= len(s.counters) {
			return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, tc, len(s.counters))
		}
		return s.counters[tc], nil
	})
	if err != nil {
		return 0, err
	}
	return res.(uint64), nil
}
