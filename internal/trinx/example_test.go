package trinx_test

import (
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// Example shows the §5.2.1 usage pattern: a leader certifies a PREPARE
// for consensus instance (view 0, order 50) with an independent
// counter certificate, a follower verifies it, and a second
// certificate for the same instance is impossible.
func Example() {
	key := crypto.NewKeyFromSeed("example-group")
	leader := trinx.New(enclave.NewPlatform("leader"), trinx.MakeInstanceID(0, 0), 1, key, enclave.CostModel{})
	defer leader.Destroy()
	follower := trinx.New(enclave.NewPlatform("follower"), trinx.MakeInstanceID(1, 0), 1, key, enclave.CostModel{})
	defer follower.Destroy()

	msg := crypto.Hash([]byte("PREPARE for (0,50)"))
	instance := uint64(timeline.Pack(0, 50))

	cert, err := leader.CreateIndependent(0, instance, msg)
	fmt.Println("first certificate:", err == nil)

	err = follower.Verify(cert, msg)
	fmt.Println("follower accepts:", err == nil)

	_, err = leader.CreateIndependent(0, instance, crypto.Hash([]byte("conflicting PREPARE")))
	fmt.Println("equivocation possible:", err == nil)

	// Output:
	// first certificate: true
	// follower accepts: true
	// equivocation possible: false
}
