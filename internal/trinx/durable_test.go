package trinx

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

// memSink is an in-memory SealSink: the "disk" of one test replica.
type memSink struct {
	blobs map[string][]byte
	saves int
}

func newMemSink() *memSink { return &memSink{blobs: make(map[string][]byte)} }

func (m *memSink) SaveSeal(name string, blob []byte) error {
	m.blobs[name] = append([]byte(nil), blob...)
	m.saves++
	return nil
}

func (m *memSink) LoadSeal(name string) ([]byte, bool, error) {
	b, ok := m.blobs[name]
	return b, ok, nil
}

func durableSetup(t *testing.T) (*enclave.Platform, crypto.Key, InstanceID) {
	t.Helper()
	p := enclave.NewPlatform("durable-test")
	key := crypto.NewKeyFromSeed("durable-test-group")
	return p, key, MakeInstanceID(0, 0)
}

func TestDurableResumesAboveCertifiedValues(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 2, key, enclave.CostModel{}, sink, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resumed() {
		t.Fatal("fresh instance claims to have resumed")
	}
	msg := crypto.HashParts([]byte("m"))
	var last uint64
	for v := uint64(1); v <= 20; v++ {
		if _, err := d.CreateIndependent(0, v, msg); err != nil {
			t.Fatalf("certify %d: %v", v, err)
		}
		last = v
	}
	d.Destroy() // crash: enclave memory gone, sink (disk) survives

	d2, err := NewDurable(p, id, 2, key, enclave.CostModel{}, sink, 8)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer d2.Destroy()
	if !d2.Resumed() {
		t.Fatal("recovered instance did not resume from seal")
	}
	cur, err := d2.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	if cur < last {
		t.Fatalf("recovered counter %d below last certified %d", cur, last)
	}
	// The certified values must be burned: re-certifying any of them
	// has to fail, or a recovered replica could equivocate.
	for v := uint64(1); v <= last; v++ {
		if _, err := d2.CreateIndependent(0, v, msg); !errors.Is(err, ErrNotIncreasing) {
			t.Fatalf("re-certify %d after crash: err=%v, want ErrNotIncreasing", v, err)
		}
	}
	// But fresh values beyond the horizon still work.
	if _, err := d2.CreateIndependent(0, cur+1, msg); err != nil {
		t.Fatalf("certify past horizon after recovery: %v", err)
	}
}

func TestDurableSealBatching(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	msg := crypto.HashParts([]byte("m"))
	for v := uint64(1); v <= 32; v++ {
		if _, err := d.CreateIndependent(0, v, msg); err != nil {
			t.Fatal(err)
		}
	}
	// Horizon reserve 16 amortizes seals: 32 advances need ~2 seals,
	// not 32. (Exact count: v=1 seals to 17, v=18 seals to 34.)
	if sink.saves > 4 {
		t.Errorf("%d seal writes for 32 advances with reserve 16", sink.saves)
	}
}

func TestDurableRolledBackSealRefused(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := crypto.HashParts([]byte("m"))
	if _, err := d.CreateIndependent(0, 1, msg); err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), sink.blobs[d.name]...) // snapshot the old seal
	for v := uint64(2); v <= 10; v++ {
		if _, err := d.CreateIndependent(0, v, msg); err != nil {
			t.Fatal(err)
		}
	}
	d.Destroy()

	// The rollback attack: restore the earlier blob and restart.
	sink.blobs[d.name] = stale
	if _, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 4); !errors.Is(err, ErrStaleSeal) {
		t.Fatalf("stale seal accepted: err=%v, want ErrStaleSeal", err)
	}
}

// TestDurableCrashMidSealRecovers pins the kill -9-inside-sealLocked
// window with a file-backed register (the multi-process deployment):
// the sealed blob reached disk but the register write-through did not.
// The next boot must accept the blob — it is the newest state — resume
// at its horizon, and heal the register file; refusing it (as the
// register-first ordering did) bricks an honest replica on a window
// that opens at every horizon extension.
func TestDurableCrashMidSealRecovers(t *testing.T) {
	regFile := filepath.Join(t.TempDir(), "sealreg")
	key := crypto.NewKeyFromSeed("durable-test-group")
	id := MakeInstanceID(0, 0)
	sink := newMemSink()

	p1 := enclave.NewPlatform("durable-test")
	if err := p1.BindStore(regFile); err != nil {
		t.Fatal(err)
	}
	d, err := NewDurable(p1, id, 1, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := crypto.HashParts([]byte("m"))
	if _, err := d.CreateIndependent(0, 1, msg); err != nil { // seal #1, committed
		t.Fatal(err)
	}
	preSeal, err := os.ReadFile(regFile) // register as of seal #1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateIndependent(0, 100, msg); err != nil { // seal #2, committed
		t.Fatal(err)
	}
	d.Destroy()
	// Rewind the register file to its pre-seal-#2 state: on disk this is
	// exactly what a crash between SaveSeal and CommitSeal leaves —
	// blob seq = register + 1.
	if err := os.WriteFile(regFile, preSeal, 0o600); err != nil {
		t.Fatal(err)
	}

	p2 := enclave.NewPlatform("durable-test") // reboot: memory gone
	if err := p2.BindStore(regFile); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDurable(p2, id, 1, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatalf("crash-mid-seal boot refused: %v", err)
	}
	defer d2.Destroy()
	if !d2.Resumed() {
		t.Fatal("did not resume from the in-flight seal")
	}
	cur, err := d2.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	if cur < 100 {
		t.Fatalf("recovered counter %d below last certified 100", cur)
	}
	// And the register file was healed to the blob's sequence, so the
	// next seal continues the monotone chain.
	if got, want := p2.SealSeq(d2.name), p1.SealSeq(d2.name); got != want {
		t.Fatalf("healed register = %d, want %d", got, want)
	}
}

func TestDurableAmnesiaDetected(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := crypto.HashParts([]byte("m"))
	if _, err := d.CreateIndependent(0, 5, msg); err != nil {
		t.Fatal(err)
	}
	d.Destroy()

	// Disk wiped, but the platform's seal register (hardware) survives.
	delete(sink.blobs, d.name)
	if _, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 4); !errors.Is(err, ErrAmnesia) {
		t.Fatalf("amnesiac restart accepted: err=%v, want ErrAmnesia", err)
	}
}

func TestDurableSealNowResumesExact(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 64)
	if err != nil {
		t.Fatal(err)
	}
	msg := crypto.HashParts([]byte("m"))
	if _, err := d.CreateIndependent(0, 7, msg); err != nil {
		t.Fatal(err)
	}
	if err := d.SealNow(); err != nil { // graceful shutdown
		t.Fatal(err)
	}
	d.Destroy()

	d2, err := NewDurable(p, id, 1, key, enclave.CostModel{}, sink, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	cur, err := d2.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 7 {
		t.Fatalf("warm resume counter = %d, want exactly 7 (no horizon jump)", cur)
	}
	// Certification continues seamlessly at the next value.
	if _, err := d2.CreateIndependent(0, 8, msg); err != nil {
		t.Fatalf("certify after warm resume: %v", err)
	}
}

func TestDurableMultiExtendsAllCounters(t *testing.T) {
	p, key, id := durableSetup(t)
	sink := newMemSink()
	d, err := NewDurable(p, id, 3, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := crypto.HashParts([]byte("m"))
	updates := []CounterValue{{Counter: 0, Value: 10}, {Counter: 2, Value: 20}}
	if _, err := d.CreateMulti(Independent, updates, msg); err != nil {
		t.Fatal(err)
	}
	d.Destroy()

	d2, err := NewDurable(p, id, 3, key, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	for _, u := range updates {
		cur, err := d2.Counter(u.Counter)
		if err != nil {
			t.Fatal(err)
		}
		if cur < u.Value {
			t.Errorf("counter %d recovered at %d, below certified %d", u.Counter, cur, u.Value)
		}
	}
	// Counter 1 was never certified; it must not have jumped.
	if cur, _ := d2.Counter(1); cur != 0 {
		t.Errorf("untouched counter 1 recovered at %d, want 0", cur)
	}
}
