package trinx

import (
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

// MultiHost is the Multi-TrInX variant of §6.1: many TrInX instances
// hosted inside a single trusted execution environment that all threads
// enter. Each instance keeps its own counters (laid out in separate
// allocations, the "not on the same cache line" care of the paper), but
// entry into the shared enclave serializes — the synchronization
// overhead that makes Multi-TrInX fall behind the multiplied variant at
// higher core counts (Fig. 5a).
type MultiHost struct {
	enc *enclave.Enclave
}

// multiHostState is the enclave-private state of the shared enclave:
// the instance table.
type multiHostState struct {
	key       crypto.Key
	instances map[InstanceID]*state
}

// NewMultiHost creates the shared enclave.
func NewMultiHost(p *enclave.Platform, key crypto.Key, cost enclave.CostModel) *MultiHost {
	enc := enclave.Create(p, "multi-trinx", cost, func() any {
		return &multiHostState{key: key, instances: make(map[InstanceID]*state)}
	})
	return &MultiHost{enc: enc}
}

// Instance registers (or retrieves) the TrInX instance id inside the
// shared enclave and returns a handle to it. The handle has the same
// API as a dedicated-enclave instance, but all handles contend on the
// single enclave entry.
func (h *MultiHost) Instance(id InstanceID, numCounters int) (*TrInX, error) {
	_, err := h.enc.ECall(func(st any) (any, error) {
		s := st.(*multiHostState)
		if existing, ok := s.instances[id]; ok {
			if len(existing.counters) != numCounters {
				return nil, fmt.Errorf("trinx: instance %s already registered with %d counters", id, len(existing.counters))
			}
			return nil, nil
		}
		s.instances[id] = &state{id: id, key: s.key, counters: make([]uint64, numCounters)}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return &TrInX{id: id, enc: h.enc.WithView(func(st any) any {
		return st.(*multiHostState).instances[id]
	})}, nil
}

// Destroy tears down the shared enclave and with it all hosted
// instances.
func (h *MultiHost) Destroy() { h.enc.Destroy() }
