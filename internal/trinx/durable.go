package trinx

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/telemetry"
)

// Durability errors.
var (
	// ErrStaleSeal reports a rolled-back sealed counter blob: the blob
	// on disk is older than the platform's monotonic seal register says
	// it must be. Accepting it would let a recovered replica re-certify
	// counter values it already used — the equivocation-on-recovery
	// attack — so the instance refuses to start.
	ErrStaleSeal = errors.New("trinx: sealed counter state rolled back")
	// ErrAmnesia reports a replica whose seal register proves counters
	// were sealed but whose disk holds no blob: the replica lost its
	// durable state entirely. It must rejoin as a fresh identity (or via
	// an administrator), never silently with zeroed counters.
	ErrAmnesia = errors.New("trinx: seal register shows prior seals but no sealed state found (amnesia)")
)

// SealSink persists sealed counter blobs. package wal's SealStore
// implements it; tests substitute an in-memory fake. LoadSeal reports
// ok=false (with a nil error) when no blob exists under the name.
type SealSink interface {
	SaveSeal(name string, blob []byte) error
	LoadSeal(name string) (blob []byte, ok bool, err error)
}

// defaultReserve is how far beyond the highest certified value the
// sealed horizon runs. A larger reserve means fewer synchronous seals
// (one per reserve-many counter advances) at the cost of a larger jump
// on recovery; the protocol tolerates the jump because a quorum forms
// without the recovering replica.
const defaultReserve = 64

// DurableTrInX wraps a TrInX instance with crash-durable counter state
// using horizon sealing: before any certificate advances a counter past
// the sealed horizon, the instance extends the horizon by a reserve and
// seals it to the sink *synchronously*. After a crash the counters
// resume at the sealed horizon — at or above every value ever certified
// — so a recovered instance can never issue a second independent
// certificate for a value it used before the crash. Equivocation stays
// impossible by construction, exactly the property §5.1 derives from
// SGX monotonic counters.
type DurableTrInX struct {
	*TrInX
	sink    SealSink
	name    string
	reserve uint64

	mu      sync.Mutex
	horizon []uint64 // sealed upper bound per counter
	resumed bool

	// Telemetry (all nil-safe; set by Instrument).
	seals   *telemetry.Counter
	sealLat *telemetry.Histogram
	tel     *telemetry.Telemetry
}

// NewDurable creates (or recovers) a durable TrInX instance. On a fresh
// boot the counters start at zero; when sink holds a sealed blob the
// counters resume at the sealed horizon. reserve <= 0 selects the
// default. Returns ErrStaleSeal if the blob is older than the
// platform's seal register demands, and ErrAmnesia if the register
// proves seals existed but the sink has none.
func NewDurable(p *enclave.Platform, id InstanceID, numCounters int, key crypto.Key,
	cost enclave.CostModel, sink SealSink, reserve uint64) (*DurableTrInX, error) {
	if reserve == 0 {
		reserve = defaultReserve
	}
	t := New(p, id, numCounters, key, cost)
	d := &DurableTrInX{
		TrInX: t, sink: sink, name: t.enc.Name(), reserve: reserve,
		horizon: make([]uint64, numCounters),
	}
	blob, ok, err := sink.LoadSeal(d.name)
	if err != nil {
		t.Destroy()
		return nil, fmt.Errorf("trinx: load seal: %w", err)
	}
	if !ok {
		if p.SealSeq(d.name) > 0 {
			t.Destroy()
			return nil, fmt.Errorf("%w: instance %s", ErrAmnesia, id)
		}
		return d, nil // genuine first boot
	}
	data, err := t.enc.Unseal(blob)
	if err != nil {
		t.Destroy()
		if errors.Is(err, enclave.ErrSealRolledBack) {
			return nil, fmt.Errorf("%w: instance %s: %v", ErrStaleSeal, id, err)
		}
		return nil, fmt.Errorf("trinx: unseal: %w", err)
	}
	horizon, err := decodeHorizon(data, numCounters)
	if err != nil {
		t.Destroy()
		return nil, err
	}
	d.horizon = horizon
	d.resumed = true
	// Resume the enclave counters at the sealed horizon: >= every value
	// certified before the crash.
	if _, err := t.enc.ECall(func(st any) (any, error) {
		copy(st.(*state).counters, horizon)
		return nil, nil
	}); err != nil {
		t.Destroy()
		return nil, err
	}
	return d, nil
}

// Instrument attaches telemetry to the instance (ECall metrics on the
// embedded TrInX plus seal/unseal accounting here) and returns the
// receiver. The boot-time unseal predates instrumentation, so a
// resumed instance records it retroactively.
func (d *DurableTrInX) Instrument(tel *telemetry.Telemetry) *DurableTrInX {
	d.TrInX.Instrument(tel)
	if tel == nil {
		return d
	}
	pillar := telemetry.L("pillar", fmt.Sprint(d.id.Pillar()))
	d.seals = tel.Counter("hybster_trinx_seals_total",
		"counter-horizon seal operations", pillar)
	d.sealLat = tel.Histogram("hybster_trinx_seal_seconds",
		"seal latency (encrypt + sink write + register commit)", pillar)
	d.tel = tel
	if d.resumed {
		tel.Counter("hybster_trinx_unseals_total",
			"sealed counter blobs recovered at boot", pillar).Inc()
	}
	return d
}

// Resumed reports whether the instance recovered sealed state rather
// than starting fresh.
func (d *DurableTrInX) Resumed() bool { return d.resumed }

// Horizon returns the sealed upper bound of counter tc (tests).
func (d *DurableTrInX) Horizon(tc uint32) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(tc) >= len(d.horizon) {
		return 0
	}
	return d.horizon[tc]
}

// ensureLocked extends and seals the horizon so that it covers value
// on counter tc. The seal write completes before the caller certifies,
// so the on-disk horizon is never below a certified value. Called with
// d.mu held; the caller keeps holding it through the enclave counter
// advance, so SealNow can never snapshot between the two.
func (d *DurableTrInX) ensureLocked(tc uint32, value uint64) error {
	if int(tc) >= len(d.horizon) {
		return fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, tc, len(d.horizon))
	}
	if value <= d.horizon[tc] {
		return nil
	}
	next := make([]uint64, len(d.horizon))
	copy(next, d.horizon)
	next[tc] = value + d.reserve
	if err := d.sealLocked(next); err != nil {
		return err
	}
	d.horizon = next
	return nil
}

// ensureMultiLocked is ensureLocked for a batch of updates, sealing at
// most once.
func (d *DurableTrInX) ensureMultiLocked(updates []CounterValue) error {
	var next []uint64
	for _, u := range updates {
		if int(u.Counter) >= len(d.horizon) {
			return fmt.Errorf("%w: %d of %d", ErrNoSuchCounter, u.Counter, len(d.horizon))
		}
		if u.Value <= d.horizon[u.Counter] {
			continue
		}
		if next == nil {
			next = make([]uint64, len(d.horizon))
			copy(next, d.horizon)
		}
		if v := u.Value + d.reserve; v > next[u.Counter] {
			next[u.Counter] = v
		}
	}
	if next == nil {
		return nil
	}
	if err := d.sealLocked(next); err != nil {
		return err
	}
	d.horizon = next
	return nil
}

func (d *DurableTrInX) sealLocked(horizon []uint64) error {
	start := time.Now()
	blob, err := d.enc.Seal(encodeHorizon(horizon))
	if err != nil {
		return fmt.Errorf("trinx: seal: %w", err)
	}
	if err := d.sink.SaveSeal(d.name, blob); err != nil {
		return fmt.Errorf("trinx: save seal: %w", err)
	}
	// Blob durable — only now write the platform seal register through.
	// A crash between the two leaves the blob one ahead of the stored
	// register, which Unseal accepts and heals; committing the register
	// first would make the same honest crash look like a rollback
	// attack and permanently refuse the replica.
	if err := d.enc.CommitSeal(); err != nil {
		return fmt.Errorf("trinx: commit seal register: %w", err)
	}
	d.seals.Inc()
	d.sealLat.ObserveDuration(time.Since(start))
	d.tel.Trace(telemetry.EvSeal, 0, 0, d.id.Pillar(), d.name)
	return nil
}

// SealNow seals the instance's *exact* current counter values, for
// graceful shutdown: a clean stop then resumes warm, with no horizon
// jump at all. Holding d.mu — which every Create* holds across its
// horizon check AND enclave counter advance — guarantees the snapshot
// cannot interleave with an in-flight certification, so the sealed
// values are never below a certified one.
func (d *DurableTrInX) SealNow() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	res, err := d.enc.ECall(func(st any) (any, error) {
		s := st.(*state)
		out := make([]uint64, len(s.counters))
		copy(out, s.counters)
		return out, nil
	})
	if err != nil {
		return err
	}
	exact := res.([]uint64)
	if err := d.sealLocked(exact); err != nil {
		return err
	}
	d.horizon = exact
	return nil
}

// CreateContinuing certifies like TrInX.CreateContinuing, first
// extending the sealed horizon to cover value. d.mu is held across the
// horizon extension AND the enclave advance: SealNow's exact-value
// snapshot can therefore never land between the two and seal a horizon
// below a value certified concurrently.
func (d *DurableTrInX) CreateContinuing(tc uint32, value uint64, msg crypto.Digest) (Certificate, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureLocked(tc, value); err != nil {
		return Certificate{}, err
	}
	return d.TrInX.CreateContinuing(tc, value, msg)
}

// CreateIndependent certifies like TrInX.CreateIndependent, first
// extending the sealed horizon to cover value (locking as in
// CreateContinuing).
func (d *DurableTrInX) CreateIndependent(tc uint32, value uint64, msg crypto.Digest) (Certificate, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureLocked(tc, value); err != nil {
		return Certificate{}, err
	}
	return d.TrInX.CreateIndependent(tc, value, msg)
}

// CreateMulti certifies like TrInX.CreateMulti, first extending the
// sealed horizon to cover every updated value (one seal for the batch,
// locking as in CreateContinuing).
func (d *DurableTrInX) CreateMulti(kind Kind, updates []CounterValue, msg crypto.Digest) (MultiCertificate, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureMultiLocked(updates); err != nil {
		return MultiCertificate{}, err
	}
	return d.TrInX.CreateMulti(kind, updates, msg)
}

// CreateTrustedMAC does not advance any counter and needs no seal; it
// delegates directly. (Present so the durable type documents the full
// certification surface.)
func (d *DurableTrInX) CreateTrustedMAC(tc uint32, msg crypto.Digest) (Certificate, error) {
	return d.TrInX.CreateTrustedMAC(tc, msg)
}

// --- horizon blob codec ------------------------------------------------------

func encodeHorizon(h []uint64) []byte {
	out := make([]byte, 8+8*len(h))
	copy(out, crypto.U64(uint64(len(h))))
	for i, v := range h {
		copy(out[8+8*i:], crypto.U64(v))
	}
	return out
}

func decodeHorizon(data []byte, numCounters int) ([]uint64, error) {
	if len(data) < 8 {
		return nil, errors.New("trinx: sealed blob too short")
	}
	n := int(beUint64(data[:8]))
	if len(data) != 8+8*n {
		return nil, fmt.Errorf("trinx: sealed blob length %d does not match %d counters", len(data), n)
	}
	if n != numCounters {
		return nil, fmt.Errorf("trinx: sealed blob has %d counters, instance expects %d", n, numCounters)
	}
	h := make([]uint64, n)
	for i := range h {
		h[i] = beUint64(data[8+8*i : 16+8*i])
	}
	return h, nil
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
