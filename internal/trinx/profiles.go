package trinx

import (
	"sync"
	"time"

	"hybster/internal/crypto"
)

// Certifier is the common surface of everything Fig. 5a compares: given
// a message, produce an authentication certificate (here reduced to the
// MAC; counter bookkeeping is variant-specific). The benchmark harness
// drives Certifiers from a configurable number of worker threads.
type Certifier interface {
	// Certify authenticates msg and returns the MAC.
	Certify(msg []byte) (crypto.MAC, error)
	// Name identifies the variant in benchmark output.
	Name() string
}

// counterCertifier adapts a TrInX instance to the Certifier interface
// by issuing independent certificates with strictly increasing values —
// the operation the ordering protocol performs per message.
type counterCertifier struct {
	t    *TrInX
	name string
	next uint64
	mu   sync.Mutex
}

// NewCertifier wraps t as a benchmark Certifier under the given display
// name.
func NewCertifier(t *TrInX, name string) Certifier {
	return &counterCertifier{t: t, name: name}
}

func (c *counterCertifier) Name() string { return c.name }

func (c *counterCertifier) Certify(msg []byte) (crypto.MAC, error) {
	// The lock spans the enclave call: counter values must reach the
	// instance in issue order, mirroring the dedicated-thread access
	// pattern of §6.1 ("each instance ... is dedicated to a single
	// thread").
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	cert, err := c.t.CreateIndependent(0, c.next, crypto.Hash(msg))
	if err != nil {
		return crypto.MAC{}, err
	}
	return cert.MAC, nil
}

// libraryBaseCost is the calibrated duration of one raw HMAC-SHA256
// certification (hash + MAC) over a 32-byte message on this machine.
// Library profiles express their relative speed as multiples of it.
var (
	libraryBaseOnce sync.Once
	libraryBaseCost time.Duration
)

func baseCost() time.Duration {
	libraryBaseOnce.Do(func() {
		key := crypto.NewKeyFromSeed("calibration")
		msg := make([]byte, 32)
		const rounds = 4000
		start := time.Now()
		for i := 0; i < rounds; i++ {
			d := crypto.Hash(msg)
			_ = key.Sum(d[:])
		}
		libraryBaseCost = time.Since(start) / rounds
	})
	return libraryBaseCost
}

// LibraryProfile models one of the plain, insecure library
// implementations of §6.1 (TCrypto, OpenSSL, pure Java). Each Certify
// performs a real HMAC-SHA256 and then burns additional CPU so that its
// total cost matches factor × the calibrated raw cost, reproducing the
// relative speeds the paper reports (OpenSSL fastest; TCrypto ≈ 20 %
// slower than Java and ≈ 40 % slower than OpenSSL). Profiles share no
// state across threads and therefore scale perfectly, as in the paper.
type LibraryProfile struct {
	name   string
	key    crypto.Key
	factor float64
}

// Library profile constructors for the Fig. 5a variants.
func NewOpenSSLProfile(key crypto.Key) *LibraryProfile {
	return &LibraryProfile{name: "OpenSSL (native)", key: key, factor: 1.0}
}
func NewJavaProfile(key crypto.Key) *LibraryProfile {
	return &LibraryProfile{name: "Java", key: key, factor: 1.2}
}
func NewTCryptoProfile(key crypto.Key) *LibraryProfile {
	return &LibraryProfile{name: "TCrypto (native)", key: key, factor: 1.4}
}

// Name implements Certifier.
func (l *LibraryProfile) Name() string { return l.name }

// Certify implements Certifier.
func (l *LibraryProfile) Certify(msg []byte) (crypto.MAC, error) {
	d := crypto.Hash(msg)
	mac := l.key.Sum(d[:])
	if extra := time.Duration(float64(baseCost()) * (l.factor - 1.0)); extra > 0 {
		busy(extra)
	}
	return mac, nil
}

// CASHProfile models the FPGA-based CASH subsystem of CheapBFT used as
// the published comparison point in §6.1: a fixed 57 µs certification
// service reachable over a single channel, so concurrent callers
// serialize. It exists purely to reproduce the "17,500 vs 240,000
// certifications per second" comparison.
type CASHProfile struct {
	key     crypto.Key
	service time.Duration
	mu      sync.Mutex
}

// NewCASHProfile creates the CASH comparison profile with the paper's
// 57 µs per-operation service time.
func NewCASHProfile(key crypto.Key) *CASHProfile {
	return &CASHProfile{key: key, service: 57 * time.Microsecond}
}

// Name implements Certifier.
func (c *CASHProfile) Name() string { return "CASH (FPGA, published)" }

// Certify implements Certifier.
func (c *CASHProfile) Certify(msg []byte) (crypto.MAC, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	busy(c.service)
	d := crypto.Hash(msg)
	return c.key.Sum(d[:]), nil
}

// busy spins for approximately d; see enclave.spin for rationale.
func busy(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
