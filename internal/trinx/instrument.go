package trinx

import (
	"fmt"
	"time"

	"hybster/internal/telemetry"
)

// op indexes the instance's ECall-bearing operations for metrics.
type op int

const (
	opCreateContinuing op = iota
	opCreateIndependent
	opCreateTrustedMAC
	opCreateMulti
	opVerify
	opVerifyMulti
	opCounterRead
	numOps
)

var opNames = [numOps]string{
	"create_continuing",
	"create_independent",
	"create_trusted_mac",
	"create_multi",
	"verify",
	"verify_multi",
	"counter_read",
}

// instruments holds the metric handles of one instrumented instance,
// resolved once at Instrument time so the hot path never touches the
// registry. A nil *instruments (the default) disables everything: the
// ecall wrapper then skips even the clock reads.
type instruments struct {
	calls [numOps]*telemetry.Counter
	lat   [numOps]*telemetry.Histogram
}

// Instrument attaches telemetry to the instance and returns the
// receiver. Every ECall-bearing operation is counted and timed under
// hybster_trinx_ecalls_total / hybster_trinx_ecall_seconds, labeled
// by operation and the instance's pillar. Call before the instance is
// shared across goroutines (it mutates the handle).
func (t *TrInX) Instrument(tel *telemetry.Telemetry) *TrInX {
	if tel == nil {
		return t
	}
	m := &instruments{}
	pillar := telemetry.L("pillar", fmt.Sprint(t.id.Pillar()))
	for o := op(0); o < numOps; o++ {
		opLabel := telemetry.L("op", opNames[o])
		m.calls[o] = tel.Counter("hybster_trinx_ecalls_total",
			"ECalls into the TrInX enclave by operation", opLabel, pillar)
		m.lat[o] = tel.Histogram("hybster_trinx_ecall_seconds",
			"ECall round-trip latency by operation", opLabel, pillar)
	}
	t.met = m
	return t
}

// ecall routes an operation through the enclave, counting and timing
// it when the instance is instrumented. The uninstrumented path adds
// one nil check over a bare ECall — no clock reads, no atomics.
func (t *TrInX) ecall(o op, fn func(any) (any, error)) (any, error) {
	if t.met == nil {
		return t.enc.ECall(fn)
	}
	start := time.Now()
	res, err := t.enc.ECall(fn)
	t.met.calls[o].Inc()
	t.met.lat[o].ObserveDuration(time.Since(start))
	return res, err
}
