package trinx

import (
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/telemetry"
)

// TestInstrumentCountsOperations pins that an instrumented instance
// records one ECall count and one latency sample per operation, with
// op and pillar labels.
func TestInstrumentCountsOperations(t *testing.T) {
	tel := telemetry.New("test")
	tx := newTest(t, MakeInstanceID(1, 3), 2).Instrument(tel)
	msg := crypto.Hash([]byte("m"))
	if _, err := tx.CreateIndependent(0, 1, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateIndependent(0, 2, msg); err != nil {
		t.Fatal(err)
	}
	cert, err := tx.CreateContinuing(1, 5, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Verify(cert, msg); err != nil {
		t.Fatal(err)
	}
	reg := tel.Metrics()
	if got := reg.Value(`hybster_trinx_ecalls_total{op="create_independent",pillar="3"}`); got != 2 {
		t.Fatalf("create_independent count = %v, want 2", got)
	}
	if got := reg.Value(`hybster_trinx_ecalls_total{op="create_continuing",pillar="3"}`); got != 1 {
		t.Fatalf("create_continuing count = %v, want 1", got)
	}
	if got := reg.Value(`hybster_trinx_ecalls_total{op="verify",pillar="3"}`); got != 1 {
		t.Fatalf("verify count = %v, want 1", got)
	}
	// Latency histograms observed as many samples as calls.
	if got := reg.Value(`hybster_trinx_ecall_seconds{op="create_independent",pillar="3"}`); got != 2 {
		t.Fatalf("create_independent latency samples = %v, want 2", got)
	}
}

// TestInstrumentDurable pins seal/unseal accounting: horizon seals
// count and a resumed instance records its boot unseal.
func TestInstrumentDurable(t *testing.T) {
	p := enclave.NewPlatform("instrument-durable")
	sink := newMemSink()
	id := MakeInstanceID(0, 0)
	tel := telemetry.New("test")
	d, err := NewDurable(p, id, 1, testKey, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.Instrument(tel)
	msg := crypto.Hash([]byte("m"))
	if _, err := d.CreateIndependent(0, 1, msg); err != nil {
		t.Fatal(err)
	}
	if got := tel.Metrics().Value(`hybster_trinx_seals_total{pillar="0"}`); got != 1 {
		t.Fatalf("seals = %v, want 1", got)
	}
	if err := d.SealNow(); err != nil {
		t.Fatal(err)
	}
	d.Destroy()

	tel2 := telemetry.New("test")
	d2, err := NewDurable(p, id, 1, testKey, enclave.CostModel{}, sink, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	d2.Instrument(tel2)
	if got := tel2.Metrics().Value(`hybster_trinx_unseals_total{pillar="0"}`); got != 1 {
		t.Fatalf("unseals after resume = %v, want 1", got)
	}
}

// benchTrInX builds an instance with the paper's §6.2 cost model — the
// realistic hot path the overhead budget is measured against.
func benchTrInX(b *testing.B, tel *telemetry.Telemetry) *TrInX {
	b.Helper()
	tx := New(enclave.NewPlatform("bench"), MakeInstanceID(0, 0), 1, testKey, enclave.DefaultCostModel)
	b.Cleanup(tx.Destroy)
	if tel != nil {
		tx.Instrument(tel)
	}
	return tx
}

// BenchmarkTelemetryOverhead measures the telemetry cost on the
// protocol's hottest trusted path — independent counter certification
// through the enclave at the paper's transition cost. The acceptance
// budget is <5% overhead for "enabled" over "disabled"; CI runs this
// with -benchtime=100x as a smoke check.
func BenchmarkTelemetryOverhead(b *testing.B) {
	msg := crypto.Hash([]byte("bench"))
	b.Run("disabled", func(b *testing.B) {
		tx := benchTrInX(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tx.CreateIndependent(0, uint64(i)+1, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tel := telemetry.New("bench")
		tx := benchTrInX(b, tel)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tx.CreateIndependent(0, uint64(i)+1, msg); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if tel.Metrics().Value(`hybster_trinx_ecalls_total{op="create_independent",pillar="0"}`) == 0 {
			b.Fatal("instrumented run recorded no ECalls")
		}
	})
}
