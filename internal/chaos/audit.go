package chaos

import (
	"time"

	"hybster/internal/audit"
	"hybster/internal/config"
	"hybster/internal/statemachine"
)

// auditPollInterval is the online auditor's sampling cadence during a
// chaos run: fast enough that a trace ring (4096 events) cannot wrap
// past the auditor between polls at chaos commit rates, slow enough
// to stay off the protocol's critical path.
const auditPollInterval = 50 * time.Millisecond

// ForkSpec deliberately diverges one replica's state machine: every
// write it executes is perturbed before reaching the application, so
// its state — and therefore its checkpoint digests — silently drift
// from its peers while all of its ordering messages remain perfectly
// well-formed. This is the distilled PR 8 bug class: a replica that
// answers every probe, votes in every instance, and is wrong. A run
// with a Fork must end with the online auditor holding a
// digest-divergence finding; the history safety check independently
// fails, so Run also returns an error.
type ForkSpec struct {
	// Replica is the replica whose execution is forked.
	Replica uint32
}

// forkApp implements the fork: writes have their first payload byte
// bumped before execution. Reads and snapshots pass through — the
// divergence lives purely in the accumulated state.
type forkApp struct {
	inner statemachine.Application
}

func (f *forkApp) Execute(client uint32, payload []byte, readOnly bool) []byte {
	if !readOnly {
		p := append([]byte(nil), payload...)
		if len(p) > 0 {
			p[0]++
		} else {
			p = []byte{2}
		}
		payload = p
	}
	return f.inner.Execute(client, payload, readOnly)
}

func (f *forkApp) Snapshot() []byte              { return f.inner.Snapshot() }
func (f *forkApp) Restore(snapshot []byte) error { return f.inner.Restore(snapshot) }

// startAudit attaches the online protocol auditor to the running
// cluster: one in-process telemetry source per replica, polled on a
// fixed cadence for the whole run. Safety checks (digest divergence)
// are armed from the first poll; liveness checks stay disarmed until
// the harness heals the cluster (see Run), because a replica the plan
// deliberately crashed is not "stalled".
//
// Thresholds scale with the chaos configuration: the frontier-stall
// and checkpoint-lag gaps are multiples of the window size, and every
// persistence bar is ≥1s of consecutive polls, so a replica in the
// middle of a legitimate post-heal catch-up never trips a finding.
func (r *run) startAudit() {
	proto := r.cfg.Protocol.String()
	sources := make([]audit.Source, r.cfg.N)
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		id := id
		sources[id] = audit.TelemetrySource(id, proto, r.cl.Telemetry(id), func() bool {
			return r.auditExempt(id)
		})
	}
	auditor := audit.New(audit.Options{
		FrontierStallGap: uint64(4 * r.cfg.WindowSize),
		StallRounds:      20,
		StormViews:       6,
		StormRounds:      40,
		DeafRounds:       20,
		CheckpointLagMax: uint64(8 * r.cfg.WindowSize),
		LagRounds:        20,
	})
	r.mon = audit.NewMonitor(auditor, auditPollInterval, sources...)
	r.mon.Start()
}

// auditExempt reports whether a replica's liveness findings should be
// suppressed right now: it is down, it was refused as a zombie, or
// (MinBFT) it restarted and its USIG counter regression makes peers
// ignore it forever — the same exemption the settle phase applies.
func (r *run) auditExempt(id uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cl == nil || r.cl.Replica(id) == nil || r.cl.Zombie(id) {
		return true
	}
	return r.cfg.Protocol == config.MinBFT && r.restarted[id]
}

// stopAudit halts the poller and takes one final synchronous round so
// the report covers the run's end state. Idempotent: Run stops the
// auditor explicitly before building results and again via defer.
func (r *run) stopAudit() {
	r.mu.Lock()
	mon, stopped := r.mon, r.auditStopped
	r.auditStopped = true
	r.mu.Unlock()
	if mon == nil || stopped {
		return
	}
	mon.Stop()
	mon.Poll()
}
