package chaos

import (
	"reflect"
	"testing"
	"time"

	"hybster/internal/config"
	"hybster/internal/transport"
)

// chaosHorizon returns the fault-active window; -short shrinks it for
// smoke runs.
func chaosHorizon() time.Duration {
	if testing.Short() {
		return 800 * time.Millisecond
	}
	return 2 * time.Second
}

// runChaos executes one seeded schedule and enforces the common
// expectations: no safety violation, post-heal liveness, and that the
// schedule actually exercised the interesting machinery (faults
// injected, a replica crash-restarted).
func runChaos(t *testing.T, p config.Protocol, seed int64) *Result {
	t.Helper()
	res, err := Run(Options{
		Protocol: p,
		Seed:     seed,
		Horizon:  chaosHorizon(),
		Clients:  3,
		Logf:     t.Logf,
	})
	if err != nil {
		if res != nil {
			t.Fatalf("chaos run failed (%v): %v", res.Plan, err)
		}
		t.Fatalf("chaos run failed: %v", err)
	}
	if res.PostHealCommits < 5 {
		t.Fatalf("only %d post-heal commits", res.PostHealCommits)
	}
	if len(res.Restarted) == 0 {
		t.Fatal("schedule crash-restarted no replica")
	}
	if res.Faults.Dropped == 0 || res.Faults.Held == 0 {
		t.Fatalf("schedule injected too few faults: %+v", res.Faults)
	}
	if res.HistoryPoints == 0 {
		t.Fatal("safety check compared zero history points")
	}
	t.Logf("chaos %s: order=%d chaos-commits=%d heal-commits=%d faults=%+v points=%d",
		p, res.MaxOrder, res.ChaosCommits, res.PostHealCommits, res.Faults, res.HistoryPoints)
	return res
}

// Each protocol runs one seeded schedule combining link noise (loss,
// duplication, reorder, delay, corruption), a two-node partition
// window, and a replica crash-restart.

func TestChaosHybster(t *testing.T)  { runChaos(t, config.HybsterS, 1) }
func TestChaosHybsterX(t *testing.T) { runChaos(t, config.HybsterX, 2) }
func TestChaosPBFT(t *testing.T)     { runChaos(t, config.PBFTcop, 3) }
func TestChaosMinBFT(t *testing.T)   { runChaos(t, config.MinBFT, 4) }

// TestChaosTelemetryAssertsRetransmits runs a pure heavy-loss schedule
// and asserts on the telemetry snapshot in the result: the harness can
// now check internal protocol state, not just externally visible
// effects. With 20% of replica-to-replica messages dropped, progress
// requires the tick handler's retransmissions, so their counter must
// be nonzero — as must the commit and enclave-call counters that any
// committing Hybster cluster drives.
func TestChaosTelemetryAssertsRetransmits(t *testing.T) {
	plan := Plan{
		Seed:    99,
		N:       config.ReplicasFor(config.HybsterS, 1),
		Horizon: chaosHorizon(),
		Links:   []LinkFault{{From: Any, To: Any, Drop: 0.2}},
	}
	res, err := Run(Options{Protocol: config.HybsterS, Plan: &plan, Logf: t.Logf})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if got := res.Metric("hybster_core_committed_total"); got == 0 {
		t.Fatal("no instance committed according to telemetry")
	}
	if got := res.Metric("hybster_core_retransmits_total"); got == 0 {
		t.Fatal("20% message loss drove zero retransmissions — instrumentation or recovery path broken")
	}
	if got := res.Metric("hybster_trinx_ecalls_total"); got == 0 {
		t.Fatal("committing cluster recorded zero enclave calls")
	}
	t.Logf("telemetry: committed=%v retransmits=%v ecalls=%v",
		res.Metric("hybster_core_committed_total"),
		res.Metric("hybster_core_retransmits_total"),
		res.Metric("hybster_trinx_ecalls_total"))
}

// TestChaosCorruptionDrivesVerifyRejections runs a corruption-heavy
// plan and asserts on the parallel verification stage: flipped bytes
// that land in a client authenticator produce frames that still parse
// but fail MAC verification, and those must be rejected by the
// off-pillar verify pool (hybster_verify_rejected_total) before they
// reach a pillar mailbox — with the cluster still committing, since
// rejection must never cost liveness. Safety is checked by the
// harness's history comparison: had a corrupted request slipped past
// the stage into ordering, replica states would diverge.
func TestChaosCorruptionDrivesVerifyRejections(t *testing.T) {
	plan := Plan{
		Seed:    101,
		N:       config.ReplicasFor(config.HybsterS, 1),
		Horizon: chaosHorizon(),
		Links:   []LinkFault{{From: Any, To: Any, Corrupt: 0.3}},
	}
	res, err := Run(Options{Protocol: config.HybsterS, Plan: &plan, Logf: t.Logf})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if got := res.Metric("hybster_core_committed_total"); got == 0 {
		t.Fatal("no instance committed under corruption")
	}
	if res.Faults.Corrupted == 0 {
		t.Fatal("plan injected zero parseable corruptions — rate too low to exercise the verify stage")
	}
	if got := res.Metric("hybster_verify_rejected_total"); got == 0 {
		t.Fatal("30% corruption drove zero verify-stage rejections — corrupted authenticators are not reaching (or not being caught by) the parallel verify pool")
	}
	t.Logf("telemetry: corrupted=%d verified=%v rejected=%v committed=%v",
		res.Faults.Corrupted,
		res.Metric("hybster_verify_verified_total"),
		res.Metric("hybster_verify_rejected_total"),
		res.Metric("hybster_core_committed_total"))
}

func TestChaosGenerateDeterministic(t *testing.T) {
	a := Generate(42, 4, 2*time.Second)
	b := Generate(42, 4, 2*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	c := Generate(43, 4, 2*time.Second)
	if reflect.DeepEqual(a.Links, c.Links) && reflect.DeepEqual(a.Crashes, c.Crashes) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestChaosInjectorDeterministicReplay pins the determinism contract:
// replaying a schedule with the same seed yields the identical
// per-link fault sequence, message by message.
func TestChaosInjectorDeterministicReplay(t *testing.T) {
	plan := Generate(7, 4, 2*time.Second)
	first := decideAll(plan.NewInjector())
	second := decideAll(plan.NewInjector())
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same seed produced different fault sequences")
	}

	other := Generate(8, 4, 2*time.Second)
	if reflect.DeepEqual(first, decideAll(other.NewInjector())) {
		t.Fatal("different seed produced the identical fault sequence")
	}

	// Interleaving links differently must not change per-link decisions:
	// decision n on a link depends only on (seed, from, to, n).
	inj := plan.NewInjector()
	var interleaved []transport.Fault
	for seq := uint64(0); seq < 64; seq++ {
		for from := uint32(0); from < 4; from++ {
			for to := uint32(0); to < 4; to++ {
				if from == to {
					continue
				}
				interleaved = append(interleaved, inj.Decide(from, to, seq))
			}
		}
	}
	var byLink []transport.Fault
	for seq := uint64(0); seq < 64; seq++ {
		for from := uint32(0); from < 4; from++ {
			for to := uint32(0); to < 4; to++ {
				if from == to {
					continue
				}
				byLink = append(byLink, first[linkIndex(from, to)][seq])
			}
		}
	}
	if !reflect.DeepEqual(interleaved, byLink) {
		t.Fatal("fault decisions depend on cross-link interleaving")
	}
}

// decideAll drives 64 messages over every replica link, one link at a
// time, and returns the decision sequences.
func decideAll(inj transport.Injector) map[int][]transport.Fault {
	out := make(map[int][]transport.Fault)
	for from := uint32(0); from < 4; from++ {
		for to := uint32(0); to < 4; to++ {
			if from == to {
				continue
			}
			seqs := make([]transport.Fault, 64)
			for seq := uint64(0); seq < 64; seq++ {
				seqs[seq] = inj.Decide(from, to, seq)
			}
			out[linkIndex(from, to)] = seqs
		}
	}
	return out
}

func linkIndex(from, to uint32) int { return int(from)*4 + int(to) }

// TestChaosClientLinksUntouched pins that client traffic (IDs at or
// above the replica count) bypasses fault injection entirely.
func TestChaosClientLinksUntouched(t *testing.T) {
	plan := Generate(5, 4, time.Second)
	inj := plan.NewInjector()
	for seq := uint64(0); seq < 32; seq++ {
		if f := inj.Decide(4, 0, seq); f != (transport.Fault{}) {
			t.Fatalf("client link faulted: %+v", f)
		}
		if f := inj.Decide(0, 99, seq); f != (transport.Fault{}) {
			t.Fatalf("reply link faulted: %+v", f)
		}
	}
}
