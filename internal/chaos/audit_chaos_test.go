package chaos

import (
	"testing"
	"time"

	"hybster/internal/audit"
	"hybster/internal/config"
)

// TestChaosAuditorDetectsFork runs a fault-free schedule with one
// replica's state machine deliberately forked: it orders and answers
// like everyone else, but every write it executes is perturbed, so
// its checkpoint digests silently diverge. The online auditor must
// end the run holding a digest-divergence finding that implicates
// the forked replica — detection through the real pipeline (engine →
// trace ring → sampler → auditor), not a synthetic event feed.
func TestChaosAuditorDetectsFork(t *testing.T) {
	plan := Plan{
		Seed:    1,
		N:       config.ReplicasFor(config.HybsterX, 1),
		Horizon: 600 * time.Millisecond,
	}
	res, err := Run(Options{
		Protocol:           config.HybsterX,
		Plan:               &plan,
		Fork:               &ForkSpec{Replica: 1},
		SettleTimeout:      2 * time.Second,
		MinPostHealCommits: 1,
		Logf:               t.Logf,
	})
	if err == nil {
		t.Fatal("forked run reported success")
	}
	if res == nil {
		t.Fatalf("no result alongside error: %v", err)
	}
	var hit *audit.Finding
	for i := range res.Audit.Findings {
		f := &res.Audit.Findings[i]
		if f.Kind != audit.DigestDivergence {
			continue
		}
		for _, r := range f.Replicas {
			if r == 1 {
				hit = f
			}
		}
	}
	if hit == nil {
		t.Fatalf("auditor missed the forked replica; findings: %+v (run error: %v)",
			res.Audit.Findings, err)
	}
	if len(hit.Digests) < 2 {
		t.Fatalf("divergence finding carries %d digests, want ≥2: %+v", len(hit.Digests), hit)
	}
	t.Logf("fork detected: %s", hit.Detail)
}

// TestChaosAuditCleanSoak is the auditor's precision bar: twenty
// seeded schedules across every protocol, each audited live, must
// produce zero findings — crashes, partitions, link noise, restarts
// and all. A false positive here means the auditor would cry wolf on
// a healthy production cluster. -short trims to one seed per
// protocol.
func TestChaosAuditCleanSoak(t *testing.T) {
	protocols := []config.Protocol{
		config.HybsterS, config.HybsterX, config.PBFTcop, config.HybridPBFT, config.MinBFT,
	}
	seeds := []int64{11, 23, 37, 53}
	if testing.Short() {
		seeds = seeds[:1]
	}
	iterations := 0
	for _, p := range protocols {
		for _, seed := range seeds {
			iterations++
			runCleanAudited(t, p, seed)
		}
	}
	t.Logf("audit clean over %d chaos iterations", iterations)
}

// runCleanAudited runs one audited schedule expecting a clean bill.
//
// Hybster replicas run with durable state (DataRoot), because that is
// the deployment the protocol's safety argument assumes: trusted
// counters must be monotonic across restarts (SGX-sealed in the
// paper, sealed counter state + WAL here). A volatile restart brings
// a replica back with its counters reset to zero — amnesia the
// trusted subsystem exists to prevent — and a seeded schedule
// (HybsterS, seed 23) demonstrates the resulting committed-instance
// loss: one replica misses a PREPARE and so validly discloses
// nothing past it in its view change, the amnesiac restartee's
// view-change discloses nothing at all, the two form a quorum, and
// the new leader re-proposes fresh batches over orders the old
// quorum already executed. The history check and the auditor's
// checkpoint-digest divergence both catch it; durable restarts make
// it impossible, which is the configuration a clean soak must run.
//
// Safety violations and audit findings fail immediately. A pure
// settle (liveness) failure gets one retry with a fresh cluster:
// post-heal catch-up is timing-sensitive under -race and can wedge
// on rare schedules for reasons that predate (and are orthogonal to)
// the auditor — the auditor in fact flags those runs as frontier
// stalls, which is it working, not a false positive.
func runCleanAudited(t *testing.T, p config.Protocol, seed int64) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		res, err := Run(Options{
			Protocol: p,
			Seed:     seed,
			Horizon:  400 * time.Millisecond,
			DataRoot: t.TempDir(),
			Logf:     t.Logf,
		})
		if err != nil {
			diverged := res != nil && hasDivergence(res.Audit.Findings)
			if res != nil && res.HistoryPoints == 0 && !diverged && attempt == 0 {
				// Settle never completed, so the history check never
				// ran — a liveness wedge, not a safety or audit
				// failure. Retry once.
				t.Logf("%s seed %d: liveness wedge, retrying: %v", p, seed, err)
				continue
			}
			t.Fatalf("%s seed %d: %v", p, seed, err)
		}
		if n := len(res.Audit.Findings); n != 0 {
			t.Fatalf("%s seed %d: auditor raised %d finding(s) on a clean run: %+v",
				p, seed, n, res.Audit.Findings)
		}
		if res.Audit.Rounds == 0 {
			t.Fatalf("%s seed %d: auditor observed zero rounds", p, seed)
		}
		if len(res.Audit.Replicas) != config.ReplicasFor(p, 1) {
			t.Fatalf("%s seed %d: auditor observed replicas %v, want all %d",
				p, seed, res.Audit.Replicas, config.ReplicasFor(p, 1))
		}
		return
	}
}

// hasDivergence reports whether any finding is a safety violation.
func hasDivergence(findings []audit.Finding) bool {
	for _, f := range findings {
		if f.Kind == audit.DigestDivergence {
			return true
		}
	}
	return false
}
