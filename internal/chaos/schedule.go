// Package chaos generates seeded fault schedules and runs protocol
// clusters under them, checking the two invariants that define the
// paper's guarantees: correct replicas never execute divergent
// histories (safety), and the cluster resumes committing after the
// faults heal (liveness).
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"hybster/internal/transport"
)

// Any matches every node ID in a LinkFault rule.
const Any = ^uint32(0)

// LinkFault is one per-link fault rule. Probabilities are in [0,1] and
// evaluated independently for every message crossing a matching link.
// The first matching rule in Plan.Links wins.
type LinkFault struct {
	From uint32 // sender ID, or Any
	To   uint32 // receiver ID, or Any

	Drop      float64       // probability a message is discarded
	Duplicate float64       // probability a message is delivered twice
	Corrupt   float64       // probability one byte is flipped
	Reorder   float64       // probability a message is overtaken by its successor
	DelayProb float64       // probability a message is delayed
	DelayMax  time.Duration // upper bound of the injected delay
}

func (r LinkFault) matches(from, to uint32) bool {
	return (r.From == Any || r.From == from) && (r.To == Any || r.To == to)
}

// CrashEvent schedules a fail-stop crash of one replica followed by a
// restart (a Downtime of 0 or beyond the horizon means no restart
// before the heal phase). When the harness runs with a data root the
// restart is a cold restart — recovery from sealed counters and the
// write-ahead log. Amnesia additionally wipes the replica's data
// directory before the restart: a durable replica must then be refused
// (zombie) and stays down for the rest of the run. Without a data root
// Amnesia degrades to a plain restart.
type CrashEvent struct {
	Replica  uint32
	At       time.Duration // offset from schedule start
	Downtime time.Duration // how long the replica stays down
	Amnesia  bool          // wipe the data dir before restarting
}

// PartitionEvent schedules a two-node partition window.
type PartitionEvent struct {
	A, B uint32
	At   time.Duration // offset from schedule start
	Heal time.Duration // offset from schedule start; must be > At
}

// Plan is a declarative, fully reproducible fault schedule. Link
// faults are probabilistic but derived from Seed alone: the fate of
// the n-th message on link from→to is a pure function of
// (Seed, from, to, n), independent of timing, goroutine interleaving,
// and wall clock. Temporal shape (outages) comes from the crash and
// partition events, which the harness applies at cluster level.
type Plan struct {
	Seed    int64
	N       int           // replica count; links touching IDs ≥ N (clients) are left intact
	Horizon time.Duration // how long faults stay active before everything heals

	Links      []LinkFault
	Crashes    []CrashEvent
	Partitions []PartitionEvent
}

// String renders the plan compactly for failure messages.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan{seed=%d n=%d horizon=%v", p.Seed, p.N, p.Horizon)
	for _, l := range p.Links {
		from, to := "any", "any"
		if l.From != Any {
			from = fmt.Sprint(l.From)
		}
		if l.To != Any {
			to = fmt.Sprint(l.To)
		}
		fmt.Fprintf(&b, " link(%s→%s drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f delay=%.3f/%v)",
			from, to, l.Drop, l.Duplicate, l.Corrupt, l.Reorder, l.DelayProb, l.DelayMax)
	}
	for _, c := range p.Crashes {
		amn := ""
		if c.Amnesia {
			amn = " amnesia"
		}
		fmt.Fprintf(&b, " crash(r%d at=%v down=%v%s)", c.Replica, c.At, c.Downtime, amn)
	}
	for _, pt := range p.Partitions {
		fmt.Fprintf(&b, " partition(%d↔%d at=%v heal=%v)", pt.A, pt.B, pt.At, pt.Heal)
	}
	b.WriteString("}")
	return b.String()
}

// NewInjector builds the deterministic transport.Injector realizing
// the plan's link-fault rules. Each (from, to) link owns a rand.Rand
// seeded from (Seed, from, to); exactly seven draws are consumed per
// message regardless of which faults fire, so the decision for
// message n never depends on the fate of messages 0..n-1 beyond their
// count. The FaultyEndpoint decorator calls Decide with strictly
// ascending seq per link, which closes the determinism argument:
// same seed ⇒ same fault sequence.
func (p Plan) NewInjector() transport.Injector {
	return &planInjector{plan: p, rngs: make(map[[2]uint32]*rand.Rand)}
}

type planInjector struct {
	plan Plan

	mu   sync.Mutex
	rngs map[[2]uint32]*rand.Rand
}

// Decide implements transport.Injector.
func (pi *planInjector) Decide(from, to uint32, seq uint64) transport.Fault {
	// Client links (IDs at or above the replica count) are left clean:
	// the interesting faults are between replicas, and unfaulted client
	// traffic keeps load flowing so safety violations would surface.
	if int64(from) >= int64(pi.plan.N) || int64(to) >= int64(pi.plan.N) {
		return transport.Fault{}
	}
	var rule *LinkFault
	for i := range pi.plan.Links {
		if pi.plan.Links[i].matches(from, to) {
			rule = &pi.plan.Links[i]
			break
		}
	}
	if rule == nil {
		return transport.Fault{}
	}

	pi.mu.Lock()
	defer pi.mu.Unlock()
	key := [2]uint32{from, to}
	rng, ok := pi.rngs[key]
	if !ok {
		rng = rand.New(rand.NewSource(pi.plan.Seed ^ int64(from)<<20 ^ int64(to)<<40 ^ 0x5eed))
		pi.rngs[key] = rng
	}
	// Fixed draw count per message — the determinism contract.
	dropF := rng.Float64()
	dupF := rng.Float64()
	corruptF := rng.Float64()
	reorderF := rng.Float64()
	delayF := rng.Float64()
	pos := rng.Uint32()
	xor := byte(rng.Uint32() | 1) // never zero

	var f transport.Fault
	if dropF < rule.Drop {
		f.Drop = true
		return f
	}
	f.Duplicate = dupF < rule.Duplicate
	if corruptF < rule.Corrupt {
		f.Corrupt = true
		f.CorruptPos = pos
		f.CorruptXOR = xor
	}
	f.Hold = reorderF < rule.Reorder
	if delayF < rule.DelayProb && rule.DelayMax > 0 {
		f.Delay = time.Duration(delayF / rule.DelayProb * float64(rule.DelayMax))
	}
	return f
}

// Generate derives a randomized-but-reproducible plan from seed for an
// n-replica cluster: moderate all-link noise (loss, duplication,
// reordering, small delays, rare corruption), one two-node partition
// window, and one crash-restart of a non-primary replica. The same
// seed always yields the same plan.
func Generate(seed int64, n int, horizon time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed, N: n, Horizon: horizon}

	p.Links = []LinkFault{{
		From:      Any,
		To:        Any,
		Drop:      0.01 + rng.Float64()*0.03,  // 1–4% loss
		Duplicate: 0.005 + rng.Float64()*0.01, // 0.5–1.5% duplication
		Corrupt:   0.002 + rng.Float64()*0.004,
		Reorder:   0.01 + rng.Float64()*0.02,
		DelayProb: 0.05 + rng.Float64()*0.05,
		DelayMax:  time.Duration(2+rng.Intn(6)) * time.Millisecond,
	}}

	// Crash a non-view-0-primary replica so the run exercises
	// catch-up rather than (only) view change, then bring it back
	// with enough healthy time left to rejoin.
	victim := uint32(1 + rng.Intn(n-1))
	at := time.Duration(float64(horizon) * (0.15 + rng.Float64()*0.15))
	down := time.Duration(float64(horizon) * (0.2 + rng.Float64()*0.15))
	p.Crashes = []CrashEvent{{Replica: victim, At: at, Downtime: down}}

	// Partition two other replicas for a window that overlaps the
	// crash, compounding the faults.
	a := uint32(rng.Intn(n))
	b := uint32(rng.Intn(n))
	for b == a {
		b = uint32(rng.Intn(n))
	}
	pAt := time.Duration(float64(horizon) * (0.3 + rng.Float64()*0.1))
	pHeal := pAt + time.Duration(float64(horizon)*(0.15+rng.Float64()*0.15))
	p.Partitions = []PartitionEvent{{A: a, B: b, At: pAt, Heal: pHeal}}

	// One run in four schedules amnesia for the crash victim: on a
	// durable harness the wiped replica must come back as a refused
	// zombie, exercising the rollback defense; the group (sized for
	// f=1) stays live without it. The draw is appended last so plans
	// for pre-existing seeds keep their link/crash/partition shape.
	p.Crashes[0].Amnesia = rng.Float64() < 0.25
	return p
}
