package chaos

import (
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/audit"
	"hybster/internal/client"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Options configure one chaos run.
type Options struct {
	// Protocol selects the cluster flavor under test.
	Protocol config.Protocol
	// Plan is the fault schedule; nil generates one from Seed.
	Plan *Plan
	// Seed derives the generated plan (ignored when Plan is set).
	Seed int64
	// Horizon is how long the fault schedule stays active (generated
	// plans only; an explicit Plan carries its own horizon).
	Horizon time.Duration
	// Clients is the number of concurrent load generators (default 3).
	Clients int
	// SettleTimeout bounds the post-heal recovery phase: the cluster
	// must commit fresh requests and lagging replicas must catch up
	// within it (default 20s).
	SettleTimeout time.Duration
	// MinPostHealCommits is the liveness bar: at least this many fresh
	// requests must commit after everything heals (default 5).
	MinPostHealCommits int
	// Fork, when set, deliberately diverges one replica's state
	// machine (see ForkSpec) so the run violates safety on purpose —
	// the online auditor must end the run holding a digest-divergence
	// finding, and Run returns an error.
	Fork *ForkSpec
	// DataRoot, when set, runs replicas with persistent data
	// directories under it: crash+restart becomes a cold restart
	// (recover from sealed counters and the WAL), and scheduled
	// amnesia events become meaningful (the wiped replica must be
	// refused as a zombie). Crashes are hard kills — no exact-value
	// seal, no WAL flush, a torn log tail — so recovery runs against
	// genuine kill -9 artifacts, not a graceful shutdown's. Only
	// Hybster protocols use the disk; others ignore it. Tests pass
	// t.TempDir().
	DataRoot string
	// Logf receives progress lines (optional; tests pass t.Logf).
	Logf func(format string, args ...any)
}

// Result reports what one chaos run did and observed.
type Result struct {
	Plan Plan
	// ChaosCommits counts client requests committed while faults were
	// active (may be low — partitions stall progress by design).
	ChaosCommits uint64
	// PostHealCommits counts requests committed after the heal phase.
	PostHealCommits uint64
	// Faults aggregates injected-fault counters over every replica
	// endpoint incarnation.
	Faults transport.FaultStats
	// MaxOrder is the highest order number executed by any replica.
	MaxOrder timeline.Order
	// HistoryPoints is the number of (execution count → digest) samples
	// the safety check compared.
	HistoryPoints int
	// Restarted lists replicas that were crash-restarted.
	Restarted []uint32
	// Zombies lists replicas that tried to rejoin after losing durable
	// state (amnesia) and were correctly refused — they stay down and
	// are exempt from the catch-up liveness check.
	Zombies []uint32
	// Telemetry is each replica's flattened metrics snapshot taken at
	// the end of the run (index = replica ID). Counters survive
	// restarts (the registry outlives engine incarnations), so tests
	// can assert on internal protocol behavior — e.g. that message loss
	// actually forced retransmissions.
	Telemetry []map[string]float64
	// Traces is each replica's protocol-event trace ring at the end of
	// the run (index = replica ID) — the post-mortem record a failed
	// settle needs to reconstruct who stalled where.
	Traces [][]telemetry.Event
	// Audit is the online protocol auditor's final report: every
	// chaos run is audited live (digest agreement throughout, liveness
	// checks armed after the heal), and any finding fails the run.
	Audit audit.Report
}

// Metric sums one metric across every replica's snapshot, matching
// series by exposition-name prefix so labeled families (e.g.
// `hybster_core_retransmits_total{pillar="0"}`) aggregate naturally.
func (r *Result) Metric(prefix string) float64 {
	var sum float64
	for _, snap := range r.Telemetry {
		for name, v := range snap {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				sum += v
			}
		}
	}
	return sum
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.SettleTimeout <= 0 {
		o.SettleTimeout = 20 * time.Second
	}
	if o.MinPostHealCommits <= 0 {
		o.MinPostHealCommits = 5
	}
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// historyRegistry collects, per replica incarnation, the hash chain of
// every execution step. Safety holds iff all incarnations that reached
// execution count n computed the same chain digest at n: the chain
// commits to the full ordered history (client, payload, read-only
// flag, and result of every request), so equal digests mean equal
// histories.
type historyRegistry struct {
	mu      sync.Mutex
	samples map[uint64]map[string]crypto.Digest // count → incarnation → chain
}

func newHistoryRegistry() *historyRegistry {
	return &historyRegistry{
		samples: make(map[uint64]map[string]crypto.Digest),
	}
}

func (r *historyRegistry) record(inc string, count uint64, chain crypto.Digest) {
	r.mu.Lock()
	m, ok := r.samples[count]
	if !ok {
		m = make(map[string]crypto.Digest)
		r.samples[count] = m
	}
	m[inc] = chain
	r.mu.Unlock()
}

// check returns an error describing the first divergence, scanning
// counts in ascending order.
func (r *historyRegistry) check() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make([]uint64, 0, len(r.samples))
	for c := range r.samples {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	points := 0
	for _, c := range counts {
		m := r.samples[c]
		points += len(m)
		var ref crypto.Digest
		var refInc string
		first := true
		for inc, d := range m {
			if first {
				ref, refInc, first = d, inc, false
				continue
			}
			if d != ref {
				return points, fmt.Errorf("chaos: history divergence at execution %d: %s=%x vs %s=%x",
					c, refInc, ref[:6], inc, d[:6])
			}
		}
	}
	return points, nil
}

// historyRecorder wraps an Application with an execution hash chain.
// The chain and its length ride inside the snapshot, so state transfer
// hands a restored replica the logical history position along with the
// state — its subsequent digests remain comparable.
type historyRecorder struct {
	inner statemachine.Application
	reg   *historyRegistry
	inc   string

	mu    sync.Mutex
	count uint64
	chain crypto.Digest
}

func (h *historyRecorder) Execute(client uint32, payload []byte, readOnly bool) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	res := h.inner.Execute(client, payload, readOnly)
	enc := message.NewEncoder(len(h.chain) + 16 + len(payload) + len(res))
	enc.Bytes32(h.chain)
	enc.U32(client)
	enc.Bool(readOnly)
	enc.VarBytes(payload)
	enc.VarBytes(res)
	h.chain = crypto.Hash(enc.Bytes())
	h.count++
	h.reg.record(h.inc, h.count, h.chain)
	return res
}

func (h *historyRecorder) Snapshot() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	inner := h.inner.Snapshot()
	enc := message.NewEncoder(16 + len(h.chain) + len(inner))
	enc.U64(h.count)
	enc.Bytes32(h.chain)
	enc.VarBytes(inner)
	return enc.Bytes()
}

func (h *historyRecorder) Restore(snapshot []byte) error {
	d := message.NewDecoder(snapshot)
	count := d.U64()
	chain := crypto.Digest(d.Bytes32())
	inner := d.VarBytes()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("chaos: recorder snapshot: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.inner.Restore(append([]byte(nil), inner...)); err != nil {
		return err
	}
	h.count = count
	h.chain = chain
	// A transferred snapshot asserts a history position too; recording
	// it cross-checks state transfer against live execution.
	if count > 0 {
		h.reg.record(h.inc, count, chain)
	}
	return nil
}

// run bundles the mutable state of one chaos run.
type run struct {
	opts Options
	plan Plan
	cfg  config.Config

	reg *historyRegistry
	inj transport.Injector

	mon *audit.Monitor

	mu           sync.Mutex // guards cluster mutation + fields below
	cl           *cluster.Cluster
	incarnation  map[uint32]int
	faulty       []*transport.FaultyEndpoint
	restarted    map[uint32]bool
	auditStopped bool
	chaosCommits atomic.Uint64
	healCommits  atomic.Uint64
}

// configFor builds the deliberately small chaos configuration: tiny
// checkpoint interval and window so restarted replicas catch up after
// a handful of commits, and a short view-change timeout so leader
// suspicion plays out within the schedule horizon.
func configFor(p config.Protocol) config.Config {
	pillars := 1
	if p == config.HybsterX {
		pillars = 2
	}
	return config.Config{
		Protocol:           p,
		N:                  config.ReplicasFor(p, 1),
		Pillars:            pillars,
		BatchSize:          8,
		CheckpointInterval: 8,
		WindowSize:         32,
		ViewChangeTimeout:  250 * time.Millisecond,
		KeySeed:            "chaos",
	}
}

// factory builds one replica engine of the configured protocol with a
// history-recording application. Each (replica, incarnation) pair gets
// its own recorder identity so a restarted replica's fresh history is
// tracked separately from its previous life.
func (r *run) factory(cfg config.Config, id uint32, ep transport.Endpoint, env cluster.NodeEnv) (cluster.Replica, error) {
	r.incarnation[id]++
	var inner statemachine.Application = counter.New()
	if r.opts.Fork != nil && r.opts.Fork.Replica == id {
		// The fork sits inside the history recorder, so the recorder
		// chains over the forked replica's (diverged) results and the
		// history safety check fails alongside the auditor's finding.
		inner = &forkApp{inner: inner}
	}
	app := &historyRecorder{
		inner: inner,
		reg:   r.reg,
		inc:   fmt.Sprintf("r%d#%d", id, r.incarnation[id]),
	}
	switch cfg.Protocol {
	case config.MinBFT:
		return minbft.New(minbft.Options{
			Config: cfg, ID: id, Endpoint: ep, Application: app, Platform: env.Platform,
			Telemetry: env.Telemetry,
		})
	case config.PBFTcop, config.HybridPBFT:
		return pbft.New(pbft.Options{
			Config: cfg, ID: id, Endpoint: ep, Application: app, Platform: env.Platform,
			Telemetry: env.Telemetry,
		})
	default:
		return core.New(core.Options{
			Config: cfg, ID: id, Endpoint: ep, Application: app, Platform: env.Platform,
			DataDir: env.DataDir, Telemetry: env.Telemetry,
		})
	}
}

// wrapEndpoint decorates a replica endpoint with the run's fault
// injector and remembers it for stats aggregation. Called under r.mu
// (cluster.New and Restart run inside the lock).
func (r *run) wrapEndpoint(id uint32, ep transport.Endpoint) transport.Endpoint {
	f := transport.WrapFaulty(ep, r.inj)
	r.faulty = append(r.faulty, f)
	return f
}

// Run executes one chaos schedule against a fresh cluster and checks
// the safety and liveness invariants. A non-nil error means an
// invariant was violated (or the cluster failed to boot); fault-stall
// behavior during the schedule is not an error.
func Run(o Options) (*Result, error) {
	o = o.withDefaults()
	cfg := configFor(o.Protocol)
	var plan Plan
	if o.Plan != nil {
		plan = *o.Plan
	} else {
		plan = Generate(o.Seed, cfg.N, o.Horizon)
	}

	r := &run{
		opts:        o,
		plan:        plan,
		cfg:         cfg,
		reg:         newHistoryRegistry(),
		inj:         plan.NewInjector(),
		incarnation: make(map[uint32]int),
		restarted:   make(map[uint32]bool),
	}

	r.mu.Lock()
	cl, err := cluster.New(cluster.Options{
		Config:       cfg,
		Seed:         plan.Seed,
		WrapEndpoint: r.wrapEndpoint,
		DataRoot:     o.DataRoot,
	}, r.factory)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.cl = cl
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		cl.Stop()
		r.mu.Unlock()
	}()

	// Every chaos run is audited online: safety checks from the first
	// poll, liveness checks armed once the cluster heals.
	r.startAudit()
	defer r.stopAudit()

	o.Logf("chaos: %s under %s", o.Protocol, plan)

	// Client load for the whole run: short per-attempt timeouts so
	// partitions surface as retries, not as stuck goroutines.
	stopLoad := make(chan struct{})
	var load sync.WaitGroup
	for i := 0; i < o.Clients; i++ {
		r.mu.Lock()
		c, cerr := cl.NewClient(120 * time.Millisecond)
		r.mu.Unlock()
		if cerr != nil {
			close(stopLoad)
			return nil, cerr
		}
		load.Add(1)
		go func(c *client.Client) {
			defer load.Done()
			defer c.Close()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				if _, err := c.Invoke([]byte{1}, false); err == nil {
					r.chaosCommits.Add(1)
				}
			}
		}(c)
	}

	// Apply the schedule, then complete outstanding restarts and heal.
	r.applySchedule()
	close(stopLoad)
	load.Wait()

	r.mu.Lock()
	r.cl.HealAll()
	for _, f := range r.faulty {
		f.Quiesce()
	}
	healTarget := r.maxExecutedLocked()
	r.mu.Unlock()
	o.Logf("chaos: healed; max executed order %d; %d commits under faults",
		healTarget, r.chaosCommits.Load())
	r.mon.Auditor().EnableLiveness(true)

	if err := r.settle(healTarget); err != nil {
		if os.Getenv("CHAOS_DEBUG_STACKS") != "" {
			_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
		}
		r.stopAudit()
		return r.result(), err
	}

	r.stopAudit()
	res := r.result()
	points, serr := r.reg.check()
	res.HistoryPoints = points
	if serr != nil {
		return res, serr
	}
	if n := len(res.Audit.Findings); n > 0 {
		f := res.Audit.Findings[0]
		return res, fmt.Errorf("chaos: auditor raised %d finding(s); first: [%s] %s", n, f.Kind, f.Detail)
	}
	o.Logf("chaos: safety ok over %d history points; audit clean over %d rounds; %d post-heal commits",
		points, res.Audit.Rounds, res.PostHealCommits)
	return res, nil
}

// applySchedule sleeps through the plan's event timeline, applying
// partitions, heals, crashes, and restarts at their offsets.
func (r *run) applySchedule() {
	type event struct {
		at    time.Duration
		apply func()
	}
	var events []event
	for _, c := range r.plan.Crashes {
		c := c
		events = append(events, event{c.At, func() {
			r.opts.Logf("chaos: crash r%d", c.Replica)
			r.mu.Lock()
			r.cl.Crash(c.Replica)
			r.restarted[c.Replica] = true
			r.mu.Unlock()
		}})
		if c.Downtime > 0 && c.At+c.Downtime < r.plan.Horizon {
			events = append(events, event{c.At + c.Downtime, func() {
				r.mu.Lock()
				if c.Amnesia && r.opts.DataRoot != "" {
					// Wipe the disk first: a durable replica must be
					// refused (its seal register outlives its blob) and
					// stays down as a zombie for the rest of the run.
					r.opts.Logf("chaos: restart r%d with amnesia", c.Replica)
					if err := r.cl.RestartAmnesia(c.Replica); err != nil {
						r.opts.Logf("chaos: r%d refused (zombie): %v", c.Replica, err)
					}
				} else {
					r.opts.Logf("chaos: restart r%d", c.Replica)
					_ = r.cl.Restart(c.Replica)
				}
				r.mu.Unlock()
			}})
		}
	}
	for _, p := range r.plan.Partitions {
		p := p
		events = append(events, event{p.At, func() {
			r.opts.Logf("chaos: partition %d↔%d", p.A, p.B)
			r.mu.Lock()
			r.cl.Partition(p.A, p.B)
			r.mu.Unlock()
		}})
		if p.Heal < r.plan.Horizon {
			events = append(events, event{p.Heal, func() {
				r.opts.Logf("chaos: heal %d↔%d", p.A, p.B)
				r.mu.Lock()
				r.cl.Heal(p.A, p.B)
				r.mu.Unlock()
			}})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	start := time.Now()
	for _, e := range events {
		if d := e.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		e.apply()
	}
	if d := r.plan.Horizon - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	// Bring back any replica still down at the horizon — except
	// zombies, which were refused for cause and must stay down.
	r.mu.Lock()
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		if r.cl.Replica(id) == nil && !r.cl.Zombie(id) {
			r.opts.Logf("chaos: restart r%d (horizon)", id)
			_ = r.cl.Restart(id)
		}
	}
	r.mu.Unlock()
}

// settle drives fresh load after the heal and enforces liveness: at
// least MinPostHealCommits must succeed, and every replica that can
// catch up must reach the pre-heal execution frontier. MinBFT is
// exempt from the catch-up half: a replica that rejoined after
// amnesia is convicted of counter regression by its peers and refused
// from ordering forever — the recovery gap §4.4 of the paper points
// out in prior hybrid protocols — so even though checkpoint-anchored
// state transfer lets fallen-behind replicas resume execution, a
// convicted replica's frontier is not guaranteed to advance. For
// MinBFT the harness therefore asserts safety and post-heal commits
// only.
func (r *run) settle(target timeline.Order) error {
	r.mu.Lock()
	probe, err := r.cl.NewClient(300 * time.Millisecond)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	defer probe.Close()

	deadline := time.Now().Add(r.opts.SettleTimeout)
	for time.Now().Before(deadline) {
		if _, err := probe.Invoke([]byte{1}, false); err == nil {
			r.healCommits.Add(1)
		}
		if int(r.healCommits.Load()) >= r.opts.MinPostHealCommits && r.caughtUp(target) {
			return nil
		}
	}
	if int(r.healCommits.Load()) < r.opts.MinPostHealCommits {
		return fmt.Errorf("chaos: liveness violated: only %d/%d commits within %v after heal",
			r.healCommits.Load(), r.opts.MinPostHealCommits, r.opts.SettleTimeout)
	}
	return fmt.Errorf("chaos: catch-up failed: %s within %v after heal", r.lagReport(target), r.opts.SettleTimeout)
}

// caughtUp reports whether every catch-up-eligible replica executed
// past the pre-heal frontier.
func (r *run) caughtUp(target timeline.Order) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		if r.exemptLocked(id) {
			continue
		}
		rep := r.cl.Replica(id)
		if rep == nil || rep.LastExecuted() < target {
			return false
		}
	}
	return true
}

func (r *run) exemptLocked(id uint32) bool {
	// Zombies are permanently down by design (their rejoin was refused);
	// demanding catch-up from them would fail every durable run.
	return r.cfg.Protocol == config.MinBFT || r.cl.Zombie(id)
}

func (r *run) lagReport(target timeline.Order) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b []string
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		if r.exemptLocked(id) {
			continue
		}
		rep := r.cl.Replica(id)
		if rep == nil {
			b = append(b, fmt.Sprintf("r%d down", id))
		} else if got := rep.LastExecuted(); got < target {
			b = append(b, fmt.Sprintf("r%d at %d < %d", id, got, target))
		}
	}
	if len(b) == 0 {
		return "no lagging replica"
	}
	return fmt.Sprintf("lagging: %v", b)
}

func (r *run) maxExecutedLocked() timeline.Order {
	var max timeline.Order
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		if rep := r.cl.Replica(id); rep != nil {
			if o := rep.LastExecuted(); o > max {
				max = o
			}
		}
	}
	return max
}

func (r *run) result() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := &Result{
		Plan:            r.plan,
		ChaosCommits:    r.chaosCommits.Load(),
		PostHealCommits: r.healCommits.Load(),
		MaxOrder:        r.maxExecutedLocked(),
	}
	for id, was := range r.restarted {
		if was {
			res.Restarted = append(res.Restarted, id)
		}
	}
	sort.Slice(res.Restarted, func(i, j int) bool { return res.Restarted[i] < res.Restarted[j] })
	res.Zombies = r.cl.Zombies()
	res.Telemetry = make([]map[string]float64, r.cfg.N)
	res.Traces = make([][]telemetry.Event, r.cfg.N)
	for id := uint32(0); int(id) < r.cfg.N; id++ {
		res.Telemetry[id] = r.cl.Telemetry(id).Metrics().Snapshot()
		res.Traces[id] = r.cl.Telemetry(id).Tracer().Events()
	}
	if r.mon != nil {
		res.Audit = r.mon.Auditor().Report()
	}
	for _, f := range r.faulty {
		s := f.Stats()
		res.Faults.Sent += s.Sent
		res.Faults.Dropped += s.Dropped
		res.Faults.Duplicated += s.Duplicated
		res.Faults.Corrupted += s.Corrupted
		res.Faults.CorruptDropped += s.CorruptDropped
		res.Faults.Delayed += s.Delayed
		res.Faults.Held += s.Held
	}
	return res
}
