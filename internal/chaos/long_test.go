package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"hybster/internal/config"
)

// The long sweep is the cron-tier chaos job (`make chaos-long`): many
// seeds, a longer fault horizon, and elevated fault rates, alternating
// cold restarts and amnesia restarts. It is gated behind CHAOS_LONG so
// ordinary `go test ./...` runs stay fast and deterministic.
//
//	CHAOS_LONG=1         enable the sweep
//	CHAOS_LONG_SEEDS=n   seeds per restart mode (default 4)
//	CHAOS_LONG_HORIZON=d fault-active window per run (default 4s)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envDur(name string, def time.Duration) time.Duration {
	if s := os.Getenv(name); s != "" {
		if v, err := time.ParseDuration(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// longPlan is durablePlan with the volume turned up: every fault
// category is several times more likely, the delay bound is wider, and
// corruption is switched on (absent from the pinned short schedule so
// its determinism stays byte-exact).
func longPlan(seed int64, horizon time.Duration, amnesia bool) *Plan {
	return &Plan{
		Seed:    seed,
		N:       3,
		Horizon: horizon,
		Links: []LinkFault{{
			From: Any, To: Any,
			Drop: 0.06, Duplicate: 0.03, Corrupt: 0.02, Reorder: 0.05,
			DelayProb: 0.10, DelayMax: 8 * time.Millisecond,
		}},
		Crashes: []CrashEvent{{
			Replica:  1,
			At:       horizon / 4,
			Downtime: horizon / 4,
			Amnesia:  amnesia,
		}},
		Partitions: []PartitionEvent{{
			A: 0, B: 2,
			At:   horizon / 3,
			Heal: horizon / 2,
		}},
	}
}

func TestChaosLongDurableSweep(t *testing.T) {
	if os.Getenv("CHAOS_LONG") == "" {
		t.Skip("long sweep disabled; run via `make chaos-long` (sets CHAOS_LONG=1)")
	}
	seeds := envInt("CHAOS_LONG_SEEDS", 4)
	horizon := envDur("CHAOS_LONG_HORIZON", 4*time.Second)

	for _, amnesia := range []bool{false, true} {
		for s := 0; s < seeds; s++ {
			seed := int64(1000 + s)
			name := fmt.Sprintf("cold/seed=%d", seed)
			if amnesia {
				name = fmt.Sprintf("amnesia/seed=%d", seed)
			}
			amnesia := amnesia
			t.Run(name, func(t *testing.T) {
				res, err := Run(Options{
					Protocol:      config.HybsterS,
					Plan:          longPlan(seed, horizon, amnesia),
					Clients:       3,
					DataRoot:      t.TempDir(),
					SettleTimeout: 60 * time.Second,
					Logf:          t.Logf,
				})
				if err != nil {
					t.Fatalf("long chaos run failed (%v): %v", res.Plan, err)
				}
				if res.PostHealCommits < 5 {
					t.Fatalf("only %d post-heal commits", res.PostHealCommits)
				}
				if res.HistoryPoints == 0 {
					t.Fatal("safety check compared zero history points")
				}
				if amnesia {
					if len(res.Zombies) != 1 || res.Zombies[0] != 1 {
						t.Fatalf("Zombies = %v; want [1]", res.Zombies)
					}
				} else {
					if len(res.Zombies) != 0 {
						t.Fatalf("cold restart produced zombies: %v", res.Zombies)
					}
					if len(res.Restarted) != 1 || res.Restarted[0] != 1 {
						t.Fatalf("Restarted = %v; want [1]", res.Restarted)
					}
				}
				t.Logf("long chaos: order=%d points=%d heal-commits=%d faults=%+v",
					res.MaxOrder, res.HistoryPoints, res.PostHealCommits, res.Faults)
			})
		}
	}
}
