package chaos

import (
	"testing"
	"time"

	"hybster/internal/config"
)

// durablePlan is the pinned schedule for the cold-restart chaos runs:
// mild link noise over every link, one crash of replica 1 with a
// restart inside the horizon. Deterministic — the same seed replays
// the same fault sequence.
func durablePlan(seed int64, horizon time.Duration, amnesia bool) *Plan {
	return &Plan{
		Seed:    seed,
		N:       3,
		Horizon: horizon,
		Links: []LinkFault{{
			From: Any, To: Any,
			Drop: 0.02, Duplicate: 0.01, Reorder: 0.02,
			DelayProb: 0.05, DelayMax: 3 * time.Millisecond,
		}},
		Crashes: []CrashEvent{{
			Replica:  1,
			At:       horizon / 4,
			Downtime: horizon / 4,
			Amnesia:  amnesia,
		}},
		Partitions: []PartitionEvent{{
			A: 0, B: 2,
			At:   horizon / 3,
			Heal: horizon / 2,
		}},
	}
}

// TestChaosColdRestartDurable pins the acceptance scenario for durable
// recovery: a Hybster cluster with persistent data directories runs a
// deterministic schedule whose crash victim is hard-killed (kill -9
// semantics: no exact-value seal, no WAL flush, torn log tail) and
// comes back via COLD restart — sealed-horizon counters + replay of
// the durable WAL prefix, not a blank slate and not a gracefully
// flushed one. The run must preserve the hash-chained history
// (safety) and resume committing with the recovered replica caught up
// (liveness).
func TestChaosColdRestartDurable(t *testing.T) {
	res, err := Run(Options{
		Protocol: config.HybsterS,
		Plan:     durablePlan(7, chaosHorizon(), false),
		Clients:  3,
		DataRoot: t.TempDir(),
		// Recovery converges through view-change backoff; give it
		// headroom against CPU starvation when the whole suite runs in
		// parallel (settle returns early on success).
		SettleTimeout: 60 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("durable chaos run failed (%v): %v", res.Plan, err)
	}
	if res.PostHealCommits < 5 {
		t.Fatalf("only %d post-heal commits", res.PostHealCommits)
	}
	if len(res.Restarted) != 1 || res.Restarted[0] != 1 {
		t.Fatalf("Restarted = %v; want [1]", res.Restarted)
	}
	if len(res.Zombies) != 0 {
		t.Fatalf("cold restart produced zombies: %v", res.Zombies)
	}
	if res.HistoryPoints == 0 {
		t.Fatal("safety check compared zero history points")
	}
	t.Logf("durable chaos: order=%d points=%d heal-commits=%d",
		res.MaxOrder, res.HistoryPoints, res.PostHealCommits)
}

// TestChaosAmnesiaZombie pins the other half of the acceptance
// criteria: the same schedule but with the victim's disk wiped before
// its restart. The durable replica must be refused (zombie), the
// group of the two survivors must stay both safe and live, and the
// catch-up check must exempt the zombie rather than fail on it.
func TestChaosAmnesiaZombie(t *testing.T) {
	res, err := Run(Options{
		Protocol: config.HybsterS,
		Plan:     durablePlan(7, chaosHorizon(), true),
		Clients:  3,
		DataRoot: t.TempDir(),
		// Two survivors carrying a permanent zombie is the slowest
		// convergence in the suite; same starvation headroom as above.
		SettleTimeout: 60 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("amnesia chaos run failed (%v): %v", res.Plan, err)
	}
	if len(res.Zombies) != 1 || res.Zombies[0] != 1 {
		t.Fatalf("Zombies = %v; want [1]", res.Zombies)
	}
	if res.PostHealCommits < 5 {
		t.Fatalf("only %d post-heal commits with zombie down", res.PostHealCommits)
	}
	if res.HistoryPoints == 0 {
		t.Fatal("safety check compared zero history points")
	}
	t.Logf("amnesia chaos: order=%d points=%d heal-commits=%d zombies=%v",
		res.MaxOrder, res.HistoryPoints, res.PostHealCommits, res.Zombies)
}
