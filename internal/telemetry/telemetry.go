package telemetry

// Telemetry bundles the two per-replica instruments — the metrics
// registry and the event tracer — into the single handle that threads
// through engine Options. A nil *Telemetry disables everything: every
// accessor below (and every instrument they return) tolerates nil, so
// instrumented code never branches on "is telemetry on".
type Telemetry struct {
	metrics *Registry
	tracer  *Tracer
}

// New creates a bundle with a fresh registry and a tracer of the
// default depth tagged with protocol.
func New(protocol string) *Telemetry {
	return &Telemetry{metrics: NewRegistry(), tracer: NewTracer(protocol, 0)}
}

// NewFor creates a bundle whose tracer is additionally tagged with the
// replica's ID — the identity cross-replica trace merging keys on.
func NewFor(protocol string, replica uint32) *Telemetry {
	t := New(protocol)
	t.tracer.SetReplica(replica)
	return t
}

// NewWith assembles a bundle from existing parts (either may be nil).
func NewWith(reg *Registry, tr *Tracer) *Telemetry {
	return &Telemetry{metrics: reg, tracer: tr}
}

// Metrics returns the registry (nil when disabled).
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Tracer returns the event tracer (nil when disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Counter resolves a counter from the bundle's registry (nil-safe).
func (t *Telemetry) Counter(name, help string, labels ...Label) *Counter {
	return t.Metrics().Counter(name, help, labels...)
}

// Gauge resolves a gauge (nil-safe).
func (t *Telemetry) Gauge(name, help string, labels ...Label) *Gauge {
	return t.Metrics().Gauge(name, help, labels...)
}

// GaugeFunc registers a sampled gauge (nil-safe).
func (t *Telemetry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	t.Metrics().GaugeFunc(name, help, fn, labels...)
}

// Histogram resolves a histogram (nil-safe).
func (t *Telemetry) Histogram(name, help string, labels ...Label) *Histogram {
	return t.Metrics().Histogram(name, help, labels...)
}

// Trace records one protocol event (nil-safe).
func (t *Telemetry) Trace(kind EventKind, view, slot uint64, pillar uint32, note string) {
	t.Tracer().Record(kind, view, slot, pillar, note)
}

// TraceDigest records one protocol event carrying a digest correlation
// key (nil-safe).
func (t *Telemetry) TraceDigest(kind EventKind, view, slot uint64, pillar uint32, digest []byte, note string) {
	t.Tracer().RecordDigest(kind, view, slot, pillar, digest, note)
}
