package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestTracerRingWraparound fills a small ring past capacity and checks
// the retained window is exactly the newest depth events, oldest-first,
// with seq numbers that expose how much was dropped.
func TestTracerRingWraparound(t *testing.T) {
	const depth = 8
	tr := NewTracer("hybster", depth)
	const total = 21
	for i := 0; i < total; i++ {
		tr.Record(EvCommit, 1, uint64(i), 0, "")
	}
	if tr.Len() != depth {
		t.Fatalf("Len = %d, want %d", tr.Len(), depth)
	}
	evs := tr.Events()
	if len(evs) != depth {
		t.Fatalf("Events returned %d, want %d", len(evs), depth)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - depth + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Slot != wantSeq {
			t.Fatalf("event %d has slot %d, want %d (overwritten in order)", i, ev.Slot, wantSeq)
		}
		if ev.Protocol != "hybster" {
			t.Fatalf("event %d lost protocol tag: %q", i, ev.Protocol)
		}
	}
}

// TestTracerBelowCapacity pins the pre-wrap behavior: all events
// retained, in order, starting at seq 0.
func TestTracerBelowCapacity(t *testing.T) {
	tr := NewTracer("pbft", 16)
	tr.Record(EvPropose, 0, 1, 0, "batch=4")
	tr.Record(EvDeliver, 0, 1, 0, "")
	evs := tr.Events()
	if len(evs) != 2 || tr.Len() != 2 {
		t.Fatalf("retained %d/%d events, want 2", len(evs), tr.Len())
	}
	if evs[0].Kind != EvPropose || evs[0].Seq != 0 || evs[0].Note != "batch=4" {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[1].Kind != EvDeliver || evs[1].Seq != 1 {
		t.Fatalf("second event wrong: %+v", evs[1])
	}
}

// TestTracerConcurrentRecord hammers Record/Events/WriteJSON from many
// goroutines; under -race this pins the tracer's thread safety.
func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer("hybster", 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(EvPrepare, uint64(w), uint64(i), uint32(w), "")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Events()
			_ = tr.WriteJSON(&strings.Builder{})
		}
	}()
	wg.Wait()
	if got := tr.Events()[len(tr.Events())-1].Seq; got != 4*500-1 {
		t.Fatalf("newest seq = %d, want %d", got, 4*500-1)
	}
}

// TestEventKindJSON pins the taxonomy names in the JSON encoding.
func TestEventKindJSON(t *testing.T) {
	for kind, name := range eventKindNames {
		b, err := json.Marshal(kind)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != fmt.Sprintf("%q", name) {
			t.Fatalf("kind %d marshals to %s, want %q", kind, b, name)
		}
	}
	if EventKind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind renders %q", EventKind(200).String())
	}
}

// TestDumpFile round-trips a ring through DumpFile and checks the
// envelope.
func TestDumpFile(t *testing.T) {
	tr := NewTracer("minbft", 4)
	for i := 0; i < 6; i++ {
		tr.Record(EvExec, 0, uint64(i), 0, "")
	}
	dir := filepath.Join(t.TempDir(), "dumps")
	path, err := tr.DumpFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Protocol string `json:"protocol"`
		Total    uint64 `json:"total_events"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Protocol != "minbft" || d.Total != 6 || len(d.Events) != 4 {
		t.Fatalf("envelope wrong: %+v", d)
	}
	if d.Events[0].Seq != 2 || d.Events[0].Kind != "exec" {
		t.Fatalf("oldest retained event wrong: %+v", d.Events[0])
	}
}

// TestDumpHeaderRoundTrip pins the self-describing dump header (replica
// ID, protocol, ring depth, drop count) and the digest/timestamp fields
// through a DumpFile → ReadDump round trip: offline merging must never
// depend on filenames.
func TestDumpHeaderRoundTrip(t *testing.T) {
	tr := NewTracer("hybster", 4)
	tr.SetReplica(2)
	dig := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6}
	for i := 0; i < 6; i++ {
		tr.RecordDigest(EvCommit, 1, uint64(i), 0, dig, "")
	}
	dir := t.TempDir()
	path, err := tr.DumpFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Replica != 2 || d.Protocol != "hybster" || d.RingDepth != 4 {
		t.Fatalf("header wrong: %+v", d)
	}
	if d.Total != 6 || d.Dropped != 2 || len(d.Events) != 4 {
		t.Fatalf("accounting wrong: total=%d dropped=%d events=%d", d.Total, d.Dropped, len(d.Events))
	}
	ev := d.Events[0]
	if ev.Replica != 2 || ev.Kind != EvCommit {
		t.Fatalf("event lost tags through round trip: %+v", ev)
	}
	if want := DigestPrefix(dig); ev.Digest != want || len(ev.Digest) != 2*DigestPrefixLen {
		t.Fatalf("digest prefix = %q, want %q", ev.Digest, want)
	}
	if ev.TS == 0 || ev.Mono == 0 {
		t.Fatalf("timestamps missing: ts=%d mono=%d", ev.TS, ev.Mono)
	}
}
