package telemetry

import (
	"encoding/json"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
)

// TestOpsServerConcurrentScrapes hammers every ops endpoint from
// parallel scrapers while writer goroutines record events and bump
// instruments at protocol rate — the deployment shape once an audit
// monitor polls /vars and /trace on its own schedule alongside a
// Prometheus scraper and a human hitting /audit. Run under -race this
// pins that no endpoint shares unsynchronized state with the hot path.
func TestOpsServerConcurrentScrapes(t *testing.T) {
	const ringDepth = 64 // small, so dumps race ring wraparound constantly

	reg := NewRegistry()
	tr := NewTracer("minbft", ringDepth)
	tr.SetReplica(7)
	tel := NewWith(reg, tr)
	commits := tel.Counter("hybster_minbft_committed_total", "committed")
	lat := tel.Histogram("hybster_exec_latency_us", "execution latency")
	var view atomic.Uint64
	tel.GaugeFunc("hybster_minbft_view", "current view",
		func() float64 { return float64(view.Load()) })

	dumpDir := t.TempDir()
	s := NewOpsServer(OpsOptions{
		Telemetry:    tel,
		Healthz:      func() error { return nil },
		Readyz:       func() error { return nil },
		Vars:         func() map[string]any { return map[string]any{"replica_id": 7} },
		TraceDumpDir: dumpDir,
		// A realistic audit callback reads the registry it is asked
		// about, so /audit scrapes contend with the writers too.
		Audit: func() any {
			return map[string]any{"findings": 0, "metrics": len(reg.Snapshot())}
		},
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var stop atomic.Bool
	var writers, scrapers sync.WaitGroup

	// Writers: protocol-rate event recording and instrument updates.
	// Each writer loops until the scrapers are done, guaranteeing every
	// scrape and dump races live recording and ring wraparound.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := uint64(0); !stop.Load(); i++ {
				tel.TraceDigest(EvCommit, i%5, i, uint32(w), []byte{byte(i), byte(w)}, "")
				commits.Inc()
				lat.Observe(i % 5000)
				view.Store(i % 5)
			}
		}(w)
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0, nil
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n := 0
		for {
			m, err := resp.Body.Read(buf[n:])
			n += m
			if err != nil || n == len(buf) {
				break
			}
		}
		return resp.StatusCode, buf[:n]
	}

	// Scrapers: each endpoint hit repeatedly from its own goroutine.
	const rounds = 30
	for _, path := range []string{"/metrics", "/vars", "/audit", "/healthz", "/readyz"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for i := 0; i < rounds; i++ {
				if code, _ := get(path); code != http.StatusOK {
					t.Errorf("GET %s = %d", path, code)
					return
				}
			}
		}(path)
	}

	// /trace scraper: every response must be a well-formed dump whose
	// header exactly describes its events even mid-recording.
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for i := 0; i < rounds; i++ {
			code, body := get("/trace")
			if code != http.StatusOK {
				t.Errorf("GET /trace = %d", code)
				return
			}
			checkDump(t, "/trace", body, ringDepth)
		}
	}()

	// Dump writer: POST /trace/dump races the ring's wraparound; the
	// files are validated below once everything has settled.
	var dumpMu sync.Mutex
	var dumps []string
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Post(base+"/trace/dump", "", nil)
			if err != nil {
				t.Errorf("POST /trace/dump: %v", err)
				return
			}
			var out struct {
				Dumped string `json:"dumped"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("POST /trace/dump = %d, %v", resp.StatusCode, err)
				return
			}
			dumpMu.Lock()
			dumps = append(dumps, out.Dumped)
			dumpMu.Unlock()
		}
	}()

	// Stop the writers only after every scraper goroutine finished, so
	// the whole scrape volume ran against live traffic. The scrapers
	// are bounded by rounds; the writers by the stop flag.
	scrapers.Wait()
	stop.Store(true)
	writers.Wait()

	if len(dumps) != rounds {
		t.Fatalf("collected %d dumps, want %d", len(dumps), rounds)
	}
	for _, path := range dumps {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read dump: %v", err)
		}
		checkDump(t, path, b, ringDepth)
	}
}

// checkDump asserts the self-consistency a dump taken mid-recording
// must still have: the header counts describe exactly the carried
// events, the events are a contiguous seq range ending at the header's
// total, and nothing exceeds the ring.
func checkDump(t *testing.T, src string, body []byte, ringDepth int) {
	t.Helper()
	var d TraceDump
	if err := json.Unmarshal(body, &d); err != nil {
		t.Errorf("%s: not a dump: %v", src, err)
		return
	}
	if d.Replica != 7 || d.Protocol != "minbft" || d.RingDepth != ringDepth {
		t.Errorf("%s: header = replica %d proto %q depth %d", src, d.Replica, d.Protocol, d.RingDepth)
	}
	if len(d.Events) > ringDepth {
		t.Errorf("%s: %d events exceed ring depth %d", src, len(d.Events), ringDepth)
	}
	if d.Dropped != d.Total-uint64(len(d.Events)) {
		t.Errorf("%s: dropped %d != total %d - carried %d", src, d.Dropped, d.Total, len(d.Events))
	}
	for i, ev := range d.Events {
		want := d.Total - uint64(len(d.Events)) + uint64(i)
		if ev.Seq != want {
			t.Errorf("%s: event %d seq %d, want %d (torn snapshot)", src, i, ev.Seq, want)
			return
		}
	}
}
