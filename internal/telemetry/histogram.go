package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is one per possible bit length of a uint64 observation
// plus bucket 0 for the value 0 — the histogram's memory is bounded by
// construction (65 × 8 bytes of counters), the "bounded log-bucketed"
// requirement.
const numBuckets = 65

// Histogram is a log₂-bucketed histogram of uint64 observations.
// Bucket i counts observations with upper bound 2^i − 1 ... precisely:
// bucket 0 holds the value 0 and bucket i (i ≥ 1) holds values in
// [2^(i−1), 2^i). Observe is a single atomic add per call plus two for
// count/sum; there is no lock and no allocation.
//
// Durations are observed in nanoseconds (ObserveDuration) and exposed
// in seconds, matching the Prometheus convention for `_seconds`
// histogram families.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // native units (ns for durations)
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index: 0→0, v→bits.Len64(v).
func bucketOf(v uint64) int { return bits.Len64(v) }

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds (negative clamps
// to zero). Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) countAndSum() (uint64, float64) {
	if h == nil {
		return 0, 0
	}
	return h.count.Load(), float64(h.sum.Load())
}

// nanosToSeconds converts native nanosecond observations to seconds
// for the exposition. Dividing by 1e9 (exactly representable) yields
// the correctly rounded value; multiplying by 1e-9 (not representable)
// would leave float artifacts in the printed bounds.
func nanosToSeconds(ns float64) float64 { return ns / 1e9 }

// writePrometheus emits the histogram in Prometheus text format:
// cumulative buckets with `le` upper bounds (in seconds — observations
// are nanoseconds), then +Inf, sum, and count. Empty high buckets
// above the largest observation are elided; the +Inf bucket always
// closes the series.
func (h *Histogram) writePrometheus(w io.Writer, name string, labels []Label) error {
	var cum uint64
	highest := 0
	counts := [numBuckets]uint64{}
	for i := 0; i < numBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			highest = i
		}
	}
	for i := 0; i <= highest; i++ {
		cum += counts[i]
		// Bucket i holds values < 2^i ns, so the inclusive `le` bound
		// is 2^i − 1 ns, exposed in seconds.
		var le float64
		if i == 0 {
			le = 0
		} else {
			le = nanosToSeconds(float64(uint64(1)<<uint(i) - 1))
		}
		bl := append(append([]Label{}, labels...), L("le", formatFloat(le)))
		if _, err := fmt.Fprintf(w, "%s %d\n", fullName(name+"_bucket", bl), cum); err != nil {
			return err
		}
	}
	infLabels := append(append([]Label{}, labels...), L("le", "+Inf"))
	count, sum := h.countAndSum()
	if _, err := fmt.Fprintf(w, "%s %d\n", fullName(name+"_bucket", infLabels), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", fullName(name+"_sum", labels), formatFloat(nanosToSeconds(sum))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", fullName(name+"_count", labels), count)
	return err
}
