package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestOpsServerEndpoints boots a full ops server on a random port and
// exercises every endpoint once.
func TestOpsServerEndpoints(t *testing.T) {
	tel := New("hybster")
	tel.Counter("hybster_core_commits_total", "commits").Add(9)
	tel.Trace(EvCommit, 1, 42, 0, "")
	dumpDir := filepath.Join(t.TempDir(), "dumps")

	ready := false
	s := NewOpsServer(OpsOptions{
		Telemetry: tel,
		Healthz:   func() error { return nil },
		Readyz: func() error {
			if !ready {
				return errors.New("engine not started")
			}
			return nil
		},
		Vars:         func() map[string]any { return map[string]any{"replica_id": 3} },
		TraceDumpDir: dumpDir,
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "hybster_core_commits_total 9") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	code, body = getBody(t, base+"/vars")
	if code != http.StatusOK {
		t.Fatalf("/vars = %d", code)
	}
	var vars struct {
		ReplicaID int                `json:"replica_id"`
		Metrics   map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v\n%s", err, body)
	}
	if vars.ReplicaID != 3 || vars.Metrics["hybster_core_commits_total"] != 9 {
		t.Fatalf("/vars content wrong: %s", body)
	}

	code, body = getBody(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, `"slot": 42`) {
		t.Fatalf("/trace = %d:\n%s", code, body)
	}

	code, body = getBody(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, _ = getBody(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before start = %d, want 503", code)
	}
	ready = true
	code, _ = getBody(t, base+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz after start = %d, want 200", code)
	}

	// Trace dump requires POST; GET is rejected.
	code, _ = getBody(t, base+"/trace/dump")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /trace/dump = %d, want 405", code)
	}
	resp, err := http.Post(base+"/trace/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dumped struct {
		Dumped string `json:"dumped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dumped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /trace/dump = %d", resp.StatusCode)
	}
	if _, err := os.Stat(dumped.Dumped); err != nil {
		t.Fatalf("dump file missing: %v", err)
	}

	code, body = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("pprof cmdline = %d", code)
	}
}

// TestOpsServerDefaults pins the degraded modes: nil telemetry and nil
// probes still serve valid (empty/healthy) responses, and trace dumps
// without a directory are refused.
func TestOpsServerDefaults(t *testing.T) {
	s := NewOpsServer(OpsOptions{})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("/metrics with nil telemetry = %d %q", code, body)
	}
	code, _ = getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz with nil probe = %d", code)
	}
	resp, err := http.Post(base+"/trace/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /trace/dump without dir = %d, want 503", resp.StatusCode)
	}
}

// TestOpsServerCloseBeforeServe pins that Close before Serve leaves no
// dangling listener.
func TestOpsServerCloseBeforeServe(t *testing.T) {
	s := NewOpsServer(OpsOptions{})
	s.Close()
	if err := s.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
	if s.Addr() != "" {
		t.Fatalf("closed server reports address %q", s.Addr())
	}
}

// BenchmarkCounterInc measures the enabled hot-path cost of one
// counter increment (one atomic RMW).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() == 0 {
		b.Fatal("counter unused")
	}
}

// BenchmarkCounterIncDisabled measures the disabled (nil receiver)
// cost — the "few nanoseconds" budget from the package contract.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures one histogram observation.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

var sinkString string

// BenchmarkExposition measures a full scrape of a realistic registry.
func BenchmarkExposition(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 40; i++ {
		r.Counter(fmt.Sprintf("hybster_layer_metric%d_total", i), "help").Add(uint64(i))
	}
	h := r.Histogram("hybster_wal_fsync_seconds", "")
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i * 1000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
		sinkString = sb.String()
	}
}

// TestOpsProfileRates flips the runtime contention-profiling knobs
// through the ops endpoint and checks they actually take effect — the
// smoke CI runs so a live replica can always be switched into
// mutex/block profiling without a restart.
func TestOpsProfileRates(t *testing.T) {
	// The knobs are process-global; restore whatever the other tests
	// in this binary were running with.
	origMutex, origBlock := ProfileRates()
	defer func() {
		if origBlock < 0 {
			origBlock = 0
		}
		SetProfileRates(origMutex, origBlock)
	}()

	s := NewOpsServer(OpsOptions{Telemetry: New("hybster")})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	readRates := func() map[string]int {
		t.Helper()
		code, body := getBody(t, base+"/debug/profile-rates")
		if code != http.StatusOK {
			t.Fatalf("GET /debug/profile-rates = %d: %s", code, body)
		}
		var m map[string]int
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("profile-rates body %q: %v", body, err)
		}
		return m
	}

	post := func(query string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/debug/profile-rates?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := post("mutex=7&block=10000"); code != http.StatusOK {
		t.Fatalf("POST rates = %d: %s", code, body)
	}
	m := readRates()
	if m["mutex_profile_fraction"] != 7 || m["block_profile_rate"] != 10000 {
		t.Fatalf("rates after POST = %v, want mutex 7 block 10000", m)
	}

	// With the fraction set, the mutex profile endpoint must serve.
	if code, _ := getBody(t, base+"/debug/pprof/mutex?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/mutex = %d with profiling on", code)
	}

	// Partial update: only the block rate; the mutex fraction holds.
	if code, body := post("block=0"); code != http.StatusOK {
		t.Fatalf("POST block=0 = %d: %s", code, body)
	}
	m = readRates()
	if m["mutex_profile_fraction"] != 7 || m["block_profile_rate"] != 0 {
		t.Fatalf("rates after partial POST = %v, want mutex 7 block 0", m)
	}

	// Invalid input is rejected and changes nothing.
	if code, _ := post("mutex=-3"); code != http.StatusBadRequest {
		t.Fatalf("POST mutex=-3 = %d, want 400", code)
	}
	if code, _ := post("mutex=zzz"); code != http.StatusBadRequest {
		t.Fatalf("POST mutex=zzz = %d, want 400", code)
	}
	if m = readRates(); m["mutex_profile_fraction"] != 7 {
		t.Fatalf("bad POST changed rates: %v", m)
	}

	if code, body := post("mutex=0"); code != http.StatusOK {
		t.Fatalf("POST mutex=0 = %d: %s", code, body)
	}
}
