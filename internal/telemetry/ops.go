package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// OpsOptions configure an ops server. Every field is optional; absent
// pieces degrade to empty responses (and health checks to 200 OK).
type OpsOptions struct {
	// Telemetry supplies /metrics, /vars, and /trace.
	Telemetry *Telemetry
	// Healthz reports process liveness: non-nil error → 503.
	Healthz func() error
	// Readyz reports serving readiness (engine liveness): non-nil
	// error → 503.
	Readyz func() error
	// Vars contributes extra named values to /vars (sampled per
	// request), alongside the metrics snapshot.
	Vars func() map[string]any
	// TraceDumpDir is where POST /trace/dump writes ring dumps;
	// empty disables the endpoint (405/404 semantics: 503 with a
	// message).
	TraceDumpDir string
	// Audit, when set, backs the /audit endpoint: it returns the
	// current protocol-auditor report (any JSON-encodable value —
	// typically an audit.Report). Nil leaves /audit returning 404.
	// Health demotion on findings is the caller's concern: compose the
	// auditor's health check into Readyz.
	Audit func() any
}

// OpsServer is the replica's operations endpoint: Prometheus metrics,
// JSON snapshots, health probes, trace dumps, and pprof — everything
// needed to watch a replica from outside while a chaos run hammers it.
type OpsServer struct {
	opts OpsOptions
	srv  *http.Server
	ln   net.Listener

	mu     sync.Mutex
	closed bool
}

// NewOpsServer assembles the server; call Serve to bind it.
func NewOpsServer(opts OpsOptions) *OpsServer {
	s := &OpsServer{opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/trace/dump", s.handleTraceDump)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/healthz", probeHandler(opts.Healthz))
	mux.HandleFunc("/readyz", probeHandler(opts.Readyz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Serve binds addr (":0" picks a free port) and serves in the
// background; it returns once the listener is up.
func (s *OpsServer) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("telemetry: ops server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address ("" before Serve).
func (s *OpsServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *OpsServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}

func (s *OpsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Telemetry.Metrics().WritePrometheus(w)
}

func (s *OpsServer) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	vars := map[string]any{
		"metrics": s.opts.Telemetry.Metrics().Snapshot(),
	}
	if s.opts.Vars != nil {
		for k, v := range s.opts.Vars() {
			vars[k] = v
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(vars)
}

func (s *OpsServer) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Telemetry.Tracer().WriteJSON(w)
}

func (s *OpsServer) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.opts.TraceDumpDir == "" {
		http.Error(w, "no trace dump directory configured", http.StatusServiceUnavailable)
		return
	}
	path, err := s.opts.Telemetry.Tracer().DumpFile(s.opts.TraceDumpDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"dumped": path})
}

func (s *OpsServer) handleAudit(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Audit == nil {
		http.Error(w, "no auditor configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(s.opts.Audit())
}

// probeHandler turns a health callback into an HTTP probe: 200 "ok" or
// 503 with the error text. A nil callback is always healthy.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if probe != nil {
			if err := probe(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	}
}
