package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// OpsOptions configure an ops server. Every field is optional; absent
// pieces degrade to empty responses (and health checks to 200 OK).
type OpsOptions struct {
	// Telemetry supplies /metrics, /vars, and /trace.
	Telemetry *Telemetry
	// Healthz reports process liveness: non-nil error → 503.
	Healthz func() error
	// Readyz reports serving readiness (engine liveness): non-nil
	// error → 503.
	Readyz func() error
	// Vars contributes extra named values to /vars (sampled per
	// request), alongside the metrics snapshot.
	Vars func() map[string]any
	// TraceDumpDir is where POST /trace/dump writes ring dumps;
	// empty disables the endpoint (405/404 semantics: 503 with a
	// message).
	TraceDumpDir string
	// Audit, when set, backs the /audit endpoint: it returns the
	// current protocol-auditor report (any JSON-encodable value —
	// typically an audit.Report). Nil leaves /audit returning 404.
	// Health demotion on findings is the caller's concern: compose the
	// auditor's health check into Readyz.
	Audit func() any
}

// OpsServer is the replica's operations endpoint: Prometheus metrics,
// JSON snapshots, health probes, trace dumps, and pprof — everything
// needed to watch a replica from outside while a chaos run hammers it.
type OpsServer struct {
	opts OpsOptions
	srv  *http.Server
	ln   net.Listener

	mu     sync.Mutex
	closed bool
}

// NewOpsServer assembles the server; call Serve to bind it.
func NewOpsServer(opts OpsOptions) *OpsServer {
	s := &OpsServer{opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/trace/dump", s.handleTraceDump)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/healthz", probeHandler(opts.Healthz))
	mux.HandleFunc("/readyz", probeHandler(opts.Readyz))
	mux.HandleFunc("/debug/profile-rates", handleProfileRates)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Serve binds addr (":0" picks a free port) and serves in the
// background; it returns once the listener is up.
func (s *OpsServer) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("telemetry: ops server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address ("" before Serve).
func (s *OpsServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *OpsServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}

func (s *OpsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Telemetry.Metrics().WritePrometheus(w)
}

func (s *OpsServer) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	vars := map[string]any{
		"metrics": s.opts.Telemetry.Metrics().Snapshot(),
	}
	if s.opts.Vars != nil {
		for k, v := range s.opts.Vars() {
			vars[k] = v
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(vars)
}

func (s *OpsServer) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Telemetry.Tracer().WriteJSON(w)
}

func (s *OpsServer) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.opts.TraceDumpDir == "" {
		http.Error(w, "no trace dump directory configured", http.StatusServiceUnavailable)
		return
	}
	path, err := s.opts.Telemetry.Tracer().DumpFile(s.opts.TraceDumpDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"dumped": path})
}

func (s *OpsServer) handleAudit(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Audit == nil {
		http.Error(w, "no auditor configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(s.opts.Audit())
}

// Contention profiling knobs. The mutex fraction has a runtime getter
// (SetMutexProfileFraction(-1)); the block rate does not, so the last
// value set through this process is tracked here. Both are
// process-global — with several in-process replicas any ops server
// reads and sets the same rates.
var (
	profileRatesMu  sync.Mutex
	blockRateSetTo  int
	profileRatesSet bool
)

// SetProfileRates applies the runtime contention-profiling knobs:
// mutex is the mutex-profile sampling fraction (1 in N contention
// events; 0 disables), block the block-profile rate in nanoseconds
// (1 records every blocking event, 0 disables). Negative values leave
// the respective knob unchanged. Used by the ops endpoint and the
// replica's startup flags; once set, /debug/pprof/mutex and
// /debug/pprof/block carry data.
func SetProfileRates(mutex, block int) {
	profileRatesMu.Lock()
	defer profileRatesMu.Unlock()
	if mutex >= 0 {
		runtime.SetMutexProfileFraction(mutex)
	}
	if block >= 0 {
		runtime.SetBlockProfileRate(block)
		blockRateSetTo = block
		profileRatesSet = true
	}
}

// ProfileRates reports the current mutex fraction and the last block
// rate set through SetProfileRates (the runtime exposes no getter for
// the block rate; -1 means it was never set from here).
func ProfileRates() (mutex, block int) {
	profileRatesMu.Lock()
	defer profileRatesMu.Unlock()
	mutex = runtime.SetMutexProfileFraction(-1)
	if !profileRatesSet {
		return mutex, -1
	}
	return mutex, blockRateSetTo
}

// handleProfileRates is the ops surface for the contention knobs:
// GET reports them, POST ?mutex=N&block=N sets either or both. The
// response is the effective state after the call, so a chaos harness
// can flip profiling on, pull /debug/pprof/mutex, and flip it back off
// without restarting the replica.
func handleProfileRates(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// fall through to report
	case http.MethodPost:
		mutex, block := -1, -1
		if v := r.URL.Query().Get("mutex"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "mutex must be a non-negative integer", http.StatusBadRequest)
				return
			}
			mutex = n
		}
		if v := r.URL.Query().Get("block"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "block must be a non-negative integer", http.StatusBadRequest)
				return
			}
			block = n
		}
		SetProfileRates(mutex, block)
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
		return
	}
	mutex, block := ProfileRates()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{
		"mutex_profile_fraction": mutex,
		"block_profile_rate":     block,
	})
}

// probeHandler turns a health callback into an HTTP probe: 200 "ok" or
// 503 with the error text. A nil callback is always healthy.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if probe != nil {
			if err := probe(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	}
}
