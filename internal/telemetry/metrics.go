// Package telemetry is the repo's zero-dependency observability
// subsystem: a metrics registry of atomic counters, gauges, and
// bounded log-bucketed histograms; a fixed-size ring tracer of typed
// protocol events; and an ops HTTP server exposing both (plus health
// and pprof) to operators and the chaos/bench harnesses.
//
// Design constraints, in order:
//
//  1. A disabled metric must be almost free. Every accessor tolerates
//     a nil receiver, so instrumented code writes `c.Inc()`
//     unconditionally and pays a single predictable branch when
//     telemetry is off (a few nanoseconds, no allocation, no lock).
//  2. An enabled metric on the hot path is one atomic RMW. Metric
//     handles are resolved once at component construction; Registry
//     lookups never happen per event.
//  3. stdlib only. The exposition format is Prometheus text (v0.0.4),
//     readable by curl and scrapable by any collector, but nothing in
//     this package imports outside the standard library.
//
// Naming scheme (see DESIGN.md §11): `hybster_<layer>_<what>_<unit>`,
// counters end in `_total`, histograms of durations in `_seconds`.
// Labels are for bounded, structural dimensions only (operation name,
// pillar index, peer ID) — never unbounded values.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair. Values must come from bounded sets
// (pillar index, peer ID, operation name); request-derived values
// would make cardinality unbounded.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. All methods are safe
// on a nil receiver (no-ops), so callers never guard instrumentation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind tags registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string // family name, no labels
	labels []Label
	full   string // name plus serialized labels; registry key
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      *gaugeFunc
	hist    *Histogram
}

// gaugeFunc wraps a sampled callback behind a pointer so re-registering
// (e.g. after an engine restart on the same registry) atomically swaps
// the closure without racing a concurrent scrape.
type gaugeFunc struct {
	mu sync.Mutex
	fn func() float64
}

func (g *gaugeFunc) call() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Registry holds a replica's metrics. All methods are safe for
// concurrent use and on a nil receiver (registration then returns nil
// handles, which are themselves no-ops).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// fullName serializes name plus sorted labels into the exposition (and
// registry-key) form: name{k1="v1",k2="v2"}.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the existing metric under (name, labels) or installs
// a fresh one built by mk. Registration is idempotent: the same
// identity always yields the same instrument, which is what lets an
// engine rebuilt after a crash-restart keep counting into the same
// series.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() *metric) *metric {
	full := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[full]; ok {
		return m
	}
	m := mk()
	m.name, m.labels, m.full, m.help, m.kind = name, labels, full, help, kind
	r.metrics[full] = m
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge sampled via fn at scrape time.
// Re-registering the same identity replaces the callback — an engine
// rebuilt on the same registry (cluster Restart) swaps in closures over
// its fresh state instead of leaving stale ones behind.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindGaugeFunc, labels, func() *metric {
		return &metric{fn: &gaugeFunc{}}
	})
	if m.fn != nil {
		m.fn.mu.Lock()
		m.fn.fn = fn
		m.fn.mu.Unlock()
	}
}

// Histogram registers (or finds) a log-bucketed histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, labels, func() *metric {
		return &metric{hist: newHistogram()}
	}).hist
}

// snapshotLocked returns the registered metrics sorted by full name.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].full < out[j].full })
	return out
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (families sorted by name; HELP/TYPE emitted once per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typeString(m.kind)); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.full, m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.full, m.gauge.Value()); err != nil {
				return err
			}
		case kindGaugeFunc:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.full, formatFloat(m.fn.call())); err != nil {
				return err
			}
		case kindHistogram:
			if err := m.hist.writePrometheus(w, m.name, m.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// formatFloat renders floats the way Prometheus expects (no exponent
// for the common cases, no trailing zeros).
func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Snapshot flattens every metric into name→value pairs: counters and
// gauges under their full name, histograms as _count and _sum (sum in
// the histogram's native unit). The chaos harness and bench points
// consume this form to assert on and archive internal state.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			out[m.full] = float64(m.counter.Value())
		case kindGauge:
			out[m.full] = float64(m.gauge.Value())
		case kindGaugeFunc:
			out[m.full] = m.fn.call()
		case kindHistogram:
			count, sum := m.hist.countAndSum()
			out[fullName(m.name+"_count", m.labels)] = float64(count)
			out[fullName(m.name+"_sum", m.labels)] = sum
		}
	}
	return out
}

// Value returns one metric's snapshot value by full name (0 when
// absent); a convenience for tests asserting on a single series.
func (r *Registry) Value(full string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[full]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value())
	case kindGauge:
		return float64(m.gauge.Value())
	case kindGaugeFunc:
		return m.fn.call()
	case kindHistogram:
		count, _ := m.hist.countAndSum()
		return float64(count)
	}
	return 0
}
