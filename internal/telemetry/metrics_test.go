package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the package's core contract: every instrument and
// the bundle itself are no-ops on nil, so instrumented code never
// guards.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(9)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	var tr *Tracer
	tr.Record(EvCommit, 1, 2, 3, "")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained events")
	}
	var tel *Telemetry
	tel.Counter("x_total", "").Inc()
	tel.Gauge("x", "").Set(1)
	tel.GaugeFunc("y", "", func() float64 { return 1 })
	tel.Histogram("z_seconds", "").Observe(1)
	tel.Trace(EvExec, 0, 0, 0, "")
	var reg *Registry
	if reg.Counter("a", "") != nil || reg.Snapshot() != nil {
		t.Fatal("nil registry returned live instruments")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryIdempotent pins that re-registering the same identity
// returns the same instrument (what keeps counters continuous across
// an engine restart on one registry) and that label order does not
// split series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("op", "create"), L("pillar", "0"))
	b := r.Counter("x_total", "", L("pillar", "0"), L("op", "create"))
	if a != b {
		t.Fatal("same identity produced two counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter not shared")
	}
	if got := r.Value(`x_total{op="create",pillar="0"}`); got != 1 {
		t.Fatalf("Value lookup = %v, want 1", got)
	}
}

// TestGaugeFuncReplacement pins that re-registering a GaugeFunc swaps
// the callback — a restarted engine must not leave gauges sampling its
// dead predecessor's state.
func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", "", func() float64 { return 1 })
	r.GaugeFunc("depth", "", func() float64 { return 2 })
	if got := r.Value("depth"); got != 2 {
		t.Fatalf("gauge func = %v, want the replacement's 2", got)
	}
}

// TestConcurrentRegistryMutationAndScrape hammers registration,
// updates, and scrapes from many goroutines; run under -race this is
// the registry's thread-safety pin.
func TestConcurrentRegistryMutationAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d_total", j%8), "", L("w", fmt.Sprint(i))).Inc()
				r.Gauge(fmt.Sprintf("g%d", j%4), "").Set(int64(j))
				r.Histogram("h_seconds", "").Observe(uint64(j))
				r.GaugeFunc("f", "", func() float64 { return float64(j) })
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestHistogramBucketBoundaries pins the log₂ bucket mapping at its
// edges: 0 lands in bucket 0, and each power of two opens a new
// bucket (bucket i holds [2^(i−1), 2^i)).
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram()
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1<<32 - 1, 32}, {1 << 32, 33},
		{^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	if got := h.buckets[2].Load(); got != 2 {
		t.Fatalf("bucket 2 holds %d, want 2 (values 2 and 3)", got)
	}
	if got := h.buckets[64].Load(); got != 1 {
		t.Fatalf("top bucket holds %d, want 1", got)
	}
}

// TestPrometheusExpositionGolden is the format pin: a registry with
// one of each instrument must render exactly this exposition text.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hybster_core_commits_total", "committed instances").Add(42)
	r.Counter("hybster_trinx_ecalls_total", "ECalls by operation", L("op", "create_independent")).Add(7)
	r.Counter("hybster_trinx_ecalls_total", "ECalls by operation", L("op", "verify")).Add(3)
	r.Gauge("hybster_core_view", "current stable view").Set(2)
	r.GaugeFunc("hybster_core_pillar_mailbox_depth", "queued events", func() float64 { return 5 }, L("pillar", "0"))
	h := r.Histogram("hybster_wal_fsync_seconds", "fsync latency")
	h.Observe(0)    // bucket 0 (le 0)
	h.Observe(1)    // bucket 1 (le 1e-09)
	h.Observe(1500) // bucket 11 (le 2.047e-06)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP hybster_core_commits_total committed instances`,
		`# TYPE hybster_core_commits_total counter`,
		`hybster_core_commits_total 42`,
		`# HELP hybster_core_pillar_mailbox_depth queued events`,
		`# TYPE hybster_core_pillar_mailbox_depth gauge`,
		`hybster_core_pillar_mailbox_depth{pillar="0"} 5`,
		`# HELP hybster_core_view current stable view`,
		`# TYPE hybster_core_view gauge`,
		`hybster_core_view 2`,
		`# HELP hybster_trinx_ecalls_total ECalls by operation`,
		`# TYPE hybster_trinx_ecalls_total counter`,
		`hybster_trinx_ecalls_total{op="create_independent"} 7`,
		`hybster_trinx_ecalls_total{op="verify"} 3`,
		`# HELP hybster_wal_fsync_seconds fsync latency`,
		`# TYPE hybster_wal_fsync_seconds histogram`,
		`hybster_wal_fsync_seconds_bucket{le="0"} 1`,
		`hybster_wal_fsync_seconds_bucket{le="1e-09"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="3e-09"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="7e-09"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="1.5e-08"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="3.1e-08"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="6.3e-08"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="1.27e-07"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="2.55e-07"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="5.11e-07"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="1.023e-06"} 2`,
		`hybster_wal_fsync_seconds_bucket{le="2.047e-06"} 3`,
		`hybster_wal_fsync_seconds_bucket{le="+Inf"} 3`,
		`hybster_wal_fsync_seconds_sum 1.501e-06`,
		`hybster_wal_fsync_seconds_count 3`,
	}, "\n") + "\n"
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSnapshotFlattening pins the Snapshot form the chaos harness and
// bench points consume.
func TestSnapshotFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(-2)
	h := r.Histogram("c_seconds", "")
	h.Observe(10)
	h.Observe(20)
	snap := r.Snapshot()
	if snap["a_total"] != 3 || snap["b"] != -2 {
		t.Fatalf("scalar snapshot wrong: %v", snap)
	}
	if snap["c_seconds_count"] != 2 || snap["c_seconds_sum"] != 30 {
		t.Fatalf("histogram snapshot wrong: %v", snap)
	}
}
