package telemetry

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// EventKind is the type tag of a traced protocol event. The taxonomy
// (DESIGN.md §11) covers every protocol-visible transition a
// post-mortem of a chaos run needs to reconstruct a replica's story.
type EventKind uint8

const (
	EvPropose    EventKind = iota + 1 // own proposal certified (PREPARE sent)
	EvPrepare                         // foreign PREPARE accepted
	EvCommit                          // COMMIT sent or accepted
	EvDeliver                         // instance committed, handed to execution
	EvExec                            // batch executed by the application
	EvCheckpoint                      // own CHECKPOINT announced
	EvCkptStable                      // checkpoint reached quorum stability
	EvViewChange                      // VIEW-CHANGE parts emitted (view abort)
	EvNewView                         // new view installed
	EvStateXfer                       // state transfer installed a snapshot
	EvRetransmit                      // stalled instance re-multicast
	EvRecovery                        // boot-time recovery milestone
	EvSeal                            // trusted counter horizon sealed
	EvCrash                           // harness-injected crash/restart marker
)

var eventKindNames = map[EventKind]string{
	EvPropose:    "propose",
	EvPrepare:    "prepare",
	EvCommit:     "commit",
	EvDeliver:    "deliver",
	EvExec:       "exec",
	EvCheckpoint: "checkpoint",
	EvCkptStable: "ckpt-stable",
	EvViewChange: "view-change",
	EvNewView:    "new-view",
	EvStateXfer:  "state-transfer",
	EvRetransmit: "retransmit",
	EvRecovery:   "recovery",
	EvSeal:       "seal",
	EvCrash:      "crash",
}

// String returns the taxonomy name of the kind.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind by its taxonomy name (offline trace
// merging reads dumped rings back in).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range eventKindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// DigestPrefixLen is how many bytes of a correlated digest an event
// retains. Eight bytes (16 hex characters) is far beyond accidental
// collision range for the windows a trace ring spans, while keeping
// events fixed-size and dumps compact.
const DigestPrefixLen = 8

// DigestPrefix renders the correlation key stored in Event.Digest: the
// hex encoding of the digest's first DigestPrefixLen bytes.
func DigestPrefix(d []byte) string {
	if len(d) == 0 {
		return ""
	}
	if len(d) > DigestPrefixLen {
		d = d[:DigestPrefixLen]
	}
	return hex.EncodeToString(d)
}

// monoBase anchors every tracer's monotonic timestamps to one
// process-wide origin, so within a process (in-process clusters, the
// chaos harness) monotonic deltas are directly comparable across
// replicas. Across processes each replica has its own origin; the
// audit layer uses the (wall, mono) pair to bound cross-replica skew
// instead of trusting either clock alone.
var monoBase = time.Now()

// Event is one traced protocol event, keyed the way the protocols
// address work: protocol, view, slot (order number), pillar — plus the
// cross-replica correlation keys the audit layer merges on: the
// replica that recorded it and the digest prefix of the batch or state
// the event is about.
type Event struct {
	// Seq is the event's position in the replica's trace stream (total
	// events recorded, not ring position); gaps after a dump reveal how
	// much the ring dropped.
	Seq uint64 `json:"seq"`
	// TS is the wall-clock timestamp in nanoseconds since the epoch.
	// Comparable across machines only up to clock skew.
	TS int64 `json:"ts_ns"`
	// Mono is a monotonic timestamp in nanoseconds since a per-process
	// origin: exact for intra-replica (and in-process cross-replica)
	// latencies, immune to wall-clock steps.
	Mono int64 `json:"mono_ns"`
	// Replica is the recording replica's ID (set via Tracer.SetReplica;
	// 0 when untagged).
	Replica uint32 `json:"replica"`
	// Protocol names the engine ("hybster", "pbft", "minbft").
	Protocol string    `json:"protocol,omitempty"`
	Kind     EventKind `json:"kind"`
	View     uint64    `json:"view"`
	Slot     uint64    `json:"slot"`
	Pillar   uint32    `json:"pillar"`
	// Digest is the hex prefix of the digest this event is about — the
	// batch digest for ordering events, the state digest for checkpoint
	// events — and the correlation key cross-replica divergence checks
	// compare. Empty when the event has no associated digest.
	Digest string `json:"digest,omitempty"`
	// Note carries bounded free-form context ("from=2", "noop").
	Note string `json:"note,omitempty"`
}

// Tracer is a fixed-size ring of protocol events. Recording is a
// mutex-guarded copy into the ring — cheap enough for protocol-rate
// events (not per-byte ones) — and, like every instrument in this
// package, safe on a nil receiver so disabled tracing costs one
// branch.
type Tracer struct {
	protocol string

	mu      sync.Mutex
	replica uint32
	ring    []Event
	next    uint64 // total events ever recorded
}

// DefaultTraceDepth is the ring size NewTracer uses for 0.
const DefaultTraceDepth = 4096

// NewTracer creates a tracer whose ring holds depth events (0 selects
// DefaultTraceDepth). protocol tags every event.
func NewTracer(protocol string, depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &Tracer{protocol: protocol, ring: make([]Event, depth)}
}

// SetReplica tags every subsequently recorded event (and the dump
// header) with the replica's ID, the identity cross-replica merging
// keys on. Nil-safe.
func (t *Tracer) SetReplica(id uint32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.replica = id
	t.mu.Unlock()
}

// Record appends one event, overwriting the oldest once the ring is
// full. Nil-safe.
func (t *Tracer) Record(kind EventKind, view, slot uint64, pillar uint32, note string) {
	t.record(kind, view, slot, pillar, "", note)
}

// RecordDigest appends one event carrying a digest correlation key
// (the first DigestPrefixLen bytes, hex). Nil-safe.
func (t *Tracer) RecordDigest(kind EventKind, view, slot uint64, pillar uint32, digest []byte, note string) {
	t.record(kind, view, slot, pillar, DigestPrefix(digest), note)
}

func (t *Tracer) record(kind EventKind, view, slot uint64, pillar uint32, digest, note string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = Event{
		Seq: t.next, TS: now.UnixNano(), Mono: now.Sub(monoBase).Nanoseconds(),
		Replica: t.replica, Protocol: t.protocol,
		Kind: kind, View: view, Slot: slot, Pillar: pillar, Digest: digest, Note: note,
	}
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently held (≤ ring depth).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	start := uint64(0)
	count := t.next
	if t.next > n {
		start = t.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

// TraceDump is the JSON envelope of a dumped ring. The header fields
// (replica, protocol, ring depth, drop count) make a dump file
// self-describing: offline merging never depends on filenames or
// out-of-band knowledge of which replica produced it.
type TraceDump struct {
	Replica   uint32 `json:"replica"`
	Protocol  string `json:"protocol"`
	RingDepth int    `json:"ring_depth"`
	Dumped    int64  `json:"dumped_ts_ns"`
	Total     uint64 `json:"total_events"`
	// Dropped counts events the ring overwrote before the dump: Total
	// minus the events the file actually carries.
	Dropped uint64  `json:"dropped_events"`
	Events  []Event `json:"events"`
}

// WriteJSON writes the retained events as a JSON document (a TraceDump).
// Events and header are captured under one lock acquisition, so the
// header's totals describe exactly the events the dump carries even
// while recording continues concurrently.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(TraceDump{})
	}
	t.mu.Lock()
	n := uint64(len(t.ring))
	start, count := uint64(0), t.next
	if t.next > n {
		start, count = t.next-n, n
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		events = append(events, t.ring[(start+i)%n])
	}
	d := TraceDump{
		Replica: t.replica, Protocol: t.protocol, RingDepth: len(t.ring),
		Dumped: time.Now().UnixNano(), Total: t.next,
		Dropped: t.next - uint64(len(events)),
		Events:  events,
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DumpFile writes the ring to dir/trace-<unix-nanos>.json (creating
// dir if needed) and returns the path; the post-mortem artifact the
// SIGQUIT handler and POST /trace/dump produce.
func (t *Tracer) DumpFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-%d.json", time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	return path, nil
}

// ReadDump parses a dumped ring back in (the offline half of DumpFile).
func ReadDump(r io.Reader) (*TraceDump, error) {
	var d TraceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: read trace dump: %w", err)
	}
	return &d, nil
}
