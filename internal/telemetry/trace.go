package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// EventKind is the type tag of a traced protocol event. The taxonomy
// (DESIGN.md §11) covers every protocol-visible transition a
// post-mortem of a chaos run needs to reconstruct a replica's story.
type EventKind uint8

const (
	EvPropose      EventKind = iota + 1 // own proposal certified (PREPARE sent)
	EvPrepare                           // foreign PREPARE accepted
	EvCommit                            // COMMIT sent or accepted
	EvDeliver                           // instance committed, handed to execution
	EvExec                              // batch executed by the application
	EvCheckpoint                        // own CHECKPOINT announced
	EvCkptStable                        // checkpoint reached quorum stability
	EvViewChange                        // VIEW-CHANGE parts emitted (view abort)
	EvNewView                           // new view installed
	EvStateXfer                         // state transfer installed a snapshot
	EvRetransmit                        // stalled instance re-multicast
	EvRecovery                          // boot-time recovery milestone
	EvSeal                              // trusted counter horizon sealed
	EvCrash                             // harness-injected crash/restart marker
)

var eventKindNames = map[EventKind]string{
	EvPropose:    "propose",
	EvPrepare:    "prepare",
	EvCommit:     "commit",
	EvDeliver:    "deliver",
	EvExec:       "exec",
	EvCheckpoint: "checkpoint",
	EvCkptStable: "ckpt-stable",
	EvViewChange: "view-change",
	EvNewView:    "new-view",
	EvStateXfer:  "state-transfer",
	EvRetransmit: "retransmit",
	EvRecovery:   "recovery",
	EvSeal:       "seal",
	EvCrash:      "crash",
}

// String returns the taxonomy name of the kind.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one traced protocol event, keyed the way the protocols
// address work: protocol, view, slot (order number), pillar.
type Event struct {
	// Seq is the event's position in the replica's trace stream (total
	// events recorded, not ring position); gaps after a dump reveal how
	// much the ring dropped.
	Seq uint64 `json:"seq"`
	// TS is the wall-clock timestamp in nanoseconds since the epoch.
	TS int64 `json:"ts_ns"`
	// Protocol names the engine ("hybster", "pbft", "minbft").
	Protocol string    `json:"protocol,omitempty"`
	Kind     EventKind `json:"kind"`
	View     uint64    `json:"view"`
	Slot     uint64    `json:"slot"`
	Pillar   uint32    `json:"pillar"`
	// Note carries bounded free-form context ("from=2", "noop").
	Note string `json:"note,omitempty"`
}

// Tracer is a fixed-size ring of protocol events. Recording is a
// mutex-guarded copy into the ring — cheap enough for protocol-rate
// events (not per-byte ones) — and, like every instrument in this
// package, safe on a nil receiver so disabled tracing costs one
// branch.
type Tracer struct {
	protocol string

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded
}

// DefaultTraceDepth is the ring size NewTracer uses for 0.
const DefaultTraceDepth = 4096

// NewTracer creates a tracer whose ring holds depth events (0 selects
// DefaultTraceDepth). protocol tags every event.
func NewTracer(protocol string, depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &Tracer{protocol: protocol, ring: make([]Event, depth)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Nil-safe.
func (t *Tracer) Record(kind EventKind, view, slot uint64, pillar uint32, note string) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = Event{
		Seq: t.next, TS: now, Protocol: t.protocol,
		Kind: kind, View: view, Slot: slot, Pillar: pillar, Note: note,
	}
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently held (≤ ring depth).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	start := uint64(0)
	count := t.next
	if t.next > n {
		start = t.next - n
		count = n
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

// traceDump is the JSON envelope of a dumped ring.
type traceDump struct {
	Protocol string  `json:"protocol"`
	Dumped   int64   `json:"dumped_ts_ns"`
	Total    uint64  `json:"total_events"`
	Events   []Event `json:"events"`
}

// WriteJSON writes the retained events as a JSON document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(traceDump{})
	}
	events := t.Events()
	t.mu.Lock()
	d := traceDump{Protocol: t.protocol, Dumped: time.Now().UnixNano(), Total: t.next, Events: events}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DumpFile writes the ring to dir/trace-<unix-nanos>.json (creating
// dir if needed) and returns the path; the post-mortem artifact the
// SIGQUIT handler and POST /trace/dump produce.
func (t *Tracer) DumpFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-%d.json", time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("telemetry: trace dump: %w", err)
	}
	return path, nil
}
