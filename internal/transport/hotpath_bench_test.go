package transport

import (
	"testing"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// Multicast hot-path benchmark over the TCP endpoint: peers are
// unreachable so frames queue on the self-healing links (bounded,
// drop-oldest), which isolates the per-send marshal+frame cost from
// socket I/O. A marshal-once multicast pays one marshal per broadcast
// instead of one per destination.
func BenchmarkHotPathMulticastTCP(b *testing.B) {
	// Unreachable peer addresses: the first dial fails fast and the
	// hour-long backoff keeps the links quiet for the benchmark.
	peers := map[uint32]string{
		1: "127.0.0.1:1", 2: "127.0.0.1:1", 3: "127.0.0.1:1",
	}
	ep, err := NewTCPWithOptions(0, "127.0.0.1:0", peers, TCPOptions{
		BackoffMin: time.Hour,
		BackoffMax: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()

	ks := crypto.NewKeyStore(crypto.ClientIDBase, crypto.NewKeyFromSeed("bench"))
	reqs := make([]*message.Request, 16)
	for i := range reqs {
		r := &message.Request{
			Client:  crypto.ClientIDBase,
			Seq:     uint64(i + 1),
			Payload: []byte("hot-path-benchmark-payload"),
		}
		r.Auth = crypto.NewAuthenticator(ks, r.Digest(), 4)
		reqs[i] = r
	}
	p := &message.Prepare{
		View: 0, Order: 5, Requests: reqs,
		Cert: trinx.Certificate{
			Kind: trinx.Independent, Issuer: 1, Counter: 2,
			Value: uint64(timeline.Pack(0, 5)),
		},
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Multicast(ep, 4, p)
	}
}
