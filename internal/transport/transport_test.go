package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/message"
)

func testMsg(seq uint64) *message.Request {
	return &message.Request{Client: crypto.ClientIDBase, Seq: seq, Payload: []byte("p")}
}

// collector accumulates received messages.
type collector struct {
	mu   sync.Mutex
	msgs []message.Message
	from []uint32
	ch   chan struct{}
}

func newCollector() *collector { return &collector{ch: make(chan struct{}, 1024)} }

func (c *collector) handler(from uint32, m message.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
	c.mu.Unlock()
	select {
	case c.ch <- struct{}{}:
	default:
	}
}

func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= n {
			return
		}
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timeout waiting for %d messages, have %d", n, got)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func TestMemnetDelivers(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)

	if err := a.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, time.Second)
	if col.from[0] != 0 {
		t.Fatalf("from = %d", col.from[0])
	}
	if got := col.msgs[0].(*message.Request); got.Seq != 1 {
		t.Fatalf("seq = %d", got.Seq)
	}
}

func TestMemnetFIFOPerLink(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)

	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, n, 5*time.Second)
	for i, m := range col.msgs {
		if m.(*message.Request).Seq != uint64(i) {
			t.Fatalf("message %d has seq %d — FIFO violated", i, m.(*message.Request).Seq)
		}
	}
}

func TestMemnetUnknownNode(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(9, testMsg(1)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestMemnetClosedEndpoint(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	net.Endpoint(1)
	_ = a.Close()
	if err := a.Send(1, testMsg(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemnetPartitionAndHeal(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)

	net.Partition(0, 1)
	if err := a.Send(1, testMsg(1)); err != nil {
		t.Fatal(err) // partition drops silently
	}
	time.Sleep(50 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("message crossed a partition")
	}

	net.Heal(0, 1)
	if err := a.Send(1, testMsg(2)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, time.Second)
}

func TestMemnetIsolate(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	c := net.Endpoint(2)
	colB, colC := newCollector(), newCollector()
	b.Handle(colB.handler)
	c.Handle(colC.handler)

	net.Isolate(0)
	_ = a.Send(1, testMsg(1))
	_ = a.Send(2, testMsg(2))
	// b→c unaffected
	if err := b.Send(2, testMsg(3)); err != nil {
		t.Fatal(err)
	}
	colC.waitFor(t, 1, time.Second)
	time.Sleep(30 * time.Millisecond)
	if colB.count() != 0 {
		t.Fatal("isolated node reached a peer")
	}
	net.HealAll()
	_ = a.Send(1, testMsg(4))
	colB.waitFor(t, 1, time.Second)
}

func TestMemnetLatency(t *testing.T) {
	net := NewNetwork(LinkProfile{Latency: 30 * time.Millisecond}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)

	start := time.Now()
	_ = a.Send(1, testMsg(1))
	col.waitFor(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 30ms", elapsed)
	}
}

func TestMemnetBandwidthSerializes(t *testing.T) {
	// 10 KB/s link, two 1 KiB-ish payloads → second arrives ≥ ~0.2s in.
	net := NewNetwork(LinkProfile{Bandwidth: 10_000}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)

	big := &message.Request{Client: crypto.ClientIDBase, Seq: 1, Payload: make([]byte, 1000)}
	start := time.Now()
	_ = a.Send(1, big)
	_ = a.Send(1, big)
	col.waitFor(t, 2, 3*time.Second)
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Fatalf("two 1KB messages over 10KB/s arrived in %v", elapsed)
	}
}

func TestMemnetLoss(t *testing.T) {
	net := NewNetwork(LinkProfile{LossRate: 0.5}, 7)
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	var received atomic.Int64
	b.Handle(func(uint32, message.Message) { received.Add(1) })

	const n = 1000
	for i := uint64(0); i < n; i++ {
		_ = a.Send(1, testMsg(i))
	}
	time.Sleep(200 * time.Millisecond)
	got := received.Load()
	if got == 0 || got == n {
		t.Fatalf("received %d of %d with 50%% loss", got, n)
	}
}

func TestMemnetEndpointReplacement(t *testing.T) {
	// Re-registering an ID models a crash-restart.
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	a := net.Endpoint(0)
	old := net.Endpoint(1)
	oldCol := newCollector()
	old.Handle(oldCol.handler)

	fresh := net.Endpoint(1)
	freshCol := newCollector()
	fresh.Handle(freshCol.handler)

	_ = a.Send(1, testMsg(1))
	freshCol.waitFor(t, 1, time.Second)
	if oldCol.count() != 0 {
		t.Fatal("replaced endpoint still receives")
	}
	// The replaced endpoint is closed, so a stale handle held by the
	// crashed replica cannot keep sending under the restarted identity.
	if err := old.Send(0, testMsg(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("stale endpoint send: err = %v, want ErrClosed", err)
	}
}

func TestMulticast(t *testing.T) {
	net := NewNetwork(LinkProfile{}, 1)
	defer net.Close()
	eps := make([]Endpoint, 4)
	cols := make([]*collector, 4)
	for i := range eps {
		eps[i] = net.Endpoint(uint32(i))
		cols[i] = newCollector()
		eps[i].Handle(cols[i].handler)
	}
	Multicast(eps[0], 4, testMsg(1))
	for i := 1; i < 4; i++ {
		cols[i].waitFor(t, 1, time.Second)
	}
	time.Sleep(20 * time.Millisecond)
	if cols[0].count() != 0 {
		t.Fatal("multicast delivered to self")
	}
}

func TestEstimateSizeTracksPayload(t *testing.T) {
	small := EstimateSize(testMsg(1))
	big := EstimateSize(&message.Request{Client: 1, Seq: 1, Payload: make([]byte, 4096)})
	if big-small < 4000 {
		t.Fatalf("payload not reflected: small=%d big=%d", small, big)
	}
	// Every message type yields a positive size.
	msgs := []message.Message{
		testMsg(1),
		&message.Reply{}, &message.Prepare{}, &message.Commit{},
		&message.Checkpoint{}, &message.ViewChange{}, &message.NewView{},
		&message.NewViewAck{}, &message.PrePrepare{}, &message.PBFTPrepare{},
		&message.PBFTCommit{}, &message.PBFTCheckpoint{}, &message.PBFTViewChange{},
		&message.PBFTNewView{}, &message.MinPrepare{}, &message.MinCommit{},
		&message.StateRequest{}, &message.StateReply{},
	}
	for _, m := range msgs {
		if EstimateSize(m) <= 0 {
			t.Fatalf("%s: non-positive size", m.MsgType())
		}
	}
}

func TestEstimateCloseToRealEncoding(t *testing.T) {
	p := &message.Prepare{
		View: 1, Order: 5,
		Requests: []*message.Request{
			{Client: crypto.ClientIDBase, Seq: 1, Payload: make([]byte, 128),
				Auth: crypto.NewAuthenticator(crypto.NewKeyStore(crypto.ClientIDBase, crypto.NewKeyFromSeed("s")), crypto.Hash(nil), 3)},
		},
	}
	real := len(message.Marshal(p))
	est := EstimateSize(p)
	ratio := float64(est) / float64(real)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("estimate %d vs real %d (ratio %.2f)", est, real, ratio)
	}
}

func TestTCPRoundtrip(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	col := newCollector()
	b.Handle(col.handler)

	want := &message.Prepare{View: 2, Order: 7, Requests: []*message.Request{testMsg(9)}}
	if err := a.Send(1, want); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, 2*time.Second)
	got := col.msgs[0].(*message.Prepare)
	if got.View != 2 || got.Order != 7 || len(got.Requests) != 1 || got.Requests[0].Seq != 9 {
		t.Fatalf("got %+v", got)
	}
	if col.from[0] != 0 {
		t.Fatalf("from = %d", col.from[0])
	}
}

func TestTCPManyMessagesBidirectional(t *testing.T) {
	a, _ := NewTCP(0, "127.0.0.1:0", nil)
	defer a.Close()
	b, _ := NewTCP(1, "127.0.0.1:0", nil)
	defer b.Close()
	a.AddPeer(1, b.Addr())
	b.AddPeer(0, a.Addr())

	colA, colB := newCollector(), newCollector()
	a.Handle(colA.handler)
	b.Handle(colB.handler)

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(0, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	colA.waitFor(t, n, 5*time.Second)
	colB.waitFor(t, n, 5*time.Second)
	for i, m := range colB.msgs {
		if m.(*message.Request).Seq != uint64(i) {
			t.Fatalf("TCP reordered: msg %d seq %d", i, m.(*message.Request).Seq)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := NewTCP(0, "127.0.0.1:0", nil)
	defer a.Close()
	if err := a.Send(5, testMsg(1)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, _ := NewTCP(0, "127.0.0.1:0", nil)
	defer a.Close()
	b, _ := NewTCP(1, "127.0.0.1:0", nil)
	addrB := b.Addr()
	a.AddPeer(1, addrB)

	col := newCollector()
	b.Handle(col.handler)
	if err := a.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, 2*time.Second)

	_ = b.Close()
	// Sends while b is down succeed immediately: the self-healing link
	// queues them for redelivery.
	for i := 0; i < 5; i++ {
		if err := a.Send(1, testMsg(2)); err != nil {
			t.Fatalf("send during outage: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	b2, err := NewTCP(1, addrB, nil)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.Handle(col2.handler)

	// The background sender redials on its own.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && col2.count() == 0 {
		_ = a.Send(1, testMsg(3))
		time.Sleep(20 * time.Millisecond)
	}
	if col2.count() == 0 {
		t.Fatal("no message after peer restart")
	}
}

func TestTCPClosedSend(t *testing.T) {
	a, _ := NewTCP(0, "127.0.0.1:0", nil)
	_ = a.Close()
	if err := a.Send(1, testMsg(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
