package transport

import (
	"net"
	"testing"
	"time"

	"hybster/internal/message"
)

// fastTCPOptions shrink the self-healing timers so tests run quickly.
func fastTCPOptions() TCPOptions {
	return TCPOptions{
		DialTimeout:       500 * time.Millisecond,
		BackoffMin:        10 * time.Millisecond,
		BackoffMax:        100 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	}
}

// deadAddr returns a loopback address with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func TestTCPSendNonBlockingWhileUnreachable(t *testing.T) {
	a, err := NewTCPWithOptions(0, "127.0.0.1:0", map[uint32]string{1: deadAddr(t)}, fastTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// The peer stays unreachable for seconds, yet 200 sends must
	// return immediately: they only enqueue on the bounded link.
	start := time.Now()
	for i := uint64(0); i < 200; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("200 sends to an unreachable peer took %v", elapsed)
	}

	// Backoff redial keeps trying in the background.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := a.PeerState(1); st.Attempts >= 3 && st.Queued > 0 && !st.Connected {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := a.PeerState(1)
	t.Fatalf("peer state after 3s of outage: %+v", st)
}

func TestTCPQueueDropsOldestOnOverflow(t *testing.T) {
	opts := fastTCPOptions()
	opts.QueueDepth = 8
	a, err := NewTCPWithOptions(0, "127.0.0.1:0", map[uint32]string{1: deadAddr(t)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for i := uint64(0); i < 20; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := a.PeerState(1)
	if !ok {
		t.Fatal("no state for peer 1")
	}
	if st.Queued > 8 {
		t.Fatalf("queue grew to %d despite depth 8", st.Queued)
	}
	if st.Drops < 10 {
		t.Fatalf("drops = %d, want >= 10 of 20 sends", st.Drops)
	}
}

func TestTCPFlushesQueueAfterPeerRestart(t *testing.T) {
	// Satellite scenario: a peer's listener dies mid-run and comes back
	// on the same address; the other node must reconnect on its own and
	// deliver everything queued during the outage — no AddPeer, no
	// manual retransmission.
	a, err := NewTCPWithOptions(0, "127.0.0.1:0", nil, fastTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPWithOptions(1, "127.0.0.1:0", nil, fastTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.AddPeer(1, addrB)

	col := newCollector()
	b.Handle(col.handler)
	if err := a.Send(1, testMsg(0)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, 2*time.Second)

	_ = b.Close()
	// Wait until a noticed the outage (heartbeat write or read fails),
	// so everything sent from here on is queued, not written into a
	// dying socket.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if st, _ := a.PeerState(1); !st.Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("a never noticed the dead peer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const queued = 50
	for i := uint64(1); i <= queued; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}

	b2, err := NewTCPWithOptions(1, addrB, nil, fastTCPOptions())
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.Handle(col2.handler)

	col2.waitFor(t, queued, 5*time.Second)
	for i, m := range col2.msgs[:queued] {
		if got := m.(*message.Request).Seq; got != uint64(i+1) {
			t.Fatalf("after restart message %d has seq %d — queue not flushed in order", i, got)
		}
	}
	if st, _ := a.PeerState(1); !st.Connected {
		t.Fatalf("link not marked connected after flush: %+v", st)
	}
}

func TestTCPHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	// With an idle read deadline of 3×50ms on inbound connections, a
	// connection with no application traffic survives only because of
	// heartbeats; delivery after a long quiet phase must not need a
	// redial.
	a, err := NewTCPWithOptions(0, "127.0.0.1:0", nil, fastTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPWithOptions(1, "127.0.0.1:0", nil, fastTCPOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())

	col, colA := newCollector(), newCollector()
	b.Handle(col.handler)
	a.Handle(colA.handler)
	if err := a.Send(1, testMsg(0)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, 2*time.Second)

	time.Sleep(600 * time.Millisecond) // 4× the idle read deadline, no traffic

	if err := a.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 2, 2*time.Second)
	if st, _ := a.PeerState(1); st.Attempts != 0 {
		t.Fatalf("link redialed %d times during idle phase — heartbeats failed", st.Attempts)
	}
	// The reply path (b has no configured address for 0) rides the same
	// heartbeat-kept connection; it must still work after the idle phase.
	if err := b.Send(0, testMsg(2)); err != nil {
		t.Fatal(err)
	}
	colA.waitFor(t, 1, 2*time.Second)
}
