package transport

import (
	"testing"
	"time"

	"hybster/internal/message"
)

// scriptInjector replays a fixed per-seq fault script on every link.
type scriptInjector struct {
	script map[uint64]Fault
}

func (s *scriptInjector) Decide(from, to uint32, seq uint64) Fault {
	return s.script[seq]
}

// faultyPair wires 0→1 over memnet with the given fault script on the
// sending side.
func faultyPair(t *testing.T, script map[uint64]Fault) (*FaultyEndpoint, *collector, func()) {
	t.Helper()
	net := NewNetwork(LinkProfile{}, 1)
	a := WrapFaulty(net.Endpoint(0), &scriptInjector{script: script})
	b := net.Endpoint(1)
	col := newCollector()
	b.Handle(col.handler)
	return a, col, net.Close
}

func TestFaultyDrop(t *testing.T) {
	a, col, stop := faultyPair(t, map[uint64]Fault{1: {Drop: true}})
	defer stop()
	for i := uint64(0); i < 3; i++ {
		if err := a.Send(1, testMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	col.waitFor(t, 2, time.Second)
	time.Sleep(30 * time.Millisecond)
	if col.count() != 2 {
		t.Fatalf("delivered %d, want 2", col.count())
	}
	seqs := []uint64{col.msgs[0].(*message.Request).Seq, col.msgs[1].(*message.Request).Seq}
	if seqs[0] != 0 || seqs[1] != 2 {
		t.Fatalf("delivered seqs %v, want [0 2]", seqs)
	}
	if s := a.Stats(); s.Sent != 3 || s.Dropped != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFaultyDuplicate(t *testing.T) {
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Duplicate: true}})
	defer stop()
	if err := a.Send(1, testMsg(7)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 2, time.Second)
	for i := 0; i < 2; i++ {
		if col.msgs[i].(*message.Request).Seq != 7 {
			t.Fatalf("copy %d has seq %d", i, col.msgs[i].(*message.Request).Seq)
		}
	}
	if s := a.Stats(); s.Duplicated != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFaultyDelay(t *testing.T) {
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Delay: 60 * time.Millisecond}})
	defer stop()
	start := time.Now()
	if err := a.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 60ms", elapsed)
	}
	if s := a.Stats(); s.Delayed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFaultyReorder(t *testing.T) {
	// Holding seq 0 lets seq 1 overtake it.
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Hold: true}})
	defer stop()
	_ = a.Send(1, testMsg(0))
	_ = a.Send(1, testMsg(1))
	col.waitFor(t, 2, time.Second)
	got := []uint64{col.msgs[0].(*message.Request).Seq, col.msgs[1].(*message.Request).Seq}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("delivery order %v, want [1 0]", got)
	}
	if s := a.Stats(); s.Held != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFaultyHoldFlushesWithoutSuccessor(t *testing.T) {
	// A held message with no successor must still arrive (after the
	// flush delay), or a quiet link would lose its last message.
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Hold: true}})
	defer stop()
	_ = a.Send(1, testMsg(0))
	col.waitFor(t, 1, time.Second)
	if col.msgs[0].(*message.Request).Seq != 0 {
		t.Fatalf("seq %d", col.msgs[0].(*message.Request).Seq)
	}
}

func TestFaultyCorrupt(t *testing.T) {
	// Flip a byte in the middle of a large payload: the frame still
	// parses, so the corruption must reach the receiver.
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Corrupt: true, CorruptPos: 40, CorruptXOR: 0xFF}})
	defer stop()
	orig := &message.Request{Client: testMsg(0).Client, Seq: 1, Payload: make([]byte, 64)}
	_ = a.Send(1, orig)
	s := a.Stats()
	if s.Corrupted+s.CorruptDropped != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Corrupted == 1 {
		col.waitFor(t, 1, time.Second)
		got := col.msgs[0].(*message.Request)
		if string(message.Marshal(got)) == string(message.Marshal(orig)) {
			t.Fatal("corrupted message arrived identical to the original")
		}
	}
}

func TestFaultyCloseDiscardsHeld(t *testing.T) {
	a, col, stop := faultyPair(t, map[uint64]Fault{0: {Hold: true}})
	defer stop()
	_ = a.Send(1, testMsg(0))
	_ = a.Close()
	time.Sleep(2 * holdFlushDelay)
	if col.count() != 0 {
		t.Fatal("held message escaped after Close")
	}
	if err := a.Send(1, testMsg(1)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestFaultyQuiesce pins that Quiesce ends the fault window: held
// messages flush immediately and every later send passes untouched.
func TestFaultyQuiesce(t *testing.T) {
	a, col, stop := faultyPair(t, map[uint64]Fault{
		0: {Hold: true},
		1: {Drop: true},
		2: {Drop: true},
	})
	defer stop()
	if err := a.Send(1, testMsg(0)); err != nil { // held
		t.Fatal(err)
	}
	a.Quiesce()
	col.waitFor(t, 1, time.Second) // the held message was released
	for i := uint64(1); i < 3; i++ {
		if err := a.Send(1, testMsg(i)); err != nil { // script says drop; quiesced says deliver
			t.Fatal(err)
		}
	}
	col.waitFor(t, 3, time.Second)
	if s := a.Stats(); s.Dropped != 0 || s.Sent != 3 {
		t.Fatalf("stats %+v", s)
	}
}
