package transport

import (
	"sync"
	"time"

	"hybster/internal/message"
)

// Fault is the decision an Injector takes for one outbound message.
// The zero Fault delivers the message untouched.
type Fault struct {
	// Drop discards the message.
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Corrupt flips one byte of the marshaled frame before delivery.
	// Corruptions that no longer parse are dropped (a real network
	// stack's checksum would have discarded them); corruptions that
	// still parse reach the receiver and must be rejected by message
	// verification.
	Corrupt bool
	// CorruptPos selects the flipped byte (modulo the frame length).
	CorruptPos uint32
	// CorruptXOR is the flip mask; zero corrupts nothing.
	CorruptXOR byte
	// Delay postpones delivery without blocking the sender.
	Delay time.Duration
	// Hold parks the message so that the link's next message overtakes
	// it (a one-slot reordering); held messages are flushed after
	// holdFlushDelay if nothing follows.
	Hold bool
}

// Injector decides the fault applied to the seq-th message sent on the
// link from→to. Implementations must be safe for concurrent use across
// links; the decorator guarantees that per link, Decide is called with
// strictly ascending seq in send order, which is what makes a seeded
// injector's fault sequence reproducible.
type Injector interface {
	Decide(from, to uint32, seq uint64) Fault
}

// FaultStats counts the faults a FaultyEndpoint injected.
type FaultStats struct {
	Sent           uint64 // Send calls observed
	Dropped        uint64 // messages discarded
	Duplicated     uint64 // extra copies delivered
	Corrupted      uint64 // messages delivered with a flipped byte
	CorruptDropped uint64 // corruptions that no longer parsed
	Delayed        uint64 // messages delivered late
	Held           uint64 // messages overtaken by a successor
}

// holdFlushDelay bounds how long a held (reordered) message waits for a
// successor before it is delivered anyway.
const holdFlushDelay = 25 * time.Millisecond

// FaultyEndpoint decorates any Endpoint (memnet or TCP) with
// deterministic fault injection on the send side. Wrapping every node
// of a cluster covers every link. Inbound traffic is untouched: each
// link's faults are injected exactly once, by its sender.
type FaultyEndpoint struct {
	inner Endpoint
	inj   Injector

	mu       sync.Mutex
	seq      map[uint32]uint64          // per-destination message counter
	held     map[uint32]message.Message // per-destination reorder slot
	closed   bool
	quiesced bool
	stats    FaultStats
}

// WrapFaulty decorates inner with fault injection driven by inj.
func WrapFaulty(inner Endpoint, inj Injector) *FaultyEndpoint {
	return &FaultyEndpoint{
		inner: inner,
		inj:   inj,
		seq:   make(map[uint32]uint64),
		held:  make(map[uint32]message.Message),
	}
}

// ID implements Endpoint.
func (f *FaultyEndpoint) ID() uint32 { return f.inner.ID() }

// Handle implements Endpoint.
func (f *FaultyEndpoint) Handle(h Handler) { f.inner.Handle(h) }

// Inner returns the wrapped endpoint.
func (f *FaultyEndpoint) Inner() Endpoint { return f.inner }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyEndpoint) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Quiesce stops fault injection: the schedule's fault window is over
// and every later message passes through untouched. Held messages are
// released so nothing from the window stays parked.
func (f *FaultyEndpoint) Quiesce() {
	f.mu.Lock()
	f.quiesced = true
	held := f.held
	f.held = make(map[uint32]message.Message)
	f.mu.Unlock()
	for to, m := range held {
		_ = f.inner.Send(to, m)
	}
}

// Send implements Endpoint. Faults apply per link in send order; the
// per-link decision sequence is exactly the injector's, so a run can be
// replayed from the injector's seed.
func (f *FaultyEndpoint) Send(to uint32, m message.Message) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.quiesced {
		f.stats.Sent++
		f.mu.Unlock()
		return f.inner.Send(to, m)
	}
	n := f.seq[to]
	f.seq[to] = n + 1
	fault := f.inj.Decide(f.inner.ID(), to, n)
	prev, hadPrev := f.held[to]
	delete(f.held, to)

	f.stats.Sent++
	out := m
	deliver := !fault.Drop
	if fault.Drop {
		f.stats.Dropped++
	} else if fault.Corrupt {
		if out = corruptMessage(m, fault.CorruptPos, fault.CorruptXOR); out == nil {
			f.stats.CorruptDropped++
			deliver = false
		} else {
			f.stats.Corrupted++
		}
	}
	hold := deliver && fault.Hold
	if hold {
		f.stats.Held++
		f.held[to] = out
		held := out
		time.AfterFunc(holdFlushDelay, func() { f.flushHeld(to, held) })
	}
	if deliver && !hold {
		if fault.Delay > 0 {
			f.stats.Delayed++
		}
		if fault.Duplicate {
			f.stats.Duplicated++
		}
	}
	f.mu.Unlock()

	var err error
	if deliver && !hold {
		if fault.Delay > 0 {
			msg := out
			time.AfterFunc(fault.Delay, func() { _ = f.inner.Send(to, msg) })
		} else {
			err = f.inner.Send(to, out)
		}
		if fault.Duplicate {
			_ = f.inner.Send(to, out)
		}
	}
	// The previously held message is released after the current one,
	// completing the reordering.
	if hadPrev {
		_ = f.inner.Send(to, prev)
	}
	return err
}

// Multicast implements Multicaster by applying Send per destination.
// Fault decisions are strictly per (link, seq), so a broadcast must
// consume exactly one injector decision on every destination link —
// sharing work across destinations would change the replayable fault
// schedule.
func (f *FaultyEndpoint) Multicast(dests []uint32, m message.Message) {
	for _, to := range dests {
		_ = f.Send(to, m)
	}
}

// flushHeld delivers a held message if it is still parked (no successor
// released it).
func (f *FaultyEndpoint) flushHeld(to uint32, m message.Message) {
	f.mu.Lock()
	cur, ok := f.held[to]
	if !ok || cur != m || f.closed {
		f.mu.Unlock()
		return
	}
	delete(f.held, to)
	f.mu.Unlock()
	_ = f.inner.Send(to, m)
}

// Close implements Endpoint; held messages are discarded.
func (f *FaultyEndpoint) Close() error {
	f.mu.Lock()
	f.closed = true
	f.held = make(map[uint32]message.Message)
	f.mu.Unlock()
	return f.inner.Close()
}

// corruptMessage flips one byte of m's wire encoding and re-parses it.
// It returns nil when the corruption no longer parses (the message is
// then dropped, like a frame failing a checksum).
func corruptMessage(m message.Message, pos uint32, xor byte) message.Message {
	if xor == 0 {
		xor = 0x01
	}
	raw := message.Marshal(m)
	if len(raw) == 0 {
		return nil
	}
	b := append([]byte(nil), raw...)
	b[int(pos)%len(b)] ^= xor
	out, err := message.Unmarshal(b)
	if err != nil {
		return nil
	}
	return out
}
