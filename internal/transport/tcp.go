package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// maxFrameSize bounds accepted wire frames (64 MiB), guarding against
// corrupt length prefixes.
const maxFrameSize = 64 << 20

// maxPooledReadBuf caps the size of read buffers kept in the pool;
// rare oversized frames (state transfer) allocate fresh and are left
// for the GC rather than pinning megabytes in the pool.
const maxPooledReadBuf = 64 << 10

// readBufPool recycles per-frame read buffers across all read loops.
// Safe because the codec clones every variable-length field on decode,
// so no decoded message aliases a pooled buffer.
var readBufPool sync.Pool

func getReadBuf(n int) []byte {
	if n <= maxPooledReadBuf {
		if v, _ := readBufPool.Get().(*[]byte); v != nil {
			if cap(*v) >= n {
				return (*v)[:n]
			}
		}
		return make([]byte, n, maxPooledReadBuf)
	}
	return make([]byte, n)
}

func putReadBuf(b []byte) {
	if cap(b) > maxPooledReadBuf || cap(b) == 0 {
		return
	}
	b = b[:0]
	readBufPool.Put(&b)
}

// TCPOptions tune the self-healing behaviour of a TCPEndpoint. The
// zero value selects the defaults below.
type TCPOptions struct {
	// QueueDepth bounds the per-peer outbound queue; when it is full
	// the oldest frame is dropped (the protocols tolerate loss and
	// retransmit), so one unreachable peer can never wedge a sender.
	// Default 4096.
	QueueDepth int
	// DialTimeout bounds one connection attempt. Default 3s.
	DialTimeout time.Duration
	// BackoffMin is the redial backoff after the first failure; it
	// doubles per consecutive failure up to BackoffMax, with ±50%
	// jitter to avoid reconnection stampedes. Defaults 20ms / 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// HeartbeatInterval is how long a peer connection may sit idle
	// before a heartbeat frame is written to it. Default 500ms.
	HeartbeatInterval time.Duration
	// ReadIdleTimeout is the read deadline on inbound connections;
	// peers heartbeat when idle, so a silent inbound connection is a
	// dead one and is closed. Zero disables. Default 3×heartbeat.
	ReadIdleTimeout time.Duration
	// Telemetry receives the endpoint's metrics (hybster_transport_*);
	// nil disables instrumentation.
	Telemetry *telemetry.Telemetry
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 20 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.ReadIdleTimeout <= 0 {
		o.ReadIdleTimeout = 3 * o.HeartbeatInterval
	}
	return o
}

// PeerState is a snapshot of one outbound peer link's health.
type PeerState struct {
	// Connected reports whether a live connection to the peer exists.
	Connected bool
	// Attempts counts dial attempts that failed since the link was
	// created (cumulative; it keeps growing across outages).
	Attempts uint64
	// Drops counts frames discarded by queue overflow (drop-oldest).
	Drops uint64
	// Queued is the current outbound queue length.
	Queued int
}

// tcpConn serializes frame writes; a frame must reach the stream
// atomically even when several goroutines send concurrently (the
// reply path writes directly from protocol goroutines).
type tcpConn struct {
	net.Conn
	mu sync.Mutex
}

func (c *tcpConn) writeFrame(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.Conn.Write(frame)
	return err
}

// peerLink is the self-healing outbound channel to one peer: a bounded
// drop-oldest frame queue drained by a background sender goroutine
// that dials with exponential backoff and heartbeats when idle.
// Protocol goroutines only ever enqueue; they never block on the
// network.
type peerLink struct {
	ep   *TCPEndpoint
	id   uint32
	addr string

	// Per-peer metric handles (nil-safe; resolved in AddPeer).
	mDrops   *telemetry.Counter
	mRedials *telemetry.Counter

	mu     sync.Mutex
	queue  [][]byte
	notify chan struct{}
	closed bool
	state  PeerState
}

func (l *peerLink) enqueue(frame []byte) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if len(l.queue) >= l.ep.opts.QueueDepth {
		l.queue = l.queue[1:]
		l.state.Drops++
		l.mDrops.Inc()
	}
	l.queue = append(l.queue, frame)
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// requeueFront puts a frame whose write failed back at the head of the
// queue so the redialed connection retries it instead of losing it.
func (l *peerLink) requeueFront(frame []byte) {
	l.mu.Lock()
	if !l.closed && len(l.queue) < l.ep.opts.QueueDepth {
		l.queue = append([][]byte{frame}, l.queue...)
	}
	l.mu.Unlock()
}

func (l *peerLink) dequeue() ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.queue) == 0 {
		return nil, false
	}
	f := l.queue[0]
	l.queue = l.queue[1:]
	return f, true
}

func (l *peerLink) snapshot() PeerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.state
	s.Queued = len(l.queue)
	return s
}

// run is the link's sender loop: connect (with backoff), drain the
// queue, heartbeat when idle, reconnect on error.
func (l *peerLink) run() {
	defer l.ep.wg.Done()
	backoff := l.ep.opts.BackoffMin
	for {
		conn, ok := l.connect(&backoff)
		if !ok {
			return // endpoint closed
		}
		l.drain(conn)
		// drain only returns on write error or shutdown; drop the
		// broken connection and loop to redial.
		l.ep.dropConn(l.id, conn)
		if l.isClosed() {
			return
		}
	}
}

// connect establishes (or reuses) the outbound connection, sleeping
// with exponential backoff plus jitter between failed attempts.
func (l *peerLink) connect(backoff *time.Duration) (*tcpConn, bool) {
	for {
		if l.isClosed() {
			return nil, false
		}
		l.mu.Lock()
		addr := l.addr
		l.mu.Unlock()
		raw, err := net.DialTimeout("tcp", addr, l.ep.opts.DialTimeout)
		if err == nil {
			if tc, ok := raw.(*net.TCPConn); ok {
				_ = tc.SetNoDelay(true)
			}
			c := &tcpConn{Conn: raw}
			if !l.ep.registerConn(l.id, c) {
				_ = raw.Close()
				return nil, false
			}
			l.mu.Lock()
			l.state.Connected = true
			l.mu.Unlock()
			*backoff = l.ep.opts.BackoffMin
			return c, true
		}
		l.mu.Lock()
		l.state.Attempts++
		l.mu.Unlock()
		l.mRedials.Inc()
		// ±50% jitter decorrelates redials across the cluster.
		sleep := *backoff/2 + time.Duration(rand.Int63n(int64(*backoff)))
		if *backoff *= 2; *backoff > l.ep.opts.BackoffMax {
			*backoff = l.ep.opts.BackoffMax
		}
		select {
		case <-time.After(sleep):
		case <-l.ep.done:
			return nil, false
		}
	}
}

// drain writes queued frames to conn, heartbeating when idle. It
// returns when a write fails or the endpoint shuts down.
func (l *peerLink) drain(conn *tcpConn) {
	defer func() {
		l.mu.Lock()
		l.state.Connected = false
		l.mu.Unlock()
	}()
	idle := time.NewTimer(l.ep.opts.HeartbeatInterval)
	defer idle.Stop()
	for {
		frame, ok := l.dequeue()
		if !ok {
			select {
			case <-l.notify:
				continue
			case <-idle.C:
				if err := conn.writeFrame(l.ep.heartbeat); err != nil {
					return
				}
				l.ep.met.heartbeats.Inc()
				idle.Reset(l.ep.opts.HeartbeatInterval)
				continue
			case <-l.ep.done:
				return
			}
		}
		if err := conn.writeFrame(frame); err != nil {
			l.requeueFront(frame)
			return
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(l.ep.opts.HeartbeatInterval)
	}
}

func (l *peerLink) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

func (l *peerLink) close() {
	l.mu.Lock()
	l.closed = true
	l.queue = nil
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// TCPEndpoint is a real-network transport: one listener per node,
// length-prefixed frames, and self-healing outbound peer links — per
// peer a bounded drop-oldest queue, a background sender, exponential
// backoff + jitter redial, and heartbeats with idle read deadlines to
// detect dead peers. Send never blocks on the network, so a slow or
// unreachable peer cannot wedge a protocol goroutine. Nodes without a
// configured address (clients) are answered over the connection their
// traffic arrived on. It serves the multi-process deployment driven by
// cmd/hybster-replica and cmd/hybster-client.
type TCPEndpoint struct {
	id        uint32
	listener  net.Listener
	opts      TCPOptions
	heartbeat []byte // prebuilt empty frame announcing our ID
	done      chan struct{}

	mu      sync.Mutex
	links   map[uint32]*peerLink
	conns   map[uint32]*tcpConn
	inbound map[net.Conn]*tcpConn
	// replyPath maps node IDs to the inbound connection their frames
	// last arrived on, providing a return channel to clients that
	// have no listener of their own registered here.
	replyPath map[uint32]*tcpConn
	handler   Handler
	closed    bool
	wg        sync.WaitGroup

	met tcpMetrics
}

// tcpMetrics holds the endpoint-wide metric handles (all nil-safe;
// zero value = instrumentation off). Per-peer drops, redials, and
// queue depth live on the links.
type tcpMetrics struct {
	tel           *telemetry.Telemetry
	sentFrames    *telemetry.Counter
	sentBytes     *telemetry.Counter
	recvFrames    *telemetry.Counter
	recvBytes     *telemetry.Counter
	heartbeats    *telemetry.Counter
	savedMarshals *telemetry.Counter
}

func newTCPMetrics(tel *telemetry.Telemetry) tcpMetrics {
	if tel == nil {
		return tcpMetrics{}
	}
	return tcpMetrics{
		tel:           tel,
		sentFrames:    tel.Counter("hybster_transport_sent_frames_total", "frames queued or written outbound"),
		sentBytes:     tel.Counter("hybster_transport_sent_bytes_total", "framed bytes queued or written outbound"),
		recvFrames:    tel.Counter("hybster_transport_recv_frames_total", "frames read inbound (including heartbeats)"),
		recvBytes:     tel.Counter("hybster_transport_recv_bytes_total", "framed bytes read inbound"),
		heartbeats:    tel.Counter("hybster_transport_heartbeats_total", "heartbeat frames written on idle links"),
		savedMarshals: tel.Counter("hybster_transport_multicast_saved_marshals_total", "per-destination marshals avoided by marshal-once multicast"),
	}
}

// NewTCP creates an endpoint for node id listening on listenAddr with
// default options. peers maps node IDs to their listen addresses; it
// may be extended later with AddPeer.
func NewTCP(id uint32, listenAddr string, peers map[uint32]string) (*TCPEndpoint, error) {
	return NewTCPWithOptions(id, listenAddr, peers, TCPOptions{})
}

// NewTCPWithOptions is NewTCP with explicit tuning (tests use short
// heartbeat and backoff intervals).
func NewTCPWithOptions(id uint32, listenAddr string, peers map[uint32]string, opts TCPOptions) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	hb := make([]byte, 8)
	binary.BigEndian.PutUint32(hb[0:4], 4)
	binary.BigEndian.PutUint32(hb[4:8], id)
	ep := &TCPEndpoint{
		id:        id,
		listener:  l,
		opts:      opts.withDefaults(),
		heartbeat: hb,
		done:      make(chan struct{}),
		links:     make(map[uint32]*peerLink),
		conns:     make(map[uint32]*tcpConn),
		inbound:   make(map[net.Conn]*tcpConn),
		replyPath: make(map[uint32]*tcpConn),
		met:       newTCPMetrics(opts.Telemetry),
	}
	for pid, addr := range peers {
		ep.AddPeer(pid, addr)
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the actual listen address (useful with ":0").
func (ep *TCPEndpoint) Addr() string { return ep.listener.Addr().String() }

// AddPeer registers or updates the address of a peer and starts its
// self-healing sender link.
func (ep *TCPEndpoint) AddPeer(id uint32, addr string) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	if l, ok := ep.links[id]; ok {
		l.mu.Lock()
		l.addr = addr
		l.mu.Unlock()
		return
	}
	l := &peerLink{ep: ep, id: id, addr: addr, notify: make(chan struct{}, 1)}
	if tel := ep.met.tel; tel != nil {
		peer := telemetry.L("peer", fmt.Sprint(id))
		l.mDrops = tel.Counter("hybster_transport_drops_total",
			"frames discarded by queue overflow", peer)
		l.mRedials = tel.Counter("hybster_transport_redials_total",
			"failed dial attempts", peer)
		tel.GaugeFunc("hybster_transport_queue_depth",
			"current outbound queue length",
			func() float64 { return float64(l.snapshot().Queued) }, peer)
	}
	ep.links[id] = l
	ep.wg.Add(1)
	go l.run()
}

// PeerStates returns a health snapshot of every configured peer link.
func (ep *TCPEndpoint) PeerStates() map[uint32]PeerState {
	ep.mu.Lock()
	links := make([]*peerLink, 0, len(ep.links))
	for _, l := range ep.links {
		links = append(links, l)
	}
	ep.mu.Unlock()
	out := make(map[uint32]PeerState, len(links))
	for _, l := range links {
		out[l.id] = l.snapshot()
	}
	return out
}

// PeerState returns the health snapshot of one peer link.
func (ep *TCPEndpoint) PeerState(id uint32) (PeerState, bool) {
	ep.mu.Lock()
	l, ok := ep.links[id]
	ep.mu.Unlock()
	if !ok {
		return PeerState{}, false
	}
	return l.snapshot(), true
}

// ID implements Endpoint.
func (ep *TCPEndpoint) ID() uint32 { return ep.id }

// Handle implements Endpoint.
func (ep *TCPEndpoint) Handle(h Handler) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// Send implements Endpoint. For configured peers the frame is queued
// on the peer's self-healing link and the call returns immediately;
// delivery is best effort with drop-oldest overflow. Destinations
// without a configured address are reached by a direct write on their
// last inbound connection, which is evicted on error so the next
// arrival re-establishes the path.
func (ep *TCPEndpoint) Send(to uint32, m message.Message) error {
	return ep.sendFrame(to, ep.buildFrame(m))
}

// buildFrame marshals m into an owned, immutable wire frame:
// [len u32 = 4+payload][sender u32][payload].
func (ep *TCPEndpoint) buildFrame(m message.Message) []byte {
	payload := message.Marshal(m)
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(4+len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], ep.id)
	copy(frame[8:], payload)
	return frame
}

// sendFrame queues or writes one prebuilt frame to a destination. The
// frame is immutable and may be shared between destinations.
func (ep *TCPEndpoint) sendFrame(to uint32, frame []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.met.sentFrames.Inc()
	ep.met.sentBytes.Add(uint64(len(frame)))
	if l, ok := ep.links[to]; ok {
		ep.mu.Unlock()
		l.enqueue(frame)
		return nil
	}
	rp, ok := ep.replyPath[to]
	ep.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if err := rp.writeFrame(frame); err != nil {
		// Evict the dead reply-path connection immediately: later
		// replies must not keep hitting it until the read loop notices.
		ep.evictReplyPath(to, rp)
		return fmt.Errorf("transport: send to %d: %w", to, err)
	}
	return nil
}

// Multicast implements Multicaster: the message is marshalled and
// framed exactly once and the same immutable byte slice is enqueued on
// every destination's link (or written down its reply path). Per-link
// frame queues never mutate frames, so sharing is safe.
func (ep *TCPEndpoint) Multicast(dests []uint32, m message.Message) {
	if len(dests) == 0 {
		return
	}
	frame := ep.buildFrame(m)
	for _, to := range dests {
		_ = ep.sendFrame(to, frame) // best effort, like Send
	}
	if len(dests) > 1 {
		ep.met.savedMarshals.Add(uint64(len(dests) - 1))
	}
}

// evictReplyPath removes a broken inbound reply connection.
func (ep *TCPEndpoint) evictReplyPath(to uint32, c *tcpConn) {
	ep.mu.Lock()
	if ep.replyPath[to] == c {
		delete(ep.replyPath, to)
	}
	ep.mu.Unlock()
	_ = c.Close()
}

// registerConn installs a freshly dialed outbound connection and
// starts its read loop. It returns false when the endpoint is closed.
func (ep *TCPEndpoint) registerConn(to uint32, c *tcpConn) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return false
	}
	if old, ok := ep.conns[to]; ok && old != c {
		_ = old.Close()
	}
	ep.conns[to] = c
	ep.wg.Add(1)
	go ep.readLoop(c, false)
	return true
}

func (ep *TCPEndpoint) dropConn(to uint32, c *tcpConn) {
	if c == nil {
		return
	}
	ep.mu.Lock()
	if ep.conns[to] == c {
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	_ = c.Close()
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		raw, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c := &tcpConn{Conn: raw}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = raw.Close()
			return
		}
		ep.inbound[raw] = c
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(c, true)
	}
}

// readLoop consumes frames from one connection. Inbound connections
// additionally register as the reply path of the sending node and
// carry an idle read deadline: peers heartbeat when idle, so silence
// beyond the deadline means the peer is dead and the connection is
// dropped.
func (ep *TCPEndpoint) readLoop(c *tcpConn, isInbound bool) {
	defer ep.wg.Done()
	defer func() {
		ep.mu.Lock()
		delete(ep.inbound, c.Conn)
		for id, rp := range ep.replyPath {
			if rp == c {
				delete(ep.replyPath, id)
			}
		}
		for id, oc := range ep.conns {
			if oc == c {
				delete(ep.conns, id)
			}
		}
		ep.mu.Unlock()
		_ = c.Close()
	}()
	var lenBuf [4]byte
	registered := false
	for {
		if isInbound && ep.opts.ReadIdleTimeout > 0 {
			_ = c.SetReadDeadline(time.Now().Add(ep.opts.ReadIdleTimeout))
		}
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n < 4 || n > maxFrameSize {
			return // corrupt stream
		}
		body := getReadBuf(int(n))
		if _, err := io.ReadFull(c, body); err != nil {
			putReadBuf(body)
			return
		}
		ep.met.recvFrames.Inc()
		ep.met.recvBytes.Add(uint64(4 + n))
		from := binary.BigEndian.Uint32(body[0:4])
		if isInbound && !registered {
			ep.mu.Lock()
			ep.replyPath[from] = c
			ep.mu.Unlock()
			registered = true
		}
		if n == 4 {
			putReadBuf(body)
			continue // heartbeat frame: ID only, no payload
		}
		// Unmarshal deep-copies every variable-length field out of the
		// buffer (the codec's clone-on-decode rule), so the pooled
		// buffer can be recycled as soon as decoding returns without
		// the decoded message aliasing it.
		m, err := message.Unmarshal(body[4:])
		putReadBuf(body)
		if err != nil {
			continue // drop malformed message, keep the stream
		}
		ep.mu.Lock()
		h := ep.handler
		closed := ep.closed
		ep.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, m)
		}
	}
}

// Close implements Endpoint.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	links := ep.links
	all := make([]*tcpConn, 0, len(ep.conns)+len(ep.inbound))
	for _, c := range ep.conns {
		all = append(all, c)
	}
	for _, c := range ep.inbound {
		all = append(all, c)
	}
	ep.links = make(map[uint32]*peerLink)
	ep.conns = make(map[uint32]*tcpConn)
	ep.inbound = make(map[net.Conn]*tcpConn)
	ep.mu.Unlock()

	close(ep.done)
	for _, l := range links {
		l.close()
	}
	err := ep.listener.Close()
	for _, c := range all {
		_ = c.Close()
	}
	ep.wg.Wait()
	return err
}
