package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hybster/internal/message"
)

// maxFrameSize bounds accepted wire frames (64 MiB), guarding against
// corrupt length prefixes.
const maxFrameSize = 64 << 20

// tcpConn serializes frame writes; a frame must reach the stream
// atomically even when several pillar goroutines send concurrently.
type tcpConn struct {
	net.Conn
	mu sync.Mutex
}

func (c *tcpConn) writeFrame(frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.Conn.Write(frame)
	return err
}

// TCPEndpoint is a real-network transport: one listener per node,
// length-prefixed frames, lazily established and automatically
// redialed outbound connections. Nodes without a configured address
// (clients) are answered over the connection their traffic arrived on.
// It serves the multi-process deployment driven by cmd/hybster-replica
// and cmd/hybster-client.
type TCPEndpoint struct {
	id       uint32
	listener net.Listener

	mu      sync.Mutex
	peers   map[uint32]string
	conns   map[uint32]*tcpConn
	inbound map[net.Conn]*tcpConn
	// replyPath maps node IDs to the inbound connection their frames
	// last arrived on, providing a return channel to clients that
	// have no listener of their own registered here.
	replyPath map[uint32]*tcpConn
	handler   Handler
	closed    bool
	wg        sync.WaitGroup
}

// NewTCP creates an endpoint for node id listening on listenAddr.
// peers maps node IDs to their listen addresses; it may be extended
// later with AddPeer.
func NewTCP(id uint32, listenAddr string, peers map[uint32]string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	ep := &TCPEndpoint{
		id:        id,
		listener:  l,
		peers:     make(map[uint32]string, len(peers)),
		conns:     make(map[uint32]*tcpConn),
		inbound:   make(map[net.Conn]*tcpConn),
		replyPath: make(map[uint32]*tcpConn),
	}
	for pid, addr := range peers {
		ep.peers[pid] = addr
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the actual listen address (useful with ":0").
func (ep *TCPEndpoint) Addr() string { return ep.listener.Addr().String() }

// AddPeer registers or updates the address of a peer.
func (ep *TCPEndpoint) AddPeer(id uint32, addr string) {
	ep.mu.Lock()
	ep.peers[id] = addr
	ep.mu.Unlock()
}

// ID implements Endpoint.
func (ep *TCPEndpoint) ID() uint32 { return ep.id }

// Handle implements Endpoint.
func (ep *TCPEndpoint) Handle(h Handler) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// Send implements Endpoint. Connections are established on first use
// and dropped on error; the next Send redials. Destinations without a
// configured address are reached over their last inbound connection.
func (ep *TCPEndpoint) Send(to uint32, m message.Message) error {
	payload := message.Marshal(m)
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(4+len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], ep.id)
	copy(frame[8:], payload)

	conn, dialed, err := ep.conn(to)
	if err != nil {
		return err
	}
	if err := conn.writeFrame(frame); err != nil {
		if dialed {
			ep.dropConn(to, conn)
		}
		return fmt.Errorf("transport: send to %d: %w", to, err)
	}
	return nil
}

// conn returns a connection to node "to": an outbound connection when
// an address is known (dialing if necessary), otherwise the node's
// inbound reply path.
func (ep *TCPEndpoint) conn(to uint32) (c *tcpConn, dialed bool, err error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, false, ErrClosed
	}
	if c, ok := ep.conns[to]; ok {
		ep.mu.Unlock()
		return c, true, nil
	}
	addr, hasAddr := ep.peers[to]
	if !hasAddr {
		if rp, ok := ep.replyPath[to]; ok {
			ep.mu.Unlock()
			return rp, false, nil
		}
		ep.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	ep.mu.Unlock()

	raw, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial %d (%s): %w", to, addr, err)
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c = &tcpConn{Conn: raw}

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		_ = raw.Close()
		return nil, false, ErrClosed
	}
	if existing, ok := ep.conns[to]; ok {
		_ = raw.Close() // lost the dial race
		return existing, true, nil
	}
	ep.conns[to] = c
	ep.wg.Add(1)
	go ep.readLoop(c, false)
	return c, true, nil
}

func (ep *TCPEndpoint) dropConn(to uint32, c *tcpConn) {
	ep.mu.Lock()
	if ep.conns[to] == c {
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	_ = c.Close()
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		raw, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c := &tcpConn{Conn: raw}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = raw.Close()
			return
		}
		ep.inbound[raw] = c
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(c, true)
	}
}

// readLoop consumes frames from one connection. Inbound connections
// additionally register as the reply path of the sending node.
func (ep *TCPEndpoint) readLoop(c *tcpConn, isInbound bool) {
	defer ep.wg.Done()
	defer func() {
		ep.mu.Lock()
		delete(ep.inbound, c.Conn)
		for id, rp := range ep.replyPath {
			if rp == c {
				delete(ep.replyPath, id)
			}
		}
		for id, oc := range ep.conns {
			if oc == c {
				delete(ep.conns, id)
			}
		}
		ep.mu.Unlock()
		_ = c.Close()
	}()
	var lenBuf [4]byte
	registered := false
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n < 4 || n > maxFrameSize {
			return // corrupt stream
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		from := binary.BigEndian.Uint32(body[0:4])
		if isInbound && !registered {
			ep.mu.Lock()
			ep.replyPath[from] = c
			ep.mu.Unlock()
			registered = true
		}
		m, err := message.Unmarshal(body[4:])
		if err != nil {
			continue // drop malformed message, keep the stream
		}
		ep.mu.Lock()
		h := ep.handler
		closed := ep.closed
		ep.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, m)
		}
	}
}

// Close implements Endpoint.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	all := make([]*tcpConn, 0, len(ep.conns)+len(ep.inbound))
	for _, c := range ep.conns {
		all = append(all, c)
	}
	for _, c := range ep.inbound {
		all = append(all, c)
	}
	ep.conns = make(map[uint32]*tcpConn)
	ep.inbound = make(map[net.Conn]*tcpConn)
	ep.mu.Unlock()

	err := ep.listener.Close()
	for _, c := range all {
		_ = c.Close()
	}
	ep.wg.Wait()
	return err
}
