// Package transport moves protocol messages between nodes (replicas and
// clients). Two implementations are provided:
//
//   - Network, an in-process simulated fabric used by tests and the
//     benchmark harness. It preserves per-link FIFO order and models
//     propagation latency, link bandwidth, probabilistic loss, and
//     network partitions. All replicas of a benchmark cluster plus its
//     clients run in one process connected by this fabric; the paper's
//     evaluation is CPU-bound (§6.2), so in-process message passing
//     preserves the relevant behaviour while the bandwidth model keeps
//     payload-induced saturation (Fig. 6b) visible.
//   - TCP, a real network transport with length-prefixed frames for
//     multi-process deployments (cmd/hybster-replica).
//
// Handlers run on transport goroutines; protocol engines are expected
// to hand messages off to their pillar event loops quickly.
package transport

import (
	"errors"
	"sync"

	"hybster/internal/crypto"
	"hybster/internal/message"
)

// ErrClosed is returned when sending through a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownNode is returned when the destination is not registered.
var ErrUnknownNode = errors.New("transport: unknown node")

// Handler consumes an inbound message. Implementations must not retain
// the message past mutation; messages are immutable by convention.
type Handler func(from uint32, m message.Message)

// Endpoint is one node's attachment to a transport.
type Endpoint interface {
	// ID returns the node ID of this endpoint.
	ID() uint32
	// Handle installs the inbound message handler. It must be called
	// before the first message arrives.
	Handle(h Handler)
	// Send delivers m to node "to". Delivery is asynchronous and
	// per-destination FIFO; errors report local conditions only
	// (closed endpoint, unknown destination).
	Send(to uint32, m message.Message) error
	// Close detaches the endpoint; pending messages may be dropped.
	Close() error
}

// Multicaster is an optional endpoint capability: delivering one
// message to many destinations with shared per-broadcast work. The TCP
// endpoint marshals and frames the message once and enqueues the same
// immutable byte slice on every peer link; endpoints without the
// capability fall back to per-destination Send.
type Multicaster interface {
	// Multicast delivers m to every node in dests. Like Send, delivery
	// is asynchronous, per-destination FIFO, and best effort.
	Multicast(dests []uint32, m message.Message)
}

// multicastDests caches the [0,n)\{self} destination list per (self, n)
// so the steady-state broadcast path does not allocate it every call.
var multicastDests struct {
	mu    sync.Mutex
	cache map[uint64][]uint32
}

func destsFor(self uint32, n int) []uint32 {
	key := uint64(self)<<32 | uint64(uint32(n))
	multicastDests.mu.Lock()
	defer multicastDests.mu.Unlock()
	if d, ok := multicastDests.cache[key]; ok {
		return d
	}
	d := make([]uint32, 0, n-1)
	for r := uint32(0); int(r) < n; r++ {
		if r != self {
			d = append(d, r)
		}
	}
	if multicastDests.cache == nil {
		multicastDests.cache = make(map[uint64][]uint32)
	}
	multicastDests.cache[key] = d
	return d
}

// Multicast sends m to every replica in [0, n) except the endpoint
// itself. When the endpoint implements Multicaster the broadcast is
// handed over whole, so the transport can marshal the message once for
// all destinations; otherwise it degrades to per-destination Send.
func Multicast(ep Endpoint, n int, m message.Message) {
	// Warm the digest cache on the sender's goroutine: the in-process
	// fabric shares the message pointer with every receiver, so the
	// digest is computed once per broadcast instead of once per replica.
	message.PrecomputeDigest(m)
	if mc, ok := ep.(Multicaster); ok {
		mc.Multicast(destsFor(ep.ID(), n), m)
		return
	}
	for r := uint32(0); int(r) < n; r++ {
		if r == ep.ID() {
			continue
		}
		_ = ep.Send(r, m) // best effort; the protocols tolerate loss
	}
}

// EstimateSize approximates the wire size of m in bytes without
// marshaling. The in-process fabric uses it for bandwidth modeling; the
// estimate tracks the real codec within a few percent for the message
// mix of the benchmarks.
func EstimateSize(m message.Message) int {
	const certSize = 61
	const macSize = crypto.MACSize
	const header = 16
	reqSize := func(r *message.Request) int {
		return 24 + len(r.Payload) + 8 + macSize*len(r.Auth.MACs)
	}
	batch := func(reqs []*message.Request) int {
		s := 4
		for _, r := range reqs {
			s += reqSize(r)
		}
		return s
	}
	proof := func(p *message.Proof) int {
		if p.HasTCert() {
			return 1 + certSize
		}
		return 1 + 8 + macSize*len(p.Auth.MACs)
	}
	prepare := func(p *message.Prepare) int { return header + batch(p.Requests) + certSize }
	ckpt := func() int { return header + 32 + certSize }

	switch v := m.(type) {
	case *message.Request:
		return header + reqSize(v)
	case *message.Reply:
		return header + len(v.Result) + macSize
	case *message.Prepare:
		return prepare(v)
	case *message.Commit:
		return header + 32 + certSize
	case *message.Checkpoint:
		return ckpt()
	case *message.ViewChange:
		s := header + 48 + certSize + len(v.CkptProof)*ckpt()
		for _, p := range v.Prepares {
			s += prepare(p)
		}
		return s
	case *message.NewView:
		s := header + certSize
		for _, vc := range v.VCs {
			s += EstimateSize(vc)
		}
		for _, a := range v.Acks {
			s += EstimateSize(a)
		}
		for _, p := range v.Prepares {
			s += prepare(p)
		}
		return s
	case *message.NewViewAck:
		s := header + certSize
		for _, p := range v.Prepares {
			s += prepare(p)
		}
		return s
	case *message.PrePrepare:
		return header + batch(v.Requests) + proof(&v.Proof)
	case *message.PBFTPrepare:
		return header + 32 + proof(&v.Proof)
	case *message.PBFTCommit:
		return header + 32 + proof(&v.Proof)
	case *message.PBFTCheckpoint:
		return header + 32 + proof(&v.Proof)
	case *message.PBFTViewChange:
		s := header + 32 + proof(&v.Proof) + len(v.CkptProof)*(header+32+certSize)
		for _, pp := range v.Prepared {
			s += header + batch(pp.PrePrepare.Requests) + proof(&pp.PrePrepare.Proof)
			for _, p := range pp.Prepares {
				s += header + 32 + proof(&p.Proof)
			}
		}
		return s
	case *message.PBFTNewView:
		s := header + proof(&v.Proof)
		for _, vc := range v.VCs {
			s += EstimateSize(vc)
		}
		for _, p := range v.PrePrepares {
			s += header + batch(p.Requests) + proof(&p.Proof)
		}
		return s
	case *message.MinPrepare:
		return header + batch(v.Requests) + 44
	case *message.MinCommit:
		return header + 32 + 88
	case *message.StateRequest:
		return header + 8
	case *message.StateReply:
		return header + len(v.Snapshot) + len(v.ReplyVector) + len(v.Proof)*ckpt()
	default:
		return header + 64
	}
}
