package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hybster/internal/message"
)

// LinkProfile describes the simulated characteristics of every link in
// an in-process Network. The zero profile is an ideal network: no
// latency, unlimited bandwidth, no loss.
type LinkProfile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the link capacity in bytes per second; 0 means
	// unlimited. Transmissions on one link serialize, so large
	// messages delay subsequent ones (the Fig. 6b effect).
	Bandwidth int64
	// LossRate is the probability in [0,1) that a message is dropped.
	LossRate float64
}

// Network is the in-process message fabric. Nodes register endpoints by
// ID; every (source, destination) pair gets a dedicated FIFO link
// driven by its own goroutine.
type Network struct {
	profile LinkProfile
	seed    int64
	done    chan struct{} // closed by Close; unblocks senders and link goroutines

	mu         sync.RWMutex
	nodes      map[uint32]*memEndpoint
	links      map[[2]uint32]*link
	partitions map[[2]uint32]bool
	closed     bool
}

// NewNetwork creates an in-process network in which every link has the
// given profile. seed makes loss decisions reproducible.
func NewNetwork(profile LinkProfile, seed int64) *Network {
	return &Network{
		profile:    profile,
		seed:       seed,
		done:       make(chan struct{}),
		nodes:      make(map[uint32]*memEndpoint),
		links:      make(map[[2]uint32]*link),
		partitions: make(map[[2]uint32]bool),
	}
}

// linkQueueDepth bounds in-flight messages per link; senders block when
// a link is saturated, providing natural backpressure.
const linkQueueDepth = 8192

type link struct {
	ch  chan message.Message
	src uint32
	dst uint32
}

type memEndpoint struct {
	net *Network
	id  uint32

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

// Endpoint registers node id on the network and returns its endpoint.
// Registering an existing ID replaces the previous endpoint (supporting
// crash-restart); the replaced endpoint is closed so in-flight link
// deliveries cannot reach a stale handler.
func (n *Network) Endpoint(id uint32) Endpoint {
	ep := &memEndpoint{net: n, id: id}
	n.mu.Lock()
	old := n.nodes[id]
	n.nodes[id] = ep
	n.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return ep
}

// Partition cuts both directions between nodes a and b. Messages in
// flight are still delivered; new sends are dropped silently, like on a
// real partitioned network.
func (n *Network) Partition(a, b uint32) {
	n.mu.Lock()
	n.partitions[[2]uint32{a, b}] = true
	n.partitions[[2]uint32{b, a}] = true
	n.mu.Unlock()
}

// Isolate cuts node a off from every currently registered node.
func (n *Network) Isolate(a uint32) {
	n.mu.Lock()
	for id := range n.nodes {
		if id != a {
			n.partitions[[2]uint32{a, id}] = true
			n.partitions[[2]uint32{id, a}] = true
		}
	}
	n.mu.Unlock()
}

// HealNode removes every partition involving node a, undoing a prior
// Isolate without touching partitions between other node pairs.
func (n *Network) HealNode(a uint32) {
	n.mu.Lock()
	for key := range n.partitions {
		if key[0] == a || key[1] == a {
			delete(n.partitions, key)
		}
	}
	n.mu.Unlock()
}

// Heal removes the partition between a and b.
func (n *Network) Heal(a, b uint32) {
	n.mu.Lock()
	delete(n.partitions, [2]uint32{a, b})
	delete(n.partitions, [2]uint32{b, a})
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.partitions = make(map[[2]uint32]bool)
	n.mu.Unlock()
}

// Close shuts the network down; all link goroutines and blocked
// senders observe the done channel and exit. Link channels are never
// closed — a send racing Close must fail cleanly, not panic.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.links = make(map[[2]uint32]*link)
	n.mu.Unlock()
	close(n.done)
}

// getLink returns (creating if necessary) the FIFO link src→dst.
func (n *Network) getLink(src, dst uint32) (*link, error) {
	key := [2]uint32{src, dst}
	n.mu.RLock()
	l, ok := n.links[key]
	closed := n.closed
	n.mu.RUnlock()
	if ok {
		return l, nil
	}
	if closed {
		return nil, ErrClosed
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[key]; ok {
		return l, nil
	}
	if n.closed {
		return nil, ErrClosed
	}
	l = &link{ch: make(chan message.Message, linkQueueDepth), src: src, dst: dst}
	n.links[key] = l
	go n.runLink(l)
	return l, nil
}

// runLink drives one link: applies loss, bandwidth, and latency, then
// delivers to the destination handler in FIFO order.
func (n *Network) runLink(l *link) {
	rng := rand.New(rand.NewSource(n.seed ^ int64(l.src)<<32 ^ int64(l.dst)))
	for {
		var m message.Message
		select {
		case m = <-l.ch:
		case <-n.done:
			return
		}
		if n.profile.LossRate > 0 && rng.Float64() < n.profile.LossRate {
			continue
		}
		if n.profile.Bandwidth > 0 {
			size := EstimateSize(m)
			tx := time.Duration(float64(size) / float64(n.profile.Bandwidth) * float64(time.Second))
			time.Sleep(tx)
		}
		if n.profile.Latency > 0 {
			time.Sleep(n.profile.Latency)
		}
		n.mu.RLock()
		dst := n.nodes[l.dst]
		blocked := n.partitions[[2]uint32{l.src, l.dst}]
		n.mu.RUnlock()
		if dst == nil || blocked {
			continue
		}
		dst.deliver(l.src, m)
	}
}

func (ep *memEndpoint) deliver(from uint32, m message.Message) {
	ep.mu.RLock()
	h := ep.handler
	closed := ep.closed
	ep.mu.RUnlock()
	if h != nil && !closed {
		h(from, m)
	}
}

// ID implements Endpoint.
func (ep *memEndpoint) ID() uint32 { return ep.id }

// Handle implements Endpoint.
func (ep *memEndpoint) Handle(h Handler) {
	ep.mu.Lock()
	ep.handler = h
	ep.mu.Unlock()
}

// Send implements Endpoint.
func (ep *memEndpoint) Send(to uint32, m message.Message) error {
	ep.mu.RLock()
	closed := ep.closed
	ep.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	n := ep.net
	n.mu.RLock()
	_, known := n.nodes[to]
	blocked := n.partitions[[2]uint32{ep.id, to}]
	n.mu.RUnlock()
	if !known {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if blocked {
		return nil // silently dropped, like a real partition
	}
	l, err := n.getLink(ep.id, to)
	if err != nil {
		return err
	}
	select {
	case l.ch <- m:
		return nil
	case <-n.done:
		return ErrClosed
	}
}

// Multicast implements Multicaster. The in-process fabric passes
// message pointers — there is no marshal to share — so the broadcast
// degenerates to per-destination sends; implementing the capability
// here keeps wrapper transports (FaultyEndpoint) able to forward whole
// broadcasts without changing delivery semantics.
func (ep *memEndpoint) Multicast(dests []uint32, m message.Message) {
	for _, to := range dests {
		_ = ep.Send(to, m) // best effort; the protocols tolerate loss
	}
}

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.mu.Lock()
	ep.closed = true
	ep.handler = nil
	ep.mu.Unlock()
	return nil
}
