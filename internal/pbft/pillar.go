package pbft

import (
	"hybster/internal/checkpoint"
	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// Events delivered to pillar mailboxes.
type (
	evPropose struct {
		view  timeline.View
		order timeline.Order
		batch []*message.Request
	}
	evCkptDue struct {
		order  timeline.Order
		digest crypto.Digest
	}
	evAdvance struct{ order timeline.Order }
	// evCollectVC gathers the pillar's prepared proofs for a view
	// change.
	evCollectVC struct {
		reply chan []message.PreparedProof
	}
	// evInstallView installs a new view with re-issued pre-prepares
	// for this pillar's class.
	evInstallView struct {
		view        timeline.View
		startCkpt   timeline.Order
		prePrepares []*message.PrePrepare
		leader      bool
	}
	evTick struct{}
)

// pslot tracks one PBFT consensus instance: it reaches "prepared" with
// the PRE-PREPARE plus 2f matching PREPAREs and "committed" with 2f+1
// COMMITs (Castro & Liskov, OSDI '99).
type pslot struct {
	order       timeline.Order
	view        timeline.View
	prePrepare  *message.PrePrepare
	batchDigest crypto.Digest
	prepares    map[uint32]*message.PBFTPrepare
	commits     map[uint32]bool
	sentPrepare bool
	sentCommit  bool
	prepared    bool
	committed   bool
	executed    bool
}

func newPSlot(o timeline.Order, v timeline.View) *pslot {
	return &pslot{
		order: o, view: v,
		prepares: make(map[uint32]*message.PBFTPrepare),
		commits:  make(map[uint32]bool),
	}
}

// pillar is one processing unit of PBFTcop. Without trusted counters
// there is no per-pillar ascending constraint; instances of the class
// proceed independently.
type pillar struct {
	e     *Engine
	idx   uint32
	tx    *trinx.TrInX // nil for PBFTcop
	inbox *cop.Mailbox[any]
	met   pillarMetrics

	view    timeline.View
	aborted bool
	low     timeline.Order
	slots   map[timeline.Order]*pslot
	ckpts   *checkpoint.Tracker[*message.PBFTCheckpoint]
	ownCkpt map[timeline.Order]*message.PBFTCheckpoint
}

func newPillar(e *Engine, idx uint32, tx *trinx.TrInX) *pillar {
	return &pillar{
		e:       e,
		idx:     idx,
		tx:      tx,
		inbox:   cop.NewMailbox[any](),
		met:     newPillarMetrics(e.met.tel, idx),
		slots:   make(map[timeline.Order]*pslot),
		ckpts:   checkpoint.NewTracker[*message.PBFTCheckpoint](e.cfg.Quorum()),
		ownCkpt: make(map[timeline.Order]*message.PBFTCheckpoint),
	}
}

func (p *pillar) high() timeline.Order { return p.low + p.e.cfg.WindowSize }

func (p *pillar) inWindow(o timeline.Order) bool { return o > p.low && o <= p.high() }

// slot returns the slot for (o, v), creating or view-resetting it.
// Returns nil for stale views or out-of-window orders.
func (p *pillar) slot(o timeline.Order, v timeline.View) *pslot {
	if !p.inWindow(o) {
		return nil
	}
	s, ok := p.slots[o]
	if !ok {
		s = newPSlot(o, v)
		p.slots[o] = s
		return s
	}
	if v > s.view {
		executed := s.executed
		s = newPSlot(o, v)
		s.executed = executed
		p.slots[o] = s
	} else if v < s.view {
		return nil
	}
	return s
}

func (p *pillar) run() {
	// Drain the mailbox in batches: under load one lock round-trip
	// fetches a burst of events instead of paying the lock per event.
	batch := make([]any, 0, 32)
	for {
		events, ok := p.inbox.GetBatch(batch[:0])
		if !ok {
			return
		}
		for _, ev := range events {
			p.handleEvent(ev)
		}
	}
}

func (p *pillar) handleEvent(ev any) {
	switch v := ev.(type) {
	case inMsg:
		p.handleMessage(v)
	case evPropose:
		p.handlePropose(v)
	case evCkptDue:
		p.handleCkptDue(v)
	case evAdvance:
		p.advance(v.order)
	case evCollectVC:
		p.handleCollectVC(v)
	case evInstallView:
		p.handleInstallView(v)
	case evTick:
		p.handleTick()
	}
}

func (p *pillar) handleMessage(in inMsg) {
	switch v := in.msg.(type) {
	case *message.PrePrepare:
		p.handlePrePrepare(in.from, v, in.verified)
	case *message.PBFTPrepare:
		p.handlePrepare(in.from, v)
	case *message.PBFTCommit:
		p.handleCommit(in.from, v)
	case *message.PBFTCheckpoint:
		p.handleCheckpoint(in.from, v)
	}
}

// handlePropose makes this replica's proposal: certify and multicast a
// PRE-PREPARE.
func (p *pillar) handlePropose(ev evPropose) {
	if ev.view != p.view || p.aborted || !p.inWindow(ev.order) {
		p.e.seq.credit(p.idx, len(ev.batch))
		return
	}
	pp := &message.PrePrepare{View: ev.view, Order: ev.order, Requests: ev.batch}
	proof, err := p.e.sign(p.tx, pp.Digest())
	if err != nil {
		p.e.seq.credit(p.idx, len(ev.batch))
		return
	}
	pp.Proof = proof
	s := p.slot(ev.order, ev.view)
	if s == nil || s.prePrepare != nil {
		p.e.seq.credit(p.idx, len(ev.batch))
		return
	}
	s.prePrepare = pp
	s.batchDigest = pp.BatchDigest()
	p.met.preprepares.Inc()
	p.e.traceD(telemetry.EvPropose, uint64(ev.view), uint64(ev.order), p.idx, s.batchDigest[:], "")
	transport.Multicast(p.e.ep, p.e.cfg.N, pp)
	p.progress(s)
}

// handlePrePrepare validates a proposal; authVerified skips the
// client-authenticator loop for batches the parallel verify stage
// already cleared (the proposer's proof is always checked here).
func (p *pillar) handlePrePrepare(from uint32, pp *message.PrePrepare, authVerified bool) {
	if pp.View != p.view || p.aborted {
		return
	}
	if pp.Order > p.high() {
		p.e.coord.inbox.Put(evBehind{})
		return
	}
	if from != p.e.cfg.ProposerOf(pp.View, pp.Order) {
		return
	}
	if !p.e.verify(p.tx, &pp.Proof, pp.Digest(), from) {
		return
	}
	if !authVerified {
		for _, r := range pp.Requests {
			if !crypto.VerifyAuthenticator(p.e.ks, r.Auth, r.Digest()) {
				return
			}
		}
	}
	p.e.noteWork()
	p.acceptPrePrepare(pp)
}

// acceptPrePrepare records a (verified) proposal and answers it with
// this backup's PREPARE.
func (p *pillar) acceptPrePrepare(pp *message.PrePrepare) {
	s := p.slot(pp.Order, pp.View)
	if s == nil || s.prePrepare != nil {
		return
	}
	s.prePrepare = pp
	s.batchDigest = pp.BatchDigest()
	if !s.sentPrepare {
		s.sentPrepare = true
		prep := &message.PBFTPrepare{
			View: pp.View, Order: pp.Order, Replica: p.e.id, BatchDigest: s.batchDigest,
		}
		proof, err := p.e.sign(p.tx, prep.Digest())
		if err != nil {
			return
		}
		prep.Proof = proof
		s.prepares[p.e.id] = prep
		p.met.prepares.Inc()
		p.e.traceD(telemetry.EvPrepare, uint64(pp.View), uint64(pp.Order), p.idx, s.batchDigest[:], "")
		transport.Multicast(p.e.ep, p.e.cfg.N, prep)
	}
	p.progress(s)
}

func (p *pillar) handlePrepare(from uint32, m *message.PBFTPrepare) {
	if m.View != p.view || p.aborted || !p.inWindow(m.Order) {
		return
	}
	if m.Replica != from || from == p.e.cfg.ProposerOf(m.View, m.Order) {
		return // the proposer's PRE-PREPARE stands in for its PREPARE
	}
	if !p.e.verify(p.tx, &m.Proof, m.Digest(), from) {
		return
	}
	s := p.slot(m.Order, m.View)
	if s == nil {
		return
	}
	if s.prePrepare != nil && s.batchDigest != m.BatchDigest {
		return
	}
	if _, dup := s.prepares[from]; dup {
		return
	}
	s.prepares[from] = m
	p.progress(s)
}

func (p *pillar) handleCommit(from uint32, m *message.PBFTCommit) {
	if m.View != p.view || p.aborted || !p.inWindow(m.Order) {
		return
	}
	if m.Replica != from {
		return
	}
	if !p.e.verify(p.tx, &m.Proof, m.Digest(), from) {
		return
	}
	s := p.slot(m.Order, m.View)
	if s == nil {
		return
	}
	if s.prePrepare != nil && s.batchDigest != m.BatchDigest {
		return
	}
	s.commits[from] = true
	p.progress(s)
}

// progress advances the slot through prepared → committed → executed.
// Prepared requires the PRE-PREPARE plus 2f PREPAREs from distinct
// backups (the proposer's PRE-PREPARE counts as its PREPARE);
// committed requires 2f+1 COMMITs.
func (p *pillar) progress(s *pslot) {
	f := p.e.cfg.F()
	if !s.prepared && s.prePrepare != nil && len(s.prepares) >= 2*f {
		s.prepared = true
	}
	if s.prepared && !s.sentCommit {
		s.sentCommit = true
		com := &message.PBFTCommit{
			View: s.view, Order: s.order, Replica: p.e.id, BatchDigest: s.batchDigest,
		}
		proof, err := p.e.sign(p.tx, com.Digest())
		if err == nil {
			com.Proof = proof
			s.commits[p.e.id] = true
			p.met.commits.Inc()
			p.e.traceD(telemetry.EvCommit, uint64(s.view), uint64(s.order), p.idx, s.batchDigest[:], "")
			transport.Multicast(p.e.ep, p.e.cfg.N, com)
		}
	}
	if !s.committed && s.prepared && len(s.commits) >= 2*f+1 {
		s.committed = true
	}
	if s.committed && !s.executed {
		s.executed = true
		p.met.committed.Inc()
		p.e.traceD(telemetry.EvDeliver, uint64(s.view), uint64(s.order), p.idx, s.batchDigest[:], "")
		credit := int32(-1)
		if p.e.cfg.ProposerOf(s.view, s.order) == p.e.id {
			credit = int32(p.idx)
		}
		p.e.exec.inbox.Put(evExec{order: s.order, batch: s.prePrepare.Requests, credit: credit})
	}
}

// --- checkpoints ---

func (p *pillar) handleCkptDue(ev evCkptDue) {
	ck := &message.PBFTCheckpoint{Order: ev.order, Replica: p.e.id, StateDigest: ev.digest}
	proof, err := p.e.sign(p.tx, ck.Digest())
	if err != nil {
		return
	}
	ck.Proof = proof
	p.ownCkpt[ev.order] = ck
	p.e.met.ckptsOwn.Inc()
	p.e.traceD(telemetry.EvCheckpoint, uint64(p.view), uint64(ev.order), p.idx, ev.digest[:], "")
	transport.Multicast(p.e.ep, p.e.cfg.N, ck)
	p.addCheckpoint(ck)
}

func (p *pillar) handleCheckpoint(from uint32, m *message.PBFTCheckpoint) {
	if m.Replica != from {
		return
	}
	if !p.e.verify(p.tx, &m.Proof, m.Digest(), from) {
		return
	}
	p.addCheckpoint(m)
}

func (p *pillar) addCheckpoint(m *message.PBFTCheckpoint) {
	stable := p.ckpts.Add(m.Order, checkpoint.Announcement[*message.PBFTCheckpoint]{
		Replica: m.Replica, Digest: m.StateDigest, Msg: m,
	})
	if stable != nil {
		p.e.coord.inbox.Put(evStable{stable: stable})
	}
}

func (p *pillar) advance(o timeline.Order) {
	if o <= p.low {
		return
	}
	p.low = o
	for k := range p.slots {
		if k <= o {
			delete(p.slots, k)
		}
	}
	for k := range p.ownCkpt {
		if k <= o {
			delete(p.ownCkpt, k)
		}
	}
}

// handleCollectVC returns the prepared proofs for every prepared
// instance above the last stable checkpoint and suspends ordering.
func (p *pillar) handleCollectVC(ev evCollectVC) {
	var proofs []message.PreparedProof
	for _, s := range p.slots {
		if !s.prepared || s.prePrepare == nil {
			continue
		}
		pp := message.PreparedProof{PrePrepare: s.prePrepare}
		for _, m := range s.prepares {
			pp.Prepares = append(pp.Prepares, m)
		}
		proofs = append(proofs, pp)
	}
	p.aborted = true
	ev.reply <- proofs
}

// handleInstallView enters the new view and processes the re-issued
// pre-prepares.
func (p *pillar) handleInstallView(ev evInstallView) {
	p.aborted = false
	p.view = ev.view
	p.advance(ev.startCkpt)
	for _, pp := range ev.prePrepares {
		if !p.inWindow(pp.Order) {
			continue
		}
		if ev.leader {
			s := p.slot(pp.Order, ev.view)
			if s != nil && s.prePrepare == nil {
				s.prePrepare = pp
				s.batchDigest = pp.BatchDigest()
				p.progress(s)
			}
		} else {
			p.acceptPrePrepare(pp)
		}
	}
}

// handleTick retransmits this replica's message for the oldest
// uncommitted instance and any unstable checkpoint.
func (p *pillar) handleTick() {
	if p.aborted {
		return
	}
	var oldest *pslot
	for _, s := range p.slots {
		if s.committed {
			continue
		}
		if oldest == nil || s.order < oldest.order {
			oldest = s
		}
	}
	if oldest != nil && oldest.prePrepare != nil {
		if p.e.cfg.ProposerOf(oldest.view, oldest.order) == p.e.id {
			p.met.retransmits.Inc()
			p.e.trace(telemetry.EvRetransmit, uint64(oldest.view), uint64(oldest.order), p.idx, "")
			transport.Multicast(p.e.ep, p.e.cfg.N, oldest.prePrepare)
		} else if own, ok := oldest.prepares[p.e.id]; ok {
			p.met.retransmits.Inc()
			p.e.trace(telemetry.EvRetransmit, uint64(oldest.view), uint64(oldest.order), p.idx, "")
			transport.Multicast(p.e.ep, p.e.cfg.N, own)
		}
	}
	for o, ck := range p.ownCkpt {
		last := p.ckpts.Last()
		if last == nil || o > last.Order {
			transport.Multicast(p.e.ep, p.e.cfg.N, ck)
			break
		}
	}
}
