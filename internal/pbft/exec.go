package pbft

import (
	"sync/atomic"

	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
)

// Events delivered to the execution mailbox.
type (
	evExec struct {
		order timeline.Order
		batch []*message.Request
	}
	evInstallState struct {
		ckpt     timeline.Order
		snapshot []byte
		rv       []byte
		done     chan error
	}
)

// execLoop is PBFT's execution stage; identical in role to the one in
// internal/core.
type execLoop struct {
	e     *Engine
	inbox *cop.Mailbox[any]
	x     *statemachine.Executor
	last  atomic.Uint64
}

func newExecLoop(e *Engine, app statemachine.Application) *execLoop {
	return &execLoop{e: e, inbox: cop.NewMailbox[any](), x: statemachine.NewExecutor(app)}
}

func (l *execLoop) lastExecuted() timeline.Order { return timeline.Order(l.last.Load()) }

func (l *execLoop) nextNeeded() timeline.Order { return timeline.Order(l.last.Load()) + 1 }

func (l *execLoop) run() {
	for {
		ev, ok := l.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case evExec:
			if l.x.Buffer(v.order, v.batch) {
				l.drain()
			}
		case evInstallState:
			err := l.x.InstallState(v.ckpt, v.snapshot, v.rv)
			if err == nil {
				l.last.Store(uint64(v.ckpt))
				l.drain()
			}
			v.done <- err
		}
	}
}

func (l *execLoop) drain() {
	progressed := false
	for {
		ex := l.x.Step()
		if ex == nil {
			break
		}
		progressed = true
		l.last.Store(uint64(ex.Order))
		l.e.met.execBatches.Inc()
		l.e.met.execRequests.Add(uint64(len(ex.Replies)))
		l.e.trace(telemetry.EvExec, 0, uint64(ex.Order), 0, "")
		l.reply(ex)
		if l.e.cfg.IsCheckpoint(ex.Order) {
			l.e.coord.inbox.Put(evCkptCandidate{
				order:    ex.Order,
				digest:   l.x.StateDigest(),
				snapshot: l.x.Snapshot(),
				rv:       l.x.ReplyVector(),
			})
		}
	}
	if progressed {
		l.e.noteProgress(l.x.Pending() > 0)
	}
}

func (l *execLoop) reply(ex *statemachine.Executed) {
	for _, r := range ex.Replies {
		rep := &message.Reply{Replica: l.e.id, Client: r.Client, Seq: r.Seq, Result: r.Result}
		d := rep.Digest()
		rep.MAC = l.e.ks.KeyFor(r.Client).Sum(d[:])
		_ = l.e.ep.Send(r.Client, rep)
	}
}

func combineStateDigest(snapshot, rv []byte) crypto.Digest {
	return crypto.Combine(crypto.Hash(snapshot), crypto.Hash(rv))
}
