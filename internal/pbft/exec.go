package pbft

import (
	"sync/atomic"

	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
)

// Events delivered to the execution mailbox.
type (
	evExec struct {
		order timeline.Order
		batch []*message.Request
		// credit is the pillar owed a flow-control slot once execution
		// dequeues this instance (-1 for foreign proposals); see
		// internal/core for why crediting here beats crediting at commit.
		credit int32
	}
	evInstallState struct {
		ckpt     timeline.Order
		snapshot []byte
		rv       []byte
		done     chan error
	}
)

// execLoop is PBFT's execution stage; identical in role to the one in
// internal/core.
type execLoop struct {
	e     *Engine
	inbox *cop.Mailbox[any]
	x     *statemachine.Executor
	last  atomic.Uint64
}

func newExecLoop(e *Engine, app statemachine.Application) *execLoop {
	return &execLoop{e: e, inbox: cop.NewMailbox[any](), x: statemachine.NewExecutor(app)}
}

func (l *execLoop) lastExecuted() timeline.Order { return timeline.Order(l.last.Load()) }

func (l *execLoop) nextNeeded() timeline.Order { return timeline.Order(l.last.Load()) + 1 }

func (l *execLoop) run() {
	for {
		ev, ok := l.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case evExec:
			if v.credit >= 0 {
				l.e.seq.credit(uint32(v.credit), len(v.batch))
			}
			if l.x.Buffer(v.order, v.batch) {
				l.drain()
			}
		case evInstallState:
			err := l.x.InstallState(v.ckpt, v.snapshot, v.rv)
			if err == nil {
				l.last.Store(uint64(v.ckpt))
				l.drain()
			}
			v.done <- err
		}
	}
}

func (l *execLoop) drain() {
	progressed := false
	for {
		ex := l.x.Step()
		if ex == nil {
			break
		}
		progressed = true
		l.last.Store(uint64(ex.Order))
		l.e.met.execBatches.Inc()
		l.e.met.execRequests.Add(uint64(len(ex.Replies)))
		l.e.trace(telemetry.EvExec, 0, uint64(ex.Order), 0, "")
		l.reply(ex)
		if l.e.cfg.IsCheckpoint(ex.Order) {
			// Lazy view: the coordinator pays for the snapshot encode
			// and digests, not the delivery loop (see internal/core).
			l.e.coord.inbox.Put(l.x.CheckpointView())
		}
	}
	if progressed {
		l.e.noteProgress(l.x.Pending() > 0)
	}
}

// reply hands executed replies to the parallel reply stage; MACs and
// sends happen there, off the execution loop.
func (l *execLoop) reply(ex *statemachine.Executed) {
	// Single-reply instances go inline when the shard is quiet; see
	// internal/core.
	if len(ex.Replies) == 1 {
		r := ex.Replies[0]
		l.e.replies.SubmitInline(r.Client, r.Seq, r.Result)
		return
	}
	for _, r := range ex.Replies {
		l.e.replies.Submit(r.Client, r.Seq, r.Result)
	}
}

func combineStateDigest(snapshot, rv []byte) crypto.Digest {
	return crypto.Combine(crypto.Hash(snapshot), crypto.Hash(rv))
}
