package pbft

import (
	"errors"
	"fmt"

	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// engineMetrics holds the PBFT engine's metric handles, resolved once
// in New. All handles are nil-safe, so protocol code records
// unconditionally; the zero value means telemetry is off.
type engineMetrics struct {
	tel *telemetry.Telemetry

	execBatches  *telemetry.Counter
	execRequests *telemetry.Counter
	viewChanges  *telemetry.Counter
	ckptsOwn     *telemetry.Counter
	ckptsStable  *telemetry.Counter
	stateXfers   *telemetry.Counter
}

func newEngineMetrics(tel *telemetry.Telemetry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		tel:          tel,
		execBatches:  tel.Counter("hybster_pbft_exec_batches_total", "batches delivered to the application"),
		execRequests: tel.Counter("hybster_pbft_exec_requests_total", "client requests executed"),
		viewChanges:  tel.Counter("hybster_pbft_view_changes_total", "view changes this replica initiated or joined"),
		ckptsOwn:     tel.Counter("hybster_pbft_checkpoints_total", "own checkpoint announcements"),
		ckptsStable:  tel.Counter("hybster_pbft_checkpoints_stable_total", "checkpoints that reached quorum stability"),
		stateXfers:   tel.Counter("hybster_pbft_state_transfers_total", "state snapshots installed via transfer"),
	}
}

// pillarMetrics holds one pillar's metric handles (pillar-labeled).
type pillarMetrics struct {
	preprepares *telemetry.Counter
	prepares    *telemetry.Counter
	commits     *telemetry.Counter
	committed   *telemetry.Counter
	retransmits *telemetry.Counter
}

func newPillarMetrics(tel *telemetry.Telemetry, idx uint32) pillarMetrics {
	if tel == nil {
		return pillarMetrics{}
	}
	pl := telemetry.L("pillar", fmt.Sprint(idx))
	return pillarMetrics{
		preprepares: tel.Counter("hybster_pbft_preprepares_total", "own proposals multicast (PRE-PREPARE sent)", pl),
		prepares:    tel.Counter("hybster_pbft_prepares_total", "backup acknowledgments multicast (PREPARE sent)", pl),
		commits:     tel.Counter("hybster_pbft_commits_sent_total", "prepared instances acknowledged (COMMIT sent)", pl),
		committed:   tel.Counter("hybster_pbft_committed_total", "instances committed and handed to execution", pl),
		retransmits: tel.Counter("hybster_pbft_retransmits_total", "stalled instances re-multicast by the tick handler", pl),
	}
}

// registerGauges installs the sampled gauges over live engine state;
// re-registration on restart swaps the callbacks so the scrape never
// reads a dead engine.
func (e *Engine) registerGauges(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.GaugeFunc("hybster_pbft_view", "current stable view",
		func() float64 { return float64(e.curView.Load()) })
	tel.GaugeFunc("hybster_pbft_last_executed", "highest executed order number",
		func() float64 { return float64(e.exec.last.Load()) })
	tel.GaugeFunc("hybster_pbft_stable_checkpoint", "last stable checkpoint order",
		func() float64 { return float64(e.stableOrd.Load()) })
	for _, p := range e.pillars {
		p := p
		tel.GaugeFunc("hybster_pbft_pillar_mailbox_depth", "queued pillar events",
			func() float64 { return float64(p.inbox.Len()) },
			telemetry.L("pillar", fmt.Sprint(p.idx)))
	}
	for u := range e.seq.inFlight {
		u := u
		tel.GaugeFunc("hybster_pbft_seq_inflight", "proposals awaiting commit credit",
			func() float64 { return float64(e.seq.inFlight[u].Load()) },
			telemetry.L("pillar", fmt.Sprint(u)))
	}
	tel.GaugeFunc("hybster_pbft_seq_outreqs", "requests dispatched but not yet credited back",
		func() float64 { return float64(e.seq.outReqs.Load()) })
	tel.GaugeFunc("hybster_pbft_seq_queue_depth", "admitted requests awaiting a batch cut",
		func() float64 {
			e.seq.mu.Lock()
			n := len(e.seq.queue)
			e.seq.mu.Unlock()
			return float64(n)
		})
	// Codec marshal-pool stats; process-global (the encoder pool is
	// shared by every engine in the process).
	tel.GaugeFunc("hybster_marshal_total", "messages marshaled (process-wide)",
		func() float64 { total, _ := message.MarshalStats(); return float64(total) })
	tel.GaugeFunc("hybster_marshal_pool_hits", "marshals served by a pooled encoder (process-wide)",
		func() float64 { _, hits := message.MarshalStats(); return float64(hits) })
}

// trace records one protocol event on the engine's tracer (nil-safe).
func (e *Engine) trace(kind telemetry.EventKind, view, slot uint64, pillar uint32, note string) {
	e.met.tel.Trace(kind, view, slot, pillar, note)
}

// traceD records one protocol event carrying the digest the event is
// about — the cross-replica correlation key the auditor compares
// (nil-safe).
func (e *Engine) traceD(kind telemetry.EventKind, view, slot uint64, pillar uint32, digest []byte, note string) {
	e.met.tel.TraceDigest(kind, view, slot, pillar, digest, note)
}

// Telemetry returns the engine's telemetry bundle (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.met.tel }

// Healthz reports process liveness for the ops server.
func (e *Engine) Healthz() error {
	select {
	case <-e.stopped:
		return errors.New("pbft: engine stopped")
	default:
		return nil
	}
}
