package pbft

import (
	"time"

	"hybster/internal/checkpoint"
	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// Events delivered to the coordinator mailbox.
type (
	evCkptCandidate struct {
		order    timeline.Order
		digest   crypto.Digest
		snapshot []byte
		rv       []byte
	}
	evStable struct {
		stable *checkpoint.Stable[*message.PBFTCheckpoint]
	}
	evBehind struct{}
)

type stableCkpt struct {
	order    timeline.Order
	digest   crypto.Digest
	proof    []*message.PBFTCheckpoint
	snapshot []byte
	rv       []byte
}

// coordinator runs PBFT's checkpoint bookkeeping, the PBFT view-change
// protocol (VIEW-CHANGE carrying prepared certificates, NEW-VIEW with
// re-issued PRE-PREPAREs), and state transfer.
type coordinator struct {
	e     *Engine
	tx    *trinx.TrInX // nil for PBFTcop
	inbox *cop.Mailbox[any]

	curView      timeline.View
	pending      bool
	pendingTo    timeline.View
	pendingSince time.Time

	lastStable stableCkpt
	candidates map[timeline.Order]evCkptCandidate

	vcs          map[timeline.View]map[uint32]*message.PBFTViewChange
	ownVC        map[timeline.View]*message.PBFTViewChange
	nvDone       map[timeline.View]bool
	lastNV       *message.PBFTNewView
	lastStateReq time.Time
}

func newCoordinator(e *Engine, tx *trinx.TrInX) *coordinator {
	return &coordinator{
		e:          e,
		tx:         tx,
		inbox:      cop.NewMailbox[any](),
		candidates: make(map[timeline.Order]evCkptCandidate),
		vcs:        make(map[timeline.View]map[uint32]*message.PBFTViewChange),
		ownVC:      make(map[timeline.View]*message.PBFTViewChange),
		nvDone:     make(map[timeline.View]bool),
	}
}

func (c *coordinator) run() {
	stopTick := make(chan struct{})
	go func() {
		t := time.NewTicker(c.e.cfg.ViewChangeTimeout / 4)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.inbox.Put(evTick{})
			case <-stopTick:
				return
			}
		}
	}()
	defer close(stopTick)

	for {
		ev, ok := c.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case inMsg:
			c.handleMessage(v.from, v.msg)
		case *statemachine.CheckpointView:
			c.handleCandidateView(v)
		case evCkptCandidate:
			c.handleCandidate(v)
		case evStable:
			c.handleStable(v.stable)
		case evBehind:
			c.maybeRequestState()
		case evTick:
			c.handleTick()
		}
	}
}

func (c *coordinator) handleMessage(from uint32, m message.Message) {
	switch v := m.(type) {
	case *message.PBFTViewChange:
		c.handleViewChange(from, v)
	case *message.PBFTNewView:
		c.handleNewView(from, v)
	case *message.StateRequest:
		c.handleStateRequest(from, v)
	case *message.StateReply:
		c.handleStateReply(v)
	}
}

// --- checkpoints ---

// handleCandidateView materializes a checkpoint boundary posted by the
// execution stage — snapshot encode and digest hashes run here, off
// the delivery path.
func (c *coordinator) handleCandidateView(v *statemachine.CheckpointView) {
	if v.Order <= c.lastStable.order {
		return
	}
	c.handleCandidate(evCkptCandidate{
		order:    v.Order,
		digest:   v.StateDigest(),
		snapshot: v.Snapshot(),
		rv:       v.ReplyVector(),
	})
}

func (c *coordinator) handleCandidate(ev evCkptCandidate) {
	if ev.order <= c.lastStable.order {
		return
	}
	c.candidates[ev.order] = ev
	for o := range c.candidates {
		if o+2*c.e.cfg.CheckpointInterval <= ev.order {
			delete(c.candidates, o)
		}
	}
	owner := c.e.cfg.CheckpointPillar(ev.order) % uint32(len(c.e.pillars))
	c.e.pillars[owner].inbox.Put(evCkptDue{order: ev.order, digest: ev.digest})
}

func (c *coordinator) handleStable(s *checkpoint.Stable[*message.PBFTCheckpoint]) {
	if s.Order <= c.lastStable.order {
		return
	}
	st := stableCkpt{order: s.Order, digest: s.Digest, proof: s.Proof}
	if cand, ok := c.candidates[s.Order]; ok && cand.digest == s.Digest {
		st.snapshot, st.rv = cand.snapshot, cand.rv
	}
	c.lastStable = st
	c.e.stableOrd.Store(uint64(s.Order))
	c.e.met.ckptsStable.Inc()
	c.e.traceD(telemetry.EvCkptStable, uint64(c.curView), uint64(s.Order), 0, s.Digest[:], "")
	for o := range c.candidates {
		if o <= s.Order {
			delete(c.candidates, o)
		}
	}
	for _, p := range c.e.pillars {
		p.inbox.Put(evAdvance{order: s.Order})
	}
	if st.snapshot == nil && s.Order > c.e.exec.lastExecuted() {
		c.maybeRequestState()
	}
}

// --- state transfer ---

func (c *coordinator) maybeRequestState() {
	now := c.e.now()
	if now.Sub(c.lastStateReq) < time.Second {
		return
	}
	c.lastStateReq = now
	req := &message.StateRequest{Replica: c.e.id, From: c.e.exec.lastExecuted() + 1}
	transport.Multicast(c.e.ep, c.e.cfg.N, req)
}

func (c *coordinator) handleStateRequest(from uint32, req *message.StateRequest) {
	if c.lastStable.snapshot == nil || c.lastStable.order < req.From {
		return
	}
	_ = c.e.ep.Send(from, &message.StateReply{
		Replica:     c.e.id,
		CkptOrder:   c.lastStable.order,
		Snapshot:    c.lastStable.snapshot,
		ReplyVector: c.lastStable.rv,
		// Proof is omitted on the wire for PBFT replies (the message
		// type carries Hybster checkpoints); the digest is re-verified
		// against the stable checkpoint below.
	})
}

func (c *coordinator) handleStateReply(rep *message.StateReply) {
	if rep.CkptOrder <= c.e.exec.lastExecuted() {
		return
	}
	// Accept only state matching a digest we know to be stable: either
	// our own stable checkpoint or — during a view change — the
	// checkpoint claimed by a quorum of view-change messages.
	digest := combineStateDigest(rep.Snapshot, rep.ReplyVector)
	if rep.CkptOrder != c.lastStable.order || digest != c.lastStable.digest {
		return
	}
	done := make(chan error, 1)
	c.e.exec.inbox.Put(evInstallState{ckpt: rep.CkptOrder, snapshot: rep.Snapshot, rv: rep.ReplyVector, done: done})
	select {
	case err := <-done:
		if err != nil {
			return
		}
	case <-c.e.stopped:
		return
	}
	if c.lastStable.snapshot == nil {
		c.lastStable.snapshot, c.lastStable.rv = rep.Snapshot, rep.ReplyVector
	}
	for _, p := range c.e.pillars {
		p.inbox.Put(evAdvance{order: rep.CkptOrder})
	}
	c.e.met.stateXfers.Inc()
	c.e.trace(telemetry.EvStateXfer, uint64(c.curView), uint64(rep.CkptOrder), 0, "")
	c.e.noteProgress(false)
}

// --- view change ---

func (c *coordinator) handleTick() {
	for _, p := range c.e.pillars {
		p.inbox.Put(evTick{})
	}
	now := c.e.now()
	ps := c.e.pendingSince.Load()
	if c.lastStable.order > c.e.exec.lastExecuted() {
		// A stable checkpoint lies beyond what local execution can
		// reach — state transfer is the only way forward, and the
		// one-shot request issued when the checkpoint was adopted can
		// be lost on a faulty link. Keep retrying (rate-limited inside
		// maybeRequestState); without this a lagging replica wedges
		// forever, and if the laggards hold the quorum margin, the
		// whole cluster stops committing.
		c.maybeRequestState()
	}

	if !c.pending {
		if ps != 0 && now.Sub(time.Unix(0, ps)) > c.e.cfg.ViewChangeTimeout {
			c.startViewChange(c.curView + 1)
		} else if ps != 0 && now.Sub(time.Unix(0, ps)) > c.e.cfg.ViewChangeTimeout/8 {
			c.e.seq.proposeNoop(c.curView, c.e.exec.nextNeeded())
		}
	} else {
		if now.Sub(c.pendingSince) > c.e.cfg.ViewChangeTimeout {
			c.pendingSince = now
			c.startViewChange(c.pendingTo + 1)
		}
		if vc, ok := c.ownVC[c.pendingTo]; ok {
			transport.Multicast(c.e.ep, c.e.cfg.N, vc)
		}
	}
}

// startViewChange aborts toward view "to": gather prepared proofs from
// all pillars and multicast the VIEW-CHANGE.
func (c *coordinator) startViewChange(to timeline.View) {
	if to <= c.curView || (c.pending && to <= c.pendingTo) {
		return
	}
	var prepared []message.PreparedProof
	for _, p := range c.e.pillars {
		reply := make(chan []message.PreparedProof, 1)
		p.inbox.Put(evCollectVC{reply: reply})
		select {
		case proofs := <-reply:
			prepared = append(prepared, proofs...)
		case <-c.e.stopped:
			return
		}
	}
	vc := &message.PBFTViewChange{
		Replica:   c.e.id,
		View:      to,
		CkptOrder: c.lastStable.order,
		CkptProof: c.lastStable.proof,
		Prepared:  prepared,
	}
	proof, err := c.e.sign(c.tx, vc.Digest())
	if err != nil {
		return
	}
	vc.Proof = proof
	c.pending = true
	c.pendingTo = to
	c.pendingSince = c.e.now()
	c.e.met.viewChanges.Inc()
	c.e.trace(telemetry.EvViewChange, uint64(to), 0, 0, "")
	c.ownVC = map[timeline.View]*message.PBFTViewChange{to: vc}
	c.storeVC(vc)
	transport.Multicast(c.e.ep, c.e.cfg.N, vc)
	c.maybeEmitNewView(to)
}

func (c *coordinator) storeVC(vc *message.PBFTViewChange) {
	byReplica, ok := c.vcs[vc.View]
	if !ok {
		byReplica = make(map[uint32]*message.PBFTViewChange)
		c.vcs[vc.View] = byReplica
	}
	if _, dup := byReplica[vc.Replica]; !dup {
		byReplica[vc.Replica] = vc
	}
}

// verifyViewChange validates a PBFT VIEW-CHANGE message.
func (c *coordinator) verifyViewChange(vc *message.PBFTViewChange) bool {
	if !c.e.verify(c.tx, &vc.Proof, vc.Digest(), vc.Replica) {
		return false
	}
	// Checkpoint proof: quorum of valid checkpoint messages for the
	// claimed order with one digest.
	if vc.CkptOrder > 0 {
		seen := make(map[uint32]bool)
		var dig crypto.Digest
		for i, ck := range vc.CkptProof {
			if ck.Order != vc.CkptOrder || seen[ck.Replica] {
				return false
			}
			if i == 0 {
				dig = ck.StateDigest
			} else if ck.StateDigest != dig {
				return false
			}
			if !c.e.verify(c.tx, &ck.Proof, ck.Digest(), ck.Replica) {
				return false
			}
			seen[ck.Replica] = true
		}
		if len(seen) < c.e.cfg.Quorum() {
			return false
		}
	}
	// Prepared proofs: PRE-PREPARE plus 2f matching PREPAREs each.
	f := c.e.cfg.F()
	for _, pp := range vc.Prepared {
		ppre := pp.PrePrepare
		if ppre == nil {
			return false
		}
		proposer := c.e.cfg.ProposerOf(ppre.View, ppre.Order)
		if !c.e.verify(c.tx, &ppre.Proof, ppre.Digest(), proposer) {
			return false
		}
		bd := ppre.BatchDigest()
		seen := make(map[uint32]bool)
		for _, prep := range pp.Prepares {
			if prep.View != ppre.View || prep.Order != ppre.Order || prep.BatchDigest != bd {
				return false
			}
			if prep.Replica == proposer || seen[prep.Replica] {
				return false
			}
			if !c.e.verify(c.tx, &prep.Proof, prep.Digest(), prep.Replica) {
				return false
			}
			seen[prep.Replica] = true
		}
		if len(seen) < 2*f {
			return false
		}
	}
	return true
}

func (c *coordinator) handleViewChange(from uint32, vc *message.PBFTViewChange) {
	if vc.Replica != from {
		return
	}
	if vc.View <= c.curView {
		if c.lastNV != nil && c.lastNV.View == c.curView {
			_ = c.e.ep.Send(from, c.lastNV)
		}
		return
	}
	if !c.verifyViewChange(vc) {
		return
	}
	c.storeVC(vc)

	// Join once f+1 replicas abort (PBFT's liveness rule).
	if len(c.vcs[vc.View]) > c.e.cfg.F() && (!c.pending || c.pendingTo < vc.View) {
		c.startViewChange(vc.View)
	}
	if c.e.cfg.LeaderOf(vc.View) == c.e.id {
		c.maybeEmitNewView(vc.View)
	}
}

// computeTransfer derives the new view's starting checkpoint and
// re-proposals from a quorum of view changes: for each order the
// prepared proof with the highest view wins; gaps become no-ops.
func computeTransfer(vcSet map[uint32]*message.PBFTViewChange) (timeline.Order, []*message.PrePrepare) {
	var startCkpt timeline.Order
	best := make(map[timeline.Order]*message.PrePrepare)
	for _, vc := range vcSet {
		if vc.CkptOrder > startCkpt {
			startCkpt = vc.CkptOrder
		}
		for _, pp := range vc.Prepared {
			cur, ok := best[pp.PrePrepare.Order]
			if !ok || pp.PrePrepare.View > cur.View {
				best[pp.PrePrepare.Order] = pp.PrePrepare
			}
		}
	}
	var maxO timeline.Order
	for o := range best {
		if o > maxO {
			maxO = o
		}
	}
	var out []*message.PrePrepare
	for o := startCkpt + 1; o <= maxO; o++ {
		var reqs []*message.Request
		if pp, ok := best[o]; ok {
			reqs = pp.Requests
		}
		out = append(out, &message.PrePrepare{Order: o, Requests: reqs})
	}
	return startCkpt, out
}

func (c *coordinator) maybeEmitNewView(w timeline.View) {
	if c.nvDone[w] || c.e.cfg.LeaderOf(w) != c.e.id {
		return
	}
	if !c.pending || c.pendingTo != w {
		return
	}
	vcSet := c.vcs[w]
	if len(vcSet) < c.e.cfg.Quorum() {
		return
	}
	startCkpt, templates := computeTransfer(vcSet)
	if startCkpt > c.lastStable.order {
		c.maybeRequestState()
		return
	}
	newPPs := make([]*message.PrePrepare, 0, len(templates))
	for _, t := range templates {
		pp := &message.PrePrepare{View: w, Order: t.Order, Requests: t.Requests}
		proof, err := c.e.sign(c.tx, pp.Digest())
		if err != nil {
			return
		}
		pp.Proof = proof
		newPPs = append(newPPs, pp)
	}
	nv := &message.PBFTNewView{View: w, PrePrepares: newPPs}
	for _, vc := range vcSet {
		nv.VCs = append(nv.VCs, vc)
	}
	proof, err := c.e.sign(c.tx, nv.Digest())
	if err != nil {
		return
	}
	nv.Proof = proof
	transport.Multicast(c.e.ep, c.e.cfg.N, nv)
	c.nvDone[w] = true
	c.lastNV = nv
	c.install(w, startCkpt, newPPs, true)
}

func (c *coordinator) handleNewView(from uint32, nv *message.PBFTNewView) {
	w := nv.View
	if w <= c.curView || from != c.e.cfg.LeaderOf(w) {
		return
	}
	if !c.e.verify(c.tx, &nv.Proof, nv.Digest(), from) {
		return
	}
	vcSet := make(map[uint32]*message.PBFTViewChange)
	for _, vc := range nv.VCs {
		if vc.View != w || !c.verifyViewChange(vc) {
			return
		}
		vcSet[vc.Replica] = vc
	}
	if len(vcSet) < c.e.cfg.Quorum() {
		return
	}
	startCkpt, templates := computeTransfer(vcSet)
	if len(templates) != len(nv.PrePrepares) {
		return
	}
	for i, t := range templates {
		pp := nv.PrePrepares[i]
		if pp.View != w || pp.Order != t.Order ||
			message.BatchDigest(pp.Requests) != message.BatchDigest(t.Requests) {
			return
		}
		if !c.e.verify(c.tx, &pp.Proof, pp.Digest(), from) {
			return
		}
	}
	c.lastNV = nv
	c.install(w, startCkpt, nv.PrePrepares, false)
}

func (c *coordinator) install(w timeline.View, startCkpt timeline.Order, pps []*message.PrePrepare, leader bool) {
	c.curView = w
	c.e.curView.Store(uint64(w))
	c.e.trace(telemetry.EvNewView, uint64(w), uint64(startCkpt), 0, "")
	c.pending = false
	c.pendingTo = 0

	if startCkpt > c.lastStable.order {
		// Adopt the quorum's checkpoint claim; the state itself comes
		// through state transfer.
		for _, vcSet := range c.vcs {
			for _, vc := range vcSet {
				if vc.CkptOrder == startCkpt && len(vc.CkptProof) > 0 {
					c.lastStable = stableCkpt{
						order: startCkpt, digest: vc.CkptProof[0].StateDigest, proof: vc.CkptProof,
					}
					c.e.stableOrd.Store(uint64(startCkpt))
				}
			}
		}
		if startCkpt > c.e.exec.lastExecuted() {
			c.maybeRequestState()
		}
	}

	pillars := uint32(len(c.e.pillars))
	byPillar := make([][]*message.PrePrepare, pillars)
	var maxOrder timeline.Order = startCkpt
	for _, pp := range pps {
		u := c.e.cfg.PillarOf(pp.Order) % pillars
		byPillar[u] = append(byPillar[u], pp)
		if pp.Order > maxOrder {
			maxOrder = pp.Order
		}
	}
	for u, p := range c.e.pillars {
		p.inbox.Put(evInstallView{view: w, startCkpt: startCkpt, prePrepares: byPillar[u], leader: leader})
	}
	for v := range c.vcs {
		if v <= w {
			delete(c.vcs, v)
		}
	}
	for v := range c.nvDone {
		if v < w {
			delete(c.nvDone, v)
		}
	}
	c.e.seq.resetForView(w, maxOrder)
	c.e.noteProgress(false)
}
