package pbft

import (
	"testing"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

func newTestEngine(t *testing.T, proto config.Protocol, id uint32) *Engine {
	t.Helper()
	cfg := config.Default(proto)
	net := transport.NewNetwork(transport.LinkProfile{}, 1)
	t.Cleanup(net.Close)
	e, err := New(Options{
		Config:      cfg,
		ID:          id,
		Endpoint:    net.Endpoint(id),
		Application: counter.New(),
		Platform:    enclave.NewPlatform("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range e.pillars {
			if p.tx != nil {
				p.tx.Destroy()
			}
		}
		if e.coord.tx != nil {
			e.coord.tx.Destroy()
		}
	})
	return e
}

func TestSignVerifyBothVariants(t *testing.T) {
	for _, proto := range []config.Protocol{config.PBFTcop, config.HybridPBFT} {
		signer := newTestEngine(t, proto, 1)
		verifier := newTestEngine(t, proto, 2)
		d := crypto.Hash([]byte("m"))
		proof, err := signer.sign(signer.pillars[0].tx, d)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !verifier.verify(verifier.pillars[0].tx, &proof, d, 1) {
			t.Fatalf("%v: valid proof rejected", proto)
		}
		if verifier.verify(verifier.pillars[0].tx, &proof, crypto.Hash([]byte("other")), 1) {
			t.Fatalf("%v: wrong digest accepted", proto)
		}
		if verifier.verify(verifier.pillars[0].tx, &proof, d, 3) {
			t.Fatalf("%v: wrong claimant accepted", proto)
		}
	}
}

// buildPreparedProof constructs a valid prepared certificate for one
// instance using real engines for every replica.
func buildPreparedProof(t *testing.T, engines []*Engine, v timeline.View, o timeline.Order, payload string) message.PreparedProof {
	t.Helper()
	proposer := engines[0].cfg.ProposerOf(v, o)
	pp := &message.PrePrepare{View: v, Order: o,
		Requests: []*message.Request{{Client: crypto.ClientIDBase, Seq: 1, Payload: []byte(payload)}}}
	proof, err := engines[proposer].sign(engines[proposer].pillars[0].tx, pp.Digest())
	if err != nil {
		t.Fatal(err)
	}
	pp.Proof = proof

	out := message.PreparedProof{PrePrepare: pp}
	bd := pp.BatchDigest()
	for r := uint32(0); int(r) < len(engines); r++ {
		if r == proposer {
			continue
		}
		prep := &message.PBFTPrepare{View: v, Order: o, Replica: r, BatchDigest: bd}
		pf, err := engines[r].sign(engines[r].pillars[0].tx, prep.Digest())
		if err != nil {
			t.Fatal(err)
		}
		prep.Proof = pf
		out.Prepares = append(out.Prepares, prep)
	}
	return out
}

func TestVerifyViewChangePreparedProofs(t *testing.T) {
	engines := make([]*Engine, 4)
	for i := range engines {
		engines[i] = newTestEngine(t, config.PBFTcop, uint32(i))
	}
	verifier := engines[3]

	proof := buildPreparedProof(t, engines, 0, 1, "x")
	vc := &message.PBFTViewChange{Replica: 1, View: 1, Prepared: []message.PreparedProof{proof}}
	pf, err := engines[1].sign(engines[1].coord.tx, vc.Digest())
	if err != nil {
		t.Fatal(err)
	}
	vc.Proof = pf
	if !verifier.coord.verifyViewChange(vc) {
		t.Fatal("valid view change rejected")
	}

	// Too few prepares: 2f = 2 required.
	short := buildPreparedProof(t, engines, 0, 2, "y")
	short.Prepares = short.Prepares[:1]
	vc2 := &message.PBFTViewChange{Replica: 1, View: 1, Prepared: []message.PreparedProof{short}}
	pf2, err := engines[1].sign(engines[1].coord.tx, vc2.Digest())
	if err != nil {
		t.Fatal(err)
	}
	vc2.Proof = pf2
	if verifier.coord.verifyViewChange(vc2) {
		t.Fatal("under-quorum prepared proof accepted")
	}

	// Digest mismatch inside the proof.
	bad := buildPreparedProof(t, engines, 0, 3, "z")
	bad.Prepares[0].BatchDigest = crypto.Hash([]byte("tampered"))
	vc3 := &message.PBFTViewChange{Replica: 1, View: 1, Prepared: []message.PreparedProof{bad}}
	pf3, err := engines[1].sign(engines[1].coord.tx, vc3.Digest())
	if err != nil {
		t.Fatal(err)
	}
	vc3.Proof = pf3
	if verifier.coord.verifyViewChange(vc3) {
		t.Fatal("tampered prepared proof accepted")
	}
}

func TestPBFTComputeTransfer(t *testing.T) {
	engines := make([]*Engine, 4)
	for i := range engines {
		engines[i] = newTestEngine(t, config.PBFTcop, uint32(i))
	}
	oldProof := buildPreparedProof(t, engines, 0, 2, "old")
	// Same order prepared again in a later view wins.
	newProof := buildPreparedProof(t, engines, 1, 2, "new")
	farProof := buildPreparedProof(t, engines, 0, 4, "far")

	vcSet := map[uint32]*message.PBFTViewChange{
		0: {Replica: 0, View: 2, Prepared: []message.PreparedProof{oldProof}},
		1: {Replica: 1, View: 2, Prepared: []message.PreparedProof{newProof, farProof}},
		2: {Replica: 2, View: 2, CkptOrder: 0},
	}
	start, pps := computeTransfer(vcSet)
	if start != 0 || len(pps) != 4 {
		t.Fatalf("start=%d len=%d", start, len(pps))
	}
	if string(pps[1].Requests[0].Payload) != "new" {
		t.Fatalf("order 2 payload %q", pps[1].Requests[0].Payload)
	}
	if pps[0].Requests != nil || pps[2].Requests != nil {
		t.Fatal("gap orders not no-ops")
	}
	if pps[3].Order != 4 {
		t.Fatalf("orders misaligned: %v", pps[3].Order)
	}
}

func TestPSlotLifecycle(t *testing.T) {
	e := newTestEngine(t, config.PBFTcop, 0)
	p := e.pillars[0]

	s := p.slot(1, 0)
	if s == nil {
		t.Fatal("slot not created")
	}
	s.executed = true
	// A view bump resets protocol state but keeps executed.
	s2 := p.slot(1, 1)
	if s2 == s || !s2.executed || s2.prePrepare != nil {
		t.Fatalf("view reset wrong: %+v", s2)
	}
	// Stale view returns nil.
	if p.slot(1, 0) != nil {
		t.Fatal("stale view slot returned")
	}
	// Out of window.
	if p.slot(p.high()+1, 1) != nil {
		t.Fatal("slot above high water mark")
	}
	p.advance(10)
	if p.slot(5, 1) != nil {
		t.Fatal("slot below low water mark after advance")
	}
	if len(p.slots) != 0 {
		t.Fatal("advance did not garbage collect")
	}
}

func TestProgressQuorums(t *testing.T) {
	e := newTestEngine(t, config.PBFTcop, 3) // backup
	p := e.pillars[0]
	s := p.slot(1, 0)

	// 2f prepares without a pre-prepare: not prepared.
	s.prepares[1] = &message.PBFTPrepare{}
	s.prepares[2] = &message.PBFTPrepare{}
	p.progress(s)
	if s.prepared {
		t.Fatal("prepared without pre-prepare")
	}
	s.prePrepare = &message.PrePrepare{View: 0, Order: 1}
	s.batchDigest = s.prePrepare.BatchDigest()
	p.progress(s)
	if !s.prepared || !s.sentCommit {
		t.Fatalf("not prepared with pre-prepare + 2f prepares: %+v", s)
	}
	// Committed requires 2f+1 commits; own commit was just recorded.
	if s.committed {
		t.Fatal("committed too early")
	}
	s.commits[0] = true
	s.commits[1] = true
	p.progress(s)
	if !s.committed || !s.executed {
		t.Fatal("2f+1 commits did not commit/execute")
	}
}
