package pbft_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/statemachine"
)

func testConfig(proto config.Protocol, pillars int) config.Config {
	cfg := config.Default(proto)
	cfg.Pillars = pillars
	cfg.CheckpointInterval = 16
	cfg.WindowSize = 64
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	return cfg
}

func newCounterCluster(t *testing.T, cfg config.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewPBFT(cluster.Options{Config: cfg, Seed: 1},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func invokeN(t *testing.T, c *cluster.Cluster, clients, perClient int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		cl, err := c.NewClient(800 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if _, err := cl.Invoke([]byte{1}, false); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", cl.ID(), i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPBFTBasicOrdering(t *testing.T) {
	c := newCounterCluster(t, testConfig(config.PBFTcop, 1))
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 15; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

func TestPBFTParallelPillars(t *testing.T) {
	c := newCounterCluster(t, testConfig(config.PBFTcop, 3))
	invokeN(t, c, 6, 15)
}

func TestHybridPBFTOrdering(t *testing.T) {
	c := newCounterCluster(t, testConfig(config.HybridPBFT, 2))
	invokeN(t, c, 4, 15)
}

func TestPBFTCheckpointsAdvance(t *testing.T) {
	cfg := testConfig(config.PBFTcop, 2)
	cfg.CheckpointInterval = 8
	cfg.WindowSize = 32
	c := newCounterCluster(t, cfg)
	invokeN(t, c, 4, 40)
}

func TestPBFTRotation(t *testing.T) {
	cfg := testConfig(config.PBFTcop, 2)
	cfg.RotateLeader = true
	c := newCounterCluster(t, cfg)
	invokeN(t, c, 4, 15)
}

func TestPBFTLeaderCrashViewChange(t *testing.T) {
	cfg := testConfig(config.PBFTcop, 1)
	c := newCounterCluster(t, cfg)
	cl, err := c.NewClient(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	c.Crash(0)

	for i := 6; i <= 12; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d after leader crash: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

func TestHybridPBFTLeaderCrash(t *testing.T) {
	cfg := testConfig(config.HybridPBFT, 2)
	c := newCounterCluster(t, cfg)
	invokeN(t, c, 2, 5)

	c.Crash(0)

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d after crash: %v", i, err)
		}
	}
}

func TestPBFTToleratesOneCrashedBackup(t *testing.T) {
	c := newCounterCluster(t, testConfig(config.PBFTcop, 1))
	invokeN(t, c, 2, 5)
	c.Crash(3) // a backup; 3 of 4 replicas remain — enough for 2f+1
	invokeN(t, c, 2, 10)
}

func TestPBFTIsolatedReplicaCatchesUp(t *testing.T) {
	cfg := testConfig(config.PBFTcop, 1)
	cfg.CheckpointInterval = 4
	cfg.WindowSize = 8
	c := newCounterCluster(t, cfg)

	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	c.Isolate(3)
	for i := 0; i < 30; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d during isolation: %v", i, err)
		}
	}
	target := c.Replica(0).LastExecuted()

	c.HealAll()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Replica(3).LastExecuted() >= target {
			return
		}
		_, _ = cl.Invoke([]byte{1}, false)
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica 3 stuck at %d, want >= %d", c.Replica(3).LastExecuted(), target)
}
