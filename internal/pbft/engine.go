// Package pbft implements the baseline the paper evaluates Hybster
// against (§6): Castro & Liskov's PBFT restructured with the
// consensus-oriented parallelization scheme — PBFTcop — plus the
// HybridPBFT configuration that replaces MAC authenticators with TrInX
// trusted MACs (§5.1, "Trusted MAC Certificates").
//
// PBFT runs on the pure Byzantine fault model: n = 3f+1 replicas,
// three ordering phases (PRE-PREPARE, PREPARE, COMMIT), quorums of
// 2f+1. Unlike Hybster, no trusted counter constrains processing
// order, so pillars can certify instances of their class in any order;
// the parallelization only partitions the instance space.
//
// The structure mirrors internal/core: pillars + execution stage +
// coordinator (checkpoint stability, view changes, state transfer).
package pbft

import (
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/reply"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
	"hybster/internal/verify"
)

// counterM is the TrInX counter used for trusted MACs in the
// HybridPBFT configuration.
const counterM uint32 = 0

// Options bundle the dependencies of an Engine.
type Options struct {
	Config      config.Config
	ID          uint32
	Endpoint    transport.Endpoint
	Application statemachine.Application
	// Platform hosts TrInX enclaves; required for HybridPBFT, unused
	// by PBFTcop.
	Platform    *enclave.Platform
	EnclaveCost enclave.CostModel
	Now         func() time.Time
	// Telemetry receives this replica's metrics and trace events; nil
	// disables instrumentation.
	Telemetry *telemetry.Telemetry
}

// Engine is one PBFT replica.
type Engine struct {
	cfg    config.Config
	id     uint32
	ep     transport.Endpoint
	ks     *crypto.KeyStore
	now    func() time.Time
	hybrid bool // true for HybridPBFT (trusted MACs)

	pillars []*pillar
	exec    *execLoop
	coord   *coordinator
	seq     *sequencer
	replies *reply.Stage
	vpool   *verify.Pool
	vord    *verify.Ordered
	met     engineMetrics

	curView      atomic.Uint64
	pendingSince atomic.Int64
	// stableOrd mirrors the coordinator's last stable checkpoint order
	// for lock-free gauge sampling (the auditor's checkpoint-lag check).
	stableOrd atomic.Uint64

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// New assembles a PBFT replica.
func New(opts Options) (*Engine, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	key := crypto.NewKeyFromSeed(opts.Config.KeySeed)
	e := &Engine{
		cfg:     opts.Config,
		id:      opts.ID,
		ep:      opts.Endpoint,
		ks:      crypto.NewKeyStore(opts.ID, key),
		now:     opts.Now,
		hybrid:  opts.Config.Protocol == config.HybridPBFT,
		met:     newEngineMetrics(opts.Telemetry),
		stopped: make(chan struct{}),
	}
	e.exec = newExecLoop(e, opts.Application)
	var coordTx *trinx.TrInX
	if e.hybrid {
		coordTx = trinx.New(opts.Platform, trinx.MakeInstanceID(opts.ID, 0xffff), 1, key, opts.EnclaveCost).Instrument(opts.Telemetry)
	}
	e.coord = newCoordinator(e, coordTx)
	e.pillars = make([]*pillar, opts.Config.Pillars)
	for u := range e.pillars {
		var tx *trinx.TrInX
		if e.hybrid {
			tx = trinx.New(opts.Platform, trinx.MakeInstanceID(opts.ID, uint32(u)), 1, key, opts.EnclaveCost).Instrument(opts.Telemetry)
		}
		e.pillars[u] = newPillar(e, uint32(u), tx)
	}
	e.seq = newSequencer(e)
	e.replies = reply.NewStage(e.id, e.ks, e.ep, 0, opts.Telemetry)
	e.vpool = verify.NewPool(e.ks, 0, opts.Telemetry)
	e.vord = verify.NewOrdered(e.vpool)
	e.registerGauges(opts.Telemetry)
	return e, nil
}

// ID returns the replica ID.
func (e *Engine) ID() uint32 { return e.id }

// View returns the current stable view.
func (e *Engine) View() timeline.View { return timeline.View(e.curView.Load()) }

// LastExecuted returns the highest executed order number.
func (e *Engine) LastExecuted() timeline.Order { return e.exec.lastExecuted() }

// Start launches the replica.
func (e *Engine) Start() {
	e.ep.Handle(e.route)
	for _, p := range e.pillars {
		e.wg.Add(1)
		go func(p *pillar) { defer e.wg.Done(); p.run() }(p)
	}
	e.wg.Add(2)
	go func() { defer e.wg.Done(); e.exec.run() }()
	go func() { defer e.wg.Done(); e.coord.run() }()
}

// Stop shuts the replica down.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		close(e.stopped)
		_ = e.ep.Close()
		e.vpool.Close()
		for _, p := range e.pillars {
			p.inbox.Close()
		}
		e.exec.inbox.Close()
		e.coord.inbox.Close()
		e.wg.Wait()
		// The exec loop is done submitting; drain outstanding replies.
		e.replies.Close()
		for _, p := range e.pillars {
			if p.tx != nil {
				p.tx.Destroy()
			}
		}
		if e.coord.tx != nil {
			e.coord.tx.Destroy()
		}
	})
}

// route dispatches inbound messages; client-authenticator checks run
// on the parallel verify stage before the event reaches a pillar, and
// every message flows through the stage's ordered front so events
// reach the mailboxes in exact arrival order.
func (e *Engine) route(from uint32, m message.Message) {
	switch v := m.(type) {
	case *message.Request:
		e.vord.Submit(from, []*message.Request{v}, func(ok bool) {
			if ok {
				e.seq.admitVerified(v)
			}
		})
	case *message.PrePrepare:
		if len(v.Requests) == 0 {
			e.vord.Pass(from, func() { e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m}) })
			return
		}
		e.vord.Submit(from, v.Requests, func(ok bool) {
			if ok {
				e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m, verified: true})
			}
		})
	case *message.PBFTPrepare:
		e.vord.Pass(from, func() { e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m}) })
	case *message.PBFTCommit:
		e.vord.Pass(from, func() { e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m}) })
	case *message.PBFTCheckpoint:
		e.vord.Pass(from, func() {
			e.pillars[e.cfg.CheckpointPillar(v.Order)%uint32(len(e.pillars))].inbox.Put(inMsg{from: from, msg: m})
		})
	case *message.PBFTViewChange, *message.PBFTNewView,
		*message.StateRequest, *message.StateReply:
		e.vord.Pass(from, func() { e.coord.inbox.Put(inMsg{from: from, msg: m}) })
	}
}

func (e *Engine) pillarFor(o timeline.Order) *pillar {
	return e.pillars[e.cfg.PillarOf(o)%uint32(len(e.pillars))]
}

func (e *Engine) noteWork() {
	if e.pendingSince.Load() == 0 {
		e.pendingSince.CompareAndSwap(0, e.now().UnixNano())
	}
}

func (e *Engine) noteProgress(stillPending bool) {
	if stillPending {
		e.pendingSince.Store(e.now().UnixNano())
	} else {
		e.pendingSince.Store(0)
	}
}

// inMsg is an inbound protocol message tagged with its sender;
// verified marks client authenticators already checked by the parallel
// verify stage.
type inMsg struct {
	from     uint32
	msg      message.Message
	verified bool
}

// sign authenticates digest d for the whole group: an authenticator
// for PBFTcop, a trusted MAC for HybridPBFT. tx is the calling
// pillar's TrInX instance (nil for PBFTcop).
func (e *Engine) sign(tx *trinx.TrInX, d crypto.Digest) (message.Proof, error) {
	if !e.hybrid {
		return message.Proof{Auth: crypto.NewAuthenticator(e.ks, d, e.cfg.N)}, nil
	}
	cert, err := tx.CreateTrustedMAC(counterM, d)
	if err != nil {
		return message.Proof{}, err
	}
	return message.Proof{TCert: cert}, nil
}

// verify checks a proof over digest d claimed by replica "claimed".
func (e *Engine) verify(tx *trinx.TrInX, p *message.Proof, d crypto.Digest, claimed uint32) bool {
	if e.hybrid {
		if !p.HasTCert() || p.TCert.Issuer.Replica() != claimed ||
			p.TCert.Kind != trinx.Continuing || p.TCert.Value != p.TCert.Prev {
			return false
		}
		return tx.Verify(p.TCert, d) == nil
	}
	if p.Auth.Sender != claimed {
		return false
	}
	return crypto.VerifyAuthenticator(e.ks, p.Auth, d)
}

// --- sequencer (same scheme as core's) --------------------------------------

type sequencer struct {
	e *Engine

	mu    sync.Mutex
	queue []*message.Request
	next  timeline.Order

	// inFlight counts proposals awaiting commit, per pillar; credits
	// decrement atomically, never taking mu.
	inFlight []atomic.Int32

	// pumpGate single-flights dispatch: 0 idle, 1 pumping, 2 pumping
	// with a re-scan owed.
	pumpGate atomic.Int32

	// Partial-batch hold under saturated load; see the core sequencer
	// for the scheme (outReqs is the dispatched-but-uncredited request
	// population, flushNow is the timer's liveness escape).
	outReqs   atomic.Int64
	holdArmed bool
	holdTimer *time.Timer
	flushNow  atomic.Bool
}

const (
	maxInFlightPerPillar = 4
	batchHold            = 2 * time.Millisecond
)

// holdWorthwhile mirrors the core sequencer's load gate: hold a
// partial batch only when the queued plus in-pipeline requests could
// fill it.
func (s *sequencer) holdWorthwhile(n int) bool {
	return n+int(s.outReqs.Load()) >= s.e.cfg.BatchSize
}

func newSequencer(e *Engine) *sequencer {
	s := &sequencer{e: e, inFlight: make([]atomic.Int32, e.cfg.Pillars)}
	s.next = s.firstSlot(0, 0)
	s.holdTimer = time.AfterFunc(batchHold, s.flushHeld)
	s.holdTimer.Stop()
	return s
}

func (s *sequencer) flushHeld() {
	s.mu.Lock()
	s.holdArmed = false
	s.mu.Unlock()
	s.flushNow.Store(true)
	s.pump()
}

func (s *sequencer) firstSlot(v timeline.View, after timeline.Order) timeline.Order {
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		return after + 1
	}
	o := after + 1
	for s.e.cfg.ProposerOf(v, o) != s.e.id {
		o++
	}
	return o
}

func (s *sequencer) nextSlot(v timeline.View, o timeline.Order) timeline.Order {
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		return o + 1
	}
	n := o + 1
	for s.e.cfg.ProposerOf(v, n) != s.e.id {
		n++
	}
	return n
}

// admit verifies and queues a client request; the engine's route
// normally verifies on the parallel stage and calls admitVerified.
func (s *sequencer) admit(r *message.Request) {
	if !crypto.VerifyAuthenticator(s.e.ks, r.Auth, r.Digest()) {
		return
	}
	s.admitVerified(r)
}

func (s *sequencer) admitVerified(r *message.Request) {
	s.e.noteWork()
	v := s.e.View()
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		_ = s.e.ep.Send(s.e.cfg.LeaderOf(v), r)
		return
	}
	s.mu.Lock()
	s.queue = append(s.queue, r)
	s.mu.Unlock()
	s.pump()
}

// pump single-flights the dispatch loop through pumpGate; see the
// core sequencer for the scheme's rationale.
func (s *sequencer) pump() {
	for {
		if s.pumpGate.CompareAndSwap(0, 1) {
			for {
				s.dispatch()
				if s.pumpGate.CompareAndSwap(1, 0) {
					return
				}
				s.pumpGate.Store(1)
			}
		}
		if s.pumpGate.CompareAndSwap(1, 2) || s.pumpGate.Load() == 2 {
			return
		}
	}
}

func (s *sequencer) dispatch() {
	v := s.e.View()
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		s.mu.Lock()
		queued := s.queue
		s.queue = nil
		s.mu.Unlock()
		for _, r := range queued {
			_ = s.e.ep.Send(s.e.cfg.LeaderOf(v), r)
		}
		return
	}
	for {
		s.mu.Lock()
		n := len(s.queue)
		if n == 0 {
			s.mu.Unlock()
			return
		}
		o := s.next
		u := s.e.cfg.PillarOf(o) % uint32(len(s.e.pillars))
		busy := int(s.inFlight[u].Load())
		if busy >= maxInFlightPerPillar {
			s.mu.Unlock()
			return
		}
		if n < s.e.cfg.BatchSize && !s.flushNow.Load() &&
			(busy > 0 || s.holdWorthwhile(n)) {
			// Hold the partial batch so it fills instead of fragmenting
			// (same policy as core's sequencer). The timer is armed on
			// both the busy and the idle branch: liveness must never
			// depend on an in-flight instance's credit returning, since
			// under faults that instance can stall indefinitely.
			if !s.holdArmed {
				s.holdArmed = true
				s.holdTimer.Reset(batchHold)
			}
			s.mu.Unlock()
			return
		}
		s.flushNow.Store(false)
		var batch []*message.Request
		if n <= s.e.cfg.BatchSize {
			batch = s.queue
			s.queue = nil
		} else {
			n = s.e.cfg.BatchSize
			batch = s.queue[:n:n]
			s.queue = s.queue[n:]
		}
		s.next = s.nextSlot(v, o)
		s.inFlight[u].Add(1)
		s.outReqs.Add(int64(len(batch)))
		if s.holdArmed {
			s.holdArmed = false
			s.holdTimer.Stop()
		}
		s.mu.Unlock()

		s.e.pillars[u].inbox.Put(evPropose{view: v, order: o, batch: batch})
	}
}

// credit returns an in-flight slot for pillar u and subtracts the
// instance's reqs from the outstanding population, both clamped at
// zero; it never takes the queue mutex.
func (s *sequencer) credit(u uint32, reqs int) {
	c := &s.inFlight[u]
	for {
		v := c.Load()
		if v <= 0 {
			break
		}
		if c.CompareAndSwap(v, v-1) {
			break
		}
	}
	for {
		v := s.outReqs.Load()
		nv := v - int64(reqs)
		if nv < 0 {
			nv = 0
		}
		if v <= 0 || s.outReqs.CompareAndSwap(v, nv) {
			break
		}
	}
	s.pump()
}

func (s *sequencer) proposeNoop(v timeline.View, o timeline.Order) {
	if s.e.cfg.ProposerOf(v, o) != s.e.id {
		return
	}
	s.mu.Lock()
	if o < s.next {
		s.mu.Unlock()
		return
	}
	for s.next <= o {
		s.next = s.nextSlot(v, s.next)
	}
	s.mu.Unlock()
	u := s.e.cfg.PillarOf(o) % uint32(len(s.e.pillars))
	s.e.pillars[u].inbox.Put(evPropose{view: v, order: o, batch: nil})
}

func (s *sequencer) resetForView(v timeline.View, after timeline.Order) {
	s.mu.Lock()
	s.next = s.firstSlot(v, after)
	for i := range s.inFlight {
		s.inFlight[i].Store(0)
	}
	s.outReqs.Store(0)
	s.mu.Unlock()
	s.pump()
}
