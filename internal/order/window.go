// Package order implements the ordering window of a pillar: the log of
// ongoing consensus instances between the low and high water marks
// (§5.2.2, "Strict Ordering Window"). Each slot accumulates the PREPARE
// and COMMIT messages of one instance until a committed certificate —
// a quorum of acknowledgments including the leader's PREPARE — is
// complete. Advancing a stable checkpoint slides the window and garbage
// collects older slots, which bounds memory; Hybster adheres to this
// window even during view changes.
//
// A Window is confined to a single pillar goroutine and therefore
// performs no locking.
package order

import (
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
)

// Slot tracks one consensus instance within the window.
type Slot struct {
	// Order is the instance's order number.
	Order timeline.Order
	// View is the view the slot's messages belong to. Messages from
	// older views are discarded when the slot moves to a newer view.
	View timeline.View
	// Prepare is the leader's proposal, once received (or sent).
	Prepare *message.Prepare
	// BatchDigest caches the digest of the proposed batch.
	BatchDigest crypto.Digest
	// acks records which replicas acknowledged the instance in View:
	// the proposer through its PREPARE, followers through COMMITs.
	acks map[uint32]bool
	// Committed is set once a committed certificate is complete.
	Committed bool
	// Executed is set once the execution stage delivered the batch.
	Executed bool
}

// Acks returns the number of distinct acknowledgments collected.
func (s *Slot) Acks() int { return len(s.acks) }

// AddOwnAck records the local replica's acknowledgment (its COMMIT)
// directly, without a message. Callers follow up with Window.Refresh.
func (s *Slot) AddOwnAck(r uint32) { s.acks[r] = true }

// HasAck reports whether replica r acknowledged the instance.
func (s *Slot) HasAck(r uint32) bool { return s.acks[r] }

// reset clears per-view state when the slot transitions to a new view.
func (s *Slot) reset(v timeline.View) {
	s.View = v
	s.Prepare = nil
	s.BatchDigest = crypto.Digest{}
	s.acks = make(map[uint32]bool)
	s.Committed = false
	// Executed survives: execution is permanent across views.
}

// Window is the sliding ordering window of one pillar.
type Window struct {
	low    timeline.Order // last stable checkpoint; instances <= low are done
	size   timeline.Order // high water mark = low + size
	quorum int
	slots  map[timeline.Order]*Slot
}

// NewWindow creates a window of the given span and quorum size
// starting at low water mark 0.
func NewWindow(size timeline.Order, quorum int) *Window {
	if size == 0 || quorum < 1 {
		panic(fmt.Sprintf("order: invalid window size=%d quorum=%d", size, quorum))
	}
	return &Window{size: size, quorum: quorum, slots: make(map[timeline.Order]*Slot)}
}

// Low returns the low water mark (the last stable checkpoint order).
func (w *Window) Low() timeline.Order { return w.low }

// High returns the high water mark; replicas do not participate in
// instances above it.
func (w *Window) High() timeline.Order { return w.low + w.size }

// InWindow reports whether order o lies inside the active window
// (low, high].
func (w *Window) InWindow(o timeline.Order) bool {
	return o > w.low && o <= w.High()
}

// Slot returns the slot of instance o in view v, creating it on first
// access. If the slot currently holds state of an older view, it is
// reset for v (messages of aborted views are obsolete; re-proposals in
// the new view replace them). Accessing a slot with an older view than
// recorded returns nil — the caller's message is stale.
func (w *Window) Slot(o timeline.Order, v timeline.View) *Slot {
	if !w.InWindow(o) {
		return nil
	}
	s, ok := w.slots[o]
	if !ok {
		s = &Slot{Order: o, View: v, acks: make(map[uint32]bool)}
		w.slots[o] = s
		return s
	}
	switch {
	case v > s.View:
		s.reset(v)
	case v < s.View:
		return nil
	}
	return s
}

// Existing returns the slot of o if present, without creating or
// resetting it.
func (w *Window) Existing(o timeline.Order) *Slot { return w.slots[o] }

// SetPrepare records the proposal for its instance. It returns the slot
// or nil if the message is outside the window or stale. The caller has
// already verified the certificate.
func (w *Window) SetPrepare(p *message.Prepare) *Slot {
	s := w.Slot(p.Order, p.View)
	if s == nil || s.Prepare != nil {
		return s
	}
	s.Prepare = p
	s.BatchDigest = p.BatchDigest()
	proposer := trinxReplica(p)
	s.acks[proposer] = true
	w.refresh(s)
	return s
}

// AddCommit records a follower acknowledgment. It returns the slot or
// nil if the commit is outside the window, stale, or inconsistent with
// the prepared batch.
func (w *Window) AddCommit(c *message.Commit) *Slot {
	s := w.Slot(c.Order, c.View)
	if s == nil {
		return nil
	}
	if s.Prepare != nil && s.BatchDigest != c.BatchDigest {
		// Conflicting digest: with valid independent certificates this
		// cannot happen for the same (view, order); drop defensively.
		return nil
	}
	s.acks[c.Replica] = true
	w.refresh(s)
	return s
}

// Refresh recomputes the committed flag after out-of-band ack changes
// (AddOwnAck).
func (w *Window) Refresh(s *Slot) { w.refresh(s) }

// refresh recomputes the committed flag.
func (w *Window) refresh(s *Slot) {
	if !s.Committed && s.Prepare != nil && len(s.acks) >= w.quorum {
		s.Committed = true
	}
}

// Advance slides the window to a new stable checkpoint at order ckpt:
// the low water mark becomes ckpt and every slot at or below it is
// discarded (§5.2.2). Advancing backwards is a no-op.
func (w *Window) Advance(ckpt timeline.Order) {
	if ckpt <= w.low {
		return
	}
	w.low = ckpt
	for o := range w.slots {
		if o <= ckpt {
			delete(w.slots, o)
		}
	}
}

// Prepares returns the PREPAREs of all instances in the window the
// replica participated in, ordered by order number — the disclosure a
// VIEW-CHANGE must carry (§5.2.3).
func (w *Window) Prepares() []*message.Prepare {
	var out []*message.Prepare
	for o := w.low + 1; o <= w.High(); o++ {
		if s, ok := w.slots[o]; ok && s.Prepare != nil {
			out = append(out, s.Prepare)
		}
	}
	return out
}

// CommittedUnexecuted returns the committed but not yet executed slots
// in ascending order.
func (w *Window) CommittedUnexecuted() []*Slot {
	var out []*Slot
	for o := w.low + 1; o <= w.High(); o++ {
		if s, ok := w.slots[o]; ok && s.Committed && !s.Executed {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of live slots (diagnostics; memory-bound
// tests rely on it).
func (w *Window) Len() int { return len(w.slots) }

// trinxReplica extracts the proposing replica from the prepare's
// certificate issuer.
func trinxReplica(p *message.Prepare) uint32 {
	return p.Cert.Issuer.Replica()
}
