package order

import (
	"testing"
	"testing/quick"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

func prep(v timeline.View, o timeline.Order, proposer uint32, payload string) *message.Prepare {
	return &message.Prepare{
		View: v, Order: o,
		Requests: []*message.Request{{Client: crypto.ClientIDBase, Seq: 1, Payload: []byte(payload)}},
		Cert: trinx.Certificate{
			Kind: trinx.Independent, Issuer: trinx.MakeInstanceID(proposer, 0),
			Value: uint64(timeline.Pack(v, o)),
		},
	}
}

func commitFor(p *message.Prepare, replica uint32) *message.Commit {
	return &message.Commit{
		View: p.View, Order: p.Order, Replica: replica, BatchDigest: p.BatchDigest(),
	}
}

func TestWindowBounds(t *testing.T) {
	w := NewWindow(100, 2)
	if w.Low() != 0 || w.High() != 100 {
		t.Fatalf("low=%d high=%d", w.Low(), w.High())
	}
	if w.InWindow(0) {
		t.Fatal("low water mark itself is in window")
	}
	if !w.InWindow(1) || !w.InWindow(100) {
		t.Fatal("window bounds wrong")
	}
	if w.InWindow(101) {
		t.Fatal("above high water mark accepted")
	}
}

func TestCommitQuorum(t *testing.T) {
	w := NewWindow(100, 2) // n=3, q=2
	p := prep(0, 1, 0, "a")
	s := w.SetPrepare(p)
	if s == nil || s.Committed {
		t.Fatalf("slot after prepare: %+v", s)
	}
	if s.Acks() != 1 || !s.HasAck(0) {
		t.Fatal("prepare did not count as proposer ack")
	}
	s = w.AddCommit(commitFor(p, 1))
	if s == nil || !s.Committed {
		t.Fatal("quorum of 2 (leader + 1 follower) not committed")
	}
}

func TestCommitBeforePrepare(t *testing.T) {
	w := NewWindow(100, 2)
	p := prep(0, 5, 0, "a")
	// Commit arrives first (reordering across links).
	if s := w.AddCommit(commitFor(p, 1)); s == nil || s.Committed {
		t.Fatalf("early commit mishandled: %+v", s)
	}
	s := w.SetPrepare(p)
	if s == nil || !s.Committed {
		t.Fatal("prepare after commit did not complete certificate")
	}
}

func TestConflictingDigestRejected(t *testing.T) {
	w := NewWindow(100, 2)
	p := prep(0, 1, 0, "a")
	w.SetPrepare(p)
	other := prep(0, 1, 0, "b")
	if s := w.AddCommit(commitFor(other, 1)); s != nil {
		t.Fatal("commit with conflicting digest accepted")
	}
	if w.Existing(1).Committed {
		t.Fatal("slot committed despite conflict")
	}
}

func TestDuplicateAcksCountOnce(t *testing.T) {
	w := NewWindow(100, 3) // need 3 acks
	p := prep(0, 1, 0, "a")
	w.SetPrepare(p)
	for i := 0; i < 5; i++ {
		w.AddCommit(commitFor(p, 1))
	}
	if w.Existing(1).Committed {
		t.Fatal("duplicate commits reached quorum")
	}
	w.AddCommit(commitFor(p, 2))
	if !w.Existing(1).Committed {
		t.Fatal("3 distinct acks did not commit")
	}
}

func TestOutOfWindowRejected(t *testing.T) {
	w := NewWindow(10, 2)
	if s := w.SetPrepare(prep(0, 11, 0, "a")); s != nil {
		t.Fatal("prepare above high water mark accepted")
	}
	w.Advance(10)
	if s := w.SetPrepare(prep(0, 10, 0, "a")); s != nil {
		t.Fatal("prepare at low water mark accepted")
	}
	if s := w.SetPrepare(prep(0, 11, 0, "a")); s == nil {
		t.Fatal("prepare in advanced window rejected")
	}
}

func TestAdvanceGarbageCollects(t *testing.T) {
	w := NewWindow(100, 2)
	for o := timeline.Order(1); o <= 50; o++ {
		w.SetPrepare(prep(0, o, 0, "x"))
	}
	if w.Len() != 50 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Advance(30)
	if w.Len() != 20 {
		t.Fatalf("after advance Len = %d, want 20", w.Len())
	}
	if w.Low() != 30 || w.High() != 130 {
		t.Fatalf("low=%d high=%d", w.Low(), w.High())
	}
	w.Advance(10) // backwards: no-op
	if w.Low() != 30 {
		t.Fatal("window moved backwards")
	}
}

func TestWindowMemoryBounded(t *testing.T) {
	// Property: under arbitrary prepare/advance interleavings the
	// number of live slots never exceeds the window size.
	w := NewWindow(16, 2)
	err := quick.Check(func(orders []uint16, advances []uint16) bool {
		for i, oRaw := range orders {
			o := timeline.Order(oRaw % 64)
			w.SetPrepare(prep(0, o, 0, "x"))
			if i < len(advances) {
				w.Advance(timeline.Order(advances[i] % 64))
			}
			if w.Len() > 16 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestViewTransitionResetsSlot(t *testing.T) {
	w := NewWindow(100, 2)
	p0 := prep(0, 1, 0, "a")
	w.SetPrepare(p0)
	w.AddCommit(commitFor(p0, 1))
	if !w.Existing(1).Committed {
		t.Fatal("setup failed")
	}

	// A re-proposal in view 1 resets the slot's per-view state.
	p1 := prep(1, 1, 1, "a")
	s := w.SetPrepare(p1)
	if s == nil || s.Committed || s.View != 1 {
		t.Fatalf("slot after view transition: %+v", s)
	}
	if s.Acks() != 1 {
		t.Fatalf("acks = %d after reset", s.Acks())
	}

	// Stale view-0 messages are now rejected.
	if got := w.AddCommit(commitFor(p0, 2)); got != nil {
		t.Fatal("stale commit accepted after view transition")
	}
}

func TestExecutedSurvivesViewChange(t *testing.T) {
	w := NewWindow(100, 2)
	p0 := prep(0, 1, 0, "a")
	w.SetPrepare(p0)
	w.AddCommit(commitFor(p0, 1))
	w.Existing(1).Executed = true

	w.SetPrepare(prep(1, 1, 1, "a"))
	if !w.Existing(1).Executed {
		t.Fatal("executed flag lost across views")
	}
}

func TestPreparesOrderedDisclosure(t *testing.T) {
	w := NewWindow(100, 2)
	for _, o := range []timeline.Order{5, 2, 9, 1} {
		w.SetPrepare(prep(0, o, 0, "x"))
	}
	ps := w.Prepares()
	if len(ps) != 4 {
		t.Fatalf("got %d prepares", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Order >= ps[i].Order {
			t.Fatal("prepares not in ascending order")
		}
	}
	w.Advance(2)
	if got := len(w.Prepares()); got != 2 {
		t.Fatalf("after advance: %d prepares, want 2", got)
	}
}

func TestCommittedUnexecuted(t *testing.T) {
	w := NewWindow(100, 2)
	for o := timeline.Order(1); o <= 3; o++ {
		p := prep(0, o, 0, "x")
		w.SetPrepare(p)
		w.AddCommit(commitFor(p, 1))
	}
	w.Existing(2).Executed = true
	got := w.CommittedUnexecuted()
	if len(got) != 2 || got[0].Order != 1 || got[1].Order != 3 {
		t.Fatalf("CommittedUnexecuted = %+v", got)
	}
}

func TestDuplicatePrepareIgnored(t *testing.T) {
	w := NewWindow(100, 2)
	p := prep(0, 1, 0, "a")
	w.SetPrepare(p)
	// A different prepare for the same slot in the same view must not
	// replace the first (the certificate layer makes this impossible
	// for valid messages; the window is defensive).
	w.SetPrepare(prep(0, 1, 0, "b"))
	if string(w.Existing(1).Prepare.Requests[0].Payload) != "a" {
		t.Fatal("duplicate prepare replaced original")
	}
}

func TestNewWindowPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewWindow(0, 2) },
		func() { NewWindow(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
