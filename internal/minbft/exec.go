package minbft

import (
	"sync/atomic"

	"hybster/internal/cop"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// trinxIssuer adapts a USIG issuer ID to the instance-ID field of the
// shared Checkpoint message type.
func trinxIssuer(id uint32) trinx.InstanceID {
	return trinx.InstanceID(uint64(id) << 16)
}

type evExec struct {
	order timeline.Order
	batch []*message.Request
	// install, when non-nil, turns this event into a state-transfer
	// installation instead of a batch delivery (kept inline so the
	// common case pays no interface boxing on the mailbox).
	install *installReq
}

// installReq carries a verified state transfer from the protocol loop
// to the execution stage.
type installReq struct {
	ckpt     timeline.Order
	snapshot []byte
	rv       []byte
	done     chan error
}

// execLoop is MinBFT's execution stage.
type execLoop struct {
	e     *Engine
	inbox *cop.Mailbox[evExec]
	x     *statemachine.Executor
	last  atomic.Uint64
}

func newExecLoop(e *Engine, app statemachine.Application) *execLoop {
	return &execLoop{e: e, inbox: cop.NewMailbox[evExec](), x: statemachine.NewExecutor(app)}
}

func (l *execLoop) lastExecuted() timeline.Order { return timeline.Order(l.last.Load()) }

func (l *execLoop) run() {
	for {
		ev, ok := l.inbox.Get()
		if !ok {
			return
		}
		if req := ev.install; req != nil {
			err := l.x.InstallState(req.ckpt, req.snapshot, req.rv)
			req.done <- err
			if err != nil {
				continue
			}
			l.last.Store(uint64(req.ckpt))
			l.e.trace(telemetry.EvStateXfer, 0, uint64(req.ckpt), "")
			// Installation is progress; buffered later instances may
			// now be contiguous, so fall through to the delivery loop.
			l.e.inbox.Put(evProgress{pending: l.x.Pending() > 0})
		} else if !l.x.Buffer(ev.order, ev.batch) {
			continue
		}
		for {
			ex := l.x.Step()
			if ex == nil {
				break
			}
			l.last.Store(uint64(ex.Order))
			l.e.met.execBatches.Inc()
			l.e.met.execRequests.Add(uint64(len(ex.Replies)))
			l.e.trace(telemetry.EvExec, 0, uint64(ex.Order), "")
			// Reply MACs and sends run on the parallel reply stage,
			// off the delivery loop; single-reply instances go inline
			// when the shard is quiet (see internal/core).
			if len(ex.Replies) == 1 {
				r := ex.Replies[0]
				l.e.replies.SubmitInline(r.Client, r.Seq, r.Result)
			} else {
				for _, r := range ex.Replies {
					l.e.replies.Submit(r.Client, r.Seq, r.Result)
				}
			}
			l.e.inbox.Put(evProgress{pending: l.x.Pending() > 0})
			if l.e.cfg.IsCheckpoint(ex.Order) {
				// Checkpoints run on the protocol loop; hand a lazy
				// view over through the inbox so USIG and window
				// state stay single-threaded and the snapshot encode
				// is paid there, not here.
				l.e.inbox.Put(evCkptDue{view: l.x.CheckpointView()})
			}
		}
	}
}
