package minbft

import (
	"testing"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/usig"
)

func newBareEngine(t *testing.T, id uint32, keySeed string) *Engine {
	t.Helper()
	cfg := config.Default(config.MinBFT)
	cfg.KeySeed = keySeed
	net := transport.NewNetwork(transport.LinkProfile{}, int64(cfg.N))
	eng, err := New(Options{
		Config:      cfg,
		ID:          id,
		Endpoint:    net.Endpoint(id),
		Application: counter.New(),
		Platform:    enclave.NewPlatform(keySeed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPrepareSkipDoesNotShiftOrderBinding pins the counter→order
// derivation of §4.4: the order of a prepare is a pure function of its
// UI counter and the view anchor, NOT of how many prepares this
// replica happened to accept before it. A prepare can consume its
// counter in ingest yet be skipped by the view filter — here because
// it carries the wrong view, in production because it raced ahead of
// the NEW-VIEW that opens its view (chaos reorder faults produce
// exactly that). A replica that counted arrivals instead would bind
// every later batch one order lower than its peers: the same batches
// would commit everywhere, at rotated orders — a silent state fork
// that only surfaces when checkpoint digests stop matching.
func TestPrepareSkipDoesNotShiftOrderBinding(t *testing.T) {
	const keySeed = "order-binding-test"
	key := crypto.NewKeyFromSeed(keySeed)

	// Engine 2 is a follower of view 0, whose leader is replica 0.
	eng := newBareEngine(t, 2, keySeed)
	leader := usig.New(enclave.NewPlatform("order-binding-leader"), 0, key, enclave.CostModel{})
	defer leader.Destroy()

	sign := func(view timeline.View, tag byte) *message.MinPrepare {
		p := &message.MinPrepare{
			View: view,
			Requests: []*message.Request{{
				Client: 100, Seq: 1, Payload: []byte{tag},
			}},
		}
		for i := range p.Requests {
			p.Requests[i].Auth = crypto.NewAuthenticator(eng.ks, p.Requests[i].Digest(), eng.cfg.N)
		}
		ui, err := leader.CreateUI(p.Digest())
		if err != nil {
			t.Fatal(err)
		}
		p.UI = ui
		return p
	}

	// Counter 1 arrives tagged for view 1: ingest consumes the counter
	// (the UI is genuine), handlePrepare skips it (wrong view).
	p1 := sign(1, 1)
	eng.ingest(0, p1.UI, p1, true)
	if got := eng.expected[0]; got != 2 {
		t.Fatalf("skipped prepare did not consume its counter: expected = %d; want 2", got)
	}
	if len(eng.slots) != 0 {
		t.Fatalf("skipped prepare created a slot: %v", eng.slots)
	}

	// Counters 2 and 3 arrive for the current view. The anchor of view
	// 0 maps counter c to order c, so they must bind to orders 2 and 3
	// — order 1 is a permanent hole — not slide down to orders 1 and 2
	// by arrival counting.
	p2 := sign(0, 2)
	p3 := sign(0, 3)
	eng.ingest(0, p2.UI, p2, true)
	eng.ingest(0, p3.UI, p3, true)

	for counterVal, wantOrder := range map[uint64]uint64{2: 2, 3: 3} {
		o, ok := eng.orderByCounter[counterVal]
		if !ok || uint64(o) != wantOrder {
			t.Fatalf("counter %d bound to order %v (ok=%v); want %d", counterVal, o, ok, wantOrder)
		}
		s, ok := eng.slots[o]
		if !ok {
			t.Fatalf("no slot at order %d", wantOrder)
		}
		var want *message.MinPrepare
		if counterVal == 2 {
			want = p2
		} else {
			want = p3
		}
		if s.batchDigest != message.BatchDigest(want.Requests) {
			t.Fatalf("order %d holds the wrong batch", wantOrder)
		}
	}
	if _, ok := eng.slots[1]; ok {
		t.Fatal("order 1 must stay a hole, not absorb a later prepare")
	}
	if eng.nextOrder != 4 {
		t.Fatalf("nextOrder = %d; want 4", eng.nextOrder)
	}
}

// TestDeadStreamReanchorsOnViewChangeMessage pins the volatile-restart
// recovery path: a replica whose per-sender expectation restarted from
// zero while the peer's USIG counter kept running faces a gap wider
// than the holdback horizon — that stream can never drain, leaving the
// replica deaf to every UI-bearing message forever. Self-contained
// view-change-layer messages must re-anchor the dead stream at the
// sender's live position; ordering messages must not (a commit is only
// meaningful in sequence).
func TestDeadStreamReanchorsOnViewChangeMessage(t *testing.T) {
	const keySeed = "reanchor-test"
	key := crypto.NewKeyFromSeed(keySeed)

	eng := newBareEngine(t, 0, keySeed)
	peer := usig.New(enclave.NewPlatform("reanchor-peer"), 1, key, enclave.CostModel{})
	defer peer.Destroy()

	// The peer's counter ran far past the holdback horizon while this
	// replica remembers nothing (expected[1] == 0).
	burn := 4*uint64(eng.cfg.WindowSize) + 100
	dummy := crypto.Hash([]byte("burned"))
	for i := uint64(0); i < burn; i++ {
		if _, err := peer.CreateUI(dummy); err != nil {
			t.Fatal(err)
		}
	}

	// An ordering message across the dead gap parks in holdback and
	// must NOT re-anchor the stream.
	before := eng.expected[1]
	com := &message.MinCommit{View: 5, Replica: 1, BatchDigest: crypto.Hash([]byte{1})}
	ui, err := peer.CreateUI(com.Digest())
	if err != nil {
		t.Fatal(err)
	}
	com.UI = ui
	eng.ingest(1, com.UI, com, false)
	if got := eng.expected[1]; got != before {
		t.Fatalf("ordering message re-anchored a dead stream: expected = %d; want %d", got, before)
	}

	// A VIEW-CHANGE across the same gap is self-contained: it must
	// re-anchor the stream right after its own counter.
	vc := &message.MinViewChange{Replica: 1, View: 5}
	ui, err = peer.CreateUI(vc.Digest())
	if err != nil {
		t.Fatal(err)
	}
	vc.UI = ui
	eng.ingest(1, vc.UI, vc, false)
	if got := eng.expected[1]; got != vc.UI.Counter+1 {
		t.Fatalf("view-change did not re-anchor: expected = %d; want %d", got, vc.UI.Counter+1)
	}

	// The stream is live again: the peer's next message in sequence
	// processes immediately.
	com2 := &message.MinCommit{View: 5, Replica: 1, BatchDigest: crypto.Hash([]byte{2})}
	ui, err = peer.CreateUI(com2.Digest())
	if err != nil {
		t.Fatal(err)
	}
	com2.UI = ui
	eng.ingest(1, com2.UI, com2, false)
	if got := eng.expected[1]; got != com2.UI.Counter+1 {
		t.Fatalf("re-anchored stream did not resume: expected = %d; want %d", got, com2.UI.Counter+1)
	}
}
