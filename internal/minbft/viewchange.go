package minbft

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/usig"
)

// This file implements MinBFT's history-based view change, the design
// §4.4 of the Hybster paper critiques: to change views, a replica must
// present the *complete history* of ordering messages it sent since
// its last stable checkpoint, sealed by its USIG counter; if electing
// a leader takes several rounds, each VIEW-CHANGE joins the history of
// the next one, so the state replicas must retain — and the messages
// they exchange — grow without a protocol-defined bound. The
// unbounded-history tests measure exactly that growth against
// Hybster's window-bounded view change.
//
// Scope: the implementation covers crash-fault recovery (the leader
// stops; followers elect the next view and carry prepared instances
// over). Two simplifications are documented in DESIGN.md: order
// anchoring is carried in the VIEW-CHANGE (AnchorView/Order/Counter)
// because MinBFT's counters-as-orders need a reference point, and a
// Byzantine leader's fresh re-proposals are constrained by the
// detection regime (UI sequence), not re-validated against the quorum
// as Hybster's equivocation prevention allows.

// evTick drives the suspicion watchdog and retransmission.
type evTick struct{}

// sentEntry is one history record: a message this replica sent under
// UI counter "counter" while working on order "order".
type sentEntry struct {
	counter uint64
	order   timeline.Order
	raw     []byte
}

// histStubTag marks a compact history entry standing in for a sent
// VIEW-CHANGE or NEW-VIEW. Recording those messages by value is what
// turns §4.4's linear history growth geometric: a VIEW-CHANGE embeds
// the full history, the history would embed every earlier
// VIEW-CHANGE's bytes, and a NEW-VIEW embeds f+1 such VIEW-CHANGEs —
// after ~10 fruitless election rounds single messages reach hundreds
// of megabytes and marshal/hash/verify each take seconds, starving
// the protocol loops outright (observed in chaos goroutine dumps).
// The stub records only the entry's UI and payload digest: the UI
// proves the replica's USIG signed exactly that digest at that
// counter, which is the same fact re-hashing the full bytes would
// establish, and view-change transfer never reads VIEW-CHANGE or
// NEW-VIEW contents (re-proposals come from PREPARE/COMMIT entries).
// Trade-off, documented per the crash-fault scope above: a Byzantine
// replica could mislabel a PREPARE or COMMIT as a stub and conceal
// its content while keeping the counter chain gapless; full MinBFT
// closes that by shipping every payload. Correct replicas stub only
// genuine VIEW-CHANGE/NEW-VIEW entries.
//
// The tag byte sits outside the codec's type-tag space, so a stub can
// never be confused with a marshaled message (message.Unmarshal
// rejects it, and real frames start with a small type tag).
const histStubTag = 0xFF

// histStubLen is the fixed stub layout: tag, issuer, counter, MAC,
// payload digest.
const histStubLen = 1 + 4 + 8 + crypto.MACSize + crypto.DigestSize

func encodeHistStub(ui usig.UI, d crypto.Digest) []byte {
	b := make([]byte, histStubLen)
	b[0] = histStubTag
	binary.LittleEndian.PutUint32(b[1:], ui.Issuer)
	binary.LittleEndian.PutUint64(b[5:], ui.Counter)
	copy(b[13:], ui.MAC[:])
	copy(b[13+crypto.MACSize:], d[:])
	return b
}

func decodeHistStub(raw []byte) (ui usig.UI, d crypto.Digest, ok bool) {
	if len(raw) != histStubLen || raw[0] != histStubTag {
		return usig.UI{}, crypto.Digest{}, false
	}
	ui.Issuer = binary.LittleEndian.Uint32(raw[1:])
	ui.Counter = binary.LittleEndian.Uint64(raw[5:])
	copy(ui.MAC[:], raw[13:])
	copy(d[:], raw[13+crypto.MACSize:])
	return ui, d, true
}

// recordSent appends a UI-consuming message to the history log and to
// the bounded retransmission ring. View-change-layer messages are
// logged as compact stubs (see histStubTag); everything else is
// logged in full because a NEW-VIEW leader extracts re-proposals from
// the PREPARE and COMMIT payloads.
func (e *Engine) recordSent(ui usig.UI, order timeline.Order, m message.Message) {
	e.lastSent = ui.Counter
	var raw []byte
	switch v := m.(type) {
	case *message.MinViewChange:
		raw = encodeHistStub(ui, v.Digest())
	case *message.MinNewView:
		raw = encodeHistStub(ui, v.Digest())
	default:
		raw = message.Marshal(m)
	}
	e.sentLog = append(e.sentLog, sentEntry{counter: ui.Counter, order: order, raw: raw})
	e.mu.Lock()
	e.histLenSnapshot = len(e.sentLog)
	e.mu.Unlock()
	if cap := 4 * int(e.cfg.WindowSize); len(e.resend) >= cap {
		e.resend = append(e.resend[:0], e.resend[len(e.resend)-cap+1:]...)
	}
	e.resend = append(e.resend, m)
}

// pruneHistory drops the history prefix covered by a stable checkpoint
// at order o and advances the history base counter.
func (e *Engine) pruneHistory(o timeline.Order) {
	i := 0
	for i < len(e.sentLog) && e.sentLog[i].order <= o {
		e.histBase = e.sentLog[i].counter
		i++
	}
	e.sentLog = append(e.sentLog[:0], e.sentLog[i:]...)
}

// historyBytes returns the raw history entries for a VIEW-CHANGE.
func (e *Engine) historyBytes() [][]byte {
	out := make([][]byte, len(e.sentLog))
	for i, s := range e.sentLog {
		out[i] = s.raw
	}
	return out
}

// HistoryLen exposes the current history length (tests measure the
// §4.4 growth behaviour through it).
func (e *Engine) HistoryLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.histLenSnapshot
}

// --- suspicion and REQ-VIEW-CHANGE ---

func (e *Engine) handleTick() {
	now := time.Now()
	ps := e.pendingSince
	// Execution fell behind the stable low-watermark: the batches it
	// is missing are garbage-collected and will never be re-delivered,
	// so keep asking for transferred state (replies can be lost).
	if e.exec.lastExecuted() < e.low {
		e.maybeRequestState()
	}
	// Progress stalled for half a suspicion period: assume messages
	// were lost and re-multicast the recent send window so peers can
	// fill counter gaps (see the resend field).
	if !ps.IsZero() && now.Sub(ps) > e.cfg.ViewChangeTimeout/2 &&
		now.Sub(e.lastResend) >= e.cfg.ViewChangeTimeout/2 {
		e.lastResend = now
		e.met.retransmits.Add(uint64(len(e.resend)))
		e.trace(telemetry.EvRetransmit, uint64(e.view), 0, "")
		for _, m := range e.resend {
			transport.Multicast(e.ep, e.cfg.N, m)
		}
	}
	if !e.pending {
		if !ps.IsZero() && now.Sub(ps) > e.suspicionTimeout() {
			e.suspects.Add(1)
			e.met.suspectsC.Inc()
			e.trace(telemetry.EvViewChange, uint64(e.view+1), 0, "suspect")
			e.vcBackoff++
			e.escalateReqViewChange(e.view + 1)
			e.pendingSince = now
		}
	} else {
		if now.Sub(ps) > e.suspicionTimeout() {
			e.pendingSince = now
			e.vcBackoff++
			e.escalateReqViewChange(e.pendingTo + 1)
		}
		// Retransmit our own VIEW-CHANGE while the view is pending —
		// rate-limited, because a history-bearing VIEW-CHANGE can be
		// enormous after repeated elections (§4.4) and peers that
		// already consumed its counter replay-drop every copy anyway.
		if vc := e.ownVC; vc != nil && now.Sub(e.lastVCResend) >= e.cfg.ViewChangeTimeout/2 {
			e.lastVCResend = now
			transport.Multicast(e.ep, e.cfg.N, vc)
		}
	}
}

// suspicionTimeout is the view-change timeout widened exponentially by
// consecutive fruitless suspicions (reset on install), so repeated
// elections decorrelate instead of racing in lockstep.
func (e *Engine) suspicionTimeout() time.Duration {
	shift := e.vcBackoff
	if shift > 3 {
		shift = 3
	}
	return e.cfg.ViewChangeTimeout << shift
}

// escalateReqViewChange voices suspicion for target on a timeout.
// sendReqViewChange is one-shot per target (reqSent is monotonic), so
// a replica whose single REQ-VIEW-CHANGE multicast was lost could
// otherwise never utter another word of suspicion: each later timeout
// would re-request the same view and be dropped by the reqSent guard —
// a permanent wedge. When the target is new, request it; when it was
// already requested, re-multicast the standing request instead.
// Retransmission is safe and cheap — REQ-VIEW-CHANGE consumes no USIG
// counter and receivers record requesters in a set — and deliberately
// does NOT walk the view number forward: every extra election round
// compounds the next VIEW-CHANGE's embedded history (§4.4), so rounds
// are opened only when a new target is actually justified.
func (e *Engine) escalateReqViewChange(target timeline.View) {
	if target > e.reqSent {
		e.sendReqViewChange(target)
		return
	}
	req := &message.MinReqViewChange{Replica: e.id, View: e.reqSent}
	req.Auth = crypto.NewAuthenticator(e.ks, req.Digest(), e.cfg.N)
	transport.Multicast(e.ep, e.cfg.N, req)
}

// noteWorkLocked marks outstanding work for the watchdog (run loop
// only).
func (e *Engine) noteWorkLocked() {
	if e.pendingSince.IsZero() {
		e.pendingSince = time.Now()
	}
}

// noteProgress clears or restarts the watchdog after execution
// progress; called from the exec loop through the inbox.
type evProgress struct{ pending bool }

func (e *Engine) sendReqViewChange(target timeline.View) {
	if target <= e.view || target <= e.reqSent {
		return
	}
	e.reqSent = target
	req := &message.MinReqViewChange{Replica: e.id, View: target}
	req.Auth = crypto.NewAuthenticator(e.ks, req.Digest(), e.cfg.N)
	transport.Multicast(e.ep, e.cfg.N, req)
	e.recordReqVC(e.id, target)
}

func (e *Engine) handleReqViewChange(from uint32, m *message.MinReqViewChange) {
	if m.Replica != from || m.View <= e.view {
		return
	}
	if !crypto.VerifyAuthenticator(e.ks, m.Auth, m.Digest()) {
		return
	}
	e.recordReqVC(from, m.View)
}

// recordReqVC counts view-change requests; f+1 distinct requesters
// justify actually aborting (one of them is correct).
func (e *Engine) recordReqVC(from uint32, target timeline.View) {
	byReplica, ok := e.reqVCs[target]
	if !ok {
		byReplica = make(map[uint32]bool)
		e.reqVCs[target] = byReplica
	}
	byReplica[from] = true
	if len(byReplica) >= e.cfg.F()+1 && target > e.view && (!e.pending || target > e.pendingTo) {
		e.sendViewChange(target)
	}
}

// --- VIEW-CHANGE ---

func (e *Engine) sendViewChange(target timeline.View) {
	vc := &message.MinViewChange{
		Replica:       e.id,
		View:          target,
		CkptOrder:     e.low,
		CkptProof:     e.ckptProof,
		HistBase:      e.histBase,
		History:       e.historyBytes(),
		AnchorView:    e.anchorView,
		AnchorOrder:   uint64(e.anchorOrder),
		AnchorCounter: e.anchorCounter,
	}
	ui, err := e.sig.CreateUI(vc.Digest())
	if err != nil {
		return
	}
	vc.UI = ui
	// The VIEW-CHANGE itself becomes part of the history — the §4.4
	// growth: every unsuccessful election round compounds the next
	// VIEW-CHANGE.
	e.recordSent(ui, e.nextOrder, vc)

	e.pending = true
	e.pendingTo = target
	e.pendingSince = time.Now()
	e.ownVC = vc
	e.storeVC(vc)
	transport.Multicast(e.ep, e.cfg.N, vc)
	e.maybeNewView(target)
}

func (e *Engine) storeVC(vc *message.MinViewChange) {
	byReplica, ok := e.vcs[vc.View]
	if !ok {
		byReplica = make(map[uint32]*message.MinViewChange)
		e.vcs[vc.View] = byReplica
	}
	if _, dup := byReplica[vc.Replica]; !dup {
		byReplica[vc.Replica] = vc
	}
}

// verifyCkptProof checks a quorum certificate for a checkpoint at the
// given order and state digest: every announcement must match the
// order and digest, carry a valid checkpoint-USIG UI, and come from a
// distinct replica; a quorum of them must survive. Shared by
// VIEW-CHANGE validation and state transfer.
func (e *Engine) verifyCkptProof(order timeline.Order, digest crypto.Digest, proof []*message.Checkpoint) error {
	seen := make(map[uint32]bool)
	for _, ck := range proof {
		if ck.Order != order || seen[ck.Replica] {
			return fmt.Errorf("minbft: malformed checkpoint proof")
		}
		if ck.StateDigest != digest {
			return fmt.Errorf("minbft: checkpoint digests differ")
		}
		ui := usig.UI{Issuer: ck.Replica | ckptIssuerFlag, Counter: ck.Cert.Value, MAC: ck.Cert.MAC}
		if err := e.sigCkpt.VerifyUI(ui, ck.Digest()); err != nil {
			return err
		}
		seen[ck.Replica] = true
	}
	if len(seen) < e.cfg.Quorum() {
		return fmt.Errorf("minbft: checkpoint proof below quorum")
	}
	return nil
}

// verifyViewChange checks a peer's VIEW-CHANGE: its UI, checkpoint
// proof, and — the detection-regime core — that the history is a
// gapless UI sequence from the claimed base to the VIEW-CHANGE's own
// counter.
func (e *Engine) verifyViewChange(vc *message.MinViewChange) error {
	if err := e.sig.VerifyUI(vc.UI, vc.Digest()); err != nil {
		return err
	}
	if vc.CkptOrder > 0 {
		if len(vc.CkptProof) == 0 {
			return fmt.Errorf("minbft: checkpoint proof below quorum")
		}
		if err := e.verifyCkptProof(vc.CkptOrder, vc.CkptProof[0].StateDigest, vc.CkptProof); err != nil {
			return err
		}
	}
	want := vc.HistBase + 1
	for _, raw := range vc.History {
		// Stub entries (sent VIEW-CHANGEs/NEW-VIEWs, see histStubTag)
		// carry the UI and payload digest directly; full entries are
		// unmarshaled and yield the same pair. Either way the checks
		// below are identical: right issuer, gapless counter, and a
		// USIG signature over exactly that digest.
		ui, d, isStub := decodeHistStub(raw)
		var com *message.MinCommit
		if !isStub {
			m, err := message.Unmarshal(raw)
			if err != nil {
				return fmt.Errorf("minbft: history entry: %w", err)
			}
			var ok bool
			ui, ok = uiOf(m)
			if !ok {
				return fmt.Errorf("minbft: history entry without UI (%s)", m.MsgType())
			}
			if d, ok = digestOf(m); !ok {
				return fmt.Errorf("minbft: undigestable history entry")
			}
			com, _ = m.(*message.MinCommit)
		}
		if ui.Issuer != vc.Replica {
			return fmt.Errorf("minbft: foreign history entry")
		}
		if ui.Counter != want {
			return fmt.Errorf("minbft: history gap at counter %d (have %d)", want, ui.Counter)
		}
		if err := e.sig.VerifyUI(ui, d); err != nil {
			return err
		}
		if com != nil && com.Prepare != nil {
			// The embedded proposal must be genuine and the one the
			// commit acknowledged.
			if com.Prepare.UI != com.PrepareUI || com.Prepare.BatchDigest() != com.BatchDigest {
				return fmt.Errorf("minbft: commit embeds mismatched prepare")
			}
			if err := e.sig.VerifyUI(com.Prepare.UI, com.Prepare.Digest()); err != nil {
				return err
			}
		}
		want++
	}
	if want != vc.UI.Counter {
		return fmt.Errorf("minbft: history ends at %d, view-change consumed %d — concealment", want-1, vc.UI.Counter)
	}
	return nil
}

func uiOf(m message.Message) (usig.UI, bool) {
	switch v := m.(type) {
	case *message.MinPrepare:
		return v.UI, true
	case *message.MinCommit:
		return v.UI, true
	case *message.MinViewChange:
		return v.UI, true
	case *message.MinNewView:
		return v.UI, true
	default:
		return usig.UI{}, false
	}
}

func digestOf(m message.Message) (crypto.Digest, bool) {
	switch v := m.(type) {
	case *message.MinPrepare:
		return v.Digest(), true
	case *message.MinCommit:
		return v.Digest(), true
	case *message.MinViewChange:
		return v.Digest(), true
	case *message.MinNewView:
		return v.Digest(), true
	default:
		return crypto.Digest{}, false
	}
}

func (e *Engine) handleViewChange(from uint32, vc *message.MinViewChange) {
	if vc.Replica != from || vc.View <= e.view {
		return
	}
	if err := e.verifyViewChange(vc); err != nil {
		return
	}
	e.storeVC(vc)
	// f+1 view changes for a higher view: join (one is correct).
	if len(e.vcs[vc.View]) >= e.cfg.F()+1 && (!e.pending || e.pendingTo < vc.View) && vc.View > e.view {
		e.sendViewChange(vc.View)
	}
	if e.cfg.LeaderOf(vc.View) == e.id {
		e.maybeNewView(vc.View)
	}
}

// --- NEW-VIEW ---

// minTransfer derives the new view's starting checkpoint and the
// batches to re-propose from a quorum of VIEW-CHANGEs.
func minTransfer(vcs map[uint32]*message.MinViewChange) (startCkpt timeline.Order, batches [][]*message.Request) {
	for _, vc := range vcs {
		if vc.CkptOrder > startCkpt {
			startCkpt = vc.CkptOrder
		}
	}
	// The anchor of the highest view any quorum member participated
	// in translates that view's leader counters into order numbers.
	var vmax timeline.View
	var anchorOrder, anchorCounter uint64
	for _, vc := range vcs {
		if vc.AnchorView >= vmax && vc.AnchorCounter > 0 {
			vmax = vc.AnchorView
			anchorOrder, anchorCounter = vc.AnchorOrder, vc.AnchorCounter
		}
	}
	byOrder := make(map[timeline.Order][]*message.Request)
	var maxO timeline.Order
	consider := func(prep *message.MinPrepare) {
		if prep == nil || prep.View != vmax || anchorCounter == 0 {
			return
		}
		if prep.UI.Counter < anchorCounter {
			return
		}
		o := timeline.Order(anchorOrder + (prep.UI.Counter - anchorCounter))
		if o <= startCkpt {
			return
		}
		byOrder[o] = prep.Requests
		if o > maxO {
			maxO = o
		}
	}
	for _, vc := range vcs {
		for _, raw := range vc.History {
			m, err := message.Unmarshal(raw)
			if err != nil {
				continue
			}
			switch v := m.(type) {
			case *message.MinPrepare:
				// A leader's own proposal.
				consider(v)
			case *message.MinCommit:
				// A follower's acknowledgment embeds the proposal it
				// answered — that is how proposals survive a crashed
				// leader whose history nobody has.
				consider(v.Prepare)
			}
		}
	}
	for o := startCkpt + 1; o <= maxO; o++ {
		batches = append(batches, byOrder[o]) // nil = no-op gap filler
	}
	return startCkpt, batches
}

func (e *Engine) maybeNewView(target timeline.View) {
	if e.cfg.LeaderOf(target) != e.id || e.nvDone[target] {
		return
	}
	if !e.pending || e.pendingTo != target {
		return
	}
	vcs := e.vcs[target]
	if len(vcs) < e.cfg.Quorum() {
		return
	}
	nv := &message.MinNewView{View: target}
	for _, vc := range vcs {
		nv.VCs = append(nv.VCs, vc)
	}
	sort.Slice(nv.VCs, func(i, j int) bool { return nv.VCs[i].Replica < nv.VCs[j].Replica })
	ui, err := e.sig.CreateUI(nv.Digest())
	if err != nil {
		return
	}
	nv.UI = ui
	e.recordSent(ui, e.nextOrder, nv)
	transport.Multicast(e.ep, e.cfg.N, nv)
	e.nvDone[target] = true

	startCkpt, batches := minTransfer(vcs)
	// Our first fresh prepare consumes the counter after the NEW-VIEW
	// we just recorded.
	e.install(target, startCkpt, batches, true, e.lastSent+1)
}

func (e *Engine) handleNewView(from uint32, nv *message.MinNewView) {
	if nv.View <= e.view || from != e.cfg.LeaderOf(nv.View) {
		return
	}
	if err := e.sig.VerifyUI(nv.UI, nv.Digest()); err != nil {
		return
	}
	vcs := make(map[uint32]*message.MinViewChange)
	for _, vc := range nv.VCs {
		if vc.View != nv.View {
			return
		}
		if err := e.verifyViewChange(vc); err != nil {
			return
		}
		vcs[vc.Replica] = vc
	}
	if len(vcs) < e.cfg.Quorum() {
		return
	}
	startCkpt, batches := minTransfer(vcs)
	// The leader's first fresh prepare consumes the counter after its
	// NEW-VIEW.
	e.install(nv.View, startCkpt, batches, false, nv.UI.Counter+1)
}

// install enters the new view: aborted instances above the checkpoint
// are dropped (their batches return via re-proposal), the order
// cursor re-anchors, and — as the new leader — the transferred batches
// are proposed afresh with new UIs.
func (e *Engine) install(v timeline.View, startCkpt timeline.Order, batches [][]*message.Request, leader bool, anchorCounter uint64) {
	e.view = v
	e.pending = false
	e.reqSent = v // allow future requests for v+1
	for o := range e.slots {
		if o > startCkpt {
			delete(e.slots, o)
		}
	}
	for c, o := range e.orderByCounter {
		if o > startCkpt {
			delete(e.orderByCounter, c)
		}
	}
	// Parked early commits answer old-view prepares; drop them.
	clear(e.earlyCommits)
	e.nextOrder = startCkpt + 1
	// Anchor for the new view: the leader's first fresh prepare (the
	// first re-proposal) carries counter anchorCounter and gets order
	// startCkpt+1.
	e.anchorView = v
	e.anchorOrder = e.nextOrder
	e.anchorCounter = anchorCounter

	// Drop ALL recorded suspicion requests, not just those for views
	// ≤ v: tallies for v+1 collected during this election would
	// otherwise reach f+1 on the first straggler REQ and immediately
	// abort the view just installed, before it produced any progress.
	// Requiring fresh post-install evidence loses nothing — a replica
	// that still suspects re-multicasts its standing REQ on every
	// suspicion timeout. Signed VIEW-CHANGEs for higher views stay:
	// their UI counters are already consumed at this replica, so a
	// retransmission would be replay-dropped and the message lost.
	clear(e.reqVCs)
	for view := range e.vcs {
		if view <= v {
			delete(e.vcs, view)
		}
	}
	e.ownVC = nil
	e.pendingSince = time.Time{}
	e.vcBackoff = 0
	e.trace(telemetry.EvNewView, uint64(v), uint64(startCkpt), "installed")

	if leader {
		for _, batch := range batches {
			e.proposeBatch(batch)
		}
		e.propose() // queued client requests follow the re-proposals
	}
}

// proposeBatch certifies and multicasts one exact batch (view-change
// re-proposals must not be re-batched).
func (e *Engine) proposeBatch(batch []*message.Request) {
	prep := &message.MinPrepare{View: e.view, Requests: batch}
	ui, err := e.sig.CreateUI(prep.Digest())
	if err != nil {
		return
	}
	prep.UI = ui
	e.met.prepares.Inc()
	e.trace(telemetry.EvPropose, uint64(e.view), uint64(e.nextOrder), "reproposal")
	e.recordSent(ui, e.nextOrder, prep)
	transport.Multicast(e.ep, e.cfg.N, prep)
	e.ingest(e.id, ui, prep, false)
}
