package minbft_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/minbft"
	"hybster/internal/statemachine"
)

func testConfig() config.Config {
	cfg := config.Default(config.MinBFT)
	cfg.CheckpointInterval = 16
	cfg.WindowSize = 64
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	return cfg
}

func newCounterCluster(t *testing.T, cfg config.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewMinBFT(cluster.Options{Config: cfg, Seed: 1},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestMinBFTBasicOrdering(t *testing.T) {
	c := newCounterCluster(t, testConfig())
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 20; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

func TestMinBFTConcurrentClients(t *testing.T) {
	c := newCounterCluster(t, testConfig())
	const clients, per = 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		cl, err := c.NewClient(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; i < per; i++ {
				if _, err := cl.Invoke([]byte{1}, false); err != nil {
					errs <- fmt.Errorf("op %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Invoke(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.BigEndian.Uint64(res); v != clients*per {
		t.Fatalf("counter = %d, want %d", v, clients*per)
	}
}

func TestMinBFTCheckpointGarbageCollection(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 4
	cfg.WindowSize = 8
	c := newCounterCluster(t, cfg)
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Far more instances than the window holds: only possible if
	// checkpoints advance the window.
	for i := 0; i < 60; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

func TestMinBFTToleratesCrashedFollower(t *testing.T) {
	c := newCounterCluster(t, testConfig())
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(2) // follower; leader + one follower remain = quorum
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d after follower crash: %v", i, err)
		}
	}
}

func TestMinBFTDuplicateRequestNotReExecuted(t *testing.T) {
	c := newCounterCluster(t, testConfig())
	cl, err := c.NewClient(30 * time.Millisecond) // force retransmits
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d — duplicate execution", i, v)
		}
	}
}

func TestMinBFTLeaderCrashViewChange(t *testing.T) {
	// The §4.4 history-based view change in action: the leader crashes,
	// followers exchange REQ-VIEW-CHANGE and history-carrying
	// VIEW-CHANGEs, and the next leader re-proposes every instance
	// disclosed by the histories.
	cfg := testConfig()
	c := newCounterCluster(t, cfg)
	cl, err := c.NewClient(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	c.Crash(0) // leader of view 0

	for i := 6; i <= 12; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d after leader crash: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d — instance lost or duplicated", i, v)
		}
	}
}

func TestMinBFTHistoryGrowsUntilCheckpoint(t *testing.T) {
	// The §4.4 critique, measured: MinBFT's per-replica history grows
	// with every sent ordering message and only checkpoints truncate
	// it — whereas Hybster's view-change state is bounded by the
	// ordering window at all times (core.TestViewChangeSizeBounded...).
	cfg := testConfig()
	cfg.CheckpointInterval = 8
	cfg.WindowSize = 32
	c := newCounterCluster(t, cfg)
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	leader := c.Replica(0).(*minbft.Engine)
	// Below the first checkpoint the history grows monotonically.
	var grew bool
	prev := leader.HistoryLen()
	for i := 0; i < 6; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
		if l := leader.HistoryLen(); l > prev {
			grew = true
		}
		prev = leader.HistoryLen()
	}
	if !grew {
		t.Fatal("history never grew — sent messages are not being logged")
	}
	// Crossing checkpoints must truncate it.
	for i := 0; i < 30; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if leader.HistoryLen() <= 2*8 { // within two checkpoint intervals
			return
		}
		_, _ = cl.Invoke([]byte{1}, false)
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("history length %d not truncated by checkpoints", leader.HistoryLen())
}

func TestMinBFTSecondViewChange(t *testing.T) {
	// Two successive leader failures: views 0 → 1 → 2. Each round's
	// VIEW-CHANGE carries the previous one in its history.
	cfg := testConfig()
	c := newCounterCluster(t, cfg)
	cl, err := c.NewClient(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 3; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(0)
	for i := 4; i <= 6; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d in view 1: %v", i, err)
		}
	}
	c.Crash(1) // leader of view 1; replica 2 alone is not a quorum...
	// n=3, f=1: two crashes exceed f, so no further progress is
	// REQUIRED — but also nothing must corrupt. Verify the survivor
	// still has consistent state.
	if got := c.Replica(2).LastExecuted(); got < 3 {
		t.Fatalf("survivor lost executed state: %d", got)
	}
}
