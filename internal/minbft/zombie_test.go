package minbft

import (
	"errors"
	"testing"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/transport"
	"hybster/internal/usig"
)

// TestZombieCounterRegressionRefused pins the restart-zombie guard of
// paper §4.4: a replica that crashes and rejoins with a fresh USIG
// re-issues counter values its peers already consumed. The guard must
// convict the sender on the first provably regressed UI (same counter,
// different message, valid MAC) and refuse all of its traffic from
// then on — instead of silently dropping it as a replay and letting
// the zombie believe it participates.
func TestZombieCounterRegressionRefused(t *testing.T) {
	cfg := config.Default(config.MinBFT)
	cfg.KeySeed = "zombie-test"
	key := crypto.NewKeyFromSeed(cfg.KeySeed)

	net := transport.NewNetwork(transport.LinkProfile{}, 1)
	eng, err := New(Options{
		Config:      cfg,
		ID:          0,
		Endpoint:    net.Endpoint(0),
		Application: counter.New(),
		Platform:    enclave.NewPlatform("zombie-detector"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Replica 1's first life: two commits signed by its USIG.
	life1 := usig.New(enclave.NewPlatform("zombie-life1"), 1, key, enclave.CostModel{})
	defer life1.Destroy()
	sign := func(u *usig.USIG, tag byte) *message.MinCommit {
		c := &message.MinCommit{View: 1, Replica: 1, BatchDigest: crypto.Hash([]byte{tag})}
		ui, err := u.CreateUI(c.Digest())
		if err != nil {
			t.Fatal(err)
		}
		c.UI = ui
		return c
	}
	c1 := sign(life1, 1)
	c2 := sign(life1, 2)
	eng.ingest(1, c1.UI, c1, false)
	eng.ingest(1, c2.UI, c2, false)
	if got := eng.expected[1]; got != 3 {
		t.Fatalf("expected counter after two accepts = %d; want 3", got)
	}

	// An exact replay is not a conviction: reliable-channel
	// retransmission re-presents accepted messages all the time.
	eng.ingest(1, c1.UI, c1, false)
	if err := eng.ZombieErr(1); err != nil {
		t.Fatalf("replay convicted a correct sender: %v", err)
	}

	// Second life: fresh platform, counter restarts at 1, signs a
	// DIFFERENT message under the consumed value — the regression.
	life2 := usig.New(enclave.NewPlatform("zombie-life2"), 1, key, enclave.CostModel{})
	defer life2.Destroy()
	z := sign(life2, 9)
	if z.UI.Counter != 1 {
		t.Fatalf("fresh USIG counter = %d; want 1", z.UI.Counter)
	}
	eng.ingest(1, z.UI, z, false)

	if err := eng.ZombieErr(1); !errors.Is(err, ErrCounterRegression) {
		t.Fatalf("ZombieErr = %v; want ErrCounterRegression", err)
	}
	if got := eng.Zombies(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Zombies() = %v; want [1]", got)
	}

	// Everything further from the zombie is refused, even messages that
	// would otherwise be in sequence.
	c3 := sign(life2, 3) // counter 2
	c4 := sign(life2, 4) // counter 3
	eng.ingest(1, c3.UI, c3, false)
	eng.ingest(1, c4.UI, c4, false)
	if got := eng.expected[1]; got != 3 {
		t.Fatalf("zombie traffic advanced the counter stream: expected = %d; want 3", got)
	}

	// A forged MAC under an old counter must NOT convict: only a
	// cryptographically valid UI is proof of regression.
	r2 := usig.New(enclave.NewPlatform("zombie-r2"), 2, key, enclave.CostModel{})
	defer r2.Destroy()
	good := &message.MinCommit{View: 1, Replica: 2, BatchDigest: crypto.Hash([]byte{7})}
	ui, err := r2.CreateUI(good.Digest())
	if err != nil {
		t.Fatal(err)
	}
	good.UI = ui
	eng.ingest(2, good.UI, good, false)
	forged := &message.MinCommit{View: 1, Replica: 2, BatchDigest: crypto.Hash([]byte{8})}
	forged.UI = usig.UI{Issuer: 2, Counter: 1, MAC: crypto.MAC{0xde, 0xad}}
	eng.ingest(2, forged.UI, forged, false)
	if err := eng.ZombieErr(2); err != nil {
		t.Fatalf("forged MAC convicted replica 2: %v", err)
	}
}

// TestCorruptedCopyCannotFrameSender pins the ingest-order half of the
// zombie guard: a link-corrupted copy of a message must neither burn
// its counter slot (the genuine retransmission would then be dropped
// as a replay) nor plant its mangled MAC in the seen ring — otherwise
// the genuine copy, arriving later with a MAC that differs and
// verifies, would convict the honest sender of counter regression.
// Two honest survivors framing each other this way is a permanent
// liveness wedge: conviction refuses all traffic, view changes
// included.
func TestCorruptedCopyCannotFrameSender(t *testing.T) {
	cfg := config.Default(config.MinBFT)
	cfg.KeySeed = "frame-test"
	key := crypto.NewKeyFromSeed(cfg.KeySeed)

	net := transport.NewNetwork(transport.LinkProfile{}, 1)
	eng, err := New(Options{
		Config:      cfg,
		ID:          0,
		Endpoint:    net.Endpoint(0),
		Application: counter.New(),
		Platform:    enclave.NewPlatform("frame-detector"),
	})
	if err != nil {
		t.Fatal(err)
	}

	peer := usig.New(enclave.NewPlatform("frame-peer"), 1, key, enclave.CostModel{})
	defer peer.Destroy()
	genuine := &message.MinCommit{View: 1, Replica: 1, BatchDigest: crypto.Hash([]byte{1})}
	ui, err := peer.CreateUI(genuine.Digest())
	if err != nil {
		t.Fatal(err)
	}
	genuine.UI = ui

	// The corrupted copy arrives first: same counter, mangled MAC.
	mangled := *genuine
	mangled.UI.MAC[0] ^= 0xff
	eng.ingest(1, mangled.UI, &mangled, false)
	if got := eng.expected[1]; got != 1 {
		t.Fatalf("corrupted copy consumed counter slot: expected = %d; want 1", got)
	}

	// The genuine retransmission must process normally and must not
	// convict the sender, even though its MAC differs from the copy's.
	eng.ingest(1, genuine.UI, genuine, false)
	if err := eng.ZombieErr(1); err != nil {
		t.Fatalf("genuine retransmission convicted its own sender: %v", err)
	}
	if got := eng.expected[1]; got != 2 {
		t.Fatalf("genuine copy was not processed: expected = %d; want 2", got)
	}
}
