package minbft

import (
	"errors"
	"sync/atomic"

	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// gaugeMirror publishes run-loop-owned protocol fields for lock-free
// sampling by gauge callbacks. Registry.Snapshot runs on whatever
// goroutine scrapes it (the ops server, the audit monitor's poller),
// so the callbacks cannot touch loop-confined state directly; the run
// loop stores fresh values here after every event, and readers see a
// snapshot at most one event stale.
type gaugeMirror struct {
	view atomic.Uint64
	// pendingTo is the target view while a view change is pending;
	// 0 means no view change in flight.
	pendingTo atomic.Uint64
	nextOrder atomic.Uint64
	low       atomic.Uint64
}

// engineMetrics holds the MinBFT replica's metric handles, resolved
// once in New. All handles are nil-safe; the zero value means
// telemetry is off. MinBFT has no pillars (the protocol is
// sequential), so nothing carries a pillar label.
type engineMetrics struct {
	tel *telemetry.Telemetry

	prepares     *telemetry.Counter
	commits      *telemetry.Counter
	committed    *telemetry.Counter
	execBatches  *telemetry.Counter
	execRequests *telemetry.Counter
	ckptsOwn     *telemetry.Counter
	ckptsStable  *telemetry.Counter
	suspectsC    *telemetry.Counter
	retransmits  *telemetry.Counter
	zombiesC     *telemetry.Counter
	stateXfers   *telemetry.Counter
}

func newEngineMetrics(tel *telemetry.Telemetry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		tel:          tel,
		prepares:     tel.Counter("hybster_minbft_prepares_total", "own proposals multicast (leader PREPARE sent)"),
		commits:      tel.Counter("hybster_minbft_commits_sent_total", "leader proposals acknowledged (COMMIT sent)"),
		committed:    tel.Counter("hybster_minbft_committed_total", "instances committed and handed to execution"),
		execBatches:  tel.Counter("hybster_minbft_exec_batches_total", "batches delivered to the application"),
		execRequests: tel.Counter("hybster_minbft_exec_requests_total", "client requests executed"),
		ckptsOwn:     tel.Counter("hybster_minbft_checkpoints_total", "own checkpoint announcements"),
		ckptsStable:  tel.Counter("hybster_minbft_checkpoints_stable_total", "checkpoints that reached quorum stability"),
		suspectsC:    tel.Counter("hybster_minbft_suspects_total", "leader-timeout suspicion events"),
		retransmits:  tel.Counter("hybster_minbft_retransmits_total", "messages re-multicast from the resend ring"),
		zombiesC:     tel.Counter("hybster_minbft_zombies_total", "replicas convicted of counter regression"),
		stateXfers:   tel.Counter("hybster_minbft_state_xfers_total", "checkpoint state transfers adopted"),
	}
}

// registerGauges installs the sampled gauges over live engine state;
// re-registration on restart swaps the callbacks.
func (e *Engine) registerGauges(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.GaugeFunc("hybster_minbft_last_executed", "highest executed order number",
		func() float64 { return float64(e.exec.last.Load()) })
	tel.GaugeFunc("hybster_minbft_inbox_depth", "queued protocol events",
		func() float64 { return float64(e.inbox.Len()) })
	// Protocol-loop state snapshots, read from the atomic mirror the
	// loop refreshes after every event — sampled values may be one
	// event stale, which is good enough for the post-mortem question
	// they answer ("where was this replica wedged?").
	tel.GaugeFunc("hybster_minbft_view", "current view number",
		func() float64 { return float64(e.gm.view.Load()) })
	tel.GaugeFunc("hybster_minbft_pending_view", "target view while a view change is pending (0 = none)",
		func() float64 { return float64(e.gm.pendingTo.Load()) })
	tel.GaugeFunc("hybster_minbft_next_order", "next order number to assign",
		func() float64 { return float64(e.gm.nextOrder.Load()) })
	tel.GaugeFunc("hybster_minbft_low_watermark", "last stable checkpoint order",
		func() float64 { return float64(e.gm.low.Load()) })
	tel.GaugeFunc("hybster_minbft_queue_len", "client requests queued for proposal",
		func() float64 { e.mu.Lock(); defer e.mu.Unlock(); return float64(len(e.queue)) })
	tel.GaugeFunc("hybster_minbft_history_len", "sent-message history length (§4.4's unbounded state)",
		func() float64 { return float64(e.HistoryLen()) })
	tel.GaugeFunc("hybster_minbft_deaf_streams", "sender streams with an undrainable expected-counter gap",
		func() float64 { return float64(e.deafStreams.Load()) })
	tel.GaugeFunc("hybster_minbft_holdback_horizon", "counter gap beyond which a stream cannot drain (4x window)",
		func() float64 { return float64(4 * e.cfg.WindowSize) })
	// Codec marshal-pool stats; process-global (the encoder pool is
	// shared by every engine in the process).
	tel.GaugeFunc("hybster_marshal_total", "messages marshaled (process-wide)",
		func() float64 { total, _ := message.MarshalStats(); return float64(total) })
	tel.GaugeFunc("hybster_marshal_pool_hits", "marshals served by a pooled encoder (process-wide)",
		func() float64 { _, hits := message.MarshalStats(); return float64(hits) })
}

// publishGauges refreshes the atomic gauge mirror from the run-loop
// state. Called by the run loop after every event (and once at
// assembly, so gauges are sane before the loop starts).
func (e *Engine) publishGauges() {
	e.gm.view.Store(uint64(e.view))
	if e.pending {
		e.gm.pendingTo.Store(uint64(e.pendingTo))
	} else {
		e.gm.pendingTo.Store(0)
	}
	e.gm.nextOrder.Store(uint64(e.nextOrder))
	e.gm.low.Store(uint64(e.low))
}

// trace records one protocol event on the engine's tracer (nil-safe).
// MinBFT has a single processing unit, so the pillar field is 0.
func (e *Engine) trace(kind telemetry.EventKind, view, slot uint64, note string) {
	e.met.tel.Trace(kind, view, slot, 0, note)
}

// traceD records one protocol event carrying the digest the event is
// about — the cross-replica correlation key the auditor compares
// (nil-safe).
func (e *Engine) traceD(kind telemetry.EventKind, view, slot uint64, digest []byte, note string) {
	e.met.tel.TraceDigest(kind, view, slot, 0, digest, note)
}

// Telemetry returns the engine's telemetry bundle (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.met.tel }

// Healthz reports process liveness for the ops server.
func (e *Engine) Healthz() error {
	select {
	case <-e.stopTick:
		return errors.New("minbft: engine stopped")
	default:
		return nil
	}
}
