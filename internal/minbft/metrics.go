package minbft

import (
	"errors"

	"hybster/internal/telemetry"
)

// engineMetrics holds the MinBFT replica's metric handles, resolved
// once in New. All handles are nil-safe; the zero value means
// telemetry is off. MinBFT has no pillars (the protocol is
// sequential), so nothing carries a pillar label.
type engineMetrics struct {
	tel *telemetry.Telemetry

	prepares     *telemetry.Counter
	commits      *telemetry.Counter
	committed    *telemetry.Counter
	execBatches  *telemetry.Counter
	execRequests *telemetry.Counter
	ckptsOwn     *telemetry.Counter
	ckptsStable  *telemetry.Counter
	suspectsC    *telemetry.Counter
	retransmits  *telemetry.Counter
	zombiesC     *telemetry.Counter
}

func newEngineMetrics(tel *telemetry.Telemetry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		tel:          tel,
		prepares:     tel.Counter("hybster_minbft_prepares_total", "own proposals multicast (leader PREPARE sent)"),
		commits:      tel.Counter("hybster_minbft_commits_sent_total", "leader proposals acknowledged (COMMIT sent)"),
		committed:    tel.Counter("hybster_minbft_committed_total", "instances committed and handed to execution"),
		execBatches:  tel.Counter("hybster_minbft_exec_batches_total", "batches delivered to the application"),
		execRequests: tel.Counter("hybster_minbft_exec_requests_total", "client requests executed"),
		ckptsOwn:     tel.Counter("hybster_minbft_checkpoints_total", "own checkpoint announcements"),
		ckptsStable:  tel.Counter("hybster_minbft_checkpoints_stable_total", "checkpoints that reached quorum stability"),
		suspectsC:    tel.Counter("hybster_minbft_suspects_total", "leader-timeout suspicion events"),
		retransmits:  tel.Counter("hybster_minbft_retransmits_total", "messages re-multicast from the resend ring"),
		zombiesC:     tel.Counter("hybster_minbft_zombies_total", "replicas convicted of counter regression"),
	}
}

// registerGauges installs the sampled gauges over live engine state;
// re-registration on restart swaps the callbacks.
func (e *Engine) registerGauges(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.GaugeFunc("hybster_minbft_last_executed", "highest executed order number",
		func() float64 { return float64(e.exec.last.Load()) })
	tel.GaugeFunc("hybster_minbft_inbox_depth", "queued protocol events",
		func() float64 { return float64(e.inbox.Len()) })
	tel.GaugeFunc("hybster_minbft_history_len", "sent-message history length (§4.4's unbounded state)",
		func() float64 { return float64(e.HistoryLen()) })
}

// trace records one protocol event on the engine's tracer (nil-safe).
// MinBFT has a single processing unit, so the pillar field is 0.
func (e *Engine) trace(kind telemetry.EventKind, view, slot uint64, note string) {
	e.met.tel.Trace(kind, view, slot, 0, note)
}

// Telemetry returns the engine's telemetry bundle (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.met.tel }

// Healthz reports process liveness for the ops server.
func (e *Engine) Healthz() error {
	select {
	case <-e.stopTick:
		return errors.New("minbft: engine stopped")
	default:
		return nil
	}
}
