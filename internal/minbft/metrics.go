package minbft

import (
	"errors"

	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// engineMetrics holds the MinBFT replica's metric handles, resolved
// once in New. All handles are nil-safe; the zero value means
// telemetry is off. MinBFT has no pillars (the protocol is
// sequential), so nothing carries a pillar label.
type engineMetrics struct {
	tel *telemetry.Telemetry

	prepares     *telemetry.Counter
	commits      *telemetry.Counter
	committed    *telemetry.Counter
	execBatches  *telemetry.Counter
	execRequests *telemetry.Counter
	ckptsOwn     *telemetry.Counter
	ckptsStable  *telemetry.Counter
	suspectsC    *telemetry.Counter
	retransmits  *telemetry.Counter
	zombiesC     *telemetry.Counter
	stateXfers   *telemetry.Counter
}

func newEngineMetrics(tel *telemetry.Telemetry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		tel:          tel,
		prepares:     tel.Counter("hybster_minbft_prepares_total", "own proposals multicast (leader PREPARE sent)"),
		commits:      tel.Counter("hybster_minbft_commits_sent_total", "leader proposals acknowledged (COMMIT sent)"),
		committed:    tel.Counter("hybster_minbft_committed_total", "instances committed and handed to execution"),
		execBatches:  tel.Counter("hybster_minbft_exec_batches_total", "batches delivered to the application"),
		execRequests: tel.Counter("hybster_minbft_exec_requests_total", "client requests executed"),
		ckptsOwn:     tel.Counter("hybster_minbft_checkpoints_total", "own checkpoint announcements"),
		ckptsStable:  tel.Counter("hybster_minbft_checkpoints_stable_total", "checkpoints that reached quorum stability"),
		suspectsC:    tel.Counter("hybster_minbft_suspects_total", "leader-timeout suspicion events"),
		retransmits:  tel.Counter("hybster_minbft_retransmits_total", "messages re-multicast from the resend ring"),
		zombiesC:     tel.Counter("hybster_minbft_zombies_total", "replicas convicted of counter regression"),
		stateXfers:   tel.Counter("hybster_minbft_state_xfers_total", "checkpoint state transfers adopted"),
	}
}

// registerGauges installs the sampled gauges over live engine state;
// re-registration on restart swaps the callbacks.
func (e *Engine) registerGauges(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.GaugeFunc("hybster_minbft_last_executed", "highest executed order number",
		func() float64 { return float64(e.exec.last.Load()) })
	tel.GaugeFunc("hybster_minbft_inbox_depth", "queued protocol events",
		func() float64 { return float64(e.inbox.Len()) })
	// Protocol-loop state snapshots. The loop owns these fields, so the
	// sampled values may be mid-transition — good enough for the
	// post-mortem question they answer ("where was this replica wedged?").
	tel.GaugeFunc("hybster_minbft_view", "current view number",
		func() float64 { return float64(e.view) })
	tel.GaugeFunc("hybster_minbft_pending_view", "target view while a view change is pending (0 = none)",
		func() float64 {
			if e.pending {
				return float64(e.pendingTo)
			}
			return 0
		})
	tel.GaugeFunc("hybster_minbft_next_order", "next order number to assign",
		func() float64 { return float64(e.nextOrder) })
	tel.GaugeFunc("hybster_minbft_low_watermark", "last stable checkpoint order",
		func() float64 { return float64(e.low) })
	tel.GaugeFunc("hybster_minbft_queue_len", "client requests queued for proposal",
		func() float64 { e.mu.Lock(); defer e.mu.Unlock(); return float64(len(e.queue)) })
	tel.GaugeFunc("hybster_minbft_history_len", "sent-message history length (§4.4's unbounded state)",
		func() float64 { return float64(e.HistoryLen()) })
	// Codec marshal-pool stats; process-global (the encoder pool is
	// shared by every engine in the process).
	tel.GaugeFunc("hybster_marshal_total", "messages marshaled (process-wide)",
		func() float64 { total, _ := message.MarshalStats(); return float64(total) })
	tel.GaugeFunc("hybster_marshal_pool_hits", "marshals served by a pooled encoder (process-wide)",
		func() float64 { _, hits := message.MarshalStats(); return float64(hits) })
}

// trace records one protocol event on the engine's tracer (nil-safe).
// MinBFT has a single processing unit, so the pillar field is 0.
func (e *Engine) trace(kind telemetry.EventKind, view, slot uint64, note string) {
	e.met.tel.Trace(kind, view, slot, 0, note)
}

// Telemetry returns the engine's telemetry bundle (nil when disabled).
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.met.tel }

// Healthz reports process liveness for the ops server.
func (e *Engine) Healthz() error {
	select {
	case <-e.stopTick:
		return errors.New("minbft: engine stopped")
	default:
		return nil
	}
}
