// Package minbft implements MinBFT (Veronese et al., IEEE ToC 2013),
// the sequential hybrid baseline of §4: two-phase ordering over the
// USIG trusted subsystem with n = 2f+1 replicas. All protocol
// processing is deliberately single-threaded — MinBFT must process
// every incoming message in counter order (§4.2: equivocation is
// detected, not prevented, by checking UI sequence numbers), which is
// exactly the property that makes it unparallelizable and motivates
// Hybster. The engine therefore runs one protocol goroutine plus the
// execution stage, mirroring the paper's characterization that
// "MinBFT has to process all incoming messages in-order".
//
// The implementation covers the ordering and checkpointing protocols
// used by the evaluation (§6.2's published comparison point runs the
// fault-free path), MinBFT's history-based view change — whose
// unbounded memory demand §4.4 criticizes — under a crash-fault scope
// (see viewchange.go), and checkpoint-anchored state transfer so a
// replica whose missed instances were garbage-collected by a stable
// checkpoint can resume execution from quorum-certified state.
package minbft

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/checkpoint"
	"hybster/internal/config"
	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/reply"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/usig"
	"hybster/internal/verify"
)

// Options bundle the dependencies of an Engine.
type Options struct {
	Config      config.Config
	ID          uint32
	Endpoint    transport.Endpoint
	Application statemachine.Application
	Platform    *enclave.Platform
	EnclaveCost enclave.CostModel
	// Telemetry receives this replica's metrics and trace events; nil
	// disables instrumentation.
	Telemetry *telemetry.Telemetry
}

// slot tracks one ordered instance (identified by the leader prepare's
// UI counter).
type slot struct {
	order       timeline.Order
	batch       []*message.Request
	batchDigest crypto.Digest
	acks        map[uint32]bool
	committed   bool
	executed    bool
}

// Engine is one MinBFT replica.
type Engine struct {
	cfg config.Config
	id  uint32
	ep  transport.Endpoint
	ks  *crypto.KeyStore
	// sig issues UIs for ordering messages; sigCkpt is a second USIG
	// instance dedicated to checkpoints so that checkpoint traffic
	// does not perturb the ordering counter sequence (the leader's
	// ordering counter maps 1:1 onto order numbers).
	sig     *usig.USIG
	sigCkpt *usig.USIG

	inbox   *cop.Mailbox[any]
	exec    *execLoop
	replies *reply.Stage
	vpool   *verify.Pool
	vord    *verify.Ordered

	// protocol state, confined to the run goroutine
	view timeline.View
	// expected[r] is the next UI counter value accepted from replica
	// r; the in-order processing MinBFT requires.
	expected map[uint32]uint64
	// holdback parks messages that arrived ahead of their sender's
	// expected counter.
	holdback map[uint32]map[uint64]heldMsg
	// nextOrder is the order number assigned to the next accepted
	// prepare (leader-side: the next proposal).
	nextOrder timeline.Order
	// slots maps order numbers to instances in the current window.
	slots map[timeline.Order]*slot
	low   timeline.Order
	ckpts *checkpoint.Tracker[*message.Checkpoint]

	// queue of admitted requests (leader only).
	mu       sync.Mutex
	queue    []*message.Request
	inFlight int

	// view-change state (confined to the run goroutine).
	pending      bool
	pendingTo    timeline.View
	pendingSince time.Time
	reqSent      timeline.View
	// vcBackoff counts consecutive suspicion timeouts without progress;
	// it widens the timeout exponentially (capped) so two stalled
	// replicas stop chasing each other through view numbers in
	// lockstep, and it drives target escalation past lost requests.
	vcBackoff uint
	reqVCs    map[timeline.View]map[uint32]bool
	vcs       map[timeline.View]map[uint32]*message.MinViewChange
	nvDone    map[timeline.View]bool
	ownVC     *message.MinViewChange
	// history of sent UI-consuming messages since the last stable
	// checkpoint (§4.4's unbounded state).
	sentLog  []sentEntry
	histBase uint64
	lastSent uint64
	// order anchoring for the current view: the leader prepare with
	// counter anchorCounter has order anchorOrder.
	anchorView    timeline.View
	anchorOrder   timeline.Order
	anchorCounter uint64
	// orderByCounter maps current-view leader prepare counters to the
	// orders this replica assigned them.
	orderByCounter map[uint64]timeline.Order
	// earlyCommits parks commits that overtook their prepare (the
	// parallel verify stage delays request-bearing prepares while
	// commits from other senders pass straight through). Their UI
	// counter slots are already consumed, so a retransmitted copy
	// would be discarded as a replay — dropping an early commit here
	// would lose the ack forever. Keyed by the leader-prepare counter
	// the commit answers; drained when that prepare is accepted.
	earlyCommits map[uint64]map[uint32]*message.MinCommit
	// ckptProof is the quorum certificate of the last stable
	// checkpoint, carried by VIEW-CHANGEs.
	ckptProof []*message.Checkpoint
	// ownCkpt is the snapshot bundle from this replica's most recent
	// own checkpoint boundary; stableCkpt is the bundle matching the
	// last *stable* checkpoint (e.low), the one state transfer serves.
	// Only these two are retained, so snapshot memory stays bounded.
	ownCkpt    ckptBundle
	stableCkpt ckptBundle
	// lastStateReq rate-limits outgoing STATE-REQUEST rounds.
	lastStateReq time.Time
	// resend is a bounded ring of recently sent UI-consuming messages.
	// MinBFT requires reliable FIFO channels: a receiver processes a
	// sender's messages strictly in counter order, so one lost message
	// wedges the link forever. Re-multicasting recent messages while
	// progress is stalled implements the reliable-channel assumption
	// over a lossy network; receivers drop replays by counter.
	resend     []message.Message
	lastResend time.Time
	// lastVCResend rate-limits re-multicasting ownVC while a view
	// change is pending. VIEW-CHANGEs carry the full sent-message
	// history (§4.4), so after a few election rounds they are by far
	// the largest messages in the system; re-sending one per tick
	// would turn the history growth into a bandwidth and CPU storm.
	lastVCResend time.Time
	// histLenSnapshot mirrors len(sentLog) for HistoryLen (tests).
	histLenSnapshot int

	suspects atomic.Uint64 // leader-timeout events (diagnostics)
	met      engineMetrics
	// gm mirrors loop-owned fields for lock-free gauge sampling; the
	// run loop refreshes it after every event (see publishGauges).
	gm gaugeMirror

	// deaf marks sender streams whose expected-counter gap exceeded the
	// holdback horizon with an ordering message parked — a stream that
	// can never drain on its own (PR 8's "deaf replica" class). Cleared
	// when the stream advances or a view-change message re-anchors it.
	// The map is confined to the run goroutine; deafStreams mirrors its
	// size for lock-free gauge sampling (the auditor's deaf-stream
	// check scrapes it).
	deaf        map[uint32]bool
	deafStreams atomic.Int64

	// seenMAC[r] is a bounded ring of the UI MACs accepted from replica
	// r, keyed by counter value. A replay carries the exact MAC we
	// already processed; a *different* MAC under an old counter value is
	// cryptographic proof the sender's USIG issued one counter twice —
	// i.e. it restarted with regressed trusted state (paper §4.4's
	// rejoin gap). Confined to the run goroutine.
	seenMAC map[uint32]map[uint64]crypto.MAC
	// zombies marks senders convicted of counter regression; all their
	// traffic is refused from then on. Confined to the run goroutine;
	// the mirror set below serves concurrent readers.
	zombies map[uint32]bool

	zombieMu  sync.Mutex
	zombieSet map[uint32]bool

	stopOnce sync.Once
	stopTick chan struct{}
	wg       sync.WaitGroup
}

// inMsg is an inbound message tagged with its sender; verified marks
// client authenticators already checked by the parallel verify stage.
type inMsg struct {
	from     uint32
	msg      message.Message
	verified bool
}

// heldMsg is a held-back out-of-order message plus its verified bit.
type heldMsg struct {
	msg      message.Message
	verified bool
}

const maxInFlight = 16

// ckptIssuerFlag distinguishes a replica's checkpoint USIG instance
// from its ordering instance in UI issuer IDs.
const ckptIssuerFlag uint32 = 1 << 30

// New assembles a MinBFT replica.
func New(opts Options) (*Engine, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	key := crypto.NewKeyFromSeed(opts.Config.KeySeed)
	e := &Engine{
		cfg:       opts.Config,
		id:        opts.ID,
		ep:        opts.Endpoint,
		ks:        crypto.NewKeyStore(opts.ID, key),
		sig:       usig.New(opts.Platform, opts.ID, key, opts.EnclaveCost).Instrument(opts.Telemetry),
		sigCkpt:   usig.New(opts.Platform, opts.ID|ckptIssuerFlag, key, opts.EnclaveCost).Instrument(opts.Telemetry),
		met:       newEngineMetrics(opts.Telemetry),
		inbox:     cop.NewMailbox[any](),
		expected:  make(map[uint32]uint64),
		holdback:  make(map[uint32]map[uint64]heldMsg),
		nextOrder: 1,
		slots:     make(map[timeline.Order]*slot),
		ckpts:     checkpoint.NewTracker[*message.Checkpoint](opts.Config.Quorum()),

		reqVCs:         make(map[timeline.View]map[uint32]bool),
		vcs:            make(map[timeline.View]map[uint32]*message.MinViewChange),
		nvDone:         make(map[timeline.View]bool),
		orderByCounter: make(map[uint64]timeline.Order),
		earlyCommits:   make(map[uint64]map[uint32]*message.MinCommit),
		anchorOrder:    1,
		anchorCounter:  1,
		seenMAC:        make(map[uint32]map[uint64]crypto.MAC),
		zombies:        make(map[uint32]bool),
		zombieSet:      make(map[uint32]bool),
		deaf:           make(map[uint32]bool),
	}
	e.exec = newExecLoop(e, opts.Application)
	e.replies = reply.NewStage(e.id, e.ks, e.ep, 0, opts.Telemetry)
	e.vpool = verify.NewPool(e.ks, 0, opts.Telemetry)
	e.vord = verify.NewOrdered(e.vpool)
	for r := uint32(0); int(r) < opts.Config.N; r++ {
		e.expected[r] = 1
	}
	e.publishGauges()
	e.registerGauges(opts.Telemetry)
	return e, nil
}

// ID returns the replica ID.
func (e *Engine) ID() uint32 { return e.id }

// LastExecuted returns the highest executed order number.
func (e *Engine) LastExecuted() timeline.Order { return e.exec.lastExecuted() }

// Suspects returns how often the leader was suspected (diagnostics).
func (e *Engine) Suspects() uint64 { return e.suspects.Load() }

// ErrCounterRegression reports that a peer presented a valid UI whose
// counter value was already consumed by a different message — proof it
// restarted without its USIG state (the rejoin gap of paper §4.4).
var ErrCounterRegression = errors.New("minbft: trusted counter regression detected (replica rejoined without its USIG state)")

// Zombies returns the replicas this engine convicted of counter
// regression, in ascending order.
func (e *Engine) Zombies() []uint32 {
	e.zombieMu.Lock()
	defer e.zombieMu.Unlock()
	out := make([]uint32, 0, len(e.zombieSet))
	for r := range e.zombieSet {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ZombieErr returns ErrCounterRegression if replica r was convicted of
// counter regression, nil otherwise.
func (e *Engine) ZombieErr(r uint32) error {
	e.zombieMu.Lock()
	defer e.zombieMu.Unlock()
	if e.zombieSet[r] {
		return ErrCounterRegression
	}
	return nil
}

// Start launches the replica.
func (e *Engine) Start() {
	e.ep.Handle(func(from uint32, m message.Message) {
		// Every inbound message goes through the ordered front of the
		// verify stage: request-bearing messages are verified on the
		// worker pool, the rest pass straight through, and all of them
		// reach the inbox in exact arrival order — ingest's per-sender
		// counter sequencing depends on the stage never reordering a
		// connection's stream.
		switch v := m.(type) {
		case *message.Request:
			e.vord.Submit(from, []*message.Request{v}, func(ok bool) {
				if ok {
					e.inbox.Put(inMsg{from: from, msg: m, verified: true})
				}
			})
		case *message.MinPrepare:
			if len(v.Requests) == 0 {
				e.vord.Pass(from, func() { e.inbox.Put(inMsg{from: from, msg: m}) })
				return
			}
			e.vord.Submit(from, v.Requests, func(ok bool) {
				// A rejected batch must still enter the protocol loop:
				// MinBFT consumes every sender's UI counters strictly
				// in order, so dropping the message here would wedge
				// the link — all later counters would wait in holdback
				// forever. Deliver it unverified instead; the inline
				// re-check in handlePrepare rejects the batch after
				// the counter bookkeeping, exactly like the inline
				// path this stage replaces.
				e.inbox.Put(inMsg{from: from, msg: m, verified: ok})
			})
		default:
			e.vord.Pass(from, func() { e.inbox.Put(inMsg{from: from, msg: m}) })
		}
	})
	e.stopTick = make(chan struct{})
	go func() {
		t := time.NewTicker(e.cfg.ViewChangeTimeout / 4)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.inbox.Put(evTick{})
			case <-e.stopTick:
				return
			}
		}
	}()
	e.wg.Add(2)
	go func() { defer e.wg.Done(); e.run() }()
	go func() { defer e.wg.Done(); e.exec.run() }()
}

// Stop shuts the replica down.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		if e.stopTick != nil {
			close(e.stopTick)
		}
		_ = e.ep.Close()
		e.vpool.Close()
		e.inbox.Close()
		e.exec.inbox.Close()
		e.wg.Wait()
		// The exec loop is done submitting; drain outstanding replies.
		e.replies.Close()
		e.sig.Destroy()
		e.sigCkpt.Destroy()
	})
}

func (e *Engine) leader() uint32 { return e.cfg.LeaderOf(e.view) }

// run is the single protocol loop: MinBFT's defining constraint is
// that it cannot be split further.
func (e *Engine) run() {
	// Drain the mailbox in batches: under load one lock round-trip
	// fetches a burst of events instead of paying the lock per event.
	batch := make([]any, 0, 32)
	for {
		events, ok := e.inbox.GetBatch(batch[:0])
		if !ok {
			return
		}
		for _, ev := range events {
			e.handleEvent(ev)
		}
	}
}

func (e *Engine) handleEvent(ev any) {
	switch in := ev.(type) {
	case inMsg:
		switch m := in.msg.(type) {
		case *message.Request:
			e.handleRequest(m, in.verified)
		case *message.MinPrepare:
			e.ingest(in.from, m.UI, m, in.verified)
		case *message.MinCommit:
			e.ingest(in.from, m.UI, m, false)
		case *message.MinViewChange:
			e.ingest(in.from, m.UI, m, false)
		case *message.MinNewView:
			e.ingest(in.from, m.UI, m, false)
		case *message.MinReqViewChange:
			e.handleReqViewChange(in.from, m)
		case *message.Checkpoint:
			e.handleCheckpoint(in.from, m)
		case *message.StateRequest:
			e.handleStateRequest(in.from, m)
		case *message.StateReply:
			e.handleStateReply(in.from, m)
		}
	case evCkptDue:
		e.checkpointDue(in)
	case evProgress:
		if in.pending {
			e.pendingSince = time.Now()
		} else {
			e.pendingSince = time.Time{}
			e.vcBackoff = 0 // execution progressed; suspicions start fresh
		}
	case evTick:
		e.handleTick()
	}
	e.publishGauges()
}

// evCkptDue carries a checkpoint boundary from the execution loop to
// the protocol loop (all USIG and window state is confined there). It
// holds a lazy view: the snapshot encode and digest hashes run on the
// protocol loop, not the delivery loop.
type evCkptDue struct {
	view *statemachine.CheckpointView
}

// ckptBundle is the serialized service state at one checkpoint
// boundary, retained so fallen-behind peers can fetch it.
type ckptBundle struct {
	order    timeline.Order
	snapshot []byte
	rv       []byte
}

// ingest enforces per-sender counter order: messages are processed
// exactly in UI sequence; gaps are held back, duplicates and replays
// dropped. This is the sequential bottleneck of §3.
func (e *Engine) ingest(from uint32, ui usig.UI, m message.Message, verified bool) {
	if ui.Issuer != from {
		return
	}
	if e.zombies[from] {
		return // convicted of counter regression; refuse everything
	}
	if from != e.id {
		// Verify the UI before the counter stream consumes it. A
		// corrupted message must not burn its counter slot (the genuine
		// retransmission would then be dropped as a replay), and its
		// MAC must not enter seenMAC — a mangled MAC recorded there
		// would frame the honest sender as a counter-regressed zombie
		// the moment the genuine copy arrives and verifies.
		if d, ok := uiPayloadDigest(m); !ok || e.sig.VerifyUI(ui, d) != nil {
			return
		}
	}
	if from == e.id {
		// Own messages are produced in counter order by construction,
		// but not every own message is self-ingested (commits and
		// view-change messages are recorded directly), so the counter
		// stream seen here has gaps. Process immediately and advance.
		e.process(from, m, verified)
		if ui.Counter >= e.expected[from] {
			e.expected[from] = ui.Counter + 1
		}
		return
	}
	want := e.expected[from]
	switch {
	case ui.Counter < want:
		// Replays re-present the exact message (same counter, same
		// MAC). A different MAC under an already-consumed counter means
		// the sender's USIG signed two messages with one value — a
		// restart with regressed trusted state. Verify the UI before
		// convicting so a forged MAC cannot frame a correct sender.
		if prev, ok := e.seenMAC[from][ui.Counter]; ok && prev != ui.MAC {
			if d, ok := uiPayloadDigest(m); ok && e.sig.VerifyUI(ui, d) == nil {
				e.markZombie(from)
			}
		}
		return
	case ui.Counter > want:
		// A gap wider than the holdback horizon can never drain: the
		// intermediate messages would not all fit, so the stream is
		// dead — the position a replica lands in after a volatile
		// restart, when its expectation map restarts from zero while
		// the peers' counters kept running. View-change-layer messages
		// are self-contained (their UI was verified above and their
		// content carries its own proof: a VIEW-CHANGE presents its
		// history, a NEW-VIEW its VC quorum), so they may re-anchor
		// the stream at the sender's live position; the skipped
		// counters are acknowledged lost. Ordering messages must not —
		// a prepare or commit is only meaningful in sequence.
		if ui.Counter-want > 4*uint64(e.cfg.WindowSize) {
			switch m.(type) {
			case *message.MinViewChange, *message.MinNewView:
				for c := range e.holdback[from] {
					if c <= ui.Counter {
						delete(e.holdback[from], c)
					}
				}
				e.recordSeen(from, ui)
				e.process(from, m, verified)
				e.expected[from] = ui.Counter + 1
				e.clearDeaf(from)
				return
			}
			// An ordering message across an undrainable gap: the stream
			// is deaf until a self-contained view-change message
			// re-anchors it. Surface the condition for the auditor.
			e.markDeaf(from)
		}
		hb := e.holdback[from]
		if hb == nil {
			hb = make(map[uint64]heldMsg)
			e.holdback[from] = hb
		}
		// Bound holdback memory against a flooding sender.
		if len(hb) < 4*int(e.cfg.WindowSize) {
			hb[ui.Counter] = heldMsg{msg: m, verified: verified}
		}
		return
	}
	e.recordSeen(from, ui)
	e.process(from, m, verified)
	e.expected[from] = want + 1
	e.clearDeaf(from)
	// Drain consecutive held-back messages.
	for {
		next, ok := e.holdback[from][e.expected[from]]
		if !ok {
			return
		}
		delete(e.holdback[from], e.expected[from])
		if nui, ok := msgUI(next.msg); ok {
			e.recordSeen(from, nui)
		}
		e.process(from, next.msg, next.verified)
		e.expected[from]++
	}
}

// markDeaf records that from's counter stream has an undrainable gap:
// an ordering message parked beyond the holdback horizon. The gauge
// mirror lets the cluster auditor see the condition from outside.
func (e *Engine) markDeaf(from uint32) {
	if e.deaf[from] {
		return
	}
	e.deaf[from] = true
	e.deafStreams.Add(1)
}

// clearDeaf retires a deaf marking once the stream advances (a drain
// reached expected) or a view-change message re-anchored it.
func (e *Engine) clearDeaf(from uint32) {
	if !e.deaf[from] {
		return
	}
	delete(e.deaf, from)
	e.deafStreams.Add(-1)
}

// recordSeen remembers the MAC accepted under a counter value, bounded
// to the holdback horizon so the ring cannot grow without limit.
func (e *Engine) recordSeen(from uint32, ui usig.UI) {
	ring := e.seenMAC[from]
	if ring == nil {
		ring = make(map[uint64]crypto.MAC)
		e.seenMAC[from] = ring
	}
	ring[ui.Counter] = ui.MAC
	bound := 4 * uint64(e.cfg.WindowSize)
	if ui.Counter > bound {
		delete(ring, ui.Counter-bound)
	}
}

// markZombie convicts a sender of trusted-counter regression: its
// traffic is refused from now on and the conviction is visible through
// Zombies() / ZombieErr().
func (e *Engine) markZombie(from uint32) {
	if e.zombies[from] {
		return
	}
	e.zombies[from] = true
	e.met.zombiesC.Inc()
	e.zombieMu.Lock()
	e.zombieSet[from] = true
	e.zombieMu.Unlock()
}

// uiPayloadDigest returns the digest a message's UI certifies.
func uiPayloadDigest(m message.Message) (crypto.Digest, bool) {
	switch v := m.(type) {
	case *message.MinPrepare:
		return v.Digest(), true
	case *message.MinCommit:
		return v.Digest(), true
	case *message.MinViewChange:
		return v.Digest(), true
	case *message.MinNewView:
		return v.Digest(), true
	}
	return crypto.Digest{}, false
}

// msgUI extracts the UI carried by a UI-consuming message.
func msgUI(m message.Message) (usig.UI, bool) {
	switch v := m.(type) {
	case *message.MinPrepare:
		return v.UI, true
	case *message.MinCommit:
		return v.UI, true
	case *message.MinViewChange:
		return v.UI, true
	case *message.MinNewView:
		return v.UI, true
	}
	return usig.UI{}, false
}

func (e *Engine) process(from uint32, m message.Message, verified bool) {
	switch v := m.(type) {
	case *message.MinPrepare:
		e.handlePrepare(from, v, verified)
	case *message.MinCommit:
		e.handleCommit(from, v)
	case *message.MinViewChange:
		e.handleViewChange(from, v)
	case *message.MinNewView:
		e.handleNewView(from, v)
	}
}

// handleRequest admits a client request; only the leader proposes.
// verified skips the authenticator re-check for requests the parallel
// verify stage already cleared.
func (e *Engine) handleRequest(r *message.Request, verified bool) {
	if !verified && !crypto.VerifyAuthenticator(e.ks, r.Auth, r.Digest()) {
		return
	}
	e.noteWorkLocked()
	if e.leader() != e.id {
		_ = e.ep.Send(e.leader(), r)
		return
	}
	e.mu.Lock()
	e.queue = append(e.queue, r)
	e.mu.Unlock()
	e.propose()
}

// propose sends MinPrepares while in-flight credit remains.
func (e *Engine) propose() {
	if e.pending || e.leader() != e.id {
		return
	}
	for {
		e.mu.Lock()
		if len(e.queue) == 0 || e.inFlight >= maxInFlight {
			e.mu.Unlock()
			return
		}
		n := len(e.queue)
		if n > e.cfg.BatchSize {
			n = e.cfg.BatchSize
		}
		batch := make([]*message.Request, n)
		copy(batch, e.queue[:n])
		e.queue = append(e.queue[:0], e.queue[n:]...)
		e.inFlight++
		e.mu.Unlock()

		if e.nextOrder > e.low+e.cfg.WindowSize {
			// Window full: return the batch and wait for checkpoints.
			e.mu.Lock()
			e.queue = append(batch, e.queue...)
			e.inFlight--
			e.mu.Unlock()
			return
		}
		prep := &message.MinPrepare{View: e.view, Requests: batch}
		ui, err := e.sig.CreateUI(prep.Digest())
		if err != nil {
			return
		}
		prep.UI = ui
		e.recordSent(ui, e.nextOrder, prep)
		e.met.prepares.Inc()
		bd := message.BatchDigest(batch)
		e.traceD(telemetry.EvPropose, uint64(e.view), uint64(e.nextOrder), bd[:], "")
		transport.Multicast(e.ep, e.cfg.N, prep)
		// The leader's own prepare is processed inline (its UI is the
		// next expected from itself).
		e.ingest(e.id, ui, prep, false)
	}
}

// handlePrepare accepts the leader's proposal: the total order is
// derived from the leader's UI counter through the view anchor (§4.4 —
// MinBFT derives the order from the counter value, not from explicit
// order numbers). The derivation must be arithmetic, not
// arrival-counting: a prepare can consume its counter in ingest and
// still be skipped here (e.g. it raced ahead of the NEW-VIEW that
// opens its view), and a replica that then counted arrivals would bind
// every later batch one order lower than its peers — same batches,
// rotated orders, a silent state fork that only surfaces when
// checkpoint digests stop matching.
func (e *Engine) handlePrepare(from uint32, p *message.MinPrepare, authVerified bool) {
	if from != e.leader() || p.View != e.view || e.pending {
		return
	}
	e.noteWorkLocked()
	if from != e.id {
		if err := e.sig.VerifyUI(p.UI, p.Digest()); err != nil {
			return
		}
		if !authVerified {
			for _, r := range p.Requests {
				if !crypto.VerifyAuthenticator(e.ks, r.Auth, r.Digest()) {
					return
				}
			}
		}
	}
	if p.UI.Counter < e.anchorCounter {
		return
	}
	o := e.anchorOrder + timeline.Order(p.UI.Counter-e.anchorCounter)
	if o <= e.low {
		return // covered by a stable checkpoint already
	}
	if o >= e.nextOrder {
		e.nextOrder = o + 1
	}
	e.orderByCounter[p.UI.Counter] = o
	s := &slot{
		order: o, batch: p.Requests, batchDigest: message.BatchDigest(p.Requests),
		acks: map[uint32]bool{from: true},
	}
	e.slots[o] = s

	if from != e.id {
		com := &message.MinCommit{
			View: e.view, Replica: e.id, BatchDigest: s.batchDigest,
			Prepare: p, PrepareUI: p.UI,
		}
		ui, err := e.sig.CreateUI(com.Digest())
		if err != nil {
			return
		}
		com.UI = ui
		e.recordSent(ui, o, com)
		s.acks[e.id] = true
		e.met.commits.Inc()
		e.traceD(telemetry.EvCommit, uint64(e.view), uint64(o), s.batchDigest[:], "")
		transport.Multicast(e.ep, e.cfg.N, com)
	}
	// Commits that overtook this prepare are waiting for it.
	if held := e.earlyCommits[p.UI.Counter]; held != nil {
		delete(e.earlyCommits, p.UI.Counter)
		for r, c := range held {
			if c.View == e.view {
				e.applyCommit(r, c, o)
			}
		}
	}
	e.refresh(s)
}

// handleCommit records a follower acknowledgment; the commit names the
// leader UI it answers, which identifies the slot.
func (e *Engine) handleCommit(from uint32, c *message.MinCommit) {
	if c.View != e.view || from == e.id {
		return
	}
	if err := e.sig.VerifyUI(c.UI, c.Digest()); err != nil {
		return
	}
	// Locate the slot through the leader-counter → order mapping this
	// replica recorded when it accepted the prepare.
	o, ok := e.orderByCounter[c.PrepareUI.Counter]
	if !ok {
		// The commit overtook its prepare. Its counter slot is burned
		// (ingest already advanced the sender's stream) and a replay
		// would be discarded, so park it until the prepare lands —
		// bounded like the holdback map against a flooding sender.
		if len(e.earlyCommits) < 4*int(e.cfg.WindowSize) {
			held := e.earlyCommits[c.PrepareUI.Counter]
			if held == nil {
				held = make(map[uint32]*message.MinCommit)
				e.earlyCommits[c.PrepareUI.Counter] = held
			}
			held[from] = c
		}
		return
	}
	e.applyCommit(from, c, o)
}

// applyCommit records one follower ack against the slot at order o.
func (e *Engine) applyCommit(from uint32, c *message.MinCommit, o timeline.Order) {
	s, ok := e.slots[o]
	if !ok {
		return
	}
	if s.batchDigest != c.BatchDigest {
		return // equivocation detected: conflicting digest for one UI
	}
	s.acks[from] = true
	e.refresh(s)
}

func (e *Engine) refresh(s *slot) {
	if !s.committed && len(s.acks) >= e.cfg.Quorum() {
		s.committed = true
	}
	if s.committed && !s.executed {
		s.executed = true
		e.met.committed.Inc()
		e.traceD(telemetry.EvDeliver, uint64(e.view), uint64(s.order), s.batchDigest[:], "")
		// A commit is ordering progress: the leader is doing its job, so
		// the suspicion clock restarts. Execution progress alone is the
		// wrong signal here — a replica that missed an instance later
		// garbage-collected by a checkpoint can never execute again
		// (MinBFT has no state transfer), and on execution-progress-only
		// accounting it would suspect every healthy leader forever,
		// feeding the §4.4 view-change history growth this repo exists
		// to measure.
		if !e.pendingSince.IsZero() {
			e.pendingSince = time.Now()
		}
		e.vcBackoff = 0
		e.exec.inbox.Put(evExec{order: s.order, batch: s.batch})
		if e.leader() == e.id {
			e.mu.Lock()
			if e.inFlight > 0 {
				e.inFlight--
			}
			e.mu.Unlock()
			e.propose()
		}
	}
}

// --- checkpointing ---

// checkpointDue is called by the execution loop at interval
// boundaries. Checkpoint UIs come from the dedicated checkpoint USIG
// instance and are embedded in the shared Checkpoint message's
// certificate fields (issuer/value/MAC).
func (e *Engine) checkpointDue(ev evCkptDue) {
	o, digest := ev.view.Order, ev.view.StateDigest()
	e.ownCkpt = ckptBundle{order: o, snapshot: ev.view.Snapshot(), rv: ev.view.ReplyVector()}
	if o == e.low {
		// This boundary already stabilized (we executed it late);
		// promote the bundle so we can serve transfers for it.
		e.stableCkpt = e.ownCkpt
	}
	ck := &message.Checkpoint{Order: o, Replica: e.id, StateDigest: digest}
	ui, err := e.sigCkpt.CreateUI(ck.Digest())
	if err != nil {
		return
	}
	ck.Cert.Issuer = trinxIssuer(ui.Issuer)
	ck.Cert.Value = ui.Counter
	ck.Cert.MAC = ui.MAC
	e.met.ckptsOwn.Inc()
	e.traceD(telemetry.EvCheckpoint, uint64(e.view), uint64(o), digest[:], "")
	transport.Multicast(e.ep, e.cfg.N, ck)
	e.addCheckpoint(e.id, ck)
}

func (e *Engine) handleCheckpoint(from uint32, ck *message.Checkpoint) {
	if ck.Replica != from {
		return
	}
	ui := usig.UI{Issuer: from | ckptIssuerFlag, Counter: ck.Cert.Value, MAC: ck.Cert.MAC}
	if ck.Cert.Issuer != trinxIssuer(ui.Issuer) {
		return
	}
	if err := e.sigCkpt.VerifyUI(ui, ck.Digest()); err != nil {
		return
	}
	e.addCheckpoint(from, ck)
}

func (e *Engine) addCheckpoint(from uint32, ck *message.Checkpoint) {
	stable := e.ckpts.Add(ck.Order, checkpoint.Announcement[*message.Checkpoint]{
		Replica: from, Digest: ck.StateDigest, Msg: ck,
	})
	if stable != nil && stable.Order > e.low {
		e.low = stable.Order
		e.met.ckptsStable.Inc()
		e.traceD(telemetry.EvCkptStable, uint64(e.view), uint64(stable.Order), stable.Digest[:], "")
		e.ckptProof = stable.Proof
		for o := range e.slots {
			if o <= stable.Order {
				delete(e.slots, o)
			}
		}
		for c, o := range e.orderByCounter {
			if o <= stable.Order {
				delete(e.orderByCounter, c)
			}
		}
		e.pruneHistory(stable.Order)
		e.mu.Lock()
		e.histLenSnapshot = len(e.sentLog)
		e.mu.Unlock()
		if e.ownCkpt.order == stable.Order {
			e.stableCkpt = e.ownCkpt
		}
		if e.exec.lastExecuted() < stable.Order {
			// The slots this stable checkpoint covers are pruned above,
			// so any delivery hole below it just became permanent —
			// execution can only resume from transferred state.
			e.maybeRequestState()
		}
		e.propose()
	}
}

// --- state transfer ---

// maybeRequestState asks the group for the newest stable state,
// rate-limited to one round per second. Without this, a replica that
// missed instances later garbage-collected by a stable checkpoint
// could never execute again: MinBFT's counter-ordered streams have no
// way to re-deliver pruned batches, so one lost commit would silently
// cost the cluster an executing replica (and, with it, checkpoint
// quorums and client reply quorums).
func (e *Engine) maybeRequestState() {
	now := time.Now()
	if now.Sub(e.lastStateReq) < time.Second {
		return
	}
	e.lastStateReq = now
	req := &message.StateRequest{Replica: e.id, From: e.exec.lastExecuted() + 1}
	transport.Multicast(e.ep, e.cfg.N, req)
}

// handleStateRequest serves the stable snapshot bundle if it covers
// the requested frontier. Zombies may fetch state too: the reply is
// read-only and quorum-certified, and a revived zombie that executes
// again still helps clients reach their f+1 matching replies even
// though its own ordering messages stay refused.
func (e *Engine) handleStateRequest(from uint32, req *message.StateRequest) {
	if req.Replica != from || from == e.id {
		return
	}
	if e.stableCkpt.order == 0 || e.stableCkpt.order != e.low || e.stableCkpt.order < req.From {
		return
	}
	_ = e.ep.Send(from, &message.StateReply{
		Replica:     e.id,
		CkptOrder:   e.stableCkpt.order,
		Snapshot:    e.stableCkpt.snapshot,
		ReplyVector: e.stableCkpt.rv,
		Proof:       e.ckptProof,
	})
}

// handleStateReply verifies a transferred snapshot against its
// checkpoint quorum certificate and hands it to the execution stage.
func (e *Engine) handleStateReply(from uint32, rep *message.StateReply) {
	if rep.Replica != from || e.zombies[from] {
		return
	}
	if rep.CkptOrder <= e.exec.lastExecuted() {
		return
	}
	digest := crypto.Combine(crypto.Hash(rep.Snapshot), crypto.Hash(rep.ReplyVector))
	if err := e.verifyCkptProof(rep.CkptOrder, digest, rep.Proof); err != nil {
		return
	}
	done := make(chan error, 1)
	e.exec.inbox.Put(evExec{install: &installReq{
		ckpt: rep.CkptOrder, snapshot: rep.Snapshot, rv: rep.ReplyVector, done: done,
	}})
	select {
	case err := <-done:
		if err != nil {
			return
		}
	case <-e.stopTick:
		return
	}
	e.met.stateXfers.Inc()
	e.trace(telemetry.EvStateXfer, uint64(e.view), uint64(rep.CkptOrder), "adopted")
	// The transferred checkpoint is quorum-certified: adopt it as our
	// stable anchor if it is ahead of what we had.
	if rep.CkptOrder > e.low {
		e.low = rep.CkptOrder
		e.ckptProof = rep.Proof
		e.stableCkpt = ckptBundle{order: rep.CkptOrder, snapshot: rep.Snapshot, rv: rep.ReplyVector}
		for o := range e.slots {
			if o <= rep.CkptOrder {
				delete(e.slots, o)
			}
		}
		for c, o := range e.orderByCounter {
			if o <= rep.CkptOrder {
				delete(e.orderByCounter, c)
			}
		}
		e.pruneHistory(rep.CkptOrder)
		e.mu.Lock()
		e.histLenSnapshot = len(e.sentLog)
		e.mu.Unlock()
		e.propose()
	}
}
