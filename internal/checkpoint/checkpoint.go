// Package checkpoint tracks checkpoint quorums (§5.2.2): replicas
// announce state digests per checkpoint order; once a quorum of
// matching announcements exists, the checkpoint is stable and its
// message set forms the quorum certificate K used for garbage
// collection, view changes, and state transfer.
//
// The tracker is generic over the announcing message type so the
// Hybster engine (message.Checkpoint) and the PBFT baseline
// (message.PBFTCheckpoint) share it. It is confined to one goroutine.
package checkpoint

import (
	"hybster/internal/crypto"
	"hybster/internal/timeline"
)

// Announcement is one replica's checkpoint message, reduced to the
// fields the tracker needs; M retains the original message for proofs.
type Announcement[M any] struct {
	Replica uint32
	Digest  crypto.Digest
	Msg     M
}

// Stable describes a stable checkpoint.
type Stable[M any] struct {
	Order  timeline.Order
	Digest crypto.Digest
	// Proof is the quorum certificate: one announcement per replica.
	Proof []M
}

// Tracker accumulates checkpoint announcements. Announcements more
// than one window behind the newest stable checkpoint are rejected as
// obsolete.
type Tracker[M any] struct {
	quorum    int
	pending   map[timeline.Order]map[uint32]Announcement[M]
	stable    Stable[M]
	hasStable bool
}

// NewTracker creates a tracker requiring quorum matching
// announcements.
func NewTracker[M any](quorum int) *Tracker[M] {
	if quorum < 1 {
		panic("checkpoint: quorum must be positive")
	}
	return &Tracker[M]{
		quorum:  quorum,
		pending: make(map[timeline.Order]map[uint32]Announcement[M]),
	}
}

// Add records one announcement. It returns a non-nil Stable exactly
// when order o becomes stable through this announcement: a quorum of
// replicas announced the same digest. Conflicting digests from
// different replicas coexist until one reaches a quorum (a faulty
// replica may announce garbage; it can never prevent a correct quorum).
func (t *Tracker[M]) Add(o timeline.Order, a Announcement[M]) *Stable[M] {
	if t.hasStable && o <= t.stable.Order {
		return nil
	}
	byReplica, ok := t.pending[o]
	if !ok {
		byReplica = make(map[uint32]Announcement[M])
		t.pending[o] = byReplica
	}
	if _, dup := byReplica[a.Replica]; dup {
		return nil // first announcement per replica wins
	}
	byReplica[a.Replica] = a

	matching := 0
	for _, other := range byReplica {
		if other.Digest == a.Digest {
			matching++
		}
	}
	if matching < t.quorum {
		return nil
	}
	proof := make([]M, 0, matching)
	for _, other := range byReplica {
		if other.Digest == a.Digest {
			proof = append(proof, other.Msg)
		}
	}
	t.stable = Stable[M]{Order: o, Digest: a.Digest, Proof: proof}
	t.hasStable = true
	// Garbage collect this and all older pending checkpoints.
	for old := range t.pending {
		if old <= o {
			delete(t.pending, old)
		}
	}
	// Return a copy: stable checkpoints cross goroutine boundaries
	// (pillar → coordinator) and must not alias tracker state that the
	// next stability overwrites.
	out := t.stable
	return &out
}

// Last returns a copy of the newest stable checkpoint, or nil if none
// exists yet.
func (t *Tracker[M]) Last() *Stable[M] {
	if !t.hasStable {
		return nil
	}
	out := t.stable
	return &out
}

// PendingOrders returns the number of checkpoint orders with
// outstanding announcements (diagnostics and memory-bound tests).
func (t *Tracker[M]) PendingOrders() int { return len(t.pending) }
