package checkpoint

import (
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/timeline"
)

type msg struct {
	replica uint32
	order   timeline.Order
}

func ann(r uint32, d crypto.Digest, o timeline.Order) Announcement[msg] {
	return Announcement[msg]{Replica: r, Digest: d, Msg: msg{replica: r, order: o}}
}

func TestStabilityAtQuorum(t *testing.T) {
	tr := NewTracker[msg](2)
	d := crypto.Hash([]byte("state"))
	if s := tr.Add(50, ann(0, d, 50)); s != nil {
		t.Fatal("stable with a single announcement")
	}
	s := tr.Add(50, ann(1, d, 50))
	if s == nil {
		t.Fatal("not stable at quorum")
	}
	if s.Order != 50 || s.Digest != d || len(s.Proof) != 2 {
		t.Fatalf("stable = %+v", s)
	}
	if tr.Last() == nil || tr.Last().Order != 50 {
		t.Fatal("Last() wrong")
	}
}

func TestMismatchedDigestsDoNotCount(t *testing.T) {
	tr := NewTracker[msg](2)
	good := crypto.Hash([]byte("good"))
	bad := crypto.Hash([]byte("bad"))
	if s := tr.Add(50, ann(0, good, 50)); s != nil {
		t.Fatal("early stable")
	}
	if s := tr.Add(50, ann(1, bad, 50)); s != nil {
		t.Fatal("conflicting digests reached stability")
	}
	// A second matching announcement still stabilizes despite the
	// faulty one.
	s := tr.Add(50, ann(2, good, 50))
	if s == nil || s.Digest != good || len(s.Proof) != 2 {
		t.Fatalf("stable = %+v", s)
	}
}

func TestDuplicateReplicaIgnored(t *testing.T) {
	tr := NewTracker[msg](2)
	d := crypto.Hash([]byte("state"))
	tr.Add(50, ann(0, d, 50))
	if s := tr.Add(50, ann(0, d, 50)); s != nil {
		t.Fatal("one replica counted twice")
	}
	// Equivocating digest from same replica also ignored.
	if s := tr.Add(50, ann(0, crypto.Hash([]byte("x")), 50)); s != nil {
		t.Fatal("equivocating announcement accepted")
	}
}

func TestObsoleteOrdersRejectedAndGarbageCollected(t *testing.T) {
	tr := NewTracker[msg](2)
	d := crypto.Hash([]byte("s"))
	tr.Add(30, ann(0, crypto.Hash([]byte("old")), 30))
	tr.Add(50, ann(0, d, 50))
	tr.Add(50, ann(1, d, 50)) // stable at 50
	if tr.PendingOrders() != 0 {
		t.Fatalf("pending after stability: %d", tr.PendingOrders())
	}
	if s := tr.Add(30, ann(1, d, 30)); s != nil {
		t.Fatal("obsolete checkpoint stabilized")
	}
	if s := tr.Add(50, ann(2, d, 50)); s != nil {
		t.Fatal("already-stable order re-stabilized")
	}
}

func TestAdvancingCheckpoints(t *testing.T) {
	tr := NewTracker[msg](2)
	for _, o := range []timeline.Order{50, 100, 150} {
		d := crypto.Hash([]byte{byte(o)})
		tr.Add(o, ann(0, d, o))
		s := tr.Add(o, ann(1, d, o))
		if s == nil || s.Order != o {
			t.Fatalf("order %d did not stabilize", o)
		}
	}
	if tr.Last().Order != 150 {
		t.Fatalf("Last = %d", tr.Last().Order)
	}
}

func TestOutOfOrderStability(t *testing.T) {
	// A later checkpoint can stabilize first (pillar parallelism);
	// the earlier one is then obsolete.
	tr := NewTracker[msg](2)
	d100 := crypto.Hash([]byte("100"))
	d50 := crypto.Hash([]byte("50"))
	tr.Add(50, ann(0, d50, 50))
	tr.Add(100, ann(0, d100, 100))
	if s := tr.Add(100, ann(1, d100, 100)); s == nil {
		t.Fatal("100 not stable")
	}
	if s := tr.Add(50, ann(1, d50, 50)); s != nil {
		t.Fatal("50 stabilized after 100")
	}
}

func TestQuorumLargerThanTwo(t *testing.T) {
	tr := NewTracker[msg](3)
	d := crypto.Hash([]byte("s"))
	tr.Add(10, ann(0, d, 10))
	tr.Add(10, ann(1, d, 10))
	if s := tr.Add(10, ann(2, d, 10)); s == nil || len(s.Proof) != 3 {
		t.Fatalf("stable = %+v", s)
	}
}

func TestNewTrackerPanicsOnBadQuorum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker[msg](0)
}
