// Package workload generates the client workloads of the evaluation:
// fixed-size opaque payloads for the microbenchmarks (§6.2, §6.3) and
// the read/write operation mix against the coordination service
// (§6.4).
package workload

import (
	"fmt"
	"math/rand"

	"hybster/internal/apps/coordination"
)

// Op is one client operation: the request payload plus its read-only
// classification.
type Op struct {
	Payload  []byte
	ReadOnly bool
}

// Generator produces the operation stream of one client.
type Generator interface {
	// Next returns the client's next operation.
	Next() Op
}

// Fixed issues identical opaque write payloads of the given size — the
// microbenchmark workload ("empty results without any calculation").
type Fixed struct {
	payload []byte
}

// NewFixed creates a fixed-payload generator; size 0 yields empty
// requests.
func NewFixed(size int) *Fixed {
	return &Fixed{payload: make([]byte, size)}
}

// Next implements Generator.
func (f *Fixed) Next() Op { return Op{Payload: f.payload} }

// Coordination issues the §6.4 workload: clients store and retrieve
// znodes with dataSize bytes of data, with the configured fraction of
// reads. Each client works on its own set of keys so creates do not
// collide.
type Coordination struct {
	rng       *rand.Rand
	readRatio float64
	data      []byte
	prefix    string
	keys      int
	created   int
	seq       int
}

// NewCoordination creates the coordination workload for one client.
// readRatio is the fraction of read (GetData) operations in [0,1].
func NewCoordination(clientID uint32, readRatio float64, dataSize, keys int) *Coordination {
	if keys <= 0 {
		keys = 16
	}
	return &Coordination{
		rng:       rand.New(rand.NewSource(int64(clientID))),
		readRatio: readRatio,
		data:      make([]byte, dataSize),
		prefix:    fmt.Sprintf("/c%d", clientID),
		keys:      keys,
	}
}

// Setup returns the operations a client must run once before the
// measured phase: creating its key space.
func (c *Coordination) Setup() []Op {
	ops := []Op{{Payload: coordination.EncodeRequest(coordination.OpCreate, c.prefix, nil, 0)}}
	for k := 0; k < c.keys; k++ {
		ops = append(ops, Op{Payload: coordination.EncodeRequest(
			coordination.OpCreate, c.key(k), c.data, 0)})
	}
	return ops
}

func (c *Coordination) key(k int) string {
	return fmt.Sprintf("%s/k%03d", c.prefix, k)
}

// Next implements Generator: a GetData with probability readRatio,
// otherwise a SetData, both on a random key of the client's set.
func (c *Coordination) Next() Op {
	k := c.key(c.rng.Intn(c.keys))
	if c.rng.Float64() < c.readRatio {
		return Op{
			Payload:  coordination.EncodeRequest(coordination.OpGetData, k, nil, 0),
			ReadOnly: true,
		}
	}
	c.seq++
	return Op{Payload: coordination.EncodeRequest(coordination.OpSetData, k, c.data, 0)}
}
