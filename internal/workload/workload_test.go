package workload

import (
	"testing"

	"hybster/internal/apps/coordination"
)

func TestFixedGenerator(t *testing.T) {
	g := NewFixed(128)
	op := g.Next()
	if len(op.Payload) != 128 || op.ReadOnly {
		t.Fatalf("op = %+v", op)
	}
	empty := NewFixed(0)
	if len(empty.Next().Payload) != 0 {
		t.Fatal("empty payload not empty")
	}
}

func TestCoordinationSetupCreatesKeySpace(t *testing.T) {
	svc := coordination.New()
	g := NewCoordination(7, 0.5, 64, 8)
	for _, op := range g.Setup() {
		out := svc.Execute(7, op.Payload, op.ReadOnly)
		res, err := coordination.DecodeResult(out)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != coordination.StatusOK {
			t.Fatalf("setup op failed: %v", res.Status)
		}
	}
	if svc.NodeCount() != 9 { // prefix + 8 keys
		t.Fatalf("NodeCount = %d", svc.NodeCount())
	}
}

func TestCoordinationOpsSucceedAgainstService(t *testing.T) {
	svc := coordination.New()
	g := NewCoordination(3, 0.5, 64, 4)
	for _, op := range g.Setup() {
		svc.Execute(3, op.Payload, op.ReadOnly)
	}
	for i := 0; i < 100; i++ {
		op := g.Next()
		out := svc.Execute(3, op.Payload, op.ReadOnly)
		res, err := coordination.DecodeResult(out)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != coordination.StatusOK {
			t.Fatalf("op %d failed: %v", i, res.Status)
		}
	}
}

func TestCoordinationReadRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.25, 0.75, 1} {
		g := NewCoordination(1, ratio, 16, 8)
		reads := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if g.Next().ReadOnly {
				reads++
			}
		}
		got := float64(reads) / n
		if got < ratio-0.05 || got > ratio+0.05 {
			t.Errorf("ratio %.2f: measured %.3f", ratio, got)
		}
	}
}

func TestCoordinationClientsIsolated(t *testing.T) {
	// Two clients' key spaces must not collide, or their creates
	// would conflict during setup.
	svc := coordination.New()
	for _, id := range []uint32{1, 2} {
		g := NewCoordination(id, 0, 16, 4)
		for _, op := range g.Setup() {
			out := svc.Execute(id, op.Payload, op.ReadOnly)
			res, _ := coordination.DecodeResult(out)
			if res.Status != coordination.StatusOK {
				t.Fatalf("client %d setup collision: %v", id, res.Status)
			}
		}
	}
}

func TestCoordinationDeterministicPerSeed(t *testing.T) {
	a := NewCoordination(5, 0.5, 16, 4)
	b := NewCoordination(5, 0.5, 16, 4)
	for i := 0; i < 50; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.ReadOnly != ob.ReadOnly || string(oa.Payload) != string(ob.Payload) {
			t.Fatal("same client ID produced different streams")
		}
	}
}
