// Package verify provides an off-pillar parallel verification stage
// for client request authenticators.
//
// In the paper's consensus-oriented parallelization the pillars are the
// scarce resource: everything a pillar executes serializes its
// order-number class. Client-authenticator checks are
// embarrassingly parallel (one MAC per request, no protocol state), so
// this stage lifts them out of the pillar event loops into a small
// worker pool that runs between the transport and the pillar mailboxes.
// Events enter a mailbox already carrying a verified bit; pillars keep
// their sequential re-check as a fallback for events that bypassed the
// stage (direct enqueues, tests, engines running without a pool).
//
// Rejection happens before the mailbox: a batch containing a forged
// authenticator never reaches a pillar at all, which also moves the
// attacker-induced work of a corruption flood off the protocol's
// critical path.
package verify

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// task is one submitted batch with its completion callback.
type task struct {
	reqs []*message.Request
	done func(ok bool)
}

// Pool verifies request batches on worker goroutines. Submission order
// between batches is not preserved — workers race, so completions may
// come back reordered. The engines' inbound paths must not observe
// that (per-sender delivery order is a protocol invariant); they front
// the pool with Ordered, which restores submission order at delivery.
type Pool struct {
	ks    *crypto.KeyStore
	tasks chan task
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	depth atomic.Int64

	// nil-safe metric handles (telemetry off = zero instrumentation).
	verified *telemetry.Counter
	rejected *telemetry.Counter
	latency  *telemetry.Histogram
}

// queueDepth bounds the submission channel; a full queue applies
// backpressure to the transport goroutine, like the pillar mailboxes'
// unbounded growth never would.
const queueDepth = 1024

// NewPool starts a pool verifying against ks with the given number of
// workers (<= 0 selects a default sized to leave the pillars their
// cores). Telemetry may be nil.
func NewPool(ks *crypto.KeyStore, workers int, tel *telemetry.Telemetry) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 2 {
			workers = 2
		}
		if workers > 8 {
			workers = 8
		}
	}
	p := &Pool{
		ks:    ks,
		tasks: make(chan task, queueDepth),
		done:  make(chan struct{}),
	}
	if tel != nil {
		p.verified = tel.Counter("hybster_verify_verified_total", "request authenticators verified by the parallel stage")
		p.rejected = tel.Counter("hybster_verify_rejected_total", "request batches rejected by the parallel stage")
		p.latency = tel.Histogram("hybster_verify_latency_ns", "submit-to-verdict latency of the parallel verify stage")
		tel.GaugeFunc("hybster_verify_queue_depth", "request batches queued for parallel verification",
			func() float64 { return float64(p.depth.Load()) })
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit queues reqs for verification; done is invoked exactly once on
// a worker goroutine with the verdict. After Close (or when the queue
// is saturated at shutdown) the batch is verified synchronously on the
// caller's goroutine, so no submission is ever silently lost.
func (p *Pool) Submit(reqs []*message.Request, done func(ok bool)) {
	t := task{reqs: reqs, done: done}
	p.depth.Add(1)
	if p.latency != nil {
		start := time.Now()
		inner := done
		t.done = func(ok bool) {
			p.latency.ObserveDuration(time.Since(start))
			inner(ok)
		}
	}
	select {
	case p.tasks <- t:
	case <-p.done:
		p.run(t)
	}
}

// Close stops the workers. Queued tasks are drained (verified inline by
// the draining worker), not dropped.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.run(t)
		case <-p.done:
			// Drain what was queued before shutdown.
			for {
				select {
				case t := <-p.tasks:
					p.run(t)
				default:
					return
				}
			}
		}
	}
}

// run verifies one batch and reports the verdict.
func (p *Pool) run(t task) {
	ok := true
	for _, r := range t.reqs {
		if !crypto.VerifyAuthenticator(p.ks, r.Auth, r.Digest()) {
			ok = false
			break
		}
	}
	p.depth.Add(-1)
	if ok {
		p.verified.Add(uint64(len(t.reqs)))
	} else {
		p.rejected.Inc()
	}
	t.done(ok)
}
