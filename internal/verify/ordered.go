package verify

import (
	"sync"

	"hybster/internal/message"
)

// Ordered fronts a Pool with per-sender reorder buffers: batches are
// verified on the pool's workers in parallel, but each sender's
// completion callbacks run in exact submission order. The engines'
// inbound paths need this — transports deliver each connection's
// messages in order, and the protocol layers lean on that (MinBFT
// consumes per-sender UI counters strictly in sequence; a stage that
// let one message overtake another from the same sender would turn
// its holdback machinery into permanent churn and drop genuine
// traffic at the holdback bound during retransmit storms). Ordering
// is deliberately per sender, not global: transports never promised
// cross-connection order, and independent senders' streams must keep
// verifying and delivering concurrently (a global buffer funnels all
// delivery through one drainer and costs half the stage's
// throughput). With the lanes, verification is pipelined ahead of
// delivery instead of serializing it, and each sender's delivery
// order is exactly what an inline check would have produced.
type Ordered struct {
	pool *Pool

	mu       sync.Mutex
	lanes    map[uint32]*lane
	overflow lane
}

// maxLanes bounds the lane map: replica lanes are few, client
// populations unbounded. Senders beyond the cap share one overflow
// lane — still ordered, just coarser.
const maxLanes = 4096

// lane is one sender's reorder buffer.
type lane struct {
	mu         sync.Mutex
	seq        uint64 // next ticket to hand out
	next       uint64 // next ticket to deliver
	ready      map[uint64]func()
	delivering bool
}

// NewOrdered wraps pool in per-sender submission-ordered delivery.
func NewOrdered(pool *Pool) *Ordered {
	return &Ordered{pool: pool, lanes: make(map[uint32]*lane)}
}

func (o *Ordered) laneFor(from uint32) *lane {
	o.mu.Lock()
	defer o.mu.Unlock()
	l := o.lanes[from]
	if l == nil {
		if len(o.lanes) >= maxLanes {
			return &o.overflow
		}
		l = &lane{ready: make(map[uint64]func())}
		o.lanes[from] = l
	}
	return l
}

// Submit queues reqs for parallel verification; done(ok) runs after
// the callbacks of every earlier Submit and Pass from the same
// sender, regardless of which worker finishes first.
func (o *Ordered) Submit(from uint32, reqs []*message.Request, done func(ok bool)) {
	l := o.laneFor(from)
	l.mu.Lock()
	t := l.seq
	l.seq++
	l.mu.Unlock()
	o.pool.Submit(reqs, func(ok bool) {
		l.complete(t, func() { done(ok) })
	})
}

// Pass schedules done without any verification, keeping it in
// submission order relative to the sender's Submit callbacks.
// Messages that carry no client authenticators use it so they can
// neither overtake nor be overtaken by verified traffic from the same
// connection.
func (o *Ordered) Pass(from uint32, done func()) {
	l := o.laneFor(from)
	l.mu.Lock()
	t := l.seq
	l.seq++
	l.mu.Unlock()
	l.complete(t, done)
}

// complete parks a finished ticket and drains the consecutive run of
// ready tickets. A single goroutine drains a lane at a time and
// callbacks run outside the lock: a callback may re-enter the stage
// (an in-process transport can loop a send synchronously back into an
// engine's inbound handler), and a ticket parked during a drain is
// picked up by the active drainer.
func (l *lane) complete(t uint64, fn func()) {
	l.mu.Lock()
	if l.ready == nil {
		l.ready = make(map[uint64]func()) // overflow lane is zero-valued
	}
	l.ready[t] = fn
	if l.delivering {
		l.mu.Unlock()
		return
	}
	l.delivering = true
	for {
		f, ok := l.ready[l.next]
		if !ok {
			break
		}
		delete(l.ready, l.next)
		l.next++
		l.mu.Unlock()
		f()
		l.mu.Lock()
	}
	l.delivering = false
	l.mu.Unlock()
}
