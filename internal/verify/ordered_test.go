package verify

import (
	"sync"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/message"
)

// testRequest builds a request whose authenticator verifies at replica
// 0 of a group keyed by master; forged flips a MAC byte so it must be
// rejected.
func testRequest(master crypto.Key, seq uint64, forged bool) *message.Request {
	client := crypto.NewKeyStore(7, master)
	r := &message.Request{Client: 7, Seq: seq, Payload: []byte{byte(seq)}}
	r.Auth = crypto.NewAuthenticator(client, r.Digest(), 3)
	if forged {
		r.Auth.MACs[0][0] ^= 0xff
	}
	return r
}

// TestOrderedDeliversInSubmissionOrder floods the reorder buffer with
// interleaved Submit and Pass tickets on several sender lanes and
// checks that each lane's callbacks fire in its submission order with
// the correct verdicts, however the pool's workers race.
func TestOrderedDeliversInSubmissionOrder(t *testing.T) {
	master := crypto.Key("ordered-test-master-key")
	replica := crypto.NewKeyStore(0, master)
	pool := NewPool(replica, 4, nil)
	defer pool.Close()
	ord := NewOrdered(pool)

	const senders, perSender = 4, 200
	var mu sync.Mutex
	got := make(map[uint32][]int) // sender -> delivered ticket indexes
	verdicts := make(map[uint32][]bool)
	var wg sync.WaitGroup
	wg.Add(senders)
	var done sync.WaitGroup
	done.Add(senders * perSender)
	for s := uint32(0); s < senders; s++ {
		go func(s uint32) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				i := i
				switch i % 3 {
				case 0: // valid batch
					ord.Submit(s, []*message.Request{testRequest(master, uint64(i), false)}, func(ok bool) {
						mu.Lock()
						got[s] = append(got[s], i)
						verdicts[s] = append(verdicts[s], ok)
						mu.Unlock()
						done.Done()
					})
				case 1: // forged batch
					ord.Submit(s, []*message.Request{testRequest(master, uint64(i), true)}, func(ok bool) {
						mu.Lock()
						got[s] = append(got[s], i)
						verdicts[s] = append(verdicts[s], ok)
						mu.Unlock()
						done.Done()
					})
				default: // passthrough
					ord.Pass(s, func() {
						mu.Lock()
						got[s] = append(got[s], i)
						verdicts[s] = append(verdicts[s], true)
						mu.Unlock()
						done.Done()
					})
				}
			}
		}(s)
	}
	wg.Wait()
	done.Wait()

	for s := uint32(0); s < senders; s++ {
		if len(got[s]) != perSender {
			t.Fatalf("sender %d: %d callbacks, want %d", s, len(got[s]), perSender)
		}
		for i, idx := range got[s] {
			if idx != i {
				t.Fatalf("sender %d: callback %d delivered ticket %d — stage reordered the stream", s, i, idx)
			}
			wantOK := i%3 != 1
			if verdicts[s][i] != wantOK {
				t.Fatalf("sender %d ticket %d: verdict %v, want %v", s, i, verdicts[s][i], wantOK)
			}
		}
	}
}

// TestOrderedReentrantPass pins that a callback may re-enter the same
// lane (an in-process transport can loop a send synchronously back
// into the inbound handler) without deadlocking, and that the
// re-entered ticket still delivers after every earlier ticket.
func TestOrderedReentrantPass(t *testing.T) {
	master := crypto.Key("ordered-test-master-key")
	replica := crypto.NewKeyStore(0, master)
	pool := NewPool(replica, 2, nil)
	defer pool.Close()
	ord := NewOrdered(pool)

	var order []string
	var mu sync.Mutex
	fin := make(chan struct{})
	ord.Submit(1, []*message.Request{testRequest(master, 1, false)}, func(ok bool) {
		mu.Lock()
		order = append(order, "outer")
		mu.Unlock()
		ord.Pass(1, func() {
			mu.Lock()
			order = append(order, "inner")
			mu.Unlock()
			close(fin)
		})
	})
	<-fin
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("delivery order %v, want [outer inner]", order)
	}
}

// TestOrderedLaneCapOverflow pins the lane-map bound: senders beyond
// maxLanes share the overflow lane and still deliver every callback.
func TestOrderedLaneCapOverflow(t *testing.T) {
	master := crypto.Key("ordered-test-master-key")
	replica := crypto.NewKeyStore(0, master)
	pool := NewPool(replica, 2, nil)
	defer pool.Close()
	ord := NewOrdered(pool)

	for s := uint32(0); s < maxLanes; s++ {
		ord.laneFor(s)
	}
	if got := ord.laneFor(maxLanes + 1); got != &ord.overflow {
		t.Fatal("sender beyond the lane cap did not land on the overflow lane")
	}
	var delivered []int
	var mu sync.Mutex
	var done sync.WaitGroup
	done.Add(3)
	for i := 0; i < 3; i++ {
		i := i
		ord.Pass(maxLanes+uint32(i), func() {
			mu.Lock()
			delivered = append(delivered, i)
			mu.Unlock()
			done.Done()
		})
	}
	done.Wait()
	if len(delivered) != 3 || delivered[0] != 0 || delivered[1] != 1 || delivered[2] != 2 {
		t.Fatalf("overflow lane delivered %v, want [0 1 2]", delivered)
	}
}
