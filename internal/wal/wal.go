// Package wal implements the durable write-ahead log a replica needs
// to survive a process crash with its safety guarantees intact. It has
// two halves:
//
//   - Log: an append-only, CRC-framed, fsync-batched segment log of
//     certified protocol decisions (committed batches) and stable
//     checkpoints (with their quorum proofs and state snapshots). On
//     recovery the newest checkpoint plus the decision tail replayed on
//     top reconstruct execution up to the last synced instant; the rest
//     is fetched through the protocol's normal state transfer. A stable
//     checkpoint supersedes everything before it, so appending one
//     rotates to a fresh segment and garbage-collects the older ones.
//
//   - SealStore: an atomic blob store for sealed trusted-counter state
//     (package enclave seals, this stores). Blobs are written via
//     temp-file + rename + fsync so a crash never leaves a torn seal.
//
// The log tolerates a torn tail: a truncated or corrupt final record
// (the write the crash interrupted) is discarded; corruption in the
// middle of a segment aborts recovery with an error, because that is
// disk damage, not a crash artifact.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hybster/internal/telemetry"
)

// Errors returned by the log.
var (
	// ErrCorrupt reports CRC or structural damage before the log tail.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by appends after Close.
	ErrClosed = errors.New("wal: closed")
)

// Options tune the log. The zero value selects defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// SyncInterval batches fsyncs: appends mark the log dirty and a
	// background flusher syncs at this cadence. Zero selects the 5 ms
	// default; negative disables batching and syncs on every append
	// (slow, fully durable).
	SyncInterval time.Duration
	// Telemetry receives the log's metrics (hybster_wal_*); nil
	// disables instrumentation.
	Telemetry *telemetry.Telemetry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 5 * time.Millisecond
	}
	return o
}

// frame header: length (4) | crc32 of payload (4).
const frameHeader = 8

// maxRecordBytes bounds a single record against hostile or damaged
// length prefixes.
const maxRecordBytes = 128 << 20

// Log is one replica's write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	seq     uint64            // active segment sequence number
	size    int64             // bytes written to the active segment
	synced  int64             // bytes of the active segment known fsynced
	segMax  map[uint64]uint64 // per segment: highest decision order it holds
	dirty   bool
	closed  bool
	syncErr error

	stopFlush chan struct{}
	flushDone chan struct{}

	met walMetrics
}

// walMetrics holds the log's metric handles (all nil-safe; zero value
// = instrumentation off).
type walMetrics struct {
	appends     *telemetry.Counter
	appendBytes *telemetry.Counter
	fsyncs      *telemetry.Counter
	fsyncLat    *telemetry.Histogram
	rotations   *telemetry.Counter
	gcSegments  *telemetry.Counter
}

func newWALMetrics(tel *telemetry.Telemetry) walMetrics {
	if tel == nil {
		return walMetrics{}
	}
	return walMetrics{
		appends:     tel.Counter("hybster_wal_appends_total", "records appended"),
		appendBytes: tel.Counter("hybster_wal_append_bytes_total", "framed bytes appended"),
		fsyncs:      tel.Counter("hybster_wal_fsyncs_total", "fsync calls on the active segment"),
		fsyncLat:    tel.Histogram("hybster_wal_fsync_seconds", "fsync latency"),
		rotations:   tel.Counter("hybster_wal_rotations_total", "segment rotations"),
		gcSegments:  tel.Counter("hybster_wal_gc_segments_total", "segments deleted by checkpoint subsumption"),
	}
}

// Recovered is what Open reconstructed from an existing log directory.
type Recovered struct {
	// Checkpoint is the newest stable checkpoint on disk, nil if none.
	// It may lack a snapshot (stability reached before local execution
	// did); it then proves the group's frontier but cannot seed the
	// application state.
	Checkpoint *CheckpointRec
	// Base is the newest checkpoint that DOES carry a snapshot — the
	// point execution can restart from. Equal to Checkpoint when that
	// one has a snapshot, older or nil otherwise.
	Base *CheckpointRec
	// Decisions are the committed batches after Base, ascending by
	// order, deduplicated keeping the latest append (a re-commit in a
	// higher view supersedes the earlier decision). Only a
	// snapshot-bearing checkpoint subsumes decisions: below a
	// snapshot-less one they remain the sole way to rebuild state
	// locally.
	Decisions []DecisionRec
}

// LastOrder returns the highest order the recovered state covers.
func (r Recovered) LastOrder() (o uint64) {
	if r.Checkpoint != nil {
		o = uint64(r.Checkpoint.Order)
	}
	for _, d := range r.Decisions {
		if uint64(d.Order) > o {
			o = uint64(d.Order)
		}
	}
	return o
}

// Open opens (creating if necessary) the log in dir and replays its
// contents. The returned Log appends after the recovered tail.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, Recovered{}, err
	}
	var rec Recovered
	byOrder := make(map[uint64]DecisionRec)
	segMax := make(map[uint64]uint64)
	for _, s := range segs {
		s := s
		if err := scanSegment(filepath.Join(dir, segmentName(s)), func(payload []byte) error {
			r, err := DecodeRecord(payload)
			if err != nil {
				return err
			}
			switch v := r.(type) {
			case *CheckpointRec:
				rec.Checkpoint = v
				if v.Snapshot != nil {
					rec.Base = v
					for o := range byOrder {
						if o <= uint64(v.Order) {
							delete(byOrder, o)
						}
					}
				}
			case *DecisionRec:
				if m, ok := segMax[s]; !ok || uint64(v.Order) > m {
					segMax[s] = uint64(v.Order)
				}
				if rec.Base == nil || uint64(v.Order) > uint64(rec.Base.Order) {
					byOrder[uint64(v.Order)] = *v
				}
			}
			return nil
		}); err != nil {
			return nil, Recovered{}, err
		}
	}
	for _, d := range byOrder {
		rec.Decisions = append(rec.Decisions, d)
	}
	sort.Slice(rec.Decisions, func(i, j int) bool { return rec.Decisions[i].Order < rec.Decisions[j].Order })

	l := &Log{dir: dir, opts: opts, segMax: segMax,
		stopFlush: make(chan struct{}), flushDone: make(chan struct{}),
		met: newWALMetrics(opts.Telemetry)}
	if tel := opts.Telemetry; tel != nil {
		tel.Gauge("hybster_wal_recovered_decisions",
			"decision records replayed at the last open").Set(int64(len(rec.Decisions)))
		tel.Gauge("hybster_wal_recovered_order",
			"highest order covered by recovered state").Set(int64(rec.LastOrder()))
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	if err := l.openSegment(next); err != nil {
		return nil, Recovered{}, err
	}
	// Older segments stay until the next checkpoint append GCs them.
	go l.flushLoop()
	return l, rec, nil
}

// AppendDecision logs one committed batch. Durability is batched: the
// record is on disk after the next sync interval (or Sync call).
func (l *Log) AppendDecision(d *DecisionRec) error {
	return l.append(d.encode(), uint64(d.Order), false)
}

// AppendCheckpoint logs a stable checkpoint, rotating to a fresh
// segment first and then deleting the older segments the checkpoint
// subsumes — those whose decisions all have order at or below the
// checkpoint's. A segment holding a decision beyond the checkpoint is
// kept; it will fall to a later checkpoint. The record is synced before
// GC runs, so a crash can duplicate log prefixes but never lose the
// checkpoint.
//
// A snapshot-less checkpoint (stability outran local execution) is
// logged and synced but subsumes nothing: the decisions below it are
// the only material a cold restart can rebuild state from, so their
// segments survive until a checkpoint with a snapshot covers them.
func (l *Log) AppendCheckpoint(c *CheckpointRec) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	keep := l.seq
	if err := l.writeLocked(c.encode()); err != nil {
		l.mu.Unlock()
		return err
	}
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if c.Snapshot == nil {
		l.mu.Unlock()
		return nil
	}
	var drop []uint64
	for s, maxOrder := range l.segMax {
		if s < keep && maxOrder <= uint64(c.Order) {
			drop = append(drop, s)
			delete(l.segMax, s)
		}
	}
	l.mu.Unlock()

	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	dropSet := make(map[uint64]bool, len(drop))
	for _, s := range drop {
		dropSet[s] = true
	}
	for _, s := range segs {
		// Segments never tracked in segMax hold no decisions (only
		// superseded checkpoints); they are subsumed too.
		if s < keep && (dropSet[s] || !l.trackedSegment(s)) {
			if os.Remove(filepath.Join(l.dir, segmentName(s))) == nil {
				l.met.gcSegments.Inc()
			}
		}
	}
	return nil
}

func (l *Log) trackedSegment(s uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.segMax[s]
	return ok
}

// Sync forces all appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Close flushes, syncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stopFlush)
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	<-l.flushDone
	return err
}

// Abandon closes the log the way kill -9 would: no final flush, and
// the bytes appended since the last fsync are cut down to a torn tail
// (half of the unsynced span survives, so the file ends mid-frame when
// anything was in flight — the exact artifact a power cut leaves for
// recovery to discard). In-process crash harnesses use it to make a
// "crashed" replica's next boot exercise the genuine torn-state
// recovery path instead of the graceful-shutdown one.
func (l *Log) Abandon() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stopFlush)
	var err error
	if l.size > l.synced {
		torn := l.synced + (l.size-l.synced)/2
		err = l.f.Truncate(torn)
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	<-l.flushDone
	return err
}

// --- internals -------------------------------------------------------------

func (l *Log) append(payload []byte, order uint64, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if err := l.writeLocked(payload); err != nil {
		return err
	}
	if v, ok := l.segMax[l.seq]; !ok || order > v {
		l.segMax[l.seq] = order
	}
	if sync || l.opts.SyncInterval <= 0 {
		return l.syncLocked()
	}
	l.dirty = true
	return nil
}

func (l *Log) writeLocked(payload []byte) error {
	frame := make([]byte, frameHeader+len(payload))
	putU32(frame[0:4], uint32(len(payload)))
	putU32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	n, err := l.f.Write(frame)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.met.appends.Inc()
	l.met.appendBytes.Add(uint64(n))
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.met.fsyncs.Inc()
	l.met.fsyncLat.ObserveDuration(time.Since(start))
	l.dirty = false
	l.synced = l.size
	return nil
}

func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
	}
	l.met.rotations.Inc()
	return l.openSegmentLocked(l.seq + 1)
}

func (l *Log) openSegment(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openSegmentLocked(seq)
}

func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f, l.seq, l.size = f, seq, st.Size()
	l.synced = l.size
	return nil
}

// flushLoop batches fsyncs in the background.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	iv := l.opts.SyncInterval
	if iv <= 0 {
		return // every append syncs inline
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopFlush:
			return
		}
	}
}

// --- segment files ----------------------------------------------------------

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.seg", seq) }

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016d.seg", &seq); err == nil {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment streams every intact record payload of one segment to fn.
// The scan stops at the first damaged frame (truncated, implausible
// length, or CRC mismatch): a crash can only tear the tail, and for
// mid-file disk damage the safe reaction is identical — recover the
// prefix and let state transfer cover the rest. A frame whose CRC
// verifies but whose payload does not decode is ErrCorrupt: that is a
// format bug, not a crash artifact, and must surface.
func scanSegment(path string, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return nil
		}
		n := int(getU32(rest[0:4]))
		if n > maxRecordBytes || len(rest) < frameHeader+n {
			return nil
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != getU32(rest[4:8]) {
			return nil
		}
		if err := fn(payload); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
		off += frameHeader + n
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
