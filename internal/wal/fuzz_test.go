package wal

import (
	"testing"
)

// FuzzDecodeRecord hammers the WAL record decoder with arbitrary bytes.
// The decoder sits on the crash-recovery path, where it reads whatever a
// dying process left on disk, so it must never panic and must report
// damage as ErrCorrupt rather than returning half-parsed records.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{recDecision})
	f.Add([]byte{recCheckpoint})
	f.Add(testDecision(0, 1, 1).encode())
	f.Add(testDecision(3, 1<<40, 99).encode())
	f.Add(testCheckpoint(8).encode())
	f.Add((&CheckpointRec{Order: 16}).encode()) // nil snapshot/rv/proof
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			if rec != nil {
				t.Fatalf("error %v with non-nil record %T", err, rec)
			}
			return
		}
		// A successful decode must normalize: re-encoding the decoded
		// record and decoding that again must reach a fixed point. (The
		// embedded message codec is deliberately lenient — e.g. any
		// nonzero byte decodes as true — so the first re-encode may
		// differ from the raw input, but never from the second.)
		reencode := func(r any) []byte {
			switch v := r.(type) {
			case *DecisionRec:
				return v.encode()
			case *CheckpointRec:
				return v.encode()
			default:
				t.Fatalf("unexpected record type %T", r)
				return nil
			}
		}
		once := reencode(rec)
		rec2, err := DecodeRecord(once)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if twice := reencode(rec2); string(once) != string(twice) {
			t.Fatalf("encoding not a fixed point:\n once  %x\n twice %x", once, twice)
		}
	})
}
