package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrNoSeal is returned by SealStore.Load when no blob exists under the
// given name. Callers distinguish "first boot" (no seal expected) from
// "amnesia" (the platform's seal register says one should exist).
var ErrNoSeal = errors.New("wal: no sealed blob")

// SealStore persists sealed enclave blobs atomically. Each Save writes
// a temp file, fsyncs it, renames it over the target, and fsyncs the
// directory, so a crash at any point leaves either the old blob or the
// new one — never a torn mix.
type SealStore struct {
	dir string
}

// NewSealStore opens (creating if necessary) a seal store rooted at dir.
func NewSealStore(dir string) (*SealStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("wal: seal store: %w", err)
	}
	return &SealStore{dir: dir}, nil
}

func (s *SealStore) path(name string) string {
	return filepath.Join(s.dir, name+".seal")
}

// Save atomically persists blob under name.
func (s *SealStore) Save(name string, blob []byte) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: seal store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: seal store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: seal store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: seal store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		return fmt.Errorf("wal: seal store: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Load returns the blob saved under name, or ErrNoSeal if none exists.
func (s *SealStore) Load(name string) ([]byte, error) {
	b, err := os.ReadFile(s.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoSeal, name)
	}
	if err != nil {
		return nil, fmt.Errorf("wal: seal store: %w", err)
	}
	return b, nil
}

// SaveSeal implements trinx.SealSink.
func (s *SealStore) SaveSeal(name string, blob []byte) error {
	return s.Save(name, blob)
}

// LoadSeal implements trinx.SealSink: a missing blob is ok=false, not
// an error.
func (s *SealStore) LoadSeal(name string) ([]byte, bool, error) {
	b, err := s.Load(name)
	if errors.Is(err, ErrNoSeal) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Remove deletes the blob saved under name (used by tests to simulate
// disk loss). Removing a missing blob is not an error.
func (s *SealStore) Remove(name string) error {
	if err := os.Remove(s.path(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("wal: seal store: %w", err)
	}
	return nil
}
