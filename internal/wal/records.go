package wal

import (
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
)

// Record type tags (first payload byte).
const (
	recDecision   uint8 = 1
	recCheckpoint uint8 = 2
)

// DecisionRec is one committed consensus instance: the batch a replica
// delivered to execution for (view, order). Requests ride in their wire
// encoding so the record needs no schema of its own.
type DecisionRec struct {
	View     timeline.View
	Order    timeline.Order
	Requests []*message.Request
}

// CheckpointRec is one stable checkpoint: the digest agreed on by a
// quorum, the proof (quorum of CHECKPOINT announcements), and the state
// needed to restart execution from it. Snapshot and ReplyVector may be
// nil when the local replica never executed to the boundary (it then
// recovers via state transfer instead).
type CheckpointRec struct {
	Order       timeline.Order
	Digest      crypto.Digest
	Snapshot    []byte
	ReplyVector []byte
	Proof       []*message.Checkpoint
}

func (d *DecisionRec) encode() []byte {
	e := message.NewEncoder(64)
	e.U8(recDecision)
	e.U64(uint64(d.View))
	e.U64(uint64(d.Order))
	e.Len(len(d.Requests))
	for _, r := range d.Requests {
		e.VarBytes(message.Marshal(r))
	}
	return e.Bytes()
}

func (c *CheckpointRec) encode() []byte {
	e := message.NewEncoder(64 + len(c.Snapshot) + len(c.ReplyVector))
	e.U8(recCheckpoint)
	e.U64(uint64(c.Order))
	e.Bytes32(c.Digest)
	e.VarBytes(c.Snapshot)
	e.VarBytes(c.ReplyVector)
	e.Len(len(c.Proof))
	for _, ck := range c.Proof {
		e.VarBytes(message.Marshal(ck))
	}
	return e.Bytes()
}

// DecodeRecord parses one record payload, returning *DecisionRec or
// *CheckpointRec. It never panics, whatever the input — the WAL decoder
// is on the crash-recovery path and fuzzed like the wire codec.
func DecodeRecord(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	d := message.NewDecoder(payload)
	switch tag := d.U8(); tag {
	case recDecision:
		rec := &DecisionRec{
			View:  timeline.View(d.U64()),
			Order: timeline.Order(d.U64()),
		}
		n := d.Len(64)
		for i := 0; i < n && d.Err() == nil; i++ {
			m, err := message.Unmarshal(d.VarBytes())
			if err != nil {
				return nil, fmt.Errorf("%w: request %d: %v", ErrCorrupt, i, err)
			}
			r, ok := m.(*message.Request)
			if !ok {
				return nil, fmt.Errorf("%w: request %d: unexpected %T", ErrCorrupt, i, m)
			}
			rec.Requests = append(rec.Requests, r)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return rec, nil
	case recCheckpoint:
		rec := &CheckpointRec{Order: timeline.Order(d.U64())}
		rec.Digest = d.Bytes32()
		rec.Snapshot = cloneOrNil(d.VarBytes())
		rec.ReplyVector = cloneOrNil(d.VarBytes())
		n := d.Len(64)
		for i := 0; i < n && d.Err() == nil; i++ {
			m, err := message.Unmarshal(d.VarBytes())
			if err != nil {
				return nil, fmt.Errorf("%w: proof %d: %v", ErrCorrupt, i, err)
			}
			ck, ok := m.(*message.Checkpoint)
			if !ok {
				return nil, fmt.Errorf("%w: proof %d: unexpected %T", ErrCorrupt, i, m)
			}
			rec.Proof = append(rec.Proof, ck)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return rec, nil
	default:
		return nil, fmt.Errorf("%w: unknown record tag %d", ErrCorrupt, tag)
	}
}

func cloneOrNil(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}
