package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

func testDecision(view, order, seq uint64) *DecisionRec {
	return &DecisionRec{
		View:  timeline.View(view),
		Order: timeline.Order(order),
		Requests: []*message.Request{{
			Client:  7,
			Seq:     seq,
			Payload: []byte{byte(order), byte(seq)},
		}},
	}
}

func testCheckpoint(order uint64) *CheckpointRec {
	return &CheckpointRec{
		Order:       timeline.Order(order),
		Digest:      crypto.HashParts([]byte("ckpt"), crypto.U64(order)),
		Snapshot:    []byte("snapshot"),
		ReplyVector: []byte("rv"),
		Proof: []*message.Checkpoint{
			{Order: timeline.Order(order), Replica: 1, Cert: trinx.Certificate{Value: order}},
			{Order: timeline.Order(order), Replica: 2, Cert: trinx.Certificate{Value: order}},
		},
	}
}

// sameRec compares records by their canonical encoding: decoding turns
// nil slices (e.g. an absent MAC list) into empty ones, which trips
// reflect.DeepEqual without being a real difference.
func sameRec(a, b interface{ encode() []byte }) bool {
	return string(a.encode()) == string(b.encode())
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint != nil || len(rec.Decisions) != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec)
	}
	want := []*DecisionRec{testDecision(0, 1, 10), testDecision(0, 2, 11), testDecision(1, 3, 12)}
	for _, d := range want {
		if err := l.AppendDecision(d); err != nil {
			t.Fatalf("AppendDecision: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l, rec = mustOpen(t, dir, Options{})
	defer l.Close()
	if rec.Checkpoint != nil {
		t.Fatalf("unexpected checkpoint: %+v", rec.Checkpoint)
	}
	if len(rec.Decisions) != len(want) {
		t.Fatalf("recovered %d decisions, want %d", len(rec.Decisions), len(want))
	}
	for i, d := range want {
		if got := rec.Decisions[i]; !sameRec(&got, d) {
			t.Errorf("decision %d: got %+v want %+v", i, got, *d)
		}
	}
	if got := rec.LastOrder(); got != 3 {
		t.Errorf("LastOrder = %d, want 3", got)
	}
}

func TestCheckpointSupersedesAndGCs(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 64}) // force frequent rotation
	for o := uint64(1); o <= 8; o++ {
		if err := l.AppendDecision(testDecision(0, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	ck := testCheckpoint(6)
	if err := l.AppendCheckpoint(ck); err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}
	if err := l.AppendDecision(testDecision(0, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Segments fully at or below the checkpoint order are gone; the one
	// holding decisions 7-8, the checkpoint's own, and the active one
	// survive.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Errorf("GC left %d segments: %v", len(segs), segs)
	}

	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Order != 6 {
		t.Fatalf("recovered checkpoint %+v, want order 6", rec.Checkpoint)
	}
	if !sameRec(rec.Checkpoint, ck) {
		t.Errorf("checkpoint roundtrip mismatch:\n got %+v\nwant %+v", rec.Checkpoint, ck)
	}
	var orders []uint64
	for _, d := range rec.Decisions {
		orders = append(orders, uint64(d.Order))
	}
	if !reflect.DeepEqual(orders, []uint64{7, 8, 9}) {
		t.Errorf("recovered orders %v, want [7 8 9]", orders)
	}
}

func TestRecoveryDedupsKeepingLatestView(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.AppendDecision(testDecision(0, 5, 1)); err != nil {
		t.Fatal(err)
	}
	redo := testDecision(2, 5, 99) // same order re-committed in view 2
	if err := l.AppendDecision(redo); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	if len(rec.Decisions) != 1 {
		t.Fatalf("recovered %d decisions, want 1", len(rec.Decisions))
	}
	if got := rec.Decisions[0]; !sameRec(&got, redo) {
		t.Errorf("kept %+v, want the view-2 re-commit", got)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for o := uint64(1); o <= 3; o++ {
		if err := l.AppendDecision(testDecision(0, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-frame, as a crash during write would.
	if err := os.WriteFile(path, data[:len(data)-5], 0o600); err != nil {
		t.Fatal(err)
	}

	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	if len(rec.Decisions) != 2 {
		t.Fatalf("recovered %d decisions after torn tail, want 2", len(rec.Decisions))
	}
	if rec.LastOrder() != 2 {
		t.Errorf("LastOrder = %d, want 2", rec.LastOrder())
	}
}

func TestBitFlipStopsScan(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for o := uint64(1); o <= 3; o++ {
		if err := l.AppendDecision(testDecision(0, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // corrupt the middle record's payload
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	// The CRC catches the flip; recovery keeps the intact prefix only.
	if rec.LastOrder() >= 3 {
		t.Errorf("recovered past corruption: LastOrder=%d", rec.LastOrder())
	}
}

// TestAbandonTearsUnsyncedTail pins the kill -9 simulation: Abandon
// must preserve everything fsynced, discard (part of) the unsynced
// tail — leaving a torn frame when writes were in flight — and the
// next Open must recover the durable prefix cleanly.
func TestAbandonTearsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	// A huge sync interval keeps the background flusher out of the
	// test: only the explicit Sync below makes records durable.
	l, _ := mustOpen(t, dir, Options{SyncInterval: time.Hour})
	for o := uint64(1); o <= 3; o++ {
		if err := l.AppendDecision(testDecision(0, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for o := uint64(4); o <= 6; o++ {
		if err := l.AppendDecision(testDecision(0, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	if err := l.AppendDecision(testDecision(0, 7, 7)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after Abandon: %v, want ErrClosed", err)
	}

	l, rec := mustOpen(t, dir, Options{})
	defer l.Close()
	last := rec.LastOrder()
	if last < 3 {
		t.Fatalf("recovered LastOrder %d: the fsynced prefix 1..3 was lost", last)
	}
	if last >= 6 {
		t.Fatalf("recovered LastOrder %d: the unsynced tail survived Abandon intact", last)
	}
	for i, d := range rec.Decisions {
		if got, want := uint64(d.Order), uint64(i+1); got != want {
			t.Fatalf("decision %d has order %d, want %d (gapless prefix)", i, got, want)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	l.Close()
	if err := l.AppendDecision(testDecision(0, 1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after close: %v, want ErrClosed", err)
	}
}

func TestSealStoreRoundtripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSealStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("trinx-0"); !errors.Is(err, ErrNoSeal) {
		t.Fatalf("Load on empty store: %v, want ErrNoSeal", err)
	}
	blob1 := []byte("sealed-state-v1")
	if err := s.Save("trinx-0", blob1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("trinx-0")
	if err != nil || string(got) != string(blob1) {
		t.Fatalf("Load = %q, %v", got, err)
	}
	// Overwrite must replace wholesale.
	blob2 := []byte("v2")
	if err := s.Save("trinx-0", blob2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Load("trinx-0"); string(got) != string(blob2) {
		t.Fatalf("after overwrite Load = %q", got)
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("store dir has %d entries, want 1", len(entries))
	}
	if err := s.Remove("trinx-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("trinx-0"); !errors.Is(err, ErrNoSeal) {
		t.Errorf("Load after Remove: %v, want ErrNoSeal", err)
	}
	if err := s.Remove("trinx-0"); err != nil {
		t.Errorf("double Remove: %v", err)
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xff},    // unknown tag
		{1},       // truncated decision
		{2, 0, 0}, // truncated checkpoint
		append(testDecision(0, 1, 1).encode(), 0xaa), // trailing junk
	}
	for i, c := range cases {
		if _, err := DecodeRecord(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

// TestSnapshotlessCheckpointKeepsDecisions pins the semantics a
// race-lagged replica depends on: checkpoint *stability* can outrun
// local execution, producing a checkpoint record with no snapshot. Such
// a record proves the frontier but cannot seed state, so it must
// subsume nothing — the decisions below it survive (in memory and on
// disk) until a snapshot-bearing checkpoint covers them, and recovery
// separates the two roles as Checkpoint vs Base.
func TestSnapshotlessCheckpointKeepsDecisions(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for o := uint64(1); o <= 10; o++ {
		if err := l.AppendDecision(testDecision(1, o, o)); err != nil {
			t.Fatal(err)
		}
	}
	bare := testCheckpoint(8)
	bare.Snapshot, bare.ReplyVector = nil, nil
	if err := l.AppendCheckpoint(bare); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint == nil || rec.Checkpoint.Order != 8 || rec.Checkpoint.Snapshot != nil {
		t.Fatalf("Checkpoint = %+v; want snapshot-less order 8", rec.Checkpoint)
	}
	if rec.Base != nil {
		t.Fatalf("Base = %+v; want nil (no snapshot on disk)", rec.Base)
	}
	if len(rec.Decisions) != 10 || rec.Decisions[0].Order != 1 || rec.Decisions[9].Order != 10 {
		t.Fatalf("recovered %d decisions (want all 10, orders 1..10): %+v",
			len(rec.Decisions), rec.Decisions)
	}

	// A later checkpoint WITH a snapshot takes over both roles and
	// finally subsumes the covered decisions.
	if err := l.AppendCheckpoint(testCheckpoint(8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = mustOpen(t, dir, Options{})
	if rec.Base == nil || rec.Base.Order != 8 || rec.Base.Snapshot == nil {
		t.Fatalf("Base = %+v; want snapshot checkpoint at 8", rec.Base)
	}
	if len(rec.Decisions) != 2 || rec.Decisions[0].Order != 9 {
		t.Fatalf("decisions after snapshot ckpt = %+v; want orders 9,10", rec.Decisions)
	}
}
