// Package enclave provides a software-simulated trusted execution
// environment standing in for Intel SGX, which is unavailable on this
// platform. The simulation preserves the two properties the protocols
// and benchmarks in this repository depend on:
//
//  1. Isolation: enclave-private state is reachable exclusively through
//     the ECall boundary. Code outside the enclave cannot read or modify
//     counters, keys, or sealed state except via the exported calls. In
//     real SGX the boundary is hardware-enforced; here it is enforced by
//     Go encapsulation, which suffices to exercise identical protocol
//     code paths.
//  2. Cost: every ECall pays a configurable transition cost (default
//     2.4 µs, the enclave mode-switch the paper measures in §6.2),
//     plus an optional bridge cost modeling the JNI hop of the paper's
//     Java prototype (0.3 µs).
//
// The package also models SGX sealing (authenticated encryption of
// enclave state for persistence) and rollback protection via platform
// epochs, so that the "undetected replay attack" assumption of §5.1 is
// an explicit, testable mechanism rather than a hand wave.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/crypto"
)

// Errors returned by the enclave runtime.
var (
	ErrDestroyed    = errors.New("enclave: destroyed")
	ErrSealCorrupt  = errors.New("enclave: sealed blob corrupt or tampered")
	ErrSealReplayed = errors.New("enclave: sealed blob from an old epoch (rollback attempt)")
)

// CostModel describes the simulated overhead of crossing the trust
// boundary. A zero CostModel makes ECalls free, which unit tests use.
type CostModel struct {
	// Transition is the user→enclave→user mode-switch cost paid by
	// every ECall.
	Transition time.Duration
	// Bridge is an additional cost paid per call when the enclave is
	// accessed through a foreign-function bridge (the paper's JNI hop).
	Bridge time.Duration
}

// DefaultCostModel mirrors the costs reported in §6.2 of the paper:
// 2.4 µs mode switch, 0.3 µs JNI bridge (the bridge applies only when
// the caller opts in via WithBridge).
var DefaultCostModel = CostModel{Transition: 2400 * time.Nanosecond, Bridge: 300 * time.Nanosecond}

// spin burns CPU for approximately d without yielding the processor,
// imitating the synchronous, non-blocking nature of an SGX transition.
// Sleeping would free the core and distort throughput measurements.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Platform models the machine an enclave runs on. It provides the
// sealing key (in SGX: derived from the CPU's fused key and the enclave
// measurement) and a monotonic epoch used for rollback protection of
// sealed state. All enclaves created on one Platform share it, as they
// would share a physical CPU.
type Platform struct {
	sealKey crypto.Key
	epoch   atomic.Uint64

	mu       sync.Mutex
	enclaves int
}

// NewPlatform creates a platform with a sealing key derived from seed.
func NewPlatform(seed string) *Platform {
	return &Platform{sealKey: crypto.NewKeyFromSeed("platform-seal:" + seed)}
}

// Epoch returns the current rollback-protection epoch.
func (p *Platform) Epoch() uint64 { return p.epoch.Load() }

// AdvanceEpoch invalidates all previously sealed blobs, e.g. after a
// suspected rollback attack or administrative reset.
func (p *Platform) AdvanceEpoch() uint64 { return p.epoch.Add(1) }

// EnclaveCount returns the number of live enclaves on the platform.
func (p *Platform) EnclaveCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enclaves
}

// Enclave is one simulated trusted execution environment. The state
// interface is intentionally opaque: the concrete state value is created
// inside Create and never escapes except through ECall results.
// An Enclave value is a handle; WithBridge returns a second handle to
// the same underlying environment.
type Enclave struct {
	core      *enclaveCore
	useBridge bool
	view      func(any) any
}

type enclaveCore struct {
	platform *Platform
	name     string
	cost     CostModel

	mu        sync.Mutex
	state     any
	destroyed bool

	calls atomic.Uint64
}

// Create instantiates an enclave on platform p. The init function runs
// inside the trust boundary and returns the enclave-private state; name
// identifies the enclave (SGX measurement analogue) and keys sealing.
func Create(p *Platform, name string, cost CostModel, init func() any) *Enclave {
	e := &Enclave{core: &enclaveCore{platform: p, name: name, cost: cost, state: init()}}
	p.mu.Lock()
	p.enclaves++
	p.mu.Unlock()
	return e
}

// WithBridge returns a handle to the same enclave whose calls also pay
// the foreign-function bridge cost. State and lifetime are shared with
// the original handle.
func (e *Enclave) WithBridge() *Enclave {
	return &Enclave{core: e.core, useBridge: true, view: e.view}
}

// WithView returns a handle to the same enclave whose ECalls receive
// project(rootState) instead of the root state. It lets one enclave host
// several logical sub-states (the Multi-TrInX variant) while keeping a
// single entry point; the projection itself runs inside the trust
// boundary. Projections compose.
func (e *Enclave) WithView(project func(any) any) *Enclave {
	parent := e.view
	combined := project
	if parent != nil {
		combined = func(st any) any { return project(parent(st)) }
	}
	return &Enclave{core: e.core, useBridge: e.useBridge, view: combined}
}

// Name returns the enclave's identity (measurement analogue).
func (e *Enclave) Name() string { return e.core.name }

// Calls returns the number of ECalls performed so far, for tests and
// accounting.
func (e *Enclave) Calls() uint64 { return e.core.calls.Load() }

// Destroy tears the enclave down; subsequent ECalls fail.
func (e *Enclave) Destroy() {
	c := e.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return
	}
	c.destroyed = true
	c.state = nil
	c.platform.mu.Lock()
	c.platform.enclaves--
	c.platform.mu.Unlock()
}

// ECall executes fn inside the trust boundary with exclusive access to
// the enclave-private state, paying the simulated transition cost. It is
// the only way to reach enclave state.
func (e *Enclave) ECall(fn func(state any) (any, error)) (any, error) {
	c := e.core
	spin(c.cost.Transition)
	if e.useBridge {
		spin(c.cost.Bridge)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return nil, ErrDestroyed
	}
	c.calls.Add(1)
	st := c.state
	if e.view != nil {
		st = e.view(st)
	}
	return fn(st)
}

// sealOverhead is the nonce plus epoch header prepended to sealed blobs.
const sealNonceSize = 12

// Seal encrypts and authenticates data under the platform sealing key,
// binding it to this enclave's identity and the current platform epoch.
// The result can be stored outside the enclave and later restored with
// Unseal; restoring after the epoch advanced fails, which models SGX's
// defense against state-rollback (replay) attacks assumed in §5.1.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	aead, err := e.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, sealNonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: seal nonce: %w", err)
	}
	epoch := e.core.platform.Epoch()
	aad := sealAAD(e.core.name, epoch)
	blob := make([]byte, 8+sealNonceSize, 8+sealNonceSize+len(data)+aead.Overhead())
	copy(blob[:8], crypto.U64(epoch))
	copy(blob[8:], nonce)
	return aead.Seal(blob, nonce, data, aad), nil
}

// Unseal decrypts a blob produced by Seal. It fails if the blob was
// tampered with, sealed by a different enclave identity, or sealed
// during an earlier platform epoch.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	if len(blob) < 8+sealNonceSize {
		return nil, ErrSealCorrupt
	}
	epoch := uint64(blob[0])<<56 | uint64(blob[1])<<48 | uint64(blob[2])<<40 | uint64(blob[3])<<32 |
		uint64(blob[4])<<24 | uint64(blob[5])<<16 | uint64(blob[6])<<8 | uint64(blob[7])
	if epoch != e.core.platform.Epoch() {
		return nil, ErrSealReplayed
	}
	aead, err := e.aead()
	if err != nil {
		return nil, err
	}
	nonce := blob[8 : 8+sealNonceSize]
	data, err := aead.Open(nil, nonce, blob[8+sealNonceSize:], sealAAD(e.core.name, epoch))
	if err != nil {
		return nil, ErrSealCorrupt
	}
	return data, nil
}

func (e *Enclave) aead() (cipher.AEAD, error) {
	// Key derivation binds the sealing key to the enclave identity,
	// mirroring SGX's MRENCLAVE-based sealing policy.
	d := e.core.platform.sealKey.SumParts([]byte("seal"), []byte(e.core.name))
	block, err := aes.NewCipher(d[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	return cipher.NewGCM(block)
}

func sealAAD(name string, epoch uint64) []byte {
	aad := make([]byte, 0, len(name)+8)
	aad = append(aad, name...)
	aad = append(aad, crypto.U64(epoch)...)
	return aad
}
