// Package enclave provides a software-simulated trusted execution
// environment standing in for Intel SGX, which is unavailable on this
// platform. The simulation preserves the two properties the protocols
// and benchmarks in this repository depend on:
//
//  1. Isolation: enclave-private state is reachable exclusively through
//     the ECall boundary. Code outside the enclave cannot read or modify
//     counters, keys, or sealed state except via the exported calls. In
//     real SGX the boundary is hardware-enforced; here it is enforced by
//     Go encapsulation, which suffices to exercise identical protocol
//     code paths.
//  2. Cost: every ECall pays a configurable transition cost (default
//     2.4 µs, the enclave mode-switch the paper measures in §6.2),
//     plus an optional bridge cost modeling the JNI hop of the paper's
//     Java prototype (0.3 µs).
//
// The package also models SGX sealing (authenticated encryption of
// enclave state for persistence) and rollback protection via platform
// epochs, so that the "undetected replay attack" assumption of §5.1 is
// an explicit, testable mechanism rather than a hand wave.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/crypto"
)

// Errors returned by the enclave runtime.
var (
	ErrDestroyed    = errors.New("enclave: destroyed")
	ErrSealCorrupt  = errors.New("enclave: sealed blob corrupt or tampered")
	ErrSealReplayed = errors.New("enclave: sealed blob from an old epoch (rollback attempt)")
	// ErrSealRolledBack is returned when a blob authenticates correctly
	// but carries a seal sequence older than the platform's monotonic
	// register for this enclave: someone restored a stale copy of the
	// sealed state (the classic rollback attack on sealed storage).
	ErrSealRolledBack = errors.New("enclave: sealed blob superseded by a newer seal (rollback attempt)")
	// ErrSealAhead is returned when an authentic blob carries a seal
	// sequence more than one ahead of the platform's register: the
	// register's backing storage was lost or regressed (it no longer
	// reflects seals that demonstrably happened). The blob itself is the
	// newest state, but a register that can regress cannot detect
	// rollback, so the enclave refuses. Operator action: restore the
	// register backing file from the machine that issued the seal, or
	// retire this identity.
	ErrSealAhead = errors.New("enclave: sealed blob ahead of platform seal register (register storage lost or regressed)")
)

// CostModel describes the simulated overhead of crossing the trust
// boundary. A zero CostModel makes ECalls free, which unit tests use.
type CostModel struct {
	// Transition is the user→enclave→user mode-switch cost paid by
	// every ECall.
	Transition time.Duration
	// Bridge is an additional cost paid per call when the enclave is
	// accessed through a foreign-function bridge (the paper's JNI hop).
	Bridge time.Duration
}

// DefaultCostModel mirrors the costs reported in §6.2 of the paper:
// 2.4 µs mode switch, 0.3 µs JNI bridge (the bridge applies only when
// the caller opts in via WithBridge).
var DefaultCostModel = CostModel{Transition: 2400 * time.Nanosecond, Bridge: 300 * time.Nanosecond}

// spin occupies the calling goroutine for approximately d, imitating
// the synchronous, non-blocking nature of an SGX transition: the call
// never returns early and never parks on a timer (sleeping would free
// the core for the full duration and flatten the cost into noise).
//
// The loop cooperatively yields between time checks. On a host with at
// least as many cores as concurrently transitioning enclaves the yield
// is a no-op (nothing else is runnable on this P) and the behaviour is
// the classic core-burning busy-wait. On a host with fewer physical
// cores than the deployment simulates — a laptop running a 4-pillar ×
// 4-replica cluster in one process — a hard busy-wait would serialize
// transitions that real SGX hardware runs on separate cores, inverting
// the comparative shapes the benchmarks exist to reproduce; yielding
// lets another pillar's transition (or real work) interleave during
// the window, which is exactly what distinct cores would do.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Platform models the machine an enclave runs on. It provides the
// sealing key (in SGX: derived from the CPU's fused key and the enclave
// measurement) and a monotonic epoch used for rollback protection of
// sealed state. All enclaves created on one Platform share it, as they
// would share a physical CPU.
type Platform struct {
	sealKey crypto.Key
	epoch   atomic.Uint64

	mu       sync.Mutex
	enclaves int
	// sealSeq is the per-enclave monotonic seal-sequence register: the
	// simulation of the SGX platform's hardware monotonic counters.
	// Every Seal bumps the issuing enclave's register; Unseal refuses
	// blobs whose embedded sequence is below the register, which is how
	// a restored-from-backup (rolled back) seal is detected. The
	// register lives on the Platform — machine hardware — so it
	// survives process crashes that wipe both enclave memory and disk.
	sealSeq map[string]uint64
	// store, when set, persists the seal registers so multi-process
	// deployments keep rollback protection across real process restarts
	// (the file stands in for the hardware NVM). The write-through is
	// deferred: Seal advances only the in-memory register; the caller
	// commits it to the store with CommitSeal AFTER the blob itself is
	// durable. Ordering matters — persisting the register first would
	// turn a crash between the two writes into a self-inflicted
	// "rollback" (blob seq = register−1) that bricks an honest replica.
	// With blob-first ordering the same crash leaves blob seq =
	// register+1, which Unseal accepts and heals.
	store string
}

// NewPlatform creates a platform with a sealing key derived from seed.
func NewPlatform(seed string) *Platform {
	return &Platform{
		sealKey: crypto.NewKeyFromSeed("platform-seal:" + seed),
		sealSeq: make(map[string]uint64),
	}
}

// Epoch returns the current rollback-protection epoch.
func (p *Platform) Epoch() uint64 { return p.epoch.Load() }

// AdvanceEpoch invalidates all previously sealed blobs, e.g. after a
// suspected rollback attack or administrative reset.
func (p *Platform) AdvanceEpoch() uint64 { return p.epoch.Add(1) }

// SealSeq returns the platform's monotonic seal-sequence register for
// the named enclave (0 = that enclave never sealed). Protocol recovery
// code uses it to distinguish a genuinely fresh node from an amnesiac
// one whose sealed state went missing.
func (p *Platform) SealSeq(name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sealSeq[name]
}

// nextSealSeq advances and returns the in-memory register for name.
// The bound store is deliberately NOT written here: the new sequence
// only becomes the durable floor once the blob carrying it is safely
// on disk (see CommitSeal and the store field's ordering note).
func (p *Platform) nextSealSeq(name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sealSeq[name]++
	return p.sealSeq[name]
}

// healSealSeq raises the register for name to seq (never lowers it)
// and writes the store through. Used by Unseal when it accepts a blob
// one ahead of the register — the crash-between-blob-and-commit
// artifact — so the accepted sequence becomes the new floor.
func (p *Platform) healSealSeq(name string, seq uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if seq <= p.sealSeq[name] {
		return nil
	}
	p.sealSeq[name] = seq
	return p.persistRegistersLocked()
}

// EnclaveCount returns the number of live enclaves on the platform.
func (p *Platform) EnclaveCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enclaves
}

// Enclave is one simulated trusted execution environment. The state
// interface is intentionally opaque: the concrete state value is created
// inside Create and never escapes except through ECall results.
// An Enclave value is a handle; WithBridge returns a second handle to
// the same underlying environment.
type Enclave struct {
	core      *enclaveCore
	useBridge bool
	view      func(any) any
}

type enclaveCore struct {
	platform *Platform
	name     string
	cost     CostModel

	mu        sync.Mutex
	state     any
	destroyed bool

	calls atomic.Uint64
}

// Create instantiates an enclave on platform p. The init function runs
// inside the trust boundary and returns the enclave-private state; name
// identifies the enclave (SGX measurement analogue) and keys sealing.
func Create(p *Platform, name string, cost CostModel, init func() any) *Enclave {
	e := &Enclave{core: &enclaveCore{platform: p, name: name, cost: cost, state: init()}}
	p.mu.Lock()
	p.enclaves++
	p.mu.Unlock()
	return e
}

// WithBridge returns a handle to the same enclave whose calls also pay
// the foreign-function bridge cost. State and lifetime are shared with
// the original handle.
func (e *Enclave) WithBridge() *Enclave {
	return &Enclave{core: e.core, useBridge: true, view: e.view}
}

// WithView returns a handle to the same enclave whose ECalls receive
// project(rootState) instead of the root state. It lets one enclave host
// several logical sub-states (the Multi-TrInX variant) while keeping a
// single entry point; the projection itself runs inside the trust
// boundary. Projections compose.
func (e *Enclave) WithView(project func(any) any) *Enclave {
	parent := e.view
	combined := project
	if parent != nil {
		combined = func(st any) any { return project(parent(st)) }
	}
	return &Enclave{core: e.core, useBridge: e.useBridge, view: combined}
}

// Name returns the enclave's identity (measurement analogue).
func (e *Enclave) Name() string { return e.core.name }

// Calls returns the number of ECalls performed so far, for tests and
// accounting.
func (e *Enclave) Calls() uint64 { return e.core.calls.Load() }

// Destroy tears the enclave down; subsequent ECalls fail.
func (e *Enclave) Destroy() {
	c := e.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return
	}
	c.destroyed = true
	c.state = nil
	c.platform.mu.Lock()
	c.platform.enclaves--
	c.platform.mu.Unlock()
}

// ECall executes fn inside the trust boundary with exclusive access to
// the enclave-private state, paying the simulated transition cost. It is
// the only way to reach enclave state.
func (e *Enclave) ECall(fn func(state any) (any, error)) (any, error) {
	c := e.core
	spin(c.cost.Transition)
	if e.useBridge {
		spin(c.cost.Bridge)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return nil, ErrDestroyed
	}
	c.calls.Add(1)
	st := c.state
	if e.view != nil {
		st = e.view(st)
	}
	return fn(st)
}

// sealNonceSize is the AEAD nonce length; the full seal header is
// epoch (8) | sequence (8) | nonce (12).
const sealNonceSize = 12

const sealHeaderSize = 16 + sealNonceSize

// Seal encrypts and authenticates data under the platform sealing key,
// binding it to this enclave's identity, the current platform epoch,
// and a fresh monotonic seal sequence drawn from the platform register.
// The result can be stored outside the enclave and later restored with
// Unseal; restoring after the epoch advanced, or restoring any blob
// older than the newest seal, fails — which models SGX's defense
// against state-rollback (replay) attacks assumed in §5.1.
//
// When the platform's register has a backing store (BindStore), the
// durability protocol is two-phase: write the returned blob to stable
// storage first, then call CommitSeal to write the register through.
// A crash anywhere in between leaves the blob exactly one sequence
// ahead of the stored register, which Unseal accepts and heals; the
// reverse order would misread the same crash as a rollback attack.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	aead, err := e.aead()
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, sealNonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: seal nonce: %w", err)
	}
	epoch := e.core.platform.Epoch()
	seq := e.core.platform.nextSealSeq(e.core.name)
	aad := sealAAD(e.core.name, epoch, seq)
	blob := make([]byte, 16+sealNonceSize, sealHeaderSize+len(data)+aead.Overhead())
	copy(blob[:8], crypto.U64(epoch))
	copy(blob[8:16], crypto.U64(seq))
	copy(blob[16:], nonce)
	return aead.Seal(blob, nonce, data, aad), nil
}

// CommitSeal writes the enclave's seal register through to the
// platform's backing store (a no-op without one). Call it after the
// blob returned by Seal is durably stored: it makes the blob's
// sequence the floor below which every future Unseal refuses.
func (e *Enclave) CommitSeal() error {
	p := e.core.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.persistRegistersLocked()
}

// Unseal decrypts a blob produced by Seal. It fails if the blob was
// tampered with, sealed by a different enclave identity, sealed during
// an earlier platform epoch, or superseded by a newer seal of the same
// enclave (ErrSealRolledBack — the stale blob is authentic but
// restoring it would regress the sealed state). A blob exactly one
// sequence ahead of the register is accepted: it is the newest seal,
// written durably just before a crash preempted the register commit;
// accepting it raises the register to match (see Seal). More than one
// ahead is ErrSealAhead — the register storage itself went missing.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	if len(blob) < sealHeaderSize {
		return nil, ErrSealCorrupt
	}
	epoch := beU64(blob[:8])
	seq := beU64(blob[8:16])
	if epoch != e.core.platform.Epoch() {
		return nil, ErrSealReplayed
	}
	aead, err := e.aead()
	if err != nil {
		return nil, err
	}
	nonce := blob[16:sealHeaderSize]
	data, err := aead.Open(nil, nonce, blob[sealHeaderSize:], sealAAD(e.core.name, epoch, seq))
	if err != nil {
		return nil, ErrSealCorrupt
	}
	// Authenticity established; now enforce freshness against the
	// platform's monotonic register. seq == latest is the normal case;
	// seq == latest+1 is the blob of an in-flight seal whose register
	// commit a crash preempted — it is the newest state, so accept it
	// and raise the register to close the window. Anything further
	// ahead means the register storage regressed.
	latest := e.core.platform.SealSeq(e.core.name)
	switch {
	case seq < latest:
		return nil, fmt.Errorf("%w: blob seq %d, register %d", ErrSealRolledBack, seq, latest)
	case seq == latest+1:
		if err := e.core.platform.healSealSeq(e.core.name, seq); err != nil {
			return nil, err
		}
	case seq > latest:
		return nil, fmt.Errorf("%w: blob seq %d, register %d", ErrSealAhead, seq, latest)
	}
	return data, nil
}

func beU64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func (e *Enclave) aead() (cipher.AEAD, error) {
	// Key derivation binds the sealing key to the enclave identity,
	// mirroring SGX's MRENCLAVE-based sealing policy.
	d := e.core.platform.sealKey.SumParts([]byte("seal"), []byte(e.core.name))
	block, err := aes.NewCipher(d[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	return cipher.NewGCM(block)
}

func sealAAD(name string, epoch, seq uint64) []byte {
	aad := make([]byte, 0, len(name)+16)
	aad = append(aad, name...)
	aad = append(aad, crypto.U64(epoch)...)
	aad = append(aad, crypto.U64(seq)...)
	return aad
}

// --- seal-register persistence -------------------------------------------

// BindStore attaches a backing file to the platform's seal registers,
// standing in for the rollback-protected NVM real monotonic counters
// live in. Existing register state in the file is loaded (merged by
// maximum, so in-memory registers never regress) and register bumps
// are written through — fsynced — when the sealer calls CommitSeal,
// after its blob is durable (see the store field for why the order
// matters). The file is MAC'd under the platform sealing key; a
// tampered file is rejected.
func (p *Platform) BindStore(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if data, err := os.ReadFile(path); err == nil {
		regs, err := p.decodeRegisters(data)
		if err != nil {
			return err
		}
		for name, seq := range regs {
			if seq > p.sealSeq[name] {
				p.sealSeq[name] = seq
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	p.store = path
	return p.persistRegistersLocked()
}

// persistRegistersLocked writes the registers through to the store, if
// one is bound: temp file, fsync, rename, directory fsync — the same
// discipline as wal.SealStore.Save, so power loss leaves either the
// old register file or the new one, never a torn or vanished write
// that would quietly regress rollback detection. Called with p.mu
// held.
func (p *Platform) persistRegistersLocked() error {
	if p.store == "" {
		return nil
	}
	names := make([]string, 0, len(p.sealSeq))
	for n := range p.sealSeq {
		names = append(names, n)
	}
	sort.Strings(names)
	body := make([]byte, 0, 64*len(names))
	body = append(body, crypto.U32(uint32(len(names)))...)
	for _, n := range names {
		body = append(body, crypto.U32(uint32(len(n)))...)
		body = append(body, n...)
		body = append(body, crypto.U64(p.sealSeq[n])...)
	}
	mac := p.sealKey.SumParts([]byte("seal-registers"), body)
	tmpPath := p.store + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	if _, err := tmp.Write(append(body, mac[:]...)); err != nil {
		tmp.Close()
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	if err := os.Rename(tmpPath, p.store); err != nil {
		return fmt.Errorf("enclave: seal register store: %w", err)
	}
	if d, err := os.Open(filepath.Dir(p.store)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// decodeRegisters parses and authenticates a register store file.
func (p *Platform) decodeRegisters(data []byte) (map[string]uint64, error) {
	if len(data) < 4+32 {
		return nil, ErrSealCorrupt
	}
	body, mac := data[:len(data)-32], data[len(data)-32:]
	want := p.sealKey.SumParts([]byte("seal-registers"), body)
	if !hmacEqual(want[:], mac) {
		return nil, fmt.Errorf("%w: seal register store MAC", ErrSealCorrupt)
	}
	n := int(beU64(append([]byte{0, 0, 0, 0}, body[:4]...)))
	body = body[4:]
	regs := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		if len(body) < 4 {
			return nil, ErrSealCorrupt
		}
		l := int(body[0])<<24 | int(body[1])<<16 | int(body[2])<<8 | int(body[3])
		body = body[4:]
		if l < 0 || len(body) < l+8 {
			return nil, ErrSealCorrupt
		}
		name := string(body[:l])
		regs[name] = beU64(body[l : l+8])
		body = body[l+8:]
	}
	if len(body) != 0 {
		return nil, ErrSealCorrupt
	}
	return regs, nil
}

func hmacEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
