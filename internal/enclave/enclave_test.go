package enclave

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type counterState struct{ n int }

func newCounterEnclave(p *Platform, cost CostModel) *Enclave {
	return Create(p, "counter", cost, func() any { return &counterState{} })
}

func increment(e *Enclave) (int, error) {
	v, err := e.ECall(func(state any) (any, error) {
		s := state.(*counterState)
		s.n++
		return s.n, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

func TestECallMutatesPrivateState(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	for want := 1; want <= 5; want++ {
		got, err := increment(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("increment = %d, want %d", got, want)
		}
	}
	if e.Calls() != 5 {
		t.Fatalf("Calls() = %d, want 5", e.Calls())
	}
}

func TestECallSerializesConcurrentAccess(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := increment(e); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := increment(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker+1 {
		t.Fatalf("final counter = %d, want %d", got, workers*perWorker+1)
	}
}

func TestDestroyedEnclaveRejectsCalls(t *testing.T) {
	p := NewPlatform("t")
	e := newCounterEnclave(p, CostModel{})
	if p.EnclaveCount() != 1 {
		t.Fatalf("EnclaveCount = %d", p.EnclaveCount())
	}
	e.Destroy()
	e.Destroy() // idempotent
	if p.EnclaveCount() != 0 {
		t.Fatalf("EnclaveCount after destroy = %d", p.EnclaveCount())
	}
	if _, err := increment(e); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v, want ErrDestroyed", err)
	}
}

func TestTransitionCostIsPaid(t *testing.T) {
	costly := newCounterEnclave(NewPlatform("t"), CostModel{Transition: 200 * time.Microsecond})
	start := time.Now()
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := increment(costly); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if min := calls * 200 * time.Microsecond; elapsed < min {
		t.Fatalf("20 calls took %v, want >= %v", elapsed, min)
	}
}

func TestBridgeSharesState(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	b := e.WithBridge()
	if _, err := increment(e); err != nil {
		t.Fatal(err)
	}
	got, err := increment(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("bridge handle saw counter %d, want 2 (shared state)", got)
	}
}

func TestSealUnsealRoundtrip(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	data := []byte("secret enclave state")
	blob, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("unsealed %q, want %q", got, data)
	}
}

func TestSealTamperDetected(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	blob, err := e.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("err = %v, want ErrSealCorrupt", err)
	}
	if _, err := e.Unseal(blob[:4]); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("short blob err = %v, want ErrSealCorrupt", err)
	}
}

func TestSealBoundToEnclaveIdentity(t *testing.T) {
	p := NewPlatform("t")
	a := Create(p, "a", CostModel{}, func() any { return nil })
	b := Create(p, "b", CostModel{}, func() any { return nil })
	blob, err := a.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("cross-enclave unseal err = %v, want ErrSealCorrupt", err)
	}
}

func TestSealRollbackRejected(t *testing.T) {
	p := NewPlatform("t")
	e := newCounterEnclave(p, CostModel{})
	blob, err := e.Seal([]byte("old state"))
	if err != nil {
		t.Fatal(err)
	}
	p.AdvanceEpoch()
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealReplayed) {
		t.Fatalf("err = %v, want ErrSealReplayed", err)
	}
	// Fresh seals under the new epoch work.
	blob2, err := e.Seal([]byte("new state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Unseal(blob2); err != nil {
		t.Fatal(err)
	}
}

// TestSealCrashWindowHealed pins the two-phase seal commit: a blob
// whose register write-through a crash preempted (blob seq = stored
// register + 1) is the NEWEST state and must be accepted — with the
// register raised to match — not refused as a rollback. Before the
// fix, an honest kill -9 in this window bricked the replica.
func TestSealCrashWindowHealed(t *testing.T) {
	reg := filepath.Join(t.TempDir(), "sealreg")
	p1 := NewPlatform("m")
	if err := p1.BindStore(reg); err != nil {
		t.Fatal(err)
	}
	e1 := Create(p1, "x", CostModel{}, func() any { return nil })
	blob1, err := e1.Seal([]byte("state-1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.CommitSeal(); err != nil { // blob durable → register committed
		t.Fatal(err)
	}
	blob2, err := e1.Seal([]byte("state-2"))
	if err != nil {
		t.Fatal(err)
	}
	// Crash HERE: blob2 written, CommitSeal never ran. The stored
	// register still says 1 while blob2 carries sequence 2.

	p2 := NewPlatform("m") // "reboot": fresh memory, same machine key
	if err := p2.BindStore(reg); err != nil {
		t.Fatal(err)
	}
	if got := p2.SealSeq("x"); got != 1 {
		t.Fatalf("stored register = %d, want 1 (commit was preempted)", got)
	}
	e2 := Create(p2, "x", CostModel{}, func() any { return nil })
	data, err := e2.Unseal(blob2)
	if err != nil {
		t.Fatalf("crash-window blob refused: %v", err)
	}
	if string(data) != "state-2" {
		t.Fatalf("unsealed %q, want state-2", data)
	}
	// Acceptance healed the register: the window is closed, and the
	// superseded blob is now correctly a rollback.
	if got := p2.SealSeq("x"); got != 2 {
		t.Fatalf("register after heal = %d, want 2", got)
	}
	if _, err := e2.Unseal(blob1); !errors.Is(err, ErrSealRolledBack) {
		t.Fatalf("stale blob after heal: %v, want ErrSealRolledBack", err)
	}
	// The heal was written through: a third boot sees register 2.
	p3 := NewPlatform("m")
	if err := p3.BindStore(reg); err != nil {
		t.Fatal(err)
	}
	if got := p3.SealSeq("x"); got != 2 {
		t.Fatalf("healed register not persisted: %d, want 2", got)
	}
}

// TestSealRegisterLossRefused pins the other side of the ±1 window: a
// blob MORE than one ahead of the stored register means the register
// storage itself was lost or regressed, and the enclave must refuse
// with a distinct error (rollback detection is gone, not the blob).
func TestSealRegisterLossRefused(t *testing.T) {
	reg := filepath.Join(t.TempDir(), "sealreg")
	p1 := NewPlatform("m")
	if err := p1.BindStore(reg); err != nil {
		t.Fatal(err)
	}
	e1 := Create(p1, "x", CostModel{}, func() any { return nil })
	if _, err := e1.Seal([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	if err := e1.CommitSeal(); err != nil {
		t.Fatal(err)
	}
	// Two further seals whose commits never reach the store (register
	// file frozen at 1, as if it were restored from an old backup).
	if _, err := e1.Seal([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	blob3, err := e1.Seal([]byte("s3"))
	if err != nil {
		t.Fatal(err)
	}

	p2 := NewPlatform("m")
	if err := p2.BindStore(reg); err != nil {
		t.Fatal(err)
	}
	e2 := Create(p2, "x", CostModel{}, func() any { return nil })
	if _, err := e2.Unseal(blob3); !errors.Is(err, ErrSealAhead) {
		t.Fatalf("blob 2 ahead of register: %v, want ErrSealAhead", err)
	}
}

func TestSealPlatformIsolation(t *testing.T) {
	e1 := newCounterEnclave(NewPlatform("p1"), CostModel{})
	e2 := newCounterEnclave(NewPlatform("p2"), CostModel{})
	blob, err := e1.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("unseal succeeded on a different platform")
	}
}
