package enclave

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

type counterState struct{ n int }

func newCounterEnclave(p *Platform, cost CostModel) *Enclave {
	return Create(p, "counter", cost, func() any { return &counterState{} })
}

func increment(e *Enclave) (int, error) {
	v, err := e.ECall(func(state any) (any, error) {
		s := state.(*counterState)
		s.n++
		return s.n, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

func TestECallMutatesPrivateState(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	for want := 1; want <= 5; want++ {
		got, err := increment(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("increment = %d, want %d", got, want)
		}
	}
	if e.Calls() != 5 {
		t.Fatalf("Calls() = %d, want 5", e.Calls())
	}
}

func TestECallSerializesConcurrentAccess(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := increment(e); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := increment(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker+1 {
		t.Fatalf("final counter = %d, want %d", got, workers*perWorker+1)
	}
}

func TestDestroyedEnclaveRejectsCalls(t *testing.T) {
	p := NewPlatform("t")
	e := newCounterEnclave(p, CostModel{})
	if p.EnclaveCount() != 1 {
		t.Fatalf("EnclaveCount = %d", p.EnclaveCount())
	}
	e.Destroy()
	e.Destroy() // idempotent
	if p.EnclaveCount() != 0 {
		t.Fatalf("EnclaveCount after destroy = %d", p.EnclaveCount())
	}
	if _, err := increment(e); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v, want ErrDestroyed", err)
	}
}

func TestTransitionCostIsPaid(t *testing.T) {
	costly := newCounterEnclave(NewPlatform("t"), CostModel{Transition: 200 * time.Microsecond})
	start := time.Now()
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := increment(costly); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if min := calls * 200 * time.Microsecond; elapsed < min {
		t.Fatalf("20 calls took %v, want >= %v", elapsed, min)
	}
}

func TestBridgeSharesState(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	b := e.WithBridge()
	if _, err := increment(e); err != nil {
		t.Fatal(err)
	}
	got, err := increment(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("bridge handle saw counter %d, want 2 (shared state)", got)
	}
}

func TestSealUnsealRoundtrip(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	data := []byte("secret enclave state")
	blob, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("unsealed %q, want %q", got, data)
	}
}

func TestSealTamperDetected(t *testing.T) {
	e := newCounterEnclave(NewPlatform("t"), CostModel{})
	blob, err := e.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("err = %v, want ErrSealCorrupt", err)
	}
	if _, err := e.Unseal(blob[:4]); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("short blob err = %v, want ErrSealCorrupt", err)
	}
}

func TestSealBoundToEnclaveIdentity(t *testing.T) {
	p := NewPlatform("t")
	a := Create(p, "a", CostModel{}, func() any { return nil })
	b := Create(p, "b", CostModel{}, func() any { return nil })
	blob, err := a.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("cross-enclave unseal err = %v, want ErrSealCorrupt", err)
	}
}

func TestSealRollbackRejected(t *testing.T) {
	p := NewPlatform("t")
	e := newCounterEnclave(p, CostModel{})
	blob, err := e.Seal([]byte("old state"))
	if err != nil {
		t.Fatal(err)
	}
	p.AdvanceEpoch()
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealReplayed) {
		t.Fatalf("err = %v, want ErrSealReplayed", err)
	}
	// Fresh seals under the new epoch work.
	blob2, err := e.Seal([]byte("new state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Unseal(blob2); err != nil {
		t.Fatal(err)
	}
}

func TestSealPlatformIsolation(t *testing.T) {
	e1 := newCounterEnclave(NewPlatform("p1"), CostModel{})
	e2 := newCounterEnclave(NewPlatform("p2"), CostModel{})
	blob, err := e1.Seal([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("unseal succeeded on a different platform")
	}
}
