package usig

import (
	"time"

	"hybster/internal/telemetry"
)

// USIG ECall operations, instrumented per operation like trinx.
type op int

const (
	opCreateUI op = iota
	opVerifyUI
	opCounterRead
	numOps
)

var opNames = [numOps]string{"create_ui", "verify_ui", "counter_read"}

// instruments holds the per-operation handles, resolved once.
type instruments struct {
	calls [numOps]*telemetry.Counter
	lat   [numOps]*telemetry.Histogram
}

// Instrument attaches telemetry to this USIG instance and returns it
// for chaining. nil disables instrumentation (the default).
func (u *USIG) Instrument(tel *telemetry.Telemetry) *USIG {
	if tel == nil {
		return u
	}
	m := &instruments{}
	for o := op(0); o < numOps; o++ {
		ol := telemetry.L("op", opNames[o])
		m.calls[o] = tel.Counter("hybster_usig_ecalls_total", "ECalls into the USIG enclave", ol)
		m.lat[o] = tel.Histogram("hybster_usig_ecall_seconds", "USIG ECall latency", ol)
	}
	u.met = m
	return u
}

// ecall routes an enclave call through the instrumentation when
// attached; the uninstrumented path pays one nil check and no clock
// reads.
func (u *USIG) ecall(o op, fn func(any) (any, error)) (any, error) {
	if u.met == nil {
		return u.enc.ECall(fn)
	}
	start := time.Now()
	res, err := u.enc.ECall(fn)
	u.met.calls[o].Inc()
	u.met.lat[o].ObserveDuration(time.Since(start))
	return res, err
}
