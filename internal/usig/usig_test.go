package usig

import (
	"errors"
	"sync"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

var testKey = crypto.NewKeyFromSeed("group")

func newTest(t *testing.T, id uint32) *USIG {
	t.Helper()
	u := New(enclave.NewPlatform("test"), id, testKey, enclave.CostModel{})
	t.Cleanup(u.Destroy)
	return u
}

func TestCreateUIAssignsConsecutiveCounters(t *testing.T) {
	u := newTest(t, 0)
	d := crypto.Hash([]byte("m"))
	for want := uint64(1); want <= 10; want++ {
		ui, err := u.CreateUI(d)
		if err != nil {
			t.Fatal(err)
		}
		if ui.Counter != want {
			t.Fatalf("counter = %d, want %d", ui.Counter, want)
		}
		if ui.Issuer != 0 {
			t.Fatalf("issuer = %d", ui.Issuer)
		}
	}
	c, err := u.Counter()
	if err != nil {
		t.Fatal(err)
	}
	if c != 10 {
		t.Fatalf("Counter() = %d", c)
	}
}

func TestVerifyUI(t *testing.T) {
	issuer := newTest(t, 0)
	verifier := newTest(t, 1)
	d := crypto.Hash([]byte("m"))

	ui, err := issuer.CreateUI(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyUI(ui, d); err != nil {
		t.Fatalf("genuine UI rejected: %v", err)
	}

	bad := ui
	bad.Counter++
	if err := verifier.VerifyUI(bad, d); !errors.Is(err, ErrBadUI) {
		t.Fatalf("tampered counter accepted: %v", err)
	}
	bad = ui
	bad.Issuer = 2
	if err := verifier.VerifyUI(bad, d); !errors.Is(err, ErrBadUI) {
		t.Fatalf("tampered issuer accepted: %v", err)
	}
	if err := verifier.VerifyUI(ui, crypto.Hash([]byte("other"))); !errors.Is(err, ErrBadUI) {
		t.Fatalf("wrong message accepted: %v", err)
	}
}

func TestUIUniquePerMessage(t *testing.T) {
	// Two different messages can never share a counter value — the
	// equivocation-detection property MinBFT builds on.
	u := newTest(t, 0)
	a, err := u.CreateUI(crypto.Hash([]byte("A")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.CreateUI(crypto.Hash([]byte("B")))
	if err != nil {
		t.Fatal(err)
	}
	if a.Counter == b.Counter {
		t.Fatal("two messages share a counter value")
	}
}

func TestWrongGroupKeyRejected(t *testing.T) {
	issuer := New(enclave.NewPlatform("a"), 0, crypto.NewKeyFromSeed("g1"), enclave.CostModel{})
	defer issuer.Destroy()
	verifier := New(enclave.NewPlatform("b"), 1, crypto.NewKeyFromSeed("g2"), enclave.CostModel{})
	defer verifier.Destroy()

	d := crypto.Hash([]byte("m"))
	ui, err := issuer.CreateUI(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyUI(ui, d); !errors.Is(err, ErrBadUI) {
		t.Fatalf("cross-group UI accepted: %v", err)
	}
}

func TestConcurrentCreateUINoGapsNoDuplicates(t *testing.T) {
	u := newTest(t, 0)
	d := crypto.Hash([]byte("m"))
	const workers, per = 8, 250

	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ui, err := u.CreateUI(d)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[ui.Counter] {
					t.Errorf("duplicate counter %d", ui.Counter)
				}
				seen[ui.Counter] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("issued %d unique counters, want %d", len(seen), workers*per)
	}
	for v := uint64(1); v <= workers*per; v++ {
		if !seen[v] {
			t.Fatalf("gap at counter %d", v)
		}
	}
}
