// Package usig implements USIG (Unique Sequential Identifier Generator),
// the trusted subsystem of MinBFT (Veronese et al., "Efficient Byzantine
// Fault-Tolerance", IEEE ToC 2013), which this repository includes as the
// sequential hybrid baseline the paper compares against (§4, §6.2).
//
// USIG is simpler than TrInX: it maintains a single counter that is
// implicitly incremented at every certification. CreateUI assigns the
// next counter value to a message and returns a unique identifier (UI)
// certifying the assignment; VerifyUI checks a UI issued by another
// replica's USIG. Because the counter is implicit and unique per
// message, receivers must process messages of a replica in counter order
// and check for gaps — the equivocation-detection (not prevention)
// regime discussed in §4.2 of the Hybster paper.
package usig

import (
	"errors"
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/enclave"
)

// ErrBadUI is returned when a unique identifier fails verification.
var ErrBadUI = errors.New("usig: invalid unique identifier")

// UI is the unique identifier USIG assigns to a message: the counter
// value and the certificate binding it to the message and issuer.
type UI struct {
	Issuer  uint32 // replica ID of the issuing USIG
	Counter uint64
	MAC     crypto.MAC
}

type state struct {
	id      uint32
	key     crypto.Key
	counter uint64
}

// USIG is a handle to one USIG instance.
type USIG struct {
	id  uint32
	enc *enclave.Enclave
	met *instruments // nil = uninstrumented
}

// New creates the USIG of replica id on platform p with the group
// secret key.
func New(p *enclave.Platform, id uint32, key crypto.Key, cost enclave.CostModel) *USIG {
	enc := enclave.Create(p, fmt.Sprintf("usig-%d", id), cost, func() any {
		return &state{id: id, key: key}
	})
	return &USIG{id: id, enc: enc}
}

// ID returns the replica ID this USIG belongs to.
func (u *USIG) ID() uint32 { return u.id }

// Destroy tears down the instance's enclave.
func (u *USIG) Destroy() { u.enc.Destroy() }

func uiMAC(key crypto.Key, issuer uint32, counter uint64, msg crypto.Digest) crypto.MAC {
	return key.SumParts([]byte("ui"), crypto.U32(issuer), crypto.U64(counter), msg[:])
}

// CreateUI increments the counter and certifies the assignment of the
// new value to msg.
func (u *USIG) CreateUI(msg crypto.Digest) (UI, error) {
	res, err := u.ecall(opCreateUI, func(st any) (any, error) {
		s := st.(*state)
		s.counter++
		return UI{Issuer: s.id, Counter: s.counter, MAC: uiMAC(s.key, s.id, s.counter, msg)}, nil
	})
	if err != nil {
		return UI{}, err
	}
	return res.(UI), nil
}

// VerifyUI checks that ui is a valid identifier for msg. Verification
// enters the enclave so the shared key never leaves the trust boundary.
func (u *USIG) VerifyUI(ui UI, msg crypto.Digest) error {
	_, err := u.ecall(opVerifyUI, func(st any) (any, error) {
		s := st.(*state)
		if uiMAC(s.key, ui.Issuer, ui.Counter, msg) != ui.MAC {
			return nil, ErrBadUI
		}
		return nil, nil
	})
	return err
}

// Counter returns the current counter value (diagnostics/tests).
func (u *USIG) Counter() (uint64, error) {
	res, err := u.ecall(opCounterRead, func(st any) (any, error) {
		return st.(*state).counter, nil
	})
	if err != nil {
		return 0, err
	}
	return res.(uint64), nil
}
