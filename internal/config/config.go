// Package config holds the static configuration of a replica group: its
// size and fault threshold, the pillar layout of the consensus-oriented
// parallelization, batching and checkpointing parameters, and the
// deterministic assignments every replica must agree on (leader of a
// view, pillar of an order number, pillar of a checkpoint).
package config

import (
	"fmt"
	"time"

	"hybster/internal/timeline"
)

// Protocol selects a replication protocol configuration of §6.
type Protocol int

// The protocol configurations the evaluation compares.
const (
	// HybsterS is Hybster's sequential basic protocol (one pillar).
	HybsterS Protocol = iota
	// HybsterX is the parallelized Hybster (one pillar per core).
	HybsterX
	// PBFTcop is PBFT with consensus-oriented parallelization and MAC
	// authenticators.
	PBFTcop
	// HybridPBFT is PBFTcop with TrInX trusted MACs.
	HybridPBFT
	// MinBFT is the sequential USIG-based baseline.
	MinBFT
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case HybsterS:
		return "HybsterS"
	case HybsterX:
		return "HybsterX"
	case PBFTcop:
		return "PBFTcop"
	case HybridPBFT:
		return "HybridPBFT"
	case MinBFT:
		return "MinBFT"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Hybrid reports whether the protocol runs on the hybrid fault model
// with n = 2f+1 replicas (true) or the pure Byzantine model with
// n = 3f+1 (false).
func (p Protocol) Hybrid() bool {
	return p == HybsterS || p == HybsterX || p == MinBFT || p == HybridPBFT
}

// Note: HybridPBFT still uses n = 3f+1 — it is PBFT's protocol with a
// trusted certification primitive, exactly as evaluated in the paper —
// but it is "hybrid" in the sense of using a trusted subsystem. The
// replica count is decided by ReplicasFor below, not by Hybrid.

// ReplicasFor returns the minimum group size tolerating f faults under
// protocol p.
func ReplicasFor(p Protocol, f int) int {
	switch p {
	case PBFTcop, HybridPBFT:
		return 3*f + 1
	default:
		return 2*f + 1
	}
}

// Config is the static group configuration, identical at every replica.
type Config struct {
	// Protocol selects the replication protocol.
	Protocol Protocol
	// N is the number of replicas.
	N int
	// Pillars is the number of parallel processing units per replica
	// (1 for the sequential configurations).
	Pillars int
	// BatchSize is the maximum number of requests ordered by one
	// consensus instance.
	BatchSize int
	// CheckpointInterval is the number of instances between
	// checkpoints.
	CheckpointInterval timeline.Order
	// WindowSize is the span of the ordering window (high minus low
	// water mark); must be a multiple of CheckpointInterval and at
	// least twice the interval so ordering can proceed while a
	// checkpoint stabilizes.
	WindowSize timeline.Order
	// RotateLeader distributes proposals round-robin over all
	// replicas instead of a fixed per-view leader (§6.2).
	RotateLeader bool
	// ViewChangeTimeout is how long a replica waits for progress on a
	// pending instance before suspecting the leader.
	ViewChangeTimeout time.Duration
	// KeySeed seeds the group's symmetric key material.
	KeySeed string
}

// Default returns a working configuration for protocol p tolerating one
// fault.
func Default(p Protocol) Config {
	pillars := 1
	if p == HybsterX || p == PBFTcop || p == HybridPBFT {
		pillars = 4
	}
	return Config{
		Protocol:           p,
		N:                  ReplicasFor(p, 1),
		Pillars:            pillars,
		BatchSize:          16,
		CheckpointInterval: 128,
		WindowSize:         256,
		ViewChangeTimeout:  500 * time.Millisecond,
		KeySeed:            "hybster-default",
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.N < 3 {
		return fmt.Errorf("config: need at least 3 replicas, have %d", c.N)
	}
	min := ReplicasFor(c.Protocol, 1)
	if c.N < min {
		return fmt.Errorf("config: %s needs at least %d replicas, have %d", c.Protocol, min, c.N)
	}
	if c.Pillars < 1 {
		return fmt.Errorf("config: need at least one pillar, have %d", c.Pillars)
	}
	if (c.Protocol == HybsterS || c.Protocol == MinBFT) && c.Pillars != 1 {
		return fmt.Errorf("config: %s is sequential and requires exactly one pillar", c.Protocol)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("config: batch size must be positive, have %d", c.BatchSize)
	}
	if c.CheckpointInterval < 1 {
		return fmt.Errorf("config: checkpoint interval must be positive")
	}
	if c.WindowSize < 2*c.CheckpointInterval {
		return fmt.Errorf("config: window %d must be at least twice the checkpoint interval %d",
			c.WindowSize, c.CheckpointInterval)
	}
	if c.WindowSize%c.CheckpointInterval != 0 {
		return fmt.Errorf("config: window %d must be a multiple of the checkpoint interval %d",
			c.WindowSize, c.CheckpointInterval)
	}
	if c.ViewChangeTimeout <= 0 {
		return fmt.Errorf("config: view-change timeout must be positive")
	}
	return nil
}

// F returns the number of tolerated faults.
func (c Config) F() int {
	switch c.Protocol {
	case PBFTcop, HybridPBFT:
		return (c.N - 1) / 3
	default:
		return (c.N - 1) / 2
	}
}

// Quorum returns the ordering quorum size: ⌈(n+1)/2⌉ = f+1 for the
// hybrid 2f+1 protocols, 2f+1 for PBFT.
func (c Config) Quorum() int {
	switch c.Protocol {
	case PBFTcop, HybridPBFT:
		return 2*c.F() + 1
	default:
		return (c.N + 2) / 2 // ⌈(n+1)/2⌉
	}
}

// LeaderOf returns the leader of view v: replica v mod n.
func (c Config) LeaderOf(v timeline.View) uint32 {
	return uint32(uint64(v) % uint64(c.N))
}

// ProposerOf returns the replica that proposes order number o in view
// v. Without rotation this is the leader of v; with rotation proposals
// round-robin over the group (§6.2), offset by the view so a faulty
// replica does not keep its slot forever.
func (c Config) ProposerOf(v timeline.View, o timeline.Order) uint32 {
	if !c.RotateLeader {
		return c.LeaderOf(v)
	}
	return uint32((uint64(o) + uint64(v)) % uint64(c.N))
}

// PillarOf returns the pillar responsible for order number o — the
// predefined consensus assignment of §5.3.1.
func (c Config) PillarOf(o timeline.Order) uint32 {
	return uint32(uint64(o) % uint64(c.Pillars))
}

// CheckpointPillar returns the pillar carrying out the checkpoint at
// order o, distributed round-robin over pillars (§5.3.2).
func (c Config) CheckpointPillar(o timeline.Order) uint32 {
	return uint32((uint64(o) / uint64(c.CheckpointInterval)) % uint64(c.Pillars))
}

// IsCheckpoint reports whether order o completes a checkpoint interval.
func (c Config) IsCheckpoint(o timeline.Order) bool {
	return o > 0 && o%c.CheckpointInterval == 0
}
