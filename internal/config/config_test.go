package config

import (
	"testing"

	"hybster/internal/timeline"
)

func TestDefaultsValidate(t *testing.T) {
	for _, p := range []Protocol{HybsterS, HybsterX, PBFTcop, HybridPBFT, MinBFT} {
		c := Default(p)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestReplicasFor(t *testing.T) {
	cases := []struct {
		p    Protocol
		f, n int
	}{
		{HybsterS, 1, 3}, {HybsterX, 1, 3}, {MinBFT, 1, 3},
		{PBFTcop, 1, 4}, {HybridPBFT, 1, 4},
		{HybsterX, 2, 5}, {PBFTcop, 2, 7},
	}
	for _, c := range cases {
		if got := ReplicasFor(c.p, c.f); got != c.n {
			t.Errorf("ReplicasFor(%s,%d) = %d, want %d", c.p, c.f, got, c.n)
		}
	}
}

func TestQuorumIntersectionProperties(t *testing.T) {
	// 2q > n and n >= q+f must hold for every valid config (§5.2).
	for _, p := range []Protocol{HybsterS, HybsterX, PBFTcop, HybridPBFT, MinBFT} {
		for f := 1; f <= 3; f++ {
			c := Default(p)
			c.N = ReplicasFor(p, f)
			q := c.Quorum()
			if 2*q <= c.N {
				t.Errorf("%s f=%d: quorums do not intersect (2*%d <= %d)", p, f, q, c.N)
			}
			if c.N < q+c.F() {
				t.Errorf("%s f=%d: not enough correct replicas for a quorum (%d < %d+%d)",
					p, f, c.N, q, c.F())
			}
			if q <= c.F() {
				t.Errorf("%s f=%d: quorum %d not larger than f=%d", p, f, q, c.F())
			}
		}
	}
}

func TestHybridQuorumValues(t *testing.T) {
	c := Default(HybsterX) // n=3
	if c.F() != 1 || c.Quorum() != 2 {
		t.Fatalf("n=3: f=%d q=%d, want f=1 q=2", c.F(), c.Quorum())
	}
	c.N = 5
	if c.F() != 2 || c.Quorum() != 3 {
		t.Fatalf("n=5: f=%d q=%d, want f=2 q=3", c.F(), c.Quorum())
	}
	p := Default(PBFTcop) // n=4
	if p.F() != 1 || p.Quorum() != 3 {
		t.Fatalf("pbft n=4: f=%d q=%d, want f=1 q=3", p.F(), p.Quorum())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.N = 2 },
		func(c *Config) { c.Pillars = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.CheckpointInterval = 0 },
		func(c *Config) { c.WindowSize = c.CheckpointInterval },       // too small
		func(c *Config) { c.WindowSize = c.CheckpointInterval*2 + 1 }, // not a multiple
		func(c *Config) { c.ViewChangeTimeout = 0 },
	}
	for i, mutate := range bad {
		c := Default(HybsterX)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	seq := Default(HybsterS)
	seq.Pillars = 2
	if err := seq.Validate(); err == nil {
		t.Error("sequential protocol with 2 pillars accepted")
	}
	pb := Default(PBFTcop)
	pb.N = 3
	if err := pb.Validate(); err == nil {
		t.Error("PBFT with n=3 accepted")
	}
}

func TestLeaderOfCycles(t *testing.T) {
	c := Default(HybsterX)
	for v := timeline.View(0); v < 9; v++ {
		if got := c.LeaderOf(v); got != uint32(uint64(v)%3) {
			t.Errorf("LeaderOf(%d) = %d", v, got)
		}
	}
}

func TestProposerOfRotation(t *testing.T) {
	c := Default(HybsterX)
	if c.ProposerOf(0, 5) != c.LeaderOf(0) {
		t.Fatal("without rotation the proposer must be the leader")
	}
	c.RotateLeader = true
	seen := map[uint32]bool{}
	for o := timeline.Order(0); o < 3; o++ {
		seen[c.ProposerOf(0, o)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rotation covered %d replicas, want 3", len(seen))
	}
	// The assignment must shift with the view so a faulty proposer
	// loses its slot.
	if c.ProposerOf(0, 0) == c.ProposerOf(1, 0) {
		t.Fatal("rotation does not shift with the view")
	}
}

func TestPillarAssignmentsCoverAndPartition(t *testing.T) {
	c := Default(HybsterX)
	counts := make(map[uint32]int)
	for o := timeline.Order(0); o < 100; o++ {
		p := c.PillarOf(o)
		if int(p) >= c.Pillars {
			t.Fatalf("pillar %d out of range", p)
		}
		counts[p]++
	}
	if len(counts) != c.Pillars {
		t.Fatalf("only %d of %d pillars used", len(counts), c.Pillars)
	}
	for p, n := range counts {
		if n != 25 {
			t.Errorf("pillar %d got %d instances, want 25", p, n)
		}
	}
}

func TestCheckpointPillarRoundRobin(t *testing.T) {
	c := Default(HybsterX)
	c.CheckpointInterval = 10
	c.WindowSize = 40
	first := c.CheckpointPillar(10)
	second := c.CheckpointPillar(20)
	if first == second {
		t.Fatal("consecutive checkpoints on the same pillar")
	}
	if c.CheckpointPillar(10) != c.CheckpointPillar(10+timeline.Order(10*c.Pillars)) {
		t.Fatal("round-robin period wrong")
	}
}

func TestIsCheckpoint(t *testing.T) {
	c := Default(HybsterX)
	c.CheckpointInterval = 10
	c.WindowSize = 20
	if c.IsCheckpoint(0) {
		t.Fatal("order 0 is a checkpoint")
	}
	if !c.IsCheckpoint(10) || !c.IsCheckpoint(20) {
		t.Fatal("multiples of the interval not checkpoints")
	}
	if c.IsCheckpoint(15) {
		t.Fatal("mid-interval order reported as checkpoint")
	}
}

func TestProtocolStringAndHybrid(t *testing.T) {
	if HybsterX.String() != "HybsterX" || Protocol(99).String() == "" {
		t.Fatal("bad protocol names")
	}
	if !HybsterX.Hybrid() || !MinBFT.Hybrid() || PBFTcop.Hybrid() {
		t.Fatal("wrong hybrid classification")
	}
}
