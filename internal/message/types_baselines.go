package message

import (
	"hybster/internal/crypto"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
	"hybster/internal/usig"
)

// Proof authenticates a baseline-protocol message. Exactly one variant
// is populated: PBFTcop uses MAC authenticators (Auth), HybridPBFT uses
// TrInX trusted MACs (TCert) — the §6 configurations.
type Proof struct {
	Auth  crypto.Authenticator
	TCert trinx.Certificate
}

// HasTCert reports whether the trusted-MAC variant is populated.
func (p *Proof) HasTCert() bool { return p.TCert.Kind != 0 }

// --- PBFT (three-phase, n = 3f+1), consensus-oriented parallelization ----

// PrePrepare is the PBFT leader's proposal of a request batch for
// (View, Order) — the first of three phases.
type PrePrepare struct {
	View     timeline.View
	Order    timeline.Order
	Requests []*Request
	Proof    Proof

	dc  digestCache
	bdc digestCache
}

// MsgType implements Message.
func (*PrePrepare) MsgType() Type { return TypePrePrepare }

// BatchDigest returns the digest of the proposed batch, memoized on
// first use.
func (p *PrePrepare) BatchDigest() crypto.Digest {
	if d, ok := p.bdc.cached(); ok {
		return d
	}
	return p.bdc.fill(BatchDigest(p.Requests))
}

// Digest returns the value the proof covers.
func (p *PrePrepare) Digest() crypto.Digest {
	if d, ok := p.dc.cached(); ok {
		return d
	}
	bd := p.BatchDigest()
	return p.dc.fill(crypto.HashParts([]byte("pprep"),
		crypto.U64(uint64(timeline.Pack(p.View, p.Order))), bd[:]))
}

// PBFTPrepare is the second-phase acknowledgment of a PrePrepare.
type PBFTPrepare struct {
	View        timeline.View
	Order       timeline.Order
	Replica     uint32
	BatchDigest crypto.Digest
	Proof       Proof

	dc digestCache
}

// MsgType implements Message.
func (*PBFTPrepare) MsgType() Type { return TypePBFTPrepare }

// Digest returns the value the proof covers.
func (p *PBFTPrepare) Digest() crypto.Digest {
	if d, ok := p.dc.cached(); ok {
		return d
	}
	return p.dc.fill(crypto.HashParts([]byte("pbftp"),
		crypto.U64(uint64(timeline.Pack(p.View, p.Order))),
		crypto.U32(p.Replica), p.BatchDigest[:]))
}

// PBFTCommit is the third-phase message; a quorum of commits makes the
// instance eligible for execution.
type PBFTCommit struct {
	View        timeline.View
	Order       timeline.Order
	Replica     uint32
	BatchDigest crypto.Digest
	Proof       Proof

	dc digestCache
}

// MsgType implements Message.
func (*PBFTCommit) MsgType() Type { return TypePBFTCommit }

// Digest returns the value the proof covers.
func (c *PBFTCommit) Digest() crypto.Digest {
	if d, ok := c.dc.cached(); ok {
		return d
	}
	return c.dc.fill(crypto.HashParts([]byte("pbftc"),
		crypto.U64(uint64(timeline.Pack(c.View, c.Order))),
		crypto.U32(c.Replica), c.BatchDigest[:]))
}

// PBFTCheckpoint announces a stable state snapshot in the PBFT
// baseline.
type PBFTCheckpoint struct {
	Order       timeline.Order
	Replica     uint32
	StateDigest crypto.Digest
	Proof       Proof

	dc digestCache
}

// MsgType implements Message.
func (*PBFTCheckpoint) MsgType() Type { return TypePBFTCheckpoint }

// Digest returns the value the proof covers.
func (c *PBFTCheckpoint) Digest() crypto.Digest {
	if d, ok := c.dc.cached(); ok {
		return d
	}
	return c.dc.fill(crypto.HashParts([]byte("pbftck"),
		crypto.U64(uint64(c.Order)), crypto.U32(c.Replica), c.StateDigest[:]))
}

// PreparedProof is PBFT's quorum certificate that an instance reached
// the prepared state: the PRE-PREPARE plus 2f matching PREPAREs.
type PreparedProof struct {
	PrePrepare *PrePrepare
	Prepares   []*PBFTPrepare
}

// PBFTViewChange announces that the sender moved to view View and
// carries its last stable checkpoint proof plus a PreparedProof for
// every instance it prepared above the checkpoint.
type PBFTViewChange struct {
	Replica   uint32
	View      timeline.View
	CkptOrder timeline.Order
	CkptProof []*PBFTCheckpoint
	Prepared  []PreparedProof
	Proof     Proof

	dc digestCache
}

// MsgType implements Message.
func (*PBFTViewChange) MsgType() Type { return TypePBFTViewChange }

// Digest returns the value the proof covers.
func (v *PBFTViewChange) Digest() crypto.Digest {
	if d, ok := v.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64)
	e.U32(v.Replica)
	e.U64(uint64(v.View))
	e.U64(uint64(v.CkptOrder))
	e.Len(len(v.CkptProof))
	for _, c := range v.CkptProof {
		d := c.Digest()
		e.Bytes32(d)
	}
	e.Len(len(v.Prepared))
	for _, pp := range v.Prepared {
		d := pp.PrePrepare.Digest()
		e.Bytes32(d)
		e.Len(len(pp.Prepares))
		for _, p := range pp.Prepares {
			pd := p.Digest()
			e.Bytes32(pd)
		}
	}
	return v.dc.fill(crypto.HashParts([]byte("pbftvc"), e.Bytes()))
}

// PBFTNewView is the new leader's view installation message: the quorum
// of VIEW-CHANGEs and the re-issued PRE-PREPAREs.
type PBFTNewView struct {
	View        timeline.View
	VCs         []*PBFTViewChange
	PrePrepares []*PrePrepare
	Proof       Proof

	dc digestCache
}

// MsgType implements Message.
func (*PBFTNewView) MsgType() Type { return TypePBFTNewView }

// Digest returns the value the proof covers.
func (n *PBFTNewView) Digest() crypto.Digest {
	if d, ok := n.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64)
	e.U64(uint64(n.View))
	e.Len(len(n.VCs))
	for _, vc := range n.VCs {
		d := vc.Digest()
		e.Bytes32(d)
	}
	e.Len(len(n.PrePrepares))
	for _, p := range n.PrePrepares {
		d := p.Digest()
		e.Bytes32(d)
	}
	return n.dc.fill(crypto.HashParts([]byte("pbftnv"), e.Bytes()))
}

// --- MinBFT (two-phase, sequential, USIG) ---------------------------------

// MinPrepare is the MinBFT leader's proposal. There is no explicit
// order number: the total order is determined by the counter value
// inside the leader's UI (§4.4 of the Hybster paper).
type MinPrepare struct {
	View     timeline.View
	Requests []*Request
	UI       usig.UI

	dc  digestCache
	bdc digestCache
}

// MsgType implements Message.
func (*MinPrepare) MsgType() Type { return TypeMinPrepare }

// BatchDigest returns the digest of the proposed batch, memoized on
// first use.
func (p *MinPrepare) BatchDigest() crypto.Digest {
	if d, ok := p.bdc.cached(); ok {
		return d
	}
	return p.bdc.fill(BatchDigest(p.Requests))
}

// Digest returns the value the UI covers.
func (p *MinPrepare) Digest() crypto.Digest {
	if d, ok := p.dc.cached(); ok {
		return d
	}
	bd := p.BatchDigest()
	return p.dc.fill(crypto.HashParts([]byte("minp"), crypto.U64(uint64(p.View)), bd[:]))
}

// MinReqViewChange asks the group to move to view View (MinBFT's
// REQ-VIEW-CHANGE). It consumes no UI — replicas act once f+1 distinct
// requests arrive — and is authenticated like a client request, with a
// MAC authenticator.
type MinReqViewChange struct {
	Replica uint32
	View    timeline.View
	Auth    crypto.Authenticator

	dc digestCache
}

// MsgType implements Message.
func (*MinReqViewChange) MsgType() Type { return TypeMinReqViewChange }

// Digest returns the value the authenticator covers.
func (r *MinReqViewChange) Digest() crypto.Digest {
	if d, ok := r.dc.cached(); ok {
		return d
	}
	return r.dc.fill(crypto.HashParts([]byte("minrvc"), crypto.U32(r.Replica), crypto.U64(uint64(r.View))))
}

// MinViewChange is MinBFT's VIEW-CHANGE: the last stable checkpoint
// plus the complete history of ordering messages the replica sent
// since that checkpoint — each history entry is a marshaled message
// whose own UI proves its place in the sender's counter sequence. The
// VIEW-CHANGE consumes the next counter value itself, sealing the
// history: HistBase is the sender's counter at the checkpoint, and
// entries must cover (HistBase, UI.Counter) without gaps. This is the
// history-based design whose unbounded growth §4.4 of the Hybster
// paper criticizes.
type MinViewChange struct {
	Replica   uint32
	View      timeline.View // target view
	CkptOrder timeline.Order
	CkptProof []*Checkpoint
	HistBase  uint64
	History   [][]byte
	// AnchorView/AnchorOrder/AnchorCounter record the sender's order
	// anchoring for the last view it participated in: the leader
	// prepare with UI counter AnchorCounter was assigned order
	// AnchorOrder. Receivers need the anchor to translate history
	// counters back into order numbers — MinBFT has no explicit order
	// numbers (§4.4), which is precisely what makes its view change
	// intricate.
	AnchorView    timeline.View
	AnchorOrder   uint64
	AnchorCounter uint64
	UI            usig.UI

	dc digestCache
}

// MsgType implements Message.
func (*MinViewChange) MsgType() Type { return TypeMinViewChange }

// Digest returns the value the UI covers.
func (v *MinViewChange) Digest() crypto.Digest {
	if d, ok := v.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64)
	e.U32(v.Replica)
	e.U64(uint64(v.View))
	e.U64(uint64(v.CkptOrder))
	e.Len(len(v.CkptProof))
	for _, c := range v.CkptProof {
		d := c.Digest()
		e.Bytes32(d)
	}
	e.U64(v.HistBase)
	e.Len(len(v.History))
	for _, h := range v.History {
		d := crypto.Hash(h)
		e.Bytes32(d)
	}
	e.U64(uint64(v.AnchorView))
	e.U64(v.AnchorOrder)
	e.U64(v.AnchorCounter)
	return v.dc.fill(crypto.HashParts([]byte("minvc"), e.Bytes()))
}

// MinNewView is MinBFT's NEW-VIEW: the f+1 VIEW-CHANGEs the new leader
// used; every replica recomputes the initial state of the new view
// from them.
type MinNewView struct {
	View timeline.View
	VCs  []*MinViewChange
	UI   usig.UI

	dc digestCache
}

// MsgType implements Message.
func (*MinNewView) MsgType() Type { return TypeMinNewView }

// Digest returns the value the UI covers.
func (n *MinNewView) Digest() crypto.Digest {
	if d, ok := n.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64)
	e.U64(uint64(n.View))
	e.Len(len(n.VCs))
	for _, vc := range n.VCs {
		d := vc.Digest()
		e.Bytes32(d)
	}
	return n.dc.fill(crypto.HashParts([]byte("minnv"), e.Bytes()))
}

// MinCommit acknowledges a MinPrepare. As in MinBFT, the commit
// embeds the acknowledged PREPARE — that is how proposals reach the
// histories of followers and survive a leader crash (§4.4): a
// follower's VIEW-CHANGE history consists of commits, and each commit
// carries the proposal it answered.
type MinCommit struct {
	View        timeline.View
	Replica     uint32
	BatchDigest crypto.Digest
	Prepare     *MinPrepare
	PrepareUI   usig.UI
	UI          usig.UI

	dc digestCache
}

// MsgType implements Message.
func (*MinCommit) MsgType() Type { return TypeMinCommit }

// Digest returns the value the commit's UI covers.
func (c *MinCommit) Digest() crypto.Digest {
	if d, ok := c.dc.cached(); ok {
		return d
	}
	return c.dc.fill(crypto.HashParts([]byte("minc"),
		crypto.U64(uint64(c.View)), crypto.U32(c.Replica),
		crypto.U64(c.PrepareUI.Counter), c.BatchDigest[:]))
}
