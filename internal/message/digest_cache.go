package message

import (
	"sync/atomic"

	"hybster/internal/crypto"
)

// digestCache memoizes a message digest inside the message struct.
//
// The caching contract is the package's immutability convention made
// load-bearing: a message must not be mutated after its digest has
// been computed (for senders, that is the moment it is certified; for
// receivers, the moment it is verified). Under that contract the cache
// never needs invalidation. Concurrent Digest calls are safe — the
// in-process transport shares message pointers between replicas — via
// a tiny state machine on an atomically accessed word:
//
//	0 = empty, 1 = a writer is filling d, 2 = d is valid
//
// Exactly one caller wins the 0→1 CAS and publishes its result with a
// release-store of 2; every caller that loses (or observes state 1)
// simply returns its own computation. The fields are deliberately
// plain (no sync/atomic struct types) so that pre-existing by-value
// copies of message structs stay vet-clean; a copy taken before the
// first Digest call behaves like a fresh cache.
type digestCache struct {
	state uint32 // accessed atomically
	d     crypto.Digest
}

// cached returns the memoized digest, if one has been published.
func (c *digestCache) cached() (crypto.Digest, bool) {
	if atomic.LoadUint32(&c.state) == 2 {
		return c.d, true
	}
	return crypto.Digest{}, false
}

// fill publishes d as the memoized digest (first writer wins) and
// returns it.
func (c *digestCache) fill(d crypto.Digest) crypto.Digest {
	if atomic.CompareAndSwapUint32(&c.state, 0, 1) {
		c.d = d
		atomic.StoreUint32(&c.state, 2)
	}
	return d
}

// PrecomputeDigest computes and caches the digest (and batch digest,
// for proposal messages) of m on the caller's goroutine. Senders call
// it once, after fully populating a message and before handing it to
// the transport, so that the cost is paid off the receivers' critical
// path and concurrent receivers of a shared in-process message hit a
// warm cache. Message types without a digest are ignored.
func PrecomputeDigest(m Message) {
	switch v := m.(type) {
	case *Request:
		_ = v.Digest()
	case *Reply:
		_ = v.Digest()
	case *Prepare:
		_ = v.BatchDigest()
		_ = v.Digest()
	case *Commit:
		_ = v.Digest()
	case *Checkpoint:
		_ = v.Digest()
	case *ViewChange:
		_ = v.Digest()
	case *NewView:
		_ = v.Digest()
	case *NewViewAck:
		_ = v.Digest()
	case *PrePrepare:
		_ = v.BatchDigest()
		_ = v.Digest()
	case *PBFTPrepare:
		_ = v.Digest()
	case *PBFTCommit:
		_ = v.Digest()
	case *PBFTCheckpoint:
		_ = v.Digest()
	case *PBFTViewChange:
		_ = v.Digest()
	case *PBFTNewView:
		_ = v.Digest()
	case *MinPrepare:
		_ = v.BatchDigest()
		_ = v.Digest()
	case *MinCommit:
		_ = v.Digest()
	case *MinReqViewChange:
		_ = v.Digest()
	case *MinViewChange:
		_ = v.Digest()
	case *MinNewView:
		_ = v.Digest()
	}
}
