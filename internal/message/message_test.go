package message

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hybster/internal/crypto"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
	"hybster/internal/usig"
)

// --- codec primitives ---

func TestCodecPrimitivesRoundtrip(t *testing.T) {
	err := quick.Check(func(a uint8, b uint16, c uint32, d uint64, f bool, v []byte) bool {
		e := NewEncoder(64)
		e.U8(a)
		e.U16(b)
		e.U32(c)
		e.U64(d)
		e.Bool(f)
		e.VarBytes(v)
		dec := NewDecoder(e.Bytes())
		okA := dec.U8() == a
		okB := dec.U16() == b
		okC := dec.U32() == c
		okD := dec.U64() == d
		okF := dec.Bool() == f
		got := dec.VarBytes()
		return okA && okB && okC && okD && okF && bytes.Equal(got, v) && dec.Finish() == nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // truncated
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err() = %v", d.Err())
	}
	// Subsequent reads stay safe and zero.
	if d.U32() != 0 || d.U8() != 0 || d.VarBytes() != nil {
		t.Fatal("reads after error not zero")
	}
	if d.Finish() == nil {
		t.Fatal("Finish() nil after error")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(8)
	e.U32(7)
	buf := append(e.Bytes(), 0xff)
	d := NewDecoder(buf)
	_ = d.U32()
	if err := d.Finish(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Finish() = %v, want ErrMalformed", err)
	}
}

func TestDecoderHostileLengthPrefix(t *testing.T) {
	e := NewEncoder(8)
	e.U32(0xffffffff) // absurd length
	d := NewDecoder(e.Bytes())
	if d.VarBytes() != nil || d.Err() == nil {
		t.Fatal("hostile VarBytes length accepted")
	}
	d2 := NewDecoder(e.Bytes())
	if d2.Len(16) != 0 || d2.Err() == nil {
		t.Fatal("hostile Len accepted")
	}
}

// --- fixtures ---

func sampleCert(seed uint64) trinx.Certificate {
	var mac crypto.MAC
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Read(mac[:])
	return trinx.Certificate{
		Kind:    trinx.Independent,
		Issuer:  trinx.MakeInstanceID(uint32(seed%5), uint32(seed%3)),
		Counter: uint32(seed % 7),
		Value:   seed * 31,
		Prev:    seed * 13,
		MAC:     mac,
	}
}

func sampleAuth(sender uint32, n int) crypto.Authenticator {
	a := crypto.Authenticator{Sender: sender, MACs: make([]crypto.MAC, n)}
	for i := range a.MACs {
		a.MACs[i][0] = byte(i + 1)
	}
	return a
}

func sampleRequest(i int) *Request {
	return &Request{
		Client:   crypto.ClientIDBase + uint32(i),
		Seq:      uint64(i) * 3,
		ReadOnly: i%2 == 0,
		Payload:  []byte{byte(i), byte(i + 1)},
		Auth:     sampleAuth(crypto.ClientIDBase+uint32(i), 3),
	}
}

func sampleCheckpoint(i int) *Checkpoint {
	return &Checkpoint{
		Order: timeline.Order(i * 50), Replica: uint32(i),
		StateDigest: crypto.Hash([]byte{byte(i)}), Cert: sampleCert(uint64(i)),
	}
}

func samplePrepare(i int) *Prepare {
	return &Prepare{
		View: timeline.View(i), Order: timeline.Order(i * 10),
		Requests: []*Request{sampleRequest(i), sampleRequest(i + 1)},
		Cert:     sampleCert(uint64(i)),
	}
}

func sampleViewChange(i int) *ViewChange {
	return &ViewChange{
		Replica: uint32(i), Pillar: uint32(i % 3),
		From: timeline.View(i), To: timeline.View(i + 1),
		CkptOrder: timeline.Order(i * 100), CkptDigest: crypto.Hash([]byte{byte(i)}),
		CkptProof: []*Checkpoint{sampleCheckpoint(i), sampleCheckpoint(i + 1)},
		Prepares:  []*Prepare{samplePrepare(i)},
		Cert:      sampleCert(uint64(i) + 7),
	}
}

func sampleUI(i int) usig.UI {
	var mac crypto.MAC
	mac[0] = byte(i)
	return usig.UI{Issuer: uint32(i), Counter: uint64(i) * 11, MAC: mac}
}

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		sampleRequest(1),
		&Reply{Replica: 2, Client: crypto.ClientIDBase + 1, Seq: 9, Result: []byte("ok"), MAC: crypto.MAC{1}},
		samplePrepare(2),
		&Commit{View: 1, Order: 20, Replica: 2, BatchDigest: crypto.Hash([]byte("b")), Cert: sampleCert(3)},
		sampleCheckpoint(3),
		sampleViewChange(4),
		&NewView{
			View: 5, Pillar: 1,
			VCs:      []*ViewChange{sampleViewChange(5), sampleViewChange(6)},
			Acks:     []*NewViewAck{{Replica: 1, Pillar: 0, View: 4, Prepares: []*Prepare{samplePrepare(7)}, Cert: sampleCert(8)}},
			Prepares: []*Prepare{samplePrepare(9)},
			Cert:     sampleCert(10),
		},
		&NewViewAck{Replica: 0, Pillar: 2, View: 3, Prepares: nil, Cert: sampleCert(11)},
		&PrePrepare{View: 1, Order: 4, Requests: []*Request{sampleRequest(3)}, Proof: Proof{Auth: sampleAuth(0, 4)}},
		&PBFTPrepare{View: 1, Order: 4, Replica: 2, BatchDigest: crypto.Hash([]byte("x")), Proof: Proof{TCert: sampleCert(12)}},
		&PBFTCommit{View: 1, Order: 4, Replica: 3, BatchDigest: crypto.Hash([]byte("y")), Proof: Proof{Auth: sampleAuth(3, 4)}},
		&PBFTCheckpoint{Order: 100, Replica: 1, StateDigest: crypto.Hash([]byte("s")), Proof: Proof{TCert: sampleCert(13)}},
		&PBFTViewChange{
			Replica: 2, View: 6, CkptOrder: 100,
			CkptProof: []*PBFTCheckpoint{{Order: 100, Replica: 0, StateDigest: crypto.Hash([]byte("s")), Proof: Proof{Auth: sampleAuth(0, 4)}}},
			Prepared: []PreparedProof{{
				PrePrepare: &PrePrepare{View: 5, Order: 101, Requests: []*Request{sampleRequest(4)}, Proof: Proof{Auth: sampleAuth(1, 4)}},
				Prepares:   []*PBFTPrepare{{View: 5, Order: 101, Replica: 2, BatchDigest: crypto.Hash([]byte("z")), Proof: Proof{Auth: sampleAuth(2, 4)}}},
			}},
			Proof: Proof{Auth: sampleAuth(2, 4)},
		},
		&PBFTNewView{
			View:        6,
			VCs:         []*PBFTViewChange{{Replica: 1, View: 6, CkptOrder: 0, Proof: Proof{TCert: sampleCert(14)}}},
			PrePrepares: []*PrePrepare{{View: 6, Order: 101, Proof: Proof{TCert: sampleCert(15)}}},
			Proof:       Proof{TCert: sampleCert(16)},
		},
		&MinPrepare{View: 2, Requests: []*Request{sampleRequest(5)}, UI: sampleUI(1)},
		&MinCommit{View: 2, Replica: 1, BatchDigest: crypto.Hash([]byte("m")), PrepareUI: sampleUI(2), UI: sampleUI(3)},
		&MinReqViewChange{Replica: 2, View: 4, Auth: sampleAuth(2, 3)},
		&MinViewChange{
			Replica: 1, View: 4, CkptOrder: 20,
			CkptProof: []*Checkpoint{sampleCheckpoint(2)},
			HistBase:  7, History: [][]byte{{1, 2, 3}, {4, 5}},
			AnchorView: 3, AnchorOrder: 21, AnchorCounter: 9,
			UI: sampleUI(4),
		},
		&MinNewView{View: 4, VCs: []*MinViewChange{{Replica: 0, View: 4, UI: sampleUI(5)}}, UI: sampleUI(6)},
		&StateRequest{Replica: 2, From: 150},
		&StateReply{Replica: 0, CkptOrder: 200, Snapshot: []byte("snap"), ReplyVector: []byte("rv"), Proof: []*Checkpoint{sampleCheckpoint(9)}},
	}
}

func TestMarshalRoundtripAllTypes(t *testing.T) {
	for _, m := range allMessages() {
		buf := Marshal(m)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", m.MsgType(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%s: roundtrip mismatch:\n sent %#v\n got  %#v", m.MsgType(), m, got)
		}
	}
}

func TestUnmarshalTruncationsNeverPanic(t *testing.T) {
	for _, m := range allMessages() {
		buf := Marshal(m)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Unmarshal(buf[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d accepted", m.MsgType(), cut, len(buf))
			}
		}
	}
}

func TestUnmarshalRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_, _ = Unmarshal(buf) // must not panic; errors are fine
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	if _, err := Unmarshal([]byte{0xEE}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestDigestsChangeWithContent(t *testing.T) {
	// Digests are memoized and messages are immutable once digested, so
	// every variant is constructed fresh rather than mutated in place.
	r1, r2 := sampleRequest(1), sampleRequest(1)
	if r1.Digest() != r2.Digest() {
		t.Fatal("identical requests have different digests")
	}
	r3 := sampleRequest(1)
	r3.Payload = []byte("other")
	if r1.Digest() == r3.Digest() {
		t.Fatal("payload change did not change request digest")
	}

	p1, p2 := samplePrepare(1), samplePrepare(1)
	if p1.Digest() != p2.Digest() {
		t.Fatal("identical prepares differ")
	}
	p3 := samplePrepare(1)
	p3.Order++
	if p1.Digest() == p3.Digest() {
		t.Fatal("order change did not change prepare digest")
	}

	c := &Commit{View: 1, Order: 5, Replica: 0, BatchDigest: crypto.Hash([]byte("b"))}
	c2 := &Commit{View: 1, Order: 5, Replica: 1, BatchDigest: crypto.Hash([]byte("b"))}
	if c.Digest() == c2.Digest() {
		t.Fatal("replica change did not change commit digest")
	}
}

func TestBatchDigestProperties(t *testing.T) {
	a, b := sampleRequest(1), sampleRequest(2)
	if BatchDigest([]*Request{a, b}) == BatchDigest([]*Request{b, a}) {
		t.Fatal("batch digest ignores order")
	}
	if BatchDigest(nil) != BatchDigest([]*Request{}) {
		t.Fatal("empty batch digests differ")
	}
	if BatchDigest(nil).IsZero() {
		t.Fatal("empty batch digest is zero")
	}
	if BatchDigest([]*Request{a}) == BatchDigest(nil) {
		t.Fatal("no-op batch collides with non-empty batch")
	}
}

func TestPrepareCommitSamePointDigestsDiffer(t *testing.T) {
	// A PREPARE and a COMMIT for the same instance must never share a
	// digest; otherwise a certificate for one could be replayed as the
	// other.
	p := samplePrepare(1)
	c := &Commit{View: p.View, Order: p.Order, Replica: 0, BatchDigest: p.BatchDigest()}
	if p.Digest() == c.Digest() {
		t.Fatal("prepare and commit digests collide")
	}
}

func TestPointHelpers(t *testing.T) {
	p := samplePrepare(3)
	if p.Point() != timeline.Pack(p.View, p.Order) {
		t.Fatal("Prepare.Point mismatch")
	}
	c := &Commit{View: 2, Order: 9}
	if c.Point() != timeline.Pack(2, 9) {
		t.Fatal("Commit.Point mismatch")
	}
}

func TestViewChangeDigestCoversPrepares(t *testing.T) {
	v1, v2 := sampleViewChange(1), sampleViewChange(1)
	if v1.Digest() != v2.Digest() {
		t.Fatal("identical view-changes differ")
	}
	noPreps := sampleViewChange(1)
	noPreps.Prepares = nil
	if v1.Digest() == noPreps.Digest() {
		t.Fatal("dropping prepares did not change view-change digest — concealment possible")
	}
	v3 := sampleViewChange(1)
	v3.From++
	if v1.Digest() == v3.Digest() {
		t.Fatal("v_from not covered by digest")
	}
}

func TestTypeString(t *testing.T) {
	if TypePrepare.String() != "PREPARE" || TypeViewChange.String() != "VIEW-CHANGE" {
		t.Fatal("wrong type names")
	}
	if Type(200).String() != "UNKNOWN" {
		t.Fatal("unknown type not reported")
	}
}

func TestProofVariants(t *testing.T) {
	var p Proof
	if p.HasTCert() {
		t.Fatal("zero proof claims TCert")
	}
	p.TCert = sampleCert(1)
	if !p.HasTCert() {
		t.Fatal("TCert proof not detected")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	for _, m := range allMessages() {
		if !bytes.Equal(Marshal(m), Marshal(m)) {
			t.Fatalf("%s: non-deterministic marshaling", m.MsgType())
		}
	}
}

// TestUnmarshalRejectsOutOfRangeViewOrder pins that view and order
// numbers exceeding the timeline field widths are rejected at decode
// time: a corrupted or hostile frame must fail to parse rather than
// make timeline.Pack panic inside a later Digest call.
func TestUnmarshalRejectsOutOfRangeViewOrder(t *testing.T) {
	overView := uint64(timeline.MaxView) + 1
	overOrder := uint64(timeline.MaxOrder) + 1

	cases := []Message{
		&Prepare{View: timeline.View(overView)},
		&Commit{Order: timeline.Order(overOrder)},
		&PBFTPrepare{View: timeline.View(overView)},
		&PBFTCommit{Order: timeline.Order(overOrder)},
		&PBFTViewChange{View: timeline.View(overView)},
		&MinPrepare{View: timeline.View(overView)},
		&Checkpoint{Order: timeline.Order(overOrder)},
	}
	for _, m := range cases {
		buf := Marshal(m)
		if _, err := Unmarshal(buf); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s with out-of-range view/order: err = %v, want ErrMalformed",
				m.MsgType(), err)
		}
	}
}
