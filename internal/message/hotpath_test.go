package message

import (
	"sync"
	"testing"
)

// TestWireSizeMatchesMarshal pins every wireSize sizer against its
// encoder over the full message corpus: the exact-size precompute must
// equal what Marshal actually produced, and the output buffer must
// carry zero spare capacity (one allocation at the final size).
func TestWireSizeMatchesMarshal(t *testing.T) {
	for _, m := range allMessages() {
		buf := Marshal(m)
		if want := 1 + wireSize(m); len(buf) != want {
			t.Errorf("%T: wireSize predicts %d bytes, Marshal wrote %d", m, want, len(buf))
		}
		if cap(buf) != len(buf) {
			t.Errorf("%T: marshal buffer has spare capacity (len %d, cap %d)", m, len(buf), cap(buf))
		}
	}
}

func TestMarshalStatsCount(t *testing.T) {
	t0, _ := MarshalStats()
	for i := 0; i < 8; i++ {
		Marshal(sampleRequest(i))
	}
	t1, h1 := MarshalStats()
	if t1-t0 < 8 {
		t.Fatalf("marshal total advanced by %d, want >= 8", t1-t0)
	}
	if h1 > t1 {
		t.Fatalf("pool hits %d exceed total %d", h1, t1)
	}
}

// TestHotPathAllocs pins the allocation behavior the hot-path overhaul
// bought: a memoized digest costs zero allocations on a warm cache, and
// a marshal with a warm encoder pool costs exactly one (the returned
// buffer).
func TestHotPathAllocs(t *testing.T) {
	p := samplePrepare(7)
	_ = p.BatchDigest()
	_ = p.Digest() // warm the caches
	if n := testing.AllocsPerRun(100, func() { _ = p.Digest() }); n != 0 {
		t.Errorf("cached Prepare.Digest allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = p.BatchDigest() }); n != 0 {
		t.Errorf("cached Prepare.BatchDigest allocates %.1f/op, want 0", n)
	}
	r := sampleRequest(7)
	_ = r.Digest()
	if n := testing.AllocsPerRun(100, func() { _ = r.Digest() }); n != 0 {
		t.Errorf("cached Request.Digest allocates %.1f/op, want 0", n)
	}

	c := &Commit{View: 1, Order: 2, Replica: 3, Cert: sampleCert(1)}
	Marshal(c) // warm the encoder pool
	if n := testing.AllocsPerRun(100, func() { _ = Marshal(c) }); n > 1 {
		t.Errorf("Marshal(Commit) allocates %.1f/op, want <= 1", n)
	}
	Marshal(p)
	if n := testing.AllocsPerRun(100, func() { _ = Marshal(p) }); n > 1 {
		t.Errorf("Marshal(Prepare) allocates %.1f/op, want <= 1", n)
	}
}

// TestDigestConcurrent exercises the first-writer-wins cache fill from
// many goroutines; run under -race this pins the atomic publication
// protocol in digestCache.
func TestDigestConcurrent(t *testing.T) {
	p := samplePrepare(11)
	want := samplePrepare(11).Digest()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if p.Digest() != want {
					t.Error("concurrent digest mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPrecomputeDigestWarmsCache verifies the sender-side precompute
// leaves a warm cache behind for every digest-bearing type.
func TestPrecomputeDigestWarmsCache(t *testing.T) {
	for _, m := range allMessages() {
		PrecomputeDigest(m)
		switch m.(type) {
		case *StateRequest, *StateReply:
			continue // no digest
		}
		if n := testing.AllocsPerRun(10, func() { PrecomputeDigest(m) }); n != 0 {
			t.Errorf("%T: PrecomputeDigest after warmup allocates %.1f/op, want 0", m, n)
		}
	}
}
