package message

import (
	"bytes"
	"math"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/timeline"
)

// viewChangeSeeds are seeds shaped like the view-change and
// checkpointing protocols actually on the wire: empty and deeply
// nested certificate sets, zero-length batches, multi-pillar NEW-VIEWs
// with acknowledgments, and boundary order/view values. Byte-level
// mutation reaches these decode paths far faster when the corpus
// starts inside them.
func viewChangeSeeds() []Message {
	deepVC := sampleViewChange(11)
	deepVC.Prepares = []*Prepare{samplePrepare(1), samplePrepare(2), samplePrepare(3)}
	deepVC.CkptProof = []*Checkpoint{
		sampleCheckpoint(1), sampleCheckpoint(2), sampleCheckpoint(3),
	}
	emptyVC := &ViewChange{Replica: 1, Pillar: 0, From: 0, To: 1, Cert: sampleCert(1)}
	maxVC := &ViewChange{
		Replica: math.MaxUint32, Pillar: math.MaxUint32,
		From: timeline.View(math.MaxUint64), To: timeline.View(math.MaxUint64),
		CkptOrder: timeline.Order(math.MaxUint64),
		Cert:      sampleCert(3),
	}
	emptyBatch := &Prepare{View: 1, Order: 2, Requests: []*Request{}, Cert: sampleCert(4)}
	return []Message{
		deepVC,
		emptyVC,
		maxVC,
		emptyBatch,
		&Checkpoint{Order: 0, Replica: 0, Cert: sampleCert(5)},
		&Checkpoint{
			Order: timeline.Order(math.MaxUint64), Replica: math.MaxUint32,
			StateDigest: crypto.Hash([]byte("edge")), Cert: sampleCert(6),
		},
		&NewView{View: 1, Pillar: 0, Cert: sampleCert(7)}, // no VCs, acks, prepares
		&NewView{
			View: timeline.View(math.MaxUint64), Pillar: 3,
			VCs: []*ViewChange{emptyVC, deepVC, maxVC},
			Acks: []*NewViewAck{
				{Replica: 0, Pillar: 0, View: 1, Cert: sampleCert(8)},
				{Replica: 2, Pillar: 1, View: 2, Prepares: []*Prepare{emptyBatch}, Cert: sampleCert(9)},
			},
			Prepares: []*Prepare{samplePrepare(4), emptyBatch},
			Cert:     sampleCert(10),
		},
		&NewViewAck{
			Replica: math.MaxUint32, Pillar: 2, View: timeline.View(math.MaxUint64),
			Prepares: []*Prepare{samplePrepare(5)}, Cert: sampleCert(11),
		},
	}
}

// FuzzUnmarshal feeds arbitrary bytes into the wire decoder. The
// decoder must never panic, and any message it does accept must
// re-encode and re-decode stably (round-trip closure).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Marshal(m))
	}
	for _, m := range viewChangeSeeds() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted messages must round-trip deterministically.
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, Marshal(m2)) {
			t.Fatalf("marshal not stable after round trip")
		}
	})
}

// FuzzViewChangeRoundtrip builds structurally valid VIEW-CHANGE and
// NEW-VIEW messages from fuzz-controlled field values and requires an
// exact wire round trip. Unlike byte-level fuzzing, this drives the
// *encoder* into corners (huge counts are clamped to keep memory
// bounded, but boundary scalars pass through untouched).
func FuzzViewChangeRoundtrip(f *testing.F) {
	f.Add(uint32(1), uint32(0), uint64(3), uint64(4), uint64(100), uint(2), uint(1), false)
	f.Add(uint32(0), uint32(7), uint64(0), uint64(0), uint64(0), uint(0), uint(0), true)
	f.Add(uint32(math.MaxUint32), uint32(3), uint64(math.MaxUint64), uint64(math.MaxUint64),
		uint64(math.MaxUint64), uint(5), uint(3), true)

	f.Fuzz(func(t *testing.T, replica, pillar uint32, from, to, ckpt uint64,
		nPreps, nProof uint, wrapNV bool) {
		if nPreps > 8 {
			nPreps = 8
		}
		if nProof > 8 {
			nProof = 8
		}
		// The wire format packs views and orders into bounded fields;
		// the decoder rejects anything wider, so a *valid* message must
		// stay inside them.
		from %= uint64(timeline.MaxView) + 1
		to %= uint64(timeline.MaxView) + 1
		ckpt %= uint64(timeline.MaxOrder) + 1
		vc := &ViewChange{
			Replica: replica, Pillar: pillar,
			From: timeline.View(from), To: timeline.View(to),
			CkptOrder: timeline.Order(ckpt), CkptDigest: crypto.Hash([]byte{byte(ckpt)}),
			Cert: sampleCert(from ^ to),
		}
		for i := uint(0); i < nProof; i++ {
			vc.CkptProof = append(vc.CkptProof, sampleCheckpoint(int(i)))
		}
		for i := uint(0); i < nPreps; i++ {
			vc.Prepares = append(vc.Prepares, samplePrepare(int(i)))
		}
		var m Message = vc
		if wrapNV {
			m = &NewView{
				View: timeline.View(to), Pillar: pillar,
				VCs:  []*ViewChange{vc},
				Acks: []*NewViewAck{{Replica: replica, Pillar: pillar, View: timeline.View(from), Cert: sampleCert(to)}},
				Cert: sampleCert(from + to),
			}
		}
		buf := Marshal(m)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("decode of valid %T failed: %v", m, err)
		}
		if !bytes.Equal(buf, Marshal(got)) {
			t.Fatalf("wire form not stable for %T", m)
		}
	})
}

// FuzzPooledBufferAliasing is the copy-on-decode regression guard for
// the transport's pooled read buffers. The TCP read loop hands the
// decoder a buffer it will recycle (and overwrite) as soon as
// Unmarshal returns, so no decoded message may alias the input: every
// var-length field must be cloned during decode. The fuzzer decodes
// from a scratch buffer, scribbles over that buffer, and requires the
// message's wire form (which walks every field, including digests of
// payloads and nested certificates) to be unchanged.
func FuzzPooledBufferAliasing(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Marshal(m))
	}
	for _, m := range viewChangeSeeds() {
		f.Add(Marshal(m))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode from a private copy that plays the role of the pooled
		// buffer: after Unmarshal it gets recycled for "another frame".
		pooled := make([]byte, len(data))
		copy(pooled, data)
		m, err := Unmarshal(pooled)
		if err != nil {
			return
		}
		before := Marshal(m)
		for i := range pooled {
			pooled[i] ^= 0xa5 // recycle: overwrite with unrelated bytes
		}
		after := Marshal(m)
		if !bytes.Equal(before, after) {
			t.Fatalf("decoded %T aliases its input buffer: wire form changed after the buffer was recycled", m)
		}
	})
}

// TestDecodeDoesNotAliasInput is the deterministic slice of the
// aliasing fuzzer above: every known message type, decoded, must
// survive its source buffer being zeroed.
func TestDecodeDoesNotAliasInput(t *testing.T) {
	for _, m := range allMessages() {
		buf := Marshal(m)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		before := Marshal(got)
		for i := range buf {
			buf[i] = 0
		}
		if !bytes.Equal(before, Marshal(got)) {
			t.Fatalf("%T retains references into its input buffer", m)
		}
	}
}

// FuzzDecoderPrimitives stresses the length-prefixed primitives
// directly.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.VarBytes()
		_ = d.U64()
		_ = d.Len(8)
		_ = d.Bytes32()
		_ = d.Finish() // must not panic regardless of input
	})
}
