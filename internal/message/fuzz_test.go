package message

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes into the wire decoder. The
// decoder must never panic, and any message it does accept must
// re-encode and re-decode stably (round-trip closure).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted messages must round-trip deterministically.
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(re, Marshal(m2)) {
			t.Fatalf("marshal not stable after round trip")
		}
	})
}

// FuzzDecoderPrimitives stresses the length-prefixed primitives
// directly.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.VarBytes()
		_ = d.U64()
		_ = d.Len(8)
		_ = d.Bytes32()
		_ = d.Finish() // must not panic regardless of input
	})
}
