package message

import (
	"fmt"

	"hybster/internal/crypto"
)

// Exact wire-size precomputation, mirroring the put* encoders byte for
// byte. Marshal uses it to allocate the output buffer exactly once at
// its final size; TestWireSizeMatchesMarshal pins every sizer against
// its encoder over the full message corpus, so the two cannot drift
// silently.

const (
	certWireSize = 1 + 8 + 4 + 8 + 8 + 32 // kind, issuer, counter, value, prev, MAC
	uiWireSize   = 4 + 8 + 32             // issuer, counter, MAC
)

func authSize(a crypto.Authenticator) int { return 4 + 4 + 32*len(a.MACs) }

func proofSize(p *Proof) int {
	if p.HasTCert() {
		return 1 + certWireSize
	}
	return 1 + authSize(p.Auth)
}

func requestSize(r *Request) int {
	return 4 + 8 + 1 + 4 + len(r.Payload) + authSize(r.Auth)
}

func requestListSize(reqs []*Request) int {
	s := 4
	for _, r := range reqs {
		s += requestSize(r)
	}
	return s
}

func prepareSize(p *Prepare) int {
	return 8 + 8 + requestListSize(p.Requests) + certWireSize
}

func prepareListSize(ps []*Prepare) int {
	s := 4
	for _, p := range ps {
		s += prepareSize(p)
	}
	return s
}

func checkpointListSize(cs []*Checkpoint) int {
	return 4 + len(cs)*(8+4+32+certWireSize)
}

func viewChangeSize(v *ViewChange) int {
	return 4 + 4 + 8 + 8 + 8 + 32 +
		checkpointListSize(v.CkptProof) + prepareListSize(v.Prepares) + certWireSize
}

func newViewAckSize(a *NewViewAck) int {
	return 4 + 4 + 8 + prepareListSize(a.Prepares) + certWireSize
}

func prePrepareSize(p *PrePrepare) int {
	return 8 + 8 + requestListSize(p.Requests) + proofSize(&p.Proof)
}

func pbftViewChangeSize(v *PBFTViewChange) int {
	s := 4 + 8 + 8 + 4 + len(v.CkptProof)*0 + 4 + proofSize(&v.Proof)
	for _, c := range v.CkptProof {
		s += 8 + 4 + 32 + proofSize(&c.Proof)
	}
	for _, pp := range v.Prepared {
		s += prePrepareSize(pp.PrePrepare) + 4
		for _, p := range pp.Prepares {
			s += 8 + 8 + 4 + 32 + proofSize(&p.Proof)
		}
	}
	return s
}

func minPrepareSize(p *MinPrepare) int {
	return 8 + requestListSize(p.Requests) + uiWireSize
}

func minViewChangeSize(v *MinViewChange) int {
	s := 4 + 8 + 8 + checkpointListSize(v.CkptProof) + 8 + 4
	for _, h := range v.History {
		s += 4 + len(h)
	}
	return s + 8 + 8 + 8 + uiWireSize
}

// wireSize returns the exact encoded size of m, excluding the one-byte
// type tag Marshal prefixes.
func wireSize(m Message) int {
	switch v := m.(type) {
	case *Request:
		return requestSize(v)
	case *Reply:
		return 4 + 4 + 8 + 4 + len(v.Result) + 32
	case *Prepare:
		return prepareSize(v)
	case *Commit:
		return 8 + 8 + 4 + 32 + certWireSize
	case *Checkpoint:
		return 8 + 4 + 32 + certWireSize
	case *ViewChange:
		return viewChangeSize(v)
	case *NewView:
		s := 8 + 4 + 4 + 4 + certWireSize + prepareListSize(v.Prepares)
		for _, vc := range v.VCs {
			s += viewChangeSize(vc)
		}
		for _, a := range v.Acks {
			s += newViewAckSize(a)
		}
		return s
	case *NewViewAck:
		return newViewAckSize(v)
	case *PrePrepare:
		return prePrepareSize(v)
	case *PBFTPrepare:
		return 8 + 8 + 4 + 32 + proofSize(&v.Proof)
	case *PBFTCommit:
		return 8 + 8 + 4 + 32 + proofSize(&v.Proof)
	case *PBFTCheckpoint:
		return 8 + 4 + 32 + proofSize(&v.Proof)
	case *PBFTViewChange:
		return pbftViewChangeSize(v)
	case *PBFTNewView:
		s := 8 + 4 + 4 + proofSize(&v.Proof)
		for _, vc := range v.VCs {
			s += pbftViewChangeSize(vc)
		}
		for _, p := range v.PrePrepares {
			s += prePrepareSize(p)
		}
		return s
	case *MinPrepare:
		return minPrepareSize(v)
	case *MinCommit:
		s := 8 + 4 + 32 + 1 + 2*uiWireSize
		if v.Prepare != nil {
			s += minPrepareSize(v.Prepare)
		}
		return s
	case *MinReqViewChange:
		return 4 + 8 + authSize(v.Auth)
	case *MinViewChange:
		return minViewChangeSize(v)
	case *MinNewView:
		s := 8 + 4 + uiWireSize
		for _, vc := range v.VCs {
			s += minViewChangeSize(vc)
		}
		return s
	case *StateRequest:
		return 4 + 8
	case *StateReply:
		return 4 + 8 + 4 + len(v.Snapshot) + 4 + len(v.ReplyVector) + checkpointListSize(v.Proof)
	default:
		panic(fmt.Sprintf("message: cannot size %T", m))
	}
}
