package message

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hybster/internal/timeline"
)

// encoderPool recycles Encoder shells between Marshal calls. Only the
// struct is pooled — the output buffer is freshly allocated at its
// exact final size (computed by wireSize) and handed to the caller, so
// a marshalled frame never aliases pooled storage. With a warm pool a
// Marshal therefore costs exactly one allocation: the returned buffer.
var encoderPool sync.Pool

var (
	marshalTotal    atomic.Uint64
	marshalPoolHits atomic.Uint64
)

// MarshalStats reports how many Marshal calls have run process-wide and
// how many of them were served a recycled encoder from the pool. The
// counters feed the telemetry gauges registered by the engine.
func MarshalStats() (total, poolHits uint64) {
	return marshalTotal.Load(), marshalPoolHits.Load()
}

// Marshal serializes any protocol message, prefixed with its type tag.
// The returned buffer is sized exactly and owned by the caller.
func Marshal(m Message) []byte {
	marshalTotal.Add(1)
	e, _ := encoderPool.Get().(*Encoder)
	if e == nil {
		e = &Encoder{}
	} else {
		marshalPoolHits.Add(1)
	}
	e.buf = make([]byte, 0, 1+wireSize(m))
	e.U8(uint8(m.MsgType()))
	switch v := m.(type) {
	case *Request:
		putRequest(e, v)
	case *Reply:
		putReply(e, v)
	case *Prepare:
		putPrepare(e, v)
	case *Commit:
		putCommit(e, v)
	case *Checkpoint:
		putCheckpoint(e, v)
	case *ViewChange:
		putViewChange(e, v)
	case *NewView:
		putNewView(e, v)
	case *NewViewAck:
		putNewViewAck(e, v)
	case *PrePrepare:
		putPrePrepare(e, v)
	case *PBFTPrepare:
		putPBFTPrepare(e, v)
	case *PBFTCommit:
		putPBFTCommit(e, v)
	case *PBFTCheckpoint:
		putPBFTCheckpoint(e, v)
	case *PBFTViewChange:
		putPBFTViewChange(e, v)
	case *PBFTNewView:
		putPBFTNewView(e, v)
	case *MinPrepare:
		putMinPrepare(e, v)
	case *MinCommit:
		putMinCommit(e, v)
	case *MinReqViewChange:
		putMinReqViewChange(e, v)
	case *MinViewChange:
		putMinViewChange(e, v)
	case *MinNewView:
		putMinNewView(e, v)
	case *StateRequest:
		putStateRequest(e, v)
	case *StateReply:
		putStateReply(e, v)
	default:
		panic(fmt.Sprintf("message: cannot marshal %T", m))
	}
	out := e.Bytes()
	e.buf = nil
	encoderPool.Put(e)
	return out
}

// Unmarshal parses a message serialized by Marshal.
func Unmarshal(buf []byte) (Message, error) {
	d := NewDecoder(buf)
	t := Type(d.U8())
	var m Message
	switch t {
	case TypeRequest:
		m = getRequest(d)
	case TypeReply:
		m = getReply(d)
	case TypePrepare:
		m = getPrepare(d)
	case TypeCommit:
		m = getCommit(d)
	case TypeCheckpoint:
		m = getCheckpoint(d)
	case TypeViewChange:
		m = getViewChange(d)
	case TypeNewView:
		m = getNewView(d)
	case TypeNewViewAck:
		m = getNewViewAck(d)
	case TypePrePrepare:
		m = getPrePrepare(d)
	case TypePBFTPrepare:
		m = getPBFTPrepare(d)
	case TypePBFTCommit:
		m = getPBFTCommit(d)
	case TypePBFTCheckpoint:
		m = getPBFTCheckpoint(d)
	case TypePBFTViewChange:
		m = getPBFTViewChange(d)
	case TypePBFTNewView:
		m = getPBFTNewView(d)
	case TypeMinPrepare:
		m = getMinPrepare(d)
	case TypeMinCommit:
		m = getMinCommit(d)
	case TypeMinReqViewChange:
		m = getMinReqViewChange(d)
	case TypeMinViewChange:
		m = getMinViewChange(d)
	case TypeMinNewView:
		m = getMinNewView(d)
	case TypeStateRequest:
		m = getStateRequest(d)
	case TypeStateReply:
		m = getStateReply(d)
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrMalformed, t)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// --- client messages -------------------------------------------------------

func putRequest(e *Encoder, r *Request) {
	e.U32(r.Client)
	e.U64(r.Seq)
	e.Bool(r.ReadOnly)
	e.VarBytes(r.Payload)
	putAuth(e, r.Auth)
}

func getRequest(d *Decoder) *Request {
	return &Request{
		Client: d.U32(), Seq: d.U64(), ReadOnly: d.Bool(),
		Payload: cloneBytes(d.VarBytes()), Auth: getAuth(d),
	}
}

func putReply(e *Encoder, r *Reply) {
	e.U32(r.Replica)
	e.U32(r.Client)
	e.U64(r.Seq)
	e.VarBytes(r.Result)
	e.Bytes32(r.MAC)
}

func getReply(d *Decoder) *Reply {
	return &Reply{
		Replica: d.U32(), Client: d.U32(), Seq: d.U64(),
		Result: cloneBytes(d.VarBytes()), MAC: d.Bytes32(),
	}
}

func putRequestList(e *Encoder, reqs []*Request) {
	e.Len(len(reqs))
	for _, r := range reqs {
		putRequest(e, r)
	}
}

func getRequestList(d *Decoder) []*Request {
	n := d.Len(17)
	if d.Err() != nil || n == 0 {
		return nil
	}
	reqs := make([]*Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, getRequest(d))
		if d.Err() != nil {
			return nil
		}
	}
	return reqs
}

// --- Hybster messages --------------------------------------------------------

func putPrepare(e *Encoder, p *Prepare) {
	e.U64(uint64(p.View))
	e.U64(uint64(p.Order))
	putRequestList(e, p.Requests)
	putCert(e, p.Cert)
}

func getPrepare(d *Decoder) *Prepare {
	return &Prepare{
		View: getView(d), Order: getOrder(d),
		Requests: getRequestList(d), Cert: getCert(d),
	}
}

func putPrepareList(e *Encoder, ps []*Prepare) {
	e.Len(len(ps))
	for _, p := range ps {
		putPrepare(e, p)
	}
}

func getPrepareList(d *Decoder) []*Prepare {
	n := d.Len(16)
	if d.Err() != nil || n == 0 {
		return nil
	}
	ps := make([]*Prepare, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, getPrepare(d))
		if d.Err() != nil {
			return nil
		}
	}
	return ps
}

func putCommit(e *Encoder, c *Commit) {
	e.U64(uint64(c.View))
	e.U64(uint64(c.Order))
	e.U32(c.Replica)
	e.Bytes32(c.BatchDigest)
	putCert(e, c.Cert)
}

func getCommit(d *Decoder) *Commit {
	return &Commit{
		View: getView(d), Order: getOrder(d),
		Replica: d.U32(), BatchDigest: d.Bytes32(), Cert: getCert(d),
	}
}

func putCheckpoint(e *Encoder, c *Checkpoint) {
	e.U64(uint64(c.Order))
	e.U32(c.Replica)
	e.Bytes32(c.StateDigest)
	putCert(e, c.Cert)
}

func getCheckpoint(d *Decoder) *Checkpoint {
	return &Checkpoint{
		Order: getOrder(d), Replica: d.U32(),
		StateDigest: d.Bytes32(), Cert: getCert(d),
	}
}

func putCheckpointList(e *Encoder, cs []*Checkpoint) {
	e.Len(len(cs))
	for _, c := range cs {
		putCheckpoint(e, c)
	}
}

func getCheckpointList(d *Decoder) []*Checkpoint {
	n := d.Len(44)
	if d.Err() != nil || n == 0 {
		return nil
	}
	cs := make([]*Checkpoint, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, getCheckpoint(d))
		if d.Err() != nil {
			return nil
		}
	}
	return cs
}

func putViewChange(e *Encoder, v *ViewChange) {
	e.U32(v.Replica)
	e.U32(v.Pillar)
	e.U64(uint64(v.From))
	e.U64(uint64(v.To))
	e.U64(uint64(v.CkptOrder))
	e.Bytes32(v.CkptDigest)
	putCheckpointList(e, v.CkptProof)
	putPrepareList(e, v.Prepares)
	putCert(e, v.Cert)
}

func getViewChange(d *Decoder) *ViewChange {
	return &ViewChange{
		Replica: d.U32(), Pillar: d.U32(),
		From: getView(d), To: getView(d),
		CkptOrder: getOrder(d), CkptDigest: d.Bytes32(),
		CkptProof: getCheckpointList(d), Prepares: getPrepareList(d),
		Cert: getCert(d),
	}
}

func putViewChangeList(e *Encoder, vcs []*ViewChange) {
	e.Len(len(vcs))
	for _, vc := range vcs {
		putViewChange(e, vc)
	}
}

func getViewChangeList(d *Decoder) []*ViewChange {
	n := d.Len(64)
	if d.Err() != nil || n == 0 {
		return nil
	}
	vcs := make([]*ViewChange, 0, n)
	for i := 0; i < n; i++ {
		vcs = append(vcs, getViewChange(d))
		if d.Err() != nil {
			return nil
		}
	}
	return vcs
}

func putNewViewAck(e *Encoder, a *NewViewAck) {
	e.U32(a.Replica)
	e.U32(a.Pillar)
	e.U64(uint64(a.View))
	putPrepareList(e, a.Prepares)
	putCert(e, a.Cert)
}

func getNewViewAck(d *Decoder) *NewViewAck {
	return &NewViewAck{
		Replica: d.U32(), Pillar: d.U32(), View: getView(d),
		Prepares: getPrepareList(d), Cert: getCert(d),
	}
}

func putNewView(e *Encoder, n *NewView) {
	e.U64(uint64(n.View))
	e.U32(n.Pillar)
	putViewChangeList(e, n.VCs)
	e.Len(len(n.Acks))
	for _, a := range n.Acks {
		putNewViewAck(e, a)
	}
	putPrepareList(e, n.Prepares)
	putCert(e, n.Cert)
}

func getNewView(d *Decoder) *NewView {
	nv := &NewView{View: getView(d), Pillar: d.U32(), VCs: getViewChangeList(d)}
	nAcks := d.Len(48)
	if d.Err() != nil {
		return nv
	}
	for i := 0; i < nAcks; i++ {
		nv.Acks = append(nv.Acks, getNewViewAck(d))
		if d.Err() != nil {
			return nv
		}
	}
	nv.Prepares = getPrepareList(d)
	nv.Cert = getCert(d)
	return nv
}

// --- state transfer ----------------------------------------------------------

func putStateRequest(e *Encoder, s *StateRequest) {
	e.U32(s.Replica)
	e.U64(uint64(s.From))
}

func getStateRequest(d *Decoder) *StateRequest {
	return &StateRequest{Replica: d.U32(), From: getOrder(d)}
}

func putStateReply(e *Encoder, s *StateReply) {
	e.U32(s.Replica)
	e.U64(uint64(s.CkptOrder))
	e.VarBytes(s.Snapshot)
	e.VarBytes(s.ReplyVector)
	putCheckpointList(e, s.Proof)
}

func getStateReply(d *Decoder) *StateReply {
	return &StateReply{
		Replica: d.U32(), CkptOrder: getOrder(d),
		Snapshot:    cloneBytes(d.VarBytes()),
		ReplyVector: cloneBytes(d.VarBytes()),
		Proof:       getCheckpointList(d),
	}
}

// getView decodes a view number, rejecting values outside the packed
// field width: wire input must never be able to make timeline.Pack
// panic later.
func getView(d *Decoder) timeline.View {
	v := timeline.View(d.U64())
	if v > timeline.MaxView && d.err == nil {
		d.err = fmt.Errorf("%w: view %d exceeds field width", ErrMalformed, v)
	}
	return v
}

// getOrder decodes an order number, with the same bound check as
// getView.
func getOrder(d *Decoder) timeline.Order {
	o := timeline.Order(d.U64())
	if o > timeline.MaxOrder && d.err == nil {
		d.err = fmt.Errorf("%w: order %d exceeds field width", ErrMalformed, o)
	}
	return o
}

// cloneBytes copies a decoded slice out of the shared input buffer; nil
// stays nil.
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func putProof(e *Encoder, p *Proof) {
	if p.HasTCert() {
		e.U8(2)
		putCert(e, p.TCert)
	} else {
		e.U8(1)
		putAuth(e, p.Auth)
	}
}

func getProof(d *Decoder) Proof {
	switch d.U8() {
	case 2:
		return Proof{TCert: getCert(d)}
	case 1:
		return Proof{Auth: getAuth(d)}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: unknown proof variant", ErrMalformed)
		}
		return Proof{}
	}
}

// --- PBFT messages ------------------------------------------------------------

func putPrePrepare(e *Encoder, p *PrePrepare) {
	e.U64(uint64(p.View))
	e.U64(uint64(p.Order))
	putRequestList(e, p.Requests)
	putProof(e, &p.Proof)
}

func getPrePrepare(d *Decoder) *PrePrepare {
	return &PrePrepare{
		View: getView(d), Order: getOrder(d),
		Requests: getRequestList(d), Proof: getProof(d),
	}
}

func putPBFTPrepare(e *Encoder, p *PBFTPrepare) {
	e.U64(uint64(p.View))
	e.U64(uint64(p.Order))
	e.U32(p.Replica)
	e.Bytes32(p.BatchDigest)
	putProof(e, &p.Proof)
}

func getPBFTPrepare(d *Decoder) *PBFTPrepare {
	return &PBFTPrepare{
		View: getView(d), Order: getOrder(d),
		Replica: d.U32(), BatchDigest: d.Bytes32(), Proof: getProof(d),
	}
}

func putPBFTCommit(e *Encoder, c *PBFTCommit) {
	e.U64(uint64(c.View))
	e.U64(uint64(c.Order))
	e.U32(c.Replica)
	e.Bytes32(c.BatchDigest)
	putProof(e, &c.Proof)
}

func getPBFTCommit(d *Decoder) *PBFTCommit {
	return &PBFTCommit{
		View: getView(d), Order: getOrder(d),
		Replica: d.U32(), BatchDigest: d.Bytes32(), Proof: getProof(d),
	}
}

func putPBFTCheckpoint(e *Encoder, c *PBFTCheckpoint) {
	e.U64(uint64(c.Order))
	e.U32(c.Replica)
	e.Bytes32(c.StateDigest)
	putProof(e, &c.Proof)
}

func getPBFTCheckpoint(d *Decoder) *PBFTCheckpoint {
	return &PBFTCheckpoint{
		Order: getOrder(d), Replica: d.U32(),
		StateDigest: d.Bytes32(), Proof: getProof(d),
	}
}

func putPBFTViewChange(e *Encoder, v *PBFTViewChange) {
	e.U32(v.Replica)
	e.U64(uint64(v.View))
	e.U64(uint64(v.CkptOrder))
	e.Len(len(v.CkptProof))
	for _, c := range v.CkptProof {
		putPBFTCheckpoint(e, c)
	}
	e.Len(len(v.Prepared))
	for _, pp := range v.Prepared {
		putPrePrepare(e, pp.PrePrepare)
		e.Len(len(pp.Prepares))
		for _, p := range pp.Prepares {
			putPBFTPrepare(e, p)
		}
	}
	putProof(e, &v.Proof)
}

func getPBFTViewChange(d *Decoder) *PBFTViewChange {
	v := &PBFTViewChange{
		Replica: d.U32(), View: getView(d),
		CkptOrder: getOrder(d),
	}
	nCk := d.Len(45)
	for i := 0; i < nCk && d.Err() == nil; i++ {
		v.CkptProof = append(v.CkptProof, getPBFTCheckpoint(d))
	}
	nPrep := d.Len(16)
	for i := 0; i < nPrep && d.Err() == nil; i++ {
		pp := PreparedProof{PrePrepare: getPrePrepare(d)}
		nP := d.Len(53)
		for j := 0; j < nP && d.Err() == nil; j++ {
			pp.Prepares = append(pp.Prepares, getPBFTPrepare(d))
		}
		v.Prepared = append(v.Prepared, pp)
	}
	v.Proof = getProof(d)
	return v
}

func putPBFTNewView(e *Encoder, n *PBFTNewView) {
	e.U64(uint64(n.View))
	e.Len(len(n.VCs))
	for _, vc := range n.VCs {
		putPBFTViewChange(e, vc)
	}
	e.Len(len(n.PrePrepares))
	for _, p := range n.PrePrepares {
		putPrePrepare(e, p)
	}
	putProof(e, &n.Proof)
}

func getPBFTNewView(d *Decoder) *PBFTNewView {
	n := &PBFTNewView{View: getView(d)}
	nVC := d.Len(64)
	for i := 0; i < nVC && d.Err() == nil; i++ {
		n.VCs = append(n.VCs, getPBFTViewChange(d))
	}
	nPP := d.Len(16)
	for i := 0; i < nPP && d.Err() == nil; i++ {
		n.PrePrepares = append(n.PrePrepares, getPrePrepare(d))
	}
	n.Proof = getProof(d)
	return n
}

// --- MinBFT messages ------------------------------------------------------------

func putMinPrepare(e *Encoder, p *MinPrepare) {
	e.U64(uint64(p.View))
	putRequestList(e, p.Requests)
	putUI(e, p.UI)
}

func getMinPrepare(d *Decoder) *MinPrepare {
	return &MinPrepare{
		View: getView(d), Requests: getRequestList(d), UI: getUI(d),
	}
}

func putMinCommit(e *Encoder, c *MinCommit) {
	e.U64(uint64(c.View))
	e.U32(c.Replica)
	e.Bytes32(c.BatchDigest)
	if c.Prepare != nil {
		e.Bool(true)
		putMinPrepare(e, c.Prepare)
	} else {
		e.Bool(false)
	}
	putUI(e, c.PrepareUI)
	putUI(e, c.UI)
}

func getMinCommit(d *Decoder) *MinCommit {
	c := &MinCommit{View: getView(d), Replica: d.U32(), BatchDigest: d.Bytes32()}
	if d.Bool() {
		c.Prepare = getMinPrepare(d)
	}
	c.PrepareUI = getUI(d)
	c.UI = getUI(d)
	return c
}

func putMinReqViewChange(e *Encoder, r *MinReqViewChange) {
	e.U32(r.Replica)
	e.U64(uint64(r.View))
	putAuth(e, r.Auth)
}

func getMinReqViewChange(d *Decoder) *MinReqViewChange {
	return &MinReqViewChange{Replica: d.U32(), View: getView(d), Auth: getAuth(d)}
}

func putMinViewChange(e *Encoder, v *MinViewChange) {
	e.U32(v.Replica)
	e.U64(uint64(v.View))
	e.U64(uint64(v.CkptOrder))
	putCheckpointList(e, v.CkptProof)
	e.U64(v.HistBase)
	e.Len(len(v.History))
	for _, h := range v.History {
		e.VarBytes(h)
	}
	e.U64(uint64(v.AnchorView))
	e.U64(v.AnchorOrder)
	e.U64(v.AnchorCounter)
	putUI(e, v.UI)
}

func getMinViewChange(d *Decoder) *MinViewChange {
	v := &MinViewChange{
		Replica: d.U32(), View: getView(d),
		CkptOrder: getOrder(d), CkptProof: getCheckpointList(d),
		HistBase: d.U64(),
	}
	n := d.Len(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		v.History = append(v.History, cloneBytes(d.VarBytes()))
	}
	v.AnchorView = getView(d)
	v.AnchorOrder = d.U64()
	v.AnchorCounter = d.U64()
	v.UI = getUI(d)
	return v
}

func putMinNewView(e *Encoder, n *MinNewView) {
	e.U64(uint64(n.View))
	e.Len(len(n.VCs))
	for _, vc := range n.VCs {
		putMinViewChange(e, vc)
	}
	putUI(e, n.UI)
}

func getMinNewView(d *Decoder) *MinNewView {
	n := &MinNewView{View: getView(d)}
	c := d.Len(64)
	for i := 0; i < c && d.Err() == nil; i++ {
		n.VCs = append(n.VCs, getMinViewChange(d))
	}
	n.UI = getUI(d)
	return n
}
