// Package message defines every protocol message exchanged by the
// replication protocols in this repository (Hybster, HybsterX, PBFTcop,
// HybridPBFT, MinBFT) together with a deterministic binary wire codec
// and the canonical digests that trusted-counter certificates and MAC
// authenticators are computed over.
//
// The in-process transport passes message values directly; the TCP
// transport and the state-transfer protocol use Marshal/Unmarshal.
// Messages are treated as immutable once sent.
package message

import (
	"errors"
	"fmt"

	"hybster/internal/crypto"
	"hybster/internal/trinx"
	"hybster/internal/usig"
)

// ErrTruncated is returned when a buffer ends before the message does.
var ErrTruncated = errors.New("message: truncated buffer")

// ErrMalformed is returned for structurally invalid encodings.
var ErrMalformed = errors.New("message: malformed encoding")

// maxSliceLen bounds decoded slice lengths to guard against corrupt or
// hostile length prefixes allocating unbounded memory.
const maxSliceLen = 1 << 26 // 64 Mi elements / bytes

// Encoder appends big-endian primitives to a growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder creates an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a fixed 32-byte value (digest or MAC).
func (e *Encoder) Bytes32(v [32]byte) { e.buf = append(e.buf, v[:]...) }

// VarBytes appends a length-prefixed byte slice.
func (e *Encoder) VarBytes(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Len appends a slice length prefix.
func (e *Encoder) Len(n int) { e.U32(uint32(n)) }

// Decoder consumes big-endian primitives from a buffer. Errors are
// sticky: after the first failure all subsequent reads return zero
// values and Err reports the failure, so decode paths need a single
// error check at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a fixed 32-byte value.
func (d *Decoder) Bytes32() [32]byte {
	var v [32]byte
	b := d.take(32)
	if b != nil {
		copy(v[:], b)
	}
	return v
}

// VarBytes reads a length-prefixed byte slice. The result aliases the
// input buffer.
func (d *Decoder) VarBytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxSliceLen {
		d.err = fmt.Errorf("%w: byte slice length %d", ErrMalformed, n)
		return nil
	}
	return d.take(int(n))
}

// Len reads a slice length prefix and validates it against the
// remaining buffer assuming each element occupies at least minElem
// bytes.
func (d *Decoder) Len(minElem int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen || (minElem > 0 && int(n) > d.Remaining()/minElem+1) {
		d.err = fmt.Errorf("%w: slice length %d exceeds buffer", ErrMalformed, n)
		return 0
	}
	return int(n)
}

// certificate encoding: kind(1) issuer(8) counter(4) value(8) prev(8) mac(32)

func putCert(e *Encoder, c trinx.Certificate) {
	e.U8(uint8(c.Kind))
	e.U64(uint64(c.Issuer))
	e.U32(c.Counter)
	e.U64(c.Value)
	e.U64(c.Prev)
	e.Bytes32(c.MAC)
}

func getCert(d *Decoder) trinx.Certificate {
	return trinx.Certificate{
		Kind:    trinx.Kind(d.U8()),
		Issuer:  trinx.InstanceID(d.U64()),
		Counter: d.U32(),
		Value:   d.U64(),
		Prev:    d.U64(),
		MAC:     d.Bytes32(),
	}
}

func putUI(e *Encoder, u usig.UI) {
	e.U32(u.Issuer)
	e.U64(u.Counter)
	e.Bytes32(u.MAC)
}

func getUI(d *Decoder) usig.UI {
	return usig.UI{Issuer: d.U32(), Counter: d.U64(), MAC: d.Bytes32()}
}

func putAuth(e *Encoder, a crypto.Authenticator) {
	e.U32(a.Sender)
	e.Len(len(a.MACs))
	for _, m := range a.MACs {
		e.Bytes32(m)
	}
}

func getAuth(d *Decoder) crypto.Authenticator {
	a := crypto.Authenticator{Sender: d.U32()}
	n := d.Len(32)
	if d.err != nil {
		return a
	}
	a.MACs = make([]crypto.MAC, n)
	for i := range a.MACs {
		a.MACs[i] = d.Bytes32()
	}
	return a
}
