package message

import (
	"crypto/sha256"

	"hybster/internal/crypto"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// Type enumerates the wire message types of all protocols.
type Type uint8

// Message type identifiers. Hybster messages (§5.2) come first, then
// the PBFT baseline's, then MinBFT's, then state transfer.
const (
	TypeRequest Type = iota + 1
	TypeReply
	TypePrepare
	TypeCommit
	TypeCheckpoint
	TypeViewChange
	TypeNewView
	TypeNewViewAck
	TypePrePrepare
	TypePBFTPrepare
	TypePBFTCommit
	TypePBFTCheckpoint
	TypePBFTViewChange
	TypePBFTNewView
	TypeMinPrepare
	TypeMinCommit
	TypeMinReqViewChange
	TypeMinViewChange
	TypeMinNewView
	TypeStateRequest
	TypeStateReply
)

// String implements fmt.Stringer.
func (t Type) String() string {
	names := map[Type]string{
		TypeRequest: "REQUEST", TypeReply: "REPLY",
		TypePrepare: "PREPARE", TypeCommit: "COMMIT",
		TypeCheckpoint: "CHECKPOINT", TypeViewChange: "VIEW-CHANGE",
		TypeNewView: "NEW-VIEW", TypeNewViewAck: "NEW-VIEW-ACK",
		TypePrePrepare: "PRE-PREPARE", TypePBFTPrepare: "PBFT-PREPARE",
		TypePBFTCommit: "PBFT-COMMIT", TypePBFTCheckpoint: "PBFT-CHECKPOINT",
		TypePBFTViewChange: "PBFT-VIEW-CHANGE", TypePBFTNewView: "PBFT-NEW-VIEW",
		TypeMinPrepare: "MIN-PREPARE", TypeMinCommit: "MIN-COMMIT",
		TypeMinReqViewChange: "MIN-REQ-VIEW-CHANGE", TypeMinViewChange: "MIN-VIEW-CHANGE",
		TypeMinNewView:   "MIN-NEW-VIEW",
		TypeStateRequest: "STATE-REQUEST", TypeStateReply: "STATE-REPLY",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// Message is implemented by every protocol message.
type Message interface {
	// MsgType returns the wire type tag.
	MsgType() Type
}

// --- Client interaction -------------------------------------------------

// Request is a client command submitted to the replica group. Clients
// authenticate requests with a MAC authenticator covering the whole
// group (clients own no trusted subsystem).
type Request struct {
	Client   uint32
	Seq      uint64
	ReadOnly bool
	Payload  []byte
	Auth     crypto.Authenticator

	dc digestCache
}

// MsgType implements Message.
func (*Request) MsgType() Type { return TypeRequest }

// Digest returns the canonical digest of the request, the value covered
// by its authenticator and by batch digests. The result is memoized on
// first use; the fields it covers must not change afterwards.
func (r *Request) Digest() crypto.Digest {
	if d, ok := r.dc.cached(); ok {
		return d
	}
	e := NewEncoder(17 + len(r.Payload))
	e.U32(r.Client)
	e.U64(r.Seq)
	e.Bool(r.ReadOnly)
	e.VarBytes(r.Payload)
	return r.dc.fill(crypto.HashParts([]byte("req"), e.Bytes()))
}

// Reply carries the execution result of one request back to its client,
// authenticated under the replica-client pair key.
type Reply struct {
	Replica uint32
	Client  uint32
	Seq     uint64
	Result  []byte
	MAC     crypto.MAC

	dc digestCache
}

// MsgType implements Message.
func (*Reply) MsgType() Type { return TypeReply }

// Digest returns the value the reply MAC covers.
func (r *Reply) Digest() crypto.Digest {
	if d, ok := r.dc.cached(); ok {
		return d
	}
	e := NewEncoder(16 + len(r.Result))
	e.U32(r.Replica)
	e.U32(r.Client)
	e.U64(r.Seq)
	e.VarBytes(r.Result)
	return r.dc.fill(crypto.HashParts([]byte("reply"), e.Bytes()))
}

// BatchDigest folds the digests of a request batch into one digest.
// An empty batch (a no-op instance closing a gap) yields a distinct,
// stable digest. The preimage is the plain concatenation of the
// request digests, streamed into the hash without per-request copies.
func BatchDigest(reqs []*Request) crypto.Digest {
	h := sha256.New()
	h.Write([]byte("batch"))
	for _, r := range reqs {
		d := r.Digest()
		h.Write(d[:])
	}
	var d crypto.Digest
	h.Sum(d[:0])
	return d
}

// --- Hybster ordering (§5.2.1) ------------------------------------------

// Prepare is the leader's proposal assigning a request batch to order
// number Order in view View. Its certificate must be an independent
// counter certificate over counter O with value [View|Order], issued by
// the TrInX instance of the pillar responsible for Order.
type Prepare struct {
	View     timeline.View
	Order    timeline.Order
	Requests []*Request
	Cert     trinx.Certificate

	dc  digestCache
	bdc digestCache
}

// MsgType implements Message.
func (*Prepare) MsgType() Type { return TypePrepare }

// BatchDigest returns the digest of the proposed batch, memoized on
// first use.
func (p *Prepare) BatchDigest() crypto.Digest {
	if d, ok := p.bdc.cached(); ok {
		return d
	}
	return p.bdc.fill(BatchDigest(p.Requests))
}

// Digest returns the value the prepare certificate covers.
func (p *Prepare) Digest() crypto.Digest {
	if d, ok := p.dc.cached(); ok {
		return d
	}
	bd := p.BatchDigest()
	return p.dc.fill(crypto.HashParts([]byte("prep"),
		crypto.U64(uint64(timeline.Pack(p.View, p.Order))), bd[:]))
}

// Point returns the flattened [view|order] instance identifier.
func (p *Prepare) Point() timeline.Point { return timeline.Pack(p.View, p.Order) }

// Commit is a follower's acknowledgment of a Prepare, certified with an
// independent counter certificate over the same [View|Order] value.
type Commit struct {
	View        timeline.View
	Order       timeline.Order
	Replica     uint32
	BatchDigest crypto.Digest
	Cert        trinx.Certificate

	dc digestCache
}

// MsgType implements Message.
func (*Commit) MsgType() Type { return TypeCommit }

// Digest returns the value the commit certificate covers.
func (c *Commit) Digest() crypto.Digest {
	if d, ok := c.dc.cached(); ok {
		return d
	}
	return c.dc.fill(crypto.HashParts([]byte("com"),
		crypto.U64(uint64(timeline.Pack(c.View, c.Order))),
		crypto.U32(c.Replica), c.BatchDigest[:]))
}

// Point returns the flattened [view|order] instance identifier.
func (c *Commit) Point() timeline.Point { return timeline.Pack(c.View, c.Order) }

// --- Hybster checkpointing (§5.2.2) ---------------------------------------

// Checkpoint announces that a replica saved its service state after
// executing all instances up to and including Order. StateDigest covers
// the service state combined with the client reply vector. Checkpoints
// are not subject to equivocation, so a trusted MAC certificate
// (counter M) suffices.
type Checkpoint struct {
	Order       timeline.Order
	Replica     uint32
	StateDigest crypto.Digest
	Cert        trinx.Certificate

	dc digestCache
}

// MsgType implements Message.
func (*Checkpoint) MsgType() Type { return TypeCheckpoint }

// Digest returns the value the checkpoint certificate covers.
func (c *Checkpoint) Digest() crypto.Digest {
	if d, ok := c.dc.cached(); ok {
		return d
	}
	return c.dc.fill(crypto.HashParts([]byte("ckpt"),
		crypto.U64(uint64(c.Order)), crypto.U32(c.Replica), c.StateDigest[:]))
}

// --- Hybster view change (§5.2.3, §5.3.3) ---------------------------------

// ViewChange announces that the sending pillar of a replica aborted view
// From and supports the leader of view To. It carries the pillar's last
// stable checkpoint (order and quorum proof) and the PREPAREs of all
// instances in the pillar's ordering window it participated in. Its
// continuing counter certificate τ(r(u), O, To|0, From|o_act) forces
// even a faulty replica to disclose every instance up to o_act.
//
// In the basic protocol a replica has a single pillar (Pillar 0) and a
// VIEW-CHANGE consists of exactly one part; in HybsterX receivers act on
// a view change only once parts from all pillars of the sender arrived
// (§5.3.3, "Split External Messages").
type ViewChange struct {
	Replica    uint32
	Pillar     uint32
	From       timeline.View // v_from: last view the replica accepted
	To         timeline.View // v_to: the view it wants to enter
	CkptOrder  timeline.Order
	CkptDigest crypto.Digest
	CkptProof  []*Checkpoint
	Prepares   []*Prepare
	Cert       trinx.Certificate

	dc digestCache
}

// MsgType implements Message.
func (*ViewChange) MsgType() Type { return TypeViewChange }

// Digest returns the value the view-change certificate covers.
func (v *ViewChange) Digest() crypto.Digest {
	if d, ok := v.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64 + 40*len(v.Prepares))
	e.U32(v.Replica)
	e.U32(v.Pillar)
	e.U64(uint64(v.From))
	e.U64(uint64(v.To))
	e.U64(uint64(v.CkptOrder))
	e.Bytes32(v.CkptDigest)
	e.Len(len(v.CkptProof))
	for _, c := range v.CkptProof {
		d := c.Digest()
		e.Bytes32(d)
	}
	e.Len(len(v.Prepares))
	for _, p := range v.Prepares {
		d := p.Digest()
		e.Bytes32(d)
	}
	return v.dc.fill(crypto.HashParts([]byte("vc"), e.Bytes()))
}

// NewView is the designated leader's proof that the transition into
// view View is correct: the new-view certificate (a quorum of
// VIEW-CHANGEs plus, when needed, NEW-VIEW-ACKs) and the re-proposed
// PREPAREs for the new view. Authenticity is provided by a trusted MAC;
// the re-proposed PREPAREs carry their own independent certificates.
type NewView struct {
	View     timeline.View
	Pillar   uint32
	VCs      []*ViewChange
	Acks     []*NewViewAck
	Prepares []*Prepare
	Cert     trinx.Certificate

	dc digestCache
}

// MsgType implements Message.
func (*NewView) MsgType() Type { return TypeNewView }

// Digest returns the value the new-view certificate covers.
func (n *NewView) Digest() crypto.Digest {
	if d, ok := n.dc.cached(); ok {
		return d
	}
	e := NewEncoder(64)
	e.U64(uint64(n.View))
	e.U32(n.Pillar)
	e.Len(len(n.VCs))
	for _, vc := range n.VCs {
		d := vc.Digest()
		e.Bytes32(d)
	}
	e.Len(len(n.Acks))
	for _, a := range n.Acks {
		d := a.Digest()
		e.Bytes32(d)
	}
	e.Len(len(n.Prepares))
	for _, p := range n.Prepares {
		d := p.Digest()
		e.Bytes32(d)
	}
	return n.dc.fill(crypto.HashParts([]byte("nv"), e.Bytes()))
}

// NewViewAck acknowledges that the sender accepted a correct NEW-VIEW
// for view View after having already aborted that view, and propagates
// the PREPAREs learned from it. The paper notes no counter certificate
// is required (§5.2.3); a trusted MAC provides authenticity.
type NewViewAck struct {
	Replica  uint32
	Pillar   uint32
	View     timeline.View
	Prepares []*Prepare
	Cert     trinx.Certificate

	dc digestCache
}

// MsgType implements Message.
func (*NewViewAck) MsgType() Type { return TypeNewViewAck }

// Digest returns the value the ack certificate covers.
func (a *NewViewAck) Digest() crypto.Digest {
	if d, ok := a.dc.cached(); ok {
		return d
	}
	e := NewEncoder(48)
	e.U32(a.Replica)
	e.U32(a.Pillar)
	e.U64(uint64(a.View))
	e.Len(len(a.Prepares))
	for _, p := range a.Prepares {
		d := p.Digest()
		e.Bytes32(d)
	}
	return a.dc.fill(crypto.HashParts([]byte("nva"), e.Bytes()))
}

// --- State transfer --------------------------------------------------------

// StateRequest asks a peer for the service state at its last stable
// checkpoint with order >= From.
type StateRequest struct {
	Replica uint32
	From    timeline.Order
}

// MsgType implements Message.
func (*StateRequest) MsgType() Type { return TypeStateRequest }

// StateReply transfers a state snapshot together with the checkpoint
// quorum proving its correctness and the serialized client reply
// vector, allowing the fallen-behind replica to answer skipped requests
// (§5.2.2, "State and Return Value Confirmation").
type StateReply struct {
	Replica     uint32
	CkptOrder   timeline.Order
	Snapshot    []byte
	ReplyVector []byte
	Proof       []*Checkpoint
}

// MsgType implements Message.
func (*StateReply) MsgType() Type { return TypeStateReply }
