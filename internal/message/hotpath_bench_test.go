package message

import (
	"fmt"
	"testing"

	"hybster/internal/crypto"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// Hot-path microbenchmarks for the message layer: digest computation
// and marshaling of the messages that dominate the ordering path.
// BenchmarkHotPath* results (allocs/op in particular) are the
// before/after evidence for hot-path optimization work.

func benchRequests(n int) []*Request {
	ks := crypto.NewKeyStore(crypto.ClientIDBase, crypto.NewKeyFromSeed("bench"))
	reqs := make([]*Request, n)
	for i := range reqs {
		r := &Request{
			Client:  crypto.ClientIDBase,
			Seq:     uint64(i + 1),
			Payload: []byte(fmt.Sprintf("payload-%04d", i)),
		}
		r.Auth = crypto.NewAuthenticator(ks, r.Digest(), 3)
		reqs[i] = r
	}
	return reqs
}

func benchPrepare(batch int) *Prepare {
	return &Prepare{
		View:     1,
		Order:    7,
		Requests: benchRequests(batch),
		Cert: trinx.Certificate{
			Kind: trinx.Independent, Issuer: 1, Counter: 2,
			Value: uint64(timeline.Pack(1, 7)),
		},
	}
}

func BenchmarkHotPathRequestDigest(b *testing.B) {
	r := benchRequests(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Digest()
	}
}

func BenchmarkHotPathPrepareDigest(b *testing.B) {
	p := benchPrepare(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Digest()
	}
}

func BenchmarkHotPathBatchDigest(b *testing.B) {
	reqs := benchRequests(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BatchDigest(reqs)
	}
}

func BenchmarkHotPathMarshalPrepare(b *testing.B) {
	p := benchPrepare(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Marshal(p)
	}
}

func BenchmarkHotPathMarshalCommit(b *testing.B) {
	c := &Commit{
		View: 1, Order: 7, Replica: 2,
		BatchDigest: crypto.Hash([]byte("batch")),
		Cert: trinx.Certificate{
			Kind: trinx.Independent, Issuer: 1, Counter: 3,
			Value: uint64(timeline.Pack(1, 7)),
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Marshal(c)
	}
}

func BenchmarkHotPathUnmarshalPrepare(b *testing.B) {
	raw := Marshal(benchPrepare(16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
