package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Avg != 50500*time.Microsecond {
		t.Fatalf("Avg = %v", s.Avg)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 51*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 98*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles out of order: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := NewRecorder().Summarize(); s.Count != 0 || s.Avg != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(500, 500*time.Millisecond); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput(_, 0) = %f", got)
	}
}

func TestFormatOps(t *testing.T) {
	cases := map[float64]string{
		500:       "500 ops/s",
		12_345:    "12.3k ops/s",
		1_040_000: "1.04M ops/s",
	}
	for in, want := range cases {
		if got := FormatOps(in); got != want {
			t.Errorf("FormatOps(%f) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(FormatOps(1e6), "M") {
		t.Error("1e6 not in millions")
	}
}
