package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Avg != 50500*time.Microsecond {
		t.Fatalf("Avg = %v", s.Avg)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 51*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 98*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles out of order: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := NewRecorder().Summarize(); s.Count != 0 || s.Avg != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("Count = %d", r.Count())
	}
}

// TestRecorderReservoirBounded pins the memory bound and the sampling
// accuracy: past the cap the recorder must hold exactly cap samples,
// keep count/avg/max exact, and still estimate percentiles of the full
// stream to within a few percent. Samples arrive in ascending order —
// the worst case for a biased reservoir, since a naive "keep the first
// cap" would report only the low tail.
func TestRecorderReservoirBounded(t *testing.T) {
	const cap, n = 2000, 200_000
	r := NewRecorderCap(cap)
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}

	r.mu.Lock()
	held := len(r.samples)
	r.mu.Unlock()
	if held != cap {
		t.Fatalf("reservoir holds %d samples, want exactly %d", held, cap)
	}

	s := r.Summarize()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d (exact despite sampling)", s.Count, n)
	}
	if s.Max != n*time.Microsecond {
		t.Fatalf("Max = %v, want %v (exact despite sampling)", s.Max, n*time.Microsecond)
	}
	wantAvg := time.Duration(n) * (time.Duration(n) + 1) / 2 * time.Microsecond / time.Duration(n)
	if s.Avg != wantAvg {
		t.Fatalf("Avg = %v, want %v (exact despite sampling)", s.Avg, wantAvg)
	}

	// The true stream is uniform over [1µs, 200ms], so percentile p sits
	// at p*n µs. With 2000 uniformly sampled points the order-statistic
	// error is well under 5%.
	within := func(name string, got time.Duration, p float64) {
		want := time.Duration(p*n) * time.Microsecond
		lo, hi := want*95/100, want*105/100
		if got < lo || got > hi {
			t.Errorf("%s = %v, want %v ±5%% (reservoir biased?)", name, got, want)
		}
	}
	within("P50", s.P50, 0.50)
	within("P90", s.P90, 0.90)
	within("P99", s.P99, 0.99)
}

// TestRecorderUnboundedCap pins that cap<=0 disables sampling.
func TestRecorderUnboundedCap(t *testing.T) {
	r := NewRecorderCap(0)
	for i := 0; i < 3*DefaultCap/2; i++ {
		r.Record(time.Microsecond)
	}
	r.mu.Lock()
	held := len(r.samples)
	r.mu.Unlock()
	if held != 3*DefaultCap/2 {
		t.Fatalf("unbounded recorder dropped samples: held %d of %d", held, 3*DefaultCap/2)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(500, 500*time.Millisecond); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput(_, 0) = %f", got)
	}
}

func TestFormatOps(t *testing.T) {
	cases := map[float64]string{
		500:       "500 ops/s",
		12_345:    "12.3k ops/s",
		1_040_000: "1.04M ops/s",
	}
	for in, want := range cases {
		if got := FormatOps(in); got != want {
			t.Errorf("FormatOps(%f) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(FormatOps(1e6), "M") {
		t.Error("1e6 not in millions")
	}
}
