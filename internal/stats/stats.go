// Package stats provides the measurement primitives of the benchmark
// harness: latency recording with percentile extraction and throughput
// accounting, mirroring what the paper's clients measure (§6, "Clients
// measure the time it takes to collect a sufficient number of
// replies ... to calculate the average latency and throughput").
package stats

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultCap bounds a recorder's sample memory (~2 MB of durations).
// Long benchmark windows at millions of ops/s previously grew the
// sample slice without limit; past the cap the recorder switches to
// reservoir sampling, keeping a uniform subset for percentiles while
// count, average, and max stay exact.
const DefaultCap = 1 << 18

// Recorder collects latency samples from concurrent workers. Memory is
// bounded: once cap samples are stored, each further sample replaces a
// random held one with probability cap/seen (Vitter's algorithm R), so
// the reservoir remains a uniform sample of everything recorded.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	seen    uint64        // total Record calls
	total   time.Duration // exact running sum
	max     time.Duration // exact running max
	rng     uint64
	samples []time.Duration
}

// NewRecorder creates an empty recorder with DefaultCap.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultCap) }

// NewRecorderCap creates a recorder holding at most capSamples
// latencies (<= 0 means unbounded).
func NewRecorderCap(capSamples int) *Recorder {
	return &Recorder{cap: capSamples, rng: 0x9e3779b97f4a7c15}
}

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.seen++
	r.total += d
	if d > r.max {
		r.max = d
	}
	if r.cap <= 0 || len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
	} else if j := r.randN(r.seen); j < uint64(r.cap) {
		r.samples[j] = d
	}
	r.mu.Unlock()
}

// randN returns a pseudo-random value in [0, n) from an xorshift64
// stream — deterministic, allocation-free, and plenty uniform for
// reservoir slot selection.
func (r *Recorder) randN(n uint64) uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng % n
}

// Count returns the number of recorded samples (including any the
// reservoir has since evicted).
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.seen)
}

// Summary condenses recorded samples.
type Summary struct {
	Count int
	Avg   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize computes the latency summary; zero-valued for an empty
// recorder. Count, Avg, and Max are exact over everything recorded;
// percentiles come from the (possibly sampled) reservoir.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	samples := make([]time.Duration, len(r.samples))
	copy(samples, r.samples)
	seen, total, max := r.seen, r.total, r.max
	r.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return Summary{
		Count: int(seen),
		Avg:   total / time.Duration(seen),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   max,
	}
}

// Throughput converts an operation count over a wall-clock window into
// operations per second.
func Throughput(ops uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// FormatOps renders ops/s in the paper's "1,000 ops/s" style.
func FormatOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1_000_000:
		return fmt.Sprintf("%.2fM ops/s", opsPerSec/1e6)
	case opsPerSec >= 1_000:
		return fmt.Sprintf("%.1fk ops/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", opsPerSec)
	}
}
