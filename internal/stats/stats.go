// Package stats provides the measurement primitives of the benchmark
// harness: latency recording with percentile extraction and throughput
// accounting, mirroring what the paper's clients measure (§6, "Clients
// measure the time it takes to collect a sufficient number of
// replies ... to calculate the average latency and throughput").
package stats

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Recorder collects latency samples from concurrent workers.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary condenses recorded samples.
type Summary struct {
	Count int
	Avg   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize computes the latency summary; zero-valued for an empty
// recorder.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	samples := make([]time.Duration, len(r.samples))
	copy(samples, r.samples)
	r.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return Summary{
		Count: len(samples),
		Avg:   total / time.Duration(len(samples)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   samples[len(samples)-1],
	}
}

// Throughput converts an operation count over a wall-clock window into
// operations per second.
func Throughput(ops uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// FormatOps renders ops/s in the paper's "1,000 ops/s" style.
func FormatOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1_000_000:
		return fmt.Sprintf("%.2fM ops/s", opsPerSec/1e6)
	case opsPerSec >= 1_000:
		return fmt.Sprintf("%.1fk ops/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", opsPerSec)
	}
}
