// Package crypto provides the cryptographic primitives shared by all
// protocol implementations in this repository: SHA-256 digests, HMAC-based
// message authentication, key management for a replica group, and
// PBFT-style MAC authenticators (a vector of per-receiver MACs).
//
// All operations are built on the Go standard library (crypto/sha256,
// crypto/hmac). The package deliberately exposes small value types so that
// protocol code can embed digests and MACs in messages without extra
// allocation.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// DigestSize is the size of a message digest in bytes (SHA-256).
const DigestSize = sha256.Size

// MACSize is the size of a message authentication code in bytes.
// MACs are HMAC-SHA256 outputs.
const MACSize = sha256.Size

// Digest is a SHA-256 hash of a message or state snapshot.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used for empty state and no-op
// consensus instances.
var ZeroDigest Digest

// Hash computes the SHA-256 digest of data.
func Hash(data []byte) Digest {
	return sha256.Sum256(data)
}

// HashParts computes the SHA-256 digest over the concatenation of parts
// without materializing the concatenation.
func HashParts(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Combine folds two digests into one. It is used to chain state digests
// with reply-vector digests for checkpoint proofs.
func Combine(a, b Digest) Digest {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// String returns a short hexadecimal prefix of the digest for logging.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// MAC is an HMAC-SHA256 authentication code.
type MAC [MACSize]byte

// IsZero reports whether m is the all-zero MAC.
func (m MAC) IsZero() bool { return m == MAC{} }

// String returns a short hexadecimal prefix of the MAC for logging.
func (m MAC) String() string { return hex.EncodeToString(m[:8]) }

// Key is a symmetric key used for HMAC computation.
type Key []byte

// NewKeyFromSeed derives a deterministic key from a textual seed. It is
// used by tests and the in-process cluster harness; deployments load keys
// from configuration.
func NewKeyFromSeed(seed string) Key {
	d := sha256.Sum256([]byte("hybster-key:" + seed))
	return Key(d[:])
}

// hmacPools caches reusable HMAC states per key: hmac.New allocates
// two SHA-256 states plus the HMAC shell on every call, which was the
// single largest allocator on the agreement hot path (every request
// authenticator, reply authenticator, and trusted-counter certificate
// pays one HMAC). Reset restores a pooled state to its keyed initial
// state, so reuse is exact. The key count is capped — a process talks
// to a bounded replica group but an unbounded client population, and
// past the cap Sum falls back to the allocating path rather than
// letting the pool map grow without bound.
var (
	hmacPools    sync.Map // string(key) → *sync.Pool of hash.Hash
	hmacPoolKeys atomic.Int64
)

const maxHMACPoolKeys = 4096

// hmacPool returns the state pool for key k, or nil when the cache is
// full and k is not already cached.
func hmacPool(k Key) *sync.Pool {
	if p, ok := hmacPools.Load(string(k)); ok {
		return p.(*sync.Pool)
	}
	if hmacPoolKeys.Load() >= maxHMACPoolKeys {
		return nil
	}
	kc := append(Key(nil), k...) // private copy: the pool outlives the caller's slice
	p, loaded := hmacPools.LoadOrStore(string(kc), &sync.Pool{
		New: func() any { return hmac.New(sha256.New, kc) },
	})
	if !loaded {
		hmacPoolKeys.Add(1)
	}
	return p.(*sync.Pool)
}

// Sum computes the HMAC-SHA256 of data under key k.
func (k Key) Sum(data []byte) MAC {
	var m MAC
	p := hmacPool(k)
	if p == nil {
		h := hmac.New(sha256.New, k)
		h.Write(data)
		h.Sum(m[:0])
		return m
	}
	h := p.Get().(hash.Hash)
	h.Reset()
	h.Write(data)
	h.Sum(m[:0])
	p.Put(h)
	return m
}

// SumParts computes the HMAC-SHA256 over the concatenation of parts.
func (k Key) SumParts(parts ...[]byte) MAC {
	var m MAC
	p := hmacPool(k)
	if p == nil {
		h := hmac.New(sha256.New, k)
		for _, part := range parts {
			h.Write(part)
		}
		h.Sum(m[:0])
		return m
	}
	h := p.Get().(hash.Hash)
	h.Reset()
	for _, part := range parts {
		h.Write(part)
	}
	h.Sum(m[:0])
	p.Put(h)
	return m
}

// Verify reports whether mac is a valid HMAC for data under key k,
// using a constant-time comparison.
func (k Key) Verify(data []byte, mac MAC) bool {
	expect := k.Sum(data)
	return hmac.Equal(expect[:], mac[:])
}

// U64 encodes v in big-endian order; a helper for building MAC inputs.
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// U32 encodes v in big-endian order; a helper for building MAC inputs.
func U32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// KeyStore holds the pairwise session keys of one node in a replica
// group. Node identifiers cover both replicas and clients: replicas use
// IDs [0, n), clients use IDs >= ClientIDBase.
//
// Pairwise keys are derived deterministically from a group master secret
// so that all nodes agree without a key exchange protocol; this mirrors
// the statically configured session keys of the paper's prototype.
type KeyStore struct {
	self   uint32
	master Key

	// pairs memoizes derived pair keys: every authenticator creation
	// and verification needs one, and re-deriving costs an HMAC plus
	// an allocation. Bounded like the HMAC pool — replica pairs are
	// few, client pairs unbounded.
	pairs     sync.Map // uint64(lo)<<32|hi → Key
	pairCount atomic.Int64
}

const maxCachedPairKeys = 4096

// ClientIDBase is the first node ID assigned to clients. IDs below it
// identify replicas.
const ClientIDBase = 1 << 16

// NewKeyStore creates the key store of node self from the group master
// secret.
func NewKeyStore(self uint32, master Key) *KeyStore {
	return &KeyStore{self: self, master: master}
}

// Self returns the node ID this key store belongs to.
func (ks *KeyStore) Self() uint32 { return ks.self }

// PairKey returns the symmetric key shared between nodes a and b.
// The derivation is symmetric: PairKey(a,b) == PairKey(b,a).
func (ks *KeyStore) PairKey(a, b uint32) Key {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	ck := uint64(lo)<<32 | uint64(hi)
	if k, ok := ks.pairs.Load(ck); ok {
		return k.(Key)
	}
	d := ks.master.SumParts([]byte("pair"), U32(lo), U32(hi))
	k := Key(append([]byte(nil), d[:]...))
	if ks.pairCount.Load() >= maxCachedPairKeys {
		return k
	}
	if actual, loaded := ks.pairs.LoadOrStore(ck, k); loaded {
		return actual.(Key)
	}
	ks.pairCount.Add(1)
	return k
}

// KeyFor returns the key shared between this node and peer.
func (ks *KeyStore) KeyFor(peer uint32) Key {
	return ks.PairKey(ks.self, peer)
}

// Authenticator is a PBFT-style vector of MACs: one MAC per receiver,
// each computed under the pairwise key of sender and receiver. A message
// carrying an authenticator can be verified by every replica in the
// group, but — unlike a signature or trusted MAC — a faulty sender can
// craft an authenticator that verifies at some receivers and not others.
type Authenticator struct {
	Sender uint32
	MACs   []MAC // indexed by replica ID
}

// NewAuthenticator computes the authenticator of sender over digest d
// for receivers [0, n). A MAC slot is included for the sender itself so
// that messages replayed back to their author (e.g. a replica's own
// PREPARE inside another replica's VIEW-CHANGE) remain verifiable.
func NewAuthenticator(ks *KeyStore, d Digest, n int) Authenticator {
	a := Authenticator{Sender: ks.Self(), MACs: make([]MAC, n)}
	for r := 0; r < n; r++ {
		a.MACs[r] = ks.KeyFor(uint32(r)).Sum(d[:])
	}
	return a
}

// VerifyAuthenticator checks the MAC destined for this node inside a.
func VerifyAuthenticator(ks *KeyStore, a Authenticator, d Digest) bool {
	if int(ks.Self()) >= len(a.MACs) {
		return false
	}
	return ks.PairKey(a.Sender, ks.Self()).Verify(d[:], a.MACs[ks.Self()])
}

// Marshal serializes the authenticator.
func (a Authenticator) Marshal() []byte {
	buf := make([]byte, 8+len(a.MACs)*MACSize)
	binary.BigEndian.PutUint32(buf[0:4], a.Sender)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(a.MACs)))
	off := 8
	for _, m := range a.MACs {
		copy(buf[off:], m[:])
		off += MACSize
	}
	return buf
}

// UnmarshalAuthenticator parses an authenticator and returns the number
// of bytes consumed.
func UnmarshalAuthenticator(buf []byte) (Authenticator, int, error) {
	if len(buf) < 8 {
		return Authenticator{}, 0, fmt.Errorf("crypto: authenticator truncated: %d bytes", len(buf))
	}
	var a Authenticator
	a.Sender = binary.BigEndian.Uint32(buf[0:4])
	n := int(binary.BigEndian.Uint32(buf[4:8]))
	need := 8 + n*MACSize
	if n < 0 || len(buf) < need {
		return Authenticator{}, 0, fmt.Errorf("crypto: authenticator truncated: want %d MACs", n)
	}
	a.MACs = make([]MAC, n)
	off := 8
	for i := 0; i < n; i++ {
		copy(a.MACs[i][:], buf[off:off+MACSize])
		off += MACSize
	}
	return a, need, nil
}
