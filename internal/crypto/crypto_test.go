package crypto

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"sync"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"))
	b := Hash([]byte("hello"))
	if a != b {
		t.Fatalf("same input produced different digests: %v vs %v", a, b)
	}
	c := Hash([]byte("hello!"))
	if a == c {
		t.Fatalf("different inputs produced identical digests")
	}
}

func TestHashPartsEqualsConcatenation(t *testing.T) {
	err := quick.Check(func(a, b, c []byte) bool {
		concat := append(append(append([]byte{}, a...), b...), c...)
		return HashParts(a, b, c) == Hash(concat)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCombineOrderMatters(t *testing.T) {
	a, b := Hash([]byte("a")), Hash([]byte("b"))
	if Combine(a, b) == Combine(b, a) {
		t.Fatal("Combine must not be commutative")
	}
	if Combine(a, b) != Combine(a, b) {
		t.Fatal("Combine must be deterministic")
	}
}

func TestZeroDigest(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Fatal("ZeroDigest.IsZero() = false")
	}
	if Hash(nil).IsZero() {
		t.Fatal("Hash(nil) should not be the zero digest")
	}
}

func TestKeySumVerify(t *testing.T) {
	k := NewKeyFromSeed("s1")
	msg := []byte("payload")
	mac := k.Sum(msg)
	if !k.Verify(msg, mac) {
		t.Fatal("valid MAC rejected")
	}
	if k.Verify([]byte("payload!"), mac) {
		t.Fatal("MAC accepted for different message")
	}
	k2 := NewKeyFromSeed("s2")
	if k2.Verify(msg, mac) {
		t.Fatal("MAC accepted under different key")
	}
}

func TestSumPartsEqualsSumConcat(t *testing.T) {
	k := NewKeyFromSeed("s")
	err := quick.Check(func(a, b []byte) bool {
		concat := append(append([]byte{}, a...), b...)
		return k.SumParts(a, b) == k.Sum(concat)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKeyFromSeedDeterministic(t *testing.T) {
	if !bytes.Equal(NewKeyFromSeed("x"), NewKeyFromSeed("x")) {
		t.Fatal("same seed produced different keys")
	}
	if bytes.Equal(NewKeyFromSeed("x"), NewKeyFromSeed("y")) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestPairKeySymmetry(t *testing.T) {
	master := NewKeyFromSeed("group")
	ks1 := NewKeyStore(1, master)
	ks2 := NewKeyStore(2, master)
	if !bytes.Equal(ks1.PairKey(1, 2), ks2.PairKey(2, 1)) {
		t.Fatal("pair keys are not symmetric")
	}
	if bytes.Equal(ks1.PairKey(1, 2), ks1.PairKey(1, 3)) {
		t.Fatal("distinct pairs share a key")
	}
	if !bytes.Equal(ks1.KeyFor(2), ks2.KeyFor(1)) {
		t.Fatal("KeyFor is not symmetric across stores")
	}
}

func TestAuthenticatorRoundtrip(t *testing.T) {
	master := NewKeyFromSeed("group")
	const n = 4
	sender := NewKeyStore(0, master)
	d := Hash([]byte("msg"))
	auth := NewAuthenticator(sender, d, n)

	for r := uint32(1); r < n; r++ {
		recv := NewKeyStore(r, master)
		if !VerifyAuthenticator(recv, auth, d) {
			t.Fatalf("replica %d rejected valid authenticator", r)
		}
		if VerifyAuthenticator(recv, auth, Hash([]byte("other"))) {
			t.Fatalf("replica %d accepted authenticator for wrong digest", r)
		}
	}
}

func TestAuthenticatorWrongGroupRejected(t *testing.T) {
	d := Hash([]byte("msg"))
	auth := NewAuthenticator(NewKeyStore(0, NewKeyFromSeed("g1")), d, 4)
	recv := NewKeyStore(1, NewKeyFromSeed("g2"))
	if VerifyAuthenticator(recv, auth, d) {
		t.Fatal("authenticator accepted across groups")
	}
}

func TestAuthenticatorMarshalRoundtrip(t *testing.T) {
	master := NewKeyFromSeed("group")
	auth := NewAuthenticator(NewKeyStore(2, master), Hash([]byte("m")), 4)
	buf := auth.Marshal()
	got, n, err := UnmarshalAuthenticator(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Sender != auth.Sender || len(got.MACs) != len(auth.MACs) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, auth)
	}
	for i := range auth.MACs {
		if got.MACs[i] != auth.MACs[i] {
			t.Fatalf("MAC %d mismatch", i)
		}
	}
}

func TestAuthenticatorUnmarshalTruncated(t *testing.T) {
	master := NewKeyFromSeed("group")
	auth := NewAuthenticator(NewKeyStore(2, master), Hash([]byte("m")), 4)
	buf := auth.Marshal()
	for cut := 0; cut < len(buf); cut += 7 {
		if _, _, err := UnmarshalAuthenticator(buf[:cut]); err == nil {
			t.Fatalf("no error for truncation at %d", cut)
		}
	}
}

func TestAuthenticatorOutOfRangeReceiver(t *testing.T) {
	master := NewKeyFromSeed("group")
	auth := NewAuthenticator(NewKeyStore(0, master), Hash([]byte("m")), 2)
	recv := NewKeyStore(7, master) // ID beyond the MAC vector
	if VerifyAuthenticator(recv, auth, Hash([]byte("m"))) {
		t.Fatal("accepted authenticator without a MAC slot for receiver")
	}
}

func TestU64U32(t *testing.T) {
	if len(U64(0)) != 8 || len(U32(0)) != 4 {
		t.Fatal("wrong encoded lengths")
	}
	if bytes.Equal(U64(1), U64(2)) {
		t.Fatal("distinct values encode equal")
	}
}

// TestPooledHMACMatchesFresh pins the HMAC state pool to the reference
// construction: a pooled, Reset state must produce byte-identical MACs
// to a fresh hmac.New, including across reuse and concurrent callers.
func TestPooledHMACMatchesFresh(t *testing.T) {
	k := NewKeyFromSeed("pool")
	ref := func(data []byte) MAC {
		h := hmac.New(sha256.New, k)
		h.Write(data)
		var m MAC
		h.Sum(m[:0])
		return m
	}
	// Sequential reuse: the second call hits the pooled state.
	for i := 0; i < 8; i++ {
		data := []byte{byte(i), 0xfe, byte(i * 3)}
		if got, want := k.Sum(data), ref(data); got != want {
			t.Fatalf("iteration %d: pooled Sum = %s want %s", i, got, want)
		}
	}
	// Concurrent use must never cross-contaminate states.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				data := []byte{byte(w), byte(i), byte(w ^ i)}
				if got, want := k.Sum(data), ref(data); got != want {
					select {
					case errs <- got.String() + " != " + want.String():
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatalf("concurrent pooled Sum diverged: %s", msg)
	}
}

// TestPairKeyCached checks the pair-key cache returns the same derived
// key as an uncached derivation and is stable across calls.
func TestPairKeyCached(t *testing.T) {
	ks := NewKeyStore(0, NewKeyFromSeed("cache"))
	first := ks.PairKey(0, 2)
	d := ks.master.SumParts([]byte("pair"), U32(0), U32(2))
	if !bytes.Equal(first, d[:]) {
		t.Fatal("cached pair key differs from direct derivation")
	}
	if again := ks.PairKey(2, 0); !bytes.Equal(first, again) {
		t.Fatal("pair key not symmetric/stable across cache hits")
	}
}
