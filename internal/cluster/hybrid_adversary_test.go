package cluster_test

import (
	"encoding/binary"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// The hybrid fault model's real adversary is a Byzantine replica whose
// *trusted subsystem stays correct*: it can send, withhold, and delay
// arbitrary messages, but every certificate it issues goes through a
// genuine TrInX with the group key. These tests give the attacker
// exactly that power — a hijacked leader position plus a real TrInX
// instance under replica 0's identity — and check the §5.2 safety
// arguments end to end.

// genuineAttacker returns a TrInX instance carrying replica 0's
// pillar-0 identity with the group key, as a compromised-but-
// SGX-protected leader would hold.
func genuineAttacker(cfg config.Config) *trinx.TrInX {
	key := crypto.NewKeyFromSeed(cfg.KeySeed)
	return trinx.New(enclave.NewPlatform("attacker"), trinx.MakeInstanceID(0, 0), 2, key, enclave.CostModel{})
}

// TestByzantineLeaderPartialDisclosure replays the crux of §5.2.3: a
// faulty leader orders a request with only ONE follower (replica 1),
// which commits and executes it, then goes silent. The view change
// must force the surviving quorum to carry the instance into view 1 —
// replica 1's continuing certificate makes concealment impossible — so
// no correct replica ever diverges and the client still gets its f+1
// matching replies.
func TestByzantineLeaderPartialDisclosure(t *testing.T) {
	cfg := config.Default(config.HybsterS)
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 3},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	attacker := c.Hijack(0) // the view-0 leader position
	tx := genuineAttacker(cfg)
	defer tx.Destroy()

	// Capture the client's request when it reaches the "leader".
	reqCh := make(chan *message.Request, 16)
	attacker.Handle(func(from uint32, m message.Message) {
		if req, ok := m.(*message.Request); ok {
			select {
			case reqCh <- req:
			default:
			}
		}
	})

	cl, err := c.NewClient(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resCh := make(chan []byte, 1)
	go func() {
		res, err := cl.Invoke([]byte{1}, false)
		if err == nil {
			resCh <- res
		}
		close(resCh)
	}()

	var req *message.Request
	select {
	case req = <-reqCh:
	case <-time.After(2 * time.Second):
		t.Fatal("attacker never received the client request")
	}

	// Certify a perfectly valid PREPARE for instance (0,1) — the
	// trusted counter permits exactly this one — and send it to
	// replica 1 ONLY.
	prep := &message.Prepare{View: 0, Order: 1, Requests: []*message.Request{req}}
	cert, err := tx.CreateIndependent(0, uint64(timeline.Pack(0, 1)), prep.Digest())
	if err != nil {
		t.Fatal(err)
	}
	prep.Cert = cert
	if err := attacker.Send(1, prep); err != nil {
		t.Fatal(err)
	}
	// Replica 1 now commits (leader PREPARE + own COMMIT = quorum 2)
	// and executes; replica 2 is in the dark. The attacker stays
	// silent from here on.

	// The client cannot finish in view 0 (only one reply); its
	// retransmissions plus the stalled followers trigger the view
	// change; the NEW-VIEW for view 1 must re-propose the instance.
	select {
	case res, ok := <-resCh:
		if !ok {
			t.Fatal("client gave up — view change did not recover the instance")
		}
		if v := binary.BigEndian.Uint64(res); v != 1 {
			t.Fatalf("counter = %d, want 1", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("client never completed")
	}

	// Both correct replicas must have executed exactly instance(s)
	// yielding counter 1 — divergence here would be a safety bug.
	res, err := cl.Invoke(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.BigEndian.Uint64(res); v != 1 {
		t.Fatalf("post-recovery counter = %d, want 1", v)
	}
}

// TestByzantineConcealingViewChangeRejected: the attacker participates
// in an instance (consuming counter value [0|1]) and then issues a
// VIEW-CHANGE that *omits* the prepare. Its continuing certificate
// unforgeably records prev = [0|1], so correct replicas must reject
// the message as incomplete (§5.2.3, "Continuing Counter
// Certificates") — and must still reach a correct new view on their
// own.
func TestByzantineConcealingViewChangeRejected(t *testing.T) {
	cfg := config.Default(config.HybsterS)
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 4},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	attacker := c.Hijack(0)
	tx := genuineAttacker(cfg)
	defer tx.Destroy()

	// Consume counter value [0|1] with a hidden prepare nobody sees.
	hidden := &message.Prepare{View: 0, Order: 1, Requests: nil}
	hcert, err := tx.CreateIndependent(0, uint64(timeline.Pack(0, 1)), hidden.Digest())
	if err != nil {
		t.Fatal(err)
	}
	hidden.Cert = hcert

	// Now produce a concealing VIEW-CHANGE: valid continuing
	// certificate, empty prepare set. prev = [0|1] proves the lie.
	vc := &message.ViewChange{Replica: 0, Pillar: 0, From: 0, To: 1}
	vcert, err := tx.CreateContinuing(0, uint64(timeline.ViewStart(1)), vc.Digest())
	if err != nil {
		t.Fatal(err)
	}
	vc.Cert = vcert
	if vcert.Prev != uint64(timeline.Pack(0, 1)) {
		t.Fatalf("prev = %v — test setup broken", timeline.Point(vcert.Prev))
	}
	_ = attacker.Send(1, vc)
	_ = attacker.Send(2, vc)

	// Despite the poisoned VC, the correct replicas must elect view 1
	// themselves and serve clients.
	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(1); i <= 6; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != i {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

// TestByzantineCheckpointEquivocationDetected: trusted MACs do not
// prevent a faulty replica from announcing a wrong checkpoint digest —
// but a single faulty announcement can never assemble a quorum, so
// correct replicas' garbage collection stays sound.
func TestByzantineCheckpointLiesCannotStabilize(t *testing.T) {
	cfg := config.Default(config.HybsterS)
	cfg.CheckpointInterval = 4
	cfg.WindowSize = 16
	cfg.ViewChangeTimeout = 500 * time.Millisecond
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 5},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	attacker := c.Hijack(0)
	tx := genuineAttacker(cfg)
	defer tx.Destroy()

	// Spray trusted-MAC-certified checkpoints with bogus digests for
	// future orders.
	for _, o := range []timeline.Order{4, 8, 12} {
		ck := &message.Checkpoint{Order: o, Replica: 0, StateDigest: crypto.Hash([]byte("lie"))}
		cert, err := tx.CreateTrustedMAC(1, ck.Digest())
		if err != nil {
			t.Fatal(err)
		}
		ck.Cert = cert
		_ = attacker.Send(1, ck)
		_ = attacker.Send(2, ck)
	}

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Order enough requests to cross the lied-about checkpoints; the
	// correct replicas' digests disagree with the attacker's, so only
	// genuine 2-matching quorums may stabilize.
	for i := uint64(1); i <= 12; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != i {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}
