package cluster

import (
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
)

func restartConfig() config.Config {
	return config.Config{
		Protocol:           config.HybsterS,
		N:                  3,
		Pillars:            1,
		BatchSize:          8,
		CheckpointInterval: 8,
		WindowSize:         32,
		ViewChangeTimeout:  300 * time.Millisecond,
		KeySeed:            "restart-test",
	}
}

// TestCrashRestartRejoin is the regression test for the crash →
// restart → rejoin flow: Network.Endpoint replaces the dead
// registration (closing it), Restart heals the replica's links and
// rebuilds the engine on the original platform, and the restarted
// replica catches back up to the cluster via state transfer.
func TestCrashRestartRejoin(t *testing.T) {
	c, err := NewHybster(Options{Config: restartConfig()}, func() statemachine.Application {
		return counter.New()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := c.NewClient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	commit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := cl.Invoke([]byte{1}, false); err != nil {
				t.Fatalf("invoke: %v", err)
			}
		}
	}

	commit(12) // past the first checkpoint (interval 8)
	c.Crash(1)
	if c.Replica(1) != nil {
		t.Fatal("crashed replica still listed")
	}
	commit(12) // cluster keeps committing with 2/3 replicas

	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if c.Replica(1) == nil {
		t.Fatal("restarted replica not listed")
	}
	if err := c.Restart(1); err == nil {
		t.Fatal("restarting a live replica must fail")
	}

	// The restarted replica must rejoin: new commits trigger fresh
	// checkpoints, and state transfer pulls it past the frontier it
	// missed while down.
	target := c.replicas[0].LastExecuted()
	deadline := time.Now().Add(15 * time.Second)
	for c.replicas[1].LastExecuted() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 stuck at %d, cluster at %d", c.replicas[1].LastExecuted(), target)
		}
		commit(2)
	}

	// And the full cluster converges on one frontier. Keep traffic
	// flowing while waiting: catch-up rides on checkpoints, which only
	// form when new batches commit.
	deadline = time.Now().Add(15 * time.Second)
	for {
		top := timeline.Order(0)
		for _, r := range c.replicas {
			if o := r.LastExecuted(); o > top {
				top = o
			}
		}
		err := c.WaitExecuted(top, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		commit(2)
	}
}
