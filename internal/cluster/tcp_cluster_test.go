package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/client"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/transport"
)

// freePorts reserves n distinct localhost ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// TestTCPClusterLeaderCrash runs a full Hybster group over real TCP
// sockets — the cmd/hybster-replica deployment path, not memnet —
// kills the leader, and requires the group to view-change and keep
// committing. Regression test for the TCP deployment wedging on
// leader loss.
func TestTCPClusterLeaderCrash(t *testing.T) {
	cfg := restartConfig()
	addrs := freePorts(t, cfg.N)

	eps := make([]*transport.TCPEndpoint, cfg.N)
	engines := make([]Replica, cfg.N)
	for i := 0; i < cfg.N; i++ {
		peers := make(map[uint32]string)
		for j, a := range addrs {
			if j != i {
				peers[uint32(j)] = a
			}
		}
		ep, err := transport.NewTCP(uint32(i), addrs[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		eng, err := core.New(core.Options{
			Config:      cfg,
			ID:          uint32(i),
			Endpoint:    ep,
			Application: counter.New(),
			Platform:    enclave.NewPlatform(fmt.Sprintf("replica-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		eng.Start()
	}
	defer func() {
		for i := range engines {
			if engines[i] != nil {
				engines[i].Stop()
				eps[i].Close()
			}
		}
	}()

	newClient := func(k uint32) *client.Client {
		t.Helper()
		cid := crypto.ClientIDBase + k
		cep, err := transport.NewTCP(cid, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, a := range addrs {
			cep.AddPeer(uint32(j), a)
		}
		cl, err := client.New(client.Options{
			Config: cfg, ID: cid, Endpoint: cep, Timeout: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	cl := newClient(100)
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d before crash: %v", i, err)
		}
	}

	// Kill the leader the way a process death does: engine stopped,
	// sockets torn down.
	engines[0].Stop()
	eps[0].Close()
	engines[0], eps[0] = nil, nil

	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d after leader crash: %v", i, err)
		}
	}
}

// TestTCPClientFailoverMidStream kills the leader while several
// clients have requests in flight over real TCP sockets. Every
// outstanding invocation must still complete: the clients' retransmit
// path re-broadcasts timed-out requests, the survivors view-change,
// and the new leader orders the retries. No invocation may be lost or
// erred — the failover must be invisible above the client API.
func TestTCPClientFailoverMidStream(t *testing.T) {
	cfg := restartConfig()
	addrs := freePorts(t, cfg.N)

	eps := make([]*transport.TCPEndpoint, cfg.N)
	engines := make([]Replica, cfg.N)
	for i := 0; i < cfg.N; i++ {
		peers := make(map[uint32]string)
		for j, a := range addrs {
			if j != i {
				peers[uint32(j)] = a
			}
		}
		ep, err := transport.NewTCP(uint32(i), addrs[i], peers)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		eng, err := core.New(core.Options{
			Config:      cfg,
			ID:          uint32(i),
			Endpoint:    ep,
			Application: counter.New(),
			Platform:    enclave.NewPlatform(fmt.Sprintf("failover-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		eng.Start()
	}
	defer func() {
		for i := range engines {
			if engines[i] != nil {
				engines[i].Stop()
				eps[i].Close()
			}
		}
	}()

	const streams, perStream = 4, 15
	errs := make(chan error, streams)
	started := make(chan struct{}, streams)
	for s := 0; s < streams; s++ {
		go func(k uint32) {
			cid := crypto.ClientIDBase + k
			cep, err := transport.NewTCP(cid, "127.0.0.1:0", nil)
			if err != nil {
				errs <- err
				return
			}
			for j, a := range addrs {
				cep.AddPeer(uint32(j), a)
			}
			cl, err := client.New(client.Options{
				Config: cfg, ID: cid, Endpoint: cep, Timeout: 400 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perStream; i++ {
				if i == 2 {
					started <- struct{}{} // stream is provably mid-flight
				}
				if _, err := cl.Invoke([]byte{1}, false); err != nil {
					errs <- fmt.Errorf("stream %d op %d: %w", k, i, err)
					return
				}
			}
			errs <- nil
		}(uint32(200 + s))
	}

	// Wait until every stream has committed a couple of requests, then
	// kill the leader with the rest still in flight.
	for s := 0; s < streams; s++ {
		<-started
	}
	engines[0].Stop()
	eps[0].Close()
	engines[0], eps[0] = nil, nil

	for s := 0; s < streams; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
