package cluster_test

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/client"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/transport"
)

func counterApp() statemachine.Application { return counter.New() }

func TestAllProtocolFactories(t *testing.T) {
	cases := []struct {
		name  string
		proto config.Protocol
		boot  func(cluster.Options) (*cluster.Cluster, error)
	}{
		{"HybsterS", config.HybsterS, func(o cluster.Options) (*cluster.Cluster, error) {
			return cluster.NewHybster(o, counterApp)
		}},
		{"HybsterX", config.HybsterX, func(o cluster.Options) (*cluster.Cluster, error) {
			return cluster.NewHybster(o, counterApp)
		}},
		{"PBFTcop", config.PBFTcop, func(o cluster.Options) (*cluster.Cluster, error) {
			return cluster.NewPBFT(o, counterApp)
		}},
		{"HybridPBFT", config.HybridPBFT, func(o cluster.Options) (*cluster.Cluster, error) {
			return cluster.NewPBFT(o, counterApp)
		}},
		{"MinBFT", config.MinBFT, func(o cluster.Options) (*cluster.Cluster, error) {
			return cluster.NewMinBFT(o, counterApp)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.boot(cluster.Options{Config: config.Default(tc.proto)})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			cl, err := c.NewClient(2 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			res, err := cl.Invoke([]byte{5}, false)
			if err != nil {
				t.Fatal(err)
			}
			if v := binary.BigEndian.Uint64(res); v != 5 {
				t.Fatalf("counter = %d", v)
			}
		})
	}
}

func TestFactoryTypesMatchProtocols(t *testing.T) {
	h, err := cluster.NewHybster(cluster.Options{Config: config.Default(config.HybsterX)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	if _, ok := h.Replica(0).(*core.Engine); !ok {
		t.Fatalf("Hybster replica has type %T", h.Replica(0))
	}

	p, err := cluster.NewPBFT(cluster.Options{Config: config.Default(config.PBFTcop)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, ok := p.Replica(0).(*pbft.Engine); !ok {
		t.Fatalf("PBFT replica has type %T", p.Replica(0))
	}

	m, err := cluster.NewMinBFT(cluster.Options{Config: config.Default(config.MinBFT)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if _, ok := m.Replica(0).(*minbft.Engine); !ok {
		t.Fatalf("MinBFT replica has type %T", m.Replica(0))
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default(config.HybsterX)
	cfg.N = 1
	if _, err := cluster.NewHybster(cluster.Options{Config: cfg}, counterApp); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCrashMarksReplica(t *testing.T) {
	c, err := cluster.NewHybster(cluster.Options{Config: config.Default(config.HybsterS)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.Replica(1) == nil {
		t.Fatal("replica 1 nil before crash")
	}
	c.Crash(1)
	c.Crash(1) // idempotent
	if c.Replica(1) != nil {
		t.Fatal("crashed replica still returned")
	}
}

func TestWaitExecuted(t *testing.T) {
	c, err := cluster.NewHybster(cluster.Options{Config: config.Default(config.HybsterS)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitExecuted(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitExecuted(1_000_000, 50*time.Millisecond); err == nil {
		t.Fatal("WaitExecuted for unreachable order succeeded")
	}
}

func TestClientsGetDistinctIDs(t *testing.T) {
	c, err := cluster.NewHybster(cluster.Options{Config: config.Default(config.HybsterS)}, counterApp)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	seen := map[uint32]bool{}
	for i := 0; i < 5; i++ {
		cl, err := c.NewClient(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if seen[cl.ID()] {
			t.Fatalf("duplicate client ID %d", cl.ID())
		}
		seen[cl.ID()] = true
		cl.Close()
	}
}

// TestTCPClusterEndToEnd deploys a full Hybster group over real TCP
// sockets — the cmd/hybster-replica path — and orders requests through
// it.
func TestTCPClusterEndToEnd(t *testing.T) {
	cfg := config.Default(config.HybsterX)
	cfg.Pillars = 2

	// Bind listeners first so every replica knows all addresses.
	eps := make([]*transport.TCPEndpoint, cfg.N)
	for i := range eps {
		ep, err := transport.NewTCP(uint32(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	for i, ep := range eps {
		for j, other := range eps {
			if i != j {
				ep.AddPeer(uint32(j), other.Addr())
			}
		}
	}

	replicas := make([]*core.Engine, cfg.N)
	for i := range replicas {
		e, err := core.New(core.Options{
			Config:      cfg,
			ID:          uint32(i),
			Endpoint:    eps[i],
			Application: counter.New(),
			Platform:    enclave.NewPlatform(fmt.Sprintf("tcp-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = e
		e.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	clEp, err := transport.NewTCP(1<<16, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		clEp.AddPeer(uint32(i), ep.Addr())
	}
	cl, err := newTCPClient(cfg, clEp)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d over TCP: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

func newTCPClient(cfg config.Config, ep transport.Endpoint) (*client.Client, error) {
	return client.New(client.Options{Config: cfg, ID: crypto.ClientIDBase, Endpoint: ep, Timeout: 2 * time.Second})
}
