package cluster_test

import (
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// These tests target the off-pillar verification stage: requests and
// prepares whose client authenticators are corrupted must be rejected
// by the parallel verify pool *before* they reach a pillar mailbox.
// Two observables pin that down:
//
//  1. hybster_verify_rejected_total rises on the correct replicas —
//     the rejection happened in the verify stage, not on a pillar.
//  2. The replicated counter stays exact. Every corrupted request
//     carries payload {1}; had even one slipped past the stage into
//     ordering and execution, the counter would be off by one and
//     expectProgress would fail on the next legit op.

// corruptedRequest builds a request whose authenticator is structurally
// valid (right sender, right MAC count) but cryptographically garbage.
func corruptedRequest(seq uint64) *message.Request {
	macs := make([]crypto.MAC, 3)
	for i := range macs {
		macs[i][0] = byte(seq)
		macs[i][31] = 0x5a
	}
	return &message.Request{
		Client: crypto.ClientIDBase + 40, Seq: seq, Payload: []byte{1},
		Auth: crypto.Authenticator{Sender: crypto.ClientIDBase + 40, MACs: macs},
	}
}

// waitMetricSum polls the summed metric across the given replicas until
// it is positive or the deadline passes.
func waitMetricSum(t *testing.T, c *cluster.Cluster, name string, ids []uint32, deadline time.Duration) float64 {
	t.Helper()
	var sum float64
	for end := time.Now().Add(deadline); time.Now().Before(end); time.Sleep(10 * time.Millisecond) {
		sum = 0
		for _, id := range ids {
			sum += c.MetricValue(id, name)
		}
		if sum > 0 {
			return sum
		}
	}
	return sum
}

func TestCorruptedAuthenticatorsRejectedOffPillar(t *testing.T) {
	c, attacker, cl := byzCluster(t)
	correct := []uint32{0, 1} // replica 2 is hijacked (n = 2f+1 = 3)

	// Flood corrupted-auth requests directly (the path a byzantine
	// client or relaying replica would use)...
	for i := 0; i < 16; i++ {
		transport.Multicast(attacker, 3, corruptedRequest(uint64(i+1)))
	}
	// ...and corrupted-auth requests smuggled inside PREPAREs, which
	// the engines detour through the verify pool before the pillar ever
	// sees them.
	for o := timeline.Order(1); o <= 8; o++ {
		prep := &message.Prepare{
			View: 0, Order: o,
			Requests: []*message.Request{corruptedRequest(uint64(o))},
			Cert:     forgedCert(trinx.Independent, trinx.MakeInstanceID(0, 0), uint64(timeline.Pack(0, o))),
		}
		transport.Multicast(attacker, 3, prep)
	}

	if sum := waitMetricSum(t, c, "hybster_verify_rejected_total", correct, 3*time.Second); sum == 0 {
		t.Fatal("verify stage rejected nothing despite corrupted authenticators")
	}

	// The counter must be exact: any corrupted request that reached a
	// pillar mailbox and got ordered would add its payload byte.
	expectProgress(t, cl, 1, 8)

	// And the executed-request counters must account for exactly the
	// legit ops — nothing rejected was ordered.
	for _, id := range correct {
		if got := c.MetricValue(id, "hybster_core_exec_requests_total"); got != 8 {
			t.Fatalf("replica %d executed %v requests, want 8 — a rejected request reached ordering", id, got)
		}
	}
}

func TestCorruptedAuthenticatorsRejectedMinBFT(t *testing.T) {
	cfg := config.Default(config.MinBFT)
	cfg.ViewChangeTimeout = 600 * time.Millisecond
	c, err := cluster.NewMinBFT(cluster.Options{Config: cfg, Seed: 3},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	attacker := c.Hijack(2)
	cl, err := c.NewClient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	correct := []uint32{0, 1}

	for i := 0; i < 16; i++ {
		transport.Multicast(attacker, 3, corruptedRequest(uint64(i+1)))
	}

	if sum := waitMetricSum(t, c, "hybster_verify_rejected_total", correct, 3*time.Second); sum == 0 {
		t.Fatal("verify stage rejected nothing despite corrupted authenticators")
	}
	expectProgress(t, cl, 1, 8)
	for _, id := range correct {
		if got := c.MetricValue(id, "hybster_minbft_exec_requests_total"); got != 8 {
			t.Fatalf("replica %d executed %v requests, want 8", id, got)
		}
	}
}

// TestVerifyStageCountsLegitTraffic closes the loop on the happy path:
// legit client load must flow through the parallel stage (verified
// counter rises) and nothing may be rejected in a fault-free cluster.
func TestVerifyStageCountsLegitTraffic(t *testing.T) {
	cfg := config.Default(config.HybsterS)
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 4},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	cl, err := c.NewClient(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	expectProgress(t, cl, 1, 8)

	all := []uint32{0, 1, 2}
	if sum := waitMetricSum(t, c, "hybster_verify_verified_total", all, 3*time.Second); sum == 0 {
		t.Fatal("no traffic flowed through the parallel verify stage")
	}
	for _, id := range all {
		if rej := c.MetricValue(id, "hybster_verify_rejected_total"); rej != 0 {
			t.Fatalf("replica %d rejected %v batches in a fault-free run", id, rej)
		}
	}
}
