package cluster_test

import (
	"testing"
	"time"

	"hybster/internal/cluster"
	"hybster/internal/config"
)

// BenchmarkHotPathPrepareCommitExec measures the full ordering path —
// client request in, prepare multicast, commit quorum, execution,
// reply out — on an in-process HybsterX cluster. allocs/op covers
// every replica plus the client, making it the end-to-end alloc
// budget of the prepare→commit→exec hot path.
func BenchmarkHotPathPrepareCommitExec(b *testing.B) {
	cfg := config.Default(config.HybsterX)
	cfg.ViewChangeTimeout = time.Minute // the benchmark must never view-change
	c, err := cluster.NewHybster(cluster.Options{Config: cfg}, counterApp)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	payload := []byte{1}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Invoke(payload, false); err != nil {
			b.Fatal(err)
		}
	}
}
