// Package cluster boots complete in-process replica groups — engines,
// simulated network, clients — for integration tests, examples, and
// the benchmark harness. It also provides fault injection: crashing
// replicas, partitioning the network, and healing it again.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybster/internal/client"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Replica is the surface the harness needs from any protocol engine.
type Replica interface {
	Start()
	Stop()
	ID() uint32
	LastExecuted() timeline.Order
}

// Killer is the optional crash-stop surface of an engine: Kill tears
// the replica down WITHOUT the graceful-shutdown durability work (no
// exact-counter seal, no WAL flush), leaving its disk exactly as
// kill -9 would. Engines without it are simply Stop'd — for volatile
// engines the two are equivalent.
type Killer interface {
	Kill()
}

// NodeEnv is the per-replica "machine" a factory builds an engine on:
// the enclave platform (the CPU and its trusted hardware — it survives
// every restart) and the data directory (the disk — it survives a cold
// restart but not amnesia). DataDir is empty when the cluster runs
// volatile (no Options.DataRoot).
type NodeEnv struct {
	Platform *enclave.Platform
	DataDir  string
	// Telemetry is the replica's metrics registry and tracer. Like the
	// platform it survives Restart: idempotent metric registration keeps
	// counters continuous across engine generations, and gauge callbacks
	// are swapped to the new engine's state.
	Telemetry *telemetry.Telemetry
}

// Factory builds one replica engine attached to the given endpoint and
// machine environment.
type Factory func(cfg config.Config, id uint32, ep transport.Endpoint, env NodeEnv) (Replica, error)

// Cluster is one in-process replica group.
type Cluster struct {
	Cfg config.Config
	Net *transport.Network

	factory   Factory
	wrap      func(id uint32, ep transport.Endpoint) transport.Endpoint
	platforms []*enclave.Platform
	telems    []*telemetry.Telemetry
	dataDirs  []string // per replica; empty = volatile
	replicas  []Replica
	crashed   []bool
	zombie    []bool

	nextClient uint32
}

// Options configure a cluster.
type Options struct {
	Config config.Config
	// Profile is the simulated network profile (zero = ideal network).
	Profile transport.LinkProfile
	// Seed makes simulated loss reproducible.
	Seed int64
	// EnclaveCost is the SGX cost model for all replicas.
	EnclaveCost enclave.CostModel
	// WrapEndpoint, when set, decorates every replica endpoint before
	// it is handed to the factory (fault injection hooks in here).
	// Client endpoints are not wrapped.
	WrapEndpoint func(id uint32, ep transport.Endpoint) transport.Endpoint
	// DataRoot, when set, gives every replica a persistent data
	// directory (DataRoot/replica-<id>) that survives Restart — a cold
	// restart recovers sealed counters and the write-ahead log from it.
	// Empty means volatile replicas (the pre-durability behavior).
	DataRoot string
}

// New boots a cluster with replicas produced by factory.
func New(opts Options, factory Factory) (*Cluster, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Cfg:        opts.Config,
		Net:        transport.NewNetwork(opts.Profile, opts.Seed),
		factory:    factory,
		wrap:       opts.WrapEndpoint,
		platforms:  make([]*enclave.Platform, opts.Config.N),
		telems:     make([]*telemetry.Telemetry, opts.Config.N),
		dataDirs:   make([]string, opts.Config.N),
		replicas:   make([]Replica, opts.Config.N),
		crashed:    make([]bool, opts.Config.N),
		zombie:     make([]bool, opts.Config.N),
		nextClient: crypto.ClientIDBase,
	}
	for id := uint32(0); int(id) < opts.Config.N; id++ {
		ep := c.endpoint(id)
		platform := enclave.NewPlatform(fmt.Sprintf("replica-%d", id))
		c.platforms[id] = platform
		c.telems[id] = telemetry.NewFor(opts.Config.Protocol.String(), id)
		if opts.DataRoot != "" {
			dir := filepath.Join(opts.DataRoot, fmt.Sprintf("replica-%d", id))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				c.Stop()
				return nil, fmt.Errorf("cluster: data dir for replica %d: %w", id, err)
			}
			c.dataDirs[id] = dir
		}
		r, err := factory(opts.Config, id, ep, c.env(id))
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.replicas[id] = r
	}
	for _, r := range c.replicas {
		r.Start()
	}
	return c, nil
}

// endpoint registers replica id on the network, applying the optional
// wrapper.
func (c *Cluster) endpoint(id uint32) transport.Endpoint {
	ep := c.Net.Endpoint(id)
	if c.wrap != nil {
		ep = c.wrap(id, ep)
	}
	return ep
}

// env assembles replica id's machine environment.
func (c *Cluster) env(id uint32) NodeEnv {
	return NodeEnv{Platform: c.platforms[id], DataDir: c.dataDirs[id], Telemetry: c.telems[id]}
}

// DataDir returns replica id's data directory ("" when volatile).
func (c *Cluster) DataDir(id uint32) string { return c.dataDirs[id] }

// Telemetry returns replica id's telemetry bundle. It is valid even
// while the replica is crashed (counters freeze at their last values),
// which lets tests assert on internal state post-mortem.
func (c *Cluster) Telemetry(id uint32) *telemetry.Telemetry { return c.telems[id] }

// MetricValue reads one metric series from replica id by its full
// exposition name, e.g. `hybster_core_retransmits_total{pillar="0"}`
// (histograms yield their observation count; unregistered series read
// as 0).
func (c *Cluster) MetricValue(id uint32, fullName string) float64 {
	return c.telems[id].Metrics().Value(fullName)
}

// TelemetrySnapshot sums every metric series across all replicas into
// one cluster-wide map (histograms contribute their observation
// counts). Benchmarks attach it to result points; per-replica views
// stay available through Telemetry(id).
func (c *Cluster) TelemetrySnapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range c.telems {
		for name, v := range t.Metrics().Snapshot() {
			out[name] += v
		}
	}
	return out
}

// NewHybster boots a Hybster cluster (HybsterS or HybsterX depending
// on cfg.Pillars) running the applications produced by newApp.
func NewHybster(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, env NodeEnv) (Replica, error) {
		return core.New(core.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    env.Platform,
			EnclaveCost: opts.EnclaveCost,
			Telemetry:   env.Telemetry,
			DataDir:     env.DataDir,
		})
	})
}

// NewPBFT boots a PBFTcop or HybridPBFT cluster depending on
// cfg.Protocol.
func NewPBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, env NodeEnv) (Replica, error) {
		return pbft.New(pbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    env.Platform,
			EnclaveCost: opts.EnclaveCost,
			Telemetry:   env.Telemetry,
		})
	})
}

// NewMinBFT boots a MinBFT cluster.
func NewMinBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, env NodeEnv) (Replica, error) {
		return minbft.New(minbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    env.Platform,
			EnclaveCost: opts.EnclaveCost,
			Telemetry:   env.Telemetry,
		})
	})
}

// Replica returns replica id (nil if crashed).
func (c *Cluster) Replica(id uint32) Replica {
	if c.crashed[id] {
		return nil
	}
	return c.replicas[id]
}

// NewClient attaches a fresh client to the cluster.
func (c *Cluster) NewClient(timeout time.Duration) (*client.Client, error) {
	id := c.nextClient
	c.nextClient++
	return client.New(client.Options{
		Config:   c.Cfg,
		ID:       id,
		Endpoint: c.Net.Endpoint(id),
		Timeout:  timeout,
	})
}

// Crash hard-stops replica id and detaches it from the network,
// simulating a fail-stop fault with kill -9 semantics: durable state
// is left exactly as the crash instant finds it — no final counter
// seal, no WAL flush, a torn log tail. A later Restart therefore
// exercises the genuine crash-recovery path (horizon jump + tail
// truncation), not the graceful-shutdown one; use Shutdown for the
// latter. The replica is marked crashed and halted before its links
// are cut, so no goroutine observes a half-dead replica.
func (c *Cluster) Crash(id uint32) { c.halt(id, false) }

// Shutdown gracefully stops replica id and detaches it from the
// network — the SIGTERM analogue: the WAL is flushed and the exact
// counter values sealed, so a later Restart resumes warm with no
// horizon jump.
func (c *Cluster) Shutdown(id uint32) { c.halt(id, true) }

func (c *Cluster) halt(id uint32, graceful bool) {
	if c.crashed[id] {
		return
	}
	c.crashed[id] = true
	if k, ok := c.replicas[id].(Killer); ok && !graceful {
		k.Kill()
	} else {
		c.replicas[id].Stop()
	}
	c.Net.Isolate(id)
}

// Restart brings a crashed replica back: its links are healed, a fresh
// endpoint replaces the dead registration, and a new engine instance is
// built by the cluster's factory on the replica's original enclave
// platform (the trusted subsystem survives the host crash, as SGX
// state sealed to the platform would). With a data root this is a COLD
// restart: memory is lost but the disk survives, so the engine resumes
// from sealed counters and the write-ahead log. Without one it starts
// from empty state and must catch up via state transfer. If the
// factory refuses to boot (e.g. trinx.ErrStaleSeal on a rolled-back
// seal), the replica stays down and isolated.
func (c *Cluster) Restart(id uint32) error {
	if !c.crashed[id] {
		return fmt.Errorf("cluster: replica %d is not crashed", id)
	}
	c.Net.HealNode(id)
	ep := c.endpoint(id)
	r, err := c.factory(c.Cfg, id, ep, c.env(id))
	if err != nil {
		c.Net.Isolate(id)
		return fmt.Errorf("cluster: restart replica %d: %w", id, err)
	}
	c.replicas[id] = r
	c.crashed[id] = false
	c.zombie[id] = false
	r.Start()
	return nil
}

// RestartAmnesia wipes replica id's data directory before restarting,
// simulating total disk loss (or an operator restoring the wrong
// backup). A durable replica MUST refuse to come back: its platform's
// monotonic seal register proves counter state existed that the disk
// no longer holds, so resuming fresh could let it re-certify old
// counter values — the classic restart-equivocation attack. The
// returned error wraps trinx.ErrAmnesia and the replica is recorded as
// a zombie: permanently down, exempt from liveness checks. Volatile
// replicas (no data root) have nothing to lose and restart normally.
func (c *Cluster) RestartAmnesia(id uint32) error {
	if !c.crashed[id] {
		return fmt.Errorf("cluster: replica %d is not crashed", id)
	}
	if dir := c.dataDirs[id]; dir != "" {
		if err := os.RemoveAll(dir); err != nil {
			return fmt.Errorf("cluster: wipe replica %d data: %w", id, err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("cluster: recreate replica %d data: %w", id, err)
		}
	}
	if err := c.Restart(id); err != nil {
		c.zombie[id] = true
		return err
	}
	return nil
}

// Zombie reports whether replica id tried to rejoin and was refused
// (amnesia or rolled-back seal) and is now permanently down.
func (c *Cluster) Zombie(id uint32) bool { return c.zombie[id] }

// Zombies lists all refused replicas.
func (c *Cluster) Zombies() []uint32 {
	var out []uint32
	for id, z := range c.zombie {
		if z {
			out = append(out, uint32(id))
		}
	}
	return out
}

// Hijack stops replica id and hands its network identity to the
// caller: the returned endpoint sends and receives as that replica.
// It is the entry point for Byzantine fault-injection tests — the
// attacker holds the replica's network position but not its trusted
// subsystem (enclave state dies with the replica, as it would under
// SGX when the host is compromised).
func (c *Cluster) Hijack(id uint32) transport.Endpoint {
	if !c.crashed[id] {
		c.crashed[id] = true
		c.replicas[id].Stop()
	}
	return c.Net.Endpoint(id)
}

// Partition cuts the link between two replicas.
func (c *Cluster) Partition(a, b uint32) { c.Net.Partition(a, b) }

// Isolate cuts replica a off from everyone.
func (c *Cluster) Isolate(a uint32) { c.Net.Isolate(a) }

// Heal repairs one link.
func (c *Cluster) Heal(a, b uint32) { c.Net.Heal(a, b) }

// HealAll repairs all partitions.
func (c *Cluster) HealAll() { c.Net.HealAll() }

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for id, r := range c.replicas {
		if r != nil && !c.crashed[id] {
			r.Stop()
		}
	}
	c.Net.Close()
}

// WaitExecuted blocks until every live replica executed at least
// order o, or the deadline passes.
func (c *Cluster) WaitExecuted(o timeline.Order, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		all := true
		for id, r := range c.replicas {
			if c.crashed[id] {
				continue
			}
			if r.LastExecuted() < o {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: not all replicas reached order %d within %v", o, deadline)
}
