// Package cluster boots complete in-process replica groups — engines,
// simulated network, clients — for integration tests, examples, and
// the benchmark harness. It also provides fault injection: crashing
// replicas, partitioning the network, and healing it again.
package cluster

import (
	"fmt"
	"time"

	"hybster/internal/client"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Replica is the surface the harness needs from any protocol engine.
type Replica interface {
	Start()
	Stop()
	ID() uint32
	LastExecuted() timeline.Order
}

// Factory builds one replica engine attached to the given endpoint.
// Each replica runs on its own enclave platform, as it would on its
// own machine.
type Factory func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error)

// Cluster is one in-process replica group.
type Cluster struct {
	Cfg config.Config
	Net *transport.Network

	replicas []Replica
	crashed  []bool

	nextClient uint32
}

// Options configure a cluster.
type Options struct {
	Config config.Config
	// Profile is the simulated network profile (zero = ideal network).
	Profile transport.LinkProfile
	// Seed makes simulated loss reproducible.
	Seed int64
	// EnclaveCost is the SGX cost model for all replicas.
	EnclaveCost enclave.CostModel
}

// New boots a cluster with replicas produced by factory.
func New(opts Options, factory Factory) (*Cluster, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Cfg:        opts.Config,
		Net:        transport.NewNetwork(opts.Profile, opts.Seed),
		replicas:   make([]Replica, opts.Config.N),
		crashed:    make([]bool, opts.Config.N),
		nextClient: crypto.ClientIDBase,
	}
	for id := uint32(0); int(id) < opts.Config.N; id++ {
		ep := c.Net.Endpoint(id)
		platform := enclave.NewPlatform(fmt.Sprintf("replica-%d", id))
		r, err := factory(opts.Config, id, ep, platform)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.replicas[id] = r
	}
	for _, r := range c.replicas {
		r.Start()
	}
	return c, nil
}

// NewHybster boots a Hybster cluster (HybsterS or HybsterX depending
// on cfg.Pillars) running the applications produced by newApp.
func NewHybster(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return core.New(core.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// NewPBFT boots a PBFTcop or HybridPBFT cluster depending on
// cfg.Protocol.
func NewPBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return pbft.New(pbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// NewMinBFT boots a MinBFT cluster.
func NewMinBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return minbft.New(minbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// Replica returns replica id (nil if crashed).
func (c *Cluster) Replica(id uint32) Replica {
	if c.crashed[id] {
		return nil
	}
	return c.replicas[id]
}

// NewClient attaches a fresh client to the cluster.
func (c *Cluster) NewClient(timeout time.Duration) (*client.Client, error) {
	id := c.nextClient
	c.nextClient++
	return client.New(client.Options{
		Config:   c.Cfg,
		ID:       id,
		Endpoint: c.Net.Endpoint(id),
		Timeout:  timeout,
	})
}

// Crash stops replica id and detaches it from the network, simulating
// a fail-stop fault.
func (c *Cluster) Crash(id uint32) {
	if c.crashed[id] {
		return
	}
	c.crashed[id] = true
	c.Net.Isolate(id)
	c.replicas[id].Stop()
}

// Hijack stops replica id and hands its network identity to the
// caller: the returned endpoint sends and receives as that replica.
// It is the entry point for Byzantine fault-injection tests — the
// attacker holds the replica's network position but not its trusted
// subsystem (enclave state dies with the replica, as it would under
// SGX when the host is compromised).
func (c *Cluster) Hijack(id uint32) transport.Endpoint {
	if !c.crashed[id] {
		c.crashed[id] = true
		c.replicas[id].Stop()
	}
	return c.Net.Endpoint(id)
}

// Partition cuts the link between two replicas.
func (c *Cluster) Partition(a, b uint32) { c.Net.Partition(a, b) }

// Isolate cuts replica a off from everyone.
func (c *Cluster) Isolate(a uint32) { c.Net.Isolate(a) }

// Heal repairs one link.
func (c *Cluster) Heal(a, b uint32) { c.Net.Heal(a, b) }

// HealAll repairs all partitions.
func (c *Cluster) HealAll() { c.Net.HealAll() }

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for id, r := range c.replicas {
		if r != nil && !c.crashed[id] {
			r.Stop()
		}
	}
	c.Net.Close()
}

// WaitExecuted blocks until every live replica executed at least
// order o, or the deadline passes.
func (c *Cluster) WaitExecuted(o timeline.Order, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		all := true
		for id, r := range c.replicas {
			if c.crashed[id] {
				continue
			}
			if r.LastExecuted() < o {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: not all replicas reached order %d within %v", o, deadline)
}
