// Package cluster boots complete in-process replica groups — engines,
// simulated network, clients — for integration tests, examples, and
// the benchmark harness. It also provides fault injection: crashing
// replicas, partitioning the network, and healing it again.
package cluster

import (
	"fmt"
	"time"

	"hybster/internal/client"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/minbft"
	"hybster/internal/pbft"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Replica is the surface the harness needs from any protocol engine.
type Replica interface {
	Start()
	Stop()
	ID() uint32
	LastExecuted() timeline.Order
}

// Factory builds one replica engine attached to the given endpoint.
// Each replica runs on its own enclave platform, as it would on its
// own machine.
type Factory func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error)

// Cluster is one in-process replica group.
type Cluster struct {
	Cfg config.Config
	Net *transport.Network

	factory   Factory
	wrap      func(id uint32, ep transport.Endpoint) transport.Endpoint
	platforms []*enclave.Platform
	replicas  []Replica
	crashed   []bool

	nextClient uint32
}

// Options configure a cluster.
type Options struct {
	Config config.Config
	// Profile is the simulated network profile (zero = ideal network).
	Profile transport.LinkProfile
	// Seed makes simulated loss reproducible.
	Seed int64
	// EnclaveCost is the SGX cost model for all replicas.
	EnclaveCost enclave.CostModel
	// WrapEndpoint, when set, decorates every replica endpoint before
	// it is handed to the factory (fault injection hooks in here).
	// Client endpoints are not wrapped.
	WrapEndpoint func(id uint32, ep transport.Endpoint) transport.Endpoint
}

// New boots a cluster with replicas produced by factory.
func New(opts Options, factory Factory) (*Cluster, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Cfg:        opts.Config,
		Net:        transport.NewNetwork(opts.Profile, opts.Seed),
		factory:    factory,
		wrap:       opts.WrapEndpoint,
		platforms:  make([]*enclave.Platform, opts.Config.N),
		replicas:   make([]Replica, opts.Config.N),
		crashed:    make([]bool, opts.Config.N),
		nextClient: crypto.ClientIDBase,
	}
	for id := uint32(0); int(id) < opts.Config.N; id++ {
		ep := c.endpoint(id)
		platform := enclave.NewPlatform(fmt.Sprintf("replica-%d", id))
		c.platforms[id] = platform
		r, err := factory(opts.Config, id, ep, platform)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.replicas[id] = r
	}
	for _, r := range c.replicas {
		r.Start()
	}
	return c, nil
}

// endpoint registers replica id on the network, applying the optional
// wrapper.
func (c *Cluster) endpoint(id uint32) transport.Endpoint {
	ep := c.Net.Endpoint(id)
	if c.wrap != nil {
		ep = c.wrap(id, ep)
	}
	return ep
}

// NewHybster boots a Hybster cluster (HybsterS or HybsterX depending
// on cfg.Pillars) running the applications produced by newApp.
func NewHybster(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return core.New(core.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// NewPBFT boots a PBFTcop or HybridPBFT cluster depending on
// cfg.Protocol.
func NewPBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return pbft.New(pbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// NewMinBFT boots a MinBFT cluster.
func NewMinBFT(opts Options, newApp func() statemachine.Application) (*Cluster, error) {
	return New(opts, func(cfg config.Config, id uint32, ep transport.Endpoint, platform *enclave.Platform) (Replica, error) {
		return minbft.New(minbft.Options{
			Config:      cfg,
			ID:          id,
			Endpoint:    ep,
			Application: newApp(),
			Platform:    platform,
			EnclaveCost: opts.EnclaveCost,
		})
	})
}

// Replica returns replica id (nil if crashed).
func (c *Cluster) Replica(id uint32) Replica {
	if c.crashed[id] {
		return nil
	}
	return c.replicas[id]
}

// NewClient attaches a fresh client to the cluster.
func (c *Cluster) NewClient(timeout time.Duration) (*client.Client, error) {
	id := c.nextClient
	c.nextClient++
	return client.New(client.Options{
		Config:   c.Cfg,
		ID:       id,
		Endpoint: c.Net.Endpoint(id),
		Timeout:  timeout,
	})
}

// Crash stops replica id and detaches it from the network, simulating
// a fail-stop fault. The replica is marked crashed and stopped before
// its links are cut, so no goroutine observes a half-dead replica.
func (c *Cluster) Crash(id uint32) {
	if c.crashed[id] {
		return
	}
	c.crashed[id] = true
	c.replicas[id].Stop()
	c.Net.Isolate(id)
}

// Restart brings a crashed replica back: its links are healed, a fresh
// endpoint replaces the dead registration, and a new engine instance is
// built by the cluster's factory on the replica's original enclave
// platform (the trusted subsystem survives the host crash, as SGX
// state sealed to the platform would). The restarted engine starts
// from an empty application state and must catch up via the
// protocol's own state transfer.
func (c *Cluster) Restart(id uint32) error {
	if !c.crashed[id] {
		return fmt.Errorf("cluster: replica %d is not crashed", id)
	}
	c.Net.HealNode(id)
	ep := c.endpoint(id)
	r, err := c.factory(c.Cfg, id, ep, c.platforms[id])
	if err != nil {
		return fmt.Errorf("cluster: restart replica %d: %w", id, err)
	}
	c.replicas[id] = r
	c.crashed[id] = false
	r.Start()
	return nil
}

// Hijack stops replica id and hands its network identity to the
// caller: the returned endpoint sends and receives as that replica.
// It is the entry point for Byzantine fault-injection tests — the
// attacker holds the replica's network position but not its trusted
// subsystem (enclave state dies with the replica, as it would under
// SGX when the host is compromised).
func (c *Cluster) Hijack(id uint32) transport.Endpoint {
	if !c.crashed[id] {
		c.crashed[id] = true
		c.replicas[id].Stop()
	}
	return c.Net.Endpoint(id)
}

// Partition cuts the link between two replicas.
func (c *Cluster) Partition(a, b uint32) { c.Net.Partition(a, b) }

// Isolate cuts replica a off from everyone.
func (c *Cluster) Isolate(a uint32) { c.Net.Isolate(a) }

// Heal repairs one link.
func (c *Cluster) Heal(a, b uint32) { c.Net.Heal(a, b) }

// HealAll repairs all partitions.
func (c *Cluster) HealAll() { c.Net.HealAll() }

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for id, r := range c.replicas {
		if r != nil && !c.crashed[id] {
			r.Stop()
		}
	}
	c.Net.Close()
}

// WaitExecuted blocks until every live replica executed at least
// order o, or the deadline passes.
func (c *Cluster) WaitExecuted(o timeline.Order, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		all := true
		for id, r := range c.replicas {
			if c.crashed[id] {
				continue
			}
			if r.LastExecuted() < o {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: not all replicas reached order %d within %v", o, deadline)
}
