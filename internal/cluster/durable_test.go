package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

func durableConfig() config.Config {
	return config.Config{
		Protocol:           config.HybsterS,
		N:                  3,
		Pillars:            1,
		BatchSize:          8,
		CheckpointInterval: 8,
		WindowSize:         32,
		ViewChangeTimeout:  300 * time.Millisecond,
		KeySeed:            "durable-test",
	}
}

func newDurableCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewHybster(Options{
		Config:   durableConfig(),
		DataRoot: t.TempDir(),
	}, func() statemachine.Application {
		return counter.New()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func commitN(t *testing.T, c *Cluster, n int) {
	t.Helper()
	cl, err := c.NewClient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < n; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
}

// TestColdRestartRecoversFromDisk pins the durable crash-recovery
// path: a replica with a data directory that crashes past a checkpoint
// comes back already holding its pre-crash execution state (recovered
// from the sealed counters and the write-ahead log), then catches the
// rest up via state transfer. Crash is a hard kill -9: no exact-value
// seal, no WAL flush, a torn log tail — so what recovery restores here
// is the genuinely durable state (the fsynced checkpoint plus whatever
// decisions the sync batch made stable), with counters resuming at the
// sealed horizon. A volatile restart would come back at order 0 — the
// assertion right after Restart distinguishes the two.
func TestColdRestartRecoversFromDisk(t *testing.T) {
	c := newDurableCluster(t)

	commitN(t, c, 12) // past the first checkpoint (interval 8)
	preCrash := c.replicas[1].LastExecuted()
	if preCrash < 8 {
		t.Fatalf("replica 1 only executed %d before crash; want >= 8", preCrash)
	}
	c.Crash(1)
	commitN(t, c, 12) // the group moves on without it

	if err := c.Restart(1); err != nil {
		t.Fatalf("cold restart: %v", err)
	}
	// Before any new traffic reaches it, the replica must already hold
	// at least the synced checkpoint — disk recovery, not state
	// transfer, put it there.
	if got := c.replicas[1].LastExecuted(); got < 8 {
		t.Fatalf("replica 1 at order %d right after cold restart; want >= 8 (recovered from disk)", got)
	}

	// And it still rejoins the live frontier.
	target := c.replicas[0].LastExecuted()
	deadline := time.Now().Add(15 * time.Second)
	for c.replicas[1].LastExecuted() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 stuck at %d, cluster at %d",
				c.replicas[1].LastExecuted(), target)
		}
		commitN(t, c, 2)
	}
}

// TestGracefulShutdownResumesWarm pins the other stop mode: Shutdown
// (the SIGTERM analogue) flushes the WAL and seals exact counter
// values, so the restarted replica resumes at its full pre-stop
// frontier — no tail loss, unlike the hard crash above.
func TestGracefulShutdownResumesWarm(t *testing.T) {
	c := newDurableCluster(t)

	commitN(t, c, 12)
	pre := c.replicas[1].LastExecuted()
	c.Shutdown(1)
	if err := c.Restart(1); err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	if got := c.replicas[1].LastExecuted(); got < pre {
		t.Fatalf("replica 1 at order %d after warm restart; want >= %d (nothing lost on graceful stop)", got, pre)
	}
}

// TestAmnesiaZombieRefused pins the zombie defense: a replica whose
// data directory is wiped between crash and restart must be refused
// (its platform's monotonic seal register proves counter state
// existed), recorded as a zombie, and the remaining group must keep
// committing without it.
func TestAmnesiaZombieRefused(t *testing.T) {
	c := newDurableCluster(t)

	commitN(t, c, 12)
	c.Crash(1)

	err := c.RestartAmnesia(1)
	if !errors.Is(err, trinx.ErrAmnesia) {
		t.Fatalf("amnesia restart returned %v; want trinx.ErrAmnesia", err)
	}
	if !c.Zombie(1) {
		t.Fatal("refused replica not marked zombie")
	}
	if got := c.Zombies(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Zombies() = %v; want [1]", got)
	}
	if c.Replica(1) != nil {
		t.Fatal("zombie listed as live")
	}
	// A later plain restart must fail the same way: the register still
	// outlives the (now empty) disk.
	if err := c.Restart(1); !errors.Is(err, trinx.ErrAmnesia) {
		t.Fatalf("plain restart after amnesia returned %v; want trinx.ErrAmnesia", err)
	}

	// f=1, N=3: the group stays live with the zombie down (crashed
	// replicas are skipped by WaitExecuted).
	commitN(t, c, 8)
	if err := c.WaitExecuted(timeline.Order(16), 10*time.Second); err != nil {
		t.Fatalf("group lost liveness with zombie down: %v", err)
	}
}

// TestStaleSealRefused pins the rollback defense at cluster level: an
// operator restoring an old backup of the seal directory (a snapshot
// from an earlier crash) must not get the replica back — the platform
// register is ahead of the restored blobs, so boot fails with
// trinx.ErrStaleSeal, a distinct error from amnesia.
func TestStaleSealRefused(t *testing.T) {
	c := newDurableCluster(t)

	commitN(t, c, 12)
	c.Shutdown(1) // clean stop seals exact counters (seq S1)

	sealDir := filepath.Join(c.DataDir(1), "seal")
	backup := t.TempDir()
	if err := copyDir(sealDir, backup); err != nil {
		t.Fatalf("backup seal dir: %v", err)
	}

	if err := c.Restart(1); err != nil {
		t.Fatalf("first cold restart: %v", err)
	}
	commitN(t, c, 12)
	c.Shutdown(1) // seals again (seq S2 > S1)

	// "Restore the backup": roll the seal blobs back to S1.
	if err := os.RemoveAll(sealDir); err != nil {
		t.Fatal(err)
	}
	if err := copyDir(backup, sealDir); err != nil {
		t.Fatalf("restore backup: %v", err)
	}

	err := c.Restart(1)
	if !errors.Is(err, trinx.ErrStaleSeal) {
		t.Fatalf("restart on rolled-back seal returned %v; want trinx.ErrStaleSeal", err)
	}
	if errors.Is(err, trinx.ErrAmnesia) {
		t.Fatal("rollback misreported as amnesia")
	}
	if c.Replica(1) != nil {
		t.Fatal("refused replica listed as live")
	}

	// The rest of the group is unaffected.
	commitN(t, c, 8)
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
