package cluster_test

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/client"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// byzCluster boots a Hybster group with replica 2 hijacked by an
// attacker: f = 1 is spent on the compromised replica, so the
// remaining correct majority must preserve both safety and liveness
// against everything the attacker sends.
func byzCluster(t *testing.T) (*cluster.Cluster, transport.Endpoint, *client.Client) {
	t.Helper()
	cfg := config.Default(config.HybsterS)
	cfg.CheckpointInterval = 8
	cfg.WindowSize = 32
	cfg.ViewChangeTimeout = 600 * time.Millisecond
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 1},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	attacker := c.Hijack(2)
	cl, err := c.NewClient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return c, attacker, cl
}

// expectProgress drives ops and asserts exact counter values — any
// equivocation or replay that slipped through would corrupt them.
func expectProgress(t *testing.T, cl *client.Client, from, to uint64) {
	t.Helper()
	for i := from; i <= to; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != i {
			t.Fatalf("op %d: counter = %d — state corrupted", i, v)
		}
	}
}

func forgedCert(kind trinx.Kind, issuer trinx.InstanceID, value uint64) trinx.Certificate {
	var mac crypto.MAC
	rand.New(rand.NewSource(int64(value))).Read(mac[:])
	return trinx.Certificate{Kind: kind, Issuer: issuer, Counter: 0, Value: value, Prev: value, MAC: mac}
}

func TestForgedPreparesRejected(t *testing.T) {
	_, attacker, cl := byzCluster(t)

	// The attacker impersonates the leader with forged certificates
	// for upcoming instances, trying to get garbage ordered.
	for o := timeline.Order(1); o <= 10; o++ {
		prep := &message.Prepare{
			View: 0, Order: o,
			Requests: []*message.Request{{Client: crypto.ClientIDBase + 9, Seq: 1, Payload: []byte{99}}},
			Cert:     forgedCert(trinx.Independent, trinx.MakeInstanceID(0, 0), uint64(timeline.Pack(0, o))),
		}
		transport.Multicast(attacker, 3, prep)
	}
	expectProgress(t, cl, 1, 10)
}

func TestForgedCommitsRejected(t *testing.T) {
	_, attacker, cl := byzCluster(t)

	// Commit flood with forged certificates for every window slot: if
	// any counted toward quorums, bogus batches could commit.
	for o := timeline.Order(1); o <= 20; o++ {
		com := &message.Commit{
			View: 0, Order: o, Replica: 2,
			BatchDigest: crypto.Hash([]byte("bogus")),
			Cert:        forgedCert(trinx.Independent, trinx.MakeInstanceID(2, 0), uint64(timeline.Pack(0, o))),
		}
		transport.Multicast(attacker, 3, com)
	}
	expectProgress(t, cl, 1, 10)
}

func TestForgedCheckpointCannotTruncate(t *testing.T) {
	_, attacker, cl := byzCluster(t)
	expectProgress(t, cl, 1, 4)

	// Fake "stable" checkpoints far in the future: if accepted, the
	// correct replicas would garbage collect instances they still
	// need.
	for _, o := range []timeline.Order{64, 128} {
		ck := &message.Checkpoint{
			Order: o, Replica: 2,
			StateDigest: crypto.Hash([]byte("fake state")),
			Cert:        forgedCert(trinx.Continuing, trinx.MakeInstanceID(2, 0), 0),
		}
		transport.Multicast(attacker, 3, ck)
	}
	expectProgress(t, cl, 5, 12)
}

func TestForgedViewChangeCannotElect(t *testing.T) {
	_, attacker, cl := byzCluster(t)
	expectProgress(t, cl, 1, 3)

	// Forged VIEW-CHANGEs for ever-higher views: without valid
	// continuing certificates they must all be rejected, and the group
	// must stay in view 0 making progress.
	for v := timeline.View(1); v <= 5; v++ {
		vc := &message.ViewChange{
			Replica: 2, Pillar: 0, From: 0, To: v,
			Cert: forgedCert(trinx.Continuing, trinx.MakeInstanceID(2, 0), uint64(timeline.ViewStart(v))),
		}
		transport.Multicast(attacker, 3, vc)
	}
	expectProgress(t, cl, 4, 10)
}

func TestReplayedMessagesHarmless(t *testing.T) {
	c, attacker, cl := byzCluster(t)

	// Record everything the correct replicas multicast... the
	// attacker sits on replica 2's endpoint, so it already receives
	// all protocol traffic. Replay it back verbatim, twice. The
	// handler runs on several link goroutines, so capture under a
	// mutex.
	var mu sync.Mutex
	var captured []message.Message
	attacker.Handle(func(from uint32, m message.Message) {
		switch m.(type) {
		case *message.Prepare, *message.Commit, *message.Checkpoint:
			mu.Lock()
			if len(captured) < 256 {
				captured = append(captured, m)
			}
			mu.Unlock()
		}
	})
	expectProgress(t, cl, 1, 8)

	mu.Lock()
	replay := append([]message.Message(nil), captured...)
	mu.Unlock()
	for round := 0; round < 2; round++ {
		for _, m := range replay {
			transport.Multicast(attacker, 3, m)
		}
	}
	expectProgress(t, cl, 9, 16)
	_ = c
}

func TestBogusClientRequestsIgnored(t *testing.T) {
	_, attacker, cl := byzCluster(t)

	// Unauthenticated "client" requests: replicas must not order them.
	for i := 0; i < 20; i++ {
		req := &message.Request{
			Client: crypto.ClientIDBase + 7, Seq: uint64(i), Payload: []byte{42},
			Auth: crypto.Authenticator{Sender: crypto.ClientIDBase + 7, MACs: make([]crypto.MAC, 3)},
		}
		transport.Multicast(attacker, 3, req)
	}
	expectProgress(t, cl, 1, 8)
}

func TestGarbageMessageFloodTolerated(t *testing.T) {
	_, attacker, cl := byzCluster(t)
	rng := rand.New(rand.NewSource(7))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			switch rng.Intn(4) {
			case 0:
				transport.Multicast(attacker, 3, &message.Prepare{
					View: timeline.View(rng.Intn(3)), Order: timeline.Order(rng.Intn(40)),
					Cert: forgedCert(trinx.Independent, trinx.MakeInstanceID(uint32(rng.Intn(3)), 0), rng.Uint64()),
				})
			case 1:
				transport.Multicast(attacker, 3, &message.Commit{
					View: 0, Order: timeline.Order(rng.Intn(40)), Replica: 2,
					Cert: forgedCert(trinx.Independent, trinx.MakeInstanceID(2, 0), rng.Uint64()),
				})
			case 2:
				transport.Multicast(attacker, 3, &message.NewView{
					View: timeline.View(rng.Intn(5)), Pillar: 0,
					Cert: forgedCert(trinx.Continuing, trinx.MakeInstanceID(1, 0xffff), 0),
				})
			case 3:
				transport.Multicast(attacker, 3, &message.StateReply{
					Replica: 2, CkptOrder: timeline.Order(rng.Intn(100)),
					Snapshot: []byte("evil"), ReplyVector: []byte("evil"),
				})
			}
		}
	}()
	expectProgress(t, cl, 1, 12)
	<-done
}

func TestHijackedReplicaDoesNotBlockViewChange(t *testing.T) {
	// The attacker holds replica 2 AND the leader crashes? That would
	// be f=2 > f — instead: attacker is the leader's position. Hijack
	// replica 0 (the view-0 leader) in a fresh cluster and verify the
	// correct replicas 1,2 elect a new view despite attacker noise.
	cfg := config.Default(config.HybsterS)
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Seed: 2},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	attacker := c.Hijack(0)
	go func() {
		for i := 0; i < 50; i++ {
			transport.Multicast(attacker, 3, &message.Prepare{
				View: 0, Order: timeline.Order(i + 1),
				Cert: forgedCert(trinx.Independent, trinx.MakeInstanceID(0, 0), uint64(timeline.Pack(0, timeline.Order(i+1)))),
			})
			time.Sleep(5 * time.Millisecond)
		}
	}()

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	expectProgress(t, cl, 1, 8)
}
