package core

import (
	"sync/atomic"

	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
)

// Events delivered to the execution mailbox.
type (
	// evExec is a committed instance from a pillar.
	evExec struct {
		order timeline.Order
		batch []*message.Request
	}
	// evInstallState applies a verified state transfer.
	evInstallState struct {
		ckpt     timeline.Order
		snapshot []byte
		rv       []byte
		done     chan error
	}
)

// execLoop is the execution stage: it delivers committed instances to
// the application strictly in order-number sequence, answers clients,
// and emits checkpoint digests at interval boundaries (§5.3.2,
// EXEC-REQUEST / CK-REACHED in Fig. 4).
type execLoop struct {
	e     *Engine
	inbox *cop.Mailbox[any]
	x     *statemachine.Executor

	// last mirrors the executor's cursor for lock-free reads by the
	// watchdog and tests.
	last atomic.Uint64
}

func newExecLoop(e *Engine, app statemachine.Application) *execLoop {
	return &execLoop{e: e, inbox: cop.NewMailbox[any](), x: statemachine.NewExecutor(app)}
}

func (l *execLoop) lastExecuted() timeline.Order {
	return timeline.Order(l.last.Load())
}

// nextNeeded returns the order number execution is waiting for; the
// coordinator uses it for gap detection.
func (l *execLoop) nextNeeded() timeline.Order {
	return timeline.Order(l.last.Load()) + 1
}

func (l *execLoop) run() {
	for {
		ev, ok := l.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case evExec:
			if l.x.Buffer(v.order, v.batch) {
				l.drain()
			}
		case evInstallState:
			err := l.x.InstallState(v.ckpt, v.snapshot, v.rv)
			if err == nil {
				l.last.Store(uint64(v.ckpt))
				l.drain()
			}
			v.done <- err
		}
	}
}

// drain delivers every contiguous instance, stepping one at a time so
// checkpoint digests are taken exactly at interval boundaries.
func (l *execLoop) drain() {
	progressed := false
	for {
		ex := l.x.Step()
		if ex == nil {
			break
		}
		progressed = true
		l.last.Store(uint64(ex.Order))
		l.e.met.execBatches.Inc()
		l.e.met.execRequests.Add(uint64(len(ex.Replies)))
		l.e.trace(telemetry.EvExec, 0, uint64(ex.Order), 0, "")
		l.reply(ex)
		if l.e.cfg.IsCheckpoint(ex.Order) {
			l.e.coord.inbox.Put(evCkptCandidate{
				order:    ex.Order,
				digest:   l.x.StateDigest(),
				snapshot: l.x.Snapshot(),
				rv:       l.x.ReplyVector(),
			})
		}
	}
	if progressed {
		l.e.noteProgress(l.x.Pending() > 0)
	}
}

// reply answers every client served by the delivered instance; replies
// are authenticated under the replica-client pair key.
func (l *execLoop) reply(ex *statemachine.Executed) {
	for _, r := range ex.Replies {
		rep := &message.Reply{Replica: l.e.id, Client: r.Client, Seq: r.Seq, Result: r.Result}
		d := rep.Digest()
		rep.MAC = l.e.ks.KeyFor(r.Client).Sum(d[:])
		_ = l.e.ep.Send(r.Client, rep)
	}
}

// stateDigestOf exposes digest computation for the coordinator when
// serving state (unused hot path helper kept for tests).
func combineStateDigest(snapshot, rv []byte) crypto.Digest {
	return crypto.Combine(crypto.Hash(snapshot), crypto.Hash(rv))
}
