package core

import (
	"sync/atomic"

	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
)

// Events delivered to the execution mailbox.
type (
	// evExec is a committed instance from a pillar.
	evExec struct {
		order timeline.Order
		batch []*message.Request
		// credit is the pillar whose flow-control slot this instance
		// holds (-1 for foreign proposals). The slot is returned when
		// execution dequeues the instance, not when it commits: dispatch
		// is thereby paced by the shared execution stage — the real
		// bottleneck — so fast-committing partitioned pillars accumulate
		// full batches instead of flushing on every quick commit.
		credit int32
	}
	// evInstallState applies a verified state transfer.
	evInstallState struct {
		ckpt     timeline.Order
		snapshot []byte
		rv       []byte
		done     chan error
	}
)

// execLoop is the execution stage: it delivers committed instances to
// the application strictly in order-number sequence, answers clients,
// and emits checkpoint digests at interval boundaries (§5.3.2,
// EXEC-REQUEST / CK-REACHED in Fig. 4).
type execLoop struct {
	e     *Engine
	inbox *cop.Mailbox[any]
	x     *statemachine.Executor

	// last mirrors the executor's cursor for lock-free reads by the
	// watchdog and tests.
	last atomic.Uint64
}

func newExecLoop(e *Engine, app statemachine.Application) *execLoop {
	return &execLoop{e: e, inbox: cop.NewMailbox[any](), x: statemachine.NewExecutor(app)}
}

func (l *execLoop) lastExecuted() timeline.Order {
	return timeline.Order(l.last.Load())
}

// nextNeeded returns the order number execution is waiting for; the
// coordinator uses it for gap detection.
func (l *execLoop) nextNeeded() timeline.Order {
	return timeline.Order(l.last.Load()) + 1
}

func (l *execLoop) run() {
	for {
		ev, ok := l.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case evExec:
			if v.credit >= 0 {
				l.e.seq.credit(uint32(v.credit), len(v.batch))
			}
			if l.x.Buffer(v.order, v.batch) {
				l.drain()
			}
		case evInstallState:
			err := l.x.InstallState(v.ckpt, v.snapshot, v.rv)
			if err == nil {
				l.last.Store(uint64(v.ckpt))
				l.drain()
			}
			v.done <- err
		}
	}
}

// drain delivers every contiguous instance, stepping one at a time so
// checkpoint digests are taken exactly at interval boundaries.
func (l *execLoop) drain() {
	progressed := false
	for {
		ex := l.x.Step()
		if ex == nil {
			break
		}
		progressed = true
		l.last.Store(uint64(ex.Order))
		l.e.met.execBatches.Inc()
		l.e.met.execRequests.Add(uint64(len(ex.Replies)))
		l.e.trace(telemetry.EvExec, 0, uint64(ex.Order), 0, "")
		l.reply(ex)
		if l.e.cfg.IsCheckpoint(ex.Order) {
			// Hand the coordinator a lazy view of the boundary instead of
			// serializing the application here: the snapshot encode and
			// digest hashes run on the coordinator loop, so delivery of
			// the next instance is never stalled behind a state copy.
			l.e.coord.inbox.Put(l.x.CheckpointView())
		}
	}
	if progressed {
		l.e.noteProgress(l.x.Pending() > 0)
	}
}

// reply hands every client served by the delivered instance to the
// parallel reply stage; MAC computation and the sends happen there,
// off the execution loop (reply authentication is independent per
// client and needs no ordering beyond the per-client FIFO the stage
// guarantees).
func (l *execLoop) reply(ex *statemachine.Executed) {
	// A single-reply instance (unbatched request) goes inline when the
	// shard is quiet: at light load the worker wakeup would dominate
	// the reply latency.
	if len(ex.Replies) == 1 {
		r := ex.Replies[0]
		l.e.replies.SubmitInline(r.Client, r.Seq, r.Result)
		return
	}
	for _, r := range ex.Replies {
		l.e.replies.Submit(r.Client, r.Seq, r.Result)
	}
}

// stateDigestOf exposes digest computation for the coordinator when
// serving state (unused hot path helper kept for tests).
func combineStateDigest(snapshot, rv []byte) crypto.Digest {
	return crypto.Combine(crypto.Hash(snapshot), crypto.Hash(rv))
}
