package core_test

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybster/internal/apps/counter"
	"hybster/internal/cluster"
	"hybster/internal/config"
	"hybster/internal/core"
	"hybster/internal/statemachine"
	"hybster/internal/transport"
)

func testConfig(pillars int) config.Config {
	p := config.HybsterS
	if pillars > 1 {
		p = config.HybsterX
	}
	cfg := config.Default(p)
	cfg.Pillars = pillars
	cfg.CheckpointInterval = 16
	cfg.WindowSize = 64
	cfg.ViewChangeTimeout = 400 * time.Millisecond
	return cfg
}

func newCounterCluster(t *testing.T, cfg config.Config, profile transport.LinkProfile) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewHybster(cluster.Options{Config: cfg, Profile: profile, Seed: 1},
		func() statemachine.Application { return counter.New() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func invokeN(t *testing.T, c *cluster.Cluster, clients, perClient int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		cl, err := c.NewClient(800 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if _, err := cl.Invoke([]byte{1}, false); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", cl.ID(), i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSequentialBasicOrdering(t *testing.T) {
	c := newCounterCluster(t, testConfig(1), transport.LinkProfile{})
	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var last uint64
	for i := 1; i <= 20; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		v := binary.BigEndian.Uint64(res)
		if v != uint64(i) {
			t.Fatalf("op %d: counter = %d (last %d)", i, v, last)
		}
		last = v
	}
}

func TestParallelPillarsOrdering(t *testing.T) {
	c := newCounterCluster(t, testConfig(3), transport.LinkProfile{})
	invokeN(t, c, 8, 20)
	if err := c.WaitExecuted(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestManyRequestsCrossCheckpoints(t *testing.T) {
	cfg := testConfig(2)
	cfg.CheckpointInterval = 8
	cfg.WindowSize = 32
	c := newCounterCluster(t, cfg, transport.LinkProfile{})
	// 4 clients × 50 ops each with batch size 16 crosses several
	// checkpoint intervals and exercises window advancement.
	invokeN(t, c, 4, 50)
}

func TestRotationSpreadsProposals(t *testing.T) {
	cfg := testConfig(2)
	cfg.RotateLeader = true
	c := newCounterCluster(t, cfg, transport.LinkProfile{})
	invokeN(t, c, 6, 20)
}

func TestReplicasConvergeOnSameValue(t *testing.T) {
	c := newCounterCluster(t, testConfig(2), transport.LinkProfile{})
	invokeN(t, c, 4, 25)

	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Invoke(nil, true) // read
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(res); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestDeliveryWithNetworkLatency(t *testing.T) {
	c := newCounterCluster(t, testConfig(1), transport.LinkProfile{Latency: 2 * time.Millisecond})
	cl, err := c.NewClient(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDuplicateRequestNotReExecuted(t *testing.T) {
	c := newCounterCluster(t, testConfig(1), transport.LinkProfile{})
	// Short client timeout forces retransmissions; the reply cache
	// must keep the counter exact.
	cl, err := c.NewClient(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d — duplicate execution", i, v)
		}
	}
}

func TestLeaderCrashViewChange(t *testing.T) {
	cfg := testConfig(1)
	c := newCounterCluster(t, cfg, transport.LinkProfile{})
	cl, err := c.NewClient(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	c.Crash(0) // leader of view 0

	// The remaining two replicas must elect replica 1 and continue.
	for i := 6; i <= 12; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d after leader crash: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d", i, v)
		}
	}
}

func TestLeaderCrashParallelPillars(t *testing.T) {
	cfg := testConfig(3)
	c := newCounterCluster(t, cfg, transport.LinkProfile{})
	invokeN(t, c, 4, 10)

	c.Crash(0)

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d after crash: %v", i, err)
		}
	}
}

func TestIsolatedReplicaCatchesUpViaStateTransfer(t *testing.T) {
	cfg := testConfig(1)
	cfg.CheckpointInterval = 4
	cfg.WindowSize = 8
	c := newCounterCluster(t, cfg, transport.LinkProfile{})

	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	// Replica 2 disconnects; the others proceed far beyond its window.
	c.Isolate(2)
	for i := 0; i < 30; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d during isolation: %v", i, err)
		}
	}
	target := c.Replica(0).LastExecuted()

	c.HealAll()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Replica(2).LastExecuted() >= target {
			return
		}
		// Keep traffic flowing so retransmission and checkpoints give
		// the laggard something to catch up to.
		_, _ = cl.Invoke([]byte{1}, false)
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica 2 stuck at %d, want >= %d", c.Replica(2).LastExecuted(), target)
}

func TestViewChangePreservesExecutedRequests(t *testing.T) {
	// The scenario of Fig. 3: requests committed in view v must
	// survive into view v+1 even when a replica missed them.
	cfg := testConfig(1)
	c := newCounterCluster(t, cfg, transport.LinkProfile{})

	cl, err := c.NewClient(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	// Partition replica 2 from the leader, order a few more requests
	// with just {0,1}, then crash the leader. Replica 2 must learn the
	// missed requests through the view change before new ones execute.
	c.Partition(0, 2)
	for i := 6; i <= 8; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d during partition: %v", i, err)
		}
	}
	c.Crash(0)
	c.HealAll()

	for i := 9; i <= 14; i++ {
		res, err := cl.Invoke([]byte{1}, false)
		if err != nil {
			t.Fatalf("op %d after crash: %v", i, err)
		}
		if v := binary.BigEndian.Uint64(res); v != uint64(i) {
			t.Fatalf("op %d: counter = %d — committed request lost or duplicated", i, v)
		}
	}
}

func TestMultiRoundViewChangeEscalation(t *testing.T) {
	// Two-round view change (§5.2.3, view-change certificates): with
	// n = 5 (f = 2), crash both the view-0 leader and the designated
	// view-1 leader. The survivors first abort into view 1, find its
	// leader dead, and may escalate to view 2 only once they hold a
	// view-change certificate (a quorum of VIEW-CHANGEs) for view 1.
	cfg := testConfig(1)
	cfg.N = 5
	cfg.ViewChangeTimeout = 300 * time.Millisecond
	c := newCounterCluster(t, cfg, transport.LinkProfile{})

	cl, err := c.NewClient(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatal(err)
		}
	}

	c.Crash(1) // leader of the upcoming view 1
	c.Crash(0) // leader of view 0 — forces the view change

	deadline := time.Now().Add(20 * time.Second)
	ok := false
	for time.Now().Before(deadline) {
		if _, err := cl.Invoke([]byte{1}, false); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("no progress after two-round view change")
	}
	// The group must have passed through view 1 into view >= 2, led by
	// replica 2.
	e := c.Replica(2).(*core.Engine)
	if v := e.View(); v < 2 {
		t.Fatalf("view = %d, want >= 2", v)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d in view 2: %v", i, err)
		}
	}
}

func TestFiveReplicasTolerateTwoCrashes(t *testing.T) {
	// n = 2f+1 = 5 tolerates f = 2: crash two replicas (including the
	// leader) and keep ordering with the remaining quorum of 3.
	cfg := testConfig(2)
	cfg.N = 5
	c := newCounterCluster(t, cfg, transport.LinkProfile{})
	invokeN(t, c, 3, 5)

	c.Crash(4) // a follower
	invokeN(t, c, 3, 5)

	c.Crash(0) // the leader → view change with 3 of 5

	cl, err := c.NewClient(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		if _, err := cl.Invoke([]byte{1}, false); err != nil {
			t.Fatalf("op %d after two crashes: %v", i, err)
		}
	}
}
