package core

import (
	"fmt"
	"path/filepath"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
	"hybster/internal/wal"
)

// Certifier is the trusted-counter surface the engine certifies and
// verifies with. *trinx.TrInX satisfies it for volatile operation;
// *trinx.DurableTrInX adds horizon sealing for crash durability.
type Certifier interface {
	CreateContinuing(tc uint32, value uint64, msg crypto.Digest) (trinx.Certificate, error)
	CreateIndependent(tc uint32, value uint64, msg crypto.Digest) (trinx.Certificate, error)
	CreateTrustedMAC(tc uint32, msg crypto.Digest) (trinx.Certificate, error)
	Verify(cert trinx.Certificate, msg crypto.Digest) error
	Destroy()
}

// durability is the engine's crash-recovery state: the write-ahead log
// plus the durable counter instances to seal on shutdown. nil when the
// engine runs without a data dir (the volatile harness configuration).
type durability struct {
	log      *wal.Log
	seals    *wal.SealStore
	durables []*trinx.DurableTrInX
	// recovered is what the WAL held at boot, applied by restore().
	recovered wal.Recovered
}

// openDurability brings up the durable substrate under dataDir:
// the seal store first (counter safety gates everything else), then the
// log. Counter instances are created by the caller, which appends them
// via addDurable.
func openDurability(dataDir string, tel *telemetry.Telemetry) (*durability, error) {
	seals, err := wal.NewSealStore(filepath.Join(dataDir, "seal"))
	if err != nil {
		return nil, err
	}
	log, recovered, err := wal.Open(filepath.Join(dataDir, "wal"), wal.Options{Telemetry: tel})
	if err != nil {
		return nil, err
	}
	return &durability{log: log, seals: seals, recovered: recovered}, nil
}

// newCertifier creates the counter instance for one engine component:
// a durable one when the engine has a data dir, a volatile one
// otherwise. Durable creation fails with trinx.ErrStaleSeal on a
// rolled-back seal and trinx.ErrAmnesia when the platform's seal
// register proves state existed that the disk no longer holds.
func (e *Engine) newCertifier(opts Options, pillar uint32, key crypto.Key) (Certifier, error) {
	id := trinx.MakeInstanceID(opts.ID, pillar)
	if e.dur == nil {
		return trinx.New(opts.Platform, id, numCounters, key, opts.EnclaveCost).Instrument(opts.Telemetry), nil
	}
	d, err := trinx.NewDurable(opts.Platform, id, numCounters, key, opts.EnclaveCost, e.dur.seals, 0)
	if err != nil {
		return nil, fmt.Errorf("core: recover counters of %s: %w", id, err)
	}
	d.Instrument(opts.Telemetry)
	e.dur.durables = append(e.dur.durables, d)
	return d, nil
}

// restore applies recovered WAL state to the freshly built engine.
// It runs in New, before Start launches any goroutine, so it mutates
// component state directly: install the last stable checkpoint, replay
// the decision tail into the executor, and slide pillar windows.
// Anything past the synced tail is fetched later through the normal
// state-transfer path.
func (e *Engine) restore() {
	rec := e.dur.recovered
	e.trace(telemetry.EvRecovery, 0, uint64(e.exec.last.Load()),
		0, fmt.Sprintf("wal replay: %d decisions", len(rec.Decisions)))
	if ck := rec.Checkpoint; ck != nil {
		e.coord.lastStable = stableCkpt{
			order: ck.Order, digest: ck.Digest, proof: ck.Proof,
			snapshot: ck.Snapshot, rv: ck.ReplyVector,
		}
		e.stableOrd.Store(uint64(ck.Order))
		for _, p := range e.pillars {
			p.advance(ck.Order)
		}
	}
	// Execution restarts from the newest snapshot-bearing checkpoint
	// (Base), which may trail Checkpoint when stability outran local
	// execution before the crash; the decision tail bridges the rest.
	if base := rec.Base; base != nil {
		if err := e.exec.x.InstallState(base.Order, base.Snapshot, base.ReplyVector); err == nil {
			e.exec.last.Store(uint64(base.Order))
		}
	}
	// Replay the decision tail. Buffer tolerates gaps (a hole the sync
	// batch lost); execution stops at the first gap and the executor
	// keeps the rest pending until ordering or state transfer fills it.
	for i := range rec.Decisions {
		d := &rec.Decisions[i]
		if !e.exec.x.Buffer(d.Order, d.Requests) {
			continue
		}
	}
	for {
		ex := e.exec.x.Step()
		if ex == nil {
			break
		}
		// No client replies during replay: the original execution sent
		// them, and clients retransmit if theirs got lost.
		e.exec.last.Store(uint64(ex.Order))
	}
	for _, p := range e.pillars {
		if last := timeline.Order(e.exec.last.Load()); last > 0 {
			// The pillar cannot re-certify replayed instances (counters
			// resumed past them); move its cursor beyond the replay so
			// fresh ordering starts cleanly after it.
			if p.cursor <= last {
				p.cursor = p.firstClassOrder(last)
			}
		}
	}
}

// logDecision appends a committed instance to the WAL (no-op without a
// data dir). Append errors are not fatal: the WAL is a warm-recovery
// accelerator, safety rests on the sealed counters.
func (e *Engine) logDecision(v timeline.View, o timeline.Order, batch []*message.Request) {
	if e.dur == nil {
		return
	}
	_ = e.dur.log.AppendDecision(&wal.DecisionRec{View: v, Order: o, Requests: batch})
}

// logCheckpoint appends a stable checkpoint to the WAL, which also
// garbage-collects segments the checkpoint subsumes.
func (e *Engine) logCheckpoint(st stableCkpt) {
	if e.dur == nil {
		return
	}
	_ = e.dur.log.AppendCheckpoint(&wal.CheckpointRec{
		Order: st.order, Digest: st.digest,
		Snapshot: st.snapshot, ReplyVector: st.rv, Proof: st.proof,
	})
}

// shutdownDurability flushes the WAL and seals exact counter values so
// a clean stop recovers warm (no horizon jump). Called from Stop after
// the event loops drained.
func (e *Engine) shutdownDurability() {
	if e.dur == nil {
		return
	}
	for _, d := range e.dur.durables {
		_ = d.SealNow()
	}
	_ = e.dur.log.Close()
}

// abandonDurability is shutdownDurability's kill -9 twin, called from
// Kill: no exact-value seal (the next boot must take the horizon
// jump), and the WAL is abandoned with its unsynced tail torn so
// recovery faces the same artifact a real crash leaves.
func (e *Engine) abandonDurability() {
	if e.dur == nil {
		return
	}
	_ = e.dur.log.Abandon()
}
