package core

import (
	"hybster/internal/checkpoint"
	"hybster/internal/cop"
	"hybster/internal/message"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Events delivered to pillar mailboxes (besides inbound protocol
// messages wrapped in inMsg).
type (
	// evPropose instructs the pillar to propose a batch for an order
	// number this replica owns.
	evPropose struct {
		view  timeline.View
		order timeline.Order
		batch []*message.Request
	}
	// evCkptDue tells the owning pillar to run the checkpoint protocol
	// instance for the given digest (execution stage reached the
	// interval boundary).
	evCkptDue struct {
		order  timeline.Order
		digest [32]byte
	}
	// evAdvance announces a stable checkpoint: slide the window.
	evAdvance struct{ order timeline.Order }
	// evCollectVC asks the pillar for its part of a VIEW-CHANGE
	// message and suspends ordering (§5.3.3, local view-change
	// preparation).
	evCollectVC struct {
		from      timeline.View
		to        timeline.View
		ckptOrder timeline.Order
		ckptDig   [32]byte
		ckptProof []*message.Checkpoint
		// learned carries coordinator-learned prepares of this
		// pillar's class to propagate.
		learned []*message.Prepare
		reply   chan *message.ViewChange
	}
	// evRepropose asks the (new-leader) pillar to certify re-proposals
	// for the new view.
	evRepropose struct {
		view  timeline.View
		props []reProposal
		reply chan []*message.Prepare
	}
	// evInstallView installs a stable new view on the pillar.
	evInstallView struct {
		view      timeline.View
		startCkpt timeline.Order
		// prepares are the verified re-proposals of this pillar's
		// class, ascending.
		prepares []*message.Prepare
		leader   bool // true when this replica produced the prepares
	}
	// evTick drives retransmission.
	evTick struct{}
)

// reProposal is one instance the new leader transfers into its view.
type reProposal struct {
	order timeline.Order
	batch []*message.Request
}

// pillar is one processing unit of the consensus-oriented
// parallelization: it owns the consensus instances of its order-number
// class (o mod P == idx), a private TrInX instance, a private ordering
// window, and a private checkpoint tracker for the checkpoint
// instances it is responsible for. All state is confined to the run
// goroutine.
type pillar struct {
	e     *Engine
	idx   uint32
	tx    Certifier
	inbox *cop.Mailbox[any]
	met   pillarMetrics

	view    timeline.View
	aborted bool
	win     *window
	ckpts   *checkpoint.Tracker[*message.Checkpoint]

	// cursor is the next class order this pillar will certify; the
	// trusted counter forces ascending certification within the
	// pillar's timeline.
	cursor timeline.Order
	// pendingProps holds own proposals waiting for the cursor.
	pendingProps map[timeline.Order]evPropose
	// pendingPreps holds verified foreign prepares waiting for the
	// cursor.
	pendingPreps map[timeline.Order]*message.Prepare
	// ownMsg retains this pillar's sent ordering message per order
	// for retransmission; garbage collected with the window.
	ownMsg map[timeline.Order]message.Message
	// ownCkpt retains own checkpoint announcements for retransmission.
	ownCkpt map[timeline.Order]*message.Checkpoint
}

// window aliases order.Window; kept as a named type local to the
// package for brevity.
type window = orderWindow

func newPillar(e *Engine, idx uint32, tx Certifier) *pillar {
	p := &pillar{
		e:            e,
		idx:          idx,
		tx:           tx,
		inbox:        cop.NewMailbox[any](),
		met:          newPillarMetrics(e.met.tel, idx),
		win:          newOrderWindow(e.cfg.WindowSize, e.cfg.Quorum()),
		ckpts:        checkpoint.NewTracker[*message.Checkpoint](e.cfg.Quorum()),
		pendingProps: make(map[timeline.Order]evPropose),
		pendingPreps: make(map[timeline.Order]*message.Prepare),
		ownMsg:       make(map[timeline.Order]message.Message),
		ownCkpt:      make(map[timeline.Order]*message.Checkpoint),
	}
	p.cursor = p.firstClassOrder(0)
	return p
}

// firstClassOrder returns the smallest order > after belonging to this
// pillar's class.
func (p *pillar) firstClassOrder(after timeline.Order) timeline.Order {
	o := after + 1
	for p.e.cfg.PillarOf(o)%uint32(len(p.e.pillars)) != p.idx {
		o++
	}
	return o
}

// run is the pillar event loop.
func (p *pillar) run() {
	// Drain the mailbox in batches: under load one lock round-trip
	// fetches a burst of events instead of paying the lock per event.
	batch := make([]any, 0, 32)
	for {
		events, ok := p.inbox.GetBatch(batch[:0])
		if !ok {
			return
		}
		for _, ev := range events {
			p.handleEvent(ev)
		}
	}
}

func (p *pillar) handleEvent(ev any) {
	switch v := ev.(type) {
	case inMsg:
		p.handleMessage(v)
	case evPropose:
		p.handlePropose(v)
	case evCkptDue:
		p.handleCkptDue(v)
	case evAdvance:
		p.advance(v.order)
	case evCollectVC:
		p.handleCollectVC(v)
	case evRepropose:
		p.handleRepropose(v)
	case evInstallView:
		p.handleInstallView(v)
	case evTick:
		p.handleTick()
	}
}

func (p *pillar) handleMessage(in inMsg) {
	switch v := in.msg.(type) {
	case *message.Prepare:
		p.handlePrepare(in.from, v, in.verified)
	case *message.Commit:
		p.handleCommit(in.from, v)
	case *message.Checkpoint:
		p.handleCheckpoint(in.from, v)
	}
}

// handlePrepare processes a leader proposal for one of this pillar's
// instances. authVerified reports that the parallel verify stage has
// already checked the batch's client authenticators.
func (p *pillar) handlePrepare(from uint32, m *message.Prepare, authVerified bool) {
	if m.View != p.view || p.aborted {
		return
	}
	if m.Order > p.win.High() {
		p.e.coord.inbox.Put(evBehind{order: m.Order})
		return
	}
	if !p.win.InWindow(m.Order) || m.Order < p.cursor {
		return // already processed or obsolete
	}
	if _, dup := p.pendingPreps[m.Order]; dup {
		return
	}
	if err := p.e.verifyPrepare(p.tx, m, from, authVerified); err != nil {
		return
	}
	p.e.noteWork()
	p.pendingPreps[m.Order] = m
	p.processReady()
}

// handleCommit processes a follower acknowledgment.
func (p *pillar) handleCommit(from uint32, m *message.Commit) {
	if m.View != p.view || p.aborted {
		return
	}
	if m.Order > p.win.High() {
		p.e.coord.inbox.Put(evBehind{order: m.Order})
		return
	}
	if !p.win.InWindow(m.Order) {
		return
	}
	if m.Replica != from {
		return
	}
	if err := p.e.verifyCommit(p.tx, m); err != nil {
		return
	}
	s := p.win.AddCommit(m)
	p.maybeDeliver(s)
}

// handlePropose certifies and multicasts an own proposal once the
// cursor permits.
func (p *pillar) handlePropose(ev evPropose) {
	if ev.view != p.view || p.aborted {
		// Stale proposal from before a view change; requests are
		// re-proposed by the sequencer after the new view installs,
		// so return the flow-control credit and drop.
		p.e.seq.credit(p.idx, len(ev.batch))
		return
	}
	if ev.order < p.cursor || !p.win.InWindow(ev.order) {
		p.e.seq.credit(p.idx, len(ev.batch))
		return
	}
	p.pendingProps[ev.order] = ev
	p.processReady()
}

// processReady certifies instances in ascending class order: own
// proposals become PREPAREs, foreign proposals are acknowledged with
// COMMITs. The cursor only advances when the next class instance is
// actionable — the per-pillar virtual timeline of §3.
func (p *pillar) processReady() {
	for {
		o := p.cursor
		if o > p.win.High() {
			return
		}
		if ev, ok := p.pendingProps[o]; ok {
			delete(p.pendingProps, o)
			p.sendPrepare(ev)
		} else if m, ok := p.pendingPreps[o]; ok {
			delete(p.pendingPreps, o)
			p.sendCommit(m)
		} else {
			return
		}
		p.cursor = p.firstClassOrder(o)
	}
}

// sendPrepare issues the independent counter certificate
// τ(r(u), O, v|o, −) and multicasts the proposal (§5.2.1).
func (p *pillar) sendPrepare(ev evPropose) {
	prep := &message.Prepare{View: ev.view, Order: ev.order, Requests: ev.batch}
	cert, err := p.tx.CreateIndependent(counterO, uint64(timeline.Pack(ev.view, ev.order)), prep.Digest())
	if err != nil {
		p.e.seq.credit(p.idx, len(ev.batch))
		return // counter already beyond this instance (view changed)
	}
	prep.Cert = cert
	s := p.win.SetPrepare(prep)
	p.ownMsg[ev.order] = prep
	p.met.prepares.Inc()
	bd := prep.BatchDigest()
	p.e.traceD(telemetry.EvPropose, uint64(ev.view), uint64(ev.order), p.idx, bd[:], "")
	transport.Multicast(p.e.ep, p.e.cfg.N, prep)
	p.maybeDeliver(s)
}

// sendCommit acknowledges a verified foreign prepare with an
// independent counter certificate over the same value.
func (p *pillar) sendCommit(m *message.Prepare) {
	s := p.win.SetPrepare(m)
	if s == nil {
		return
	}
	com := &message.Commit{View: m.View, Order: m.Order, Replica: p.e.id, BatchDigest: s.BatchDigest}
	cert, err := p.tx.CreateIndependent(counterO, uint64(timeline.Pack(m.View, m.Order)), com.Digest())
	if err != nil {
		return
	}
	com.Cert = cert
	s.AddOwnAck(p.e.id)
	p.win.Refresh(s)
	p.ownMsg[m.Order] = com
	p.met.commits.Inc()
	p.e.traceD(telemetry.EvCommit, uint64(m.View), uint64(m.Order), p.idx, com.BatchDigest[:], "")
	transport.Multicast(p.e.ep, p.e.cfg.N, com)
	p.maybeDeliver(s)
}

// maybeDeliver forwards a freshly committed instance to the execution
// stage and returns flow-control credit for own proposals.
func (p *pillar) maybeDeliver(s *slot) {
	if s == nil || !s.Committed || s.Executed {
		return
	}
	s.Executed = true
	p.met.committed.Inc()
	p.e.traceD(telemetry.EvDeliver, uint64(s.Prepare.View), uint64(s.Order), p.idx, s.BatchDigest[:], "")
	p.e.logDecision(s.Prepare.View, s.Order, s.Prepare.Requests)
	credit := int32(-1)
	if s.Prepare.Cert.Issuer.Replica() == p.e.id {
		credit = int32(p.idx)
	}
	p.e.exec.inbox.Put(evExec{order: s.Order, batch: s.Prepare.Requests, credit: credit})
}

// handleCkptDue runs this pillar's checkpoint protocol instance
// (§5.3.2): announce the digest with a trusted MAC certificate.
func (p *pillar) handleCkptDue(ev evCkptDue) {
	ck := &message.Checkpoint{Order: ev.order, Replica: p.e.id, StateDigest: ev.digest}
	cert, err := p.tx.CreateTrustedMAC(counterM, ck.Digest())
	if err != nil {
		return
	}
	ck.Cert = cert
	p.ownCkpt[ev.order] = ck
	p.e.met.ckptsOwn.Inc()
	p.e.traceD(telemetry.EvCheckpoint, uint64(p.view), uint64(ev.order), p.idx, ev.digest[:], "")
	transport.Multicast(p.e.ep, p.e.cfg.N, ck)
	p.addCheckpoint(ck)
}

// handleCheckpoint processes a peer's checkpoint announcement.
func (p *pillar) handleCheckpoint(from uint32, m *message.Checkpoint) {
	if m.Replica != from {
		return
	}
	if err := p.e.verifyCheckpoint(p.tx, m); err != nil {
		return
	}
	p.addCheckpoint(m)
}

func (p *pillar) addCheckpoint(m *message.Checkpoint) {
	stable := p.ckpts.Add(m.Order, checkpoint.Announcement[*message.Checkpoint]{
		Replica: m.Replica, Digest: m.StateDigest, Msg: m,
	})
	if stable != nil {
		p.e.coord.inbox.Put(evStable{stable: stable})
	}
}

// advance slides the ordering window to a stable checkpoint and
// discards retransmission state below it.
func (p *pillar) advance(o timeline.Order) {
	p.win.Advance(o)
	for k := range p.ownMsg {
		if k <= o {
			delete(p.ownMsg, k)
		}
	}
	for k := range p.ownCkpt {
		if k <= o {
			delete(p.ownCkpt, k)
		}
	}
	for k, ev := range p.pendingProps {
		if k <= o {
			p.e.seq.credit(p.idx, len(ev.batch))
			delete(p.pendingProps, k)
		}
	}
	for k := range p.pendingPreps {
		if k <= o {
			delete(p.pendingPreps, k)
		}
	}
	if p.cursor <= o {
		p.cursor = p.firstClassOrder(o)
	}
}

// handleCollectVC produces this pillar's VIEW-CHANGE part: the
// PREPAREs of all window instances it participated in plus learned
// re-proposals, bound by the continuing counter certificate
// τ(r(u), O, to|0, view|o_act) that makes concealment impossible
// (§5.2.3). Ordering is suspended until a new view installs.
func (p *pillar) handleCollectVC(ev evCollectVC) {
	prepares := mergePrepares(p.win.Prepares(), ev.learned)
	vc := &message.ViewChange{
		Replica: p.e.id, Pillar: p.idx,
		From: ev.from, To: ev.to,
		CkptOrder: ev.ckptOrder, CkptDigest: ev.ckptDig, CkptProof: ev.ckptProof,
		Prepares: prepares,
	}
	cert, err := p.tx.CreateContinuing(counterO, uint64(timeline.ViewStart(ev.to)), vc.Digest())
	if err != nil {
		// The counter is already at or beyond to|0 (e.g. duplicate
		// collection); certify with a fresh continuing cert at the
		// current value by retrying at the counter's own value. This
		// cannot happen for monotonically increasing targets; treat
		// as fatal for this collection.
		ev.reply <- nil
		return
	}
	vc.Cert = cert
	p.aborted = true
	p.pendingProps = make(map[timeline.Order]evPropose)
	p.pendingPreps = make(map[timeline.Order]*message.Prepare)
	ev.reply <- vc
}

// handleRepropose certifies the new leader's re-proposals for the new
// view; the pillar's counter is at [view|0] after its own VIEW-CHANGE,
// so the ascending [view|o] values are accepted.
func (p *pillar) handleRepropose(ev evRepropose) {
	out := make([]*message.Prepare, 0, len(ev.props))
	for _, rp := range ev.props {
		prep := &message.Prepare{View: ev.view, Order: rp.order, Requests: rp.batch}
		cert, err := p.tx.CreateIndependent(counterO, uint64(timeline.Pack(ev.view, rp.order)), prep.Digest())
		if err != nil {
			ev.reply <- nil
			return
		}
		prep.Cert = cert
		out = append(out, prep)
	}
	ev.reply <- out
}

// handleInstallView enters a stable new view: slide the window to the
// new-view checkpoint, adopt the re-proposals (acknowledging them as a
// follower), and resume ordering after the re-proposed range.
func (p *pillar) handleInstallView(ev evInstallView) {
	p.aborted = false
	p.view = ev.view
	p.advance(ev.startCkpt)
	p.pendingProps = make(map[timeline.Order]evPropose)
	p.pendingPreps = make(map[timeline.Order]*message.Prepare)
	p.cursor = p.firstClassOrder(p.win.Low())

	for _, prep := range ev.prepares {
		if !p.win.InWindow(prep.Order) {
			continue
		}
		if ev.leader {
			s := p.win.SetPrepare(prep)
			p.ownMsg[prep.Order] = prep
			p.maybeDeliver(s)
		} else {
			p.pendingPreps[prep.Order] = prep
		}
		if prep.Order >= p.cursor && ev.leader {
			p.cursor = p.firstClassOrder(prep.Order)
		}
	}
	if !ev.leader {
		p.processReady()
	}
}

// handleTick retransmits the oldest outstanding own messages; this
// provides liveness across healed partitions and lost messages.
func (p *pillar) handleTick() {
	if p.aborted {
		return
	}
	// Oldest uncommitted instance we sent a message for.
	for o := p.win.Low() + 1; o < p.cursor; o++ {
		s := p.win.Existing(o)
		if s == nil || s.Committed {
			continue
		}
		if m, ok := p.ownMsg[o]; ok {
			p.met.retransmits.Inc()
			p.e.trace(telemetry.EvRetransmit, uint64(p.view), uint64(o), p.idx, "")
			transport.Multicast(p.e.ep, p.e.cfg.N, m)
		}
		break // one per tick is enough
	}
	// Oldest unstable own checkpoint.
	for o, ck := range p.ownCkpt {
		last := p.ckpts.Last()
		if last == nil || o > last.Order {
			transport.Multicast(p.e.ep, p.e.cfg.N, ck)
			break
		}
	}
}

// mergePrepares combines window prepares with learned prepares,
// keeping the highest-view prepare per order, ascending.
func mergePrepares(a, b []*message.Prepare) []*message.Prepare {
	if len(b) == 0 {
		return a
	}
	byOrder := make(map[timeline.Order]*message.Prepare, len(a)+len(b))
	for _, p := range a {
		byOrder[p.Order] = p
	}
	for _, p := range b {
		if cur, ok := byOrder[p.Order]; !ok || p.View > cur.View {
			byOrder[p.Order] = p
		}
	}
	out := make([]*message.Prepare, 0, len(byOrder))
	for _, p := range byOrder {
		out = append(out, p)
	}
	sortPrepares(out)
	return out
}
