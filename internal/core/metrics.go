package core

import (
	"errors"
	"fmt"
	"time"

	"hybster/internal/message"
	"hybster/internal/telemetry"
)

// engineMetrics holds the engine-level metric handles, resolved once
// in New. Everything is nil-safe (zero value = telemetry off), so
// protocol code records unconditionally.
type engineMetrics struct {
	tel *telemetry.Telemetry

	execBatches  *telemetry.Counter
	execRequests *telemetry.Counter
	viewChanges  *telemetry.Counter
	ckptsOwn     *telemetry.Counter
	ckptsStable  *telemetry.Counter
	stateXfers   *telemetry.Counter
	noops        *telemetry.Counter
}

func newEngineMetrics(tel *telemetry.Telemetry) engineMetrics {
	if tel == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		tel:          tel,
		execBatches:  tel.Counter("hybster_core_exec_batches_total", "batches delivered to the application"),
		execRequests: tel.Counter("hybster_core_exec_requests_total", "client requests executed"),
		viewChanges:  tel.Counter("hybster_core_view_changes_total", "view changes this replica initiated or joined"),
		ckptsOwn:     tel.Counter("hybster_core_checkpoints_total", "own checkpoint announcements"),
		ckptsStable:  tel.Counter("hybster_core_checkpoints_stable_total", "checkpoints that reached quorum stability"),
		stateXfers:   tel.Counter("hybster_core_state_transfers_total", "state snapshots installed via transfer"),
		noops:        tel.Counter("hybster_core_noop_proposals_total", "no-op proposals filling execution gaps"),
	}
}

// pillarMetrics holds one pillar's metric handles (pillar-labeled).
type pillarMetrics struct {
	prepares    *telemetry.Counter
	commits     *telemetry.Counter
	committed   *telemetry.Counter
	retransmits *telemetry.Counter
}

func newPillarMetrics(tel *telemetry.Telemetry, idx uint32) pillarMetrics {
	if tel == nil {
		return pillarMetrics{}
	}
	pl := telemetry.L("pillar", fmt.Sprint(idx))
	return pillarMetrics{
		prepares:    tel.Counter("hybster_core_prepares_total", "own proposals certified (PREPARE sent)", pl),
		commits:     tel.Counter("hybster_core_commits_sent_total", "foreign proposals acknowledged (COMMIT sent)", pl),
		committed:   tel.Counter("hybster_core_committed_total", "instances committed and handed to execution", pl),
		retransmits: tel.Counter("hybster_core_retransmits_total", "stalled instances re-multicast by the tick handler", pl),
	}
}

// registerGauges installs the sampled gauges over live engine state.
// Registration replaces any callbacks left by a predecessor engine on
// the same registry (cluster restart), so the scrape never reads a
// dead engine's state.
func (e *Engine) registerGauges(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	tel.GaugeFunc("hybster_core_view", "current stable view",
		func() float64 { return float64(e.curView.Load()) })
	tel.GaugeFunc("hybster_core_last_executed", "highest executed order number",
		func() float64 { return float64(e.exec.last.Load()) })
	tel.GaugeFunc("hybster_core_stable_checkpoint", "last stable checkpoint order",
		func() float64 { return float64(e.stableOrd.Load()) })
	for _, p := range e.pillars {
		p := p
		tel.GaugeFunc("hybster_core_pillar_mailbox_depth", "queued pillar events",
			func() float64 { return float64(p.inbox.Len()) },
			telemetry.L("pillar", fmt.Sprint(p.idx)))
	}
	tel.GaugeFunc("hybster_core_exec_mailbox_depth", "queued execution events",
		func() float64 { return float64(e.exec.inbox.Len()) })
	tel.GaugeFunc("hybster_core_coord_mailbox_depth", "queued coordinator events",
		func() float64 { return float64(e.coord.inbox.Len()) })
	for u := range e.seq.inFlight {
		u := u
		tel.GaugeFunc("hybster_core_seq_inflight", "proposals awaiting commit credit",
			func() float64 { return float64(e.seq.inFlight[u].Load()) },
			telemetry.L("pillar", fmt.Sprint(u)))
	}
	tel.GaugeFunc("hybster_core_seq_outreqs", "requests dispatched but not yet credited back",
		func() float64 { return float64(e.seq.outReqs.Load()) })
	tel.GaugeFunc("hybster_core_seq_queue_depth", "admitted requests awaiting a batch cut",
		func() float64 {
			e.seq.mu.Lock()
			n := len(e.seq.queue)
			e.seq.mu.Unlock()
			return float64(n)
		})
	registerMarshalGauges(tel)
}

// registerMarshalGauges exposes the codec's marshal-pool statistics.
// The counters are process-global (the encoder pool is shared by every
// engine in the process), so in-process multi-replica clusters see the
// same totals on each replica's registry — that is fine for the pool
// hit-rate the gauges exist to answer for.
func registerMarshalGauges(tel *telemetry.Telemetry) {
	tel.GaugeFunc("hybster_marshal_total", "messages marshaled (process-wide)",
		func() float64 { total, _ := message.MarshalStats(); return float64(total) })
	tel.GaugeFunc("hybster_marshal_pool_hits", "marshals served by a pooled encoder (process-wide)",
		func() float64 { _, hits := message.MarshalStats(); return float64(hits) })
}

// trace records one protocol event on the engine's tracer (nil-safe).
func (e *Engine) trace(kind telemetry.EventKind, view, slot uint64, pillar uint32, note string) {
	e.met.tel.Trace(kind, view, slot, pillar, note)
}

// traceD records one protocol event carrying the digest the event is
// about — the correlation key the cluster auditor compares across
// replicas (nil-safe).
func (e *Engine) traceD(kind telemetry.EventKind, view, slot uint64, pillar uint32, digest []byte, note string) {
	e.met.tel.TraceDigest(kind, view, slot, pillar, digest, note)
}

// Telemetry returns the engine's telemetry bundle (nil when disabled);
// the ops server and cluster introspection read through it.
func (e *Engine) Telemetry() *telemetry.Telemetry { return e.met.tel }

// Healthz reports process liveness: nil while the engine runs, an
// error once it stopped. Backs the ops server's /healthz.
func (e *Engine) Healthz() error {
	select {
	case <-e.stopped:
		return errors.New("core: engine stopped")
	default:
		return nil
	}
}

// Readyz reports serving readiness: the engine is live AND not stuck.
// "Stuck" means work has been pending without execution progress for
// more than twice the view-change timeout — long enough that the
// watchdog should have rotated the view, so something is genuinely
// wedged. Backs the ops server's /readyz.
func (e *Engine) Readyz() error {
	if err := e.Healthz(); err != nil {
		return err
	}
	if ps := e.pendingSince.Load(); ps != 0 {
		stalled := e.now().Sub(time.Unix(0, ps))
		if stalled > 2*e.cfg.ViewChangeTimeout {
			return fmt.Errorf("core: no execution progress for %v", stalled.Round(time.Millisecond))
		}
	}
	return nil
}
