package core

import (
	"errors"
	"testing"

	"hybster/internal/apps/counter"
	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// newTestEngine builds an unstarted engine with zero-cost enclaves for
// white-box verification tests.
func newTestEngine(t *testing.T, id uint32, pillars int) *Engine {
	t.Helper()
	proto := config.HybsterS
	if pillars > 1 {
		proto = config.HybsterX
	}
	cfg := config.Default(proto)
	cfg.Pillars = pillars
	net := transport.NewNetwork(transport.LinkProfile{}, 1)
	t.Cleanup(net.Close)
	e, err := New(Options{
		Config:      cfg,
		ID:          id,
		Endpoint:    net.Endpoint(id),
		Application: counter.New(),
		Platform:    enclave.NewPlatform("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range e.pillars {
			p.tx.Destroy()
		}
		e.coord.tx.Destroy()
	})
	return e
}

// leaderPrepare certifies a prepare via engine e's pillar TrInX.
func leaderPrepare(t *testing.T, e *Engine, v timeline.View, o timeline.Order, payload string) *message.Prepare {
	t.Helper()
	var reqs []*message.Request
	if payload != "" {
		reqs = []*message.Request{{Client: crypto.ClientIDBase, Seq: 1, Payload: []byte(payload)}}
	}
	p := &message.Prepare{View: v, Order: o, Requests: reqs}
	u := e.cfg.PillarOf(o) % uint32(len(e.pillars))
	cert, err := e.pillars[u].tx.CreateIndependent(counterO, uint64(timeline.Pack(v, o)), p.Digest())
	if err != nil {
		t.Fatal(err)
	}
	p.Cert = cert
	return p
}

func TestVerifyPrepareChecks(t *testing.T) {
	leader := newTestEngine(t, 0, 1)
	follower := newTestEngine(t, 1, 1)
	tx := follower.pillars[0].tx

	good := leaderPrepare(t, leader, 0, 1, "")
	if err := follower.verifyPrepareEmbedded(tx, good, 0); err != nil {
		t.Fatalf("valid prepare rejected: %v", err)
	}

	// Wrong sender.
	if err := follower.verifyPrepare(tx, good, 2, false); !errors.Is(err, errBadSender) {
		t.Fatalf("wrong sender: %v", err)
	}
	// Wrong certificate kind.
	bad := *good
	bad.Cert.Kind = trinx.Continuing
	if err := follower.verifyPrepareEmbedded(tx, &bad, 0); err == nil {
		t.Fatal("continuing cert accepted for prepare")
	}
	// Wrong value (prepared for different instance).
	bad = *good
	bad.Order = 2
	if err := follower.verifyPrepareEmbedded(tx, &bad, 0); err == nil {
		t.Fatal("value mismatch accepted")
	}
	// Tampered batch: digest no longer matches the certificate. Built
	// fresh (not copied) so the digest is computed from the swapped
	// content — a receiver decoding a tampered wire message always
	// starts from a cold digest cache.
	swapped := &message.Prepare{
		View: good.View, Order: good.Order, Cert: good.Cert,
		Requests: []*message.Request{{Client: 1, Seq: 9, Payload: []byte("swapped")}},
	}
	if err := follower.verifyPrepareEmbedded(tx, swapped, 0); err == nil {
		t.Fatal("batch swap accepted")
	}
}

func TestVerifyPrepareRejectsBadClientAuth(t *testing.T) {
	leader := newTestEngine(t, 0, 1)
	follower := newTestEngine(t, 1, 1)

	// Batch with an unauthenticated request: the embedded certificate
	// is fine, but followers must reject at admission.
	req := &message.Request{Client: crypto.ClientIDBase, Seq: 1, Payload: []byte("x"),
		Auth: crypto.Authenticator{Sender: crypto.ClientIDBase, MACs: make([]crypto.MAC, 3)}}
	p := &message.Prepare{View: 0, Order: 1, Requests: []*message.Request{req}}
	cert, err := leader.pillars[0].tx.CreateIndependent(counterO, uint64(timeline.Pack(0, 1)), p.Digest())
	if err != nil {
		t.Fatal(err)
	}
	p.Cert = cert
	if err := follower.verifyPrepare(follower.pillars[0].tx, p, 0, false); !errors.Is(err, errBadAuth) {
		t.Fatalf("err = %v, want errBadAuth", err)
	}
}

func TestVerifyViewChangeCompleteness(t *testing.T) {
	faulty := newTestEngine(t, 0, 1)
	verifier := newTestEngine(t, 1, 1)
	vtx := verifier.pillars[0].tx

	// The faulty replica participated up to order 2 in view 0.
	p1 := leaderPrepare(t, faulty, 0, 1, "")
	p2 := leaderPrepare(t, faulty, 0, 2, "")

	// Complete disclosure verifies.
	full := &message.ViewChange{Replica: 0, Pillar: 0, From: 0, To: 1,
		Prepares: []*message.Prepare{p1, p2}}
	cert, err := faulty.pillars[0].tx.CreateContinuing(counterO, uint64(timeline.ViewStart(1)), full.Digest())
	if err != nil {
		t.Fatal(err)
	}
	full.Cert = cert
	if err := verifier.verifyViewChangePart(vtx, full); err != nil {
		t.Fatalf("complete view-change rejected: %v", err)
	}

	// A second VC (counter now at [1|0]) that conceals p2: prev still
	// proves [1|0]... craft concealment on a fresh engine instead.
	concealer := newTestEngine(t, 2, 1)
	c1 := leaderPrepare(t, concealer, 0, 1, "") // wrong proposer? order 1's proposer is 0...
	_ = c1
	// Use replica 0 semantics: build a fresh faulty engine.
	faulty2 := newTestEngine(t, 0, 1)
	q1 := leaderPrepare(t, faulty2, 0, 1, "")
	_ = leaderPrepare(t, faulty2, 0, 2, "") // counter moves to [0|2], prepare withheld
	hiding := &message.ViewChange{Replica: 0, Pillar: 0, From: 0, To: 1,
		Prepares: []*message.Prepare{q1}}
	cert2, err := faulty2.pillars[0].tx.CreateContinuing(counterO, uint64(timeline.ViewStart(1)), hiding.Digest())
	if err != nil {
		t.Fatal(err)
	}
	hiding.Cert = cert2
	if err := verifier.verifyViewChangePart(vtx, hiding); !errors.Is(err, errIncompleteVC) {
		t.Fatalf("concealing view-change: err = %v, want errIncompleteVC", err)
	}
}

func TestVerifyViewChangeStructural(t *testing.T) {
	e := newTestEngine(t, 0, 1)
	verifier := newTestEngine(t, 1, 1)
	vtx := verifier.pillars[0].tx

	mk := func(mutate func(*message.ViewChange)) *message.ViewChange {
		vc := &message.ViewChange{Replica: 0, Pillar: 0, From: 0, To: 1}
		mutate(vc)
		return vc
	}
	// to <= from
	vc := mk(func(v *message.ViewChange) { v.To = 0 })
	if err := verifier.verifyViewChangePart(vtx, vc); err == nil {
		t.Fatal("to<=from accepted")
	}
	// pillar out of range
	vc = mk(func(v *message.ViewChange) { v.Pillar = 9 })
	if err := verifier.verifyViewChangePart(vtx, vc); err == nil {
		t.Fatal("bad pillar accepted")
	}
	// forged cert
	vc = mk(func(v *message.ViewChange) {})
	vc.Cert = trinx.Certificate{Kind: trinx.Continuing,
		Issuer: trinx.MakeInstanceID(0, 0), Value: uint64(timeline.ViewStart(1))}
	if err := verifier.verifyViewChangePart(vtx, vc); err == nil {
		t.Fatal("forged cert accepted")
	}
	_ = e
}

func TestComputeTransferPicksHighestViewAndFillsGaps(t *testing.T) {
	r0 := newTestEngine(t, 0, 1)
	r1 := newTestEngine(t, 1, 1)

	// Replica 0 discloses a view-0 prepare for order 2; replica 1 a
	// re-proposal of order 2 in view 1 (higher view wins) and a
	// prepare for order 4 (gap at 3 → no-op).
	oldP := leaderPrepare(t, r0, 0, 2, "old")
	newP := leaderPrepare(t, r1, 1, 2, "new")
	farP := leaderPrepare(t, r1, 1, 4, "far")

	vcSet := map[uint32][]*message.ViewChange{
		0: {{Replica: 0, Pillar: 0, From: 0, To: 2, Prepares: []*message.Prepare{oldP}}},
		1: {{Replica: 1, Pillar: 0, From: 1, To: 2, Prepares: []*message.Prepare{newP, farP}}},
	}
	start, props := computeTransfer(vcSet, nil)
	if start != 0 {
		t.Fatalf("startCkpt = %d", start)
	}
	if len(props) != 4 {
		t.Fatalf("props = %d, want 4 (orders 1..4)", len(props))
	}
	if props[0].order != 1 || props[0].batch != nil {
		t.Fatalf("order 1 should be a no-op: %+v", props[0])
	}
	if string(props[1].batch[0].Payload) != "new" {
		t.Fatalf("order 2 did not take the highest view: %q", props[1].batch[0].Payload)
	}
	if props[2].batch != nil {
		t.Fatalf("order 3 should be a no-op")
	}
	if string(props[3].batch[0].Payload) != "far" {
		t.Fatalf("order 4 batch: %+v", props[3])
	}
}

func TestComputeTransferRespectsCheckpoint(t *testing.T) {
	r0 := newTestEngine(t, 0, 1)
	low := leaderPrepare(t, r0, 0, 3, "below")
	vcSet := map[uint32][]*message.ViewChange{
		0: {{Replica: 0, Pillar: 0, From: 0, To: 1, CkptOrder: 0, Prepares: []*message.Prepare{low}}},
		1: {{Replica: 1, Pillar: 0, From: 0, To: 1, CkptOrder: 5}},
	}
	start, props := computeTransfer(vcSet, nil)
	if start != 5 {
		t.Fatalf("startCkpt = %d, want max over quorum (5)", start)
	}
	if len(props) != 0 {
		t.Fatalf("instances below the checkpoint re-proposed: %+v", props)
	}
}

func TestCheckFromRule(t *testing.T) {
	e := newTestEngine(t, 0, 1)
	c := e.coord

	vc := func(r uint32, from timeline.View) []*message.ViewChange {
		return []*message.ViewChange{{Replica: r, Pillar: 0, From: from, To: 5}}
	}
	// All From == 0: initial view needs no confirmation.
	if _, ok := c.checkFromRule(map[uint32][]*message.ViewChange{0: vc(0, 0), 1: vc(1, 0)}, nil); !ok {
		t.Fatal("From=0 quorum rejected")
	}
	// vmax = 3 confirmed by two replicas (f+1 = 2): ok.
	set := map[uint32][]*message.ViewChange{0: vc(0, 3), 1: vc(1, 3), 2: vc(2, 0)}
	if vmax, ok := c.checkFromRule(set, nil); !ok || vmax != 3 {
		t.Fatalf("vmax=%d ok=%v", vmax, ok)
	}
	// vmax = 3 confirmed by only one VC: not ok without acks.
	set = map[uint32][]*message.ViewChange{0: vc(0, 3), 1: vc(1, 0)}
	if _, ok := c.checkFromRule(set, nil); ok {
		t.Fatal("single confirmation satisfied f+1 rule")
	}
	// ...but an ack for view 3 from another replica completes it.
	acks := map[uint32][]*message.NewViewAck{
		2: {{Replica: 2, Pillar: 0, View: 3}},
	}
	if _, ok := c.checkFromRule(set, acks); !ok {
		t.Fatal("ack did not count toward the From rule")
	}
	// An ack from the same replica that already confirmed via VC must
	// not double count.
	acks = map[uint32][]*message.NewViewAck{
		0: {{Replica: 0, Pillar: 0, View: 3}},
	}
	if _, ok := c.checkFromRule(set, acks); ok {
		t.Fatal("same replica counted twice")
	}
}

func TestMergePrepares(t *testing.T) {
	r0 := newTestEngine(t, 0, 1)
	r1 := newTestEngine(t, 1, 1)
	a1 := leaderPrepare(t, r0, 0, 1, "a")
	a2 := leaderPrepare(t, r0, 0, 2, "a")
	b2 := leaderPrepare(t, r1, 1, 2, "b") // higher view for order 2

	got := mergePrepares([]*message.Prepare{a1, a2}, []*message.Prepare{b2})
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Order != 1 || got[1].Order != 2 {
		t.Fatalf("not sorted: %v %v", got[0].Order, got[1].Order)
	}
	if got[1].View != 1 {
		t.Fatal("higher-view prepare lost in merge")
	}
	// Nil second operand returns the first untouched.
	same := mergePrepares([]*message.Prepare{a1}, nil)
	if len(same) != 1 || same[0] != a1 {
		t.Fatal("identity merge broken")
	}
}

func TestSequencerSlotAssignment(t *testing.T) {
	e := newTestEngine(t, 1, 2)
	e.cfg.RotateLeader = true
	s := newSequencer(e)
	// Replica 1 with rotation in view 0 proposes orders ≡ 1 (mod 3).
	o := s.firstSlot(0, 0)
	if e.cfg.ProposerOf(0, o) != 1 {
		t.Fatalf("firstSlot %d not owned by replica 1", o)
	}
	n := s.nextSlot(0, o)
	if n <= o || e.cfg.ProposerOf(0, n) != 1 {
		t.Fatalf("nextSlot %d invalid", n)
	}
	if n-o != 3 {
		t.Fatalf("slot stride = %d, want n=3", n-o)
	}
}

func TestVerifyCheckpointProof(t *testing.T) {
	r0 := newTestEngine(t, 0, 1)
	r1 := newTestEngine(t, 1, 1)
	verifier := newTestEngine(t, 2, 1)
	vtx := verifier.pillars[0].tx

	digest := crypto.Hash([]byte("state"))
	mkCk := func(e *Engine, id uint32) *message.Checkpoint {
		ck := &message.Checkpoint{Order: 50, Replica: id, StateDigest: digest}
		cert, err := e.pillars[0].tx.CreateTrustedMAC(counterM, ck.Digest())
		if err != nil {
			t.Fatal(err)
		}
		ck.Cert = cert
		return ck
	}
	proof := []*message.Checkpoint{mkCk(r0, 0), mkCk(r1, 1)}
	if err := verifier.verifyCheckpointProof(vtx, 50, digest, proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	// One announcement is not a quorum.
	if err := verifier.verifyCheckpointProof(vtx, 50, digest, proof[:1]); err == nil {
		t.Fatal("single-announcement proof accepted")
	}
	// Duplicate replica must not count twice.
	dup := []*message.Checkpoint{proof[0], proof[0]}
	if err := verifier.verifyCheckpointProof(vtx, 50, digest, dup); err == nil {
		t.Fatal("duplicate-replica proof accepted")
	}
	// Digest mismatch.
	if err := verifier.verifyCheckpointProof(vtx, 50, crypto.Hash([]byte("other")), proof); err == nil {
		t.Fatal("wrong-digest proof accepted")
	}
	// Genesis (order 0) needs no proof.
	if err := verifier.verifyCheckpointProof(vtx, 0, crypto.Digest{}, nil); err != nil {
		t.Fatalf("genesis rejected: %v", err)
	}
}

// TestViewChangeSizeBoundedAcrossViews validates the §4.4 claim Hybster
// is designed around: unlike history-based protocols, the state a
// replica must disclose in a VIEW-CHANGE never exceeds its ordering
// window, no matter how many view changes pile up back to back.
func TestViewChangeSizeBoundedAcrossViews(t *testing.T) {
	e := newTestEngine(t, 0, 1)
	p := e.pillars[0]
	windowSlots := int(e.cfg.WindowSize)

	for v := timeline.View(0); v < 12; v++ {
		// Act as the proposer of view v (replica 0 leads views 0,3,6,...
		// but the pillar only checks counter order, so we can fill the
		// window in any view we claim to lead) — fill every slot.
		filled := 0
		for o := p.win.Low() + 1; o <= p.win.High(); o++ {
			prep := &message.Prepare{View: v, Order: o}
			cert, err := p.tx.CreateIndependent(counterO, uint64(timeline.Pack(v, o)), prep.Digest())
			if err != nil {
				t.Fatalf("view %d order %d: %v", v, o, err)
			}
			prep.Cert = cert
			if s := p.win.SetPrepare(prep); s != nil {
				filled++
			}
		}
		if filled == 0 {
			t.Fatalf("view %d: window filling failed", v)
		}

		// Collect the VIEW-CHANGE part for the next view.
		reply := make(chan *message.ViewChange, 1)
		p.handleCollectVC(evCollectVC{from: v, to: v + 1, reply: reply})
		vc := <-reply
		if vc == nil {
			t.Fatalf("view %d: no view-change part", v)
		}
		if len(vc.Prepares) > windowSlots {
			t.Fatalf("view %d: view-change discloses %d prepares — exceeds window %d (unbounded history!)",
				v, len(vc.Prepares), windowSlots)
		}
		if size := transport.EstimateSize(vc); size > 300*windowSlots+4096 {
			t.Fatalf("view %d: view-change size %d grows beyond the window bound", v, size)
		}
		// The pillar resumes in the new view with the same window.
		p.handleInstallView(evInstallView{view: v + 1, startCkpt: p.win.Low()})
	}
}
