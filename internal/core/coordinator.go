package core

import (
	"time"

	"hybster/internal/checkpoint"
	"hybster/internal/cop"
	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
)

// Events delivered to the coordinator mailbox.
type (
	// evCkptCandidate is the materialized form of a checkpoint boundary:
	// the digest to announce plus the state needed to serve transfers
	// once the checkpoint stabilizes. The execution stage does not build
	// it directly — it posts a lazy *statemachine.CheckpointView and the
	// coordinator pays the serialization here, off the delivery path.
	evCkptCandidate struct {
		order    timeline.Order
		digest   crypto.Digest
		snapshot []byte
		rv       []byte
	}
	// evStable reports a checkpoint quorum from its owning pillar.
	evStable struct {
		stable *checkpoint.Stable[*message.Checkpoint]
	}
	// evBehind reports ordering traffic beyond the window — evidence
	// that this replica has fallen behind the group.
	evBehind struct{ order timeline.Order }
)

// stableCkpt is the coordinator's record of the last stable
// checkpoint; snapshot/rv are nil when the local execution never
// reached it (state must then be fetched before serving transfers).
type stableCkpt struct {
	order    timeline.Order
	digest   crypto.Digest
	proof    []*message.Checkpoint
	snapshot []byte
	rv       []byte
}

// coordinator runs the replica-local side of checkpointing (§5.3.2),
// the distributed view change (§5.2.3, §5.3.3), and state transfer. It
// is a single event loop; all fields below are confined to it.
type coordinator struct {
	e     *Engine
	tx    Certifier
	inbox *cop.Mailbox[any]

	curView      timeline.View
	pending      bool
	pendingTo    timeline.View
	pendingSince time.Time
	desired      timeline.View // highest view we have evidence for
	// vcBackoff counts consecutive pending-view timeouts without
	// execution progress; the effective timeout doubles with each one.
	// Without the backoff, two crash survivors under message loss chase
	// each other's pending views in lockstep forever: each NEW-VIEW
	// arrives after the follower's constant-rate timer has already
	// aborted past its view, so it is acknowledged but never installed.
	vcBackoff uint
	// lastExecSeen tracks execution progress between ticks to reset the
	// backoff once the configuration orders again.
	lastExecSeen timeline.Order

	lastStable stableCkpt
	candidates map[timeline.Order]evCkptCandidate

	// vcs[v][replica][pillar] collects VIEW-CHANGE parts for view v; a
	// logical view change is complete when all pillar parts arrived.
	vcs map[timeline.View]map[uint32][]*message.ViewChange
	// acks[v][replica][pillar] collects NEW-VIEW-ACK parts for view v.
	acks map[timeline.View]map[uint32][]*message.NewViewAck
	// ownVC retains our own parts for retransmission.
	ownVC map[timeline.View][]*message.ViewChange
	// nvParts[v][pillar] collects NEW-VIEW parts from the leader of v.
	nvParts map[timeline.View][]*message.NewView
	// lastNV are the parts of the most recently installed or emitted
	// NEW-VIEW, re-sent to laggards.
	lastNV []*message.NewView
	// nvEmitted marks views we already led a NEW-VIEW for.
	nvEmitted map[timeline.View]bool
	// learned maps order numbers to the highest-view prepare this
	// replica learned through view-change certificates, NEW-VIEWs, and
	// acknowledgments; propagated in future VIEW-CHANGEs (§5.2.3).
	learned map[timeline.Order]*message.Prepare

	lastStateReq time.Time
}

// tickInterval drives retransmission and the watchdog.
func (c *coordinator) tickInterval() time.Duration {
	return c.e.cfg.ViewChangeTimeout / 4
}

// viewTimeout is the current view-change patience: the configured
// timeout doubled per consecutive fruitless abort, capped at 8x. The
// exponential backoff lets a reduced group dwell in a pending view
// long enough for retransmitted VIEW-CHANGEs and the NEW-VIEW to make
// the round trip even under loss (the paper's liveness argument
// assumes eventually-sufficient timeouts).
func (c *coordinator) viewTimeout() time.Duration {
	shift := c.vcBackoff
	if shift > 3 {
		shift = 3
	}
	return c.e.cfg.ViewChangeTimeout << shift
}

// gapDelay is how long execution may stall on an unproposed order
// before its proposer fills it with a no-op.
func (c *coordinator) gapDelay() time.Duration {
	return c.e.cfg.ViewChangeTimeout / 8
}

func newCoordinator(e *Engine, tx Certifier) *coordinator {
	return &coordinator{
		e:          e,
		tx:         tx,
		inbox:      cop.NewMailbox[any](),
		candidates: make(map[timeline.Order]evCkptCandidate),
		vcs:        make(map[timeline.View]map[uint32][]*message.ViewChange),
		acks:       make(map[timeline.View]map[uint32][]*message.NewViewAck),
		ownVC:      make(map[timeline.View][]*message.ViewChange),
		nvParts:    make(map[timeline.View][]*message.NewView),
		nvEmitted:  make(map[timeline.View]bool),
		learned:    make(map[timeline.Order]*message.Prepare),
	}
}

func (c *coordinator) run() {
	stopTick := make(chan struct{})
	go func() {
		t := time.NewTicker(c.tickInterval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.inbox.Put(evTick{})
			case <-stopTick:
				return
			}
		}
	}()
	defer close(stopTick)

	for {
		ev, ok := c.inbox.Get()
		if !ok {
			return
		}
		switch v := ev.(type) {
		case inMsg:
			c.handleMessage(v.from, v.msg)
		case *statemachine.CheckpointView:
			c.handleCandidateView(v)
		case evCkptCandidate:
			c.handleCandidate(v)
		case evStable:
			c.handleStable(v.stable)
		case evBehind:
			c.maybeRequestState()
		case evTick:
			c.handleTick()
		}
	}
}

func (c *coordinator) handleMessage(from uint32, m message.Message) {
	switch v := m.(type) {
	case *message.ViewChange:
		c.handleViewChange(from, v)
	case *message.NewView:
		c.handleNewView(from, v)
	case *message.NewViewAck:
		c.handleNewViewAck(from, v)
	case *message.StateRequest:
		c.handleStateRequest(from, v)
	case *message.StateReply:
		c.handleStateReply(v)
	}
}

// --- checkpointing ----------------------------------------------------------

// handleCandidateView materializes a checkpoint boundary posted by the
// execution stage: the application snapshot is encoded and hashed here
// — on the coordinator loop — so the exec loop never stalls behind a
// state copy. Boundaries already covered by a stable checkpoint are
// dropped before paying for the encode.
func (c *coordinator) handleCandidateView(v *statemachine.CheckpointView) {
	if v.Order <= c.lastStable.order {
		return
	}
	c.handleCandidate(evCkptCandidate{
		order:    v.Order,
		digest:   v.StateDigest(),
		snapshot: v.Snapshot(),
		rv:       v.ReplyVector(),
	})
}

// handleCandidate stores execution state for a checkpoint boundary and
// dispatches the checkpoint protocol instance to its round-robin owner
// pillar (§5.3.2).
func (c *coordinator) handleCandidate(ev evCkptCandidate) {
	if ev.order <= c.lastStable.order {
		return
	}
	c.candidates[ev.order] = ev
	// Keep only the two newest candidates; older ones can no longer
	// become the latest stable checkpoint first.
	for o := range c.candidates {
		if o+2*c.e.cfg.CheckpointInterval <= ev.order {
			delete(c.candidates, o)
		}
	}
	owner := c.e.cfg.CheckpointPillar(ev.order) % uint32(len(c.e.pillars))
	c.e.pillars[owner].inbox.Put(evCkptDue{order: ev.order, digest: ev.digest})
}

// handleStable records a stable checkpoint, slides every pillar's
// window, and triggers state transfer if execution is behind the
// group.
func (c *coordinator) handleStable(s *checkpoint.Stable[*message.Checkpoint]) {
	if s.Order <= c.lastStable.order {
		return
	}
	st := stableCkpt{order: s.Order, digest: s.Digest, proof: s.Proof}
	if cand, ok := c.candidates[s.Order]; ok && cand.digest == s.Digest {
		st.snapshot, st.rv = cand.snapshot, cand.rv
	}
	c.lastStable = st
	c.e.stableOrd.Store(uint64(s.Order))
	c.e.met.ckptsStable.Inc()
	c.e.traceD(telemetry.EvCkptStable, uint64(c.curView), uint64(s.Order), 0, s.Digest[:], "")
	c.e.logCheckpoint(st)
	for o := range c.candidates {
		if o <= s.Order {
			delete(c.candidates, o)
		}
	}
	for o := range c.learned {
		if o <= s.Order {
			delete(c.learned, o)
		}
	}
	for _, p := range c.e.pillars {
		p.inbox.Put(evAdvance{order: s.Order})
	}
	if st.snapshot == nil && s.Order > c.e.exec.lastExecuted() {
		c.maybeRequestState()
	}
}

// --- state transfer -----------------------------------------------------------

// maybeRequestState asks the group for the newest stable state,
// rate-limited to one round per second.
func (c *coordinator) maybeRequestState() {
	now := c.e.now()
	if now.Sub(c.lastStateReq) < time.Second {
		return
	}
	c.lastStateReq = now
	req := &message.StateRequest{Replica: c.e.id, From: c.e.exec.lastExecuted() + 1}
	transport.Multicast(c.e.ep, c.e.cfg.N, req)
}

func (c *coordinator) handleStateRequest(from uint32, req *message.StateRequest) {
	if c.lastStable.snapshot == nil || c.lastStable.order < req.From {
		return
	}
	_ = c.e.ep.Send(from, &message.StateReply{
		Replica:     c.e.id,
		CkptOrder:   c.lastStable.order,
		Snapshot:    c.lastStable.snapshot,
		ReplyVector: c.lastStable.rv,
		Proof:       c.lastStable.proof,
	})
}

func (c *coordinator) handleStateReply(rep *message.StateReply) {
	if rep.CkptOrder <= c.e.exec.lastExecuted() {
		return
	}
	digest := combineStateDigest(rep.Snapshot, rep.ReplyVector)
	if err := c.e.verifyCheckpointProof(c.tx, rep.CkptOrder, digest, rep.Proof); err != nil {
		return
	}
	done := make(chan error, 1)
	c.e.exec.inbox.Put(evInstallState{ckpt: rep.CkptOrder, snapshot: rep.Snapshot, rv: rep.ReplyVector, done: done})
	select {
	case err := <-done:
		if err != nil {
			return
		}
	case <-c.e.stopped:
		return
	}
	if rep.CkptOrder > c.lastStable.order {
		c.lastStable = stableCkpt{
			order: rep.CkptOrder, digest: digest, proof: rep.Proof,
			snapshot: rep.Snapshot, rv: rep.ReplyVector,
		}
		c.e.stableOrd.Store(uint64(rep.CkptOrder))
		c.e.logCheckpoint(c.lastStable)
		for _, p := range c.e.pillars {
			p.inbox.Put(evAdvance{order: rep.CkptOrder})
		}
	}
	c.e.met.stateXfers.Inc()
	c.e.trace(telemetry.EvStateXfer, uint64(c.curView), uint64(rep.CkptOrder), 0, "")
	c.e.noteProgress(false)
}

// --- view change ---------------------------------------------------------------

// handleTick drives the watchdog, escalation, gap filling, and
// retransmission.
func (c *coordinator) handleTick() {
	for _, p := range c.e.pillars {
		p.inbox.Put(evTick{})
	}
	now := c.e.now()
	ps := c.e.pendingSince.Load()
	if exec := c.e.exec.lastExecuted(); exec > c.lastExecSeen {
		// The configuration orders again: suspicion resets.
		c.lastExecSeen = exec
		c.vcBackoff = 0
	}
	if c.lastStable.order > c.e.exec.lastExecuted() {
		// We adopted a stable checkpoint beyond what local execution can
		// reach (the decisions below it are gone from the group's logs).
		// State transfer is the only way forward; keep retrying — the
		// one-shot requests issued at adoption time can be lost, and no
		// further event would re-trigger them. maybeRequestState
		// rate-limits the actual traffic.
		c.maybeRequestState()
	}

	if !c.pending {
		// Watchdog: outstanding work without execution progress for a
		// full timeout means the current configuration is stuck.
		if ps != 0 && now.Sub(time.Unix(0, ps)) > c.e.cfg.ViewChangeTimeout {
			c.bumpDesired(c.curView + 1)
		} else if ps != 0 && now.Sub(time.Unix(0, ps)) > c.gapDelay() {
			// Gap filling: if execution waits on an order we own and
			// never proposed, close it with a no-op (§5.3.1).
			c.e.seq.proposeNoop(c.curView, c.e.exec.nextNeeded())
		}
	} else {
		if now.Sub(c.pendingSince) > c.viewTimeout() {
			// The pending view did not stabilize in time; escalate with
			// exponentially growing patience.
			c.pendingSince = now
			c.vcBackoff++
			c.bumpDesired(c.pendingTo + 1)
		}
		// Retransmit our VIEW-CHANGE parts.
		if parts, ok := c.ownVC[c.pendingTo]; ok {
			for _, vc := range parts {
				transport.Multicast(c.e.ep, c.e.cfg.N, vc)
			}
		}
	}
	c.tryAdvanceView()
}

// bumpDesired raises the view this replica wants to reach.
func (c *coordinator) bumpDesired(v timeline.View) {
	if v > c.desired {
		c.desired = v
	}
}

// haveVCQuorum reports whether a view-change certificate — a quorum of
// complete logical VIEW-CHANGEs — exists for view v (§5.2.3).
func (c *coordinator) haveVCQuorum(v timeline.View) bool {
	return len(c.completeVCs(v)) >= c.e.cfg.Quorum()
}

// completeVCs returns the logical (all pillar parts present and
// mutually consistent) view changes stored for view v, keyed by
// replica.
func (c *coordinator) completeVCs(v timeline.View) map[uint32][]*message.ViewChange {
	out := make(map[uint32][]*message.ViewChange)
	for r, parts := range c.vcs[v] {
		if logicalVCComplete(parts) {
			out[r] = parts
		}
	}
	return out
}

func logicalVCComplete(parts []*message.ViewChange) bool {
	if len(parts) == 0 {
		return false
	}
	first := (*message.ViewChange)(nil)
	for _, p := range parts {
		if p == nil {
			return false
		}
		if first == nil {
			first = p
		} else if p.From != first.From || p.To != first.To || p.CkptOrder != first.CkptOrder || p.CkptDigest != first.CkptDigest {
			return false
		}
	}
	return true
}

// tryAdvanceView walks the replica toward the desired view while the
// view-change-certificate rule permits: the step to curView+1 is
// always allowed; any further step to w requires a certificate for
// w−1, whose prepares are merged into the learned set first. The
// desired view itself only rises through the watchdog, the pending
// timeout, or the f+1 join rule — never here.
func (c *coordinator) tryAdvanceView() {
	for {
		var target timeline.View
		if !c.pending {
			if c.desired <= c.curView {
				return
			}
			target = c.curView + 1
		} else {
			if c.desired <= c.pendingTo {
				return
			}
			if !c.haveVCQuorum(c.pendingTo) {
				return // certificate rule: cannot leave pendingTo yet
			}
			// Leader dwell rule: with a quorum aborted into the view we
			// lead, emit its NEW-VIEW instead of stepping over it. In a
			// reduced group (N−f live) quorums only assemble after the
			// pending timeout has already raised desired, so without
			// this the whole group chases view numbers in lockstep and
			// no view ever installs.
			if c.e.cfg.LeaderOf(c.pendingTo) == c.e.id {
				c.maybeEmitNewView(c.pendingTo)
				if !c.pending {
					continue // installed; re-evaluate from the new view
				}
			}
			c.mergeLearnedFromVCs(c.pendingTo)
			target = c.pendingTo + 1
		}
		// Jump further if certificates for later views already exist,
		// but never past the view we actually have evidence for.
		for w := target; w < c.desired; w++ {
			if c.haveVCQuorum(w) {
				c.mergeLearnedFromVCs(w)
				target = w + 1
			}
		}
		if !c.startViewChange(target) {
			return
		}
	}
}

// mergeLearnedFromVCs folds every prepare disclosed by the view-change
// certificate for view v into the learned set, so this replica can
// propagate them in later VIEW-CHANGEs even though it never received
// the original messages (§5.2.3, "View-Change Certificates").
func (c *coordinator) mergeLearnedFromVCs(v timeline.View) {
	for _, parts := range c.completeVCs(v) {
		for _, part := range parts {
			c.mergeLearned(part.Prepares)
		}
	}
}

func (c *coordinator) mergeLearned(ps []*message.Prepare) {
	for _, p := range ps {
		if p.Order <= c.lastStable.order {
			continue
		}
		if cur, ok := c.learned[p.Order]; !ok || p.View > cur.View {
			c.learned[p.Order] = p
		}
	}
}

// learnedForPillar filters the learned set to one pillar's class.
func (c *coordinator) learnedForPillar(u uint32) []*message.Prepare {
	var out []*message.Prepare
	pillars := uint32(len(c.e.pillars))
	for _, p := range c.learned {
		if c.e.cfg.PillarOf(p.Order)%pillars == u {
			out = append(out, p)
		}
	}
	return out
}

// startViewChange aborts the current (or pending) view and multicasts
// VIEW-CHANGE parts for view "to", one per pillar (§5.3.3, split
// external messages). Returns false if the target is not ahead.
func (c *coordinator) startViewChange(to timeline.View) bool {
	if to <= c.curView || (c.pending && to <= c.pendingTo) {
		return false
	}
	parts := make([]*message.ViewChange, len(c.e.pillars))
	for u, p := range c.e.pillars {
		reply := make(chan *message.ViewChange, 1)
		p.inbox.Put(evCollectVC{
			from:      c.curView,
			to:        to,
			ckptOrder: c.lastStable.order,
			ckptDig:   c.lastStable.digest,
			ckptProof: c.lastStable.proof,
			learned:   c.learnedForPillar(uint32(u)),
			reply:     reply,
		})
		select {
		case part := <-reply:
			if part == nil {
				return false
			}
			parts[u] = part
		case <-c.e.stopped:
			return false
		}
	}
	c.pending = true
	c.pendingTo = to
	c.pendingSince = c.e.now()
	c.e.met.viewChanges.Inc()
	c.e.trace(telemetry.EvViewChange, uint64(to), 0, 0, "")
	c.ownVC = map[timeline.View][]*message.ViewChange{to: parts}
	c.storeVCParts(c.e.id, parts)
	for _, vc := range parts {
		transport.Multicast(c.e.ep, c.e.cfg.N, vc)
	}
	c.maybeEmitNewView(to)
	return true
}

func (c *coordinator) storeVCParts(replica uint32, parts []*message.ViewChange) {
	for _, vc := range parts {
		c.storeVCPart(replica, vc)
	}
}

func (c *coordinator) storeVCPart(replica uint32, vc *message.ViewChange) {
	byReplica, ok := c.vcs[vc.To]
	if !ok {
		byReplica = make(map[uint32][]*message.ViewChange)
		c.vcs[vc.To] = byReplica
	}
	parts := byReplica[replica]
	if parts == nil {
		parts = make([]*message.ViewChange, len(c.e.pillars))
		byReplica[replica] = parts
	}
	if parts[vc.Pillar] == nil {
		parts[vc.Pillar] = vc
	}
}

// handleViewChange ingests a peer's VIEW-CHANGE part.
func (c *coordinator) handleViewChange(from uint32, vc *message.ViewChange) {
	if vc.Replica != from {
		return
	}
	if vc.To <= c.curView {
		// The sender lags behind an already-installed view: help it
		// with the NEW-VIEW we hold.
		for _, nv := range c.lastNV {
			_ = c.e.ep.Send(from, nv)
		}
		return
	}
	if err := c.e.verifyViewChangePart(c.tx, vc); err != nil {
		return
	}
	if vc.From < c.curView {
		// The sender abandons views it never established: its From lags
		// our installed view even though its To is ahead. Until it
		// acknowledges our view, no later NEW-VIEW can satisfy the From
		// rule (§5.2.3 needs f+1 confirmations of the maximum From), so
		// a single lost NEW-VIEW or ack would wedge the view change
		// forever. Re-send the NEW-VIEW we hold; receiving it makes the
		// peer emit (or re-emit) its acknowledgment.
		for _, nv := range c.lastNV {
			_ = c.e.ep.Send(from, nv)
		}
	}
	c.storeVCPart(from, vc)

	// Join rule: f+1 distinct replicas moving to a higher view prove
	// at least one correct replica suspects the configuration; follow
	// them (the example's step 6).
	if len(c.completeVCs(vc.To)) > c.e.cfg.F() {
		c.bumpDesired(vc.To)
	}
	c.tryAdvanceView()
	if c.e.cfg.LeaderOf(vc.To) == c.e.id {
		c.maybeEmitNewView(vc.To)
	}
}

// handleNewViewAck ingests an acknowledgment part.
func (c *coordinator) handleNewViewAck(from uint32, a *message.NewViewAck) {
	if a.Replica != from || a.View < c.curView {
		// Acks for views below ours are dead evidence — any NEW-VIEW we
		// emit carries our own VC with From == curView, so the From rule
		// never needs them. Acks for curView itself stay relevant: they
		// are precisely the f+1 confirmations a future view we lead must
		// present (§5.2.3).
		return
	}
	if err := c.e.verifyNewViewAckPart(c.tx, a); err != nil {
		return
	}
	byReplica, ok := c.acks[a.View]
	if !ok {
		byReplica = make(map[uint32][]*message.NewViewAck)
		c.acks[a.View] = byReplica
	}
	parts := byReplica[from]
	if parts == nil {
		parts = make([]*message.NewViewAck, len(c.e.pillars))
		byReplica[from] = parts
	}
	if parts[a.Pillar] == nil {
		parts[a.Pillar] = a
	}
	c.mergeLearned(a.Prepares)
	if c.pending && c.e.cfg.LeaderOf(c.pendingTo) == c.e.id {
		c.maybeEmitNewView(c.pendingTo)
	}
}
