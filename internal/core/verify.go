package core

import (
	"errors"
	"fmt"
	"sort"

	"hybster/internal/crypto"
	"hybster/internal/message"
	"hybster/internal/order"
	"hybster/internal/timeline"
	"hybster/internal/trinx"
)

// Type aliases binding the pillar to the order package without
// repeating the import path on every use.
type (
	orderWindow = order.Window
	slot        = order.Slot
)

func newOrderWindow(size timeline.Order, quorum int) *order.Window {
	return order.NewWindow(size, quorum)
}

func sortPrepares(ps []*message.Prepare) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Order < ps[j].Order })
}

// Verification errors.
var (
	errBadIssuer    = errors.New("core: certificate issuer mismatch")
	errBadKind      = errors.New("core: wrong certificate kind")
	errBadValue     = errors.New("core: certificate value mismatch")
	errBadAuth      = errors.New("core: request authenticator invalid")
	errBadSender    = errors.New("core: sender is not the expected proposer")
	errIncompleteVC = errors.New("core: view-change discloses fewer prepares than its counter proves")
)

// verifyPrepare validates a leader proposal: the sender must be the
// proposer of (view, order), the certificate must be an independent
// counter certificate with the predefined value [view|order] issued by
// the TrInX instance of the responsible pillar, and every request in
// the batch must carry a valid client authenticator. authVerified
// skips the (parallelizable) client-authenticator loop for batches the
// verify stage already cleared; the structural and certificate checks
// always run on the pillar.
func (e *Engine) verifyPrepare(tx Certifier, m *message.Prepare, from uint32, authVerified bool) error {
	proposer := e.cfg.ProposerOf(m.View, m.Order)
	if from != proposer {
		return errBadSender
	}
	if err := e.verifyPrepareEmbedded(tx, m, proposer); err != nil {
		return err
	}
	if !authVerified {
		for _, r := range m.Requests {
			if !crypto.VerifyAuthenticator(e.ks, r.Auth, r.Digest()) {
				return errBadAuth
			}
		}
	}
	return nil
}

// verifyPrepareEmbedded validates a prepare carried inside
// VIEW-CHANGE, NEW-VIEW, or NEW-VIEW-ACK messages, where the original
// sender is no longer available and the proposer may be either the
// rotation proposer of the prepare's view or that view's leader (the
// leader re-proposes all transferred instances in its NEW-VIEW).
func (e *Engine) verifyEmbeddedPrepare(tx Certifier, m *message.Prepare) error {
	rot := e.cfg.ProposerOf(m.View, m.Order)
	ld := e.cfg.LeaderOf(m.View)
	issuer := m.Cert.Issuer.Replica()
	if issuer != rot && issuer != ld {
		return errBadIssuer
	}
	return e.verifyPrepareEmbedded(tx, m, issuer)
}

func (e *Engine) verifyPrepareEmbedded(tx Certifier, m *message.Prepare, proposer uint32) error {
	pillar := e.cfg.PillarOf(m.Order) % uint32(len(e.pillars))
	if m.Cert.Kind != trinx.Independent {
		return errBadKind
	}
	if m.Cert.Issuer != trinx.MakeInstanceID(proposer, pillar) {
		return fmt.Errorf("%w: %s", errBadIssuer, m.Cert.Issuer)
	}
	if m.Cert.Value != uint64(timeline.Pack(m.View, m.Order)) {
		return errBadValue
	}
	return tx.Verify(m.Cert, m.Digest())
}

// verifyCommit validates a follower acknowledgment analogously.
func (e *Engine) verifyCommit(tx Certifier, m *message.Commit) error {
	pillar := e.cfg.PillarOf(m.Order) % uint32(len(e.pillars))
	if m.Cert.Kind != trinx.Independent {
		return errBadKind
	}
	if m.Cert.Issuer != trinx.MakeInstanceID(m.Replica, pillar) {
		return errBadIssuer
	}
	if m.Cert.Value != uint64(timeline.Pack(m.View, m.Order)) {
		return errBadValue
	}
	return tx.Verify(m.Cert, m.Digest())
}

// verifyCheckpoint validates a checkpoint announcement: a trusted MAC
// (continuing certificate with value == previous value) from the
// announcing replica (§5.2.2).
func (e *Engine) verifyCheckpoint(tx Certifier, m *message.Checkpoint) error {
	if m.Cert.Kind != trinx.Continuing || m.Cert.Value != m.Cert.Prev {
		return errBadKind
	}
	if m.Cert.Issuer.Replica() != m.Replica {
		return errBadIssuer
	}
	return tx.Verify(m.Cert, m.Digest())
}

// verifyCheckpointProof validates a quorum certificate K for a
// checkpoint: quorum many valid announcements from distinct replicas,
// all with the claimed order and digest.
func (e *Engine) verifyCheckpointProof(tx Certifier, o timeline.Order, d crypto.Digest, proof []*message.Checkpoint) error {
	if o == 0 {
		return nil // genesis checkpoint needs no proof
	}
	seen := make(map[uint32]bool, len(proof))
	for _, ck := range proof {
		if ck.Order != o || ck.StateDigest != d || seen[ck.Replica] {
			return fmt.Errorf("core: malformed checkpoint proof for order %d", o)
		}
		if err := e.verifyCheckpoint(tx, ck); err != nil {
			return err
		}
		seen[ck.Replica] = true
	}
	if len(seen) < e.cfg.Quorum() {
		return fmt.Errorf("core: checkpoint proof has %d of %d announcements", len(seen), e.cfg.Quorum())
	}
	return nil
}

// verifyViewChangePart validates one pillar part of a VIEW-CHANGE: the
// continuing certificate with value [to|0], the checkpoint proof, all
// contained prepares, and — the crux of §5.2.3 — completeness: if the
// certificate's previous value proves participation up to o_act in the
// aborted view, a prepare must be disclosed for every class order in
// (ckpt, o_act].
func (e *Engine) verifyViewChangePart(tx Certifier, vc *message.ViewChange) error {
	if vc.To <= vc.From {
		return fmt.Errorf("core: view-change to %d from %d", vc.To, vc.From)
	}
	pillars := uint32(len(e.pillars))
	if vc.Pillar >= pillars {
		return fmt.Errorf("core: view-change names pillar %d of %d", vc.Pillar, pillars)
	}
	if vc.Cert.Kind != trinx.Continuing {
		return errBadKind
	}
	if vc.Cert.Issuer != trinx.MakeInstanceID(vc.Replica, vc.Pillar) {
		return errBadIssuer
	}
	if vc.Cert.Value != uint64(timeline.ViewStart(vc.To)) {
		return errBadValue
	}
	if err := tx.Verify(vc.Cert, vc.Digest()); err != nil {
		return err
	}
	if err := e.verifyCheckpointProof(tx, vc.CkptOrder, vc.CkptDigest, vc.CkptProof); err != nil {
		return err
	}
	disclosed := make(map[timeline.Order]bool, len(vc.Prepares))
	for _, p := range vc.Prepares {
		if e.cfg.PillarOf(p.Order)%pillars != vc.Pillar {
			return fmt.Errorf("core: prepare for order %d in part of pillar %d", p.Order, vc.Pillar)
		}
		if err := e.verifyEmbeddedPrepare(tx, p); err != nil {
			return err
		}
		disclosed[p.Order] = true
	}
	// Completeness: the unforgeable previous counter value [pv|po]
	// forces disclosure of every instance the replica acted on in the
	// view it last participated in.
	prev := timeline.Point(vc.Cert.Prev)
	pv, po := prev.Unpack()
	if pv == vc.From && po > vc.CkptOrder {
		for o := vc.CkptOrder + 1; o <= po; o++ {
			if e.cfg.PillarOf(o)%pillars != vc.Pillar {
				continue
			}
			if !disclosed[o] {
				return fmt.Errorf("%w: order %d missing (o_act %d)", errIncompleteVC, o, po)
			}
		}
	}
	return nil
}

// verifyNewViewAckPart validates one pillar part of a NEW-VIEW-ACK: a
// trusted MAC plus valid embedded prepares of the acknowledged view.
func (e *Engine) verifyNewViewAckPart(tx Certifier, a *message.NewViewAck) error {
	if a.Cert.Kind != trinx.Continuing || a.Cert.Value != a.Cert.Prev {
		return errBadKind
	}
	if a.Cert.Issuer.Replica() != a.Replica {
		return errBadIssuer
	}
	if err := tx.Verify(a.Cert, a.Digest()); err != nil {
		return err
	}
	pillars := uint32(len(e.pillars))
	for _, p := range a.Prepares {
		if e.cfg.PillarOf(p.Order)%pillars != a.Pillar {
			return fmt.Errorf("core: ack prepare for order %d in part of pillar %d", p.Order, a.Pillar)
		}
		if err := e.verifyEmbeddedPrepare(tx, p); err != nil {
			return err
		}
	}
	return nil
}
