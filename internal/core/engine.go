// Package core implements Hybster (§5), the paper's contribution: a
// highly parallelizable hybrid state-machine replication protocol built
// on TrInX trusted counters.
//
// One Engine is one replica. The engine is organized as the
// consensus-oriented parallelization of §5.3: a configurable number of
// pillars — equal, share-nothing processing units, each with its own
// TrInX instance — plus an execution stage and a coordinator that runs
// the replica-local parts of checkpointing, view changes, and state
// transfer. With a single pillar the engine is exactly the sequential
// basic protocol of §5.2 (the HybsterS configuration); with one pillar
// per core it is HybsterX.
//
// Messages flow:
//
//	transport → route → pillar mailboxes   (PREPARE, COMMIT, CHECKPOINT)
//	                  → coordinator        (VIEW-CHANGE, NEW-VIEW, ACK, state transfer)
//	                  → sequencer          (REQUEST admission)
//	pillars → execution mailbox → application → REPLY to clients
//	execution → coordinator               (checkpoint digests)
//	coordinator ↔ pillars                 (view-change/checkpoint events)
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"hybster/internal/config"
	"hybster/internal/crypto"
	"hybster/internal/enclave"
	"hybster/internal/message"
	"hybster/internal/reply"
	"hybster/internal/statemachine"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/verify"
)

// Trusted counter IDs within each pillar's TrInX instance.
const (
	counterO    uint32 = 0 // ordering counter (§5.2.1)
	counterM    uint32 = 1 // checkpoint trusted-MAC counter (§5.2.2)
	numCounters        = 2
)

// coordinatorPillar is the pillar index used in the instance ID of the
// coordinator's TrInX instance (it only verifies and issues trusted
// MACs for view-change auxiliaries).
const coordinatorPillar uint32 = 0xffff

// Options bundle the dependencies of an Engine.
type Options struct {
	// Config is the validated group configuration.
	Config config.Config
	// ID is this replica's ID in [0, N).
	ID uint32
	// Endpoint connects the replica to the group.
	Endpoint transport.Endpoint
	// Application is the replicated service.
	Application statemachine.Application
	// Platform hosts the TrInX enclaves.
	Platform *enclave.Platform
	// EnclaveCost is the simulated SGX cost model for TrInX calls.
	EnclaveCost enclave.CostModel
	// Telemetry, when non-nil, enables metrics and protocol-event
	// tracing for this replica (package telemetry). nil runs the
	// engine fully uninstrumented.
	Telemetry *telemetry.Telemetry
	// DataDir, when non-empty, enables durable crash-recovery: trusted
	// counters are sealed to DataDir/seal with a monotonic horizon and
	// committed decisions plus stable checkpoints land in a write-ahead
	// log under DataDir/wal. On boot the engine restores the sealed
	// counters, installs the last stable checkpoint, and replays the
	// decision tail before fetching the rest via state transfer. New
	// fails with trinx.ErrStaleSeal on a rolled-back seal and
	// trinx.ErrAmnesia when the seal register proves state the disk no
	// longer holds.
	DataDir string
	// Now optionally overrides the time source (tests).
	Now func() time.Time
}

// Engine is one Hybster replica.
type Engine struct {
	cfg config.Config
	id  uint32
	ep  transport.Endpoint
	ks  *crypto.KeyStore
	now func() time.Time

	pillars []*pillar
	exec    *execLoop
	coord   *coordinator
	seq     *sequencer
	replies *reply.Stage
	vpool   *verify.Pool
	vord    *verify.Ordered
	dur     *durability   // nil without a data dir
	met     engineMetrics // zero value when telemetry is off

	// curView mirrors the coordinator's stable view for lock-free
	// reads on hot paths.
	curView atomic.Uint64

	// stableOrd mirrors the coordinator's last stable checkpoint order
	// for lock-free gauge sampling (the auditor's checkpoint-lag check
	// reads it against last_executed).
	stableOrd atomic.Uint64

	// progress tracking for the view-change watchdog.
	pendingSince atomic.Int64 // unix nanos of oldest unserved work; 0 = none

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// New assembles a replica engine. Call Start to begin processing.
func New(opts Options) (*Engine, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	key := crypto.NewKeyFromSeed(opts.Config.KeySeed)
	e := &Engine{
		cfg:     opts.Config,
		id:      opts.ID,
		ep:      opts.Endpoint,
		ks:      crypto.NewKeyStore(opts.ID, key),
		now:     opts.Now,
		met:     newEngineMetrics(opts.Telemetry),
		stopped: make(chan struct{}),
	}
	if opts.DataDir != "" {
		dur, err := openDurability(opts.DataDir, opts.Telemetry)
		if err != nil {
			return nil, err
		}
		e.dur = dur
	}
	e.exec = newExecLoop(e, opts.Application)
	coordTx, err := e.newCertifier(opts, coordinatorPillar, key)
	if err != nil {
		if e.dur != nil {
			_ = e.dur.log.Close()
		}
		return nil, err
	}
	e.coord = newCoordinator(e, coordTx)
	e.pillars = make([]*pillar, opts.Config.Pillars)
	for u := range e.pillars {
		tx, err := e.newCertifier(opts, uint32(u), key)
		if err != nil {
			coordTx.Destroy()
			for _, p := range e.pillars {
				if p != nil {
					p.tx.Destroy()
				}
			}
			if e.dur != nil {
				_ = e.dur.log.Close()
			}
			return nil, err
		}
		e.pillars[u] = newPillar(e, uint32(u), tx)
	}
	e.seq = newSequencer(e)
	e.replies = reply.NewStage(e.id, e.ks, e.ep, 0, opts.Telemetry)
	e.vpool = verify.NewPool(e.ks, 0, opts.Telemetry)
	e.vord = verify.NewOrdered(e.vpool)
	e.registerGauges(opts.Telemetry)
	if e.dur != nil {
		e.restore()
	}
	return e, nil
}

// ID returns the replica ID.
func (e *Engine) ID() uint32 { return e.id }

// Config returns the group configuration.
func (e *Engine) Config() config.Config { return e.cfg }

// View returns the replica's current stable view.
func (e *Engine) View() timeline.View { return timeline.View(e.curView.Load()) }

// LastExecuted returns the highest executed order number (diagnostics
// and tests).
func (e *Engine) LastExecuted() timeline.Order { return e.exec.lastExecuted() }

// Start launches the replica's goroutines and installs the transport
// handler.
func (e *Engine) Start() {
	e.ep.Handle(e.route)
	for _, p := range e.pillars {
		e.wg.Add(1)
		go func(p *pillar) { defer e.wg.Done(); p.run() }(p)
	}
	e.wg.Add(2)
	go func() { defer e.wg.Done(); e.exec.run() }()
	go func() { defer e.wg.Done(); e.coord.run() }()
}

// Stop shuts the replica down gracefully and waits for its goroutines:
// the WAL is flushed and closed and the exact counter values are
// sealed, so a subsequent boot resumes warm.
func (e *Engine) Stop() { e.stop(true) }

// Kill crash-stops the replica: goroutines are torn down (an
// in-process harness cannot leak them), but the durable state is left
// exactly as kill -9 would leave it — no exact-value seal, no WAL
// flush, and the WAL's unsynced tail torn mid-frame. A cold restart
// after Kill exercises the genuine crash-recovery path: counters
// resume at the sealed horizon (burning the reservation) and the WAL
// tail is truncated to its last durable frame.
func (e *Engine) Kill() { e.stop(false) }

func (e *Engine) stop(graceful bool) {
	e.stopOnce.Do(func() {
		close(e.stopped)
		_ = e.ep.Close()
		e.vpool.Close()
		for _, p := range e.pillars {
			p.inbox.Close()
		}
		e.exec.inbox.Close()
		e.coord.inbox.Close()
		e.wg.Wait()
		// The exec loop is done submitting; drain outstanding replies.
		e.replies.Close()
		if graceful {
			e.shutdownDurability()
		} else {
			e.abandonDurability()
		}
		for _, p := range e.pillars {
			p.tx.Destroy()
		}
		e.coord.tx.Destroy()
	})
}

// route dispatches an inbound message to the component that owns it.
// It runs on transport goroutines and does no crypto itself: messages
// carrying client authenticators are verified on the parallel stage,
// everything else passes through unchecked — but all of it flows
// through the stage's ordered front, so events reach the mailboxes in
// exact arrival order just as an inline check would deliver them.
func (e *Engine) route(from uint32, m message.Message) {
	switch v := m.(type) {
	case *message.Request:
		e.vord.Submit(from, []*message.Request{v}, func(ok bool) {
			if ok {
				e.seq.admitVerified(v)
			}
		})
	case *message.Prepare:
		if len(v.Requests) == 0 {
			e.vord.Pass(from, func() { e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m}) })
			return
		}
		e.vord.Submit(from, v.Requests, func(ok bool) {
			// A batch with a forged client authenticator dies here,
			// before it can occupy a pillar.
			if ok {
				e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m, verified: true})
			}
		})
	case *message.Commit:
		e.vord.Pass(from, func() { e.pillarFor(v.Order).inbox.Put(inMsg{from: from, msg: m}) })
	case *message.Checkpoint:
		e.vord.Pass(from, func() {
			e.pillars[e.cfg.CheckpointPillar(v.Order)%uint32(len(e.pillars))].inbox.Put(inMsg{from: from, msg: m})
		})
	case *message.ViewChange, *message.NewView, *message.NewViewAck,
		*message.StateRequest, *message.StateReply:
		e.vord.Pass(from, func() { e.coord.inbox.Put(inMsg{from: from, msg: m}) })
	default:
		// Unknown or foreign-protocol message: drop.
	}
}

func (e *Engine) pillarFor(o timeline.Order) *pillar {
	return e.pillars[e.cfg.PillarOf(o)%uint32(len(e.pillars))]
}

// noteWork records the arrival of work for the watchdog.
func (e *Engine) noteWork() {
	if e.pendingSince.Load() == 0 {
		e.pendingSince.CompareAndSwap(0, e.now().UnixNano())
	}
}

// noteProgress records execution progress: if the executor has no
// buffered instances the pending marker clears, otherwise it restarts.
func (e *Engine) noteProgress(stillPending bool) {
	if stillPending {
		e.pendingSince.Store(e.now().UnixNano())
	} else {
		e.pendingSince.Store(0)
	}
}

// inMsg is an inbound protocol message tagged with its sender.
// verified marks messages whose client authenticators were already
// checked by the parallel verify stage; pillars re-check sequentially
// when it is unset.
type inMsg struct {
	from     uint32
	msg      message.Message
	verified bool
}

// --- sequencer -------------------------------------------------------------

// sequencer admits client requests and assigns order numbers to the
// proposals this replica is responsible for. Without rotation the
// leader proposes every order number and followers forward requests to
// it; with rotation every replica proposes the requests it receives,
// using the order numbers of its rotation slot (§6.2).
//
// The admission path is built for many concurrent producers: requests
// arrive from every verify lane and commit-credits return from every
// pillar. Per-pillar in-flight accounting is atomic (credits never
// take the queue lock), the queue lock scopes only the append and the
// O(1) batch cut, and the dispatch loop is single-flighted through
// pumpGate so concurrent callers hand off instead of piling up on the
// mutex re-running the same scan.
type sequencer struct {
	e *Engine

	mu    sync.Mutex
	queue []*message.Request
	next  timeline.Order // next order number to propose from our slot

	// inFlight counts proposals awaiting commit, per pillar. Credits
	// are returned from pillar goroutines without touching mu.
	inFlight []atomic.Int32

	// pumpGate single-flights the dispatch loop: 0 = idle, 1 = a pump
	// is running, 2 = a pump is running and must re-scan before exiting
	// (work arrived while it ran).
	pumpGate atomic.Int32

	// outReqs counts requests dispatched but not yet returned by a
	// credit: the closed-loop population currently inside the pipeline.
	// Together with the queue length it bounds how many requests cycle
	// through this proposer, which is what decides whether holding a
	// partial batch can ever fill it.
	outReqs atomic.Int64
	// holdArmed marks a partial batch parked behind holdTimer (under mu).
	holdArmed bool
	holdTimer *time.Timer
	// flushNow, set by the timer, makes the next dispatch flush a
	// partial batch unconditionally; it bounds how long a hold can defer
	// a request and is what keeps the hold deadlock-free.
	flushNow atomic.Bool
}

// maxInFlightPerPillar bounds un-committed own proposals per pillar;
// beyond it requests accumulate in the queue, which is what makes
// batches grow under load.
const maxInFlightPerPillar = 4

// batchHold is the longest a partial batch may wait for more requests
// once its pillar is idle. A pillar that commits quickly (partitioned
// HybsterX pillars turn an instance around in well under a millisecond)
// would otherwise flush tiny batches on every credit and burn the
// saved time on per-instance protocol work.
const batchHold = 2 * time.Millisecond

// holdWorthwhile gates the partial-batch hold on closed-loop pressure:
// park a partial batch only when the requests queued plus those still
// inside the pipeline could fill it — fewer cycling clients than a
// batch means the hold would pay its latency without ever producing a
// full batch. Light traffic always dispatches immediately, so an idle
// system keeps single-request latency at one protocol round and a lone
// client never waits on the timer.
func (s *sequencer) holdWorthwhile(n int) bool {
	return n+int(s.outReqs.Load()) >= s.e.cfg.BatchSize
}

func newSequencer(e *Engine) *sequencer {
	s := &sequencer{e: e, inFlight: make([]atomic.Int32, e.cfg.Pillars)}
	s.next = s.firstSlot(0, 0)
	s.holdTimer = time.AfterFunc(batchHold, s.flushHeld)
	s.holdTimer.Stop()
	return s
}

// flushHeld is the hold timer's callback: release the parked partial
// batch on the next dispatch.
func (s *sequencer) flushHeld() {
	s.mu.Lock()
	s.holdArmed = false
	s.mu.Unlock()
	s.flushNow.Store(true)
	s.pump()
}

// firstSlot returns the smallest order > after that this replica
// proposes in view v. Without rotation a non-leader proposes nothing;
// the returned cursor is then a placeholder that resetForView fixes on
// the next leadership change.
func (s *sequencer) firstSlot(v timeline.View, after timeline.Order) timeline.Order {
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		return after + 1
	}
	o := after + 1
	for s.e.cfg.ProposerOf(v, o) != s.e.id {
		o++
	}
	return o
}

// admit ingests a client request from the transport. It verifies the
// client's authenticator; valid requests are queued for proposing if
// this replica is a proposer, or forwarded to the current leader
// otherwise. The engine's route normally runs the verification on the
// parallel verify stage and calls admitVerified directly; admit is the
// sequential path for callers that bypass the stage.
func (s *sequencer) admit(r *message.Request) {
	if !crypto.VerifyAuthenticator(s.e.ks, r.Auth, r.Digest()) {
		return
	}
	s.admitVerified(r)
}

// admitVerified queues or relays a request whose client authenticator
// has already been checked.
func (s *sequencer) admitVerified(r *message.Request) {
	s.e.noteWork()
	v := s.e.View()
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		// Followers relay to the leader; the client's own timeout
		// multicast already reaches it in the common case, so relaying
		// is best effort.
		_ = s.e.ep.Send(s.e.cfg.LeaderOf(v), r)
		return
	}
	s.mu.Lock()
	s.queue = append(s.queue, r)
	s.mu.Unlock()
	s.pump()
}

// pump schedules the dispatch loop, single-flighted: whichever caller
// wins the gate scans the queue; losers just mark it dirty and return.
// Verify-lane callbacks and pillar credits therefore never queue up on
// the mutex behind a dispatch already in progress.
func (s *sequencer) pump() {
	for {
		if s.pumpGate.CompareAndSwap(0, 1) {
			for {
				s.dispatch()
				if s.pumpGate.CompareAndSwap(1, 0) {
					return
				}
				// Marked dirty while we dispatched: clear and re-scan.
				s.pumpGate.Store(1)
			}
		}
		if s.pumpGate.CompareAndSwap(1, 2) || s.pumpGate.Load() == 2 {
			return // the running pump will re-scan
		}
		// The pump exited between our checks; try to take the gate.
	}
}

// dispatch proposes as many batches as in-flight credits allow. The
// queue lock scopes only the batch cut — an O(1) reslice — and is
// never held across the pillar hand-off.
func (s *sequencer) dispatch() {
	v := s.e.View()
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		// Not a proposer in this view (e.g. demoted by a view change):
		// relay anything still queued to the new leader.
		s.mu.Lock()
		queued := s.queue
		s.queue = nil
		s.mu.Unlock()
		for _, r := range queued {
			_ = s.e.ep.Send(s.e.cfg.LeaderOf(v), r)
		}
		return
	}
	for {
		s.mu.Lock()
		n := len(s.queue)
		if n == 0 {
			s.mu.Unlock()
			return
		}
		o := s.next
		u := s.e.cfg.PillarOf(o) % uint32(len(s.e.pillars))
		busy := int(s.inFlight[u].Load())
		if busy >= maxInFlightPerPillar {
			s.mu.Unlock()
			return
		}
		if n < s.e.cfg.BatchSize && !s.flushNow.Load() &&
			(busy > 0 || s.holdWorthwhile(n)) {
			// Hold the partial batch so it fills instead of fragmenting:
			// either the target pillar already has an instance in flight
			// (its credit usually flushes us well before the timer), or
			// the pillar is idle but enough requests cycle through this
			// proposer to fill a batch. Liveness never depends on the
			// credit returning — under faults an in-flight instance can
			// stall indefinitely (quorum loss, lost prepare), so the
			// timer's unconditional flush is armed on BOTH branches and
			// bounds the wait at batchHold.
			if !s.holdArmed {
				s.holdArmed = true
				s.holdTimer.Reset(batchHold)
			}
			s.mu.Unlock()
			return
		}
		s.flushNow.Store(false)
		var batch []*message.Request
		if n <= s.e.cfg.BatchSize {
			batch = s.queue
			s.queue = nil
		} else {
			n = s.e.cfg.BatchSize
			// Cut with a capped reslice: the batch keeps the head of the
			// backing array, the queue continues on the tail, and later
			// appends cannot reach into the batch.
			batch = s.queue[:n:n]
			s.queue = s.queue[n:]
		}
		s.next = s.nextSlot(v, o)
		s.inFlight[u].Add(1)
		s.outReqs.Add(int64(len(batch)))
		if s.holdArmed {
			s.holdArmed = false
			s.holdTimer.Stop()
		}
		s.mu.Unlock()

		s.e.pillars[u].inbox.Put(evPropose{view: v, order: o, batch: batch})
	}
}

// nextSlot returns the next order after o proposed by this replica.
func (s *sequencer) nextSlot(v timeline.View, o timeline.Order) timeline.Order {
	if !s.e.cfg.RotateLeader && s.e.cfg.LeaderOf(v) != s.e.id {
		return o + 1
	}
	n := o + 1
	for s.e.cfg.ProposerOf(v, n) != s.e.id {
		n++
	}
	return n
}

// credit returns an in-flight slot for pillar u, subtracts the
// instance's reqs from the outstanding population, and pumps the queue.
// It is lock-free: pillar goroutines returning commit-credits never
// contend with admission on the queue mutex. Both decrements clamp at
// zero — after a view reset, credits for dropped proposals may arrive
// late and must not underflow.
func (s *sequencer) credit(u uint32, reqs int) {
	c := &s.inFlight[u]
	for {
		v := c.Load()
		if v <= 0 {
			break
		}
		if c.CompareAndSwap(v, v-1) {
			break
		}
	}
	for {
		v := s.outReqs.Load()
		nv := v - int64(reqs)
		if nv < 0 {
			nv = 0
		}
		if v <= 0 || s.outReqs.CompareAndSwap(v, nv) {
			break
		}
	}
	s.pump()
}

// proposeNoop issues an empty proposal for order o if it belongs to
// this replica in view v; used to close execution gaps (§5.3.1).
func (s *sequencer) proposeNoop(v timeline.View, o timeline.Order) {
	if s.e.cfg.ProposerOf(v, o) != s.e.id {
		return
	}
	s.mu.Lock()
	if o < s.next {
		s.mu.Unlock()
		return // already proposed (or will be covered by the queue)
	}
	// Skip the slot cursor past o so regular proposals continue after
	// the no-op.
	for s.next <= o {
		s.next = s.nextSlot(v, s.next)
	}
	s.mu.Unlock()
	u := s.e.cfg.PillarOf(o) % uint32(len(s.e.pillars))
	s.e.met.noops.Inc()
	s.e.pillars[u].inbox.Put(evPropose{view: v, order: o, batch: nil})
}

// resetForView realigns the proposal cursor after a view change: the
// replica's first slot after the re-proposed range. In-flight
// accounting restarts at zero; stragglers crediting dropped proposals
// are absorbed by credit's clamp.
func (s *sequencer) resetForView(v timeline.View, after timeline.Order) {
	s.mu.Lock()
	s.next = s.firstSlot(v, after)
	for i := range s.inFlight {
		s.inFlight[i].Store(0)
	}
	s.outReqs.Store(0)
	s.mu.Unlock()
	s.pump()
}
