package core

import (
	"fmt"

	"hybster/internal/message"
	"hybster/internal/telemetry"
	"hybster/internal/timeline"
	"hybster/internal/transport"
	"hybster/internal/trinx"
)

// computeTransfer derives the state transferred into a new view from a
// set of logical VIEW-CHANGEs (and acknowledgments): the starting
// checkpoint (the newest among the quorum) and, for every order number
// from there to the highest disclosed prepare, the batch to re-propose
// — the highest-view prepare wins, gaps become no-ops (§5.2.3, §5.3.3).
func computeTransfer(vcSet map[uint32][]*message.ViewChange, ackSet map[uint32][]*message.NewViewAck) (startCkpt timeline.Order, props []reProposal) {
	best := make(map[timeline.Order]*message.Prepare)
	merge := func(ps []*message.Prepare) {
		for _, p := range ps {
			if cur, ok := best[p.Order]; !ok || p.View > cur.View {
				best[p.Order] = p
			}
		}
	}
	for _, parts := range vcSet {
		for _, part := range parts {
			if part.CkptOrder > startCkpt {
				startCkpt = part.CkptOrder
			}
			merge(part.Prepares)
		}
	}
	for _, parts := range ackSet {
		for _, a := range parts {
			if a != nil {
				merge(a.Prepares)
			}
		}
	}
	var maxO timeline.Order
	for o := range best {
		if o > maxO {
			maxO = o
		}
	}
	for o := startCkpt + 1; o <= maxO; o++ {
		var batch []*message.Request
		if p, ok := best[o]; ok {
			batch = p.Requests
		}
		props = append(props, reProposal{order: o, batch: batch})
	}
	return startCkpt, props
}

// completeAcks returns the logical (all pillar parts present)
// acknowledgments for view v, keyed by replica.
func (c *coordinator) completeAcks(v timeline.View) map[uint32][]*message.NewViewAck {
	out := make(map[uint32][]*message.NewViewAck)
	for r, parts := range c.acks[v] {
		ok := len(parts) > 0
		for _, p := range parts {
			if p == nil {
				ok = false
			}
		}
		if ok {
			out[r] = parts
		}
	}
	return out
}

// checkFromRule verifies the new-view-acknowledgment condition of
// §5.2.3: the highest v_from among the quorum's VIEW-CHANGEs must be
// confirmed as properly established by at least f+1 replicas — either
// through VCs with that v_from or through NEW-VIEW-ACKs for it.
func (c *coordinator) checkFromRule(vcSet map[uint32][]*message.ViewChange, ackSet map[uint32][]*message.NewViewAck) (timeline.View, bool) {
	var vmax timeline.View
	for _, parts := range vcSet {
		if parts[0].From > vmax {
			vmax = parts[0].From
		}
	}
	if vmax == 0 {
		return 0, true // the initial view is established by definition
	}
	confirm := make(map[uint32]bool)
	for r, parts := range vcSet {
		if parts[0].From == vmax {
			confirm[r] = true
		}
	}
	for r, parts := range ackSet {
		if parts[0].View == vmax {
			confirm[r] = true
		}
	}
	return vmax, len(confirm) >= c.e.cfg.F()+1
}

// maybeEmitNewView attempts to produce the NEW-VIEW for view w; the
// replica must be w's designated leader and must itself have aborted
// into w.
func (c *coordinator) maybeEmitNewView(w timeline.View) {
	if c.nvEmitted[w] || c.e.cfg.LeaderOf(w) != c.e.id {
		return
	}
	if !c.pending || c.pendingTo != w {
		return
	}
	vcSet := c.completeVCs(w)
	if len(vcSet) < c.e.cfg.Quorum() {
		return
	}
	vmax, ok := c.checkFromRule(vcSet, c.completeAcks(maxFrom(vcSet)))
	if !ok {
		return
	}
	ackSet := c.completeAcks(vmax)
	startCkpt, props := computeTransfer(vcSet, ackSet)
	if startCkpt > c.lastStable.order {
		// The quorum is ahead of our state; fetch it first and retry
		// when the transfer completes.
		c.maybeRequestState()
		return
	}

	// Certify the re-proposals on their responsible pillars.
	pillars := len(c.e.pillars)
	byPillar := make([][]reProposal, pillars)
	for _, rp := range props {
		u := c.e.cfg.PillarOf(rp.order) % uint32(pillars)
		byPillar[u] = append(byPillar[u], rp)
	}
	newPreps := make([][]*message.Prepare, pillars)
	for u := 0; u < pillars; u++ {
		reply := make(chan []*message.Prepare, 1)
		c.e.pillars[u].inbox.Put(evRepropose{view: w, props: byPillar[u], reply: reply})
		var ps []*message.Prepare
		select {
		case ps = <-reply:
		case <-c.e.stopped:
			return
		}
		if ps == nil && len(byPillar[u]) > 0 {
			return // counter refused; stale attempt
		}
		newPreps[u] = ps
	}

	// Assemble and send the per-pillar NEW-VIEW parts.
	parts := make([]*message.NewView, pillars)
	for u := 0; u < pillars; u++ {
		nv := &message.NewView{View: w, Pillar: uint32(u)}
		for _, vcParts := range vcSet {
			nv.VCs = append(nv.VCs, vcParts[u])
		}
		for _, ackParts := range ackSet {
			nv.Acks = append(nv.Acks, ackParts[u])
		}
		nv.Prepares = newPreps[u]
		cert, err := c.tx.CreateTrustedMAC(counterM, nv.Digest())
		if err != nil {
			return
		}
		nv.Cert = cert
		parts[u] = nv
	}
	for _, nv := range parts {
		transport.Multicast(c.e.ep, c.e.cfg.N, nv)
	}
	c.lastNV = parts
	c.nvEmitted[w] = true
	c.installNewView(w, startCkpt, newPreps, true, vcSet)
}

func maxFrom(vcSet map[uint32][]*message.ViewChange) timeline.View {
	var vmax timeline.View
	for _, parts := range vcSet {
		if parts[0].From > vmax {
			vmax = parts[0].From
		}
	}
	return vmax
}

// handleNewView ingests one NEW-VIEW part from the leader of its view.
func (c *coordinator) handleNewView(from uint32, nv *message.NewView) {
	w := nv.View
	if w <= c.curView {
		return
	}
	if from != c.e.cfg.LeaderOf(w) {
		return
	}
	if int(nv.Pillar) >= len(c.e.pillars) {
		return
	}
	if nv.Cert.Kind != trinx.Continuing || nv.Cert.Value != nv.Cert.Prev ||
		nv.Cert.Issuer.Replica() != from {
		return
	}
	if err := c.tx.Verify(nv.Cert, nv.Digest()); err != nil {
		return
	}
	parts := c.nvParts[w]
	if parts == nil {
		parts = make([]*message.NewView, len(c.e.pillars))
		c.nvParts[w] = parts
	}
	if parts[nv.Pillar] == nil {
		parts[nv.Pillar] = nv
	}
	for _, p := range parts {
		if p == nil {
			return // incomplete; wait for the remaining parts
		}
	}
	c.processNewView(w, parts)
}

// processNewView validates a complete NEW-VIEW exactly as the leader
// must have computed it, then either installs the view or — if this
// replica already aborted it — acknowledges it (§5.2.3).
func (c *coordinator) processNewView(w timeline.View, parts []*message.NewView) {
	vcSet, ackSet, err := c.reassemble(w, parts)
	if err != nil {
		delete(c.nvParts, w)
		return
	}
	if len(vcSet) < c.e.cfg.Quorum() {
		return
	}
	if _, ok := c.checkFromRule(vcSet, ackSet); !ok {
		return
	}
	startCkpt, props := computeTransfer(vcSet, ackSet)

	// Validate the leader's re-proposals against our own computation.
	leader := c.e.cfg.LeaderOf(w)
	pillars := len(c.e.pillars)
	newPreps := make([][]*message.Prepare, pillars)
	total := 0
	expected := make(map[timeline.Order][]*message.Request, len(props))
	for _, rp := range props {
		expected[rp.order] = rp.batch
	}
	for u, nv := range parts {
		for _, p := range nv.Prepares {
			if p.View != w || p.Order <= startCkpt {
				return
			}
			if c.e.cfg.PillarOf(p.Order)%uint32(pillars) != uint32(u) {
				return
			}
			if p.Cert.Issuer != trinx.MakeInstanceID(leader, uint32(u)) ||
				p.Cert.Kind != trinx.Independent ||
				p.Cert.Value != uint64(timeline.Pack(w, p.Order)) {
				return
			}
			if err := c.tx.Verify(p.Cert, p.Digest()); err != nil {
				return
			}
			want, ok := expected[p.Order]
			if !ok || message.BatchDigest(want) != p.BatchDigest() {
				return
			}
			delete(expected, p.Order)
			newPreps[u] = append(newPreps[u], p)
			total++
		}
		sortPrepares(newPreps[u])
	}
	if total != len(props) || len(expected) != 0 {
		return // leader omitted or invented instances
	}

	for _, ps := range newPreps {
		c.mergeLearned(ps)
	}

	if c.pending && c.pendingTo > w {
		// Already aborted this view: acknowledge instead of installing
		// so a future leader can count view w as properly established.
		c.sendAcks(w, newPreps)
		return
	}
	c.lastNV = parts
	c.installNewView(w, startCkpt, newPreps, false, vcSet)
}

// reassemble reconstructs logical VIEW-CHANGEs and acknowledgments
// from the per-pillar NEW-VIEW parts, verifying every piece.
func (c *coordinator) reassemble(w timeline.View, parts []*message.NewView) (map[uint32][]*message.ViewChange, map[uint32][]*message.NewViewAck, error) {
	pillars := len(c.e.pillars)
	vcSet := make(map[uint32][]*message.ViewChange)
	ackSet := make(map[uint32][]*message.NewViewAck)
	for u, nv := range parts {
		for _, vc := range nv.VCs {
			if vc.To != w || int(vc.Pillar) != u {
				return nil, nil, fmt.Errorf("core: misplaced VC part")
			}
			if err := c.e.verifyViewChangePart(c.tx, vc); err != nil {
				return nil, nil, err
			}
			ps := vcSet[vc.Replica]
			if ps == nil {
				ps = make([]*message.ViewChange, pillars)
				vcSet[vc.Replica] = ps
			}
			ps[u] = vc
		}
		for _, a := range nv.Acks {
			if int(a.Pillar) != u {
				return nil, nil, fmt.Errorf("core: misplaced ack part")
			}
			if err := c.e.verifyNewViewAckPart(c.tx, a); err != nil {
				return nil, nil, err
			}
			ps := ackSet[a.Replica]
			if ps == nil {
				ps = make([]*message.NewViewAck, pillars)
				ackSet[a.Replica] = ps
			}
			ps[u] = a
		}
	}
	for r, ps := range vcSet {
		if !logicalVCComplete(ps) {
			delete(vcSet, r)
		}
	}
	for r, ps := range ackSet {
		for _, p := range ps {
			if p == nil {
				delete(ackSet, r)
				break
			}
		}
	}
	return vcSet, ackSet, nil
}

// sendAcks multicasts per-pillar NEW-VIEW-ACKs for view w carrying the
// prepares learned from its NEW-VIEW, and retains them locally:
// Multicast skips self, but our own acknowledgment is From-rule
// evidence we may need when we later lead a view ourselves.
func (c *coordinator) sendAcks(w timeline.View, newPreps [][]*message.Prepare) {
	own := make([]*message.NewViewAck, len(c.e.pillars))
	for u := range c.e.pillars {
		ack := &message.NewViewAck{Replica: c.e.id, Pillar: uint32(u), View: w, Prepares: newPreps[u]}
		cert, err := c.tx.CreateTrustedMAC(counterM, ack.Digest())
		if err != nil {
			return
		}
		ack.Cert = cert
		own[u] = ack
		transport.Multicast(c.e.ep, c.e.cfg.N, ack)
	}
	byReplica, ok := c.acks[w]
	if !ok {
		byReplica = make(map[uint32][]*message.NewViewAck)
		c.acks[w] = byReplica
	}
	byReplica[c.e.id] = own
}

// installNewView makes view w stable: updates coordinator and engine
// state, slides windows, hands each pillar its re-proposals, and
// realigns the sequencer past the transferred range.
func (c *coordinator) installNewView(w timeline.View, startCkpt timeline.Order, newPreps [][]*message.Prepare, leader bool, vcSet map[uint32][]*message.ViewChange) {
	c.curView = w
	c.e.curView.Store(uint64(w))
	c.e.trace(telemetry.EvNewView, uint64(w), uint64(startCkpt), 0, "")
	c.pending = false
	c.pendingTo = 0
	// Reset suspicion to the installed view: any desire for a higher
	// view was evidence of pre-w stuckness, now obsolete. If w is stuck
	// too, the watchdog and the join rule re-raise it. Without the
	// clamp a replica that installs w while desired is already w+1
	// abandons the fresh view before it can order anything.
	c.desired = w

	// Adopt the new-view checkpoint if it is ahead of ours; the proof
	// comes from any VC that declared it.
	if startCkpt > c.lastStable.order {
		for _, parts := range vcSet {
			if parts[0].CkptOrder == startCkpt {
				c.lastStable = stableCkpt{
					order:  startCkpt,
					digest: parts[0].CkptDigest,
					proof:  parts[0].CkptProof,
				}
				break
			}
		}
		if startCkpt > c.e.exec.lastExecuted() {
			c.maybeRequestState()
		}
	}

	var maxOrder timeline.Order = startCkpt
	for u, ps := range newPreps {
		c.e.pillars[u].inbox.Put(evInstallView{
			view: w, startCkpt: startCkpt, prepares: ps, leader: leader,
		})
		for _, p := range ps {
			if p.Order > maxOrder {
				maxOrder = p.Order
			}
		}
	}

	// Prune stores for superseded views.
	for v := range c.vcs {
		if v <= w {
			delete(c.vcs, v)
		}
	}
	for v := range c.acks {
		// Keep acks for w itself: they confirm the view we just
		// installed as properly established, which the From rule of the
		// next view we lead will demand.
		if v < w {
			delete(c.acks, v)
		}
	}
	for v := range c.nvParts {
		if v <= w {
			delete(c.nvParts, v)
		}
	}
	for v := range c.ownVC {
		if v <= w {
			delete(c.ownVC, v)
		}
	}
	for v := range c.nvEmitted {
		if v < w {
			delete(c.nvEmitted, v)
		}
	}

	c.e.seq.resetForView(w, maxOrder)
	c.e.noteProgress(false)
}
