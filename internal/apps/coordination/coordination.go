// Package coordination implements the ZooKeeper-inspired coordination
// service of §6.4: a hierarchical namespace of nodes (znodes) holding
// small data blobs, with create/delete/set/get/exists/children
// operations and per-node versioning. Unlike ZooKeeper it performs no
// read optimization — reads are ordered like writes — and therefore
// provides strong consistency, exactly as the paper's evaluation
// requires.
//
// Operations are serialized into request payloads with Encode*; the
// service decodes them in Execute. Groups of clients can build locks,
// membership, and leader election on this interface (see
// examples/coordination).
package coordination

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hybster/internal/message"
)

// Op identifies a coordination operation.
type Op uint8

// Operations of the coordination API.
const (
	OpCreate Op = iota + 1
	OpDelete
	OpSetData
	OpGetData
	OpExists
	OpChildren
)

// Status is the first byte of every result.
type Status uint8

// Result status codes.
const (
	StatusOK Status = iota + 1
	StatusNodeExists
	StatusNoNode
	StatusNotEmpty
	StatusBadVersion
	StatusBadRequest
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNodeExists:
		return "NodeExists"
	case StatusNoNode:
		return "NoNode"
	case StatusNotEmpty:
		return "NotEmpty"
	case StatusBadVersion:
		return "BadVersion"
	case StatusBadRequest:
		return "BadRequest"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// node is one znode.
type node struct {
	data     []byte
	version  uint64
	children map[string]*node
}

func newNode() *node { return &node{children: make(map[string]*node)} }

// Service is the coordination service application.
type Service struct {
	mu   sync.Mutex
	root *node
}

// New creates an empty namespace with a root node "/".
func New() *Service { return &Service{root: newNode()} }

// --- request/response encoding ---

// EncodeRequest builds a request payload for op on path. data is used
// by Create and SetData; expectedVersion is used by SetData and Delete
// (0 means "any version").
func EncodeRequest(op Op, path string, data []byte, expectedVersion uint64) []byte {
	e := message.NewEncoder(16 + len(path) + len(data))
	e.U8(uint8(op))
	e.U64(expectedVersion)
	e.VarBytes([]byte(path))
	e.VarBytes(data)
	return e.Bytes()
}

// IsReadOnly reports whether op can be flagged read-only in requests.
func (o Op) IsReadOnly() bool {
	return o == OpGetData || o == OpExists || o == OpChildren
}

// Result is a decoded operation result.
type Result struct {
	Status  Status
	Version uint64
	Data    []byte
	// Children is set for OpChildren results.
	Children []string
}

// DecodeResult parses a service reply.
func DecodeResult(buf []byte) (Result, error) {
	d := message.NewDecoder(buf)
	r := Result{Status: Status(d.U8()), Version: d.U64()}
	r.Data = append([]byte(nil), d.VarBytes()...)
	n := d.Len(1)
	for i := 0; i < n; i++ {
		r.Children = append(r.Children, string(d.VarBytes()))
	}
	if err := d.Finish(); err != nil {
		return Result{}, err
	}
	return r, nil
}

func encodeResult(r Result) []byte {
	e := message.NewEncoder(16 + len(r.Data))
	e.U8(uint8(r.Status))
	e.U64(r.Version)
	e.VarBytes(r.Data)
	e.Len(len(r.Children))
	for _, c := range r.Children {
		e.VarBytes([]byte(c))
	}
	return e.Bytes()
}

// --- Application implementation ---

// Execute implements statemachine.Application.
func (s *Service) Execute(client uint32, payload []byte, readOnly bool) []byte {
	d := message.NewDecoder(payload)
	op := Op(d.U8())
	version := d.U64()
	path := string(d.VarBytes())
	data := append([]byte(nil), d.VarBytes()...)
	if d.Finish() != nil {
		return encodeResult(Result{Status: StatusBadRequest})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return encodeResult(s.apply(op, path, data, version))
}

func (s *Service) apply(op Op, path string, data []byte, version uint64) Result {
	switch op {
	case OpCreate:
		return s.create(path, data)
	case OpDelete:
		return s.delete(path, version)
	case OpSetData:
		return s.setData(path, data, version)
	case OpGetData:
		return s.getData(path)
	case OpExists:
		return s.exists(path)
	case OpChildren:
		return s.childrenOf(path)
	default:
		return Result{Status: StatusBadRequest}
	}
}

// split validates a path and returns its components; the root "/" has
// no components.
func split(path string) ([]string, bool) {
	if path == "" || path[0] != '/' || (len(path) > 1 && strings.HasSuffix(path, "/")) {
		return nil, false
	}
	if path == "/" {
		return nil, true
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, false
		}
	}
	return parts, true
}

// lookup walks to the node at path.
func (s *Service) lookup(path string) (*node, bool) {
	parts, ok := split(path)
	if !ok {
		return nil, false
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, false
		}
		n = child
	}
	return n, true
}

func (s *Service) create(path string, data []byte) Result {
	parts, ok := split(path)
	if !ok || len(parts) == 0 {
		return Result{Status: StatusBadRequest}
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return Result{Status: StatusNoNode} // parents must exist
		}
		parent = child
	}
	name := parts[len(parts)-1]
	if _, exists := parent.children[name]; exists {
		return Result{Status: StatusNodeExists}
	}
	n := newNode()
	n.data = data
	n.version = 1
	parent.children[name] = n
	return Result{Status: StatusOK, Version: 1}
}

func (s *Service) delete(path string, version uint64) Result {
	parts, ok := split(path)
	if !ok || len(parts) == 0 {
		return Result{Status: StatusBadRequest}
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return Result{Status: StatusNoNode}
		}
		parent = child
	}
	name := parts[len(parts)-1]
	n, exists := parent.children[name]
	if !exists {
		return Result{Status: StatusNoNode}
	}
	if version != 0 && n.version != version {
		return Result{Status: StatusBadVersion, Version: n.version}
	}
	if len(n.children) != 0 {
		return Result{Status: StatusNotEmpty}
	}
	delete(parent.children, name)
	return Result{Status: StatusOK}
}

func (s *Service) setData(path string, data []byte, version uint64) Result {
	n, ok := s.lookup(path)
	if !ok {
		if _, valid := split(path); !valid {
			return Result{Status: StatusBadRequest}
		}
		return Result{Status: StatusNoNode}
	}
	if version != 0 && n.version != version {
		return Result{Status: StatusBadVersion, Version: n.version}
	}
	n.data = data
	n.version++
	return Result{Status: StatusOK, Version: n.version}
}

func (s *Service) getData(path string) Result {
	n, ok := s.lookup(path)
	if !ok {
		if _, valid := split(path); !valid {
			return Result{Status: StatusBadRequest}
		}
		return Result{Status: StatusNoNode}
	}
	return Result{Status: StatusOK, Version: n.version, Data: append([]byte(nil), n.data...)}
}

func (s *Service) exists(path string) Result {
	n, ok := s.lookup(path)
	if !ok {
		if _, valid := split(path); !valid {
			return Result{Status: StatusBadRequest}
		}
		return Result{Status: StatusNoNode}
	}
	return Result{Status: StatusOK, Version: n.version}
}

func (s *Service) childrenOf(path string) Result {
	n, ok := s.lookup(path)
	if !ok {
		if _, valid := split(path); !valid {
			return Result{Status: StatusBadRequest}
		}
		return Result{Status: StatusNoNode}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return Result{Status: StatusOK, Version: n.version, Children: names}
}

// --- snapshot / restore ---

// Snapshot implements statemachine.Application; the encoding is a
// deterministic pre-order walk with sorted children.
func (s *Service) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := message.NewEncoder(1024)
	snapshotNode(e, s.root)
	return e.Bytes()
}

func snapshotNode(e *message.Encoder, n *node) {
	e.VarBytes(n.data)
	e.U64(n.version)
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	e.Len(len(names))
	for _, name := range names {
		e.VarBytes([]byte(name))
		snapshotNode(e, n.children[name])
	}
}

// SnapshotView implements statemachine.SnapshotViewer: the tree is
// cloned structurally under the lock (pointers and data slices are
// never mutated in place — SetData replaces the data slice), and the
// deterministic encode runs later against the clone.
func (s *Service) SnapshotView() func() []byte {
	s.mu.Lock()
	root := cloneNode(s.root)
	s.mu.Unlock()
	return func() []byte {
		e := message.NewEncoder(1024)
		snapshotNode(e, root)
		return e.Bytes()
	}
}

func cloneNode(n *node) *node {
	c := &node{data: n.data, version: n.version, children: make(map[string]*node, len(n.children))}
	for name, child := range n.children {
		c.children[name] = cloneNode(child)
	}
	return c
}

// Restore implements statemachine.Application.
func (s *Service) Restore(snapshot []byte) error {
	d := message.NewDecoder(snapshot)
	root, err := restoreNode(d, 0)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("coordination: snapshot: %w", err)
	}
	s.mu.Lock()
	s.root = root
	s.mu.Unlock()
	return nil
}

// maxTreeDepth bounds snapshot recursion against corrupt input.
const maxTreeDepth = 256

func restoreNode(d *message.Decoder, depth int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("coordination: snapshot tree too deep")
	}
	n := newNode()
	n.data = append([]byte(nil), d.VarBytes()...)
	n.version = d.U64()
	count := d.Len(1)
	for i := 0; i < count; i++ {
		name := string(d.VarBytes())
		if d.Err() != nil {
			return nil, d.Err()
		}
		child, err := restoreNode(d, depth+1)
		if err != nil {
			return nil, err
		}
		n.children[name] = child
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return n, nil
}

// NodeCount returns the number of znodes excluding the root
// (diagnostics).
func (s *Service) NodeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return countNodes(s.root) - 1
}

func countNodes(n *node) int {
	c := 1
	for _, child := range n.children {
		c += countNodes(child)
	}
	return c
}
