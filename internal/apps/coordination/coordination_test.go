package coordination

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// do executes one operation directly against the service.
func do(t *testing.T, s *Service, op Op, path string, data []byte, version uint64) Result {
	t.Helper()
	out := s.Execute(1, EncodeRequest(op, path, data, version), op.IsReadOnly())
	r, err := DecodeResult(out)
	if err != nil {
		t.Fatalf("%v %s: decode: %v", op, path, err)
	}
	return r
}

func TestCreateGetSetDelete(t *testing.T) {
	s := New()
	if r := do(t, s, OpCreate, "/a", []byte("v1"), 0); r.Status != StatusOK || r.Version != 1 {
		t.Fatalf("create: %+v", r)
	}
	if r := do(t, s, OpGetData, "/a", nil, 0); r.Status != StatusOK || string(r.Data) != "v1" {
		t.Fatalf("get: %+v", r)
	}
	if r := do(t, s, OpSetData, "/a", []byte("v2"), 0); r.Status != StatusOK || r.Version != 2 {
		t.Fatalf("set: %+v", r)
	}
	if r := do(t, s, OpGetData, "/a", nil, 0); string(r.Data) != "v2" || r.Version != 2 {
		t.Fatalf("get2: %+v", r)
	}
	if r := do(t, s, OpDelete, "/a", nil, 0); r.Status != StatusOK {
		t.Fatalf("delete: %+v", r)
	}
	if r := do(t, s, OpGetData, "/a", nil, 0); r.Status != StatusNoNode {
		t.Fatalf("get after delete: %+v", r)
	}
}

func TestHierarchy(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/app", nil, 0)
	do(t, s, OpCreate, "/app/locks", nil, 0)
	do(t, s, OpCreate, "/app/locks/l1", []byte("holder"), 0)
	do(t, s, OpCreate, "/app/members", nil, 0)

	r := do(t, s, OpChildren, "/app", nil, 0)
	if len(r.Children) != 2 || r.Children[0] != "locks" || r.Children[1] != "members" {
		t.Fatalf("children: %+v", r.Children)
	}
	// Parent must exist for create.
	if r := do(t, s, OpCreate, "/missing/x", nil, 0); r.Status != StatusNoNode {
		t.Fatalf("orphan create: %+v", r)
	}
	// Non-empty node cannot be deleted.
	if r := do(t, s, OpDelete, "/app/locks", nil, 0); r.Status != StatusNotEmpty {
		t.Fatalf("delete non-empty: %+v", r)
	}
	if s.NodeCount() != 4 {
		t.Fatalf("NodeCount = %d", s.NodeCount())
	}
}

func TestVersionedOperations(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/a", []byte("v1"), 0)
	// Wrong expected version rejected; reports the actual one.
	if r := do(t, s, OpSetData, "/a", []byte("x"), 9); r.Status != StatusBadVersion || r.Version != 1 {
		t.Fatalf("set wrong version: %+v", r)
	}
	if r := do(t, s, OpSetData, "/a", []byte("x"), 1); r.Status != StatusOK || r.Version != 2 {
		t.Fatalf("set right version: %+v", r)
	}
	if r := do(t, s, OpDelete, "/a", nil, 1); r.Status != StatusBadVersion {
		t.Fatalf("delete wrong version: %+v", r)
	}
	if r := do(t, s, OpDelete, "/a", nil, 2); r.Status != StatusOK {
		t.Fatalf("delete right version: %+v", r)
	}
}

func TestDuplicateCreate(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/a", nil, 0)
	if r := do(t, s, OpCreate, "/a", nil, 0); r.Status != StatusNodeExists {
		t.Fatalf("dup create: %+v", r)
	}
}

func TestExists(t *testing.T) {
	s := New()
	if r := do(t, s, OpExists, "/a", nil, 0); r.Status != StatusNoNode {
		t.Fatalf("exists missing: %+v", r)
	}
	do(t, s, OpCreate, "/a", nil, 0)
	if r := do(t, s, OpExists, "/a", nil, 0); r.Status != StatusOK || r.Version != 1 {
		t.Fatalf("exists: %+v", r)
	}
	if r := do(t, s, OpExists, "/", nil, 0); r.Status != StatusOK {
		t.Fatalf("root exists: %+v", r)
	}
}

func TestBadPaths(t *testing.T) {
	s := New()
	for _, p := range []string{"", "a", "//", "/a/", "/a//b", "noSlash"} {
		if r := do(t, s, OpCreate, p, nil, 0); r.Status != StatusBadRequest {
			t.Errorf("path %q: %+v", p, r)
		}
	}
	// Creating or deleting the root is invalid.
	if r := do(t, s, OpCreate, "/", nil, 0); r.Status != StatusBadRequest {
		t.Errorf("create root: %+v", r)
	}
	if r := do(t, s, OpDelete, "/", nil, 0); r.Status != StatusBadRequest {
		t.Errorf("delete root: %+v", r)
	}
}

func TestMalformedPayload(t *testing.T) {
	s := New()
	out := s.Execute(1, []byte{0xff, 0x01}, false)
	r, err := DecodeResult(out)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusBadRequest {
		t.Fatalf("malformed payload: %+v", r)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/a", []byte("1"), 0)
	do(t, s, OpCreate, "/a/b", []byte("2"), 0)
	do(t, s, OpCreate, "/a/c", []byte("3"), 0)
	do(t, s, OpSetData, "/a/b", []byte("2x"), 0)
	snap := s.Snapshot()

	s2 := New()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s2.Snapshot(), snap) {
		t.Fatal("snapshot not stable across restore")
	}
	if r := do(t, s2, OpGetData, "/a/b", nil, 0); string(r.Data) != "2x" || r.Version != 2 {
		t.Fatalf("restored node: %+v", r)
	}
	if s2.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", s2.NodeCount())
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/a", []byte("1"), 0)
	snap := s.Snapshot()
	if err := New().Restore(snap[:len(snap)-2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotDeterministicAcrossInsertionOrders(t *testing.T) {
	a, b := New(), New()
	paths := []string{"/x", "/y", "/z", "/x/1", "/x/2"}
	for _, p := range paths {
		do(t, a, OpCreate, p, []byte(p), 0)
	}
	for i := len(paths) - 1; i >= 0; i-- {
		// Reverse order fails for children before parents; do parents
		// first, then reversed leaves.
		_ = i
	}
	do(t, b, OpCreate, "/z", []byte("/z"), 0)
	do(t, b, OpCreate, "/y", []byte("/y"), 0)
	do(t, b, OpCreate, "/x", []byte("/x"), 0)
	do(t, b, OpCreate, "/x/2", []byte("/x/2"), 0)
	do(t, b, OpCreate, "/x/1", []byte("/x/1"), 0)
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("insertion order leaked into snapshot")
	}
}

func TestResultEncodingRoundtrip(t *testing.T) {
	err := quick.Check(func(status uint8, version uint64, data []byte, kids []string) bool {
		if status == 0 {
			status = 1
		}
		// Normalize: nil slices decode as nil.
		in := Result{Status: Status(status), Version: version, Data: data, Children: kids}
		got, err := DecodeResult(encodeResult(in))
		if err != nil {
			return false
		}
		if got.Status != in.Status || got.Version != in.Version || !bytes.Equal(got.Data, in.Data) {
			return false
		}
		if len(got.Children) != len(in.Children) {
			return false
		}
		for i := range kids {
			if got.Children[i] != kids[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyClassification(t *testing.T) {
	if !OpGetData.IsReadOnly() || !OpExists.IsReadOnly() || !OpChildren.IsReadOnly() {
		t.Fatal("reads misclassified")
	}
	if OpCreate.IsReadOnly() || OpSetData.IsReadOnly() || OpDelete.IsReadOnly() {
		t.Fatal("writes misclassified")
	}
}

func TestManyNodesStress(t *testing.T) {
	s := New()
	do(t, s, OpCreate, "/n", nil, 0)
	const count = 500
	for i := 0; i < count; i++ {
		if r := do(t, s, OpCreate, fmt.Sprintf("/n/z%03d", i), []byte{byte(i)}, 0); r.Status != StatusOK {
			t.Fatalf("create %d: %+v", i, r)
		}
	}
	r := do(t, s, OpChildren, "/n", nil, 0)
	if len(r.Children) != count {
		t.Fatalf("children = %d", len(r.Children))
	}
	// Sorted?
	for i := 1; i < len(r.Children); i++ {
		if r.Children[i-1] >= r.Children[i] {
			t.Fatal("children not sorted")
		}
	}
	snap := s.Snapshot()
	s2 := New()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.NodeCount() != count+1 {
		t.Fatalf("restored NodeCount = %d", s2.NodeCount())
	}
}
