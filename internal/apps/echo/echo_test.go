package echo

import (
	"bytes"
	"testing"
)

func TestFixedReplySize(t *testing.T) {
	s := New(128)
	out := s.Execute(1, []byte("ignored"), false)
	if len(out) != 128 {
		t.Fatalf("reply size = %d", len(out))
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	// Reads do not advance the counter.
	s.Execute(1, nil, true)
	if s.Count() != 1 {
		t.Fatalf("read advanced count: %d", s.Count())
	}
}

func TestEchoMode(t *testing.T) {
	s := New(-1)
	payload := []byte("ping")
	if out := s.Execute(1, payload, false); !bytes.Equal(out, payload) {
		t.Fatalf("echo = %q", out)
	}
}

func TestEmptyReplies(t *testing.T) {
	s := New(0)
	if out := s.Execute(1, []byte("x"), false); len(out) != 0 {
		t.Fatalf("reply = %q", out)
	}
}

func TestSnapshotRestoreDigestEquality(t *testing.T) {
	a, b := New(0), New(0)
	for i := 0; i < 5; i++ {
		a.Execute(1, nil, false)
	}
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Count() != a.Count() {
		t.Fatalf("restored count %d != %d", b.Count(), a.Count())
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshots diverge")
	}
}
