// Package echo provides the microbenchmark service of §6.2/§6.3: it
// returns results "without any calculation". The reply payload size is
// configurable so the harness can reproduce the 0-byte, 128-byte, 1-kB
// and 4-kB workloads of the paper.
package echo

import "sync"

// Service is the microbenchmark application. It is stateless except
// for a request counter (part of the snapshot so replicas stay
// digest-identical).
type Service struct {
	mu        sync.Mutex
	replySize int
	count     uint64
	reply     []byte
}

// New creates an echo service producing replies of replySize bytes.
// With replySize < 0 the service echoes the request payload instead.
func New(replySize int) *Service {
	s := &Service{replySize: replySize}
	if replySize > 0 {
		s.reply = make([]byte, replySize)
	}
	return s
}

// Execute implements statemachine.Application.
func (s *Service) Execute(client uint32, payload []byte, readOnly bool) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !readOnly {
		s.count++
	}
	if s.replySize < 0 {
		return payload
	}
	return s.reply
}

// Snapshot implements statemachine.Application.
func (s *Service) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte{
		byte(s.count >> 56), byte(s.count >> 48), byte(s.count >> 40), byte(s.count >> 32),
		byte(s.count >> 24), byte(s.count >> 16), byte(s.count >> 8), byte(s.count),
	}
}

// SnapshotView implements statemachine.SnapshotViewer: the state is
// one counter, so the view captures it by value and encodes lazily.
func (s *Service) SnapshotView() func() []byte {
	s.mu.Lock()
	count := s.count
	s.mu.Unlock()
	return func() []byte {
		return []byte{
			byte(count >> 56), byte(count >> 48), byte(count >> 40), byte(count >> 32),
			byte(count >> 24), byte(count >> 16), byte(count >> 8), byte(count),
		}
	}
}

// Restore implements statemachine.Application.
func (s *Service) Restore(snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count = 0
	for _, b := range snapshot {
		s.count = s.count<<8 | uint64(b)
	}
	return nil
}

// Count returns the number of writes executed (diagnostics).
func (s *Service) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
