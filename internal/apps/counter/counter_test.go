package counter

import (
	"encoding/binary"
	"testing"
)

func TestAddAndRead(t *testing.T) {
	s := New()
	out := s.Execute(1, []byte{5}, false)
	if v := binary.BigEndian.Uint64(out); v != 5 {
		t.Fatalf("value = %d", v)
	}
	// Empty payload adds 1.
	s.Execute(1, nil, false)
	if s.Value() != 6 {
		t.Fatalf("value = %d", s.Value())
	}
	// Reads return without mutating.
	out = s.Execute(1, []byte{9}, true)
	if v := binary.BigEndian.Uint64(out); v != 6 || s.Value() != 6 {
		t.Fatalf("read mutated: %d / %d", v, s.Value())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Execute(1, []byte{42}, false)
	snap := s.Snapshot()

	fresh := New()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Value() != 42 {
		t.Fatalf("restored value = %d", fresh.Value())
	}
	if err := fresh.Restore([]byte{1, 2}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}
