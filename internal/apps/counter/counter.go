// Package counter is a tiny deterministic replicated counter used by
// the examples and integration tests: every write request adds the
// first payload byte to the counter and returns the new value; reads
// return the current value. Divergence between replicas is immediately
// visible in the state digest.
package counter

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Service is the counter application.
type Service struct {
	mu    sync.Mutex
	value uint64
}

// New creates a counter at zero.
func New() *Service { return &Service{} }

// Execute implements statemachine.Application. Write payloads add
// their first byte (default 1 for empty payloads); reads return the
// value unchanged.
func (s *Service) Execute(client uint32, payload []byte, readOnly bool) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !readOnly {
		delta := uint64(1)
		if len(payload) > 0 {
			delta = uint64(payload[0])
		}
		s.value += delta
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, s.value)
	return out
}

// Snapshot implements statemachine.Application.
func (s *Service) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, s.value)
	return out
}

// SnapshotView implements statemachine.SnapshotViewer.
func (s *Service) SnapshotView() func() []byte {
	s.mu.Lock()
	value := s.value
	s.mu.Unlock()
	return func() []byte {
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, value)
		return out
	}
}

// Restore implements statemachine.Application.
func (s *Service) Restore(snapshot []byte) error {
	if len(snapshot) != 8 {
		return fmt.Errorf("counter: bad snapshot length %d", len(snapshot))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.value = binary.BigEndian.Uint64(snapshot)
	return nil
}

// Value returns the current counter value (diagnostics).
func (s *Service) Value() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}
