// Package cop provides the building blocks of the consensus-oriented
// parallelization scheme (Behl et al., Middleware '15) that HybsterX
// and the PBFT baseline are built on: replicas are composed of equal
// processing units — pillars — that share no state and communicate via
// asynchronous in-memory message passing only (§5.3).
//
// The Mailbox is that in-memory message channel: an unbounded
// multi-producer single-consumer queue. Unboundedness matters — the
// internal protocols between pillars, coordinator, and execution stage
// form cycles (e.g. pillar → executor → coordinator → pillar for
// checkpoints), and bounded channels could deadlock under bursts.
// Memory remains bounded because every producer is itself throttled by
// the ordering window.
package cop

import "sync"

// Mailbox is an unbounded MPSC queue. The zero value is not usable;
// create with NewMailbox.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []T
	closed bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues v. Puts on a closed mailbox are silently discarded
// (shutdown races are benign).
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	if !m.closed {
		m.queue = append(m.queue, v)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// Get dequeues the next value, blocking until one is available or the
// mailbox closes. ok is false when the mailbox is closed and drained.
func (m *Mailbox[T]) Get() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return v, false
	}
	v = m.queue[0]
	// Shift instead of reslice to let the backing array shrink; the
	// queue is usually near-empty.
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	return v, true
}

// TryGet dequeues without blocking; ok is false if the mailbox is
// empty or closed.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return v, false
	}
	v = m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	return v, true
}

// Len returns the number of queued values.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Close wakes all blocked consumers; queued values may still be
// drained with Get/TryGet.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
