// Package cop provides the building blocks of the consensus-oriented
// parallelization scheme (Behl et al., Middleware '15) that HybsterX
// and the PBFT baseline are built on: replicas are composed of equal
// processing units — pillars — that share no state and communicate via
// asynchronous in-memory message passing only (§5.3).
//
// The Mailbox is that in-memory message channel: an unbounded
// multi-producer single-consumer queue. Unboundedness matters — the
// internal protocols between pillars, coordinator, and execution stage
// form cycles (e.g. pillar → executor → coordinator → pillar for
// checkpoints), and bounded channels could deadlock under bursts.
// Memory remains bounded because every producer is itself throttled by
// the ordering window.
package cop

import "sync"

// minMailboxCap is the smallest ring allocation; the ring shrinks back
// to this size when it drains after a burst.
const minMailboxCap = 16

// Mailbox is an unbounded MPSC queue backed by a ring buffer: Put and
// Get are O(1) at any depth (the previous slice-shift implementation
// made every Get O(n) while a burst was queued). The zero value is not
// usable; create with NewMailbox.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []T // ring storage; len(buf) is the capacity
	head   int // index of the oldest element
	count  int // number of queued elements
	closed bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// grow doubles the ring (or allocates the initial one), unwrapping the
// elements into the new storage. Caller holds m.mu.
func (m *Mailbox[T]) grow() {
	newCap := 2 * len(m.buf)
	if newCap < minMailboxCap {
		newCap = minMailboxCap
	}
	buf := make([]T, newCap)
	m.unwrapInto(buf)
	m.buf = buf
	m.head = 0
}

// unwrapInto copies the queued elements, oldest first, into dst.
// Caller holds m.mu; len(dst) >= m.count.
func (m *Mailbox[T]) unwrapInto(dst []T) {
	n := copy(dst, m.buf[m.head:min(m.head+m.count, len(m.buf))])
	if n < m.count {
		copy(dst[n:], m.buf[:m.count-n])
	}
}

// pop removes and returns the oldest element. Caller holds m.mu and
// guarantees count > 0.
func (m *Mailbox[T]) pop() T {
	var zero T
	v := m.buf[m.head]
	m.buf[m.head] = zero // release the reference for the GC
	m.head++
	if m.head == len(m.buf) {
		m.head = 0
	}
	m.count--
	m.maybeShrink()
	return v
}

// maybeShrink lets the ring return burst storage once the queue is
// near-empty again (the steady state). Caller holds m.mu.
func (m *Mailbox[T]) maybeShrink() {
	if len(m.buf) > minMailboxCap && m.count <= len(m.buf)/4 && m.count <= minMailboxCap/2 {
		buf := make([]T, minMailboxCap)
		m.unwrapInto(buf)
		m.buf = buf
		m.head = 0
	}
}

// Put enqueues v. Puts on a closed mailbox are silently discarded
// (shutdown races are benign).
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	if !m.closed {
		if m.count == len(m.buf) {
			m.grow()
		}
		i := m.head + m.count
		if i >= len(m.buf) {
			i -= len(m.buf)
		}
		m.buf[i] = v
		m.count++
		m.cond.Signal()
	}
	m.mu.Unlock()
}

// Get dequeues the next value, blocking until one is available or the
// mailbox closes. ok is false when the mailbox is closed and drained.
func (m *Mailbox[T]) Get() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.count == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.count == 0 {
		return v, false
	}
	return m.pop(), true
}

// GetBatch dequeues up to cap(dst)-len(dst) queued values into dst in
// FIFO order under one lock acquisition, blocking until at least one
// value is available or the mailbox closes. It returns the extended
// slice; a nil result with ok=false means closed and drained. Event
// loops use it to drain bursts without paying one lock round-trip per
// event.
func (m *Mailbox[T]) GetBatch(dst []T) (out []T, ok bool) {
	room := cap(dst) - len(dst)
	if room <= 0 {
		return dst, true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.count == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.count == 0 {
		return dst, false
	}
	n := m.count
	if n > room {
		n = room
	}
	for i := 0; i < n; i++ {
		dst = append(dst, m.pop())
	}
	return dst, true
}

// TryGet dequeues without blocking; ok is false if the mailbox is
// empty or closed.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return v, false
	}
	return m.pop(), true
}

// Len returns the number of queued values.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Close wakes all blocked consumers; queued values may still be
// drained with Get/TryGet.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
