package cop

import "testing"

// Mailbox hot-path benchmarks: the dequeue cost at various standing
// queue depths is what the ring-buffer representation is pinned
// against (a shift-based queue pays O(depth) per Get).

func BenchmarkHotPathMailboxPingPong(b *testing.B) {
	m := NewMailbox[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(i)
		if _, ok := m.Get(); !ok {
			b.Fatal("mailbox closed")
		}
	}
}

func BenchmarkHotPathMailboxBurst(b *testing.B) {
	const burst = 256
	m := NewMailbox[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			m.Put(j)
		}
		for j := 0; j < burst; j++ {
			if _, ok := m.Get(); !ok {
				b.Fatal("mailbox closed")
			}
		}
	}
}

func BenchmarkHotPathMailboxDeep(b *testing.B) {
	const depth = 4096
	m := NewMailbox[int]()
	for j := 0; j < depth; j++ {
		m.Put(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(i)
		if _, ok := m.TryGet(); !ok {
			b.Fatal("mailbox empty")
		}
	}
}
