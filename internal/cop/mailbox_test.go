package cop

import (
	"sync"
	"testing"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 100; i++ {
		m.Put(i)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	m := NewMailbox[string]()
	done := make(chan string)
	go func() {
		v, _ := m.Get()
		done <- v
	}()
	m.Put("hello")
	if got := <-done; got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMailboxCloseUnblocks(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan bool)
	go func() {
		_, ok := m.Get()
		done <- ok
	}()
	m.Close()
	if ok := <-done; ok {
		t.Fatal("Get returned ok after close on empty mailbox")
	}
}

func TestMailboxDrainAfterClose(t *testing.T) {
	m := NewMailbox[int]()
	m.Put(1)
	m.Put(2)
	m.Close()
	m.Put(3) // discarded
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if v, ok := m.Get(); !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if _, ok := m.Get(); ok {
		t.Fatal("discarded value delivered")
	}
}

func TestMailboxTryGet(t *testing.T) {
	m := NewMailbox[int]()
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox succeeded")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestMailboxConcurrentProducers(t *testing.T) {
	m := NewMailbox[int]()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Put(base + i)
			}
		}(w * per)
	}
	seen := make(map[int]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < workers*per; i++ {
			v, ok := m.Get()
			if !ok {
				t.Error("closed early")
				return
			}
			if seen[v] {
				t.Errorf("duplicate %d", v)
				return
			}
			seen[v] = true
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != workers*per {
		t.Fatalf("received %d of %d", len(seen), workers*per)
	}
}
